# Tier-1 verification and development targets. See DESIGN.md for the
# test-mode split.

GO ?= go

.PHONY: all build vet fmt-check doc-check test test-short race cover bench bench-check ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite (the GitHub
# workflow runs the same check).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# Documentation gate: formatting (covers the runnable Example_* files),
# vet, a package comment on every internal/ package — godoc is part of
# the contract, so an undocumented package fails CI — and no broken
# relative links in the top-level documents (cmd/doc-link-check).
doc-check: fmt-check vet
	@bad=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/...); \
	if [ -n "$$bad" ]; then echo "missing package comment:" >&2; echo "$$bad" >&2; exit 1; fi
	$(GO) run ./cmd/doc-link-check README.md ARCHITECTURE.md DESIGN.md

# Fast suite: unit + protocol + reduced-scale integration (seconds).
test-short:
	$(GO) test -short ./...

# Full suite, including the full-scale experiment runs in internal/exp.
test:
	$(GO) test ./...

# Fast suite under the race detector: exercises the async coupler API
# (pipelined calls, concurrent channels, parallel Stop) for data races.
race:
	$(GO) test -race -short ./...

# Coverage gates: internal/trace is the one package every layer records
# into, and internal/ensemble is the sweep engine whose accounting the
# campaign reports are trusted on — each holds a >= 90% statement-
# coverage floor.
COVER_FLOOR = 90.0
COVER_PKGS = ./internal/trace ./internal/ensemble
cover:
	@for pkg in $(COVER_PKGS); do \
	  $(GO) test -cover -coverprofile=cover.out $$pkg > /dev/null || { rm -f cover.out; exit 1; }; \
	  pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	  rm -f cover.out; \
	  echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
	  awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || \
	    { echo "$$pkg coverage $$pct% below the $(COVER_FLOOR)% floor" >&2; exit 1; }; \
	done

# The paper's evaluation tables/figures plus substrate micro-benchmarks.
# The run is recorded as a machine-readable perf trajectory in BENCH_10.json
# (benchmark name -> metric -> value, including the virtual-time metrics
# and the session/ensemble makespans); the raw output still prints via
# benchjson's tee.
bench:
	@$(GO) test -run XXX -bench . -benchmem . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@$(GO) run ./cmd/benchjson -o BENCH_10.json < bench.out
	@rm -f bench.out

# Perf regression gate: rerun the benchmarks and compare the deterministic
# virtual-* metrics against the newest committed BENCH_*.json, failing on
# any >15% regression. Wall-clock ns/op is not gated (host-dependent).
bench-check:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$base" ]; then echo "bench-check: no BENCH_*.json baseline" >&2; exit 1; fi; \
	echo "bench-check: baseline $$base"; \
	$(GO) test -run XXX -bench . -benchmem . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }; \
	$(GO) run ./cmd/benchjson -o bench-check.json -against $$base \
	  -match 'PipelinedKick|DirectVsHairpin|ShardedKick|CheckpointRecovery|StripedTransfer|ConcurrentSessions|ElasticGang|Ensemble' \
	  < bench.out; st=$$?; \
	rm -f bench.out bench-check.json; exit $$st

# Tier-1 gate: everything a PR must keep green, in one command.
ci: build vet doc-check test-short race cover
