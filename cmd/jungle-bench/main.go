// Command jungle-bench regenerates the paper's evaluation: every table and
// figure of §6 has an experiment id (see DESIGN.md §4). Examples:
//
//	jungle-bench -e e1 -scale 1 -iters 1     # §6.2 lab table at full scale
//	jungle-bench -e e3,e6,e7                 # overlay, call sequence, loopback
//	jungle-bench -e all -scale 0.1           # everything, reduced workload
//	jungle-bench calibrate                   # vnet/vtime calibration report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jungle/internal/exp"
)

func main() {
	experiments := flag.String("e", "all", "comma-separated experiment ids (e1..e10, all)")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = calibrated paper workload)")
	iters := flag.Int("iters", 1, "bridge iterations per measurement")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*experiments, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	// Positional ids work too: `jungle-bench calibrate`. Naming any
	// positional id replaces the -e default, so `jungle-bench calibrate`
	// runs the calibration alone, not "all" plus it.
	if args := flag.Args(); len(args) > 0 {
		if *experiments == "all" {
			want = map[string]bool{}
		}
		for _, e := range args {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	all := want["all"]
	failed := false

	run := func(id string, fn func() (string, error)) {
		if !all && !want[id] {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			return
		}
		fmt.Println(out)
	}

	run("e1", func() (string, error) {
		table, _, err := exp.E1(*scale, *iters)
		return table, err
	})
	run("e2", func() (string, error) { return exp.E2(*scale, *iters) })
	run("e3", exp.E3)
	run("e4", func() (string, error) { return exp.E4(*scale) })
	run("e5", func() (string, error) {
		table, _, err := exp.E5(100, 1000, 2.0)
		return table, err
	})
	run("e6", func() (string, error) {
		out, _, err := exp.E6()
		return out, err
	})
	run("e7", func() (string, error) {
		res, err := exp.RunE7(256<<20, 1<<20, 500)
		if err != nil {
			return "", err
		}
		return exp.E7Report(res), nil
	})
	run("e8", func() (string, error) { return exp.E8(*iters) })
	run("e9", func() (string, error) { return exp.E9(512, 8) })
	run("e10", func() (string, error) { return exp.E10(64, 24) })

	// The calibration loop (DESIGN.md "Observability plane"): probe every
	// configured edge of the DSL and SC11 testbeds and hold the measured
	// goodput to within 10% of the configured bandwidths. Not a paper
	// artifact, so explicit-only, like the ablations.
	if want["calibrate"] {
		out, err := exp.CalibrateReport()
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate failed: %v\n", err)
			failed = true
		}
	}

	// Design ablations (DESIGN.md §6): not paper artifacts, so they run
	// only when requested explicitly.
	if want["ablations"] {
		for _, fn := range []func() (string, error){
			func() (string, error) { t, _, err := exp.AblateTheta(2000, 200); return t, err },
			func() (string, error) { t, _, err := exp.AblateBridgeDT(30, 150, 0.5); return t, err },
			func() (string, error) { t, _, err := exp.AblateChannels(); return t, err },
		} {
			out, err := fn()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ablation failed: %v\n", err)
				failed = true
				continue
			}
			fmt.Println(out)
		}
	}

	if failed {
		os.Exit(1)
	}
}
