// Command amuse-run is the config-driven simulation runner: the user
// experience of §5's four steps. Resources come from an IbisDeploy-style
// configuration file (or the built-in lab testbed), the placement is a
// scenario name, and the simulation is the paper's embedded star cluster.
//
//	amuse-run -placement jungle -stars 200 -gas 2000 -iters 2
//	amuse-run -config resources.conf -list
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"jungle/internal/core"
	"jungle/internal/deploy"
	"jungle/internal/exp"
)

func main() {
	configPath := flag.String("config", "", "IbisDeploy resource config to add to the testbed")
	placement := flag.String("placement", "jungle", "cpu-only | local-gpu | remote-gpu | jungle")
	stars := flag.Int("stars", 100, "number of stars")
	gas := flag.Int("gas", 1000, "number of gas particles")
	iters := flag.Int("iters", 1, "bridge iterations")
	list := flag.Bool("list", false, "list resources and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run; cancellation aborts in-flight worker calls (0 = none)")
	flag.Parse()

	// The run context bounds everything downstream: worker start-up waits,
	// state uploads and every in-flight RPC of every bridge iteration.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	if *configPath != "" {
		text, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		resources, err := deploy.ParseConfig(string(text))
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		for _, r := range resources {
			if err := tb.Deployment.AddResource(r); err != nil {
				log.Fatalf("add resource %s: %v", r.Name, err)
			}
			fmt.Printf("added resource %s (%s on %s)\n", r.Name, r.Middleware, r.Frontend)
		}
	}

	if *list {
		fmt.Println(tb.Deployment.RenderStatus())
		return
	}

	var chosen *exp.Placement
	for _, p := range exp.LabScenarios(tb) {
		if p.Name == *placement {
			chosen = &p
			break
		}
	}
	if chosen == nil {
		log.Fatalf("unknown placement %q (want cpu-only, local-gpu, remote-gpu or jungle)", *placement)
	}

	w := exp.Workload{Stars: *stars, Gas: *gas, GasFrac: 0.9, Seed: 42, DT: 1.0 / 64, Eps: 0.05}
	res, err := exp.RunScenario(ctx, tb, w, *chosen, *iters)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("placement %s: %v per iteration (setup %v, %d supernovae)\n",
		res.Scenario, res.PerIteration, res.Setup, res.Supernovae)
	fmt.Println()
	fmt.Println(tb.Deployment.RenderStatus())
}
