// Command amuse-run is the config-driven simulation runner: the user
// experience of §5's four steps. Resources come from an IbisDeploy-style
// configuration file (or a built-in testbed), the placement is a scenario
// name, and the simulation is the paper's embedded star cluster.
//
//	amuse-run -placement jungle -stars 200 -gas 2000 -iters 2
//	amuse-run -config resources.conf -list
//
// With -checkpoint the run snapshots every worker after each completed
// iteration and writes a self-contained run file; a run killed at any
// point (Ctrl-C, -timeout, a dead machine) is continued bit-compatibly
// with -resume:
//
//	amuse-run -testbed sc11 -placement sc11-worst-case -iters 8 -checkpoint run.ckpt
//	amuse-run -testbed sc11 -resume run.ckpt
//
// With -attach the runner is a thin client of a running jungled control
// plane instead of building its own testbed: it attaches a named session,
// submits the workload, and detaches. -keep leaves the session alive on
// the daemon so a later attach (after an idle-reap, even) continues it
// bit-identically:
//
//	jungled &
//	amuse-run -attach 127.0.0.1:17979 -session mine -stars 200 -gas 2000 -iters 2 -keep
//	amuse-run -attach 127.0.0.1:17979 -session mine -iters 2
//
// With -sweep N the runner is an ensemble campaign instead of one
// simulation: N agent-based colonies (4 initial-condition streams crossed
// with N/4 couplings) fan through a local control plane's admission queue
// and the aggregate report is printed:
//
//	amuse-run -sweep 32 -sweep-steps 24 -sweep-slots 8
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"jungle/internal/core"
	"jungle/internal/deploy"
	"jungle/internal/ensemble"
	"jungle/internal/exp"
	"jungle/internal/phys/abm"
	"jungle/internal/sched"

	_ "jungle/internal/kernels"
)

func main() {
	configPath := flag.String("config", "", "IbisDeploy resource config to add to the testbed")
	testbed := flag.String("testbed", "lab", "lab | sc11 (the SC11 demo topology: coupler in Seattle, models in NL)")
	placement := flag.String("placement", "jungle", "cpu-only | local-gpu | remote-gpu | jungle | sc11-worst-case")
	stars := flag.Int("stars", 100, "number of stars")
	gas := flag.Int("gas", 1000, "number of gas particles")
	iters := flag.Int("iters", 1, "bridge iterations")
	list := flag.Bool("list", false, "list resources and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run; cancellation aborts in-flight worker calls (0 = none)")
	checkpoint := flag.String("checkpoint", "", "write a resumable run checkpoint to this file after every iteration")
	resume := flag.String("resume", "", "continue a killed run from its checkpoint file (ignores -placement/-stars/-gas/-iters)")
	attach := flag.String("attach", "", "run through a jungled control plane at this address instead of a local testbed")
	session := flag.String("session", "", "session id to attach (required with -attach)")
	keep := flag.Bool("keep", false, "with -attach: detach without closing, so the session can be re-attached later")
	observe := flag.Bool("observe", false, "after the run, print the observability plane: per-method call histograms and link health")
	sweepN := flag.Int("sweep", 0, "run an ensemble sweep of this many agent-based members instead of one simulation (multiple of 4)")
	sweepSteps := flag.Int("sweep-steps", 24, "generations per sweep member")
	sweepSlots := flag.Int("sweep-slots", 8, "control-plane admission slots the sweep fans over")
	flag.Parse()

	if *sweepN > 0 {
		if err := runSweep(*sweepN, *sweepSteps, *sweepSlots); err != nil {
			log.Fatalf("sweep: %v", err)
		}
		return
	}

	if *attach != "" {
		if *session == "" {
			log.Fatal("-attach requires -session")
		}
		if err := runAttached(*attach, *session, *stars, *gas, *iters, *keep); err != nil {
			log.Fatalf("attach: %v", err)
		}
		return
	}

	// The run context bounds everything downstream: worker start-up waits,
	// state uploads and every in-flight RPC of every bridge iteration.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tb *core.Testbed
	var err error
	switch *testbed {
	case "lab":
		tb, err = core.NewLabTestbed()
	case "sc11":
		tb, err = core.NewSC11Testbed()
	default:
		log.Fatalf("unknown testbed %q (want lab or sc11)", *testbed)
	}
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	if *configPath != "" {
		text, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		resources, err := deploy.ParseConfig(string(text))
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		for _, r := range resources {
			if err := tb.Deployment.AddResource(r); err != nil {
				log.Fatalf("add resource %s: %v", r.Name, err)
			}
			fmt.Printf("added resource %s (%s on %s)\n", r.Name, r.Middleware, r.Frontend)
		}
	}

	if *list {
		fmt.Println(tb.Deployment.RenderStatus())
		return
	}

	if *resume != "" {
		// Continue a killed run: the run file carries the placement, the
		// workload, the bridge clock and every worker's snapshot.
		res, err := exp.ResumeScenario(ctx, tb, *resume)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		report(tb, res, *observe)
		return
	}

	scenarios := append(exp.LabScenarios(tb), exp.SC11Placement(tb))
	var chosen *exp.Placement
	for i := range scenarios {
		if scenarios[i].Name == *placement {
			chosen = &scenarios[i]
			break
		}
	}
	if chosen == nil {
		log.Fatalf("unknown placement %q (want cpu-only, local-gpu, remote-gpu, jungle or sc11-worst-case)", *placement)
	}

	w := exp.Workload{Stars: *stars, Gas: *gas, GasFrac: 0.9, Seed: 42, DT: 1.0 / 64, Eps: 0.05}
	var res exp.RunResult
	before, beforeErr := os.Stat(*checkpoint)
	if *checkpoint != "" {
		res, err = exp.RunScenarioCheckpointed(ctx, tb, w, *chosen, *iters, *checkpoint)
	} else {
		res, err = exp.RunScenario(ctx, tb, w, *chosen, *iters)
	}
	if err != nil {
		// Only point at the checkpoint file if THIS run wrote it — a file
		// left by a previous run at the same path must not be offered for
		// resume, and a failure before the first completed iteration
		// leaves nothing of this run on disk.
		if *checkpoint != "" && checkpointWritten(*checkpoint, before, beforeErr) {
			log.Fatalf("run: %v (last completed iteration is checkpointed in %s; continue with -resume)", err, *checkpoint)
		}
		log.Fatalf("run: %v", err)
	}
	report(tb, res, *observe)
}

// checkpointWritten reports whether the checkpoint file at path was
// (re)written since the pre-run stat: it exists now and either did not
// exist before or its identity changed (SaveRunCheckpoint replaces the
// file wholesale via rename, so size/mtime move on every save).
func checkpointWritten(path string, before os.FileInfo, beforeErr error) bool {
	after, err := os.Stat(path)
	if err != nil {
		return false
	}
	if beforeErr != nil {
		return true // did not exist before this run
	}
	return after.Size() != before.Size() || !after.ModTime().Equal(before.ModTime())
}

// runSweep is the ensemble path: expand a members-sized campaign (4
// initial-condition streams crossed with members/4 couplings), fan it
// through a local control plane over slots admission slots, and print
// the aggregate report.
func runSweep(members, steps, slots int) error {
	const nIC = 4
	if members%nIC != 0 {
		return fmt.Errorf("-sweep %d must be a multiple of %d", members, nIC)
	}
	ics := make([]float64, nIC)
	for i := range ics {
		ics[i] = float64(i)
	}
	bs := make([]float64, members/nIC)
	for i := range bs {
		bs[i] = 0.05 + 0.02*float64(i)
	}
	sweep := &ensemble.ABMSweep{
		Plan: &ensemble.Plan{
			Name:     "amuse-run",
			BaseSeed: 42,
			Axes: []ensemble.Axis{
				{Name: ensemble.AxisIC, Values: ics},
				{Name: ensemble.AxisB, Values: bs},
			},
			SetupAxes: []string{ensemble.AxisIC},
		},
		Base:  abm.Params{W: 24, H: 24, D: 0.15, R: 0.6, B: 0.2, DT: 0.01},
		Steps: steps,
		Spec:  core.WorkerSpec{Channel: core.ChannelIbis},
	}
	tb, err := core.NewLabTestbed()
	if err != nil {
		return err
	}
	defer tb.Close()
	s := sched.New(tb.Daemon, sched.Config{
		MaxLive: slots, QueueCap: members,
		RetryAfter: 2 * time.Millisecond, Recorder: tb.Recorder,
	})
	defer s.Shutdown()
	rep, err := sweep.Run(context.Background(), s)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	for _, m := range rep.Members {
		if m.Err != "" {
			fmt.Printf("  member %04d FAILED: %s\n", m.Index, m.Err)
		}
	}
	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d members failed", rep.Failures, len(rep.Members))
	}
	return nil
}

// runAttached is the thin-client path: attach a session on a running
// jungled (waiting in its admission queue if the plane is full), submit
// the workload as one session_run op, report, and detach.
func runAttached(addr, session string, stars, gas, iters int, keep bool) error {
	c, err := sched.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	att, err := c.Attach(session, true)
	if err != nil {
		return err
	}
	if att.Resumed {
		fmt.Printf("session %s resumed from its eviction snapshot\n", att.Session)
	} else {
		fmt.Printf("session %s attached (%s)\n", att.Session, att.State)
	}
	work := exp.SessionWork{
		W:          exp.Workload{Stars: stars, Gas: gas, GasFrac: 0.9, Seed: 42, DT: 1.0 / 64, Eps: 0.05},
		Iterations: iters,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(work); err != nil {
		return err
	}
	out, err := c.Run(buf.Bytes())
	if err != nil {
		return err
	}
	var rep exp.SessionReport
	if err := gob.NewDecoder(bytes.NewReader(out)).Decode(&rep); err != nil {
		return err
	}
	res := rep.Result
	fmt.Printf("session %s: %d iterations, %v per iteration (setup %v, %d supernovae, state %016x)\n",
		session, res.Iterations, res.PerIteration, res.Setup, res.Supernovae, res.StateDigest)
	st, err := c.Detach(!keep)
	if err != nil {
		return err
	}
	fmt.Printf("detached (session %s)\n", st)
	return nil
}

func report(tb *core.Testbed, res exp.RunResult, observe bool) {
	fmt.Printf("placement %s: %v per iteration (setup %v, %d supernovae, %s)\n",
		res.Scenario, res.PerIteration, res.Setup, res.Supernovae, res.Calls.String())
	fmt.Println()
	fmt.Println(tb.Deployment.RenderStatus())
	if observe {
		// The run just ended, so "now" is its final virtual time — links
		// probed more than a staleness window before it are marked STALE.
		fmt.Println(tb.Recorder.RenderCalls())
		fmt.Println(tb.Recorder.RenderHealth(res.Setup + res.PerIteration*time.Duration(res.Iterations)))
	}
}
