// Command doc-link-check verifies the relative links in the repository's
// markdown documentation: every [text](target) whose target is a local
// path must point at a file or directory that exists (anchors are
// stripped; absolute URLs and mailto: links are skipped). It exits
// non-zero listing each broken link — `make doc-check` runs it over the
// top-level documents so a renamed file cannot silently orphan the docs
// that reference it.
//
//	doc-link-check README.md ARCHITECTURE.md DESIGN.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links: [text](target). Reference-style
// links and autolinks are not used in this repository's docs.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doc-link-check FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, doc := range os.Args[1:] {
		text, err := os.ReadFile(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doc-link-check: %v\n", err)
			broken++
			continue
		}
		dir := filepath.Dir(doc)
		for lineNo, line := range strings.Split(string(text), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipTarget(target) {
					continue
				}
				// Strip an anchor; a bare "#anchor" link stays in-file.
				path := target
				if i := strings.IndexByte(path, '#'); i >= 0 {
					path = path[:i]
				}
				if path == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(dir, path)); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q\n", doc, lineNo+1, target)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doc-link-check: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// skipTarget reports whether a link target is outside this checker's
// scope: absolute URLs, mail links, and absolute filesystem paths.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "/")
}
