package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	m := parseMetrics("14601428 ns/op\t562633 virtual-us/transfer")
	if m == nil || m["ns/op"] != 14601428 || m["virtual-us/transfer"] != 562633 {
		t.Fatalf("parseMetrics = %v", m)
	}
	if parseMetrics("not a benchmark line") != nil {
		t.Fatal("garbage parsed as metrics")
	}
}

// TestCompareGatesVirtualMetrics: only virtual-* metrics are gated;
// wall-clock ns/op may regress freely (host-dependent), and benchmarks or
// metrics present on one side only are ignored.
func TestCompareGatesVirtualMetrics(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkA":    {"virtual-us/step": 100, "ns/op": 1000},
		"BenchmarkB":    {"virtual-us/step": 50},
		"BenchmarkGone": {"virtual-us/step": 10},
	}
	cur := map[string]map[string]float64{
		"BenchmarkA":   {"virtual-us/step": 110, "ns/op": 99999}, // +10%: within tolerance
		"BenchmarkB":   {"virtual-us/step": 80},                  // +60%: regression
		"BenchmarkNew": {"virtual-us/step": 1e9},                 // no baseline: ignored
	}
	regs := compare(cur, base, 0.15, nil)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB") {
		t.Fatalf("compare = %v, want exactly the BenchmarkB regression", regs)
	}
	if regs := compare(cur, base, 0.65, nil); len(regs) != 0 {
		t.Fatalf("tolerance 65%%: compare = %v, want none", regs)
	}
}

// TestCompareImprovementPasses: getting faster is never a regression.
func TestCompareImprovementPasses(t *testing.T) {
	base := map[string]map[string]float64{"BenchmarkA": {"virtual-us/step": 100}}
	cur := map[string]map[string]float64{"BenchmarkA": {"virtual-us/step": 30}}
	if regs := compare(cur, base, 0.15, nil); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

// TestCompareMatchScopesGate: -match limits the gate to headline
// benchmarks, so known timing-dependent scenario metrics cannot flake it.
func TestCompareMatchScopesGate(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkNoisy":    {"virtual-s/iter": 0.9},
		"BenchmarkHeadline": {"virtual-us/step": 100},
	}
	cur := map[string]map[string]float64{
		"BenchmarkNoisy":    {"virtual-s/iter": 1.2}, // +33%, out of scope
		"BenchmarkHeadline": {"virtual-us/step": 130},
	}
	regs := compare(cur, base, 0.15, regexp.MustCompile("Headline"))
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkHeadline") {
		t.Fatalf("compare = %v, want only the in-scope regression", regs)
	}
}
