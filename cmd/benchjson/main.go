// Command benchjson turns `go test -bench` output into a machine-readable
// perf trajectory. It tees its stdin to stdout unchanged (so `make bench`
// still reads like a bench run) and writes every parsed benchmark line to a
// JSON file: benchmark name → {metric unit → value}, covering the custom
// virtual-time metrics (virtual-us/step, virtual-us/transfer, ...) next to
// the standard ns/op and -benchmem columns.
//
//	go test -bench . | benchjson -o BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count, then
// value/unit pairs ("14601428 ns/op	562633 virtual-us/transfer"). Names are
// kept verbatim, GOMAXPROCS suffix included — sub-benchmark names like
// "gang-4" are indistinguishable from it, and benchstat keeps it too.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	m := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_6.json", "output JSON file")
	flag.Parse()

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		metrics := parseMetrics(m[3])
		if metrics == nil {
			continue
		}
		name := m[1]
		if prev, ok := results[name]; ok {
			for k, v := range metrics {
				prev[k] = v
			}
		} else {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)
}
