// Command benchjson turns `go test -bench` output into a machine-readable
// perf trajectory. It tees its stdin to stdout unchanged (so `make bench`
// still reads like a bench run) and writes every parsed benchmark line to a
// JSON file: benchmark name → {metric unit → value}, covering the custom
// virtual-time metrics (virtual-us/step, virtual-us/transfer, ...) next to
// the standard ns/op and -benchmem columns.
//
//	go test -bench . | benchjson -o BENCH_6.json
//
// With -against it additionally compares the run to an earlier JSON file
// and exits 1 when any shared virtual-time metric regressed by more than
// -tolerance (default 15%). Only virtual-* metrics are gated — wall-clock
// ns/op varies with the host and would flake — and -match restricts the
// gate to benchmarks whose name matches a regexp (`make bench-check`
// scopes it to the headline benchmarks: a few scenario metrics, E2SC11's
// transfer-fallback mix in particular, are timing-dependent and not
// deterministic enough to gate):
//
//	go test -bench . | benchjson -o BENCH_8.json -against BENCH_7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count, then
// value/unit pairs ("14601428 ns/op	562633 virtual-us/transfer"). Names are
// kept verbatim, GOMAXPROCS suffix included — sub-benchmark names like
// "gang-4" are indistinguishable from it, and benchstat keeps it too.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	m := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// compare checks cur against base: every benchmark/metric pair present in
// both, whose unit names a deterministic virtual-time quantity, must not
// exceed the baseline by more than tol (fractional). It returns one line
// per regression; an empty slice means the gate passes. Benchmarks or
// metrics present on only one side are ignored — adding a benchmark must
// not fail the gate, and neither must retiring one.
// A nil match gates every benchmark; otherwise only matching names are.
func compare(cur, base map[string]map[string]float64, tol float64, match *regexp.Regexp) []string {
	var regressions []string
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old, ok := base[name]
		if !ok {
			continue
		}
		if match != nil && !match.MatchString(name) {
			continue
		}
		metrics := make([]string, 0, len(cur[name]))
		for unit := range cur[name] {
			metrics = append(metrics, unit)
		}
		sort.Strings(metrics)
		for _, unit := range metrics {
			if !strings.HasPrefix(unit, "virtual-") {
				continue
			}
			was, ok := old[unit]
			if !ok || was <= 0 {
				continue
			}
			now := cur[name][unit]
			if now > was*(1+tol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					name, unit, was, now, (now/was-1)*100, tol*100))
			}
		}
	}
	return regressions
}

func main() {
	out := flag.String("o", "BENCH_6.json", "output JSON file")
	against := flag.String("against", "", "baseline JSON file to gate regressions against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression for virtual-* metrics")
	matchExpr := flag.String("match", "", "regexp limiting the gate to matching benchmark names (empty gates all)")
	flag.Parse()

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		metrics := parseMetrics(m[3])
		if metrics == nil {
			continue
		}
		name := m[1]
		if prev, ok := results[name]; ok {
			for k, v := range metrics {
				prev[k] = v
			}
		} else {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)

	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		base := map[string]map[string]float64{}
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *against, err)
			os.Exit(1)
		}
		var match *regexp.Regexp
		if *matchExpr != "" {
			if match, err = regexp.Compile(*matchExpr); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -match: %v\n", err)
				os.Exit(1)
			}
		}
		if regressions := compare(results, base, *tolerance, match); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s:\n", len(regressions), *against)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no virtual-metric regressions vs %s\n", *against)
	}
}
