// Command jungled is the stand-alone daemon process of §5, grown into a
// long-lived multi-tenant control plane: "The user must start this daemon
// on his or her machine before running any simulation, but it can be
// re-used for all simulations run" — and here the re-use is concurrent.
// One jungled serves many attached clients at once, each bound to an
// isolated session (disjoint worker-id blocks, per-session capacity
// accounting and checkpoint stores), with admission control, fair-share
// placement and lease-based idle reaping between them.
//
// Clients attach with amuse-run -attach <addr> -session <id>. The wire
// protocol stays the daemon channel's length-prefixed framing: control
// envelopes drive sessions, and frames that are not envelopes still echo,
// so the §5 loopback benchmark (-selftest reproduces its "over 8
// Gbit/second even on a modest laptop" measurement) runs unchanged
// against a multi-tenant daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"jungle/internal/core"
	"jungle/internal/exp"
	"jungle/internal/sched"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:17979", "loopback address to serve")
	selftest := flag.Bool("selftest", false, "run the §5 loopback benchmark and exit")
	testbed := flag.String("testbed", "lab", "lab | sc11 (resources the sessions share)")
	maxLive := flag.Int("max-sessions", 4, "concurrent running sessions (admission control)")
	queueCap := flag.Int("queue", 8, "admission queue bound")
	leaseTTL := flag.Duration("lease", 30*time.Second, "idle-session lease; expired sessions are checkpointed and preempted")
	reapEvery := flag.Duration("reap-every", 5*time.Second, "how often to sweep for expired leases (0 disables)")
	statusEvery := flag.Duration("status-every", 0, "how often to log the observability plane (sessions, link health, call histograms; 0 disables)")
	flag.Parse()

	if *selftest {
		res, err := exp.RunE7(256<<20, 1<<20, 500)
		if err != nil {
			log.Fatalf("selftest: %v", err)
		}
		fmt.Print(exp.E7Report(res))
		if res.ThroughputGbit < 8 {
			os.Exit(1)
		}
		return
	}

	var tb *core.Testbed
	var err error
	switch *testbed {
	case "lab":
		tb, err = core.NewLabTestbed()
	case "sc11":
		tb, err = core.NewSC11Testbed()
	default:
		log.Fatalf("unknown testbed %q (want lab or sc11)", *testbed)
	}
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	s := sched.New(tb.Daemon, sched.Config{
		MaxLive:  *maxLive,
		QueueCap: *queueCap,
		LeaseTTL: *leaseTTL,
		Recorder: tb.Recorder,
		Run:      exp.SessionRunner(),
	})
	defer s.Shutdown()

	ctx := context.Background()
	if *reapEvery > 0 {
		go func() {
			for range time.Tick(*reapEvery) {
				if reaped, err := s.ReapIdle(ctx); err != nil {
					log.Printf("reap: %v", err)
				} else if len(reaped) > 0 {
					log.Printf("reaped idle sessions %v", reaped)
				}
			}
		}()
	}

	if *statusEvery > 0 {
		go func() {
			for range time.Tick(*statusEvery) {
				// Sessions span virtual clocks, so staleness marking is
				// off (-1): a link probed once by any tenant stays "ok".
				log.Printf("status:\n%s\n%s\n%s",
					tb.Recorder.RenderSessions(),
					tb.Recorder.RenderHealth(-1),
					tb.Recorder.RenderCalls())
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("jungled: control plane on %s (max %d sessions, lease %v)",
		l.Addr(), *maxLive, *leaseTTL)
	g := &sched.Gateway{Sched: s, Ctx: ctx}
	if err := g.Serve(l); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
