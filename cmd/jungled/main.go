// Command jungled is the stand-alone Ibis daemon process of §5 over a real
// TCP loopback socket: "The user must start this daemon on his or her
// machine before running any simulation, but it can be re-used for all
// simulations run."
//
// It serves the daemon channel's length-prefixed frame protocol on
// 127.0.0.1 and echoes control frames, which is exactly the path the paper
// benchmarks ("over 8 Gbit/second even on a modest laptop"); run with
// -selftest to reproduce that measurement against an in-process client.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"jungle/internal/exp"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:17979", "loopback address to serve")
	selftest := flag.Bool("selftest", false, "run the §5 loopback benchmark and exit")
	flag.Parse()

	if *selftest {
		res, err := exp.RunE7(256<<20, 1<<20, 500)
		if err != nil {
			log.Fatalf("selftest: %v", err)
		}
		fmt.Print(exp.E7Report(res))
		if res.ThroughputGbit < 8 {
			os.Exit(1)
		}
		return
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("jungled: serving daemon channel on %s", l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go serve(conn)
	}
}

// serve echoes framed messages: 4-byte little-endian length + payload. The
// real daemon relays to IPL; the stand-alone binary echoes so clients can
// measure the loopback hop in isolation.
func serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<20)
	w := bufio.NewWriterSize(conn, 1<<20)
	var hdr [4]byte
	buf := make([]byte, 1<<20)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n > len(buf) {
			buf = make([]byte, n)
		}
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return
		}
		if _, err := w.Write(hdr[:]); err != nil {
			return
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
