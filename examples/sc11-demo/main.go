// SC11-demo: recreates the paper's SuperComputing'11 demonstration (§6.1,
// Figs. 8–10): the coupler runs on a laptop in Seattle behind the
// exhibition NAT; all four models run in The Netherlands, reached over a
// transatlantic 1G lightpath. The coupled step moves its bulk state on
// the direct worker-to-worker data plane — the laptop orchestrates, the
// Dutch sites exchange the columns among themselves — and the demo shows
// a standalone TransferState between two sites next to the hairpin it
// replaces. The GUI views are printed: the resource list, the jobs, and
// the SmartSockets overlay with its tunnels and one-way links.
package main

import (
	"context"
	"fmt"
	"log"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/exp"
)

func main() {
	fmt.Println("SC11 demonstration: coupler in Seattle, models in NL")
	tb, err := core.NewSC11Testbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	w := exp.Workload{Stars: 60, Gas: 600, GasFrac: 0.9, Seed: 7, DT: 1.0 / 64, Eps: 0.05}
	placement := exp.SC11Placement(tb)

	res, err := exp.RunScenario(context.Background(), tb, w, placement, 1)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("\none iteration across the Atlantic: %v (startup %v)\n", res.PerIteration, res.Setup)
	fmt.Printf("state transfers: %d direct worker-to-worker, %d via the laptop, %d fallback\n\n",
		res.Transfers.Direct, res.Transfers.Hairpin, res.Transfers.Fallback)

	demoDirectTransfer(tb)

	// Fig. 10's three views.
	fmt.Println(tb.Deployment.RenderStatus())

	fmt.Println("traffic classes (IPL = blue, MPI = orange in the demo GUI):")
	for class, bytes := range tb.Recorder.TotalByClass() {
		fmt.Printf("  %-10s %12d bytes\n", class, bytes)
	}

	fmt.Println("\nbusiest links (Fig. 11 view):")
	rows := tb.Recorder.TrafficTable()
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		fmt.Printf("  %-24s -> %-24s %-9s %12d\n", r.From, r.To, r.Class, r.Bytes)
	}
}

// demoDirectTransfer moves a 1000-particle column set between two Dutch
// sites both ways: once over the direct data plane (TransferState — the
// bytes go site-to-site) and once over the hairpin it replaces (Pull to
// Seattle, Push back out over the transatlantic link), printing the
// modelled cost of each.
func demoDirectTransfer(tb *core.Testbed) {
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()
	src, err := sim.NewGravity(context.Background(),
		core.WorkerSpec{Resource: tb.LGM, Channel: core.ChannelIbis}, core.GravityOptions{Eps: 0.01})
	if err != nil {
		log.Fatalf("transfer demo src: %v", err)
	}
	if err := src.SetParticles(ic.Plummer(1000, 42)); err != nil {
		log.Fatalf("transfer demo upload: %v", err)
	}
	dst, err := sim.NewGravity(context.Background(),
		core.WorkerSpec{Resource: tb.TUD, Channel: core.ChannelIbis}, core.GravityOptions{Eps: 0.01})
	if err != nil {
		log.Fatalf("transfer demo dst: %v", err)
	}
	if err := dst.SetParticles(ic.Plummer(1000, 43)); err != nil {
		log.Fatalf("transfer demo upload: %v", err)
	}

	attrs := []string{data.AttrMass, data.AttrPos, data.AttrVel}
	start := sim.Elapsed()
	if err := sim.TransferState(context.Background(), src, dst, attrs...); err != nil {
		log.Fatalf("direct transfer: %v", err)
	}
	direct := sim.Elapsed() - start

	start = sim.Elapsed()
	st, err := src.GetState(context.Background(), attrs...)
	if err != nil {
		log.Fatalf("hairpin pull: %v", err)
	}
	if err := dst.SetState(context.Background(), st); err != nil {
		log.Fatalf("hairpin push: %v", err)
	}
	hairpin := sim.Elapsed() - start

	fmt.Printf("moving 1000 particles LGM -> TUD: direct %v, via-Seattle hairpin %v (%.1fx)\n\n",
		direct, hairpin, float64(hairpin)/float64(direct))
}
