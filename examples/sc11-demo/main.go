// SC11-demo: recreates the paper's SuperComputing'11 demonstration (§6.1,
// Figs. 8–10): the coupler runs on a laptop in Seattle behind the
// exhibition NAT; all four models run in The Netherlands, reached over a
// transatlantic 1G lightpath. The demo's GUI views are printed: the
// resource list, the jobs, and the SmartSockets overlay with its tunnels
// and one-way links.
package main

import (
	"context"
	"fmt"
	"log"

	"jungle/internal/core"
	"jungle/internal/exp"
)

func main() {
	fmt.Println("SC11 demonstration: coupler in Seattle, models in NL")
	tb, err := core.NewSC11Testbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	w := exp.Workload{Stars: 60, Gas: 600, GasFrac: 0.9, Seed: 7, DT: 1.0 / 64, Eps: 0.05}
	placement := exp.SC11Placement(tb)

	res, err := exp.RunScenario(context.Background(), tb, w, placement, 1)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("\none iteration across the Atlantic: %v (startup %v)\n\n",
		res.PerIteration, res.Setup)

	// Fig. 10's three views.
	fmt.Println(tb.Deployment.RenderStatus())

	fmt.Println("traffic classes (IPL = blue, MPI = orange in the demo GUI):")
	for class, bytes := range tb.Recorder.TotalByClass() {
		fmt.Printf("  %-10s %12d bytes\n", class, bytes)
	}

	fmt.Println("\nbusiest links (Fig. 11 view):")
	rows := tb.Recorder.TrafficTable()
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		fmt.Printf("  %-24s -> %-24s %-9s %12d\n", r.From, r.To, r.Class, r.Bytes)
	}
}
