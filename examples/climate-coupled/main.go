// Climate-coupled: the paper's second 3MK exemplar (§4.2) — a CESM-style
// earth system of atmosphere, ocean, land and sea ice around a central
// coupler. Demonstrates the multi-kernel property for climate (active vs
// data ocean) and the node-layout tuning problem the paper describes
// ("it may take a user quite a bit of experimenting to find an efficient
// configuration").
package main

import (
	"fmt"
	"log"

	"jungle/internal/climate"
	"jungle/internal/vtime"
)

func build(oceanData bool) *climate.CESM {
	var ocn climate.Component = climate.NewOcean(72, 36)
	if oceanData {
		// Data ocean: replay a fixed climatology (zonally uniform, warm
		// equator / cold poles).
		clim := climate.NewGrid(72, 36, 0)
		for j := 0; j < 36; j++ {
			for i := 0; i < 72; i++ {
				clim.Set(i, j, 25-30*absf(float64(j)-17.5)/17.5)
			}
		}
		ocn = climate.NewDataComponent("ocn", clim)
	}
	m, err := climate.New(
		climate.NewAtmosphere(36, 18, "cam5"),
		ocn,
		climate.NewLand(36, 18),
		climate.NewSeaIce(36, 18),
	)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	fmt.Println("CESM-style coupled climate (Fig. 4): 10 model years")

	active := build(false)
	if err := active.Run(3650); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active ocean:  global mean %.1f °C, ice area %.3f\n",
		active.GlobalMeanTemp(), active.IceArea())

	dataOcn := build(true)
	if err := dataOcn.Run(3650); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data ocean:    global mean %.1f °C, ice area %.3f\n",
		dataOcn.GlobalMeanTemp(), dataOcn.IceArea())

	fmt.Println("\ncomponent cost (flops):")
	for name, f := range active.Flops() {
		fmt.Printf("  %-4s %.3e\n", name, f)
	}

	// Layout experiment: partitioned vs shared nodes (§4.2).
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 1e-3, Cores: 8}
	layouts := map[string]climate.Layout{
		"shared (1 node)": {Device: dev, Nodes: map[string][]string{
			"atm": {"n0"}, "ocn": {"n0"}, "lnd": {"n0"}, "ice": {"n0"}, "cpl": {"n0"},
		}},
		"partitioned (5 nodes)": {Device: dev, Nodes: map[string][]string{
			"atm": {"n0"}, "ocn": {"n1", "n2"}, "lnd": {"n3"}, "ice": {"n4"}, "cpl": {"n0"},
		}},
	}
	fmt.Println("\nnode layout experiment (30 model days):")
	for name, l := range layouts {
		m := build(false)
		wall, err := m.RunTimed(30, l, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %v virtual wall time\n", name, wall)
	}
}
