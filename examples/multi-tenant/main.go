// Multi-tenant: three users share one jungled control plane. The plane
// admits at most two running sessions, so the third tenant first bounces
// off admission control (a structured busy rejection with a retry-after
// hint), then parks in the admission queue. Meanwhile one admitted tenant
// goes idle past its lease and is reaped — checkpointed into a snapshot,
// its workers stopped, its capacity freed — which admits the queued
// tenant. When the reaped tenant comes back, it resumes from the snapshot
// and finishes bit-identically to an uninterrupted run: the digests
// printed at the end must match.
//
// Everything here also works over TCP through cmd/jungled and amuse-run
// -attach; the example drives the scheduler in-process so the whole story
// fits in one program.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"jungle/internal/core"
	"jungle/internal/exp"
	"jungle/internal/sched"
)

func main() {
	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// A small plane: two live sessions, short leases.
	clock := time.Unix(0, 0)
	s := sched.New(tb.Daemon, sched.Config{
		MaxLive:  2,
		LeaseTTL: time.Minute,
		Recorder: tb.Recorder,
		Now:      func() time.Time { return clock },
	})
	defer s.Shutdown()

	ctx := context.Background()
	w := exp.DefaultWorkload().Scaled(0.02)
	const iters = 4

	// A reference tenant runs straight through: this is the digest the
	// preempted tenant must reproduce.
	ref, err := exp.RunSessionWorkload(ctx, s, "reference", w, exp.AutoPlacement(), iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d iterations, digest %016x\n", ref.Iterations, ref.StateDigest)

	// Tenants alice and bob fill the plane.
	alice, _, err := s.Attach(ctx, "alice", false)
	if err != nil {
		log.Fatal(err)
	}
	aliceRun, err := exp.StartSessionScenario(ctx, alice, w, exp.AutoPlacement())
	if err != nil {
		log.Fatal(err)
	}
	if err := aliceRun.Step(ctx, iters/2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: running, %d/%d iterations done\n", aliceRun.Done(), iters)
	if _, _, err := s.Attach(ctx, "bob", false); err != nil {
		log.Fatal(err)
	}

	// Carol bounces off admission control with a structured hint...
	_, _, err = s.Attach(ctx, "carol", false)
	var busy *sched.BusyError
	if !errors.As(err, &busy) {
		log.Fatalf("expected a busy rejection, got %v", err)
	}
	fmt.Printf("carol: rejected, retry after %v (%d queued)\n", busy.RetryAfter, busy.Queued)

	// ...and parks in the queue on the second try.
	admitted := make(chan error, 1)
	go func() {
		_, _, err := s.Attach(ctx, "carol", true)
		admitted <- err
	}()

	// Alice idles past her lease (bob heartbeats); the reaper evicts her,
	// which admits carol into the freed slot.
	clock = clock.Add(2 * time.Minute)
	if _, err := s.Heartbeat("bob"); err != nil {
		log.Fatal(err)
	}
	reaped, err := s.ReapIdle(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reaped: %v\n", reaped)
	if err := <-admitted; err != nil {
		log.Fatal(err)
	}
	fmt.Println("carol: admitted from the queue")

	// Bob finishes and closes, freeing a slot; alice re-attaches, resumes
	// from her eviction snapshot, and finishes.
	if err := s.Close("bob"); err != nil {
		log.Fatal(err)
	}
	aliceAgain, resumed, err := s.Attach(ctx, "alice", false)
	if err != nil || !resumed {
		log.Fatalf("re-attach alice: resumed=%v err=%v", resumed, err)
	}
	aliceRun, err = exp.ResumeSessionScenario(ctx, aliceAgain, aliceAgain.Snapshot())
	if err != nil {
		log.Fatal(err)
	}
	if err := aliceRun.Step(ctx, iters-aliceRun.Done()); err != nil {
		log.Fatal(err)
	}
	res, err := aliceRun.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: resumed and finished, digest %016x\n", res.StateDigest)
	if res.StateDigest != ref.StateDigest {
		log.Fatalf("alice diverged from the uninterrupted run: %016x != %016x",
			res.StateDigest, ref.StateDigest)
	}
	fmt.Println("bit-identical across preemption ✓")

	for _, id := range []string{"alice", "carol"} {
		if err := s.Close(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(tb.Recorder.RenderSessions())
}
