// Analytic-field: proves the pluggable kernel registry end to end. The
// "analytic" worker kind is registered by internal/phys/analytic — a
// package internal/core has never heard of — and is driven here through
// the generic core.Model handle over the full ibis channel stack: a star
// cluster orbits inside a rigid Plummer galaxy background, with the
// cluster's internal dynamics on a remote GPU worker and the background
// field evaluated by the analytic worker on another site.
//
// State moves with the batched columnar protocol, and the closing kick of
// each step is pipelined with the master-set pull through the async
// coupler API (core.Call futures + core.Gather): both RPCs are on the
// wide-area link before the coupler waits on either.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/phys/analytic"

	// Standard kinds (gravity for the cluster itself).
	_ "jungle/internal/kernels"
)

func main() {
	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	ctx := context.Background()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()

	// Cluster internal dynamics: PhiGRAPE on the remote LGM Tesla.
	g, err := sim.NewGravity(ctx, core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
		core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	// Galaxy background: the externally-registered analytic kind on UvA.
	galaxy := analytic.Plummer{M: 100, A: 1}
	m, err := sim.NewModel(ctx, core.Kind(analytic.Kind),
		core.WorkerSpec{Resource: "das4-uva", Channel: core.ChannelIbis},
		analytic.SetupArgs{M: galaxy.M, A: galaxy.A, Center: galaxy.Center})
	if err != nil {
		log.Fatal(err)
	}
	field := analytic.NewRemote(m)

	// A small cluster on a circular orbit at galactocentric radius R.
	const R = 3.0
	r2 := R*R + galaxy.A*galaxy.A
	vCirc := math.Sqrt(galaxy.M * R * R / (r2 * math.Sqrt(r2)))
	stars := ic.Plummer(128, 17)
	for i := range stars.Pos {
		stars.Pos[i][0] += R
		stars.Vel[i][1] += vCirc
	}
	if err := g.SetParticles(stars); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("128-star cluster orbiting a Plummer galaxy (M=%g, a=%g) at R=%g, v_circ=%.3f\n",
		galaxy.M, galaxy.A, R, vCirc)

	// Kick–drift–kick around the worker: background kicks from the
	// analytic field, internal dynamics on the gravity worker.
	const (
		dt    = 1.0 / 64
		steps = 16
	)
	fieldKick := func(h float64) ([]data.Vec3, error) {
		acc, _, _ := field.FieldAt(ctx, nil, nil, g.Positions(), 0)
		if err := m.Err(); err != nil {
			return nil, err
		}
		dv := make([]data.Vec3, len(acc))
		for i := range acc {
			dv[i] = acc[i].Scale(h)
		}
		return dv, nil
	}
	t := 0.0
	for s := 0; s < steps; s++ {
		dv, err := fieldKick(dt / 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.Kick(ctx, dv); err != nil {
			log.Fatal(err)
		}
		t += dt
		if err := g.EvolveTo(ctx, t); err != nil {
			log.Fatal(err)
		}
		if dv, err = fieldKick(dt / 2); err != nil {
			log.Fatal(err)
		}
		// Closing kick and master-set refresh are pipelined: both RPCs
		// ride the wide-area link together, and FIFO order per channel
		// guarantees the batched columnar pull observes the kicked
		// velocities — two calls, one round trip.
		if err := core.Gather(ctx, g.GoKick(dv), g.GoPull(stars)); err != nil {
			log.Fatal(err)
		}
	}

	com := stars.CenterOfMass()
	angle := math.Atan2(com[1], com[0])
	fmt.Printf("after t=%.3f: cluster center at (%.3f, %.3f, %.3f), orbit angle %.3f rad (expect ~%.3f)\n",
		t, com[0], com[1], com[2], angle, vCirc*t/R)
	fmt.Printf("galactocentric radius %.3f (started at %g)\n", math.Hypot(com[0], com[1]), R)
	fmt.Printf("virtual wall time: %v\n", sim.Elapsed())
}
