// Ensemble: a parameter sweep of agent-based colonies fanned through the
// control plane. A 16-member campaign (2 initial-condition streams × 8
// couplings) expands from a declarative plan; members sharing an initial
// condition share one staged setup blob; admission control bounds how
// many run at once, the rest waiting their FIFO turn in the queue. The
// same campaign run strictly sequentially must produce bit-identical
// per-member digests — completion order and slot contention are invisible
// in the science.
//
// The final round couples one colony to a live analytic field worker
// (abm.Remote.CouplePotential): reaction–diffusion in a Plummer
// potential, the agent-based analogue of the paper's coupled-kernel
// bridge.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jungle/internal/core"
	"jungle/internal/ensemble"
	"jungle/internal/phys/abm"
	"jungle/internal/phys/analytic"
	"jungle/internal/sched"

	_ "jungle/internal/kernels"
)

func main() {
	ctx := context.Background()

	sweep := func(sequential bool) *ensemble.Report {
		tb, err := core.NewLabTestbed()
		if err != nil {
			log.Fatal(err)
		}
		defer tb.Close()
		s := sched.New(tb.Daemon, sched.Config{
			MaxLive: 4, QueueCap: 16,
			RetryAfter: 2 * time.Millisecond, Recorder: tb.Recorder,
		})
		defer s.Shutdown()

		campaign := &ensemble.ABMSweep{
			Plan: &ensemble.Plan{
				Name:     "demo",
				BaseSeed: 7,
				Axes: []ensemble.Axis{
					{Name: ensemble.AxisIC, Values: []float64{0, 1}},
					{Name: ensemble.AxisB, Values: []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}},
				},
				SetupAxes: []string{ensemble.AxisIC},
			},
			Base:       abm.Params{W: 24, H: 24, D: 0.15, R: 0.6, B: 0.2, DT: 0.01},
			Steps:      24,
			Spec:       core.WorkerSpec{Channel: core.ChannelIbis},
			Sequential: sequential,
		}
		rep, err := campaign.Run(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fanned := sweep(false)
	fmt.Print(fanned.Render())
	serial := sweep(true)
	for i, d := range fanned.Digests() {
		if serial.Digests()[i] != d {
			log.Fatalf("member %d digest differs between fan-out and sequential", i)
		}
	}
	fmt.Printf("16 member digests bit-equal across fan-out and sequential arms\n")
	fmt.Printf("fan-out speedup over one slot: %.1fx\n\n",
		float64(serial.Makespan)/float64(fanned.Makespan))

	// Coupled finale: the same colony kind, now biased by a live field
	// worker instead of a staged potential column.
	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()
	p := abm.Params{W: 24, H: 24, D: 0.15, R: 0.6, B: 0.35, DT: 0.01}
	spec := core.WorkerSpec{Channel: core.ChannelIbis}
	colonyModel, err := sim.NewModel(ctx, core.Kind(abm.Kind), spec,
		abm.SetupArgs{W: p.W, H: p.H, D: p.D, R: p.R, B: p.B, DT: p.DT})
	if err != nil {
		log.Fatal(err)
	}
	fieldModel, err := sim.NewModel(ctx, core.Kind(analytic.Kind), spec,
		analytic.SetupArgs{M: 1.5, A: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	colony := abm.NewRemote(colonyModel, p)
	if err := colony.SeedState(ctx, 7); err != nil {
		log.Fatal(err)
	}
	field := analytic.NewRemote(fieldModel)
	for round := 0; round < 4; round++ {
		if err := colony.CouplePotential(ctx, field); err != nil {
			log.Fatal(err)
		}
		if err := colony.Step(ctx, 6); err != nil {
			log.Fatal(err)
		}
		st, err := colony.Stats(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coupled round %d: t=%.2f, colony mass %.1f\n", round+1, st.Time, st.Flops)
	}
}
