// Embedded-cluster: the paper's evaluation workload end to end (§6) — an
// embedded star cluster coupled from four models (gravitational dynamics,
// SPH gas, stellar evolution, gas↔star coupling), deployed across the
// jungle: PhiGRAPE on the LGM's Tesla, Gadget on 8 DAS-4 VU nodes, Octgrav
// on the DAS-4 TUD GPU nodes, SSE at UvA. The coupler stays on the desktop.
//
// Usage: embedded-cluster [-stars N] [-gas N] [-iters N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"jungle/internal/core"
	"jungle/internal/exp"
)

func main() {
	stars := flag.Int("stars", 100, "number of stars")
	gas := flag.Int("gas", 1000, "number of SPH gas particles")
	iters := flag.Int("iters", 2, "bridge iterations")
	flag.Parse()

	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	w := exp.Workload{
		Stars: *stars, Gas: *gas, GasFrac: 0.9, Seed: 42,
		DT: 1.0 / 64, Eps: 0.05,
	}
	placement := exp.LabScenarios(tb)[3] // the full jungle deployment

	fmt.Printf("deploying %d stars + %d gas across the jungle:\n", *stars, *gas)
	fmt.Printf("  gravity  -> %s (%s)\n", placement.Gravity.Resource, placement.GravityKernel)
	fmt.Printf("  hydro    -> %s (%d nodes, MPI)\n", placement.Hydro.Resource, placement.Hydro.Nodes)
	fmt.Printf("  coupling -> %s (%s)\n", placement.Field.Resource, placement.FieldKernel)
	fmt.Printf("  stellar  -> %s\n\n", placement.Stellar.Resource)

	res, err := exp.RunScenario(context.Background(), tb, w, placement, *iters)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("completed %d iterations\n", res.Iterations)
	fmt.Printf("virtual time per iteration: %v\n", res.PerIteration)
	fmt.Printf("worker startup (queueing, staging, hubs): %v\n", res.Setup)
	fmt.Printf("supernovae during the run: %d\n\n", res.Supernovae)

	fmt.Println("deployment status (IbisDeploy view):")
	fmt.Println(tb.Deployment.RenderStatus())
	fmt.Println("traffic by class (Fig. 11 data):")
	for class, bytes := range tb.Recorder.TotalByClass() {
		fmt.Printf("  %-10s %12d bytes\n", class, bytes)
	}
}
