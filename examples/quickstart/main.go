// Quickstart: the smallest end-to-end use of the library — start the lab
// testbed (Fig. 12's machines), run one gravitational-dynamics worker on
// the desktop, and evolve a small star cluster while checking energy
// conservation. This is the distributed-AMUSE equivalent of an AMUSE
// "hello world" script.
package main

import (
	"context"
	"fmt"
	"log"

	"jungle/internal/amuse/ic"
	"jungle/internal/amuse/units"
	"jungle/internal/core"

	// Link the standard kernel kinds into the binary.
	_ "jungle/internal/kernels"
)

func main() {
	// 1. Testbed + daemon (the paper's step: "start the Ibis daemon on the
	//    local machine").
	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	// 2. A simulation session with a physical scale: a 1000 MSun cluster
	//    with a 1 pc virial radius (checked unit conversions throughout).
	//    The session context bounds every coupler call; cancelling it
	//    would abort even calls blocked on a wide-area round trip.
	ctx := context.Background()
	conv, err := units.NewConverter(units.New(1000, units.MSun), units.New(1, units.Parsec))
	if err != nil {
		log.Fatalf("converter: %v", err)
	}
	sim := core.NewSimulation(ctx, tb.Daemon, conv)
	defer sim.Stop()

	// 3. One gravity worker on the local desktop via the default MPI
	//    channel (exactly AMUSE's default setup).
	grav, err := sim.NewGravity(
		ctx,
		core.WorkerSpec{Resource: "desktop", Channel: core.ChannelMPI},
		core.GravityOptions{Eps: 0.01},
	)
	if err != nil {
		log.Fatalf("gravity worker: %v", err)
	}

	// 4. A Plummer-sphere cluster, uploaded to the worker.
	stars := ic.Plummer(256, 42)
	if err := grav.SetParticles(stars); err != nil {
		log.Fatalf("set particles: %v", err)
	}

	k0, u0, err := grav.Energy(ctx)
	if err != nil {
		log.Fatalf("energy: %v", err)
	}

	// 5. Evolve for one physical megayear (converted, checked).
	tEnd, err := sim.TimeQuantity(units.New(1, units.Myr))
	if err != nil {
		log.Fatalf("time conversion: %v", err)
	}
	if err := grav.EvolveTo(ctx, tEnd); err != nil {
		log.Fatalf("evolve: %v", err)
	}

	k1, u1, err := grav.Energy(ctx)
	if err != nil {
		log.Fatalf("energy: %v", err)
	}

	fmt.Printf("evolved %d stars to t = 1 Myr (%.4f N-body times)\n", stars.Len(), tEnd)
	fmt.Printf("energy: E0 = %.6f, E1 = %.6f, |dE/E| = %.2e\n",
		k0+u0, k1+u1, abs((k1+u1-k0-u0)/(k0+u0)))
	fmt.Printf("virtual wall time on the desktop worker: %v\n", sim.Elapsed())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
