// Multi-kernel: demonstrates the paper's central Multi-Kernel property —
// "which kernel is used has no influence in the result of the simulation,
// but may have a dramatic effect on performance". The same cluster is
// evolved with the CPU kernel on the desktop and the GPU kernel on the
// remote LGM Tesla; positions are compared bit for bit while the virtual
// wall times differ dramatically.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"

	// Link the standard kernel kinds into the binary.
	_ "jungle/internal/kernels"
)

func run(tb *core.Testbed, kernel, resource, channel string, stars *data.Particles) (*data.Particles, time.Duration) {
	ctx := context.Background()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()
	g, err := sim.NewGravity(
		ctx,
		core.WorkerSpec{Resource: resource, Channel: channel},
		core.GravityOptions{Kernel: kernel, Eps: 0.01},
	)
	if err != nil {
		log.Fatalf("%s on %s: %v", kernel, resource, err)
	}
	if err := g.SetParticles(stars); err != nil {
		log.Fatal(err)
	}
	if err := g.EvolveTo(ctx, 0.125); err != nil {
		log.Fatal(err)
	}
	out := stars.Clone()
	if err := g.Sync(ctx, out); err != nil {
		log.Fatal(err)
	}
	return out, sim.Elapsed()
}

func main() {
	tb, err := core.NewLabTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	stars := ic.Plummer(400, 11)

	fmt.Println("evolving the same 400-star cluster with two kernels:")
	cpuOut, cpuTime := run(tb, "phigrape-cpu", "desktop", core.ChannelMPI, stars)
	fmt.Printf("  phigrape-cpu on desktop:     %v virtual\n", cpuTime)
	gpuOut, gpuTime := run(tb, "phigrape-gpu", "lgm", core.ChannelIbis, stars)
	fmt.Printf("  phigrape-gpu on remote LGM:  %v virtual\n", gpuTime)

	identical := true
	for i := range cpuOut.Pos {
		for d := 0; d < 3; d++ {
			if math.Float64bits(cpuOut.Pos[i][d]) != math.Float64bits(gpuOut.Pos[i][d]) {
				identical = false
			}
		}
	}
	fmt.Printf("\nresults bitwise identical: %v\n", identical)
	fmt.Printf("speedup from switching kernel (incl. WAN overhead): %.1fx\n",
		cpuTime.Seconds()/gpuTime.Seconds())
	if !identical {
		log.Fatal("Multi-Kernel property violated")
	}
}
