// Elastic gang: a K=4 gravity gang lands on a cluster where one node
// runs at quarter speed, so uniform slabs leave three ranks idling while
// the straggler finishes — the classic skew tax of gang scheduling on
// shared hardware. With rebalancing enabled the coupler samples per-rank
// compute time after each evolve, reshards the slab boundaries toward
// throughput-proportional widths (state never moves: every rank holds the
// full replicated arrays, so results stay bit-identical), and the skew
// gauge converges to ~1. The program then migrates the whole gang onto a
// clean uniform cluster mid-run via checkpoint/restore and shrinks it to
// K=2, showing the same handle surviving both moves.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/core"

	// Link the standard kernel kinds into the binary.
	_ "jungle/internal/kernels"
)

func main() {
	// site-mixed has four nodes, one derated to 0.25x; site-spare is
	// uniform. Both are reachable from the desktop over metro links.
	tb, err := core.NewElasticTestbed()
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	ctx := context.Background()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()
	sim.Monitor = tb.Recorder // feed the gang skew gauge

	grav, err := sim.NewGravity(ctx,
		core.WorkerSpec{Resource: tb.Mixed, Channel: core.ChannelIbis, Workers: 4},
		core.GravityOptions{Eps: 0.01},
	)
	if err != nil {
		log.Fatalf("gang: %v", err)
	}
	if err := grav.EnableRebalance(core.ElasticPolicy{}); err != nil {
		log.Fatalf("enable rebalance: %v", err)
	}
	if err := grav.SetParticles(ic.Plummer(512, 7)); err != nil {
		log.Fatalf("set particles: %v", err)
	}

	// Evolve in legs; after each one the rebalancer runs a measurement
	// round, sees the straggler's 4x compute time, and reshards.
	for i := 1; i <= 4; i++ {
		if err := grav.EvolveTo(ctx, float64(i)/256); err != nil {
			log.Fatalf("evolve: %v", err)
		}
		waitRounds(grav, uint64(i))
	}

	label := "gravity/" + tb.Mixed
	last, max, _ := tb.Recorder.GangSkew(label)
	fmt.Printf("skew on %s: peak %.2f, now %.2f (trigger 1.15)\n", tb.Mixed, max, last)
	fmt.Print(tb.Recorder.RenderGangs())

	// The spare cluster frees up: move the whole gang there live. The
	// coupler checkpoints the kernel, restarts the ranks on site-spare,
	// restores, and replays the channel wiring — the handle stays valid.
	if err := grav.Migrate(ctx, tb.Spare); err != nil {
		log.Fatalf("migrate: %v", err)
	}
	fmt.Printf("migrated gang to %s\n", tb.Spare)

	// Uniform nodes need fewer ranks for the same turnaround: shrink K.
	if err := grav.Resize(ctx, 2); err != nil {
		log.Fatalf("resize: %v", err)
	}
	if err := grav.EvolveTo(ctx, 5.0/256); err != nil {
		log.Fatalf("evolve after resize: %v", err)
	}

	k, u, err := grav.Energy(ctx)
	if err != nil {
		log.Fatalf("energy: %v", err)
	}
	fmt.Printf("finished on %d ranks at t=%.4f, E=%.6f\n",
		len(grav.GangWorkers()), 5.0/256, k+u)
}

// waitRounds blocks until the rebalancer has finished at least `want`
// asynchronous measurement rounds.
func waitRounds(g *core.Gravity, want uint64) {
	deadline := time.Now().Add(20 * time.Second)
	for g.RebalanceRounds() < want {
		if time.Now().After(deadline) {
			log.Fatalf("rebalancer stuck at %d rounds", g.RebalanceRounds())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
