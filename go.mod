module jungle

go 1.24
