// Package jungle is a Go reproduction of "High-Performance Distributed
// Multi-Model / Multi-Kernel Simulations: A Case-Study in Jungle Computing"
// (Drost et al., IPDPS workshops 2012, arXiv:1203.0321).
//
// The repository rebuilds the paper's full software stack from scratch:
// the Ibis middleware (SmartSockets connectivity, the IPL communication
// layer, JavaGAT resource access, Zorilla P2P middleware, IbisDeploy), a
// distributed version of the AMUSE astrophysical coupling framework (the
// paper's contribution), the physics kernels its evaluation uses (PhiGRAPE,
// Gadget, SSE, Octgrav/Fi equivalents under internal/phys), and a
// CESM-style climate exemplar. Physical testbeds (DAS-4 clusters,
// GPU machines, transatlantic lightpaths, firewalls) are substituted by a
// virtual network and device model (internal/vnet, internal/vtime): the
// physics runs for real and bit-identically across kernels and placements,
// while time and traffic are accounted virtually.
//
// See DESIGN.md for the system inventory, the kernel-registry and
// batched state-transfer architecture, and measured-vs-paper notes; the
// examples directory holds runnable entry points. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation
// (run: go test -bench=. -benchmem).
package jungle
