// Package jungle is a Go reproduction of "High-Performance Distributed
// Multi-Model / Multi-Kernel Simulations: A Case-Study in Jungle Computing"
// (Drost et al., IPDPS workshops 2012, arXiv:1203.0321).
//
// The repository rebuilds the paper's full software stack from scratch:
// the Ibis middleware (SmartSockets connectivity, the IPL communication
// layer, JavaGAT resource access, Zorilla P2P middleware, IbisDeploy), a
// distributed version of the AMUSE astrophysical coupling framework (the
// paper's contribution), the physics kernels its evaluation uses (PhiGRAPE,
// Gadget, SSE, Octgrav/Fi equivalents under internal/phys), and a
// CESM-style climate exemplar. Physical testbeds (DAS-4 clusters,
// GPU machines, transatlantic lightpaths, firewalls) are substituted by a
// virtual network and device model (internal/vnet, internal/vtime): the
// physics runs for real and bit-identically across kernels and placements,
// while time and traffic are accounted virtually.
//
// The coupler API is asynchronous and context-aware, reproducing AMUSE's
// asynchronous function-call pattern: every RPC is a core.Call future
// (Model.Go / GoKick / GoPull / ...), core.Gather fans pipelined calls
// back in, and context.Context flows from the Simulation session down
// through every channel into the daemon so deadlines and cancellation
// abort in-flight wide-area waits. The bridge integrator issues each
// phase's calls to all models before waiting on any — the paper's "many
// slow links at once" execution shape.
//
// Bulk state moves on a direct worker-to-worker data plane: the coupler
// orchestrates a transfer by RPC (Simulation.TransferState,
// data.RemoteChannel), but the column bytes stream between workers over
// SmartSockets virtual connections through the hub overlay, never
// crossing the user's machine — with a transparent fallback to the
// coupler hairpin when no peer path exists. The bridge stages each
// p-kick's field inputs on the coupling worker the same way.
//
// A kernel can span multiple workers: WorkerSpec.Workers = K deploys it
// as a gang of K rank workers running one domain-decomposed instance
// behind a single model handle (the paper's models are internally
// MPI-parallel; here the intra-model parallelism crosses worker
// processes). Ranks are co-located on one site, split each force
// evaluation by spatial slab, and exchange halo columns and energy
// reductions over their own peer links on the overlay — the coupler API
// and the bridge are unchanged, and a K-rank gang reproduces the solo
// worker's results bit for bit.
//
// Failures are a recovery path, not an endpoint: every standard service
// can snapshot and restore its complete model state
// (kernel.Checkpointable), Simulation.Checkpoint drains each worker's
// pipeline and streams the snapshots to a daemon-side store over the
// peer plane, and the resulting manifest is self-contained — a killed
// worker (solo or gang rank) is transparently replaced with its state
// restored, and a killed run resumes bit-compatibly from its last
// checkpoint (ResumeSimulation, amuse-run -resume).
//
// See README.md for the front door and quickstart, ARCHITECTURE.md for
// the top-down system map (the onboarding document) and DESIGN.md for
// the system inventory, the kernel-registry, batched state-transfer,
// async-coupler, direct-data-plane, sharded-kernel and
// checkpoint-recovery architecture, plus measured-vs-paper notes; the
// examples directory holds runnable entry points.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation (run: go test -bench=. -benchmem).
package jungle
