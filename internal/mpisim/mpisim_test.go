package mpisim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"jungle/internal/trace"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// clusterWorld builds an n-rank world over an n-node virtual cluster.
func clusterWorld(t *testing.T, n int) (*vnet.Network, *World) {
	t.Helper()
	net := vnet.New()
	c, err := net.AddCluster(vnet.ClusterSpec{
		Name: "test", Site: "site", Nodes: n,
		FrontendPolicy: vnet.Open, NodePolicy: vnet.Open,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(net, c.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return net, w
}

func TestWorldSizeAndHosts(t *testing.T) {
	_, w := clusterWorld(t, 4)
	if w.Size() != 4 {
		t.Fatalf("size = %d, want 4", w.Size())
	}
	hosts := w.Hosts()
	if len(hosts) != 4 || hosts[0] != "test.node00" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestPointToPoint(t *testing.T) {
	_, w := clusterWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, []byte("hello"))
		}
		data, err := r.Recv(0)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			t.Errorf("rank 1 got %q", data)
		}
		if r.Now() <= 0 {
			t.Errorf("receive did not advance the clock: %v", r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelfRejected(t *testing.T) {
	_, w := clusterWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(0, nil); err == nil {
				t.Error("send to self succeeded")
			}
			if err := r.Send(7, nil); err == nil {
				t.Error("send to out-of-range rank succeeded")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	_, w := clusterWorld(t, 4)
	err := w.Run(func(r *Rank) error {
		// Rank clocks diverge by compute, then a barrier re-converges them.
		r.Compute(time.Duration(r.ID()) * time.Second)
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the barrier every rank must be at >= the slowest rank's time.
	slowest := 3 * time.Second
	for i := 0; i < w.Size(); i++ {
		if now := w.Rank(i).Now(); now < slowest {
			t.Errorf("rank %d at %v, want >= %v", i, now, slowest)
		}
	}
}

func TestBcast(t *testing.T) {
	_, w := clusterWorld(t, 3)
	err := w.Run(func(r *Rank) error {
		var in []byte
		if r.ID() == 1 {
			in = []byte{1, 2, 3}
		}
		out, err := r.Bcast(1, in)
		if err != nil {
			return err
		}
		if len(out) != 3 || out[2] != 3 {
			t.Errorf("rank %d bcast got %v", r.ID(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	_, w := clusterWorld(t, 4)
	err := w.Run(func(r *Rank) error {
		x := []float64{float64(r.ID()), 1}
		sum, err := r.AllreduceSum(x)
		if err != nil {
			return err
		}
		if sum[0] != 6 || sum[1] != 4 { // 0+1+2+3, 1*4
			t.Errorf("rank %d sum = %v", r.ID(), sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMax(t *testing.T) {
	_, w := clusterWorld(t, 3)
	err := w.Run(func(r *Rank) error {
		m, err := r.AllreduceMax([]float64{float64(-r.ID()), float64(r.ID())})
		if err != nil {
			return err
		}
		if m[0] != 0 || m[1] != 2 {
			t.Errorf("rank %d max = %v", r.ID(), m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherUnequalBlocks(t *testing.T) {
	_, w := clusterWorld(t, 3)
	// 7 elements over 3 ranks: blocks of 3, 2, 2.
	err := w.Run(func(r *Rank) error {
		lo, hi := r.Slab(7)
		block := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			block = append(block, float64(i)*10)
		}
		all, err := r.AllgatherFloats(block)
		if err != nil {
			return err
		}
		if len(all) != 7 {
			t.Errorf("rank %d gathered %d elements", r.ID(), len(all))
			return nil
		}
		for i, v := range all {
			if v != float64(i)*10 {
				t.Errorf("rank %d element %d = %v", r.ID(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	_, w := clusterWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		peer := 1 - r.ID()
		got, err := r.SendRecv(peer, []byte{byte(r.ID())})
		if err != nil {
			return err
		}
		if got[0] != byte(peer) {
			t.Errorf("rank %d exchanged %v", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficRecordedAsMPI(t *testing.T) {
	net, w := clusterWorld(t, 2)
	rec := trace.New()
	net.SetRecorder(rec)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, make([]byte, 1000))
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := rec.Bytes("test.node00", "test.node01", "mpi"); b < 1000 {
		t.Fatalf("mpi traffic %d bytes, want >= 1000", b)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	_, w := clusterWorld(t, 2)
	var small, large time.Duration
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, make([]byte, 100)); err != nil {
				return err
			}
			return r.Send(1, make([]byte, 10_000_000))
		}
		if _, err := r.Recv(0); err != nil {
			return err
		}
		small = r.Now()
		if _, err := r.Recv(0); err != nil {
			return err
		}
		large = r.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("10MB arrival %v not after 100B arrival %v", large, small)
	}
}

func TestComputeFlopsAdvancesClock(t *testing.T) {
	_, w := clusterWorld(t, 1)
	dev := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 1, Cores: 1}
	r := w.Rank(0)
	r.ComputeFlops(dev, 2e9, 1)
	if got := r.Now(); got < 2*time.Second {
		t.Fatalf("2 Gflop on 1 Gflop/s device took %v, want >= 2s", got)
	}
}

func TestMaxTimeAndSyncTo(t *testing.T) {
	_, w := clusterWorld(t, 3)
	w.Rank(1).Compute(5 * time.Second)
	if got := w.MaxTime(); got != 5*time.Second {
		t.Fatalf("MaxTime = %v", got)
	}
	w.SyncTo(7 * time.Second)
	for i := 0; i < 3; i++ {
		if got := w.Rank(i).Now(); got != 7*time.Second {
			t.Fatalf("rank %d at %v after SyncTo", i, got)
		}
	}
	// SyncTo never moves clocks backwards.
	w.SyncTo(time.Second)
	if got := w.Rank(0).Now(); got != 7*time.Second {
		t.Fatalf("SyncTo moved clock backwards to %v", got)
	}
}

func TestMultipleWorldsCoexist(t *testing.T) {
	net := vnet.New()
	c, err := net.AddCluster(vnet.ClusterSpec{
		Name: "shared", Site: "s", Nodes: 2,
		FrontendPolicy: vnet.Open, NodePolicy: vnet.Open,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWorld(net, c.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := NewWorld(net, c.NodeName) // same hosts, distinct port range
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for _, w := range []*World{w1, w2} {
		if err := w.Run(func(r *Rank) error { return r.Barrier() }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultipleRanksPerHost(t *testing.T) {
	net := vnet.New()
	if _, err := net.AddHost("big", "s", vnet.Open); err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(net, []string{"big", "big", "big", "big"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *Rank) error {
		sum, err := r.AllreduceSum([]float64{1})
		if err != nil {
			return err
		}
		if sum[0] != 4 {
			t.Errorf("rank %d sum = %v", r.ID(), sum[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSlabProperty checks the slab decomposition invariants: blocks are
// contiguous, non-overlapping, cover [0,n), and balanced within one element.
func TestSlabProperty(t *testing.T) {
	f := func(nRaw uint16, sizeRaw uint8) bool {
		n := int(nRaw)
		size := int(sizeRaw)%16 + 1
		prev := 0
		minLen, maxLen := n+1, -1
		for rank := 0; rank < size; rank++ {
			lo, hi := Slab(n, rank, size)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
			if l := hi - lo; l < minLen {
				minLen = l
			}
			if l := hi - lo; l > maxLen {
				maxLen = l
			}
		}
		return prev == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceDeterministic verifies the fixed summation order: two
// identical runs produce bitwise-identical results.
func TestAllreduceDeterministic(t *testing.T) {
	run := func() []float64 {
		_, w := clusterWorld(t, 4)
		var out []float64
		err := w.Run(func(r *Rank) error {
			x := []float64{math.Pi * float64(r.ID()+1), 1e-17, 1e17}
			s, err := r.AllreduceSum(x)
			if err != nil {
				return err
			}
			if r.ID() == 0 {
				out = s
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("element %d differs: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	f := func(x []float64) bool {
		y, err := bytesToFloats(floatsToBytes(x))
		if err != nil || len(y) != len(x) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bytesToFloats(make([]byte, 7)); err == nil {
		t.Fatal("odd-length payload decoded")
	}
}
