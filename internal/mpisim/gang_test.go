package mpisim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// runGangs executes f concurrently on every gang rank and joins errors.
func runGangs(gangs []*Gang, f func(g *Gang) error) error {
	errs := make([]error, len(gangs))
	var wg sync.WaitGroup
	for i, g := range gangs {
		wg.Add(1)
		go func(i int, g *Gang) {
			defer wg.Done()
			errs[i] = f(g)
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func TestGangCollectives(t *testing.T) {
	const size = 4
	gangs := LocalGangs(size, time.Millisecond)
	err := runGangs(gangs, func(g *Gang) error {
		sum, err := AllreduceSum(g, []float64{float64(g.ID() + 1)})
		if err != nil {
			return err
		}
		if sum[0] != 1+2+3+4 {
			t.Errorf("rank %d: allreduce sum = %v", g.ID(), sum[0])
		}
		blobs, err := AllgatherBytes(g, []byte{byte(g.ID()), byte(g.ID())})
		if err != nil {
			return err
		}
		if len(blobs) != size {
			t.Errorf("rank %d: %d blobs", g.ID(), len(blobs))
		}
		for p, b := range blobs {
			if len(b) != 2 || b[0] != byte(p) {
				t.Errorf("rank %d: blob %d = %v", g.ID(), p, b)
			}
		}
		return Barrier(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The collectives exchanged real messages: every clock advanced.
	for _, g := range gangs {
		if g.Clock().Now() == 0 {
			t.Fatalf("rank %d clock did not advance", g.ID())
		}
	}
}

// TestGangBrokenFailsFast: after a link failure every subsequent
// collective fails immediately with ErrGangBroken instead of deadlocking
// on the lost peer.
func TestGangBrokenFailsFast(t *testing.T) {
	gangs := LocalGangs(2, 0)
	gangs[0].links[1].Close() // rank 1's worker "dies"
	if err := gangs[0].Send(1, []byte("x")); err == nil {
		t.Fatal("send on closed link succeeded")
	}
	if err := gangs[0].Err(); !errors.Is(err, ErrGangBroken) {
		t.Fatalf("sticky error %v, want ErrGangBroken", err)
	}
	if _, err := AllreduceSum(gangs[0], []float64{1}); !errors.Is(err, ErrGangBroken) {
		t.Fatalf("collective after break: %v, want ErrGangBroken", err)
	}
}

func TestGangValidation(t *testing.T) {
	if _, err := NewGang(0, 1, []Link{nil}); err == nil {
		t.Fatal("size-1 gang accepted")
	}
	if _, err := NewGang(2, 2, make([]Link, 2)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	a, _ := localPair(0)
	if _, err := NewGang(0, 2, []Link{a, nil}); err == nil {
		t.Fatal("bad link table accepted")
	}
}
