// Package mpisim provides the intra-model parallelism substrate of the
// reproduction: MPI-style communicators whose collectives (Barrier, Bcast,
// AllreduceSum/Max, AllgatherFloats/Bytes, SendRecv) are generic over the
// Comm interface and run on two kinds of rank:
//
//   - World/Rank — goroutine ranks pinned to the virtual hosts of one
//     multi-node worker job (the paper's "Gadget runs on 8 nodes with
//     C/MPI"). Every message crosses the virtual network with traffic
//     class "mpi" and advances per-rank virtual clocks, which is how
//     Fig. 11 distinguishes intra-model from IPL traffic.
//   - Gang — process ranks of a domain-decomposed multi-worker kernel
//     (one kernel sharded across K worker processes, possibly on many
//     nodes of a site). Rank links are pluggable Link transports; in
//     production they are SmartSockets peer connections on the overlay,
//     wired by internal/core's gang_init, and each Gang advances the
//     virtual clock of the worker service hosting it.
//
// Both communicators move real data (kernels are genuinely data-parallel
// across ranks) and account virtual time from vnet link models, which is
// the substitution this repository makes for physical clusters.
package mpisim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// Errors returned by the package.
var (
	ErrWorldClosed = errors.New("mpisim: world closed")
	ErrBadRank     = errors.New("mpisim: rank out of range")
)

// basePortCounter hands out distinct listener port ranges so multiple worlds
// (and multiple workers per host) can coexist on one network.
var basePortCounter atomic.Int64

const worldPortStride = 1024

// World is a communicator spanning one rank per entry of hosts. Host names
// may repeat (several ranks per node, as with multi-core MPI jobs).
type World struct {
	net   *vnet.Network
	hosts []string
	ranks []*Rank

	mu     sync.Mutex
	closed bool

	listeners []*vnet.Listener
	conns     [][]*vnet.Conn // conns[i][j], i<j owns; symmetric entries share
}

// NewWorld builds a fully connected communicator over the given hosts. All
// pairwise connections are established eagerly; ports are allocated from a
// world-private range so worlds never collide.
func NewWorld(network *vnet.Network, hosts []string) (*World, error) {
	if len(hosts) == 0 {
		return nil, errors.New("mpisim: world needs at least one rank")
	}
	base := 30000 + int(basePortCounter.Add(1))*worldPortStride
	w := &World{net: network, hosts: append([]string(nil), hosts...)}
	w.conns = make([][]*vnet.Conn, len(hosts))
	for i := range w.conns {
		w.conns[i] = make([]*vnet.Conn, len(hosts))
	}

	// One listener per rank; rank i dials every rank j>i. Handshakes carry
	// the dialer's rank so the acceptor can place the conn.
	type accepted struct {
		from int
		conn *vnet.Conn
	}
	var cleanup = func() {
		for _, l := range w.listeners {
			l.Close()
		}
		for i := range w.conns {
			for j := range w.conns[i] {
				if i < j && w.conns[i][j] != nil {
					w.conns[i][j].Close()
				}
			}
		}
	}
	acceptCh := make([]chan accepted, len(hosts))
	for j := range hosts {
		if countBefore(hosts, j) > 0 {
			// A previous rank on the same host already listens on its own
			// port; each rank gets a distinct port so no sharing is needed.
			_ = j
		}
		l, err := network.Listen(hosts[j], base+j)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("mpisim: rank %d listen on %s: %w", j, hosts[j], err)
		}
		w.listeners = append(w.listeners, l)
		ch := make(chan accepted, len(hosts))
		acceptCh[j] = ch
		go func(l *vnet.Listener, ch chan accepted) {
			for {
				conn, err := l.Accept()
				if err != nil {
					close(ch)
					return
				}
				msg, err := conn.Recv()
				if err != nil || len(msg.Data) != 4 {
					conn.Close()
					continue
				}
				conn.SetClass("mpi")
				ch <- accepted{from: int(binary.LittleEndian.Uint32(msg.Data)), conn: conn}
			}
		}(l, ch)
	}
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			conn, err := network.Dial(hosts[i], hosts[j], base+j)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("mpisim: connect rank %d->%d: %w", i, j, err)
			}
			conn.SetClass("mpi")
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(i))
			if _, err := conn.Send(hdr[:], 0); err != nil {
				cleanup()
				return nil, err
			}
			w.conns[i][j] = conn
		}
	}
	// Collect the accept-side endpoints.
	for j := range hosts {
		for i := 0; i < j; i++ {
			a, ok := <-acceptCh[j]
			if !ok {
				cleanup()
				return nil, fmt.Errorf("mpisim: rank %d accept failed", j)
			}
			w.conns[j][a.from] = a.conn
		}
	}

	for i, h := range hosts {
		w.ranks = append(w.ranks, &Rank{world: w, id: i, host: h, clock: vtime.NewClock()})
	}
	return w, nil
}

func countBefore(hosts []string, j int) int {
	n := 0
	for i := 0; i < j; i++ {
		if hosts[i] == hosts[j] {
			n++
		}
	}
	return n
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Hosts returns the host of each rank.
func (w *World) Hosts() []string { return append([]string(nil), w.hosts...) }

// Rank returns the handle for rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Close tears down all listeners and connections.
func (w *World) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	for _, l := range w.listeners {
		l.Close()
	}
	for i := range w.conns {
		for j := range w.conns[i] {
			if i < j && w.conns[i][j] != nil {
				w.conns[i][j].Close()
			}
		}
	}
}

// Run executes f concurrently on every rank and waits for all to finish.
// The first non-nil error is returned (all ranks still run to completion).
func (w *World) Run(f func(r *Rank) error) error {
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			errs[i] = f(r)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// MaxTime returns the latest virtual clock across ranks — the completion
// time of the parallel section, which is what the worker reports upstream.
func (w *World) MaxTime() time.Duration {
	var max time.Duration
	for _, r := range w.ranks {
		if t := r.clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// SyncTo advances every rank clock to at least t (used when a worker starts
// a new request at the coupler-provided virtual time).
func (w *World) SyncTo(t time.Duration) {
	for _, r := range w.ranks {
		r.clock.AdvanceTo(t)
	}
}

// Rank is one member of a World. All methods must be called from the
// goroutine running this rank (the function passed to Run), matching MPI's
// single-threaded-per-rank discipline.
type Rank struct {
	world *World
	id    int
	host  string
	clock *vtime.Clock
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return len(r.world.ranks) }

// Host returns the virtual host this rank runs on.
func (r *Rank) Host() string { return r.host }

// Clock exposes the rank's virtual clock.
func (r *Rank) Clock() *vtime.Clock { return r.clock }

// Now returns the rank's current virtual time.
func (r *Rank) Now() time.Duration { return r.clock.Now() }

// Compute advances the rank's clock by the given computation duration.
func (r *Rank) Compute(d time.Duration) { r.clock.Advance(d) }

// ComputeFlops advances the rank's clock by the time dev needs for the given
// flop count using n cores.
func (r *Rank) ComputeFlops(dev *vtime.Device, flops float64, n int) {
	r.clock.Advance(dev.Time(flops, n))
}

func (r *Rank) conn(peer int) (*vnet.Conn, error) {
	if peer < 0 || peer >= len(r.world.ranks) || peer == r.id {
		return nil, fmt.Errorf("%w: %d (self %d, size %d)", ErrBadRank, peer, r.id, r.Size())
	}
	c := r.world.conns[r.id][peer]
	if c == nil {
		return nil, ErrWorldClosed
	}
	return c, nil
}

// Send transmits data to peer, stamped with this rank's virtual time.
func (r *Rank) Send(to int, data []byte) error {
	c, err := r.conn(to)
	if err != nil {
		return err
	}
	_, err = c.Send(data, r.clock.Now())
	return err
}

// Recv blocks for the next message from peer and advances this rank's clock
// to the virtual arrival time.
func (r *Rank) Recv(from int) ([]byte, error) {
	c, err := r.conn(from)
	if err != nil {
		return nil, err
	}
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	r.clock.AdvanceTo(msg.Arrival)
	return msg.Data, nil
}

// SendFloats sends a float64 slice in little-endian wire form.
func (r *Rank) SendFloats(to int, x []float64) error {
	return r.Send(to, floatsToBytes(x))
}

// RecvFloats receives a float64 slice from peer.
func (r *Rank) RecvFloats(from int) ([]float64, error) {
	b, err := r.Recv(from)
	if err != nil {
		return nil, err
	}
	return bytesToFloats(b)
}

func floatsToBytes(x []float64) []byte {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func bytesToFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpisim: float payload length %d not a multiple of 8", len(b))
	}
	x := make([]float64, len(b)/8)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return x, nil
}

// Slab returns this rank's half-open index range [lo, hi) of an n-element
// domain decomposed into near-equal contiguous blocks — the standard slab
// decomposition used by the SPH worker.
func (r *Rank) Slab(n int) (lo, hi int) {
	return Slab(n, r.id, r.Size())
}

// Slab decomposes n elements over size ranks and returns rank's block.
func Slab(n, rank, size int) (lo, hi int) {
	q, rem := n/size, n%size
	lo = rank*q + min(rank, rem)
	hi = lo + q
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UniformCuts returns the size+1 slab boundaries of the uniform
// decomposition, so that CutRange(UniformCuts(n, size), r) == Slab(n, r,
// size) for every rank r.
func UniformCuts(n, size int) []int {
	cuts := make([]int, size+1)
	for r := 0; r < size; r++ {
		cuts[r], _ = Slab(n, r, size)
	}
	cuts[size] = n
	return cuts
}

// CutRange returns rank's half-open row range under an explicit cuts
// vector (size+1 monotone boundaries with cuts[0] == 0). It is the
// cuts-aware generalization of Slab: a nil cuts vector falls back to the
// uniform decomposition, which keeps default (never-resharded) gangs on
// exactly the code path they used before elastic gangs existed.
func CutRange(cuts []int, rank, n, size int) (lo, hi int) {
	if cuts == nil {
		return Slab(n, rank, size)
	}
	return cuts[rank], cuts[rank+1]
}

// WeightedCuts builds a cuts vector assigning each rank a row count
// proportional to its weight (a throughput estimate: rows per unit
// compute time). Every rank keeps at least one row while n allows, so a
// stalled rank can never be starved into a zero-length slab that would
// stop producing timing samples. Non-positive or non-finite weights are
// treated as the smallest positive weight present (or uniform if none
// is).
func WeightedCuts(n int, weights []float64) []int {
	size := len(weights)
	w := make([]float64, size)
	minW := math.Inf(1)
	for _, x := range weights {
		if x > 0 && !math.IsInf(x, 1) && minW > x {
			minW = x
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	var total float64
	for i, x := range weights {
		if x <= 0 || math.IsInf(x, 1) || math.IsNaN(x) {
			x = minW
		}
		w[i] = x
		total += x
	}
	rows := make([]int, size)
	assigned := 0
	for i := range w {
		rows[i] = int(float64(n) * w[i] / total)
		if rows[i] < 1 && n >= size {
			rows[i] = 1
		}
		assigned += rows[i]
	}
	// Distribute the remainder (or claw back an overshoot caused by the
	// min-one-row clamp) one row at a time, always adjusting the rank
	// whose current allocation is furthest below (resp. above) its ideal
	// share. Deterministic: ties go to the lowest rank.
	for assigned != n {
		step := 1
		if assigned > n {
			step = -1
		}
		best, bestGap := -1, math.Inf(-1)
		for i := range rows {
			if step < 0 && rows[i] <= 1 && n >= size {
				continue
			}
			ideal := float64(n) * w[i] / total
			gap := float64(step) * (ideal - float64(rows[i]))
			if gap > bestGap {
				best, bestGap = i, gap
			}
		}
		if best < 0 {
			best = 0
		}
		rows[best] += step
		assigned += step
	}
	cuts := make([]int, size+1)
	for i, r := range rows {
		cuts[i+1] = cuts[i] + r
	}
	return cuts
}

// ValidCuts reports whether cuts is a well-formed boundary vector for n
// rows over size ranks: size+1 entries, starting at 0, ending at n,
// non-decreasing.
func ValidCuts(cuts []int, n, size int) error {
	if len(cuts) != size+1 {
		return fmt.Errorf("mpisim: cuts has %d boundaries, want %d", len(cuts), size+1)
	}
	if cuts[0] != 0 || cuts[size] != n {
		return fmt.Errorf("mpisim: cuts span [%d, %d), want [0, %d)", cuts[0], cuts[size], n)
	}
	for i := 1; i <= size; i++ {
		if cuts[i] < cuts[i-1] {
			return fmt.Errorf("mpisim: cuts not monotone at rank %d (%d < %d)", i-1, cuts[i], cuts[i-1])
		}
	}
	return nil
}
