package mpisim

import (
	"math"
	"testing"
)

// TestUniformCutsMatchSlab: the cuts form of the uniform decomposition
// must reproduce Slab exactly, for even and ragged divisions — the
// never-resharded code path and the cuts path are the same decomposition.
func TestUniformCutsMatchSlab(t *testing.T) {
	for _, tc := range []struct{ n, size int }{
		{12, 4}, {13, 4}, {7, 3}, {1, 1}, {5, 8}, {100, 7},
	} {
		cuts := UniformCuts(tc.n, tc.size)
		if err := ValidCuts(cuts, tc.n, tc.size); err != nil {
			t.Fatalf("UniformCuts(%d, %d) invalid: %v", tc.n, tc.size, err)
		}
		for r := 0; r < tc.size; r++ {
			wantLo, wantHi := Slab(tc.n, r, tc.size)
			gotLo, gotHi := CutRange(cuts, r, tc.n, tc.size)
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("n=%d size=%d rank %d: cuts [%d,%d), slab [%d,%d)",
					tc.n, tc.size, r, gotLo, gotHi, wantLo, wantHi)
			}
		}
	}
}

// TestCutRangeNilFallsBack: a nil cuts vector is the uniform slab — the
// contract that keeps default gangs byte-identical to pre-elastic runs.
func TestCutRangeNilFallsBack(t *testing.T) {
	for r := 0; r < 3; r++ {
		wantLo, wantHi := Slab(10, r, 3)
		gotLo, gotHi := CutRange(nil, r, 10, 3)
		if gotLo != wantLo || gotHi != wantHi {
			t.Fatalf("rank %d: nil cuts [%d,%d), want slab [%d,%d)", r, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

// TestWeightedCutsProportional: rows follow throughput weights, cover
// [0, n) exactly, and a 4x-slower rank gets roughly a quarter the rows.
func TestWeightedCutsProportional(t *testing.T) {
	const n = 256
	cuts := WeightedCuts(n, []float64{1, 1, 1, 0.25})
	if err := ValidCuts(cuts, n, 4); err != nil {
		t.Fatal(err)
	}
	rows := make([]int, 4)
	for i := range rows {
		rows[i] = cuts[i+1] - cuts[i]
	}
	// Ideal shares: 256/3.25 ≈ 78.8 per fast rank, 19.7 for the slow one.
	for i := 0; i < 3; i++ {
		if rows[i] < 77 || rows[i] > 81 {
			t.Fatalf("fast rank %d rows = %d, want ≈79 (cuts %v)", i, rows[i], cuts)
		}
	}
	if rows[3] < 18 || rows[3] > 21 {
		t.Fatalf("slow rank rows = %d, want ≈20 (cuts %v)", rows[3], cuts)
	}
}

// TestWeightedCutsMinOneRow: extreme weights cannot starve a rank to a
// zero-width slab while n >= size — a stalled rank must keep producing
// timing samples so the next round can rehabilitate it.
func TestWeightedCutsMinOneRow(t *testing.T) {
	cuts := WeightedCuts(100, []float64{1000, 1, 1e-9, 1e-9})
	if err := ValidCuts(cuts, 100, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if cuts[i+1]-cuts[i] < 1 {
			t.Fatalf("rank %d starved: cuts %v", i, cuts)
		}
	}
}

// TestWeightedCutsDegenerateWeights: zeros, NaN and Inf entries fall back
// to the smallest positive weight (or uniform when none is), never panic,
// and always produce a valid vector.
func TestWeightedCutsDegenerateWeights(t *testing.T) {
	cases := [][]float64{
		{0, 0, 0},
		{math.NaN(), 1, 1},
		{math.Inf(1), 2, 2},
		{-1, -2, -3},
		{0, math.NaN(), math.Inf(1)},
	}
	for _, w := range cases {
		cuts := WeightedCuts(30, w)
		if err := ValidCuts(cuts, 30, len(w)); err != nil {
			t.Fatalf("weights %v: %v (cuts %v)", w, err, cuts)
		}
	}
	// All-degenerate weights mean uniform: equal thirds.
	cuts := WeightedCuts(30, []float64{0, 0, 0})
	for i := 0; i < 3; i++ {
		if cuts[i+1]-cuts[i] != 10 {
			t.Fatalf("all-zero weights not uniform: %v", cuts)
		}
	}
}

// TestWeightedCutsDeterministic: same inputs, same cuts — the rebalancer
// must be replayable.
func TestWeightedCutsDeterministic(t *testing.T) {
	w := []float64{3, 1, 2, 1}
	first := WeightedCuts(97, w)
	for i := 0; i < 10; i++ {
		got := WeightedCuts(97, w)
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("run %d: cuts %v != %v", i, got, first)
			}
		}
	}
}

// TestValidCutsRejects: wrong length, bad span and non-monotone
// boundaries are all structured errors.
func TestValidCutsRejects(t *testing.T) {
	if err := ValidCuts([]int{0, 5, 10}, 10, 3); err == nil {
		t.Fatal("wrong-length cuts accepted")
	}
	if err := ValidCuts([]int{1, 5, 10}, 10, 2); err == nil {
		t.Fatal("cuts not starting at 0 accepted")
	}
	if err := ValidCuts([]int{0, 5, 9}, 10, 2); err == nil {
		t.Fatal("cuts not ending at n accepted")
	}
	if err := ValidCuts([]int{0, 7, 5, 10}, 10, 3); err == nil {
		t.Fatal("non-monotone cuts accepted")
	}
	if err := ValidCuts([]int{0, 5, 10}, 10, 2); err != nil {
		t.Fatalf("valid cuts rejected: %v", err)
	}
}
