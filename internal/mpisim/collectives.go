package mpisim

import (
	"encoding/binary"
	"fmt"

	"jungle/internal/vtime"
)

// Collective operations. All are implemented over the point-to-point layer
// with rank 0 (or the given root) acting as coordinator, so virtual clocks
// synchronize exactly the way a flat-tree MPI implementation would: the
// root's clock advances to the latest arrival, and every participant's clock
// advances to the arrival of the root's release/broadcast message.
//
// The collectives are generic over Comm, so they run identically whether
// the ranks are goroutines of one multi-node worker (World/Rank) or worker
// processes of a sharded kernel gang exchanging over the overlay (Gang).
// Every member of the communicator must call the same collective in the
// same order, as in MPI. Mismatched calls deadlock, also as in MPI.

// Comm is the communicator surface the collectives need: identity, a
// virtual clock, and ordered point-to-point messaging. *Rank and *Gang
// both implement it.
type Comm interface {
	// ID returns this member's rank number.
	ID() int
	// Size returns the communicator size.
	Size() int
	// Clock returns the member's virtual clock (sends are stamped with it,
	// receives advance it).
	Clock() *vtime.Clock
	// Send transmits data to a peer rank.
	Send(to int, data []byte) error
	// Recv blocks for the next message from a peer rank.
	Recv(from int) ([]byte, error)
}

// ComputeFlops advances a member's clock by the time dev needs for the
// given flop count using n cores — per-rank compute accounting between
// exchanges.
func ComputeFlops(c Comm, dev *vtime.Device, flops float64, n int) {
	c.Clock().Advance(dev.Time(flops, n))
}

func sendFloats(c Comm, to int, x []float64) error {
	return c.Send(to, floatsToBytes(x))
}

func recvFloats(c Comm, from int) ([]float64, error) {
	b, err := c.Recv(from)
	if err != nil {
		return nil, err
	}
	return bytesToFloats(b)
}

// Barrier blocks until all ranks arrive. Clocks: all ranks leave the barrier
// at (root receipt of last arrival) + release delivery time to them.
func Barrier(c Comm) error {
	const root = 0
	if c.Size() == 1 {
		return nil
	}
	if c.ID() == root {
		for p := 1; p < c.Size(); p++ {
			if _, err := c.Recv(p); err != nil {
				return fmt.Errorf("mpisim: barrier gather from %d: %w", p, err)
			}
		}
		for p := 1; p < c.Size(); p++ {
			if err := c.Send(p, nil); err != nil {
				return fmt.Errorf("mpisim: barrier release to %d: %w", p, err)
			}
		}
		return nil
	}
	if err := c.Send(root, nil); err != nil {
		return err
	}
	_, err := c.Recv(root)
	return err
}

// Bcast distributes root's buffer to every rank; non-root ranks pass nil (or
// anything — their argument is ignored) and receive the broadcast value.
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	if c.Size() == 1 {
		return data, nil
	}
	if c.ID() == root {
		for p := 0; p < c.Size(); p++ {
			if p == root {
				continue
			}
			if err := c.Send(p, data); err != nil {
				return nil, fmt.Errorf("mpisim: bcast to %d: %w", p, err)
			}
		}
		return data, nil
	}
	return c.Recv(root)
}

// BcastFloats broadcasts a float64 slice from root.
func BcastFloats(c Comm, root int, x []float64) ([]float64, error) {
	if c.Size() == 1 {
		return x, nil
	}
	if c.ID() == root {
		_, err := Bcast(c, root, floatsToBytes(x))
		return x, err
	}
	b, err := Bcast(c, root, nil)
	if err != nil {
		return nil, err
	}
	return bytesToFloats(b)
}

// AllreduceSum element-wise sums x across ranks; every rank receives the
// total. Implemented as reduce-to-0 + bcast. The summation order is fixed by
// rank, so the result is bitwise deterministic.
func AllreduceSum(c Comm, x []float64) ([]float64, error) {
	const root = 0
	if c.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if c.ID() == root {
		sum := make([]float64, len(x))
		copy(sum, x)
		for p := 1; p < c.Size(); p++ {
			part, err := recvFloats(c, p)
			if err != nil {
				return nil, fmt.Errorf("mpisim: allreduce gather from %d: %w", p, err)
			}
			if len(part) != len(sum) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch: rank %d sent %d, want %d", p, len(part), len(sum))
			}
			for i := range sum {
				sum[i] += part[i]
			}
		}
		return BcastFloats(c, root, sum)
	}
	if err := sendFloats(c, root, x); err != nil {
		return nil, err
	}
	return BcastFloats(c, root, nil)
}

// AllreduceMax element-wise maximizes x across ranks.
func AllreduceMax(c Comm, x []float64) ([]float64, error) {
	const root = 0
	if c.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if c.ID() == root {
		acc := make([]float64, len(x))
		copy(acc, x)
		for p := 1; p < c.Size(); p++ {
			part, err := recvFloats(c, p)
			if err != nil {
				return nil, err
			}
			if len(part) != len(acc) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch: rank %d sent %d, want %d", p, len(part), len(acc))
			}
			for i := range acc {
				if part[i] > acc[i] {
					acc[i] = part[i]
				}
			}
		}
		return BcastFloats(c, root, acc)
	}
	if err := sendFloats(c, root, x); err != nil {
		return nil, err
	}
	return BcastFloats(c, root, nil)
}

// AllgatherFloats concatenates every rank's slice in rank order; all ranks
// receive the full concatenation. Slices may have different lengths (the
// slab decomposition's remainder blocks differ by one).
func AllgatherFloats(c Comm, x []float64) ([]float64, error) {
	const root = 0
	if c.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if c.ID() == root {
		parts := make([][]float64, c.Size())
		parts[root] = x
		for p := 1; p < c.Size(); p++ {
			part, err := recvFloats(c, p)
			if err != nil {
				return nil, fmt.Errorf("mpisim: allgather from %d: %w", p, err)
			}
			parts[p] = part
		}
		var all []float64
		for _, part := range parts {
			all = append(all, part...)
		}
		return BcastFloats(c, root, all)
	}
	if err := sendFloats(c, root, x); err != nil {
		return nil, err
	}
	return BcastFloats(c, root, nil)
}

// AllgatherBytes gathers every rank's opaque blob; all ranks receive the
// full rank-ordered set. This is the halo-exchange primitive of sharded
// kernels: each rank's blob is its boundary columns encoded with the
// columnar state codec, and the collective never inspects the bytes.
func AllgatherBytes(c Comm, b []byte) ([][]byte, error) {
	const root = 0
	if c.Size() == 1 {
		return [][]byte{append([]byte(nil), b...)}, nil
	}
	if c.ID() == root {
		parts := make([][]byte, c.Size())
		parts[root] = b
		for p := 1; p < c.Size(); p++ {
			part, err := c.Recv(p)
			if err != nil {
				return nil, fmt.Errorf("mpisim: allgather from %d: %w", p, err)
			}
			parts[p] = part
		}
		packed := packBlobs(parts)
		for p := 1; p < c.Size(); p++ {
			if err := c.Send(p, packed); err != nil {
				return nil, fmt.Errorf("mpisim: allgather bcast to %d: %w", p, err)
			}
		}
		return parts, nil
	}
	if err := c.Send(root, b); err != nil {
		return nil, err
	}
	packed, err := c.Recv(root)
	if err != nil {
		return nil, err
	}
	return unpackBlobs(packed)
}

// packBlobs concatenates length-prefixed blobs for the allgather
// broadcast.
func packBlobs(parts [][]byte) []byte {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for _, p := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

func unpackBlobs(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("mpisim: truncated blob pack (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	parts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("mpisim: truncated blob pack at entry %d", i)
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+l > len(b) {
			return nil, fmt.Errorf("mpisim: truncated blob %d (%d bytes past end)", i, off+l-len(b))
		}
		parts = append(parts, b[off:off+l:off+l])
		off += l
	}
	return parts, nil
}

// SendRecv exchanges buffers with a partner rank (both sides must call it
// with each other's rank). Deadlock is avoided by ordering on rank number.
func SendRecv(c Comm, peer int, data []byte) ([]byte, error) {
	if peer == c.ID() {
		cp := make([]byte, len(data))
		copy(cp, data)
		return cp, nil
	}
	if c.ID() < peer {
		if err := c.Send(peer, data); err != nil {
			return nil, err
		}
		return c.Recv(peer)
	}
	in, err := c.Recv(peer)
	if err != nil {
		return nil, err
	}
	if err := c.Send(peer, data); err != nil {
		return nil, err
	}
	return in, nil
}

// Rank method sugar: the historical per-rank collective API, now thin
// wrappers over the generic Comm implementations above.

// Barrier blocks until all ranks arrive.
func (r *Rank) Barrier() error { return Barrier(r) }

// Bcast distributes root's buffer to every rank.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) { return Bcast(r, root, data) }

// BcastFloats broadcasts a float64 slice from root.
func (r *Rank) BcastFloats(root int, x []float64) ([]float64, error) { return BcastFloats(r, root, x) }

// AllreduceSum element-wise sums x across ranks.
func (r *Rank) AllreduceSum(x []float64) ([]float64, error) { return AllreduceSum(r, x) }

// AllreduceMax element-wise maximizes x across ranks.
func (r *Rank) AllreduceMax(x []float64) ([]float64, error) { return AllreduceMax(r, x) }

// AllgatherFloats concatenates every rank's slice in rank order.
func (r *Rank) AllgatherFloats(x []float64) ([]float64, error) { return AllgatherFloats(r, x) }

// SendRecv exchanges buffers with a partner rank.
func (r *Rank) SendRecv(peer int, data []byte) ([]byte, error) { return SendRecv(r, peer, data) }
