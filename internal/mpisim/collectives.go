package mpisim

import (
	"fmt"
)

// Collective operations. All are implemented over the point-to-point layer
// with rank 0 (or the given root) acting as coordinator, so virtual clocks
// synchronize exactly the way a flat-tree MPI implementation would: the
// root's clock advances to the latest arrival, and every participant's clock
// advances to the arrival of the root's release/broadcast message.
//
// Every rank of the world must call the same collective in the same order,
// as in MPI. Mismatched calls deadlock, also as in MPI.

// Barrier blocks until all ranks arrive. Clocks: all ranks leave the barrier
// at (root receipt of last arrival) + release delivery time to them.
func (r *Rank) Barrier() error {
	const root = 0
	if r.Size() == 1 {
		return nil
	}
	if r.id == root {
		for p := 1; p < r.Size(); p++ {
			if _, err := r.Recv(p); err != nil {
				return fmt.Errorf("mpisim: barrier gather from %d: %w", p, err)
			}
		}
		for p := 1; p < r.Size(); p++ {
			if err := r.Send(p, nil); err != nil {
				return fmt.Errorf("mpisim: barrier release to %d: %w", p, err)
			}
		}
		return nil
	}
	if err := r.Send(root, nil); err != nil {
		return err
	}
	_, err := r.Recv(root)
	return err
}

// Bcast distributes root's buffer to every rank; non-root ranks pass nil (or
// anything — their argument is ignored) and receive the broadcast value.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if r.Size() == 1 {
		return data, nil
	}
	if r.id == root {
		for p := 0; p < r.Size(); p++ {
			if p == root {
				continue
			}
			if err := r.Send(p, data); err != nil {
				return nil, fmt.Errorf("mpisim: bcast to %d: %w", p, err)
			}
		}
		return data, nil
	}
	return r.Recv(root)
}

// BcastFloats broadcasts a float64 slice from root.
func (r *Rank) BcastFloats(root int, x []float64) ([]float64, error) {
	if r.Size() == 1 {
		return x, nil
	}
	if r.id == root {
		_, err := r.Bcast(root, floatsToBytes(x))
		return x, err
	}
	b, err := r.Bcast(root, nil)
	if err != nil {
		return nil, err
	}
	return bytesToFloats(b)
}

// AllreduceSum element-wise sums x across ranks; every rank receives the
// total. Implemented as reduce-to-0 + bcast. The summation order is fixed by
// rank, so the result is bitwise deterministic.
func (r *Rank) AllreduceSum(x []float64) ([]float64, error) {
	const root = 0
	if r.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if r.id == root {
		sum := make([]float64, len(x))
		copy(sum, x)
		for p := 1; p < r.Size(); p++ {
			part, err := r.RecvFloats(p)
			if err != nil {
				return nil, fmt.Errorf("mpisim: allreduce gather from %d: %w", p, err)
			}
			if len(part) != len(sum) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch: rank %d sent %d, want %d", p, len(part), len(sum))
			}
			for i := range sum {
				sum[i] += part[i]
			}
		}
		return r.BcastFloats(root, sum)
	}
	if err := r.SendFloats(root, x); err != nil {
		return nil, err
	}
	return r.BcastFloats(root, nil)
}

// AllreduceMax element-wise maximizes x across ranks.
func (r *Rank) AllreduceMax(x []float64) ([]float64, error) {
	const root = 0
	if r.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if r.id == root {
		acc := make([]float64, len(x))
		copy(acc, x)
		for p := 1; p < r.Size(); p++ {
			part, err := r.RecvFloats(p)
			if err != nil {
				return nil, err
			}
			if len(part) != len(acc) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch: rank %d sent %d, want %d", p, len(part), len(acc))
			}
			for i := range acc {
				if part[i] > acc[i] {
					acc[i] = part[i]
				}
			}
		}
		return r.BcastFloats(root, acc)
	}
	if err := r.SendFloats(root, x); err != nil {
		return nil, err
	}
	return r.BcastFloats(root, nil)
}

// AllgatherFloats concatenates every rank's slice in rank order; all ranks
// receive the full concatenation. Slices may have different lengths (the
// slab decomposition's remainder blocks differ by one).
func (r *Rank) AllgatherFloats(x []float64) ([]float64, error) {
	const root = 0
	if r.Size() == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if r.id == root {
		parts := make([][]float64, r.Size())
		parts[root] = x
		for p := 1; p < r.Size(); p++ {
			part, err := r.RecvFloats(p)
			if err != nil {
				return nil, fmt.Errorf("mpisim: allgather from %d: %w", p, err)
			}
			parts[p] = part
		}
		var all []float64
		for _, part := range parts {
			all = append(all, part...)
		}
		return r.BcastFloats(root, all)
	}
	if err := r.SendFloats(root, x); err != nil {
		return nil, err
	}
	return r.BcastFloats(root, nil)
}

// SendRecv exchanges buffers with a partner rank (both sides must call it
// with each other's rank). Deadlock is avoided by ordering on rank number.
func (r *Rank) SendRecv(peer int, data []byte) ([]byte, error) {
	if peer == r.id {
		cp := make([]byte, len(data))
		copy(cp, data)
		return cp, nil
	}
	if r.id < peer {
		if err := r.Send(peer, data); err != nil {
			return nil, err
		}
		return r.Recv(peer)
	}
	in, err := r.Recv(peer)
	if err != nil {
		return nil, err
	}
	if err := r.Send(peer, data); err != nil {
		return nil, err
	}
	return in, nil
}
