package mpisim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/vtime"
)

// ErrGangBroken is returned by gang operations after any rank link failed
// (typically because a rank worker died). The gang never recovers: every
// subsequent collective fails fast so a surviving rank cannot deadlock
// waiting on a dead peer.
var ErrGangBroken = errors.New("mpisim: gang broken")

// Link is one bidirectional rank-to-rank message channel of a Gang. The
// in-tree implementation wraps a SmartSockets peer connection (see
// internal/core), so gang traffic crosses the virtual network between the
// rank workers' hosts and carries real arrival times; tests may supply
// in-memory links.
type Link interface {
	// Send transmits one message stamped with the sender's virtual time.
	Send(data []byte, sentAt time.Duration) error
	// Recv blocks for the next message and returns it with its virtual
	// arrival time.
	Recv() ([]byte, time.Duration, error)
	// Close releases the link; a blocked Recv on either end fails.
	Close() error
}

// Gang is the communicator of a domain-decomposed multi-worker kernel:
// one instance lives inside each rank's worker process and connects it to
// every other rank of the same gang over Link transports (in production,
// SmartSockets peer connections on the overlay — the same plane PR 3's
// direct state transfers use). It implements Comm, so the collectives in
// this package work identically over goroutine ranks (World/Rank) and
// process ranks (Gang).
//
// Unlike World, which owns one clock per goroutine rank, a Gang advances
// the clock of the service hosting it: Bind installs the worker's virtual
// clock, sends are stamped with it and receives advance it to the
// message's arrival — exactly MPI's timing discipline, but across worker
// processes instead of goroutines.
type Gang struct {
	rank, size int
	links      []Link // indexed by peer rank; links[rank] == nil

	mu     sync.Mutex
	clock  *vtime.Clock
	broken error
}

// NewGang builds the communicator for one rank. links must have one entry
// per rank of the gang, nil at the rank's own index. The clock defaults
// to a fresh one; hosts bind their own with Bind.
func NewGang(rank, size int, links []Link) (*Gang, error) {
	if size < 2 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpisim: gang rank %d of %d", rank, size)
	}
	if len(links) != size {
		return nil, fmt.Errorf("mpisim: gang rank %d: %d links for size %d", rank, len(links), size)
	}
	for p, l := range links {
		if (l == nil) != (p == rank) {
			return nil, fmt.Errorf("mpisim: gang rank %d: bad link table at %d", rank, p)
		}
	}
	return &Gang{rank: rank, size: size, links: links, clock: vtime.NewClock()}, nil
}

// Bind installs the host service's virtual clock: subsequent sends are
// stamped with it and receives advance it. Call once, before any
// collective.
func (g *Gang) Bind(c *vtime.Clock) {
	g.mu.Lock()
	g.clock = c
	g.mu.Unlock()
}

// ID returns this member's rank (Comm).
func (g *Gang) ID() int { return g.rank }

// Size returns the gang size (Comm).
func (g *Gang) Size() int { return g.size }

// Clock returns the bound virtual clock (Comm).
func (g *Gang) Clock() *vtime.Clock {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.clock
}

// fail marks the gang broken (first error wins), closes every link, and
// returns the sticky error. Closing the links is what propagates the
// break: a peer blocked receiving from this rank — e.g. waiting for a
// collective message this rank will now never send because an earlier
// receive in the same collective failed — gets a link error instead of
// waiting forever. One broken rank therefore aborts the whole gang, the
// way an MPI fault aborts the job.
func (g *Gang) fail(err error) error {
	g.mu.Lock()
	newly := g.broken == nil
	if newly {
		g.broken = fmt.Errorf("%w: %v", ErrGangBroken, err)
	}
	broken := g.broken
	g.mu.Unlock()
	if newly {
		g.Close()
	}
	return broken
}

// Err returns the sticky error, if the gang is broken.
func (g *Gang) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.broken
}

func (g *Gang) link(peer int) (Link, error) {
	g.mu.Lock()
	broken := g.broken
	g.mu.Unlock()
	if broken != nil {
		return nil, broken
	}
	if peer < 0 || peer >= g.size || peer == g.rank {
		return nil, fmt.Errorf("%w: %d (self %d, size %d)", ErrBadRank, peer, g.rank, g.size)
	}
	return g.links[peer], nil
}

// Send transmits data to the peer rank, stamped with the bound clock
// (Comm).
func (g *Gang) Send(to int, data []byte) error {
	l, err := g.link(to)
	if err != nil {
		return err
	}
	if err := l.Send(data, g.Clock().Now()); err != nil {
		return g.fail(fmt.Errorf("send to rank %d: %v", to, err))
	}
	return nil
}

// Recv blocks for the next message from the peer rank and advances the
// bound clock to its arrival (Comm).
func (g *Gang) Recv(from int) ([]byte, error) {
	l, err := g.link(from)
	if err != nil {
		return nil, err
	}
	data, arrival, err := l.Recv()
	if err != nil {
		return nil, g.fail(fmt.Errorf("recv from rank %d: %v", from, err))
	}
	g.Clock().AdvanceTo(arrival)
	return data, nil
}

// Close tears down every link (rank teardown). Safe to call more than
// once.
func (g *Gang) Close() {
	for _, l := range g.links {
		if l != nil {
			l.Close()
		}
	}
}

// LocalGangs wires size gangs with in-memory links of the given fixed
// virtual latency — the harness physics tests and examples use to
// exercise sharded kernels without a pool, a daemon or a network. The
// production links (SmartSockets peer connections) are wired by
// internal/core's gang_init instead.
func LocalGangs(size int, latency time.Duration) []*Gang {
	links := make([][]Link, size)
	for i := range links {
		links[i] = make([]Link, size)
	}
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			a, b := localPair(latency)
			links[i][j] = a
			links[j][i] = b
		}
	}
	gangs := make([]*Gang, size)
	for i := range gangs {
		g, err := NewGang(i, size, links[i])
		if err != nil {
			panic(err) // impossible: the tables above are well-formed
		}
		gangs[i] = g
	}
	return gangs
}

// localLink is the in-memory Link behind LocalGangs.
type localLink struct {
	out     chan localMsg
	in      chan localMsg
	latency time.Duration

	mu     sync.Mutex
	closed bool
}

type localMsg struct {
	data    []byte
	arrival time.Duration
}

func localPair(latency time.Duration) (*localLink, *localLink) {
	a := make(chan localMsg, 64)
	b := make(chan localMsg, 64)
	return &localLink{out: a, in: b, latency: latency}, &localLink{out: b, in: a, latency: latency}
}

func (l *localLink) Send(data []byte, sentAt time.Duration) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return errors.New("mpisim: local link closed")
	}
	cp := append([]byte(nil), data...)
	l.out <- localMsg{data: cp, arrival: sentAt + l.latency}
	return nil
}

func (l *localLink) Recv() ([]byte, time.Duration, error) {
	m, ok := <-l.in
	if !ok {
		return nil, 0, errors.New("mpisim: local link closed")
	}
	return m.data, m.arrival, nil
}

func (l *localLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.out)
	}
	return nil
}
