package ipl

import (
	"fmt"
	"sync"
	"time"

	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// Ibis is one IPL instance: a pool member able to create send and receive
// ports. Each instance owns a SmartSockets factory and a registry
// connection.
type Ibis struct {
	id      Identifier
	network *vnet.Network
	factory *smartsockets.Factory
	regConn *smartsockets.VirtualConn

	mu        sync.Mutex
	members   map[int]Identifier
	elections map[string]Identifier
	electWait map[string][]chan Identifier
	recvPorts map[string]*ReceivePort
	events    chan Event
	closed    bool

	dataListener *smartsockets.Listener
	wg           sync.WaitGroup
}

// Config configures Create.
type Config struct {
	Pool     string
	Host     string
	BasePort int    // factory identity port; data traffic uses BasePort+1
	HubHost  string // site hub to register with
	Registry smartsockets.Address
	// EventBuffer is the size of the event channel (default 128). If the
	// application does not drain events, the oldest are dropped.
	EventBuffer int
}

// Create joins the pool and returns a ready Ibis instance, mirroring
// ibis.ipl.IbisFactory.createIbis.
func Create(network *vnet.Network, cfg Config) (*Ibis, error) {
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 128
	}
	f, err := smartsockets.NewFactory(network, cfg.Host, cfg.BasePort, cfg.HubHost)
	if err != nil {
		return nil, fmt.Errorf("ipl: create: %w", err)
	}
	ib := &Ibis{
		network:   network,
		factory:   f,
		members:   make(map[int]Identifier),
		elections: make(map[string]Identifier),
		electWait: make(map[string][]chan Identifier),
		recvPorts: make(map[string]*ReceivePort),
		events:    make(chan Event, cfg.EventBuffer),
	}

	// Join the registry.
	conn, err := f.Connect(cfg.Registry, 0)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ipl: join registry: %w", err)
	}
	conn.SetClass("ipl")
	join := Identifier{Pool: cfg.Pool, Host: cfg.Host, Port: cfg.BasePort}
	if err := conn.Send(encodeReg(&regMsg{Kind: rJoin, Member: join}), 0); err != nil {
		f.Close()
		return nil, err
	}
	msg, err := conn.Recv()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ipl: join registry: %w", err)
	}
	ack, err := decodeReg(msg.Data)
	if err != nil || ack.Kind != rJoinAck {
		f.Close()
		return nil, fmt.Errorf("ipl: bad join ack: %v", err)
	}
	ib.id = ack.Member
	ib.regConn = conn
	for _, m := range ack.Members {
		ib.members[m.ID] = m
	}

	// Data listener: all inbound port connections arrive here and are
	// demultiplexed by the handshake's port name.
	dl, err := f.Listen(cfg.BasePort + 1)
	if err != nil {
		conn.Close()
		f.Close()
		return nil, err
	}
	ib.dataListener = dl
	ib.wg.Add(2)
	go ib.registryLoop()
	go ib.dataAcceptLoop()
	return ib, nil
}

// Identifier returns this instance's pool identity.
func (ib *Ibis) Identifier() Identifier { return ib.id }

// Factory exposes the underlying SmartSockets factory (for stats).
func (ib *Ibis) Factory() *smartsockets.Factory { return ib.factory }

// PeerAddr returns the peer-stream address of a pool member: where its
// ListenPeer listener accepts direct worker-to-worker transfers.
func PeerAddr(id Identifier) smartsockets.Address {
	return smartsockets.Address{Host: id.Host, Port: id.Port + PeerPortOffset}
}

// ListenPeer opens this instance's peer-stream listener (PeerAddr of its
// identity). Bulk state moving worker-to-worker arrives here, bypassing
// the daemon on the user's machine entirely; like every factory listener
// it accepts direct, reverse and hub-routed connections.
func (ib *Ibis) ListenPeer() (*smartsockets.Listener, error) {
	return ib.factory.Listen(ib.id.Port + PeerPortOffset)
}

// DialPeer opens a virtual connection to another member's peer listener
// through the overlay. sentAt is the caller's virtual clock.
func (ib *Ibis) DialPeer(addr smartsockets.Address, sentAt time.Duration) (*smartsockets.VirtualConn, error) {
	return ib.factory.Connect(addr, sentAt)
}

// Members returns the current pool membership as known locally.
func (ib *Ibis) Members() []Identifier {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	out := make([]Identifier, 0, len(ib.members))
	for i := 0; i <= maxKey(ib.members); i++ {
		if m, ok := ib.members[i]; ok {
			out = append(out, m)
		}
	}
	return out
}

func maxKey(m map[int]Identifier) int {
	max := -1
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// Events returns the membership/election event stream.
func (ib *Ibis) Events() <-chan Event { return ib.events }

// Elect runs (or queries) an election: the first caller for a name wins.
func (ib *Ibis) Elect(name string) (Identifier, error) {
	ib.mu.Lock()
	if w, ok := ib.elections[name]; ok {
		ib.mu.Unlock()
		return w, nil
	}
	ch := make(chan Identifier, 1)
	ib.electWait[name] = append(ib.electWait[name], ch)
	ib.mu.Unlock()
	if err := ib.regConn.Send(encodeReg(&regMsg{Kind: rElect, Election: name}), 0); err != nil {
		return Identifier{}, err
	}
	select {
	case w := <-ch:
		return w, nil
	case <-time.After(5 * time.Second):
		return Identifier{}, fmt.Errorf("ipl: election %q timed out", name)
	}
}

// End leaves the pool gracefully and releases resources.
func (ib *Ibis) End() {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return
	}
	ib.closed = true
	ports := make([]*ReceivePort, 0, len(ib.recvPorts))
	for _, p := range ib.recvPorts {
		ports = append(ports, p)
	}
	ib.mu.Unlock()
	ib.regConn.Send(encodeReg(&regMsg{Kind: rLeave}), 0)
	ib.regConn.Close()
	for _, p := range ports {
		p.Close()
	}
	ib.dataListener.Close()
	ib.factory.Close()
	ib.wg.Wait()
}

// Kill simulates a crash: everything is torn down without a registry leave,
// so the pool observes a Died event. Used for fault-injection tests and the
// paper's "reservation ended, worker killed by the scheduler" scenario.
func (ib *Ibis) Kill() {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return
	}
	ib.closed = true
	ports := make([]*ReceivePort, 0, len(ib.recvPorts))
	for _, p := range ib.recvPorts {
		ports = append(ports, p)
	}
	ib.mu.Unlock()
	ib.regConn.Close() // abrupt: no leave message
	for _, p := range ports {
		p.Close() // a crashed process's receivers stop existing too
	}
	ib.dataListener.Close()
	ib.factory.Close()
}

func (ib *Ibis) registryLoop() {
	defer ib.wg.Done()
	// The loop is the only event producer; consumers ranging over Events()
	// terminate when the instance ends or is killed.
	defer close(ib.events)
	for {
		msg, err := ib.regConn.Recv()
		if err != nil {
			return
		}
		m, err := decodeReg(msg.Data)
		if err != nil {
			continue
		}
		switch m.Kind {
		case rEvent:
			ev := Event{Kind: EventKind(m.Event), Member: m.Member, Election: m.Election, At: msg.Arrival}
			ib.mu.Lock()
			switch ev.Kind {
			case Joined:
				ib.members[m.Member.ID] = m.Member
			case Left, Died:
				delete(ib.members, m.Member.ID)
			case Elected:
				ib.elections[m.Election] = m.Member
				for _, ch := range ib.electWait[m.Election] {
					ch <- m.Member
				}
				delete(ib.electWait, m.Election)
			}
			ib.mu.Unlock()
			ib.pushEvent(ev)
		case rElectRes:
			ib.mu.Lock()
			ib.elections[m.Election] = m.Winner
			for _, ch := range ib.electWait[m.Election] {
				ch <- m.Winner
			}
			delete(ib.electWait, m.Election)
			ib.mu.Unlock()
		}
	}
}

// pushEvent delivers an event, dropping the oldest on overflow so slow
// consumers cannot wedge the registry reader.
func (ib *Ibis) pushEvent(ev Event) {
	for {
		select {
		case ib.events <- ev:
			return
		default:
			select {
			case <-ib.events:
			default:
			}
		}
	}
}

func (ib *Ibis) dataAcceptLoop() {
	defer ib.wg.Done()
	for {
		conn, err := ib.dataListener.Accept()
		if err != nil {
			return
		}
		ib.wg.Add(1)
		go ib.handleData(conn)
	}
}

// handleData reads the handshake and attaches the connection to the target
// receive port.
func (ib *Ibis) handleData(conn *smartsockets.VirtualConn) {
	defer ib.wg.Done()
	msg, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	h, err := decodeHeader(msg.Data)
	if err != nil {
		conn.Close()
		return
	}
	ib.mu.Lock()
	rp := ib.recvPorts[h.PortName]
	ib.mu.Unlock()
	if rp == nil {
		conn.Close()
		return
	}
	rp.attach(h.From, conn)
}
