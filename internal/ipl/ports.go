package ipl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// SendPort is the sending end of a unidirectional IPL channel.
type SendPort struct {
	ibis *Ibis
	typ  PortType
	name string

	mu    sync.Mutex
	conns []*portConn
}

type portConn struct {
	to   Identifier
	port string
	conn *smartsockets.VirtualConn
}

// ReceivePort is the receiving end. Messages from all connected senders are
// merged into one ordered stream; an optional upcall handler may be set
// instead of explicit Receive calls.
type ReceivePort struct {
	ibis *Ibis
	typ  PortType
	name string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []ReadMessage
	conns  int
	closed bool
	upcall func(ReadMessage)
}

// ReadMessage is one received message with its origin and virtual arrival
// time.
type ReadMessage struct {
	From    Identifier
	Data    []byte
	Arrival time.Duration
}

// Decode gob-decodes the payload into v.
func (m ReadMessage) Decode(v any) error {
	return gob.NewDecoder(bytes.NewReader(m.Data)).Decode(v)
}

// CreateSendPort creates a named send port.
func (ib *Ibis) CreateSendPort(typ PortType, name string) *SendPort {
	return &SendPort{ibis: ib, typ: typ, name: name}
}

// CreateReceivePort creates and enables a named receive port. If upcall is
// non-nil it is invoked (sequentially) for each message; otherwise use
// Receive.
func (ib *Ibis) CreateReceivePort(typ PortType, name string, upcall func(ReadMessage)) (*ReceivePort, error) {
	rp := &ReceivePort{ibis: ib, typ: typ, name: name, upcall: upcall}
	rp.cond = sync.NewCond(&rp.mu)
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return nil, ErrClosed
	}
	if _, ok := ib.recvPorts[name]; ok {
		return nil, fmt.Errorf("ipl: receive port %q already exists", name)
	}
	ib.recvPorts[name] = rp
	return rp, nil
}

// Connect attaches the send port to the named receive port of the given
// member. sentAt is the sender's virtual clock.
func (sp *SendPort) Connect(to Identifier, portName string, sentAt time.Duration) error {
	sp.mu.Lock()
	if sp.typ == OneToOne && len(sp.conns) > 0 {
		sp.mu.Unlock()
		return fmt.Errorf("ipl: one-to-one send port %q already connected", sp.name)
	}
	sp.mu.Unlock()
	addr := smartsockets.Address{Host: to.Host, Port: to.Port + 1}
	conn, err := sp.ibis.factory.Connect(addr, sentAt)
	if err != nil {
		return fmt.Errorf("ipl: connect %s to %s:%s: %w", sp.name, to, portName, err)
	}
	conn.SetClass("ipl")
	hs := encodeHeader(&dataHeader{PortName: portName, From: sp.ibis.id})
	if err := conn.Send(hs, conn.EstablishedAt()); err != nil {
		conn.Close()
		return err
	}
	sp.mu.Lock()
	sp.conns = append(sp.conns, &portConn{to: to, port: portName, conn: conn})
	sp.mu.Unlock()
	return nil
}

// Write sends a raw payload to all connected receive ports (one for
// one-to-one ports). It returns an error if any connection failed.
func (sp *SendPort) Write(data []byte, sentAt time.Duration) error {
	sp.mu.Lock()
	conns := make([]*portConn, len(sp.conns))
	copy(conns, sp.conns)
	sp.mu.Unlock()
	if len(conns) == 0 {
		return fmt.Errorf("ipl: send port %q not connected", sp.name)
	}
	for _, pc := range conns {
		if err := pc.conn.Send(data, sentAt); err != nil {
			return fmt.Errorf("ipl: write to %s: %w", pc.to, err)
		}
	}
	return nil
}

// WriteValue gob-encodes v and sends it.
func (sp *SendPort) WriteValue(v any, sentAt time.Duration) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return sp.Write(buf.Bytes(), sentAt)
}

// Close disconnects the send port.
func (sp *SendPort) Close() {
	sp.mu.Lock()
	conns := sp.conns
	sp.conns = nil
	sp.mu.Unlock()
	for _, pc := range conns {
		pc.conn.Close()
	}
}

// attach wires an accepted connection into the receive port and starts its
// reader.
func (rp *ReceivePort) attach(from Identifier, conn *smartsockets.VirtualConn) {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		conn.Close()
		return
	}
	rp.conns++
	rp.mu.Unlock()
	go func() {
		defer conn.Close()
		for {
			msg, err := conn.Recv()
			if err != nil {
				rp.mu.Lock()
				rp.conns--
				rp.mu.Unlock()
				return
			}
			rm := ReadMessage{From: from, Data: msg.Data, Arrival: msg.Arrival}
			rp.mu.Lock()
			up := rp.upcall
			if up == nil {
				rp.queue = append(rp.queue, rm)
				rp.cond.Signal()
			}
			rp.mu.Unlock()
			if up != nil {
				up(rm)
			}
		}
	}()
}

// Receive blocks for the next message (explicit receive mode).
func (rp *ReceivePort) Receive() (ReadMessage, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	for len(rp.queue) == 0 && !rp.closed {
		rp.cond.Wait()
	}
	if len(rp.queue) == 0 {
		return ReadMessage{}, ErrClosed
	}
	m := rp.queue[0]
	rp.queue = rp.queue[1:]
	return m, nil
}

// Close disables the port and unblocks receivers.
func (rp *ReceivePort) Close() {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return
	}
	rp.closed = true
	rp.cond.Broadcast()
	rp.mu.Unlock()
	ib := rp.ibis
	ib.mu.Lock()
	delete(ib.recvPorts, rp.name)
	ib.mu.Unlock()
}

// interface check: ReadMessage carries vnet arrival semantics.
var _ = vnet.Message{}
