package ipl

import (
	"fmt"
	"sync"

	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// RegistryPort is the factory port the registry server listens on.
const RegistryPort = 18000

// Registry is the central pool server. The paper's daemon starts one; every
// worker proxy joins it. It tracks membership, detects deaths (broken
// connections) and runs elections.
type Registry struct {
	factory *smartsockets.Factory

	mu        sync.Mutex
	pools     map[string]*pool
	closed    bool
	listener  *smartsockets.Listener
	wg        sync.WaitGroup
	onFailure func(Identifier) // test/monitor hook, called on Died
}

type pool struct {
	nextID    int
	members   map[int]*memberConn
	elections map[string]Identifier
}

type memberConn struct {
	id   Identifier
	conn *smartsockets.VirtualConn
}

// NewRegistry starts a registry server on the given host, connecting
// through the hub at hubHost.
func NewRegistry(network *vnet.Network, host, hubHost string) (*Registry, error) {
	f, err := smartsockets.NewFactory(network, host, RegistryPort-1, hubHost)
	if err != nil {
		return nil, fmt.Errorf("ipl: registry: %w", err)
	}
	l, err := f.Listen(RegistryPort)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ipl: registry: %w", err)
	}
	r := &Registry{factory: f, pools: make(map[string]*pool), listener: l}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the registry's virtual address for members to join.
func (r *Registry) Addr() smartsockets.Address { return r.listener.Addr() }

// SetFailureHook installs a callback invoked whenever a member dies.
func (r *Registry) SetFailureHook(fn func(Identifier)) {
	r.mu.Lock()
	r.onFailure = fn
	r.mu.Unlock()
}

// Close shuts the registry down.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var conns []*smartsockets.VirtualConn
	for _, p := range r.pools {
		for _, m := range p.members {
			conns = append(conns, m.conn)
		}
	}
	r.mu.Unlock()
	r.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	r.factory.Close()
	r.wg.Wait()
}

// Members returns the current membership of a pool, sorted by ID.
func (r *Registry) Members(poolName string) []Identifier {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pools[poolName]
	if p == nil {
		return nil
	}
	out := make([]Identifier, 0, len(p.members))
	for i := 0; i < p.nextID; i++ {
		if m, ok := p.members[i]; ok {
			out = append(out, m.id)
		}
	}
	return out
}

func (r *Registry) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return
		}
		conn.SetClass("ipl")
		r.wg.Add(1)
		go r.serve(conn)
	}
}

// serve handles one member's registry connection for its lifetime. A broken
// connection without a prior leave is a death.
func (r *Registry) serve(conn *smartsockets.VirtualConn) {
	defer r.wg.Done()
	msg, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	m, err := decodeReg(msg.Data)
	if err != nil || m.Kind != rJoin {
		conn.Close()
		return
	}

	// Register the member and ack with the pool snapshot.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	p := r.pools[m.Member.Pool]
	if p == nil {
		p = &pool{members: make(map[int]*memberConn), elections: make(map[string]Identifier)}
		r.pools[m.Member.Pool] = p
	}
	id := m.Member
	id.ID = p.nextID
	p.nextID++
	mc := &memberConn{id: id, conn: conn}
	p.members[id.ID] = mc
	snapshot := make([]Identifier, 0, len(p.members))
	for i := 0; i < p.nextID; i++ {
		if mm, ok := p.members[i]; ok {
			snapshot = append(snapshot, mm.id)
		}
	}
	r.mu.Unlock()

	ack := encodeReg(&regMsg{Kind: rJoinAck, Member: id, Members: snapshot})
	if err := conn.Send(ack, msg.Arrival); err != nil {
		r.drop(id, true)
		return
	}
	r.broadcast(id.Pool, &regMsg{Kind: rEvent, Event: byte(Joined), Member: id}, id.ID)

	left := false
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		req, err := decodeReg(msg.Data)
		if err != nil {
			break
		}
		switch req.Kind {
		case rLeave:
			left = true
			conn.Send(encodeReg(&regMsg{Kind: rLeave, OK: true}), msg.Arrival)
		case rElect:
			r.mu.Lock()
			winner, decided := p.elections[req.Election]
			if !decided {
				winner = id
				p.elections[req.Election] = winner
			}
			r.mu.Unlock()
			res := &regMsg{Kind: rElectRes, Election: req.Election, Winner: winner}
			conn.Send(encodeReg(res), msg.Arrival)
			if !decided {
				r.broadcast(id.Pool, &regMsg{
					Kind: rEvent, Event: byte(Elected), Member: winner, Election: req.Election,
				}, -1)
			}
		}
		if left {
			break
		}
	}
	conn.Close()
	r.drop(id, !left)
}

// drop removes a member and broadcasts left/died.
func (r *Registry) drop(id Identifier, died bool) {
	r.mu.Lock()
	p := r.pools[id.Pool]
	var hook func(Identifier)
	if p != nil {
		delete(p.members, id.ID)
	}
	if died {
		hook = r.onFailure
	}
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	kind := Left
	if died {
		kind = Died
	}
	r.broadcast(id.Pool, &regMsg{Kind: rEvent, Event: byte(kind), Member: id}, id.ID)
	if died && hook != nil {
		hook(id)
	}
}

// broadcast pushes an event message to every member of a pool except skipID.
func (r *Registry) broadcast(poolName string, m *regMsg, skipID int) {
	r.mu.Lock()
	p := r.pools[poolName]
	var conns []*smartsockets.VirtualConn
	if p != nil {
		for mid, mc := range p.members {
			if mid != skipID {
				conns = append(conns, mc.conn)
			}
		}
	}
	r.mu.Unlock()
	data := encodeReg(m)
	for _, c := range conns {
		c.Send(data, 0) // control-plane events: virtual cost negligible
	}
}
