package ipl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// testPool spins up a network with one open hub host, a registry on it, and
// n member hosts (open policy, same site) ready for Create.
type testPool struct {
	net      *vnet.Network
	registry *Registry
	hub      string
	hosts    []string
}

func newTestPool(t *testing.T, n int) *testPool {
	t.Helper()
	network := vnet.New()
	if _, err := network.AddHost("hub", "site", vnet.Open); err != nil {
		t.Fatal(err)
	}
	var hosts []string
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("m%d", i)
		if _, err := network.AddHost(h, "site", vnet.Open); err != nil {
			t.Fatal(err)
		}
		if err := network.AddLink("hub", h, 100*time.Microsecond, 1.25e9); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	// Hub overlay of one.
	ov, err := smartsockets.StartHubs(network, []string{"hub"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ov.Stop)
	reg, err := NewRegistry(network, "hub", "hub")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return &testPool{net: network, registry: reg, hub: "hub", hosts: hosts}
}

func (tp *testPool) join(t *testing.T, i int, pool string) *Ibis {
	t.Helper()
	ib, err := Create(tp.net, Config{
		Pool: pool, Host: tp.hosts[i], BasePort: 20000,
		HubHost: tp.hub, Registry: tp.registry.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ib.End)
	return ib
}

func TestJoinAssignsSequentialIDs(t *testing.T) {
	tp := newTestPool(t, 3)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	c := tp.join(t, 2, "amuse")
	if a.Identifier().ID != 0 || b.Identifier().ID != 1 || c.Identifier().ID != 2 {
		t.Fatalf("ids = %d,%d,%d", a.Identifier().ID, b.Identifier().ID, c.Identifier().ID)
	}
	members := tp.registry.Members("amuse")
	if len(members) != 3 {
		t.Fatalf("registry members = %v", members)
	}
}

func TestPoolsAreIsolated(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "poolA")
	b := tp.join(t, 1, "poolB")
	if a.Identifier().ID != 0 || b.Identifier().ID != 0 {
		t.Fatalf("pool-separate ids: %d, %d", a.Identifier().ID, b.Identifier().ID)
	}
	if n := len(tp.registry.Members("poolA")); n != 1 {
		t.Fatalf("poolA members = %d", n)
	}
}

func TestJoinEventDelivery(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	select {
	case ev := <-a.Events():
		if ev.Kind != Joined || ev.Member.ID != b.Identifier().ID {
			t.Fatalf("event %+v, want join of %v", ev, b.Identifier())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no join event")
	}
	// Membership snapshot at joiner includes the earlier member.
	members := b.Members()
	if len(members) != 2 {
		t.Fatalf("b sees %v", members)
	}
}

func TestLeaveEvent(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	drainJoin(t, a)
	b.End()
	select {
	case ev := <-a.Events():
		if ev.Kind != Left {
			t.Fatalf("event %+v, want Left", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no leave event")
	}
}

func TestDiedEventOnCrash(t *testing.T) {
	// The paper's core fault-tolerance property: a member crash (here, a
	// kill without leave) is broadcast to the pool.
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	drainJoin(t, a)

	var hookMu sync.Mutex
	var hooked []Identifier
	tp.registry.SetFailureHook(func(id Identifier) {
		hookMu.Lock()
		hooked = append(hooked, id)
		hookMu.Unlock()
	})

	b.Kill()
	select {
	case ev := <-a.Events():
		if ev.Kind != Died || ev.Member.ID != b.Identifier().ID {
			t.Fatalf("event %+v, want Died of %v", ev, b.Identifier())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no died event")
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if len(hooked) != 1 || hooked[0].ID != b.Identifier().ID {
		t.Fatalf("failure hook saw %v", hooked)
	}
}

func drainJoin(t *testing.T, ib *Ibis) {
	t.Helper()
	select {
	case <-ib.Events():
	case <-time.After(2 * time.Second):
		t.Fatal("expected join event")
	}
}

func TestElection(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	w1, err := a.Elect("server")
	if err != nil {
		t.Fatal(err)
	}
	if w1.ID != a.Identifier().ID {
		t.Fatalf("first elect winner %v, want %v", w1, a.Identifier())
	}
	// Second candidate loses; gets the existing winner.
	w2, err := b.Elect("server")
	if err != nil {
		t.Fatal(err)
	}
	if w2.ID != a.Identifier().ID {
		t.Fatalf("second elect winner %v, want %v", w2, a.Identifier())
	}
}

func TestSendReceiveExplicit(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	rp, err := b.CreateReceivePort(OneToOne, "in", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.CreateSendPort(OneToOne, "out")
	if err := sp.Connect(b.Identifier(), "in", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sp.Write([]byte("payload"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := rp.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "payload" {
		t.Fatalf("data %q", m.Data)
	}
	if m.From.ID != a.Identifier().ID {
		t.Fatalf("from %v", m.From)
	}
	if m.Arrival <= 2*time.Second {
		t.Fatalf("arrival %v, want after virtual send time", m.Arrival)
	}
}

func TestSendReceiveUpcall(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	got := make(chan ReadMessage, 1)
	if _, err := b.CreateReceivePort(ManyToOne, "up", func(m ReadMessage) { got <- m }); err != nil {
		t.Fatal(err)
	}
	sp := a.CreateSendPort(OneToOne, "out")
	if err := sp.Connect(b.Identifier(), "up", 0); err != nil {
		t.Fatal(err)
	}
	if err := sp.WriteValue("hello upcall", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		var s string
		if err := m.Decode(&s); err != nil {
			t.Fatal(err)
		}
		if s != "hello upcall" {
			t.Fatalf("decoded %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upcall never fired")
	}
}

func TestManyToOne(t *testing.T) {
	tp := newTestPool(t, 3)
	recv := tp.join(t, 0, "amuse")
	s1 := tp.join(t, 1, "amuse")
	s2 := tp.join(t, 2, "amuse")
	rp, err := recv.CreateReceivePort(ManyToOne, "funnel", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Ibis{s1, s2} {
		sp := s.CreateSendPort(OneToOne, fmt.Sprintf("out%d", i))
		if err := sp.Connect(recv.Identifier(), "funnel", 0); err != nil {
			t.Fatal(err)
		}
		if err := sp.WriteValue(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		m, err := rp.Receive()
		if err != nil {
			t.Fatal(err)
		}
		var v int
		if err := m.Decode(&v); err != nil {
			t.Fatal(err)
		}
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("seen %v", seen)
	}
}

func TestOneToManyBroadcast(t *testing.T) {
	tp := newTestPool(t, 3)
	src := tp.join(t, 0, "amuse")
	r1 := tp.join(t, 1, "amuse")
	r2 := tp.join(t, 2, "amuse")
	rp1, err := r1.CreateReceivePort(OneToOne, "bc", nil)
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := r2.CreateReceivePort(OneToOne, "bc", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := src.CreateSendPort(OneToMany, "bcast")
	if err := sp.Connect(r1.Identifier(), "bc", 0); err != nil {
		t.Fatal(err)
	}
	if err := sp.Connect(r2.Identifier(), "bc", 0); err != nil {
		t.Fatal(err)
	}
	if err := sp.Write([]byte("all"), 0); err != nil {
		t.Fatal(err)
	}
	for _, rp := range []*ReceivePort{rp1, rp2} {
		m, err := rp.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != "all" {
			t.Fatalf("broadcast data %q", m.Data)
		}
	}
}

func TestOneToOneRefusesSecondConnect(t *testing.T) {
	tp := newTestPool(t, 3)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	c := tp.join(t, 2, "amuse")
	if _, err := b.CreateReceivePort(OneToOne, "in", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateReceivePort(OneToOne, "in", nil); err != nil {
		t.Fatal(err)
	}
	sp := a.CreateSendPort(OneToOne, "out")
	if err := sp.Connect(b.Identifier(), "in", 0); err != nil {
		t.Fatal(err)
	}
	if err := sp.Connect(c.Identifier(), "in", 0); err == nil {
		t.Fatal("one-to-one port accepted second connection")
	}
}

func TestConnectUnknownPort(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "amuse")
	b := tp.join(t, 1, "amuse")
	sp := a.CreateSendPort(OneToOne, "out")
	// The connection is accepted at the smartsockets level and then closed
	// by the demux; a subsequent write must fail... the handshake itself
	// cannot detect the missing port synchronously, matching IPL's lazy
	// connection semantics. Write errors surface on the next use.
	err := sp.Connect(b.Identifier(), "no-such-port", 0)
	if err != nil {
		return // also acceptable: eager failure
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if werr := sp.Write([]byte("x"), 0); werr != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("writes to a non-existent port never failed")
}

func TestReceiveUnblocksOnClose(t *testing.T) {
	tp := newTestPool(t, 1)
	a := tp.join(t, 0, "amuse")
	rp, err := a.CreateReceivePort(OneToOne, "in", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := rp.Receive()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	rp.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("receive err %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Receive did not unblock")
	}
}

func TestDuplicateReceivePortName(t *testing.T) {
	tp := newTestPool(t, 1)
	a := tp.join(t, 0, "amuse")
	if _, err := a.CreateReceivePort(OneToOne, "dup", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateReceivePort(OneToOne, "dup", nil); err == nil {
		t.Fatal("duplicate receive port name accepted")
	}
}

func TestMalleabilityJoinLater(t *testing.T) {
	// Malleability: a member joining mid-run can immediately communicate
	// with existing members.
	tp := newTestPool(t, 3)
	a := tp.join(t, 0, "amuse")
	rp, err := a.CreateReceivePort(ManyToOne, "in", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		late := tp.join(t, i, "amuse")
		sp := late.CreateSendPort(OneToOne, "out")
		if err := sp.Connect(a.Identifier(), "in", 0); err != nil {
			t.Fatal(err)
		}
		if err := sp.WriteValue(i, 0); err != nil {
			t.Fatal(err)
		}
		m, err := rp.Receive()
		if err != nil {
			t.Fatal(err)
		}
		var v int
		if err := m.Decode(&v); err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("late joiner %d delivered %d", i, v)
		}
	}
}

// TestPeerListenAndDial: the worker-to-worker stream path — one member
// listens on its peer port, another dials it via PeerAddr of the pool
// identity, and a payload crosses without touching any send/receive port.
func TestPeerListenAndDial(t *testing.T) {
	tp := newTestPool(t, 2)
	a := tp.join(t, 0, "peers")
	b := tp.join(t, 1, "peers")

	l, err := a.ListenPeer()
	if err != nil {
		t.Fatal(err)
	}
	addr := PeerAddr(a.Identifier())
	if want := (smartsockets.Address{Host: tp.hosts[0], Port: 20000 + PeerPortOffset}); addr != want {
		t.Fatalf("peer addr %v, want %v", addr, want)
	}
	conn, err := b.DialPeer(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("columns"), conn.EstablishedAt()); err != nil {
		t.Fatal(err)
	}
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := accepted.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "columns" {
		t.Fatalf("peer stream delivered %q", msg.Data)
	}
	if msg.Arrival <= time.Second {
		t.Fatalf("arrival %v not after virtual send time", msg.Arrival)
	}
}
