// Package ipl reimplements the Ibis Portability Layer (van Nieuwpoort et
// al., CCPE 2005): unidirectional, connection-oriented, message-based
// communication designed for Jungle Computing Systems, with a central
// registry providing membership tracking, fault notification (a member
// crash is broadcast to the pool) and malleability (members may join and
// leave a running pool).
//
// Connections are established through the SmartSockets layer, so IPL ports
// work across firewalls and NATs transparently. Beside the port-based
// control plane, every instance owns a peer-stream address
// (PeerAddr/ListenPeer/DialPeer, identity port + PeerPortOffset): the
// direct data plane where bulk worker-to-worker state transfers and gang
// halo links ride the same overlay without touching the daemon.
package ipl

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"
)

// Errors returned by the package.
var (
	ErrClosed     = errors.New("ipl: closed")
	ErrNotMember  = errors.New("ipl: no such pool member")
	ErrNoSuchPort = errors.New("ipl: no such receive port")
	ErrLostElect  = errors.New("ipl: election already decided")
)

// Identifier names one Ibis instance in a pool.
type Identifier struct {
	Pool string
	ID   int    // registry-assigned sequence number
	Host string // host the instance runs on
	Port int    // smartsockets factory identity port
}

// String renders "pool/id@host".
func (id Identifier) String() string { return fmt.Sprintf("%s/%d@%s", id.Pool, id.ID, id.Host) }

// Port layout relative to an instance's identity port: identity+1 is the
// IPL data listener (port connections), identity+PeerPortOffset the peer
// stream listener (bulk worker-to-worker transfers that bypass the
// daemon). Both are SmartSockets virtual ports, so they work across
// firewalls through the hub overlay.
const PeerPortOffset = 2

// EventKind classifies registry events.
type EventKind int

const (
	// Joined: a new member entered the pool.
	Joined EventKind = iota
	// Left: a member left gracefully.
	Left
	// Died: a member's registry connection broke without a leave — the
	// fault-notification mechanism the paper relies on ("an application
	// using IPL will get notified if a machine crashes").
	Died
	// Elected: an election was decided.
	Elected
)

func (k EventKind) String() string {
	switch k {
	case Joined:
		return "joined"
	case Left:
		return "left"
	case Died:
		return "died"
	case Elected:
		return "elected"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a membership or election notification delivered to every pool
// member.
type Event struct {
	Kind     EventKind
	Member   Identifier
	Election string // election name for Elected events
	At       time.Duration
}

// PortType declares the connection discipline of a port pair, mirroring
// IPL's capability sets.
type PortType int

const (
	// OneToOne: a single sender connected to a single receiver.
	OneToOne PortType = iota
	// ManyToOne: multiple senders feed one receiver (used by the daemon's
	// result funnel).
	ManyToOne
	// OneToMany: one sender broadcast to several receivers.
	OneToMany
)

func (t PortType) String() string {
	switch t {
	case OneToOne:
		return "one-to-one"
	case ManyToOne:
		return "many-to-one"
	case OneToMany:
		return "one-to-many"
	default:
		return fmt.Sprintf("PortType(%d)", int(t))
	}
}

// regMsg is the registry wire protocol.
type regMsg struct {
	Kind     byte
	Event    byte // EventKind for rEvent messages
	Member   Identifier
	Members  []Identifier // join ack: current pool
	Election string
	Winner   Identifier
	OK       bool
}

const (
	rJoin     byte = iota // member -> registry
	rJoinAck              // registry -> member
	rLeave                // member -> registry
	rEvent                // registry -> member (membership change)
	rElect                // member -> registry
	rElectRes             // registry -> member
)

func encodeReg(m *regMsg) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("ipl: encode registry message: %v", err)) // all fields are gob-safe
	}
	return buf.Bytes()
}

func decodeReg(data []byte) (*regMsg, error) {
	m := new(regMsg)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(m); err != nil {
		return nil, err
	}
	return m, nil
}

// dataHeader is the first frame on a data connection (send port -> receive
// port), naming the destination port.
type dataHeader struct {
	PortName string
	From     Identifier
}

func encodeHeader(h *dataHeader) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		panic(fmt.Sprintf("ipl: encode data header: %v", err))
	}
	return buf.Bytes()
}

func decodeHeader(data []byte) (*dataHeader, error) {
	h := new(dataHeader)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(h); err != nil {
		return nil, err
	}
	return h, nil
}
