package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
)

// TestGangMatchesSoloWorker drives a K=3 gravity gang through the full
// stack — StartGang, gang_init link wiring over the overlay, broadcast
// evolve with halo exchange between the rank workers — and requires the
// trajectory to match a solo worker's bit for bit: domain decomposition
// must be invisible in the results.
func TestGangMatchesSoloWorker(t *testing.T) {
	tb, sim := labSim(t)
	_ = tb
	stars := ic.Plummer(48, 21)
	const tEnd = 1.0 / 32

	solo, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := solo.EvolveTo(context.Background(), tEnd); err != nil {
		t.Fatal(err)
	}
	want, err := solo.GetState(nil, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}

	gang, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 3}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if ids := gang.GangWorkers(); len(ids) != 3 {
		t.Fatalf("gang workers = %v, want 3 ranks", ids)
	}
	if err := gang.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := gang.EvolveTo(context.Background(), tEnd); err != nil {
		t.Fatal(err)
	}
	got, err := gang.GetState(nil, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.N; i++ {
		if want.Vec(data.AttrPos)[i] != got.Vec(data.AttrPos)[i] ||
			want.Vec(data.AttrVel)[i] != got.Vec(data.AttrVel)[i] {
			t.Fatalf("particle %d: gang diverged from solo worker", i)
		}
	}

	// Energies reduce across the ranks' peer links and must agree with
	// the solo worker's to float accuracy (summation order differs).
	kinS, potS, err := solo.Energy(nil)
	if err != nil {
		t.Fatal(err)
	}
	kinG, potG, err := gang.Energy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kinS-kinG) > 1e-12*math.Abs(kinS) || math.Abs(potS-potG) > 1e-12*math.Abs(potS) {
		t.Fatalf("gang energy (%v, %v) vs solo (%v, %v)", kinG, potG, kinS, potS)
	}
}

// TestGangColocatedPlacement: an unconstrained gang spec selects one
// resource for all ranks (halo traffic must ride intra-site links), and
// the rank jobs land there together.
func TestGangColocatedPlacement(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Channel: ChannelIbis, Workers: 3}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ids := g.GangWorkers()
	if len(ids) != 3 {
		t.Fatalf("gang workers = %v", ids)
	}
	var target string
	for i, id := range ids {
		job := tb.Daemon.WorkerJob(id)
		if job == nil {
			t.Fatalf("rank %d (worker %d): no job", i, id)
		}
		if i == 0 {
			target = job.Target
			continue
		}
		if job.Target != target {
			t.Fatalf("rank %d on %q, rank 0 on %q: gang not co-located", i, job.Target, target)
		}
	}
	// The 8-node VU cluster is the only resource that fits 3 rank jobs
	// with headroom and has the best aggregate CPU score.
	if r := g.resource(); r != "das4-vu" {
		t.Fatalf("gang placed on %q, want das4-vu", r)
	}
}

// TestGangRankDeathMidStep kills one rank's job while the gang is inside
// a long sharded evolve. The structured ErrWorkerDied must reach the
// coupler through the merged gang completion, the surviving ranks must
// abort their collectives (no deadlock waiting on the dead peer), and
// teardown must not leak peer streams (this test runs under make race).
func TestGangRankDeathMidStep(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 3}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Enough particles that the evolve is genuinely in flight when the
	// kill lands.
	if err := g.SetParticles(ic.Plummer(256, 9)); err != nil {
		t.Fatal(err)
	}
	died := make(chan int, 4)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }

	call := g.GoEvolveTo(1.0 / 8)
	time.Sleep(20 * time.Millisecond) // let the ranks enter the step
	victim := g.GangWorkers()[1]
	tb.Daemon.KillWorker(victim)

	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("rank death not observed by the pool")
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = call.Wait(waitCtx)
	if !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("evolve after rank death: err = %v, want ErrWorkerDied", err)
	}
	// The gang is dead as a unit: the next call fails the same way, fast.
	if err := g.EvolveTo(context.Background(), 1.0); !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("follow-up call: err = %v, want ErrWorkerDied", err)
	}
	// Clean teardown: surviving ranks stop; nothing hangs.
	if err := sim.Stop(); err != nil {
		t.Logf("stop after rank death: %v", err) // dead rank may report its abort
	}
}

// TestGangNonShardableKind: a kind whose service has no gang support must
// fail at start with a clear error, not run as divergent solo workers.
func TestGangNonShardableKind(t *testing.T) {
	tb, sim := labSim(t)
	_ = tb
	_, err := sim.NewStellar(context.Background(),
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 2},
		[]float64{5, 9, 12}, 1, 1)
	if err == nil {
		t.Fatal("stellar gang started; want shardability error")
	}
}

// TestGangRequiresIbisChannel: gangs need peer planes, which only the
// ibis channel provides.
func TestGangRequiresIbisChannel(t *testing.T) {
	tb, sim := labSim(t)
	_ = tb
	for _, ch := range []string{ChannelMPI, ChannelSockets} {
		_, err := sim.NewGravity(context.Background(),
			WorkerSpec{Resource: "das4-vu", Channel: ch, Workers: 2}, GravityOptions{Eps: 0.01})
		if err == nil {
			t.Fatalf("gang on channel %q started; want error", ch)
		}
	}
}

// TestTransferToGangHairpins: a state transfer INTO a gang must take the
// consistent broadcast hairpin (all ranks apply), and the columns must
// land on every rank — observed through a read (rank 0) and a follow-up
// evolve that would diverge if a rank missed the write.
func TestTransferToGangHairpins(t *testing.T) {
	tb, sim := labSim(t)
	_ = tb
	src, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "lgm", Channel: ChannelIbis}, GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(32, 33)
	if err := src.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	gang, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 2}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Same membership, different phase-space state.
	if err := gang.SetParticles(ic.Plummer(32, 44)); err != nil {
		t.Fatal(err)
	}
	if err := sim.TransferState(nil, src, gang); err != nil {
		t.Fatal(err)
	}
	stats := sim.TransferStats()
	if stats.Hairpin != 1 || stats.Direct != 0 {
		t.Fatalf("transfer stats %+v: gang destination must hairpin", stats)
	}
	got, err := gang.GetState(nil, data.AttrPos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stars.Pos {
		if got.Vec(data.AttrPos)[i] != stars.Pos[i] {
			t.Fatalf("particle %d: transferred position mismatch", i)
		}
	}
	// An evolve after the transfer exercises rank agreement: if a rank
	// had stale state, the halo-exchanged trajectories would be garbage
	// relative to a solo integration of the transferred state.
	if err := gang.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatal(err)
	}

	// Gang as SOURCE may use the direct plane (rank 0 offers).
	if err := sim.TransferState(nil, gang, src); err != nil {
		t.Fatal(err)
	}
	stats = sim.TransferStats()
	if stats.Direct != 1 {
		t.Fatalf("transfer stats %+v: gang source should stream directly", stats)
	}
}
