package core

import (
	"errors"
	"fmt"

	"jungle/internal/deploy"
)

// ErrNoResource is returned when no registered resource fits a spec.
var ErrNoResource = errors.New("core: no suitable resource")

// wantsGPU reports whether a kernel runs on an accelerator.
func wantsGPU(kernel string) bool {
	return kernel == "phigrape-gpu" || kernel == "octgrav"
}

// specDemand returns the effective (nodes per worker, total batch nodes)
// a spec needs: gangs multiply by the rank count.
func specDemand(spec WorkerSpec) (nodes, total int) {
	nodes = spec.Nodes
	if nodes < 1 {
		nodes = 1
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	return nodes, workers * nodes
}

// fitsResource reports whether a spec fits a resource given the capacity
// other sessions already hold on it. Batch clusters (resources with
// enumerated nodes) enforce node counts — both the per-worker node demand
// and, for gangs, room for every rank's job — against the nodes still
// free after other live sessions' reservations and running workers.
// ssh/local resources host workers as co-resident processes and never
// node-limit.
func fitsResource(d *deploy.Deployment, r *deploy.Resource, spec WorkerSpec) bool {
	if wantsGPU(spec.Kernel) && !r.HasGPU() {
		return false
	}
	nodes, total := specDemand(spec)
	if len(r.Nodes) == 0 {
		return r.NodeCount() >= nodes
	}
	free := r.NodeCount() - d.OccupiedNodesByOthers(r.Name, spec.Session)
	return free >= nodes && free >= total
}

// SelectResource implements §4.3's requirement 5, which the paper's
// prototype leaves to the user: "given the list of resources a user has
// access to, ideally, software should find suitable resources itself". The
// policy is device-aware scoring: GPU kernels demand a GPU resource (best
// GPU wins); multi-node workers demand enough nodes (most aggregate compute
// wins); everything else goes to the fastest available CPU.
//
// Gang specs (Workers > 1) select ONE resource for all ranks — halo
// exchange runs every step, so a gang is co-located on a single site and
// its traffic rides the site's fast internal links rather than the WAN.
// Batch clusters must have room for every rank's job; ssh/local resources
// host the ranks as co-resident processes.
//
// Fit is capacity-aware across sessions: nodes reserved or committed by
// OTHER live sessions (spec.Session scopes "other") are subtracted from a
// batch cluster's count before the fit check, so two sessions racing for
// one cluster cannot both be placed onto it when only one fits. A
// session's own holdings are not subtracted — a session fitting its next
// worker is not competing with itself.
func SelectResource(d *deploy.Deployment, spec WorkerSpec) (string, error) {
	var bestName string
	var bestScore float64
	needGPU := wantsGPU(spec.Kernel)
	for _, name := range d.Resources() {
		r, err := d.Resource(name)
		if err != nil || !fitsResource(d, r, spec) {
			continue
		}
		score := 0.0
		switch {
		case needGPU:
			score = r.GPU.Gflops
		case r.CPU != nil:
			score = r.CPU.Gflops * float64(r.CPU.Cores) * float64(r.NodeCount())
		}
		if score > bestScore {
			bestScore, bestName = score, name
		}
	}
	if bestName == "" {
		nodes, _ := specDemand(spec)
		return "", fmt.Errorf("%w: kind=%s kernel=%q nodes=%d gpu=%v",
			ErrNoResource, spec.Kind, spec.Kernel, nodes, needGPU)
	}
	return bestName, nil
}

// SelectLeastLoaded is the scheduler-level placement policy: among the
// resources a spec fits (same device and capacity constraints as
// SelectResource), pick the one with the most free capacity — batch
// clusters by free-node fraction, ssh/local hosts by how few workers the
// requesting plane already placed there (tracked through the same
// ledger). Ties break toward SelectResource's compute score, so an idle
// jungle places exactly like the single-session policy.
func SelectLeastLoaded(d *deploy.Deployment, spec WorkerSpec) (string, error) {
	return selectLeastLoaded(d, spec, "")
}

// selectLeastLoaded is SelectLeastLoaded with an optional excluded
// resource — migration off a contended resource must not pick the
// resource it is fleeing.
func selectLeastLoaded(d *deploy.Deployment, spec WorkerSpec, exclude string) (string, error) {
	var bestName string
	var bestFree, bestScore float64
	first := true
	needGPU := wantsGPU(spec.Kernel)
	for _, name := range d.Resources() {
		if name == exclude {
			continue
		}
		r, err := d.Resource(name)
		if err != nil || !fitsResource(d, r, spec) {
			continue
		}
		occupied := d.OccupiedNodes(r.Name)
		var free float64
		if len(r.Nodes) > 0 {
			free = float64(r.NodeCount()-occupied) / float64(r.NodeCount())
		} else {
			// Co-resident hosts never fill up; rank them below an empty
			// cluster once workers pile on (1/(1+n) decays with load).
			free = 1 / (1 + float64(occupied))
		}
		score := 0.0
		switch {
		case needGPU:
			score = r.GPU.Gflops
		case r.CPU != nil:
			score = r.CPU.Gflops * float64(r.CPU.Cores) * float64(r.NodeCount())
		}
		// Strictly better free fraction wins; equal free falls to compute
		// score; a full tie breaks on the lexicographically smallest name.
		// The explicit name clause pins the choice even if the candidate
		// iteration order ever stops being sorted — placement must be a
		// pure function of the ledger, never of map iteration order.
		better := free > bestFree ||
			(free == bestFree && score > bestScore) ||
			(free == bestFree && score == bestScore && name < bestName)
		if first || better {
			first = false
			bestName, bestFree, bestScore = name, free, score
		}
	}
	if bestName == "" {
		nodes, _ := specDemand(spec)
		return "", fmt.Errorf("%w: kind=%s kernel=%q nodes=%d gpu=%v",
			ErrNoResource, spec.Kind, spec.Kernel, nodes, needGPU)
	}
	return bestName, nil
}
