package core

import (
	"errors"
	"fmt"

	"jungle/internal/deploy"
)

// ErrNoResource is returned when no registered resource fits a spec.
var ErrNoResource = errors.New("core: no suitable resource")

// wantsGPU reports whether a kernel runs on an accelerator.
func wantsGPU(kernel string) bool {
	return kernel == "phigrape-gpu" || kernel == "octgrav"
}

// SelectResource implements §4.3's requirement 5, which the paper's
// prototype leaves to the user: "given the list of resources a user has
// access to, ideally, software should find suitable resources itself". The
// policy is device-aware scoring: GPU kernels demand a GPU resource (best
// GPU wins); multi-node workers demand enough nodes (most aggregate compute
// wins); everything else goes to the fastest available CPU.
//
// Gang specs (Workers > 1) select ONE resource for all ranks — halo
// exchange runs every step, so a gang is co-located on a single site and
// its traffic rides the site's fast internal links rather than the WAN.
// Batch clusters must have room for every rank's job; ssh/local resources
// host the ranks as co-resident processes.
func SelectResource(d *deploy.Deployment, spec WorkerSpec) (string, error) {
	var bestName string
	var bestScore float64
	needGPU := wantsGPU(spec.Kernel)
	nodes := spec.Nodes
	if nodes < 1 {
		nodes = 1
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	for _, name := range d.Resources() {
		r, err := d.Resource(name)
		if err != nil {
			continue
		}
		if needGPU && !r.HasGPU() {
			continue
		}
		if r.NodeCount() < nodes {
			continue
		}
		if workers > 1 && len(r.Nodes) > 0 && r.NodeCount() < workers*nodes {
			continue // a batch cluster must fit the whole gang
		}
		score := 0.0
		switch {
		case needGPU:
			score = r.GPU.Gflops
		case r.CPU != nil:
			score = r.CPU.Gflops * float64(r.CPU.Cores) * float64(r.NodeCount())
		}
		if score > bestScore {
			bestScore, bestName = score, name
		}
	}
	if bestName == "" {
		return "", fmt.Errorf("%w: kind=%s kernel=%q nodes=%d gpu=%v",
			ErrNoResource, spec.Kind, spec.Kernel, nodes, needGPU)
	}
	return bestName, nil
}
