package core

import (
	"context"
	"testing"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/phys/bridge"
	"jungle/internal/trace"
)

// TestObservabilityDefaultOn: a simulation built on any testbed wires the
// testbed's recorder as its monitor with no opt-in, and a nil monitor
// turns the plane off without touching the call path.
func TestObservabilityDefaultOn(t *testing.T) {
	tb, sim := labSim(t)
	if sim.Monitor != tb.Recorder {
		t.Fatal("simulation did not adopt the deployment recorder by default")
	}
	sim.Monitor = nil // plane off for workers created from here on
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "desktop", Channel: ChannelMPI},
		GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 3)); err != nil {
		t.Fatal(err)
	}
	if rows := tb.Recorder.CallTable(); len(rows) != 0 {
		t.Fatalf("plane off but %d call rows recorded: %+v", len(rows), rows)
	}
}

// TestObservabilityHonesty is the E2E honesty check: run the SC11
// worst-case scenario and hold the plane's numbers to the run's ground
// truth — every exercised method shows calls with non-zero latency
// quantiles at or above its channel floor, the per-link transfer counters
// equal the session's TransferStats, and a checkpoint lands in the store
// gauges.
func TestObservabilityHonesty(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tb, err := NewSC11Testbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	sim := NewSimulation(context.Background(), tb.Daemon, nil)
	t.Cleanup(func() { sim.Stop() })

	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 30, Gas: 120, GasFrac: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHydro(context.Background(), WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis},
		HydroOptions{SelfGravity: true, EpsGrav: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	f, err := sim.NewField(context.Background(), WorkerSpec{Resource: "das4-tud", Channel: ChannelIbis},
		FieldOptions{Kernel: "octgrav", Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	br, err := bridge.New(bridge.Config{Stars: g, Gas: h, Coupler: f, DT: 1.0 / 32, Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := br.EvolveTo(context.Background(), 2.0/32); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every method the run exercised must show honest latency: non-zero
	// count and p50/p99 at or above the channel's configured floor (every
	// SC11 round trip crosses a routed path, so floors are all positive).
	rows := tb.Recorder.CallTable()
	if len(rows) == 0 {
		t.Fatal("no call telemetry recorded")
	}
	methods := map[string]bool{}
	for _, row := range rows {
		methods[row.Method] = true
		hist := row.Stats.Hist
		if hist.Count == 0 {
			t.Fatalf("%v: zero calls recorded", row.CallKey)
		}
		if row.Stats.Floor <= 0 {
			t.Fatalf("%v: no channel floor recorded", row.CallKey)
		}
		p50, p99 := hist.Quantile(0.5), hist.Quantile(0.99)
		if p50 <= 0 || p99 <= 0 {
			t.Fatalf("%v: zero latency quantiles p50=%d p99=%d", row.CallKey, p50, p99)
		}
		if min := time.Duration(hist.Min); min < row.Stats.Floor {
			t.Fatalf("%v: min latency %v below the configured floor %v — the plane is not honest",
				row.CallKey, min, row.Stats.Floor)
		}
	}
	for _, want := range []string{"setup", "set_particles", "kick", "evolve", "offer_state", "accept_state", "offer_checkpoint"} {
		if !methods[want] {
			t.Fatalf("method %q exercised but missing from the call table (have %v)", want, methods)
		}
	}

	// The per-link transfer counters must agree, event for event, with the
	// session's own TransferStats.
	st := sim.TransferStats()
	var link TransferStats
	for _, row := range tb.Recorder.LinkHealthTable(-1, trace.DefaultStaleAfter) {
		link.Direct += row.Transfers.Direct
		link.Striped += row.Transfers.Striped
		link.Hairpin += row.Transfers.Hairpin
		link.Fallback += row.Transfers.Fallback
		link.StripeFallback += row.Transfers.StripeFallback
	}
	if link != st {
		t.Fatalf("link transfer counters %+v != session TransferStats %+v", link, st)
	}
	if st.Direct+st.Striped+st.Hairpin == 0 {
		t.Fatal("bridge run moved no state; the honesty check checked nothing")
	}

	// The checkpoint pass must land in the store gauges, one row per model
	// kind, with positive blob sizes.
	store := tb.Recorder.StoreTable()
	if len(store) == 0 {
		t.Fatal("checkpoint recorded no store gauges")
	}
	for _, row := range store {
		if row.Stats.Checkpoints == 0 || row.Stats.LastRaw <= 0 || row.Stats.LastWire <= 0 {
			t.Fatalf("store gauges for %s not honest: %+v", row.Model, row.Stats)
		}
	}

	// Queue depths were sampled for every worker the run started.
	if len(tb.Recorder.QueueTable()) == 0 {
		t.Fatal("no queue-depth telemetry recorded")
	}
}

// TestCalibrateDrift is the calibration loop's acceptance bar: on both
// multi-site testbeds, probing every configured directed edge measures a
// goodput within 10% of the configured vnet bandwidth.
func TestCalibrateDrift(t *testing.T) {
	for name, build := range map[string]func() (*Testbed, error){
		"dsl":  NewDSLTestbed,
		"sc11": NewSC11Testbed,
	} {
		t.Run(name, func(t *testing.T) {
			tb, err := build()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(tb.Close)
			specs := tb.LinkSpecs()
			if len(specs) == 0 {
				t.Fatal("no configured edges to calibrate")
			}
			cal, _, err := tb.Calibrate(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(cal.Links) != len(specs) {
				t.Fatalf("calibration covered %d edges, configured %d", len(cal.Links), len(specs))
			}
			worst, all := cal.MaxLinkDrift()
			if !all {
				t.Fatalf("unmeasured edges in the calibration:\n%s", cal.Render())
			}
			if worst >= 0.10 {
				t.Fatalf("worst link drift %.2f%% breaches the 10%% bar:\n%s", worst*100, cal.Render())
			}
		})
	}
}
