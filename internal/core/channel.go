package core

import (
	"fmt"
	"sync"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/vnet"
)

// channel moves RPC round trips between the coupler and one worker. The
// three implementations mirror AMUSE's channels: "mpi" (in-process, the
// default), "sockets" (loopback connection to a local worker process) and
// "ibis" (via the daemon over IPL to a remote resource — this paper's
// addition).
type channel interface {
	name() string
	// roundTrip performs one call; arrival is the coupler-side virtual
	// time at which the response landed.
	roundTrip(req request) (response, time.Duration, error)
	close() error
}

// Channel names.
const (
	ChannelMPI     = "mpi"
	ChannelSockets = "sockets"
	ChannelIbis    = "ibis"
)

// localChannel calls the service in-process. AMUSE's MPI channel costs a
// small per-message latency; calls are serialized like a single-threaded
// worker.
type localChannel struct {
	mu      sync.Mutex
	svc     service
	closed  bool
	latency time.Duration
}

// mpiMessageLatency is the per-call cost of the local MPI channel.
const mpiMessageLatency = 5 * time.Microsecond

func newLocalChannel(svc service) *localChannel {
	return &localChannel{svc: svc, latency: mpiMessageLatency}
}

func (c *localChannel) name() string { return ChannelMPI }

func (c *localChannel) roundTrip(req request) (response, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return response{}, 0, ErrChannelClosed
	}
	result, doneAt, err := c.svc.Dispatch(req.Method, req.Args, req.SentAt+c.latency)
	resp := response{ID: req.ID, Result: result, DoneAt: doneAt}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp, doneAt + c.latency, nil
}

func (c *localChannel) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		c.svc.Close()
	}
	return nil
}

// connChannel frames requests over a vnet connection and matches responses
// by ID; it serves both the sockets channel (conn straight to a worker) and
// the coupler side of the ibis channel (conn to the local daemon).
type connChannel struct {
	chName string
	conn   *vnet.Conn

	mu      sync.Mutex
	pending map[uint64]chan respArrival
	closed  bool
	readErr error
}

type respArrival struct {
	resp    response
	arrival time.Duration
}

func newConnChannel(name string, conn *vnet.Conn) *connChannel {
	c := &connChannel{chName: name, conn: conn, pending: make(map[uint64]chan respArrival)}
	go c.readLoop()
	return c
}

func (c *connChannel) name() string { return c.chName }

func (c *connChannel) readLoop() {
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			if c.readErr == nil {
				c.readErr = ErrWorkerDied
			}
			for id, ch := range c.pending {
				delete(c.pending, id)
				close(ch)
			}
			c.mu.Unlock()
			return
		}
		var resp response
		if err := kernel.UnmarshalResponse(msg.Data, &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- respArrival{resp: resp, arrival: msg.Arrival}
		}
	}
}

func (c *connChannel) roundTrip(req request) (response, time.Duration, error) {
	ch := make(chan respArrival, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrChannelClosed
		}
		return response{}, 0, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	buf := kernel.GetBuf()
	frame := kernel.AppendRequest(*buf, &req)
	_, sendErr := c.conn.Send(frame, req.SentAt)
	*buf = frame[:0]
	kernel.PutBuf(buf)
	if sendErr != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return response{}, 0, fmt.Errorf("core: %s channel send: %w", c.chName, sendErr)
	}
	ra, ok := <-ch
	if !ok {
		return response{}, 0, ErrWorkerDied
	}
	return ra.resp, ra.arrival, nil
}

func (c *connChannel) close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		return c.conn.Close()
	}
	return nil
}

// serveConn is the worker-process side of a conn channel: read requests,
// dispatch sequentially, reply. It returns when the connection closes.
func serveConn(conn *vnet.Conn, svc service) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		var req request
		if err := kernel.UnmarshalRequest(msg.Data, &req); err != nil {
			continue
		}
		result, doneAt, derr := svc.Dispatch(req.Method, req.Args, msg.Arrival)
		resp := response{ID: req.ID, Result: result, DoneAt: doneAt}
		if derr != nil {
			resp.Err = derr.Error()
		}
		buf := kernel.GetBuf()
		frame := kernel.AppendResponse(*buf, &resp)
		_, sendErr := conn.Send(frame, doneAt)
		*buf = frame[:0]
		kernel.PutBuf(buf)
		if sendErr != nil {
			return
		}
	}
}
