package core

import (
	"fmt"
	"sync"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/vnet"
)

// completion receives the outcome of one started call, exactly once: a
// decoded response plus its coupler-side virtual arrival time, or a
// transport-level error. Completions are invoked from channel-internal
// goroutines and must not block.
type completion func(resp response, arrival time.Duration, err error)

// channel moves RPC round trips between the coupler and one worker. The
// three implementations mirror AMUSE's channels: "mpi" (in-process, the
// default), "sockets" (loopback connection to a local worker process) and
// "ibis" (via the daemon over IPL to a remote resource — this paper's
// addition).
//
// The interface is asynchronous: start issues a call and returns
// immediately; the outcome is delivered to the completion later. Calls
// started from one goroutine are delivered to the worker in start order
// (the worker itself is single-threaded), which is what lets the coupler
// pipeline many calls onto one slow wide-area link and pay its latency
// once instead of once per call.
type channel interface {
	name() string
	// start issues one call without waiting and later delivers the
	// outcome to done (exactly once, possibly before start returns if the
	// channel is already closed).
	start(req request, done completion)
	close() error
}

// Channel names.
const (
	ChannelMPI     = "mpi"
	ChannelSockets = "sockets"
	ChannelIbis    = "ibis"
)

// localChannel calls the service in-process. AMUSE's MPI channel costs a
// small per-message latency; calls are served by one goroutine in FIFO
// order, like a single-threaded worker behind a message queue.
type localChannel struct {
	svc     service
	latency time.Duration
	obs     *chanObs

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []localSubmission
	closed bool

	stopped chan struct{}
}

type localSubmission struct {
	req  request
	done completion
}

// mpiMessageLatency is the per-call cost of the local MPI channel.
const mpiMessageLatency = 5 * time.Microsecond

func newLocalChannel(svc service, obs *chanObs) *localChannel {
	c := &localChannel{svc: svc, latency: mpiMessageLatency, obs: obs, stopped: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.serve()
	return c
}

func (c *localChannel) name() string { return ChannelMPI }

func (c *localChannel) start(req request, done completion) {
	done = c.obs.observe(req.Method, req.SentAt, done)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		done(response{}, 0, ErrChannelClosed)
		return
	}
	c.queue = append(c.queue, localSubmission{req: req, done: done})
	c.cond.Signal()
	c.mu.Unlock()
}

// serve is the worker loop: pop one submission, dispatch, deliver.
func (c *localChannel) serve() {
	defer close(c.stopped)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.closed {
			c.mu.Unlock()
			c.svc.Close()
			return
		}
		sub := c.queue[0]
		c.queue = c.queue[1:]
		closed := c.closed
		c.mu.Unlock()
		if closed {
			sub.done(response{}, 0, ErrChannelClosed)
			continue
		}
		result, doneAt, err := c.svc.Dispatch(sub.req.Method, sub.req.Args, sub.req.SentAt+c.latency)
		resp := response{ID: sub.req.ID, Result: result, DoneAt: doneAt}
		if err != nil {
			resp.Code = kernel.ClassifyErr(err)
			resp.Err = err.Error()
		}
		sub.done(resp, doneAt+c.latency, nil)
	}
}

func (c *localChannel) close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	if !already {
		// Wait for the serve loop to finish its in-flight dispatch, fail
		// anything still queued and release the service.
		<-c.stopped
	}
	return nil
}

// connChannel frames requests over a vnet connection and matches responses
// by ID; it serves both the sockets channel (conn straight to a worker) and
// the coupler side of the ibis channel (conn to the local daemon).
type connChannel struct {
	chName string
	conn   *vnet.Conn
	obs    *chanObs

	mu      sync.Mutex
	pending map[uint64]completion
	closed  bool
	readErr error
}

func newConnChannel(name string, conn *vnet.Conn, obs *chanObs) *connChannel {
	c := &connChannel{chName: name, conn: conn, obs: obs, pending: make(map[uint64]completion)}
	go c.readLoop()
	return c
}

func (c *connChannel) name() string { return c.chName }

func (c *connChannel) readLoop() {
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			c.fail(ErrWorkerDied)
			return
		}
		var resp response
		if err := kernel.UnmarshalResponse(msg.Data, &resp); err != nil {
			// An undecodable frame cannot be matched to its waiter, and
			// everything behind it on the stream is suspect: fail the
			// channel (and every pending call) rather than dropping the
			// frame and leaking the waiter forever.
			c.fail(fmt.Errorf("%w: %s channel received undecodable response frame: %v",
				kernel.ErrTransport, c.chName, err))
			c.conn.Close()
			return
		}
		c.mu.Lock()
		done := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if done != nil {
			done(resp, msg.Arrival, nil)
		}
	}
}

// fail marks the channel dead and delivers err to every pending call.
func (c *connChannel) fail(err error) {
	c.mu.Lock()
	c.closed = true
	if c.readErr == nil {
		c.readErr = err
	}
	err = c.readErr
	pend := c.pending
	c.pending = make(map[uint64]completion)
	c.mu.Unlock()
	for _, done := range pend {
		done(response{}, 0, err)
	}
}

func (c *connChannel) start(req request, done completion) {
	done = c.obs.observe(req.Method, req.SentAt, done)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrChannelClosed
		}
		done(response{}, 0, err)
		return
	}
	c.pending[req.ID] = done
	c.mu.Unlock()

	buf := kernel.GetBuf()
	frame := kernel.AppendRequest(*buf, &req)
	_, sendErr := c.conn.Send(frame, req.SentAt)
	*buf = frame[:0]
	kernel.PutBuf(buf)
	if sendErr != nil {
		// The read loop may have raced us to the pending entry (it fails
		// everything when the conn dies); only deliver if we still own it.
		c.mu.Lock()
		cb, ok := c.pending[req.ID]
		delete(c.pending, req.ID)
		c.mu.Unlock()
		if ok && cb != nil {
			cb(response{}, 0, fmt.Errorf("%w: %s channel send: %v", kernel.ErrTransport, c.chName, sendErr))
		}
	}
}

func (c *connChannel) close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	if c.readErr == nil {
		c.readErr = ErrChannelClosed
	}
	err := c.readErr
	pend := c.pending
	c.pending = make(map[uint64]completion)
	c.mu.Unlock()
	for _, done := range pend {
		done(response{}, 0, err)
	}
	if !already {
		return c.conn.Close()
	}
	return nil
}

// serveConn is the worker-process side of a conn channel: read requests,
// dispatch sequentially, reply. Pipelined requests queue on the conn and
// execute in arrival order. It returns when the connection closes.
func serveConn(conn *vnet.Conn, svc service) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		var req request
		if err := kernel.UnmarshalRequest(msg.Data, &req); err != nil {
			continue
		}
		result, doneAt, derr := svc.Dispatch(req.Method, req.Args, msg.Arrival)
		resp := response{ID: req.ID, Result: result, DoneAt: doneAt}
		if derr != nil {
			resp.Code = kernel.ClassifyErr(derr)
			resp.Err = derr.Error()
		}
		buf := kernel.GetBuf()
		frame := kernel.AppendResponse(*buf, &resp)
		_, sendErr := conn.Send(frame, doneAt)
		*buf = frame[:0]
		kernel.PutBuf(buf)
		if sendErr != nil {
			return
		}
	}
}
