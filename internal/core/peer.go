package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/ipl"
	"jungle/internal/mpisim"
	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// The worker side of the direct data plane. Each ibis worker's proxy owns
// a peer listener on the SmartSockets overlay (ipl.PeerAddr of its pool
// identity): bulk state streamed by other workers lands here, and the
// proxy's offer_state/accept_state handlers move it between the stream
// and the model service over the local loopback — the coupler only ever
// orchestrates, its machine never carries the column bytes.

// PeerAcceptTimeout bounds, in real time, how long an accept_state waits
// for its transfer stream before failing with a transport error. The
// normal failure path never waits it out — a failed offer makes the
// daemon stream an abort marker — so it only fires when the abort path is
// unreachable too. A variable so fault tests can tighten it.
var PeerAcceptTimeout = 10 * time.Second

// testPeerStreamFault, when set, kills the peer stream connection right
// after dialing — the fault-injection hook for "the stream died
// mid-transfer". Set only from tests, before workers start.
var testPeerStreamFault func() bool

// testStripeFault, when set, kills the numbered stripe connection right
// after dialing — the fault-injection hook for "one stripe of a striped
// transfer died". Set only from tests, before workers start.
var testStripeFault func(index int) bool

// testStripeCorrupt, when set, may replace the bytes of the numbered
// stripe just before sending (after the manifest digests were computed) —
// the fault-injection hook for the receiver's digest verification.
var testStripeCorrupt func(index int, data []byte) []byte

// stripeMin is the smallest stripe worth a dedicated connection: the
// effective stream count is payload/stripeMin, clamped to the offer's
// Stripes limit, so small payloads always take the classic single stream
// (and a build with striping disabled is wire-identical to one without it).
const stripeMin = 64 << 10

// peerDelivery is one parked transfer stream (or its abort).
type peerDelivery struct {
	state   []byte
	arrival time.Duration
	err     error
}

// peerMailbox parks transfer streams until the matching accept_state
// arrives; streams and accepts race freely, whichever comes first waits
// for the other.
type peerMailbox struct {
	mu      sync.Mutex
	box     map[uint64]peerDelivery
	waiters map[uint64]chan peerDelivery
	// consumed marks ids whose accept already returned (successfully or
	// by timeout): late streams and redundant aborts for them are dropped
	// instead of parked forever — accepts are never retried, so a
	// consumed id can receive nothing anyone will wait for.
	consumed map[uint64]bool
	closed   bool
}

func newPeerMailbox() *peerMailbox {
	return &peerMailbox{
		box:      make(map[uint64]peerDelivery),
		waiters:  make(map[uint64]chan peerDelivery),
		consumed: make(map[uint64]bool),
	}
}

// deposit hands a delivery to a waiting accept, or parks it.
func (mb *peerMailbox) deposit(id uint64, d peerDelivery) {
	mb.mu.Lock()
	if mb.closed || mb.consumed[id] {
		mb.mu.Unlock()
		return
	}
	if ch, ok := mb.waiters[id]; ok {
		delete(mb.waiters, id)
		mb.consumed[id] = true
		mb.mu.Unlock()
		ch <- d
		return
	}
	mb.box[id] = d
	mb.mu.Unlock()
}

// wait blocks (in real time, up to timeout) for the delivery with the
// given id.
func (mb *peerMailbox) wait(id uint64, timeout time.Duration) (peerDelivery, error) {
	mb.mu.Lock()
	if d, ok := mb.box[id]; ok {
		delete(mb.box, id)
		mb.consumed[id] = true
		mb.mu.Unlock()
		return d, nil
	}
	if mb.closed {
		mb.mu.Unlock()
		return peerDelivery{}, fmt.Errorf("%w: peer plane closed", kernel.ErrTransport)
	}
	ch := make(chan peerDelivery, 1)
	mb.waiters[id] = ch
	mb.mu.Unlock()
	select {
	case d := <-ch:
		return d, nil
	case <-time.After(timeout):
		mb.mu.Lock()
		delete(mb.waiters, id)
		mb.consumed[id] = true
		mb.mu.Unlock()
		return peerDelivery{}, fmt.Errorf("%w: transfer %d: no peer stream within %v",
			kernel.ErrTransport, id, timeout)
	}
}

// close fails every parked and future wait (worker teardown).
func (mb *peerMailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	waiters := mb.waiters
	mb.waiters = make(map[uint64]chan peerDelivery)
	mb.box = make(map[uint64]peerDelivery)
	mb.mu.Unlock()
	for _, ch := range waiters {
		ch <- peerDelivery{err: fmt.Errorf("%w: peer plane closed", kernel.ErrTransport)}
	}
}

// peerPlane is the proxy-side endpoint of the direct data plane: the
// stream listener, the transfer-op handlers, and — for gang ranks — the
// gang link wiring (inbound hello connections park in the gang mailbox
// until gang_init claims them).
type peerPlane struct {
	ib      *ipl.Ibis
	mailbox *peerMailbox
	gangBox *gangMailbox
	stripes *stripeBox
	lis     *smartsockets.Listener
	wg      sync.WaitGroup

	mu   sync.Mutex
	gang *mpisim.Gang // wired by handleGangInit; closed by stop

	// ckptMu guards the ref-delta base: the raw bytes of the last snapshot
	// this worker streamed to the checkpoint store, and the blob ref it was
	// filed under. The next offer_checkpoint whose Base matches sends only
	// the XOR residue against these bytes (kernel.CompressStateRef).
	ckptMu   sync.Mutex
	ckptBase []byte
	ckptRef  uint64
}

// newPeerPlane opens the worker's peer listener and starts serving
// inbound streams.
func newPeerPlane(ib *ipl.Ibis) (*peerPlane, error) {
	lis, err := ib.ListenPeer()
	if err != nil {
		return nil, fmt.Errorf("core: peer listener: %w", err)
	}
	p := &peerPlane{ib: ib, mailbox: newPeerMailbox(), gangBox: newGangMailbox(), lis: lis}
	p.stripes = newStripeBox(p.finishStriped)
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// finishStriped deposits a verified, reassembled striped payload into the
// transfer mailbox and acknowledges on the manifest connection. A payload
// that fails to decode gets no ack, so the sender retries over a single
// stream (whose deposit then reports the decode error to the accept).
func (p *peerPlane) finishStriped(id uint64, payload []byte, arrival time.Duration, mconn *smartsockets.VirtualConn) {
	raw, err := kernel.MaybeDecompressState(payload, nil)
	if err != nil {
		mconn.Close()
		return
	}
	p.mailbox.deposit(id, peerDelivery{state: raw, arrival: arrival})
	mconn.Send(kernel.AppendTransferAck(nil, id), arrival)
	mconn.Close()
}

// serve accepts peer connections and routes them by their first frame's
// tag: a transfer stream carries one state (or abort) frame and is
// acknowledged at its virtual arrival time; a gang hello hands the whole
// connection over as a persistent rank link; manifest and stripe frames
// feed the striped-transfer reassembler; a goodput probe hands the
// connection to the factory's probe responder.
func (p *peerPlane) serve() {
	defer p.wg.Done()
	defer p.mailbox.close()
	defer p.gangBox.close()
	defer p.stripes.close()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			conn.SetClass("peer")
			msg, err := conn.Recv()
			if err != nil {
				conn.Close()
				return
			}
			switch {
			case smartsockets.IsProbeFrame(msg.Data):
				// The peer listener doubles as the goodput-probe responder,
				// so probing a worker needs no extra registration.
				p.ib.Factory().ServeProbeConn(conn, msg.Data, msg.Arrival)
				return
			case kernel.IsGangHello(msg.Data):
				gangID, fromRank, err := kernel.UnmarshalGangHello(msg.Data)
				if err != nil {
					conn.Close()
					return
				}
				// Ownership transfers to the mailbox (and then the gang):
				// the connection stays open as a rank link.
				p.gangBox.deposit(gangKey{id: gangID, rank: fromRank}, conn)
				return
			case kernel.IsManifest(msg.Data):
				// Blocking: the box owns the connection until ack/teardown.
				p.stripes.manifest(conn, msg.Data, msg.Arrival)
				return
			case kernel.IsStripe(msg.Data):
				p.stripes.stripe(msg.Data, msg.Arrival)
				conn.Close()
				return
			}
			defer conn.Close()
			id, state, abort, err := kernel.UnmarshalTransfer(msg.Data)
			if err != nil {
				return
			}
			if abort {
				p.mailbox.deposit(id, peerDelivery{err: fmt.Errorf(
					"%w: transfer %d aborted by coupler", kernel.ErrTransport, id)})
				return
			}
			// state aliases msg.Data, which is private to this stream: no
			// copy needed before the loopback apply. Compressed payloads
			// (tagStateZ) are restored here, at the plane boundary — raw
			// frames pass through MaybeDecompressState untouched.
			raw, derr := kernel.MaybeDecompressState(state, nil)
			if derr != nil {
				p.mailbox.deposit(id, peerDelivery{err: fmt.Errorf(
					"%w: transfer %d: %v", kernel.ErrTransport, id, derr)})
				return
			}
			p.mailbox.deposit(id, peerDelivery{state: raw, arrival: msg.Arrival})
			conn.Send(kernel.AppendTransferAck(nil, id), msg.Arrival)
		}()
	}
}

// stop closes the listener, tears down the gang links (the factory does
// not track direct peer connections, so a dead rank's links must be
// closed here for the surviving ranks' collectives — and this rank's own
// stuck dispatch — to unblock), and waits for stream handlers. The
// factory close in ib.End()/Kill() also closes the listener; stop makes
// teardown explicit on the clean path.
func (p *peerPlane) stop() {
	p.lis.Close()
	p.mu.Lock()
	g := p.gang
	p.mu.Unlock()
	if g != nil {
		g.Close()
	}
	p.wg.Wait()
}

// gangKey identifies one inbound gang link: which gang, which peer rank.
type gangKey struct {
	id   uint64
	rank int
}

// gangMailbox parks inbound gang link connections until the local
// gang_init claims them; hellos and gang_init race freely.
type gangMailbox struct {
	mu      sync.Mutex
	box     map[gangKey]*smartsockets.VirtualConn
	waiters map[gangKey]chan *smartsockets.VirtualConn
	closed  bool
}

func newGangMailbox() *gangMailbox {
	return &gangMailbox{
		box:     make(map[gangKey]*smartsockets.VirtualConn),
		waiters: make(map[gangKey]chan *smartsockets.VirtualConn),
	}
}

// deposit hands a hello connection to a waiting gang_init, or parks it.
func (mb *gangMailbox) deposit(key gangKey, conn *smartsockets.VirtualConn) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		conn.Close()
		return
	}
	if ch, ok := mb.waiters[key]; ok {
		delete(mb.waiters, key)
		mb.mu.Unlock()
		ch <- conn
		return
	}
	if old, dup := mb.box[key]; dup {
		old.Close() // a duplicate hello replaces the stale link
	}
	mb.box[key] = conn
	mb.mu.Unlock()
}

// wait blocks (in real time, up to timeout) for the hello connection with
// the given key.
func (mb *gangMailbox) wait(key gangKey, timeout time.Duration) (*smartsockets.VirtualConn, error) {
	mb.mu.Lock()
	if conn, ok := mb.box[key]; ok {
		delete(mb.box, key)
		mb.mu.Unlock()
		return conn, nil
	}
	if mb.closed {
		mb.mu.Unlock()
		return nil, fmt.Errorf("%w: peer plane closed", kernel.ErrTransport)
	}
	ch := make(chan *smartsockets.VirtualConn, 1)
	mb.waiters[key] = ch
	mb.mu.Unlock()
	select {
	case conn := <-ch:
		if conn == nil { // mailbox closed while waiting
			return nil, fmt.Errorf("%w: peer plane closed", kernel.ErrTransport)
		}
		return conn, nil
	case <-time.After(timeout):
		mb.mu.Lock()
		delete(mb.waiters, key)
		mb.mu.Unlock()
		// A deposit may have raced the timeout: it already removed the
		// waiter entry and put the connection into the buffered channel,
		// which nothing will ever read again. Drain it so the connection
		// is not stranded open for the worker's lifetime.
		select {
		case conn := <-ch:
			if conn != nil {
				conn.Close()
			}
		default:
		}
		return nil, fmt.Errorf("%w: gang %d: no link from rank %d within %v",
			kernel.ErrTransport, key.id, key.rank, timeout)
	}
}

// close parks no more connections and closes everything parked.
func (mb *gangMailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	box := mb.box
	mb.box = make(map[gangKey]*smartsockets.VirtualConn)
	waiters := mb.waiters
	mb.waiters = make(map[gangKey]chan *smartsockets.VirtualConn)
	mb.mu.Unlock()
	for _, conn := range box {
		conn.Close()
	}
	for _, ch := range waiters {
		close(ch)
	}
}

// peerLink adapts a SmartSockets peer connection to mpisim.Link, so the
// gang collectives run over the same overlay plane as direct state
// transfers.
type peerLink struct {
	conn *smartsockets.VirtualConn
}

func (l *peerLink) Send(data []byte, sentAt time.Duration) error {
	return l.conn.Send(data, sentAt)
}

func (l *peerLink) Recv() ([]byte, time.Duration, error) {
	msg, err := l.conn.Recv()
	if err != nil {
		return nil, 0, err
	}
	return msg.Data, msg.Arrival, nil
}

func (l *peerLink) Close() error { return l.conn.Close() }

// isGangMethod reports whether a request is the proxy-level gang wiring
// op.
func isGangMethod(method string) bool { return method == kernel.MethodGangInit }

// handleGangInit wires this rank's gang links: dial every higher rank's
// peer listener (sending the hello frame that names this gang and rank),
// await hello connections from every lower rank, assemble the
// communicator and install it in the service via kernel.Shardable. Runs
// in the proxy relay loop, so the setup call queued behind gang_init
// cannot reach the service before the gang exists.
func (p *peerPlane) handleGangInit(req *request, arrival time.Duration, svc service) *response {
	fail := func(code kernel.Code, err error) *response {
		return &response{ID: req.ID, Code: code, Err: err.Error(), DoneAt: arrival}
	}
	var a kernel.GangInitArgs
	if err := decode(req.Args, &a); err != nil {
		return fail(kernel.CodeWorkerFault, err)
	}
	sh, ok := svc.(kernel.Shardable)
	if !ok {
		return fail(kernel.CodeWorkerFault, fmt.Errorf("core: service is not shardable"))
	}
	if a.Rank < 0 || a.Rank >= a.Size || len(a.Peers) != a.Size {
		return fail(kernel.CodeWorkerFault, fmt.Errorf("core: bad gang_init: rank %d size %d peers %d",
			a.Rank, a.Size, len(a.Peers)))
	}
	links := make([]mpisim.Link, a.Size)
	cleanup := func() {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	}
	// Lower ranks dial: this rank dials every rank above it…
	for j := a.Rank + 1; j < a.Size; j++ {
		addr, err := smartsockets.ParseAddress(a.Peers[j])
		if err != nil {
			cleanup()
			return fail(kernel.CodeWorkerFault, err)
		}
		conn, err := p.ib.DialPeer(addr, arrival)
		if err != nil {
			cleanup()
			return fail(kernel.CodeTransport, fmt.Errorf("core: gang %d: rank %d unreachable: %w", a.ID, j, err))
		}
		conn.SetClass("peer")
		if err := conn.Send(kernel.AppendGangHello(nil, a.ID, a.Rank),
			maxDuration(arrival, conn.EstablishedAt())); err != nil {
			conn.Close()
			cleanup()
			return fail(kernel.CodeTransport, fmt.Errorf("core: gang %d: hello to rank %d: %w", a.ID, j, err))
		}
		links[j] = &peerLink{conn: conn}
	}
	// …and awaits hellos from every rank below it.
	for j := 0; j < a.Rank; j++ {
		conn, err := p.gangBox.wait(gangKey{id: a.ID, rank: j}, PeerAcceptTimeout)
		if err != nil {
			cleanup()
			return fail(kernel.CodeTransport, err)
		}
		links[j] = &peerLink{conn: conn}
	}
	g, err := mpisim.NewGang(a.Rank, a.Size, links)
	if err != nil {
		cleanup()
		return fail(kernel.CodeWorkerFault, err)
	}
	if err := sh.SetGang(g); err != nil {
		cleanup()
		return fail(kernel.CodeWorkerFault, err)
	}
	p.mu.Lock()
	p.gang = g
	p.mu.Unlock()
	return &response{ID: req.ID, DoneAt: arrival}
}

// isTransferMethod reports whether a request is a proxy-level transfer op.
func isTransferMethod(method string) bool {
	return method == kernel.MethodOfferState || method == kernel.MethodAcceptState ||
		method == kernel.MethodOfferCheckpoint
}

// handleTransfer executes one offer_state/accept_state against the model
// service behind loop. It returns the response to write back to the
// daemon and never forwards the op to the worker's dispatch table.
func (p *peerPlane) handleTransfer(req *request, arrival time.Duration, loop *vnet.Conn) *response {
	fail := func(code kernel.Code, err error) *response {
		return &response{ID: req.ID, Code: code, Err: err.Error(), DoneAt: arrival}
	}
	switch req.Method {
	case kernel.MethodOfferState:
		// Decode into the tuned superset: gob matches fields by name, so a
		// legacy OfferStateArgs payload fills the first three fields and
		// leaves the knobs zero.
		var a kernel.OfferStateTuned
		if err := decode(req.Args, &a); err != nil {
			return fail(kernel.CodeWorkerFault, err)
		}
		return p.offer(req.ID, &a, arrival, loop)
	case kernel.MethodAcceptState:
		var a kernel.AcceptStateArgs
		if err := decode(req.Args, &a); err != nil {
			return fail(kernel.CodeWorkerFault, err)
		}
		return p.accept(req.ID, &a, arrival, loop)
	case kernel.MethodOfferCheckpoint:
		var a kernel.OfferCheckpointTuned
		if err := decode(req.Args, &a); err != nil {
			return fail(kernel.CodeWorkerFault, err)
		}
		return p.offerCheckpoint(req.ID, &a, arrival, loop)
	default:
		return fail(kernel.CodeTransport, fmt.Errorf("core: not a transfer op: %q", req.Method))
	}
}

// loopCall runs one synthesized RPC against the model service over the
// proxy's loopback connection. The relay loop is single-threaded, so the
// loopback never has more than one call in flight.
func loopCall(loop *vnet.Conn, id uint64, method string, args []byte, at time.Duration) (*response, error) {
	buf := kernel.GetBuf()
	frame := kernel.AppendRequest(*buf, &request{ID: id, Method: method, Args: args, SentAt: at})
	_, err := loop.Send(frame, at)
	*buf = frame[:0]
	kernel.PutBuf(buf)
	if err != nil {
		return nil, err
	}
	reply, err := loop.Recv()
	if err != nil {
		return nil, err
	}
	resp := new(response)
	if err := kernel.UnmarshalResponse(reply.Data, resp); err != nil {
		return nil, err
	}
	resp.DoneAt = maxDuration(resp.DoneAt, reply.Arrival)
	return resp, nil
}

// offer reads the requested columns from the service and streams them to
// the peer, waiting for the receipt ack. Any failure on the peer path is
// a transport fault — the coupler uses the classification to fall back to
// its hairpin.
func (p *peerPlane) offer(reqID uint64, a *kernel.OfferStateTuned, arrival time.Duration, loop *vnet.Conn) *response {
	fail := func(code kernel.Code, err error) *response {
		return &response{ID: reqID, Code: code, Err: err.Error(), DoneAt: arrival}
	}
	stBuf := kernel.GetBuf()
	stArgs := kernel.AppendStateRequest(*stBuf, &kernel.StateRequest{Attrs: a.Attrs})
	got, err := loopCall(loop, reqID, "get_state", stArgs, arrival)
	*stBuf = stArgs[:0]
	kernel.PutBuf(stBuf)
	if err != nil {
		return fail(kernel.CodeTransport, fmt.Errorf("core: offer %d: read state: %w", a.ID, err))
	}
	if got.Code != kernel.CodeOK {
		return &response{ID: reqID, Code: got.Code, Err: got.Err, DoneAt: got.DoneAt}
	}
	payload := got.Result
	if a.Codec != kernel.CodecRaw {
		payload = kernel.CompressState(payload)
	}
	report := kernel.TransferReport{Streams: 1, WireBytes: len(payload)}
	ackAt, code, err := p.sendPayload(a.Peer, a.ID, payload, got.DoneAt, a.Stripes, &report)
	if err != nil {
		return fail(code, fmt.Errorf("core: offer %d: %w", a.ID, err))
	}
	// The report rides the response only when the offer asked for the
	// bandwidth-aware plane: a default offer's response stays byte-equal to
	// a build without it (the coupler treats no report as single-stream).
	var result []byte
	if a.Stripes > 1 || a.Codec != kernel.CodecRaw {
		result = encode(report)
	}
	return &response{ID: reqID, Result: result, DoneAt: ackAt}
}

// sendPayload delivers one encoded payload to a peer listener: striped
// across parallel bulk-class circuits when the payload is large enough and
// the offer allows it, with a fallback to the classic single stream (same
// transfer id) when the striped attempt fails for any reason — a killed
// stripe, a digest mismatch on the receiver, an unreachable circuit. The
// report records which shape actually delivered the bytes.
func (p *peerPlane) sendPayload(peer string, id uint64, payload []byte, at time.Duration, stripes int, report *kernel.TransferReport) (time.Duration, kernel.Code, error) {
	if n := stripeCount(len(payload), stripes); n > 1 {
		ackAt, err := p.streamStriped(peer, id, payload, at, n)
		if err == nil {
			report.Streams = n
			return ackAt, kernel.CodeOK, nil
		}
		report.StripeFallback, report.StripeErr = true, err.Error()
	}
	return p.streamToPeer(peer, id, payload, at)
}

// stripeCount returns the number of parallel streams for a payload: one
// stream per stripeMin bytes, clamped to the offer's limit. 0 or 1 means
// the classic single stream.
func stripeCount(size, max int) int {
	if max < 2 {
		return 1
	}
	n := size / stripeMin
	if n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// streamStriped delivers one payload over n parallel bulk-class circuits
// plus a manifest connection, and waits for the receiver's ack on the
// manifest connection (sent only after every stripe verified). All stripes
// are sent at the same virtual time, so the modeled transfer overlaps n
// streams — the win when per-stream bandwidth, not path bandwidth, is the
// bottleneck. Any failure closes every connection (the receiver's watcher
// drops the partial set) and the caller retries single-stream.
func (p *peerPlane) streamStriped(peer string, id uint64, payload []byte, at time.Duration, n int) (time.Duration, error) {
	addr, err := smartsockets.ParseAddress(peer)
	if err != nil {
		return 0, err
	}
	f := p.ib.Factory()
	// Consult the per-peer goodput cache before committing bulk traffic:
	// the first striped transfer to a peer pays one probe exchange (and
	// feeds the per-link health view); later ones hit the cache until the
	// sample goes stale.
	if _, doneAt, perr := f.Goodput(addr, at); perr == nil && doneAt > at {
		at = doneAt
	}
	off := kernel.SplitStripes(len(payload), n)
	m := &kernel.StripeManifest{ID: id, Total: uint32(len(payload))}
	for i := 0; i < n; i++ {
		part := payload[off[i]:off[i+1]]
		m.Stripes = append(m.Stripes, kernel.StripeInfo{
			Offset: uint32(off[i]), Length: uint32(len(part)), Digest: kernel.Digest64(part),
		})
	}
	var conns []*smartsockets.VirtualConn
	abort := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	// The manifest goes first: the receiver's cleanup watcher lives on this
	// connection, so a partial stripe set never outlives an aborted sender.
	mconn, err := f.ConnectClass(addr, at, "bulk")
	if err != nil {
		return 0, fmt.Errorf("peer %s unreachable: %w", peer, err)
	}
	conns = append(conns, mconn)
	mconn.SetClass("peer")
	if err := mconn.Send(kernel.AppendManifest(nil, m), maxDuration(at, mconn.EstablishedAt())); err != nil {
		abort()
		return 0, fmt.Errorf("manifest to %s: %w", peer, err)
	}
	for i := 0; i < n; i++ {
		conn, err := f.ConnectClass(addr, at, "bulk")
		if err != nil {
			abort()
			return 0, fmt.Errorf("stripe %d to %s: %w", i, peer, err)
		}
		conns = append(conns, conn)
		conn.SetClass("peer")
		if testStripeFault != nil && testStripeFault(i) {
			conn.Close() // injected fault: this stripe dies under the transfer
		}
		part := payload[off[i]:off[i+1]]
		if testStripeCorrupt != nil {
			part = testStripeCorrupt(i, part)
		}
		if err := conn.Send(kernel.AppendStripe(nil, id, i, part), maxDuration(at, conn.EstablishedAt())); err != nil {
			abort()
			return 0, fmt.Errorf("stripe %d to %s: %w", i, peer, err)
		}
	}
	ack, err := mconn.Recv()
	if err != nil {
		abort()
		return 0, fmt.Errorf("no striped ack from %s: %w", peer, err)
	}
	abort()
	if ackID, err := kernel.UnmarshalTransferAck(ack.Data); err != nil || ackID != id {
		return 0, fmt.Errorf("bad striped ack (id %d, err %v)", ackID, err)
	}
	return ack.Arrival, nil
}

// streamToPeer dials a peer listener and delivers one transfer-framed
// payload, waiting for the receipt ack. It returns the ack's virtual
// arrival time, or the failure's wire code.
func (p *peerPlane) streamToPeer(peer string, id uint64, payload []byte, at time.Duration) (time.Duration, kernel.Code, error) {
	addr, err := smartsockets.ParseAddress(peer)
	if err != nil {
		return 0, kernel.CodeWorkerFault, err
	}
	conn, err := p.ib.DialPeer(addr, at)
	if err != nil {
		return 0, kernel.CodeTransport, fmt.Errorf("peer %s unreachable: %w", peer, err)
	}
	defer conn.Close()
	conn.SetClass("peer")
	if testPeerStreamFault != nil && testPeerStreamFault() {
		conn.Close() // injected fault: the stream dies under the transfer
	}
	frame := kernel.AppendTransfer(nil, id, payload)
	if err := conn.Send(frame, maxDuration(at, conn.EstablishedAt())); err != nil {
		return 0, kernel.CodeTransport, fmt.Errorf("stream to %s: %w", peer, err)
	}
	ack, err := conn.Recv()
	if err != nil {
		return 0, kernel.CodeTransport, fmt.Errorf("no ack from %s: %w", peer, err)
	}
	if ackID, err := kernel.UnmarshalTransferAck(ack.Data); err != nil || ackID != id {
		return 0, kernel.CodeTransport, fmt.Errorf("bad ack (id %d, err %v)", ackID, err)
	}
	return ack.Arrival, kernel.CodeOK, nil
}

// offerCheckpoint snapshots the model service (a loopback "checkpoint"
// call, which by FIFO order runs after everything already queued) and
// streams the frame to the checkpoint store's peer listener. Any failure
// on the peer path is a transport fault — the coupler falls back to
// pulling the snapshot over the RPC plane.
func (p *peerPlane) offerCheckpoint(reqID uint64, a *kernel.OfferCheckpointTuned, arrival time.Duration, loop *vnet.Conn) *response {
	fail := func(code kernel.Code, err error) *response {
		return &response{ID: reqID, Code: code, Err: err.Error(), DoneAt: arrival}
	}
	got, err := loopCall(loop, reqID, kernel.MethodCheckpoint, nil, arrival)
	if err != nil {
		return fail(kernel.CodeTransport, fmt.Errorf("core: checkpoint %d: snapshot: %w", a.ID, err))
	}
	if got.Code != kernel.CodeOK {
		return &response{ID: reqID, Code: got.Code, Err: got.Err, DoneAt: got.DoneAt}
	}
	raw := got.Result
	payload := raw
	switch a.Codec {
	case kernel.CodecRefDelta:
		// Ref-delta pays off only against the exact bytes the store still
		// holds under a.Base; anything else (first checkpoint, a hairpinned
		// predecessor, a replaced worker) degrades to the in-frame delta.
		p.ckptMu.Lock()
		base, ref := p.ckptBase, p.ckptRef
		p.ckptMu.Unlock()
		if a.Base != 0 && ref == a.Base {
			payload = kernel.CompressStateRef(raw, base, a.Base)
		} else {
			payload = kernel.CompressState(raw)
		}
	case kernel.CodecDeltaFlate:
		payload = kernel.CompressState(raw)
	}
	report := kernel.TransferReport{Streams: 1, WireBytes: len(payload)}
	ackAt, code, err := p.sendPayload(a.Peer, a.ID, payload, got.DoneAt, a.Stripes, &report)
	if err != nil {
		return fail(code, fmt.Errorf("core: checkpoint %d: %w", a.ID, err))
	}
	if a.Codec == kernel.CodecRefDelta {
		// The store now holds this snapshot raw under a.ID: it is the next
		// checkpoint's ref-delta base.
		p.ckptMu.Lock()
		p.ckptBase = append([]byte(nil), raw...)
		p.ckptRef = a.ID
		p.ckptMu.Unlock()
	}
	// As for offer_state: the report is attached only when the offer asked
	// for striping or compression, keeping default streams byte-equal.
	var result []byte
	if a.Stripes > 1 || a.Codec != kernel.CodecRaw {
		result = encode(report)
	}
	return &response{ID: reqID, Result: result, DoneAt: ackAt}
}

// accept waits for the announced stream and applies it to the service
// with the requested method.
func (p *peerPlane) accept(reqID uint64, a *kernel.AcceptStateArgs, arrival time.Duration, loop *vnet.Conn) *response {
	fail := func(err error) *response {
		code := kernel.CodeTransport
		if !errors.Is(err, kernel.ErrTransport) {
			code = kernel.ClassifyErr(err)
		}
		return &response{ID: reqID, Code: code, Err: err.Error(), DoneAt: arrival}
	}
	d, err := p.mailbox.wait(a.ID, PeerAcceptTimeout)
	if err != nil {
		return fail(err)
	}
	if d.err != nil {
		return fail(d.err)
	}
	apply := a.Apply
	if apply == "" {
		apply = kernel.MethodApplyState
	}
	args := d.state
	if a.Slot != 0 {
		args = kernel.AppendStaged(nil, a.Slot, d.state)
	}
	resp, err := loopCall(loop, reqID, apply, args, maxDuration(arrival, d.arrival))
	if err != nil {
		return fail(fmt.Errorf("%w: accept %d: apply: %v", kernel.ErrTransport, a.ID, err))
	}
	resp.ID = reqID
	return resp
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
