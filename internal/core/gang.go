package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/core/kernel"
)

// Coupler-side gang support. A kernel started with WorkerSpec.Workers = K
// runs as K rank workers — each its own job, proxy and pool member —
// behind ONE model handle: the coupler API, the bridge and the virtual-
// time accounting are unchanged. The gangChannel below is what hides the
// fan-out: writes and evolves broadcast to every rank (the ranks hold
// replicated state and decompose the compute among themselves, exchanging
// halos over their own peer links), reads are answered by rank 0, and the
// merged completion carries the latest rank's clock so the coupler pays
// for the slowest rank, exactly as it would for one big worker.

// gangIDs allocates gang identifiers (shared with transfer ids: both are
// just process-unique tokens on the peer plane).
func newGangID() uint64 { return transferIDs.Add(1) }

// gangFanout reports whether a method must reach every rank. State reads
// and proxy-level transfer ops are served by rank 0 alone: ranks hold
// bitwise-identical replicated state, so one answer is the answer — and
// one rank's checkpoint snapshot is the whole gang's. Restore broadcasts
// (every rank must load the snapshot), checkpoint reads from rank 0.
func gangFanout(method string) bool {
	switch method {
	case "get_state", "get_positions", "get_velocities", "get_masses", "stats",
		kernel.MethodOfferState, kernel.MethodAcceptState,
		kernel.MethodCheckpoint, kernel.MethodOfferCheckpoint:
		return false
	}
	return true
}

// gangChannel multiplexes one logical worker channel over the K rank
// workers of a gang. Each rank has its own conn channel to the daemon, so
// per-rank FIFO order is preserved; a broadcast issues on every member
// before returning, keeping the pipelining property of the async API.
type gangChannel struct {
	members []channel // one per rank, rank order
	obs     *chanObs  // merged-completion observer (model label = kind)

	// mu guards workers: rank recovery swaps a dead rank's worker id for
	// its replacement's while pipelined callers keep issuing.
	mu      sync.Mutex
	workers []int // daemon worker ids, rank order

	// issueMu makes the member-by-member issue loop of a broadcast atomic
	// with respect to other issuers. The proxy's call path is one
	// goroutine, but the elastic-gang rebalancer issues reshard
	// broadcasts and per-rank rank_load queries concurrently with it;
	// without this lock two broadcasts could interleave across member
	// FIFOs and reach different ranks in different orders.
	issueMu sync.Mutex
}

func newGangChannel(members []channel, workers []int, obs *chanObs) *gangChannel {
	return &gangChannel{members: members, workers: workers, obs: obs}
}

func (g *gangChannel) name() string { return ChannelIbis }

// rankWorkers snapshots the current rank -> worker id mapping.
func (g *gangChannel) rankWorkers() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.workers...)
}

// setWorkers installs a recovered gang's worker ids (rank order). The
// member channels are daemon connections, not worker connections, so they
// survive rank replacement unchanged — requests route by worker id.
func (g *gangChannel) setWorkers(ids []int) {
	g.mu.Lock()
	g.workers = append(g.workers[:0], ids...)
	g.mu.Unlock()
}

// start implements channel. Reads route to rank 0; everything else
// broadcasts and completes once every rank has answered, with the merged
// outcome: rank 0's result, the latest DoneAt/arrival, and the most
// actionable failure (a dead rank beats a surviving rank's aborted-
// collective fault, so the coupler sees ErrWorkerDied when a rank died).
func (g *gangChannel) start(req request, done completion) {
	done = g.obs.observe(req.Method, req.SentAt, done)
	g.issueMu.Lock()
	defer g.issueMu.Unlock()
	workers := g.rankWorkers()
	if !gangFanout(req.Method) {
		req.Worker = workers[0]
		g.members[0].start(req, done)
		return
	}
	n := len(g.members)
	var mu sync.Mutex
	outcomes := make([]gangOutcome, n)
	remaining := n
	for i := range g.members {
		r := req
		r.Worker = workers[i]
		if i > 0 {
			r.ID = reqIDs.Add(1)
		}
		rank := i
		g.members[i].start(r, func(resp response, arrival time.Duration, err error) {
			mu.Lock()
			outcomes[rank] = gangOutcome{resp: resp, arrival: arrival, err: err}
			remaining--
			last := remaining == 0
			mu.Unlock()
			if !last {
				return
			}
			done(mergeGangOutcomes(req.ID, outcomes))
		})
	}
}

// size returns the gang's rank count.
func (g *gangChannel) size() int { return len(g.members) }

// startRank issues a request on one rank's member FIFO (the worker id is
// filled in from the current rank mapping). The rebalancer uses it for
// rank_load queries, which must reach each rank individually — a
// broadcast would answer with rank 0's numbers K times over.
func (g *gangChannel) startRank(rank int, req request, done completion) {
	g.issueMu.Lock()
	defer g.issueMu.Unlock()
	req.Worker = g.rankWorkers()[rank]
	g.members[rank].start(req, done)
}

// gangOutcome is one rank's completion of a broadcast call.
type gangOutcome struct {
	resp    response
	arrival time.Duration
	err     error
}

// mergeGangOutcomes folds the per-rank outcomes into the single completion
// the proxy sees.
func mergeGangOutcomes(reqID uint64, outcomes []gangOutcome) (response, time.Duration, error) {
	var maxArrival, maxDone time.Duration
	for _, o := range outcomes {
		if o.arrival > maxArrival {
			maxArrival = o.arrival
		}
		if o.resp.DoneAt > maxDone {
			maxDone = o.resp.DoneAt
		}
	}
	// A dead rank is the root cause: surviving ranks fail their collective
	// with a worker fault when a peer disappears, so report the death.
	for _, o := range outcomes {
		if o.err != nil && errors.Is(o.err, ErrWorkerDied) {
			return response{}, maxArrival, o.err
		}
	}
	for _, o := range outcomes {
		if o.err == nil && o.resp.Code == kernel.CodeWorkerDied {
			resp := o.resp
			resp.ID = reqID
			return resp, maxArrival, nil
		}
	}
	for _, o := range outcomes {
		if o.err != nil {
			return response{}, maxArrival, o.err
		}
	}
	for _, o := range outcomes {
		if o.resp.Code != kernel.CodeOK {
			resp := o.resp
			resp.ID = reqID
			return resp, maxArrival, nil
		}
	}
	resp := outcomes[0].resp
	resp.ID = reqID
	resp.DoneAt = maxDone
	return resp, maxArrival, nil
}

// close implements channel: all rank channels close.
func (g *gangChannel) close() error {
	var errs []error
	for _, ch := range g.members {
		if err := ch.close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// wireGang sends gang_init to every rank so the ranks dial each other's
// peer listeners and assemble their communicators, and waits for all of
// them to finish. Called once, right after the rank workers announced and
// before the model's setup call.
func (g *gangChannel) wireGang(ctx context.Context, s *Simulation) error {
	k := len(g.members)
	workers := g.rankWorkers()
	peers := make([]string, k)
	for rank, id := range workers {
		addr, ok := s.daemon.WorkerPeerAddr(id)
		if !ok {
			return fmt.Errorf("core: gang rank %d (worker %d) has no peer address", rank, id)
		}
		peers[rank] = addr.String()
	}
	gangID := newGangID()
	errs := make([]error, k)
	var wg sync.WaitGroup
	g.issueMu.Lock()
	for rank := range g.members {
		args := encode(kernel.GangInitArgs{ID: gangID, Rank: rank, Size: k, Peers: peers})
		req := request{
			ID: reqIDs.Add(1), Worker: workers[rank],
			Method: kernel.MethodGangInit, Args: args, SentAt: s.clock.Now(),
		}
		wg.Add(1)
		rank := rank
		g.members[rank].start(req, func(resp response, arrival time.Duration, err error) {
			defer wg.Done()
			if err == nil {
				s.clock.AdvanceTo(arrival)
				err = kernel.ResponseError(&resp)
			}
			if err != nil {
				errs[rank] = fmt.Errorf("core: gang_init rank %d: %w", rank, err)
			}
		})
	}
	g.issueMu.Unlock()
	wired := make(chan struct{})
	go func() {
		wg.Wait()
		close(wired)
	}()
	select {
	case <-wired:
		return errors.Join(errs...)
	case <-ctx.Done():
		return fmt.Errorf("core: gang wiring: %w", ctx.Err())
	}
}

// replaceGangRanks is gang rank recovery (dispatched from replace(), on
// the proxy's single drainer goroutine): restart every dead rank's job on
// the gang's resource, re-wire all ranks' peer links under a fresh gang
// id, then rebuild bitwise-identical state everywhere by replaying setup
// and restoring the last checkpoint on every rank — surviving ranks'
// state is suspect after the aborted collective, and a restored rank must
// match its neighbors exactly, so the whole gang resumes from the
// snapshot. The queued calls that observed the death replay afterwards
// (drainRetries), so the coupler sees a hiccup, not a failure.
func (m *modelProxy) replaceGangRanks() error {
	m.mu.Lock()
	spec := m.spec
	ids := append([]int(nil), m.gangWorkers...)
	snap := m.lastSnap
	snapSeq := m.snapSeq
	state := m.lastState
	stateSeq := m.stateSeq
	setup := m.encodedSetupLocked()
	ch := m.ch
	m.mu.Unlock()
	if snap == nil {
		// isReplaceable vetoes this path without a snapshot, but a stale
		// queue entry could still get here; fail with the old semantics.
		return fmt.Errorf("core: gang rank died with no checkpoint to restore from: %w", ErrWorkerDied)
	}
	gch, ok := ch.(*gangChannel)
	if !ok {
		return fmt.Errorf("core: gang proxy without a gang channel: %w", ErrChannelClosed)
	}
	s := m.sim

	// Restart dead ranks. The gang stays on its resource — co-location is
	// a gang invariant (halo traffic rides intra-site links); if the whole
	// site is gone the rank restart fails and the error is sticky.
	replaced := 0
	for r, id := range ids {
		if s.daemon.WorkerAlive(id) {
			continue
		}
		newID, err := s.daemon.startWorker(s.ctx, spec, r, len(ids))
		if err != nil {
			return fmt.Errorf("core: gang rank %d replacement: %w", r, err)
		}
		s.trace("gang rank %d (worker %d) died; replacement worker %d started", r, id, newID)
		ids[r] = newID
		replaced++
	}
	gch.setWorkers(ids)
	m.mu.Lock()
	m.gangWorkers = append(m.gangWorkers[:0], ids...)
	m.worker = ids[0]
	m.mu.Unlock()

	// Re-wire the rank links: a fresh gang id keys the new hello
	// handshakes, every rank (survivors included) rebuilds its
	// communicator, and SetGang installs it over the closed one.
	if err := gch.wireGang(s.ctx, s); err != nil {
		return fmt.Errorf("core: gang re-wiring: %w", err)
	}
	// Rebuild state: setup then restore broadcast to all ranks, then —
	// exactly like the solo replace() path — overlay the particle cache
	// if a push landed after the checkpoint (the broadcast keeps all K
	// replicas consistent).
	if err := m.replay("setup", setup); err != nil {
		return fmt.Errorf("core: gang setup replay: %w", err)
	}
	if err := m.replayRestore(snap); err != nil {
		return fmt.Errorf("core: gang restore: %w", err)
	}
	if state != nil && stateSeq > snapSeq {
		if err := m.replay("set_particles", encode(*state)); err != nil {
			return fmt.Errorf("core: gang state overlay: %w", err)
		}
	}
	if err := m.finishReplacement(); err != nil {
		return err
	}
	s.trace("gang recovered: %d rank(s) replaced, %d ranks restored from checkpoint", replaced, len(ids))
	return nil
}
