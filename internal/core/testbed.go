package core

import (
	"fmt"
	"time"

	"jungle/internal/deploy"
	"jungle/internal/trace"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// Testbed is the shared experimental setup: the paper's machines, networks
// and resource descriptions, plus a running daemon. All experiments (E1–E8)
// build on one of its two variants.
type Testbed struct {
	Net        *vnet.Network
	Recorder   *trace.Recorder
	Deployment *deploy.Deployment
	Daemon     *Daemon

	// Resource names registered with the deployment.
	Client string // "desktop" (lab) or "laptop" (SC11) or "home" (DSL)
	VU     string // DAS-4 VU: 8-node cluster (Gadget)
	UvA    string // DAS-4 UvA: 1 node (SSE)
	TUD    string // DAS-4 TUD: 2 GPU nodes (Octgrav)
	LGM    string // Little Green Machine: Tesla C2050 (PhiGRAPE)

	// DSL testbed sites (NewDSLTestbed only).
	SiteA, SiteB string

	// Elastic testbed resources (NewElasticTestbed only): the skewed
	// cluster and the uniform migration target.
	Mixed, Spare string
}

// Device models: honest relative peaks for the paper's hardware.
func desktopCPU() *vtime.Device {
	return &vtime.Device{Name: "core2-quad", Kind: vtime.CPU, Gflops: 8, Cores: 4}
}
func laptopCPU() *vtime.Device {
	return &vtime.Device{Name: "laptop", Kind: vtime.CPU, Gflops: 6, Cores: 2}
}
func geforce9600GT() *vtime.Device {
	return &vtime.Device{Name: "9600gt", Kind: vtime.GPU, Gflops: 300, Cores: 1,
		LaunchLatency: 60 * time.Microsecond}
}
func teslaC2050() *vtime.Device {
	return &vtime.Device{Name: "c2050", Kind: vtime.GPU, Gflops: 1000, Cores: 1,
		LaunchLatency: 30 * time.Microsecond}
}
func gtx480() *vtime.Device {
	return &vtime.Device{Name: "gtx480", Kind: vtime.GPU, Gflops: 1300, Cores: 1,
		LaunchLatency: 30 * time.Microsecond}
}
func das4Node() *vtime.Device {
	return &vtime.Device{Name: "das4-xeon", Kind: vtime.CPU, Gflops: 10, Cores: 8}
}

// Link classes (bandwidth in bytes/s).
const (
	gbE        = 1.25e8 // 1 GbE / 1G lightpath
	tenG       = 1.25e9 // 10G STARplane lightpaths
	lanLat     = 100 * time.Microsecond
	metroLat   = 1 * time.Millisecond  // between Dutch sites
	transatLat = 40 * time.Millisecond // Seattle <-> Amsterdam one way
)

// buildDutchSites creates the Fig. 9/12 resources shared by both testbeds:
// the three DAS-4 clusters and the LGM, wired by lightpaths. It returns the
// frontends' names for linking the client in.
func buildDutchSites(n *vnet.Network) (vu, uva, tud *vnet.Cluster, err error) {
	vu, err = n.AddCluster(vnet.ClusterSpec{
		Name: "das4-vu", Site: "vu", Nodes: 8,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return
	}
	uva, err = n.AddCluster(vnet.ClusterSpec{
		Name: "das4-uva", Site: "uva", Nodes: 1,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return
	}
	tud, err = n.AddCluster(vnet.ClusterSpec{
		Name: "das4-tud", Site: "tud", Nodes: 2,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return
	}
	if _, err = n.AddHost("lgm", "leiden", vnet.SSHOnly); err != nil {
		return
	}
	// 10G STARplane between DAS-4 sites; 1G lightpath to the LGM (Fig. 12).
	links := []struct {
		a, b string
		lat  time.Duration
		bw   float64
	}{
		{vu.Frontend, uva.Frontend, metroLat, tenG},
		{vu.Frontend, tud.Frontend, metroLat, tenG},
		{uva.Frontend, tud.Frontend, metroLat, tenG},
		{vu.Frontend, "lgm", metroLat, gbE},
	}
	for _, l := range links {
		if err = n.AddLink(l.a, l.b, l.lat, l.bw); err != nil {
			return
		}
	}
	return vu, uva, tud, nil
}

// registerDutchResources adds the four Dutch resources to the deployment.
func (tb *Testbed) registerDutchResources(vu, uva, tud *vnet.Cluster) error {
	resources := []deploy.Resource{
		{Name: "das4-vu", Middleware: "sge", Frontend: vu.Frontend, Nodes: vu.NodeName, CPU: das4Node()},
		{Name: "das4-uva", Middleware: "sge", Frontend: uva.Frontend, Nodes: uva.NodeName, CPU: das4Node()},
		{Name: "das4-tud", Middleware: "sge", Frontend: tud.Frontend, Nodes: tud.NodeName, CPU: das4Node(), GPU: gtx480()},
		{Name: "lgm", Middleware: "ssh", Frontend: "lgm", CPU: das4Node(), GPU: teslaC2050()},
	}
	for _, r := range resources {
		if err := tb.Deployment.AddResource(r); err != nil {
			return err
		}
	}
	tb.VU, tb.UvA, tb.TUD, tb.LGM = "das4-vu", "das4-uva", "das4-tud", "lgm"
	return nil
}

// NewLabTestbed builds the Fig. 12 setup: a quad-core desktop with a
// GeForce 9600GT at the VU on 1 GbE, the DAS-4 sites and the LGM.
func NewLabTestbed() (*Testbed, error) {
	n := vnet.New()
	rec := trace.New()
	n.SetRecorder(rec)
	if _, err := n.AddHost("desktop", "vu", vnet.Open); err != nil {
		return nil, err
	}
	vu, uva, tud, err := buildDutchSites(n)
	if err != nil {
		return nil, err
	}
	if err := n.AddLink("desktop", vu.Frontend, lanLat, gbE); err != nil {
		return nil, err
	}

	dep, err := deploy.New(n, "desktop")
	if err != nil {
		return nil, err
	}
	dep.SetMonitor(rec)
	tb := &Testbed{Net: n, Recorder: rec, Deployment: dep, Client: "desktop"}
	if err := dep.AddResource(deploy.Resource{
		Name: "desktop", Middleware: "local", Frontend: "desktop",
		CPU: desktopCPU(), GPU: geforce9600GT(),
	}); err != nil {
		return nil, err
	}
	if err := tb.registerDutchResources(vu, uva, tud); err != nil {
		return nil, err
	}
	d, err := NewDaemon(dep, "amuse")
	if err != nil {
		return nil, err
	}
	tb.Daemon = d
	return tb, nil
}

// NewSC11Testbed builds the Fig. 9 setup: the laptop at the SC11 booth in
// Seattle behind the conference NAT, a transatlantic 1G lightpath to
// Amsterdam, and the Dutch resources. The render/visualization clusters of
// the demo are added as hosts for topology fidelity but host no workers.
func NewSC11Testbed() (*Testbed, error) {
	n := vnet.New()
	rec := trace.New()
	n.SetRecorder(rec)
	// The laptop sits behind the exhibition-floor NAT: outbound only —
	// exactly the situation SmartSockets' reverse/routed setup exists for.
	if _, err := n.AddHost("laptop", "seattle", vnet.OutboundOnly); err != nil {
		return nil, err
	}
	vu, uva, tud, err := buildDutchSites(n)
	if err != nil {
		return nil, err
	}
	// Transatlantic 1G lightpath lands at the VU.
	if err := n.AddLink("laptop", vu.Frontend, transatLat, gbE); err != nil {
		return nil, err
	}
	// SARA render cluster + tiled display head node (Fig. 9, right).
	if _, err := n.AddHost("rvs-sara", "amsterdam", vnet.SSHOnly); err != nil {
		return nil, err
	}
	if err := n.AddLink("rvs-sara", vu.Frontend, metroLat, tenG); err != nil {
		return nil, err
	}

	dep, err := deploy.New(n, "laptop")
	if err != nil {
		return nil, err
	}
	dep.SetMonitor(rec)
	tb := &Testbed{Net: n, Recorder: rec, Deployment: dep, Client: "laptop"}
	if err := dep.AddResource(deploy.Resource{
		Name: "laptop", Middleware: "local", Frontend: "laptop", CPU: laptopCPU(),
	}); err != nil {
		return nil, err
	}
	if err := tb.registerDutchResources(vu, uva, tud); err != nil {
		return nil, err
	}
	d, err := NewDaemon(dep, "amuse")
	if err != nil {
		return nil, err
	}
	tb.Daemon = d
	return tb, nil
}

// NewDSLTestbed builds the home-user topology the direct data plane
// targets: the coupler on a home machine whose DSL-class uplink is the
// slowest link by orders of magnitude, and two well-connected remote
// sites joined by a fast research network. Any state hairpinned through
// the coupler pays the DSL serialization twice per channel; the direct
// worker-to-worker path pays the fast inter-site link once.
func NewDSLTestbed() (*Testbed, error) {
	const dsl = 1.25e6 // ~10 Mbit/s uplink
	n := vnet.New()
	rec := trace.New()
	n.SetRecorder(rec)
	if _, err := n.AddHost("home", "home", vnet.Open); err != nil {
		return nil, err
	}
	for _, site := range []string{"site-a", "site-b"} {
		if _, err := n.AddHost(site, site, vnet.Open); err != nil {
			return nil, err
		}
		if err := n.AddLink("home", site, 20*time.Millisecond, dsl); err != nil {
			return nil, err
		}
	}
	if err := n.AddLink("site-a", "site-b", 2*time.Millisecond, tenG); err != nil {
		return nil, err
	}

	dep, err := deploy.New(n, "home")
	if err != nil {
		return nil, err
	}
	dep.SetMonitor(rec)
	tb := &Testbed{Net: n, Recorder: rec, Deployment: dep, Client: "home",
		SiteA: "site-a", SiteB: "site-b"}
	resources := []deploy.Resource{
		{Name: "home", Middleware: "local", Frontend: "home", CPU: laptopCPU()},
		{Name: "site-a", Middleware: "ssh", Frontend: "site-a", CPU: das4Node(), GPU: teslaC2050()},
		{Name: "site-b", Middleware: "ssh", Frontend: "site-b", CPU: das4Node(), GPU: gtx480()},
	}
	for _, r := range resources {
		if err := dep.AddResource(r); err != nil {
			return nil, err
		}
	}
	d, err := NewDaemon(dep, "amuse")
	if err != nil {
		return nil, err
	}
	tb.Daemon = d
	return tb, nil
}

// NewElasticTestbed builds the elastic-gang topology: a desktop client
// and two 4-node SGE clusters. "site-mixed" is heterogeneous — its last
// node runs at a quarter of the others' speed (a straggler batch node,
// the kind a uniform slab decomposition cannot see until it measures) —
// while "site-spare" is uniform and idle, the natural migration target.
func NewElasticTestbed() (*Testbed, error) {
	n := vnet.New()
	rec := trace.New()
	n.SetRecorder(rec)
	if _, err := n.AddHost("desktop", "home", vnet.Open); err != nil {
		return nil, err
	}
	mixed, err := n.AddCluster(vnet.ClusterSpec{
		Name: "site-mixed", Site: "mixed", Nodes: 4,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return nil, err
	}
	spare, err := n.AddCluster(vnet.ClusterSpec{
		Name: "site-spare", Site: "spare", Nodes: 4,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return nil, err
	}
	links := []struct {
		a, b string
	}{
		{"desktop", mixed.Frontend},
		{"desktop", spare.Frontend},
		{mixed.Frontend, spare.Frontend},
	}
	for _, l := range links {
		if err := n.AddLink(l.a, l.b, metroLat, tenG); err != nil {
			return nil, err
		}
	}

	dep, err := deploy.New(n, "desktop")
	if err != nil {
		return nil, err
	}
	dep.SetMonitor(rec)
	tb := &Testbed{Net: n, Recorder: rec, Deployment: dep, Client: "desktop",
		Mixed: "site-mixed", Spare: "site-spare"}
	resources := []deploy.Resource{
		{Name: "desktop", Middleware: "local", Frontend: "desktop", CPU: desktopCPU()},
		{Name: "site-mixed", Middleware: "sge", Frontend: mixed.Frontend, Nodes: mixed.NodeName, CPU: das4Node()},
		{Name: "site-spare", Middleware: "sge", Frontend: spare.Frontend, Nodes: spare.NodeName, CPU: das4Node()},
	}
	for _, r := range resources {
		if err := dep.AddResource(r); err != nil {
			return nil, err
		}
	}
	// The straggler: one mixed node at quarter speed. Whichever rank the
	// scheduler lands there computes its slab 4x slower than its peers.
	if err := dep.SetNodeSpeed("site-mixed", mixed.NodeName[3], 0.25); err != nil {
		return nil, err
	}
	d, err := NewDaemon(dep, "amuse")
	if err != nil {
		return nil, err
	}
	tb.Daemon = d
	return tb, nil
}

// AddSupercomputer registers the §7 scale-up resource: a 64-node
// PBS-managed machine at SARA ("using the infrastructure that we recently
// acquired access to ... including a supercomputer"). Returns the resource
// name. PBS is the one middleware the standard testbeds do not otherwise
// exercise.
func (tb *Testbed) AddSupercomputer() (string, error) {
	sc, err := tb.Net.AddCluster(vnet.ClusterSpec{
		Name: "huygens", Site: "sara", Nodes: 64,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
		InternalLatency: lanLat, InternalBandwidth: tenG,
	})
	if err != nil {
		return "", err
	}
	// The supercomputer hangs off the VU frontend's lightpath hub.
	vuFE := "das4-vu.fe"
	if err := tb.Net.AddLink(sc.Frontend, vuFE, metroLat, tenG); err != nil {
		return "", err
	}
	if err := tb.Deployment.AddResource(deploy.Resource{
		Name: "huygens", Middleware: "pbs", Frontend: sc.Frontend, Nodes: sc.NodeName,
		CPU: &vtime.Device{Name: "power6", Kind: vtime.CPU, Gflops: 12, Cores: 16},
	}); err != nil {
		return "", err
	}
	return "huygens", nil
}

// Close shuts the daemon and deployment down.
func (tb *Testbed) Close() {
	if tb.Daemon != nil {
		tb.Daemon.Close()
	}
	tb.Deployment.Stop()
}

// String summarizes the testbed.
func (tb *Testbed) String() string {
	return fmt.Sprintf("testbed client=%s resources=%v", tb.Client, tb.Deployment.Resources())
}
