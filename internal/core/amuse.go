package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/units"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/bridge"
	"jungle/internal/trace"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// Simulation is the coupler: the Go equivalent of an AMUSE Python script's
// session. It owns the virtual clock, a unit converter for checked
// conversions at the API boundary, and the workers it started. Models
// created here implement the bridge interfaces (including the async
// AsyncDynamics/AsyncField ones), so phys/bridge composes them exactly
// like Fig. 7 — whether the model is in-process or a continent away behind
// the ibis channel — and pipelines its per-phase calls across all of them.
type Simulation struct {
	daemon *Daemon
	conv   *units.Converter
	clock  *vtime.Clock
	ctx    context.Context

	// Trace, when set, receives coupler-level events (worker starts,
	// replacements); the bridge's own trace covers Fig. 7's call sequence.
	Trace func(event string)

	// OnTransferFallback, when set, receives the classified direct-path
	// error each time a state transfer falls back to the coupler hairpin
	// (errors.Is ErrTransport or ErrWorkerDied), and each time a striped
	// transfer falls back to a single stream. Set before starting
	// transfers.
	OnTransferFallback func(err error)

	// Bulk-transfer tuning, read at each transfer/checkpoint issue. The
	// zero values disable the bandwidth-aware plane entirely: no probes, no
	// striping, no compression — wire bytes and routing are then identical
	// to a build without it. Set before starting transfers.
	//
	// TransferStripes caps the parallel peer streams a large payload may be
	// split across (both TransferState and checkpoint streams; 0 or 1
	// disables striping). TransferCodec/CheckpointCodec select wire
	// compression for transfer payloads and checkpoint blobs respectively
	// (kernel.CodecDeltaFlate, or kernel.CodecRefDelta for checkpoints of
	// slowly-evolving runs).
	TransferStripes int
	TransferCodec   byte
	CheckpointCodec byte

	// Monitor is the observability plane: channel-layer call latency and
	// queue-depth histograms (trace.RenderCalls), bulk-transfer and store
	// gauges (trace.RenderHealth) and elastic-gang telemetry
	// (trace.RenderGangs). NewSimulation defaults it to the network's
	// recorder when that is a *trace.Recorder — every testbed installs
	// one, so the plane is on by default; set nil to switch it off.
	// Recording is passive (it never touches the clock or the wire), so
	// results are byte-identical either way. Independent of the
	// per-session recorder so standalone simulations are covered too.
	Monitor *trace.Recorder

	mu        sync.Mutex
	models    []*modelProxy
	transfers TransferStats

	// Session identity for multi-tenant control planes: the id namespaces
	// every worker this simulation starts (disjoint worker-id blocks, and
	// with them pool port names, peer-plane ports and checkpoint refs) and
	// labels its capacity in the deployment ledger. Empty for standalone
	// simulations — the seed single-tenant behavior.
	session string
	// sessionRec, when set with a session id, receives per-session call,
	// transfer and worker accounting (trace.RenderSessions).
	sessionRec *trace.Recorder
	// placer, when set, resolves WorkerSpecs that leave Resource open —
	// the scheduler installs its capacity-aware fair-share policy here.
	// nil means SelectResource, the single-session default.
	placer func(WorkerSpec) (string, error)
}

// NewSimulation creates a coupler session on a running daemon. ctx is the
// session context: it bounds every call made without an explicit context
// (the bridge-interface methods), and cancelling it aborts all in-flight
// waits. nil means context.Background(). The converter defines the
// simulation's physical scale (may be nil for pure N-body work).
func NewSimulation(ctx context.Context, d *Daemon, conv *units.Converter) *Simulation {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Simulation{daemon: d, conv: conv, clock: vtime.NewClock(), ctx: ctx}
	if rec, ok := d.Deployment().Net.Recorder().(*trace.Recorder); ok {
		s.Monitor = rec
	}
	return s
}

// Context returns the session context.
func (s *Simulation) Context() context.Context { return s.ctx }

// Clock returns the coupler's virtual clock.
func (s *Simulation) Clock() *vtime.Clock { return s.clock }

// Elapsed returns the coupler's virtual time — the per-iteration wall time
// the paper reports in §6.2.
func (s *Simulation) Elapsed() time.Duration { return s.clock.Now() }

// Converter returns the unit converter (may be nil).
func (s *Simulation) Converter() *units.Converter { return s.conv }

// Daemon returns the daemon this simulation talks to.
func (s *Simulation) Daemon() *Daemon { return s.daemon }

// SetSession binds the simulation to a control-plane session: id
// namespaces every worker it starts and labels its capacity in the
// deployment ledger; rec (optional) receives per-session accounting.
// Call before starting models.
func (s *Simulation) SetSession(id string, rec *trace.Recorder) {
	s.mu.Lock()
	s.session = id
	s.sessionRec = rec
	s.mu.Unlock()
}

// Session returns the control-plane session id ("" for standalone runs).
func (s *Simulation) Session() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.session
}

// SetPlacer installs the placement policy used to resolve WorkerSpecs
// that leave Resource open. nil restores SelectResource.
func (s *Simulation) SetPlacer(f func(WorkerSpec) (string, error)) {
	s.mu.Lock()
	s.placer = f
	s.mu.Unlock()
}

// place resolves an open spec to a resource name through the installed
// placement policy (SelectResource when none is installed).
func (s *Simulation) place(spec WorkerSpec) (string, error) {
	s.mu.Lock()
	p := s.placer
	s.mu.Unlock()
	if p != nil {
		return p(spec)
	}
	return SelectResource(s.daemon.Deployment(), spec)
}

// sessionAccount runs f against the recorder when the simulation belongs
// to a session with accounting enabled.
func (s *Simulation) sessionAccount(f func(rec *trace.Recorder, id string)) {
	s.mu.Lock()
	rec, id := s.sessionRec, s.session
	s.mu.Unlock()
	if rec != nil && id != "" {
		f(rec, id)
	}
}

func (s *Simulation) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(fmt.Sprintf(format, args...))
	}
}

// TimeQuantity converts a physical time into N-body time using the
// session converter — the checked conversion AMUSE performs on every
// boundary crossing.
func (s *Simulation) TimeQuantity(q units.Quantity) (float64, error) {
	if s.conv == nil {
		return 0, errors.New("core: simulation has no unit converter")
	}
	if q.Unit.Dim != (units.Dim{Time: 1}) {
		return 0, fmt.Errorf("%w: %s is not a time", units.ErrDimension, q)
	}
	return s.conv.ToNBody(q)
}

// Stop shuts down all models concurrently (workers stop in parallel, like
// every other fan-out in this API; the daemon survives for the next
// simulation, as the paper prescribes) and returns the joined shutdown
// errors.
func (s *Simulation) Stop() error {
	s.mu.Lock()
	models := append([]*modelProxy(nil), s.models...)
	s.models = nil
	s.mu.Unlock()
	for _, m := range models {
		workers := len(m.WorkerIDs())
		if workers == 0 {
			workers = 1
		}
		s.sessionAccount(func(rec *trace.Recorder, id string) {
			rec.SessionWorkerDelta(id, -workers)
		})
	}
	errs := make([]error, len(models))
	var wg sync.WaitGroup
	for i, m := range models {
		wg.Add(1)
		go func(i int, m *modelProxy) {
			defer wg.Done()
			errs[i] = m.shutdown()
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// modelProxy is the coupler-side endpoint of one worker.
type modelProxy struct {
	sim  *Simulation
	kind Kind

	mu     sync.Mutex
	spec   WorkerSpec
	ch     channel
	worker int
	// gangWorkers holds every rank's worker id when the model is a gang
	// (worker is rank 0's id then); empty for solo workers.
	gangWorkers []int
	gen         int // bumped per successful replacement

	n       int
	lastErr error
	stopped bool
	// replacement support (§5 future work, implemented here).
	replaceable bool
	setupArgs   any
	// setupRaw holds the encoded setup payload for models resumed from a
	// manifest (setupArgs is nil then); encodedSetupLocked prefers it.
	setupRaw  []byte
	lastState *kernel.ParticlesPayload
	// stateSeq/snapSeq stamp lastState and lastSnap with the proxy's call
	// sequence at capture time, so replacement replays whichever is newer.
	stateSeq uint64
	// lastSnap is the raw frame of the model's most recent checkpoint
	// snapshot (kernel.Snapshot codec). Replacement prefers it over
	// lastState — it carries the full model state including the kernel's
	// clock — and it is what makes gangs recoverable. lastBlobRef is the
	// daemon-store ref the frame is filed under, so the next checkpoint
	// can trim the superseded blob from the store.
	lastSnap    []byte
	snapSeq     uint64
	lastBlobRef uint64
	// retries + retrying implement the replacement path: failed calls
	// queue here, and at most one drainer goroutine per proxy replaces
	// the worker and re-issues them — that single drainer (plus the gen
	// check) is what guarantees one replacement per death no matter how
	// many pipelined calls observe it.
	retries  []retryItem
	retrying bool

	// seq numbers calls in issue order so replacement retries can restore
	// the per-worker FIFO that pipelined callers rely on.
	seq atomic.Uint64

	// migMu serializes endpoint rebuilds: dead-worker replacement
	// (ensureReplaced), voluntary migration (Migrate) and gang resize
	// (Resize) each tear the endpoint down and rebuild it, and exactly
	// one such operation may run at a time — a drainer restarting the
	// old ranks while a migration starts new ones would strand workers.
	// Lock order: migMu strictly before m.mu; never call into migMu
	// holders while holding m.mu.
	migMu sync.Mutex

	// rebuilding counts endpoint rebuilds in flight (replacement,
	// migration, resize). A call that races the rebuild's teardown can
	// fail on the just-closed channel instead of observing the worker's
	// death; the counter (plus the generation check in endpointChanging)
	// lets that failure take the retry path rather than sticking.
	rebuilding atomic.Int32

	// elastic holds the rebalancer state when EnableRebalance armed it
	// (rebalance.go); nil means the feature is off — the default, which
	// keeps every existing session byte-identical.
	elastic *elasticGang
}

// endpointChanging reports whether a closed-channel failure on a call
// issued against generation gen raced an endpoint rebuild: one is still
// in flight, or one already completed and bumped the generation. Either
// way the call belongs on the retry queue — the channel was closed by
// teardown, not by Stop.
func (m *modelProxy) endpointChanging(gen int) bool {
	if m.rebuilding.Load() > 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen != gen && !m.stopped
}

// retryItem is one failed call awaiting re-issue on a replacement worker.
type retryItem struct {
	c      *Call
	method string
	args   []byte
	gen    int
	seq    uint64
	cause  error
}

// newModel starts a worker per spec and opens its channel. ctx bounds the
// job submission, the worker's ready announcement and the setup call.
func (s *Simulation) newModel(ctx context.Context, kind Kind, spec WorkerSpec, setup any) (*modelProxy, error) {
	if !kernel.Registered(string(kind)) {
		return nil, fmt.Errorf("%w: %q (missing adapter import? see internal/kernels)", ErrBadKind, kind)
	}
	spec.Kind = kind
	if spec.Channel == "" {
		spec.Channel = ChannelIbis
	}
	spec.Session = s.Session()
	m := &modelProxy{sim: s, kind: kind, spec: spec, setupArgs: setup}
	if err := m.start(ctx); err != nil {
		return nil, err
	}
	if err := m.Call(ctx, "setup", setup, &kernel.Empty{}); err != nil {
		m.shutdown()
		return nil, err
	}
	s.mu.Lock()
	s.models = append(s.models, m)
	s.mu.Unlock()
	workers := len(m.WorkerIDs())
	if workers == 0 {
		workers = 1 // in-process mpi-channel model
	}
	s.sessionAccount(func(rec *trace.Recorder, id string) {
		rec.SessionWorkerDelta(id, workers)
	})
	s.trace("worker started kind=%s kernel=%s resource=%s channel=%s",
		kind, spec.Kernel, m.resource(), spec.Channel)
	return m, nil
}

// start launches the worker and opens the channel (used again on
// replacement).
func (m *modelProxy) start(ctx context.Context) error {
	if ctx == nil {
		ctx = m.sim.ctx
	}
	s := m.sim
	m.mu.Lock()
	spec := m.spec
	m.mu.Unlock()
	if spec.Workers > 1 && spec.Channel != ChannelIbis {
		return fmt.Errorf("core: gangs require the ibis channel, not %q (ranks exchange halos over their peer planes)", spec.Channel)
	}
	if spec.Resource == "" {
		// Resolve open specs here, through the session's placement policy,
		// for every channel — the daemon then starts the worker on exactly
		// the resource the policy picked.
		resource, err := s.place(spec)
		if err != nil {
			return err
		}
		spec.Resource = resource
		m.mu.Lock()
		m.spec.Resource = resource
		m.mu.Unlock()
	}
	switch spec.Channel {
	case ChannelMPI:
		// In-process worker on the local resource (AMUSE's default channel).
		res, err := s.daemon.Deployment().Resource(spec.Resource)
		if err != nil {
			return err
		}
		svc, err := newService(m.kind, res, []string{s.daemon.Deployment().LocalHost()}, s.daemon.Env(), nil)
		if err != nil {
			return err
		}
		m.setEndpoint(spec, newLocalChannel(svc, s.observer(m.kind, spec.Resource, "", 0, -1)), 0)
		return nil
	case ChannelSockets:
		id, err := s.daemon.StartWorker(ctx, spec)
		if err != nil {
			return err
		}
		host, port, err := s.daemon.workerSocketAddr(id)
		if err != nil {
			return err
		}
		conn, err := dialRetry(ctx, s, host, port, 5*time.Second)
		if err != nil {
			return err
		}
		m.setEndpoint(spec, newConnChannel(ChannelSockets, conn, s.observer(m.kind, spec.Resource, host, id, -1)), id)
		return nil
	case ChannelIbis:
		if spec.Workers > 1 {
			return m.startGang(ctx, spec)
		}
		id, err := s.daemon.StartWorker(ctx, spec)
		if err != nil {
			return err
		}
		local := s.daemon.Deployment().LocalHost()
		conn, err := s.daemon.Deployment().Net.Dial(local, local, DaemonPort)
		if err != nil {
			return err
		}
		conn.SetClass("loopback")
		obs := s.observer(m.kind, spec.Resource, s.workerHost(id, spec.Resource), id, -1)
		m.setEndpoint(spec, newConnChannel(ChannelIbis, conn, obs), id)
		return nil
	default:
		return fmt.Errorf("core: unknown channel %q", spec.Channel)
	}
}

// startGang launches the K rank workers, opens one daemon channel per
// rank, wires the ranks' peer links (gang_init), and installs the gang
// channel — all behind this single proxy, so callers see one model.
func (m *modelProxy) startGang(ctx context.Context, spec WorkerSpec) error {
	s := m.sim
	if spec.Resource == "" {
		resource, err := s.place(spec)
		if err != nil {
			return err
		}
		spec.Resource = resource
	}
	ids, err := s.daemon.StartGang(ctx, spec)
	if err != nil {
		return err
	}
	stopAll := func() {
		for _, id := range ids {
			s.daemon.StopWorker(id)
		}
	}
	local := s.daemon.Deployment().LocalHost()
	members := make([]channel, len(ids))
	for i := range ids {
		conn, err := s.daemon.Deployment().Net.Dial(local, local, DaemonPort)
		if err != nil {
			for _, ch := range members[:i] {
				ch.close()
			}
			stopAll()
			return err
		}
		conn.SetClass("loopback")
		members[i] = newConnChannel(ChannelIbis, conn,
			s.observer(m.kind, spec.Resource, s.workerHost(ids[i], spec.Resource), ids[i], i))
	}
	gch := newGangChannel(members, ids,
		s.gangObserver(m.kind, spec.Resource, s.workerHost(ids[0], spec.Resource), ids[0]))
	if err := gch.wireGang(ctx, s); err != nil {
		gch.close()
		stopAll()
		return err
	}
	m.mu.Lock()
	m.gangWorkers = append([]int(nil), ids...)
	m.mu.Unlock()
	m.setEndpoint(spec, gch, ids[0])
	s.trace("gang started kind=%s size=%d resource=%s workers=%v", m.kind, spec.Workers, spec.Resource, ids)
	return nil
}

// isGang reports whether this proxy fronts a gang of rank workers.
func (m *modelProxy) isGang() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.gangWorkers) > 0
}

// GangWorkers returns the daemon worker ids of the model's rank workers
// in rank order, or nil for a solo worker (diagnostics: which jobs make
// up this model).
func (m *modelProxy) GangWorkers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.gangWorkers...)
}

// WorkerIDs returns the daemon worker ids behind this model: the rank
// workers for a gang, the single worker otherwise (empty for in-process
// mpi-channel models, which have no daemon job). Diagnostics and fault
// injection.
func (m *modelProxy) WorkerIDs() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.gangWorkers) > 0 {
		return append([]int(nil), m.gangWorkers...)
	}
	if m.worker == 0 {
		return nil
	}
	return []int{m.worker}
}

func (m *modelProxy) setEndpoint(spec WorkerSpec, ch channel, worker int) {
	m.mu.Lock()
	m.spec = spec
	m.ch = ch
	m.worker = worker
	m.mu.Unlock()
}

// endpoint snapshots the channel, worker id and replacement generation
// for one call.
func (m *modelProxy) endpoint() (channel, int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ch, m.worker, m.gen
}

func (m *modelProxy) resource() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spec.Resource
}

// dialRetry dials a loopback worker that may still be starting.
func dialRetry(ctx context.Context, s *Simulation, host string, port int, budget time.Duration) (conn *vnet.Conn, err error) {
	net := s.daemon.Deployment().Net
	deadline := time.Now().Add(budget)
	for {
		c, derr := net.Dial(host, host, port)
		if derr == nil {
			c.SetClass("loopback")
			return c, nil
		}
		err = derr
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: sockets worker never listened: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// shutdown closes the channel and stops the worker (every rank worker
// for a gang), returning the channel's close error. It also marks the
// proxy stopped, which vetoes any replacement still in flight.
func (m *modelProxy) shutdown() error {
	m.mu.Lock()
	m.stopped = true
	ch, worker := m.ch, m.worker
	gang := append([]int(nil), m.gangWorkers...)
	m.mu.Unlock()
	var err error
	if ch != nil {
		err = ch.close()
	}
	switch {
	case len(gang) > 0:
		for _, id := range gang {
			m.sim.daemon.StopWorker(id)
		}
	case worker != 0:
		m.sim.daemon.StopWorker(worker)
	}
	return err
}

// EnableReplacement turns on transparent worker replacement (§5: "in
// theory it should be possible to transparently find a replacement
// machine" — the prototype could not; this implementation can). On worker
// death the next call restarts the worker (resource re-selected) and
// replays setup plus the newest known state: the last checkpoint snapshot
// when one exists (full model state including the kernel's clock,
// restored via the checkpoint/restore capability), the synchronized
// particle cache otherwise.
//
// Gangs are replaceable once a checkpoint exists: the dead rank's job is
// restarted on the same resource, gang_init re-wires every rank's peer
// links, and all ranks restore the snapshot — surviving ranks' state is
// suspect after an aborted collective, and the ranks must be bitwise
// identical, so the whole gang resumes from the checkpoint and the
// queued calls replay. Without a checkpoint a gang death remains fatal
// (there is no consistent state to rebuild a rank from).
func (m *modelProxy) EnableReplacement() {
	m.mu.Lock()
	m.replaceable = true
	m.mu.Unlock()
}

func (m *modelProxy) isReplaceable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.replaceable {
		return false
	}
	if len(m.gangWorkers) > 0 {
		return m.lastSnap != nil // gang recovery needs a checkpoint
	}
	return true
}

// Err returns the sticky error, if any.
func (m *modelProxy) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

func (m *modelProxy) setErr(err error) {
	m.mu.Lock()
	if m.lastErr == nil {
		m.lastErr = err
	}
	m.mu.Unlock()
}

// sessionCtx substitutes the session context for a nil one.
func (m *modelProxy) sessionCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return m.sim.ctx
	}
	return ctx
}

// Go issues one typed RPC asynchronously and returns its future. The
// request is on the channel — and, for a remote worker, on the wide-area
// link — before Go returns; calls issued back to back from one goroutine
// reach the worker in order. This is the primitive everything else is
// sugar over: the AMUSE asynchronous function-call pattern
// (call.result() ⇔ Call.Wait + Call.Decode).
func (m *modelProxy) Go(method string, args any) *Call {
	return m.goRaw(method, encode(args), nil)
}

// goRaw issues a call with pre-encoded args and an optional result hook.
func (m *modelProxy) goRaw(method string, args []byte, after func([]byte) error) *Call {
	c := newCall(m.kind, method, after)
	c.seq = m.seq.Add(1)
	if method == "evolve" {
		if e := m.elasticState(); e != nil {
			// The rebalancer samples rank loads after evolve steps; the
			// hook only bumps a counter and possibly spawns the async
			// measurement round (rebalance.go), so completion stays cheap.
			c.success = func([]byte) { e.evolveDone() }
		}
	}
	m.startCall(c, method, args, true)
	return c
}

// elasticState returns the armed rebalancer state, or nil.
func (m *modelProxy) elasticState() *elasticGang {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elastic
}

// startCall issues one attempt of a call. On worker death with
// replacement enabled it restarts the worker once and re-issues.
func (m *modelProxy) startCall(c *Call, method string, args []byte, mayReplace bool) {
	ch, worker, gen := m.endpoint()
	if ch == nil {
		c.finish(nil, fmt.Errorf("core: %s.%s: %w", m.kind, method, ErrChannelClosed))
		return
	}
	m.sim.sessionAccount(func(rec *trace.Recorder, id string) {
		rec.SessionCall(id)
	})
	req := request{
		ID: reqIDs.Add(1), Worker: worker, Method: method,
		Args: args, SentAt: m.sim.clock.Now(),
	}
	ch.start(req, func(resp response, arrival time.Duration, err error) {
		if err == nil {
			// A response arrived (success or structured failure): its
			// travel time is real either way.
			m.sim.clock.AdvanceTo(arrival)
			if werr := kernel.ResponseError(&resp); werr != nil {
				err = werr
			} else {
				c.finish(resp.Result, nil)
				return
			}
		}
		err = fmt.Errorf("core: %s.%s: %w", m.kind, method, err)
		retryable := errors.Is(err, ErrWorkerDied) ||
			(errors.Is(err, ErrChannelClosed) && m.endpointChanging(gen))
		if mayReplace && retryable && m.isReplaceable() {
			// Replacement resubmits a job and replays state — far too slow
			// for a channel delivery goroutine. Queue the retry: a single
			// drainer replaces the worker once and re-issues every failed
			// call in original issue order, preserving the per-worker FIFO
			// pipelined callers rely on.
			m.enqueueRetry(retryItem{c: c, method: method, args: args, gen: gen, seq: c.seq, cause: err})
			return
		}
		m.setErr(err)
		c.finish(nil, err)
	})
}

// enqueueRetry adds a failed call to the retry queue and ensures one
// drainer goroutine is running.
func (m *modelProxy) enqueueRetry(it retryItem) {
	m.mu.Lock()
	m.retries = append(m.retries, it)
	spawn := !m.retrying
	m.retrying = true
	m.mu.Unlock()
	if spawn {
		go m.drainRetries()
	}
}

// drainRetries replaces the dead worker (once per generation) and
// re-issues the queued calls in issue order. When several pipelined
// calls fail together, the slow replacement runs while the channel's
// failure path finishes queueing them, so one batch normally covers the
// whole pipeline. Each pass drains only the generation it replaced:
// items from a newer generation (the replacement died too) stay queued
// for the next pass, which replaces again.
func (m *modelProxy) drainRetries() {
	for {
		m.mu.Lock()
		if len(m.retries) == 0 {
			m.retrying = false
			m.mu.Unlock()
			return
		}
		gen := m.retries[0].gen
		m.mu.Unlock()

		rerr := m.ensureReplaced(gen)

		m.mu.Lock()
		var batch, rest []retryItem
		for _, it := range m.retries {
			if it.gen == gen {
				batch = append(batch, it)
			} else {
				rest = append(rest, it)
			}
		}
		m.retries = rest
		m.mu.Unlock()
		sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
		for _, it := range batch {
			if rerr != nil {
				m.setErr(rerr)
				it.c.finish(nil, fmt.Errorf("core: replacement failed: %w (after %v)", rerr, it.cause))
				continue
			}
			m.startCall(it.c, it.method, it.args, false)
		}
	}
}

// Call performs one typed RPC against the worker and blocks for the
// result — thin sugar over Go(...).Wait(ctx).Decode. nil ctx means the
// session context. It is the generic escape hatch kernels registered
// outside core use to drive their workers — see internal/phys/analytic
// for a complete external kind.
func (m *modelProxy) Call(ctx context.Context, method string, args, reply any) error {
	c := m.Go(method, args)
	if err := c.Wait(m.sessionCtx(ctx)); err != nil {
		return err
	}
	return c.Decode(reply)
}

// ensureReplaced replaces the worker if no earlier retry pass got there
// first (gen is the replacement generation the failed call was issued
// against) and the model has not been stopped. It is only called from
// the proxy's single drainer goroutine. migMu serializes it against
// voluntary migrations and resizes: the gen re-check under the lock
// makes a death observed against the pre-migration endpoint a no-op
// once the migration has rebuilt it.
func (m *modelProxy) ensureReplaced(gen int) error {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	m.mu.Lock()
	current, stopped := m.gen, m.stopped
	m.mu.Unlock()
	if stopped {
		return ErrChannelClosed
	}
	if current != gen {
		return nil // a concurrent call already replaced the worker
	}
	return m.replace()
}

// replace starts a substitute worker (or restarts a gang's dead ranks)
// and replays state.
func (m *modelProxy) replace() error {
	m.rebuilding.Add(1)
	defer m.rebuilding.Add(-1)
	if m.isGang() {
		return m.replaceGangRanks()
	}
	m.mu.Lock()
	oldWorker := m.worker
	oldCh := m.ch
	spec := m.spec
	setup := m.encodedSetupLocked()
	state := m.lastState
	stateSeq := m.stateSeq
	snap := m.lastSnap
	snapSeq := m.snapSeq
	m.mu.Unlock()

	m.sim.trace("worker %d died; starting replacement (kind=%s)", oldWorker, m.kind)
	if oldCh != nil {
		oldCh.close()
	}
	// Re-select the resource: the failed one may be gone.
	spec.Resource = ""
	resource, err := m.sim.place(spec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.spec.Resource = resource
	m.mu.Unlock()
	if err := m.start(m.sim.ctx); err != nil {
		return err
	}
	if err := m.replay("setup", setup); err != nil {
		return err
	}
	// The checkpoint snapshot carries the full model state including the
	// kernel's clock; the particle cache only mass/pos/vel. Restore the
	// snapshot first, then overlay the cache if it is newer (a push or
	// sync landed after the checkpoint).
	if snap != nil {
		if err := m.replayRestore(snap); err != nil {
			return err
		}
	}
	if state != nil && (snap == nil || stateSeq > snapSeq) {
		if err := m.replay("set_particles", encode(*state)); err != nil {
			return err
		}
	}
	if err := m.finishReplacement(); err != nil {
		return err
	}
	m.sim.trace("worker replaced on resource %s", resource)
	return nil
}

// replay runs one non-replaceable call to completion (replacement and
// resume plumbing).
func (m *modelProxy) replay(method string, args []byte) error {
	c := newCall(m.kind, method, nil)
	c.seq = m.seq.Add(1)
	m.startCall(c, method, args, false)
	return c.Wait(m.sim.ctx)
}

// finishReplacement bumps the replacement generation and retires the new
// endpoint if the model was stopped while the replacement was starting.
func (m *modelProxy) finishReplacement() error {
	m.mu.Lock()
	m.gen++
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		// Simulation.Stop ran while the replacement was starting; it may
		// have torn down only the old endpoint, so retire the new one too.
		m.shutdown()
		return ErrChannelClosed
	}
	return nil
}

// cacheState remembers the last known particle state for replacement.
// seq is the issue-order sequence of the call that carried the state:
// replacement compares it against the snapshot's to decide which is
// newer, so it must be the originating call's own seq, not the counter
// at observation time (a checkpoint pipelined just before a sync must
// not be stamped equal to it).
func (m *modelProxy) cacheState(pl kernel.ParticlesPayload, seq uint64) {
	m.mu.Lock()
	m.lastState = &pl
	if seq > m.stateSeq {
		m.stateSeq = seq
	}
	m.n = len(pl.Mass)
	m.mu.Unlock()
}

// cacheSnapshot remembers the model's latest checkpoint frame for
// replacement (Simulation.Checkpoint and ResumeSimulation call it). seq
// is the snapshot call's issue-order sequence (see cacheState). blobRef
// names the frame's daemon-store entry (0 for resumed models, whose
// frames were never filed); the previous entry is superseded and
// returned so the caller can trim it from the store.
func (m *modelProxy) cacheSnapshot(blob []byte, blobRef, seq uint64) (prevRef uint64) {
	m.mu.Lock()
	m.lastSnap = blob
	m.snapSeq = seq
	prevRef = m.lastBlobRef
	m.lastBlobRef = blobRef
	m.mu.Unlock()
	return prevRef
}

// encodedSetupLocked returns the setup args as wire bytes. Callers hold
// m.mu.
func (m *modelProxy) encodedSetupLocked() []byte {
	if m.setupRaw != nil {
		return m.setupRaw
	}
	return encode(m.setupArgs)
}

// Common Dynamics plumbing shared by Gravity and Hydro.

func (m *modelProxy) setParticles(ctx context.Context, p *data.Particles) error {
	pl := kernel.ParticlesToPayload(p)
	c := m.Go("set_particles", pl)
	if err := c.Wait(m.sessionCtx(ctx)); err != nil {
		return err
	}
	m.cacheState(pl, c.seq)
	return nil
}

// GoEvolveTo issues the evolve call without waiting (bridge.AsyncDynamics).
func (m *modelProxy) GoEvolveTo(t float64) Waiter {
	return m.Go("evolve", kernel.EvolveArgs{T: t})
}

// GoKick issues a kick without waiting (bridge.AsyncDynamics).
func (m *modelProxy) GoKick(dv []data.Vec3) Waiter {
	return m.Go("kick", kernel.KickArgs{DV: dv})
}

func (m *modelProxy) evolveTo(ctx context.Context, t float64) error {
	return m.GoEvolveTo(t).Wait(m.sessionCtx(ctx))
}

func (m *modelProxy) kick(ctx context.Context, dv []data.Vec3) error {
	return m.GoKick(dv).Wait(m.sessionCtx(ctx))
}

func (m *modelProxy) positions() []data.Vec3 {
	st, err := m.GetState(nil, data.AttrPos)
	if err != nil {
		return nil
	}
	return st.Vec(data.AttrPos)
}

func (m *modelProxy) masses() []float64 {
	st, err := m.GetState(nil, data.AttrMass)
	if err != nil {
		return nil
	}
	return st.Float(data.AttrMass)
}

// defaultStateAttrs is the common dynamics exchange.
func defaultStateAttrs(attrs []string) []string {
	if len(attrs) == 0 {
		return []string{data.AttrMass, data.AttrPos, data.AttrVel}
	}
	return attrs
}

// goGetState issues a batched columnar read; the hook receives the
// decoded payload.
func (m *modelProxy) goGetState(attrs []string, into func(*kernel.StatePayload) error) *Call {
	buf := kernel.GetBuf()
	args := kernel.AppendStateRequest(*buf, &kernel.StateRequest{Attrs: attrs})
	return m.goPooled("get_state", args, buf, func(raw []byte) error {
		st, err := kernel.UnmarshalState(raw)
		if err != nil {
			return err
		}
		return into(st)
	})
}

// goPooled is goRaw for args marshalled into a pooled buffer: the buffer
// is pinned for the call's whole lifetime (replacement retries re-send
// the args) and returned to the pool when the call finishes.
func (m *modelProxy) goPooled(method string, args []byte, buf *[]byte, after func([]byte) error) *Call {
	c := newCall(m.kind, method, after)
	c.seq = m.seq.Add(1)
	c.release = func() {
		*buf = args[:0]
		kernel.PutBuf(buf)
	}
	m.startCall(c, method, args, true)
	return c
}

// GetState pulls whole attribute columns from the worker in one round
// trip through the hand-rolled columnar codec — the batched alternative
// to one RPC per attribute (or per particle). With no attrs it fetches
// mass, position and velocity. nil ctx means the session context.
func (m *modelProxy) GetState(ctx context.Context, attrs ...string) (*kernel.StatePayload, error) {
	var out *kernel.StatePayload
	c := m.goGetState(defaultStateAttrs(attrs), func(st *kernel.StatePayload) error {
		out = st
		return nil
	})
	if err := c.Wait(m.sessionCtx(ctx)); err != nil {
		return nil, err
	}
	return out, nil
}

// GoSetState issues a batched columnar write without waiting. The
// replacement cache is merged when the call completes, whether or not
// anyone waits on it — an abandoned-but-applied write must still replay
// onto a replacement worker.
func (m *modelProxy) GoSetState(st *kernel.StatePayload) *Call {
	buf := kernel.GetBuf()
	args, err := kernel.AppendState(*buf, st)
	if err != nil {
		*buf = args[:0]
		kernel.PutBuf(buf)
		return failedCall(m.kind, "set_state", err)
	}
	c := newCall(m.kind, "set_state", nil)
	c.seq = m.seq.Add(1)
	c.release = func() {
		*buf = args[:0]
		kernel.PutBuf(buf)
	}
	c.success = func([]byte) { m.mergeCachedState(st, c.seq) }
	m.startCall(c, "set_state", args, true)
	return c
}

// SetState pushes whole attribute columns to the worker in one round
// trip. nil ctx means the session context.
func (m *modelProxy) SetState(ctx context.Context, st *kernel.StatePayload) error {
	return m.GoSetState(st).Wait(m.sessionCtx(ctx))
}

// mergeCachedState folds successfully pushed columns into the
// worker-replacement cache so a transparent replacement replays them —
// bulk writes must not silently revert on worker death. seq is the
// push call's issue-order sequence; it advances the cache's stamp so a
// post-checkpoint push is recognized as newer than the snapshot.
func (m *modelProxy) mergeCachedState(st *kernel.StatePayload, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.lastState
	if ls == nil || len(ls.Mass) != st.N {
		return
	}
	if seq > m.stateSeq {
		m.stateSeq = seq
	}
	for i, a := range st.FloatAttrs {
		switch a {
		case data.AttrMass:
			copy(ls.Mass, st.FloatCols[i])
		case data.AttrInternalEnergy:
			if len(ls.U) == st.N {
				copy(ls.U, st.FloatCols[i])
			}
		case data.AttrSmoothingLen:
			if len(ls.H) == st.N {
				copy(ls.H, st.FloatCols[i])
			}
		}
	}
	for i, a := range st.VecAttrs {
		switch a {
		case data.AttrPos:
			copy(ls.Pos, st.VecCols[i])
		case data.AttrVel:
			copy(ls.Vel, st.VecCols[i])
		}
	}
}

// GoPull issues the batched column read and scatters it into the particle
// set when the result is first observed — pull many models, then Gather.
func (m *modelProxy) GoPull(p *data.Particles, attrs ...string) *Call {
	return m.goGetState(defaultStateAttrs(attrs), func(st *kernel.StatePayload) error {
		return kernel.ScatterState(p, st)
	})
}

// Pull fetches the named columns (default mass/position/velocity) into
// the particle set in one round trip. nil ctx means the session context.
func (m *modelProxy) Pull(ctx context.Context, p *data.Particles, attrs ...string) error {
	return m.GoPull(p, attrs...).Wait(m.sessionCtx(ctx))
}

// GoPush issues the batched column write without waiting.
func (m *modelProxy) GoPush(p *data.Particles, attrs ...string) *Call {
	st, err := kernel.GatherState(p, attrs...)
	if err != nil {
		return failedCall(m.kind, "set_state", err)
	}
	return m.GoSetState(st)
}

// Push sends the named columns (default mass/position/velocity) of the
// particle set to the worker in one round trip. nil ctx means the session
// context.
func (m *modelProxy) Push(ctx context.Context, p *data.Particles, attrs ...string) error {
	return m.GoPush(p, attrs...).Wait(m.sessionCtx(ctx))
}

func (m *modelProxy) particleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Gravity is the coupler-side PhiGRAPE model (bridge.AsyncDynamics +
// bridge.MassSettable).
type Gravity struct {
	*modelProxy
}

// GravityOptions configure NewGravity.
type GravityOptions struct {
	Kernel string  // "phigrape-cpu" (default) or "phigrape-gpu"
	Eps    float64 // softening
	Eta    float64 // timestep parameter (0 = default)
}

// NewGravity starts a gravitational-dynamics worker. ctx bounds worker
// startup (job submission, ready announcement, setup call).
func (s *Simulation) NewGravity(ctx context.Context, spec WorkerSpec, opt GravityOptions) (*Gravity, error) {
	if opt.Kernel == "" {
		opt.Kernel = "phigrape-cpu"
	}
	spec.Kernel = opt.Kernel
	m, err := s.newModel(ctx, KindGravity, spec, kernel.SetupGravityArgs{
		Kernel: opt.Kernel, Eps: opt.Eps, Eta: opt.Eta,
	})
	if err != nil {
		return nil, err
	}
	return &Gravity{modelProxy: m}, nil
}

// SetParticles uploads the master set.
func (g *Gravity) SetParticles(p *data.Particles) error { return g.setParticles(nil, p) }

// EvolveTo implements bridge.Dynamics.
func (g *Gravity) EvolveTo(ctx context.Context, t float64) error { return g.evolveTo(ctx, t) }

// Kick implements bridge.Dynamics.
func (g *Gravity) Kick(ctx context.Context, dv []data.Vec3) error { return g.kick(ctx, dv) }

// Positions implements bridge.Dynamics (nil on RPC failure; see Err).
func (g *Gravity) Positions() []data.Vec3 { return g.positions() }

// Masses implements bridge.Dynamics.
func (g *Gravity) Masses() []float64 { return g.masses() }

// N implements bridge.Dynamics.
func (g *Gravity) N() int { return g.particleCount() }

// SetMass implements bridge.MassSettable (errors are sticky; see Err).
func (g *Gravity) SetMass(i int, mass float64) {
	g.Call(nil, "set_mass", kernel.SetMassArgs{Index: i, Mass: mass}, &kernel.Empty{})
}

// Energy returns (kinetic, potential). nil ctx means the session context.
func (g *Gravity) Energy(ctx context.Context) (float64, float64, error) {
	var out kernel.EnergiesResult
	if err := g.Call(ctx, "energies", kernel.Empty{}, &out); err != nil {
		return 0, 0, err
	}
	return out.Kinetic, out.Potential, nil
}

// GoSync issues the one-round-trip state synchronization without waiting;
// the columns land in p (and refresh the replacement cache) when the
// result is first observed.
func (g *Gravity) GoSync(p *data.Particles) *Call {
	// c is assigned before any caller can Wait, and the hook only runs at
	// outcome observation, so capturing it for the seq stamp is safe.
	var c *Call
	c = g.goGetState([]string{data.AttrMass, data.AttrPos, data.AttrVel},
		func(st *kernel.StatePayload) error {
			if st.N != p.Len() {
				return fmt.Errorf("core: sync: worker has %d particles, set has %d", st.N, p.Len())
			}
			if err := kernel.ScatterState(p, st); err != nil {
				return err
			}
			g.cacheState(kernel.ParticlesToPayload(p), c.seq)
			return nil
		})
	return c
}

// Sync pulls masses, positions and velocities into the given master set
// (and refreshes the replacement cache) — one batched columnar round trip
// where the prototype paid three RPCs. nil ctx means the session context.
func (g *Gravity) Sync(ctx context.Context, p *data.Particles) error {
	return g.GoSync(p).Wait(g.sessionCtx(ctx))
}

// Hydro is the coupler-side Gadget model (bridge.AsyncDynamics +
// bridge.EnergyInjector).
type Hydro struct {
	*modelProxy
}

// HydroOptions configure NewHydro.
type HydroOptions struct {
	SelfGravity bool
	EpsGrav     float64
	NTarget     int
}

// NewHydro starts an SPH worker (set spec.Nodes > 1 for an MPI worker).
func (s *Simulation) NewHydro(ctx context.Context, spec WorkerSpec, opt HydroOptions) (*Hydro, error) {
	m, err := s.newModel(ctx, KindHydro, spec, kernel.SetupHydroArgs{
		SelfGravity: opt.SelfGravity, EpsGrav: opt.EpsGrav, NTarget: opt.NTarget,
	})
	if err != nil {
		return nil, err
	}
	return &Hydro{modelProxy: m}, nil
}

// SetParticles uploads the gas set.
func (h *Hydro) SetParticles(p *data.Particles) error { return h.setParticles(nil, p) }

// EvolveTo implements bridge.Dynamics.
func (h *Hydro) EvolveTo(ctx context.Context, t float64) error { return h.evolveTo(ctx, t) }

// Kick implements bridge.Dynamics.
func (h *Hydro) Kick(ctx context.Context, dv []data.Vec3) error { return h.kick(ctx, dv) }

// Positions implements bridge.Dynamics.
func (h *Hydro) Positions() []data.Vec3 { return h.positions() }

// Masses implements bridge.Dynamics.
func (h *Hydro) Masses() []float64 { return h.masses() }

// N implements bridge.Dynamics.
func (h *Hydro) N() int { return h.particleCount() }

// InjectEnergy implements bridge.EnergyInjector.
func (h *Hydro) InjectEnergy(center data.Vec3, radius, e float64) int {
	h.Call(nil, "inject_energy", kernel.InjectArgs{Center: center, Radius: radius, E: e}, &kernel.Empty{})
	return 0
}

// Energy returns (kinetic, thermal, potential). nil ctx means the session
// context.
func (h *Hydro) Energy(ctx context.Context) (float64, float64, float64, error) {
	var out kernel.EnergiesResult
	if err := h.Call(ctx, "energies", kernel.Empty{}, &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Kinetic, out.Thermal, out.Potential, nil
}

// StellarModel is the coupler-side SSE model (bridge.Stellar).
type StellarModel struct {
	*modelProxy
}

// NewStellar starts a stellar-evolution worker for the given ZAMS masses
// (in MSun). myrPerTime and nbodyPerMSun are the unit scales the bridge
// needs; with a session converter use NewStellarFromConverter.
func (s *Simulation) NewStellar(ctx context.Context, spec WorkerSpec, massesMSun []float64, myrPerTime, nbodyPerMSun float64) (*StellarModel, error) {
	m, err := s.newModel(ctx, KindStellar, spec, kernel.SetupStellarArgs{
		MassesMSun: massesMSun, MyrPerTime: myrPerTime, NBodyPerMSun: nbodyPerMSun,
	})
	if err != nil {
		return nil, err
	}
	return &StellarModel{modelProxy: m}, nil
}

// NewStellarFromConverter derives the unit scales from the session
// converter (checked conversions, as AMUSE requires).
func (s *Simulation) NewStellarFromConverter(ctx context.Context, spec WorkerSpec, massesMSun []float64) (*StellarModel, error) {
	if s.conv == nil {
		return nil, errors.New("core: stellar model needs a unit converter")
	}
	myr, err := s.conv.TimeScale().ValueIn(units.Myr)
	if err != nil {
		return nil, err
	}
	msun, err := s.conv.MassScale().ValueIn(units.MSun)
	if err != nil {
		return nil, err
	}
	return s.NewStellar(ctx, spec, massesMSun, myr, 1/msun)
}

// EvolveTo implements bridge.Stellar.
func (st *StellarModel) EvolveTo(ctx context.Context, t float64) ([]bridge.StellarEvent, error) {
	var out kernel.StellarEvolveResult
	if err := st.Call(ctx, "evolve", kernel.EvolveArgs{T: t}, &out); err != nil {
		return nil, err
	}
	events := make([]bridge.StellarEvent, 0, len(out.Events))
	for _, ev := range out.Events {
		events = append(events, bridge.StellarEvent{Index: ev.Index, MassLoss: ev.MassLoss, SN: ev.SN})
	}
	return events, nil
}

// FieldModel is the coupler-side coupling model (bridge.AsyncField):
// Octgrav or Fi.
type FieldModel struct {
	*modelProxy
	kernelName string
}

// FieldOptions configure NewField.
type FieldOptions struct {
	Kernel string  // "octgrav" (GPU) or "fi" (CPU, default)
	Theta  float64 // opening angle
	Eps    float64 // coupling softening
}

// NewField starts a coupling worker.
func (s *Simulation) NewField(ctx context.Context, spec WorkerSpec, opt FieldOptions) (*FieldModel, error) {
	if opt.Kernel == "" {
		opt.Kernel = "fi"
	}
	spec.Kernel = opt.Kernel
	m, err := s.newModel(ctx, KindField, spec, kernel.SetupFieldArgs{
		Kernel: opt.Kernel, Theta: opt.Theta, Eps: opt.Eps,
	})
	if err != nil {
		return nil, err
	}
	return &FieldModel{modelProxy: m, kernelName: opt.Kernel}, nil
}

// Name implements bridge.Field.
func (f *FieldModel) Name() string { return f.kernelName }

// fieldCall is the pending field evaluation behind GoFieldAt.
type fieldCall struct {
	call *Call
	n    int
}

// Wait implements bridge.FieldCall.
func (fc fieldCall) Wait(ctx context.Context) ([]data.Vec3, []float64, float64, error) {
	var out kernel.FieldAtResult
	if err := fc.call.Wait(ctx); err != nil {
		return make([]data.Vec3, fc.n), make([]float64, fc.n), 0, err
	}
	if err := fc.call.Decode(&out); err != nil {
		return make([]data.Vec3, fc.n), make([]float64, fc.n), 0, err
	}
	return out.Acc, out.Pot, 0, nil
}

// GoFieldAt issues a field evaluation without waiting
// (bridge.AsyncField): the bridge puts both p-kick directions on the wire
// back to back. The eps argument is fixed at setup; the worker applies
// the configured one.
func (f *FieldModel) GoFieldAt(srcMass []float64, srcPos, targets []data.Vec3, eps float64) bridge.FieldCall {
	c := f.Go("field_at", kernel.FieldAtArgs{SrcMass: srcMass, SrcPos: srcPos, Targets: targets})
	return fieldCall{call: c, n: len(targets)}
}

// FieldAt implements bridge.Field (errors are sticky; see Err).
func (f *FieldModel) FieldAt(ctx context.Context, srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64) {
	acc, pot, flops, err := f.GoFieldAt(srcMass, srcPos, targets, eps).Wait(f.sessionCtx(ctx))
	if err != nil {
		return make([]data.Vec3, len(targets)), make([]float64, len(targets)), 0
	}
	return acc, pot, flops
}

// Model is the generic coupler-side handle for a worker of any registered
// kind. Kinds added outside internal/core (one package + one import, no
// core edits) get the full channel stack — worker start-up, replacement,
// virtual-time accounting, the asynchronous Go/Call pair and the batched
// GetState/SetState path — through this handle; a typed wrapper like
// Gravity is optional sugar.
type Model struct {
	*modelProxy
}

// NewModel starts a worker of the given kind and performs its "setup"
// call with the provided (gob-encodable) arguments.
func (s *Simulation) NewModel(ctx context.Context, kind Kind, spec WorkerSpec, setup any) (*Model, error) {
	m, err := s.newModel(ctx, kind, spec, setup)
	if err != nil {
		return nil, err
	}
	return &Model{modelProxy: m}, nil
}
