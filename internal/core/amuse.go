package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/units"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/bridge"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// Simulation is the coupler: the Go equivalent of an AMUSE Python script's
// session. It owns the virtual clock, a unit converter for checked
// conversions at the API boundary, and the workers it started. Models
// created here implement the bridge interfaces, so phys/bridge composes
// them exactly like Fig. 7 — whether the model is in-process or a continent
// away behind the ibis channel.
type Simulation struct {
	daemon *Daemon
	conv   *units.Converter
	clock  *vtime.Clock

	// Trace, when set, receives coupler-level events (worker starts,
	// replacements); the bridge's own trace covers Fig. 7's call sequence.
	Trace func(event string)

	mu     sync.Mutex
	models []*modelProxy
}

// NewSimulation creates a coupler session on a running daemon. The
// converter defines the simulation's physical scale (may be nil for pure
// N-body work).
func NewSimulation(d *Daemon, conv *units.Converter) *Simulation {
	return &Simulation{daemon: d, conv: conv, clock: vtime.NewClock()}
}

// Clock returns the coupler's virtual clock.
func (s *Simulation) Clock() *vtime.Clock { return s.clock }

// Elapsed returns the coupler's virtual time — the per-iteration wall time
// the paper reports in §6.2.
func (s *Simulation) Elapsed() time.Duration { return s.clock.Now() }

// Converter returns the unit converter (may be nil).
func (s *Simulation) Converter() *units.Converter { return s.conv }

// Daemon returns the daemon this simulation talks to.
func (s *Simulation) Daemon() *Daemon { return s.daemon }

func (s *Simulation) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(fmt.Sprintf(format, args...))
	}
}

// TimeQuantity converts a physical time into N-body time using the
// session converter — the checked conversion AMUSE performs on every
// boundary crossing.
func (s *Simulation) TimeQuantity(q units.Quantity) (float64, error) {
	if s.conv == nil {
		return 0, errors.New("core: simulation has no unit converter")
	}
	if q.Unit.Dim != (units.Dim{Time: 1}) {
		return 0, fmt.Errorf("%w: %s is not a time", units.ErrDimension, q)
	}
	return s.conv.ToNBody(q)
}

// Stop shuts down all models (workers stop; the daemon survives for the
// next simulation, as the paper prescribes).
func (s *Simulation) Stop() {
	s.mu.Lock()
	models := append([]*modelProxy(nil), s.models...)
	s.models = nil
	s.mu.Unlock()
	for _, m := range models {
		m.shutdown()
	}
}

// modelProxy is the coupler-side endpoint of one worker.
type modelProxy struct {
	sim    *Simulation
	kind   Kind
	spec   WorkerSpec
	ch     channel
	worker int

	mu      sync.Mutex
	n       int
	lastErr error
	// replacement support (§5 future work, implemented here).
	replaceable bool
	setupArgs   any
	lastState   *kernel.ParticlesPayload
}

// newModel starts a worker per spec and opens its channel.
func (s *Simulation) newModel(kind Kind, spec WorkerSpec, setup any) (*modelProxy, error) {
	if !kernel.Registered(string(kind)) {
		return nil, fmt.Errorf("%w: %q (missing adapter import? see internal/kernels)", ErrBadKind, kind)
	}
	spec.Kind = kind
	if spec.Channel == "" {
		spec.Channel = ChannelIbis
	}
	m := &modelProxy{sim: s, kind: kind, spec: spec, setupArgs: setup}
	if err := m.start(); err != nil {
		return nil, err
	}
	if err := m.call("setup", setup, &kernel.Empty{}); err != nil {
		m.shutdown()
		return nil, err
	}
	s.mu.Lock()
	s.models = append(s.models, m)
	s.mu.Unlock()
	s.trace("worker started kind=%s kernel=%s resource=%s channel=%s",
		kind, spec.Kernel, m.spec.Resource, spec.Channel)
	return m, nil
}

// start launches the worker and opens the channel (used again on
// replacement).
func (m *modelProxy) start() error {
	s := m.sim
	switch m.spec.Channel {
	case ChannelMPI:
		// In-process worker on the local resource (AMUSE's default
		// channel): resolve the resource for device models.
		resource := m.spec.Resource
		if resource == "" {
			var err error
			resource, err = SelectResource(s.daemon.Deployment(), m.spec)
			if err != nil {
				return err
			}
			m.spec.Resource = resource
		}
		res, err := s.daemon.Deployment().Resource(resource)
		if err != nil {
			return err
		}
		svc, err := newService(m.kind, res, []string{s.daemon.Deployment().LocalHost()}, s.daemon.Env())
		if err != nil {
			return err
		}
		m.ch = newLocalChannel(svc)
		return nil
	case ChannelSockets:
		id, err := s.daemon.StartWorker(m.spec)
		if err != nil {
			return err
		}
		m.worker = id
		host, port, err := s.daemon.workerSocketAddr(id)
		if err != nil {
			return err
		}
		conn, err := dialRetry(s, host, port, 5*time.Second)
		if err != nil {
			return err
		}
		m.ch = newConnChannel(ChannelSockets, conn)
		return nil
	case ChannelIbis:
		id, err := s.daemon.StartWorker(m.spec)
		if err != nil {
			return err
		}
		m.worker = id
		local := s.daemon.Deployment().LocalHost()
		conn, err := s.daemon.Deployment().Net.Dial(local, local, DaemonPort)
		if err != nil {
			return err
		}
		conn.SetClass("loopback")
		m.ch = newConnChannel(ChannelIbis, conn)
		return nil
	default:
		return fmt.Errorf("core: unknown channel %q", m.spec.Channel)
	}
}

// dialRetry dials a loopback worker that may still be starting.
func dialRetry(s *Simulation, host string, port int, budget time.Duration) (conn *vnet.Conn, err error) {
	net := s.daemon.Deployment().Net
	deadline := time.Now().Add(budget)
	for {
		c, derr := net.Dial(host, host, port)
		if derr == nil {
			c.SetClass("loopback")
			return c, nil
		}
		err = derr
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: sockets worker never listened: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// shutdown closes the channel and stops the worker.
func (m *modelProxy) shutdown() {
	if m.ch != nil {
		m.ch.close()
	}
	if m.worker != 0 {
		m.sim.daemon.StopWorker(m.worker)
	}
}

// EnableReplacement turns on transparent worker replacement (§5: "in
// theory it should be possible to transparently find a replacement
// machine" — the prototype could not; this implementation can). On worker
// death the next call restarts the worker (resource re-selected) and
// replays setup plus the last synchronized particle state.
func (m *modelProxy) EnableReplacement() {
	m.mu.Lock()
	m.replaceable = true
	m.mu.Unlock()
}

// Err returns the sticky error, if any.
func (m *modelProxy) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

func (m *modelProxy) setErr(err error) {
	m.mu.Lock()
	if m.lastErr == nil {
		m.lastErr = err
	}
	m.mu.Unlock()
}

// call performs one gob-typed RPC; on worker death with replacement
// enabled it restarts the worker and retries once.
func (m *modelProxy) call(method string, args any, reply any) error {
	raw, err := m.invoke(method, encode(args))
	if err != nil {
		return err
	}
	if reply != nil {
		return decode(raw, reply)
	}
	return nil
}

// invoke performs one RPC with pre-encoded args and returns the raw
// result bytes; on worker death with replacement enabled it restarts the
// worker and retries once. Both the typed (gob) and the batched columnar
// paths funnel through here.
func (m *modelProxy) invoke(method string, args []byte) ([]byte, error) {
	raw, err := m.invokeOnce(method, args)
	if err == nil {
		return raw, nil
	}
	m.mu.Lock()
	canReplace := m.replaceable
	m.mu.Unlock()
	if canReplace && errors.Is(err, ErrWorkerDied) {
		if rerr := m.replace(); rerr != nil {
			m.setErr(rerr)
			return nil, fmt.Errorf("core: replacement failed: %w (after %v)", rerr, err)
		}
		raw, err = m.invokeOnce(method, args)
		if err == nil {
			return raw, nil
		}
	}
	m.setErr(err)
	return nil, err
}

func (m *modelProxy) invokeOnce(method string, args []byte) ([]byte, error) {
	req := request{
		ID: reqIDs.Add(1), Worker: m.worker, Method: method,
		Args: args, SentAt: m.sim.clock.Now(),
	}
	resp, arrival, err := m.ch.roundTrip(req)
	if err != nil {
		return nil, err
	}
	m.sim.clock.AdvanceTo(arrival)
	if resp.Err != "" {
		if strings.Contains(resp.Err, ErrWorkerDied.Error()) {
			return nil, fmt.Errorf("core: %s.%s: %w", m.kind, method, ErrWorkerDied)
		}
		return nil, fmt.Errorf("core: %s.%s: %s", m.kind, method, resp.Err)
	}
	return resp.Result, nil
}

// replace starts a substitute worker and replays state.
func (m *modelProxy) replace() error {
	m.sim.trace("worker %d died; starting replacement (kind=%s)", m.worker, m.kind)
	if m.ch != nil {
		m.ch.close()
	}
	// Re-select the resource: the failed one may be gone.
	spec := m.spec
	spec.Resource = ""
	resource, err := SelectResource(m.sim.daemon.Deployment(), spec)
	if err != nil {
		return err
	}
	m.spec.Resource = resource
	if err := m.start(); err != nil {
		return err
	}
	if _, err := m.invokeOnce("setup", encode(m.setupArgs)); err != nil {
		return err
	}
	m.mu.Lock()
	state := m.lastState
	m.mu.Unlock()
	if state != nil {
		if _, err := m.invokeOnce("set_particles", encode(*state)); err != nil {
			return err
		}
	}
	m.sim.trace("worker replaced on resource %s", resource)
	return nil
}

// cacheState remembers the last known particle state for replacement.
func (m *modelProxy) cacheState(pl kernel.ParticlesPayload) {
	m.mu.Lock()
	m.lastState = &pl
	m.n = len(pl.Mass)
	m.mu.Unlock()
}

// Common Dynamics plumbing shared by Gravity and Hydro.

func (m *modelProxy) setParticles(p *data.Particles) error {
	pl := kernel.ParticlesToPayload(p)
	if err := m.call("set_particles", pl, &kernel.Empty{}); err != nil {
		return err
	}
	m.cacheState(pl)
	return nil
}

func (m *modelProxy) evolveTo(t float64) error {
	return m.call("evolve", kernel.EvolveArgs{T: t}, &kernel.Empty{})
}

func (m *modelProxy) kick(dv []data.Vec3) error {
	return m.call("kick", kernel.KickArgs{DV: dv}, &kernel.Empty{})
}

func (m *modelProxy) positions() []data.Vec3 {
	st, err := m.GetState(data.AttrPos)
	if err != nil {
		return nil
	}
	return st.Vec(data.AttrPos)
}

func (m *modelProxy) masses() []float64 {
	st, err := m.GetState(data.AttrMass)
	if err != nil {
		return nil
	}
	return st.Float(data.AttrMass)
}

// Call performs one typed RPC against the worker (with transparent
// replacement, like every other call). It is the generic escape hatch
// kernels registered outside core use to drive their workers — see
// internal/phys/analytic for a complete external kind.
func (m *modelProxy) Call(method string, args, reply any) error {
	return m.call(method, args, reply)
}

// GetState pulls whole attribute columns from the worker in one round
// trip through the hand-rolled columnar codec — the batched alternative
// to one RPC per attribute (or per particle). With no attrs it fetches
// mass, position and velocity.
func (m *modelProxy) GetState(attrs ...string) (*kernel.StatePayload, error) {
	if len(attrs) == 0 {
		attrs = []string{data.AttrMass, data.AttrPos, data.AttrVel}
	}
	buf := kernel.GetBuf()
	args := kernel.AppendStateRequest(*buf, &kernel.StateRequest{Attrs: attrs})
	raw, err := m.invoke("get_state", args)
	*buf = args[:0]
	kernel.PutBuf(buf)
	if err != nil {
		return nil, err
	}
	return kernel.UnmarshalState(raw)
}

// SetState pushes whole attribute columns to the worker in one round
// trip.
func (m *modelProxy) SetState(st *kernel.StatePayload) error {
	buf := kernel.GetBuf()
	args, err := kernel.AppendState(*buf, st)
	if err == nil {
		_, err = m.invoke("set_state", args)
	}
	*buf = args[:0]
	kernel.PutBuf(buf)
	if err == nil {
		m.mergeCachedState(st)
	}
	return err
}

// mergeCachedState folds successfully pushed columns into the
// worker-replacement cache so a transparent replacement replays them —
// bulk writes must not silently revert on worker death.
func (m *modelProxy) mergeCachedState(st *kernel.StatePayload) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.lastState
	if ls == nil || len(ls.Mass) != st.N {
		return
	}
	for i, a := range st.FloatAttrs {
		switch a {
		case data.AttrMass:
			copy(ls.Mass, st.FloatCols[i])
		case data.AttrInternalEnergy:
			if len(ls.U) == st.N {
				copy(ls.U, st.FloatCols[i])
			}
		case data.AttrSmoothingLen:
			if len(ls.H) == st.N {
				copy(ls.H, st.FloatCols[i])
			}
		}
	}
	for i, a := range st.VecAttrs {
		switch a {
		case data.AttrPos:
			copy(ls.Pos, st.VecCols[i])
		case data.AttrVel:
			copy(ls.Vel, st.VecCols[i])
		}
	}
}

// Pull fetches the named columns (default mass/position/velocity) into
// the particle set in one round trip.
func (m *modelProxy) Pull(p *data.Particles, attrs ...string) error {
	st, err := m.GetState(attrs...)
	if err != nil {
		return err
	}
	return kernel.ScatterState(p, st)
}

// Push sends the named columns (default mass/position/velocity) of the
// particle set to the worker in one round trip.
func (m *modelProxy) Push(p *data.Particles, attrs ...string) error {
	st, err := kernel.GatherState(p, attrs...)
	if err != nil {
		return err
	}
	return m.SetState(st)
}

func (m *modelProxy) particleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Gravity is the coupler-side PhiGRAPE model (bridge.Dynamics +
// bridge.MassSettable).
type Gravity struct {
	*modelProxy
}

// GravityOptions configure NewGravity.
type GravityOptions struct {
	Kernel string  // "phigrape-cpu" (default) or "phigrape-gpu"
	Eps    float64 // softening
	Eta    float64 // timestep parameter (0 = default)
}

// NewGravity starts a gravitational-dynamics worker.
func (s *Simulation) NewGravity(spec WorkerSpec, opt GravityOptions) (*Gravity, error) {
	if opt.Kernel == "" {
		opt.Kernel = "phigrape-cpu"
	}
	spec.Kernel = opt.Kernel
	m, err := s.newModel(KindGravity, spec, kernel.SetupGravityArgs{
		Kernel: opt.Kernel, Eps: opt.Eps, Eta: opt.Eta,
	})
	if err != nil {
		return nil, err
	}
	return &Gravity{modelProxy: m}, nil
}

// SetParticles uploads the master set.
func (g *Gravity) SetParticles(p *data.Particles) error { return g.setParticles(p) }

// EvolveTo implements bridge.Dynamics.
func (g *Gravity) EvolveTo(t float64) error { return g.evolveTo(t) }

// Kick implements bridge.Dynamics.
func (g *Gravity) Kick(dv []data.Vec3) error { return g.kick(dv) }

// Positions implements bridge.Dynamics (nil on RPC failure; see Err).
func (g *Gravity) Positions() []data.Vec3 { return g.positions() }

// Masses implements bridge.Dynamics.
func (g *Gravity) Masses() []float64 { return g.masses() }

// N implements bridge.Dynamics.
func (g *Gravity) N() int { return g.particleCount() }

// SetMass implements bridge.MassSettable (errors are sticky; see Err).
func (g *Gravity) SetMass(i int, mass float64) {
	g.call("set_mass", kernel.SetMassArgs{Index: i, Mass: mass}, &kernel.Empty{})
}

// Energy returns (kinetic, potential).
func (g *Gravity) Energy() (float64, float64, error) {
	var out kernel.EnergiesResult
	if err := g.call("energies", kernel.Empty{}, &out); err != nil {
		return 0, 0, err
	}
	return out.Kinetic, out.Potential, nil
}

// Sync pulls masses, positions and velocities into the given master set
// (and refreshes the replacement cache) — one batched columnar round trip
// where the prototype paid three RPCs.
func (g *Gravity) Sync(p *data.Particles) error {
	st, err := g.GetState(data.AttrMass, data.AttrPos, data.AttrVel)
	if err != nil {
		return err
	}
	if st.N != p.Len() {
		return fmt.Errorf("core: sync: worker has %d particles, set has %d", st.N, p.Len())
	}
	if err := kernel.ScatterState(p, st); err != nil {
		return err
	}
	g.cacheState(kernel.ParticlesToPayload(p))
	return nil
}

// Hydro is the coupler-side Gadget model (bridge.Dynamics +
// bridge.EnergyInjector).
type Hydro struct {
	*modelProxy
}

// HydroOptions configure NewHydro.
type HydroOptions struct {
	SelfGravity bool
	EpsGrav     float64
	NTarget     int
}

// NewHydro starts an SPH worker (set spec.Nodes > 1 for an MPI worker).
func (s *Simulation) NewHydro(spec WorkerSpec, opt HydroOptions) (*Hydro, error) {
	m, err := s.newModel(KindHydro, spec, kernel.SetupHydroArgs{
		SelfGravity: opt.SelfGravity, EpsGrav: opt.EpsGrav, NTarget: opt.NTarget,
	})
	if err != nil {
		return nil, err
	}
	return &Hydro{modelProxy: m}, nil
}

// SetParticles uploads the gas set.
func (h *Hydro) SetParticles(p *data.Particles) error { return h.setParticles(p) }

// EvolveTo implements bridge.Dynamics.
func (h *Hydro) EvolveTo(t float64) error { return h.evolveTo(t) }

// Kick implements bridge.Dynamics.
func (h *Hydro) Kick(dv []data.Vec3) error { return h.kick(dv) }

// Positions implements bridge.Dynamics.
func (h *Hydro) Positions() []data.Vec3 { return h.positions() }

// Masses implements bridge.Dynamics.
func (h *Hydro) Masses() []float64 { return h.masses() }

// N implements bridge.Dynamics.
func (h *Hydro) N() int { return h.particleCount() }

// InjectEnergy implements bridge.EnergyInjector.
func (h *Hydro) InjectEnergy(center data.Vec3, radius, e float64) int {
	h.call("inject_energy", kernel.InjectArgs{Center: center, Radius: radius, E: e}, &kernel.Empty{})
	return 0
}

// Energy returns (kinetic, thermal, potential).
func (h *Hydro) Energy() (float64, float64, float64, error) {
	var out kernel.EnergiesResult
	if err := h.call("energies", kernel.Empty{}, &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Kinetic, out.Thermal, out.Potential, nil
}

// StellarModel is the coupler-side SSE model (bridge.Stellar).
type StellarModel struct {
	*modelProxy
}

// NewStellar starts a stellar-evolution worker for the given ZAMS masses
// (in MSun). myrPerTime and nbodyPerMSun are the unit scales the bridge
// needs; with a session converter use NewStellarFromConverter.
func (s *Simulation) NewStellar(spec WorkerSpec, massesMSun []float64, myrPerTime, nbodyPerMSun float64) (*StellarModel, error) {
	m, err := s.newModel(KindStellar, spec, kernel.SetupStellarArgs{
		MassesMSun: massesMSun, MyrPerTime: myrPerTime, NBodyPerMSun: nbodyPerMSun,
	})
	if err != nil {
		return nil, err
	}
	return &StellarModel{modelProxy: m}, nil
}

// NewStellarFromConverter derives the unit scales from the session
// converter (checked conversions, as AMUSE requires).
func (s *Simulation) NewStellarFromConverter(spec WorkerSpec, massesMSun []float64) (*StellarModel, error) {
	if s.conv == nil {
		return nil, errors.New("core: stellar model needs a unit converter")
	}
	myr, err := s.conv.TimeScale().ValueIn(units.Myr)
	if err != nil {
		return nil, err
	}
	msun, err := s.conv.MassScale().ValueIn(units.MSun)
	if err != nil {
		return nil, err
	}
	return s.NewStellar(spec, massesMSun, myr, 1/msun)
}

// EvolveTo implements bridge.Stellar.
func (st *StellarModel) EvolveTo(t float64) ([]bridge.StellarEvent, error) {
	var out kernel.StellarEvolveResult
	if err := st.call("evolve", kernel.EvolveArgs{T: t}, &out); err != nil {
		return nil, err
	}
	events := make([]bridge.StellarEvent, 0, len(out.Events))
	for _, ev := range out.Events {
		events = append(events, bridge.StellarEvent{Index: ev.Index, MassLoss: ev.MassLoss, SN: ev.SN})
	}
	return events, nil
}

// FieldModel is the coupler-side coupling model (bridge.Field): Octgrav or
// Fi.
type FieldModel struct {
	*modelProxy
	kernelName string
}

// FieldOptions configure NewField.
type FieldOptions struct {
	Kernel string  // "octgrav" (GPU) or "fi" (CPU, default)
	Theta  float64 // opening angle
	Eps    float64 // coupling softening
}

// NewField starts a coupling worker.
func (s *Simulation) NewField(spec WorkerSpec, opt FieldOptions) (*FieldModel, error) {
	if opt.Kernel == "" {
		opt.Kernel = "fi"
	}
	spec.Kernel = opt.Kernel
	m, err := s.newModel(KindField, spec, kernel.SetupFieldArgs{
		Kernel: opt.Kernel, Theta: opt.Theta, Eps: opt.Eps,
	})
	if err != nil {
		return nil, err
	}
	return &FieldModel{modelProxy: m, kernelName: opt.Kernel}, nil
}

// Name implements bridge.Field.
func (f *FieldModel) Name() string { return f.kernelName }

// Model is the generic coupler-side handle for a worker of any registered
// kind. Kinds added outside internal/core (one package + one import, no
// core edits) get the full channel stack — worker start-up, replacement,
// virtual-time accounting, typed Call and the batched GetState/SetState
// path — through this handle; a typed wrapper like Gravity is optional
// sugar.
type Model struct {
	*modelProxy
}

// NewModel starts a worker of the given kind and performs its "setup"
// call with the provided (gob-encodable) arguments.
func (s *Simulation) NewModel(kind Kind, spec WorkerSpec, setup any) (*Model, error) {
	m, err := s.newModel(kind, spec, setup)
	if err != nil {
		return nil, err
	}
	return &Model{modelProxy: m}, nil
}

// FieldAt implements bridge.Field. The eps argument is fixed at setup; the
// bridge passes its own but the worker applies the configured one.
func (f *FieldModel) FieldAt(srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64) {
	var out kernel.FieldAtResult
	if err := f.call("field_at", kernel.FieldAtArgs{SrcMass: srcMass, SrcPos: srcPos, Targets: targets}, &out); err != nil {
		return make([]data.Vec3, len(targets)), make([]float64, len(targets)), 0
	}
	return out.Acc, out.Pot, 0
}
