package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/amuse/units"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/bridge"

	// Kernel service adapters register themselves; core holds no kinds.
	_ "jungle/internal/kernels"
)

func labSim(t *testing.T) (*Testbed, *Simulation) {
	t.Helper()
	tb, err := NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	conv, err := units.NewConverter(units.New(1000, units.MSun), units.New(1, units.Parsec))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation(context.Background(), tb.Daemon, conv)
	t.Cleanup(func() { sim.Stop() })
	return tb, sim
}

func TestLocalChannelGravity(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "desktop", Channel: ChannelMPI},
		GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(64, 1)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("N = %d", g.N())
	}
	k0, u0, err := g.Energy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EvolveTo(context.Background(), 0.125); err != nil {
		t.Fatal(err)
	}
	k1, u1, err := g.Energy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs((k1 + u1 - k0 - u0) / (k0 + u0)); rel > 1e-4 {
		t.Fatalf("energy drift %v", rel)
	}
	if sim.Elapsed() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestIbisChannelRemoteWorker(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(64, 2)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatal(err)
	}
	out := stars.Clone()
	if err := g.Sync(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range out.Pos {
		if out.Pos[i] != stars.Pos[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("particles did not move")
	}
	// The wide-area path must show IPL traffic between desktop and the LGM
	// route, and loopback traffic at both ends (Fig. 5 / Fig. 11).
	classes := tb.Recorder.TotalByClass()
	if classes["ipl"] == 0 {
		t.Fatalf("no IPL traffic recorded: %v", classes)
	}
	if classes["loopback"] == 0 {
		t.Fatalf("no loopback traffic recorded: %v", classes)
	}
	// Remote round trips accumulate WAN latency on the virtual clock.
	if sim.Elapsed() < 10*time.Millisecond {
		t.Fatalf("elapsed %v suspiciously low for remote worker", sim.Elapsed())
	}
}

func TestSocketsChannelWorker(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "desktop", Channel: ChannelSockets},
		GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(32, 3)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatal(err)
	}
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChannelsProduceIdenticalPhysics: the channel (mpi vs ibis) and the
// kernel's device must not change results — Multi-Kernel plus
// location-transparency in one test.
func TestChannelsProduceIdenticalPhysics(t *testing.T) {
	_, sim := labSim(t)
	stars := ic.Plummer(100, 4)

	run := func(spec WorkerSpec, kernel string) *data.Particles {
		g, err := sim.NewGravity(context.Background(), spec, GravityOptions{Kernel: kernel, Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetParticles(stars); err != nil {
			t.Fatal(err)
		}
		if err := g.EvolveTo(context.Background(), 1.0/32); err != nil {
			t.Fatal(err)
		}
		out := stars.Clone()
		if err := g.Sync(context.Background(), out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	local := run(WorkerSpec{Resource: "desktop", Channel: ChannelMPI}, "phigrape-cpu")
	remote := run(WorkerSpec{Resource: "lgm", Channel: ChannelIbis}, "phigrape-gpu")
	for i := range local.Pos {
		for d := 0; d < 3; d++ {
			if math.Float64bits(local.Pos[i][d]) != math.Float64bits(remote.Pos[i][d]) {
				t.Fatalf("particle %d diverged between local-cpu and remote-gpu", i)
			}
		}
	}
}

func TestStellarWorkerEvents(t *testing.T) {
	_, sim := labSim(t)
	st, err := sim.NewStellar(context.Background(), WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis},
		[]float64{25, 1, 0.5}, 10 /* Myr per time unit */, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// 25 MSun lives ~3.2 Myr; at 10 Myr/unit, t=1 covers it.
	events, err := st.EvolveTo(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sawSN := false
	for _, ev := range events {
		if ev.SN && ev.Index == 0 {
			sawSN = true
		}
	}
	if !sawSN {
		t.Fatalf("no supernova for the 25 MSun star: %+v", events)
	}
}

func TestFieldWorker(t *testing.T) {
	_, sim := labSim(t)
	f, err := sim.NewField(context.Background(), WorkerSpec{Resource: "das4-tud", Channel: ChannelIbis},
		FieldOptions{Kernel: "octgrav", Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	src := ic.Plummer(200, 5)
	targets := src.Pos[:10]
	acc, pot, _ := f.FieldAt(context.Background(), src.Mass, src.Pos, targets, 0.05)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if len(acc) != 10 || len(pot) != 10 {
		t.Fatalf("field sizes: %d, %d", len(acc), len(pot))
	}
	nonzero := false
	for i := range acc {
		if acc[i].Norm() > 0 {
			nonzero = true
		}
		if pot[i] >= 0 {
			t.Fatalf("potential %d = %v, want negative", i, pot[i])
		}
	}
	if !nonzero {
		t.Fatal("all accelerations zero")
	}
}

// TestDistributedBridgeMatchesLocal runs the Fig. 7 integrator once with
// all models in-process and once with every model on a different remote
// resource (the jungle). Physics must be bitwise identical; only the
// virtual clock differs.
func TestDistributedBridgeMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 30, Gas: 120, GasFrac: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, gravSpec, hydroSpec, fieldSpec WorkerSpec, gravKernel, fieldKernel string) (*data.Particles, time.Duration) {
		_, sim := labSim(t)
		g, err := sim.NewGravity(context.Background(), gravSpec, GravityOptions{Kernel: gravKernel, Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetParticles(stars); err != nil {
			t.Fatal(err)
		}
		h, err := sim.NewHydro(context.Background(), hydroSpec, HydroOptions{SelfGravity: true, EpsGrav: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.SetParticles(gas); err != nil {
			t.Fatal(err)
		}
		f, err := sim.NewField(context.Background(), fieldSpec, FieldOptions{Kernel: fieldKernel, Eps: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		br, err := bridge.New(bridge.Config{
			Stars: g, Gas: h, Coupler: f, DT: 1.0 / 32, Eps: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := br.EvolveTo(context.Background(), 2.0/32); err != nil {
			t.Fatal(err)
		}
		out := stars.Clone()
		if err := g.Sync(context.Background(), out); err != nil {
			t.Fatal(err)
		}
		return out, sim.Elapsed()
	}

	localOut, localTime := run(t,
		WorkerSpec{Resource: "desktop", Channel: ChannelMPI},
		WorkerSpec{Resource: "desktop", Channel: ChannelMPI},
		WorkerSpec{Resource: "desktop", Channel: ChannelMPI},
		"phigrape-cpu", "fi")
	jungleOut, jungleTime := run(t,
		WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis},
		WorkerSpec{Resource: "das4-tud", Channel: ChannelIbis},
		"phigrape-gpu", "octgrav")

	for i := range localOut.Pos {
		for d := 0; d < 3; d++ {
			if math.Float64bits(localOut.Pos[i][d]) != math.Float64bits(jungleOut.Pos[i][d]) {
				t.Fatalf("particle %d diverged between local and jungle runs", i)
			}
		}
	}
	if localTime == jungleTime {
		t.Fatal("virtual times identical; deployment not modeled")
	}
}

func TestWorkerDeathDetected(t *testing.T) {
	tb, sim := labSim(t)
	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 6)); err != nil {
		t.Fatal(err)
	}
	tb.Daemon.KillWorker(g.worker)
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("death not detected")
	}
	err = g.EvolveTo(context.Background(), 0.5)
	if err == nil {
		t.Fatal("call to dead worker succeeded")
	}
	if !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("err = %v, want ErrWorkerDied", err)
	}
	// The paper's prototype behaviour: the fault is surfaced, the
	// simulation errors out (no silent hang).
	if g.Err() == nil {
		t.Fatal("sticky error not recorded")
	}
}

func TestWorkerReplacement(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Channel: ChannelIbis}, // auto resource
		GravityOptions{Kernel: "phigrape-cpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	stars := ic.Plummer(32, 7)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatal(err)
	}
	// Snapshot state, then kill the worker.
	snap := stars.Clone()
	if err := g.Sync(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	tb.Daemon.KillWorker(g.worker)
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("death not detected")
	}
	// §5 future work, implemented: the next call transparently restarts
	// the worker from the last synced state.
	var out kernel.VecResult
	if err := g.Call(context.Background(), "get_positions", kernel.Empty{}, &out); err != nil {
		t.Fatalf("replacement failed: %v", err)
	}
	if len(out.V) != snap.Len() {
		t.Fatalf("replacement state: %d particles, want %d", len(out.V), snap.Len())
	}
	for i := range out.V {
		if out.V[i] != snap.Pos[i] {
			t.Fatalf("replacement lost state at particle %d", i)
		}
	}
	if err := g.EvolveTo(context.Background(), 2.0/64); err != nil {
		t.Fatal(err)
	}
}

func TestSelectResourcePolicy(t *testing.T) {
	tb, _ := labSim(t)
	d := tb.Deployment
	// GPU kernel: best GPU wins (GTX480 at TUD > C2050 at LGM > 9600GT).
	r, err := SelectResource(d, WorkerSpec{Kind: KindField, Kernel: "octgrav"})
	if err != nil || r != "das4-tud" {
		t.Fatalf("octgrav -> %q, %v", r, err)
	}
	// 8-node MPI worker: only das4-vu has 8 nodes.
	r, err = SelectResource(d, WorkerSpec{Kind: KindHydro, Nodes: 8})
	if err != nil || r != "das4-vu" {
		t.Fatalf("hydro x8 -> %q, %v", r, err)
	}
	// CPU-only kernel: biggest aggregate CPU (das4-vu).
	r, err = SelectResource(d, WorkerSpec{Kind: KindGravity, Kernel: "phigrape-cpu"})
	if err != nil || r != "das4-vu" {
		t.Fatalf("phigrape-cpu -> %q, %v", r, err)
	}
	// Impossible: 100 nodes.
	if _, err := SelectResource(d, WorkerSpec{Kind: KindHydro, Nodes: 100}); !errors.Is(err, ErrNoResource) {
		t.Fatalf("err = %v", err)
	}
}

func TestHydroMPIWorkerOverIbis(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tb, sim := labSim(t)
	_, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1, Gas: 200, GasFrac: 0.9, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHydro(context.Background(), WorkerSpec{Resource: "das4-vu", Nodes: 4, Channel: ChannelIbis},
		HydroOptions{SelfGravity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := h.EvolveTo(context.Background(), 0.01); err != nil {
		t.Fatal(err)
	}
	// The worker's intra-cluster traffic must be recorded as MPI —
	// Fig. 11's orange lines.
	if tb.Recorder.TotalByClass()["mpi"] == 0 {
		t.Fatal("no MPI traffic recorded for multi-node hydro worker")
	}
}

func TestUnitCheckedTime(t *testing.T) {
	_, sim := labSim(t)
	tm, err := sim.TimeQuantity(units.New(1, units.Myr))
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Fatalf("1 Myr = %v N-body", tm)
	}
	if _, err := sim.TimeQuantity(units.New(1, units.Kg)); err == nil {
		t.Fatal("mass accepted as time")
	}
}

func TestDaemonRejectsUnknownWorkerID(t *testing.T) {
	tb, _ := labSim(t)
	local := tb.Deployment.LocalHost()
	conn, err := tb.Net.Dial(local, local, DaemonPort)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := request{ID: reqIDs.Add(1), Worker: 999, Method: "evolve", Args: encode(kernel.EvolveArgs{})}
	if _, err := conn.Send(kernel.AppendRequest(nil, &req), 0); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := kernel.UnmarshalResponse(msg.Data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("daemon accepted request for unknown worker")
	}
}
