package core

import (
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
)

// service is the worker-side model host: it owns the kernel, a virtual
// clock, and the dispatch table. One service lives inside each worker
// process. Implementations are registered per kind by the physics
// packages (internal/phys/nbody, sph, tree, bridge, ...) via
// kernel.Register; core holds no per-kind construction logic.
type service = kernel.Service

// newService instantiates the registered service for a worker kind. The
// resource describes available devices; hosts are the job's allocated
// nodes; gang places the service as one rank of a domain-decomposed
// multi-worker kernel (nil for solo workers).
func newService(kind Kind, res *deploy.Resource, hosts []string, env *Env, gang *kernel.GangInfo) (service, error) {
	cfg := kernel.Config{Res: res, Hosts: hosts, Gang: gang}
	if env != nil {
		cfg.Net = env.Net
	}
	return kernel.New(string(kind), cfg)
}
