package core

import (
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/deploy"
	"jungle/internal/mpisim"
	"jungle/internal/phys/bridge"
	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/stellar"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

// service is the worker-side model host: it owns the kernel, a virtual
// clock, and the dispatch table. One service lives inside each worker
// process.
type service interface {
	// dispatch runs one call arriving at virtual time `at` and returns the
	// encoded result plus the worker's clock when the call completed.
	dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error)
	// close releases resources (MPI worlds).
	close()
}

// newService instantiates the service for a worker kind. The resource
// describes available devices; hosts are the job's allocated nodes.
func newService(kind Kind, res *deploy.Resource, hosts []string, env *Env) (service, error) {
	switch kind {
	case KindGravity:
		return &gravityService{res: res, clock: vtime.NewClock()}, nil
	case KindHydro:
		return newHydroService(res, hosts, env)
	case KindStellar:
		return &stellarService{clock: vtime.NewClock()}, nil
	case KindField:
		return &fieldService{res: res, clock: vtime.NewClock()}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadKind, kind)
	}
}

// pickDevice resolves a kernel name to the device it runs on.
func pickDevice(res *deploy.Resource, wantGPU bool) (*vtime.Device, error) {
	if wantGPU {
		if res.GPU == nil {
			return nil, fmt.Errorf("core: resource %q has no GPU for the requested kernel", res.Name)
		}
		return res.GPU, nil
	}
	if res.CPU == nil {
		return nil, fmt.Errorf("core: resource %q has no CPU device model", res.Name)
	}
	return res.CPU, nil
}

// gravityService hosts the PhiGRAPE worker.
type gravityService struct {
	res   *deploy.Resource
	clock *vtime.Clock
	sys   *nbody.System
	dev   *vtime.Device
}

func (s *gravityService) close() {}

func (s *gravityService) dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a setupGravityArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		wantGPU := a.Kernel == "phigrape-gpu"
		dev, err := pickDevice(s.res, wantGPU)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = effectiveDevice(dev, KindGravity)
		var kernel nbody.Kernel
		if wantGPU {
			kernel = nbody.NewGPUKernel(s.dev)
		} else {
			kernel = nbody.NewCPUKernel(s.dev)
		}
		s.sys = nbody.NewSystem(kernel, a.Eps)
		if a.Eta > 0 {
			s.sys.Eta = a.Eta
		}
		return encode(empty{}), s.clock.Now(), nil
	case "set_particles":
		var pl particlesPayload
		if err := decode(args, &pl); err != nil {
			return nil, s.clock.Now(), err
		}
		s.sys.SetParticles(payloadToParticles(pl))
		return encode(empty{}), s.clock.Now(), nil
	case "evolve":
		var a evolveArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.sys.EvolveTo(a.T); err != nil {
			return nil, s.clock.Now(), err
		}
		s.clock.Advance(s.dev.Time(s.sys.ResetFlops(), 0))
		return encode(empty{}), s.clock.Now(), nil
	case "kick":
		var a kickArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.sys.Kick(a.DV); err != nil {
			return nil, s.clock.Now(), err
		}
		return encode(empty{}), s.clock.Now(), nil
	case "get_positions":
		return encode(vecResult{V: append([]data.Vec3(nil), s.sys.Positions()...)}), s.clock.Now(), nil
	case "get_velocities":
		return encode(vecResult{V: append([]data.Vec3(nil), s.sys.Velocities()...)}), s.clock.Now(), nil
	case "get_masses":
		return encode(floatsResult{X: append([]float64(nil), s.sys.Masses()...)}), s.clock.Now(), nil
	case "set_mass":
		var a setMassArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if a.Index < 0 || a.Index >= s.sys.N() {
			return nil, s.clock.Now(), fmt.Errorf("core: set_mass index %d out of range", a.Index)
		}
		s.sys.SetMass(a.Index, a.Mass)
		return encode(empty{}), s.clock.Now(), nil
	case "energies":
		k, p := s.sys.Energy()
		s.clock.Advance(s.dev.Time(s.sys.ResetFlops(), 0))
		return encode(energiesResult{Kinetic: k, Potential: p}), s.clock.Now(), nil
	case "stats":
		return encode(statsResult{N: s.sys.N(), Time: s.sys.Time(), Steps: s.sys.Steps()}), s.clock.Now(), nil
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: gravity.%s", ErrNoSuchMethod, method)
	}
}

// hydroService hosts the Gadget worker: SPH over an mpisim world spanning
// the job's nodes (Fig. 5's "Worker 2 uses MPI").
type hydroService struct {
	res   *deploy.Resource
	gas   *sph.Gas
	world *mpisim.World
	dev   *vtime.Device
	clock *vtime.Clock
}

func newHydroService(res *deploy.Resource, hosts []string, env *Env) (service, error) {
	dev, err := pickDevice(res, false)
	if err != nil {
		return nil, err
	}
	s := &hydroService{res: res, gas: sph.New(), dev: effectiveDevice(dev, KindHydro), clock: vtime.NewClock()}
	if len(hosts) > 1 && env != nil {
		w, err := mpisim.NewWorld(env.Net, hosts)
		if err != nil {
			return nil, fmt.Errorf("core: hydro MPI world: %w", err)
		}
		s.world = w
	}
	return s, nil
}

func (s *hydroService) close() {
	if s.world != nil {
		s.world.Close()
	}
}

func (s *hydroService) dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a setupHydroArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		s.gas.SelfGravity = a.SelfGravity
		if a.EpsGrav > 0 {
			s.gas.EpsGrav = a.EpsGrav
		}
		if a.NTarget > 0 {
			s.gas.NTarget = a.NTarget
		}
		return encode(empty{}), s.clock.Now(), nil
	case "set_particles":
		var pl particlesPayload
		if err := decode(args, &pl); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.gas.SetParticles(payloadToParticles(pl)); err != nil {
			return nil, s.clock.Now(), err
		}
		return encode(empty{}), s.clock.Now(), nil
	case "evolve":
		var a evolveArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if s.world != nil {
			s.world.SyncTo(s.clock.Now())
			if err := s.gas.EvolveToParallel(a.T, s.world, s.dev); err != nil {
				return nil, s.clock.Now(), err
			}
			s.clock.AdvanceTo(s.world.MaxTime())
		} else {
			if err := s.gas.EvolveTo(a.T); err != nil {
				return nil, s.clock.Now(), err
			}
			s.clock.Advance(s.dev.Time(s.gas.ResetFlops(), 0))
		}
		return encode(empty{}), s.clock.Now(), nil
	case "kick":
		var a kickArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.gas.Kick(a.DV); err != nil {
			return nil, s.clock.Now(), err
		}
		return encode(empty{}), s.clock.Now(), nil
	case "get_positions":
		return encode(vecResult{V: append([]data.Vec3(nil), s.gas.Positions()...)}), s.clock.Now(), nil
	case "get_masses":
		return encode(floatsResult{X: append([]float64(nil), s.gas.Masses()...)}), s.clock.Now(), nil
	case "inject_energy":
		var a injectArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		s.gas.InjectEnergy(a.Center, a.Radius, a.E)
		return encode(empty{}), s.clock.Now(), nil
	case "energies":
		k, th, p := s.gas.Energy()
		s.clock.Advance(s.dev.Time(s.gas.ResetFlops(), 0))
		return encode(energiesResult{Kinetic: k, Thermal: th, Potential: p}), s.clock.Now(), nil
	case "stats":
		return encode(statsResult{N: s.gas.N(), Time: s.gas.Time(), Steps: s.gas.Steps()}), s.clock.Now(), nil
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: hydro.%s", ErrNoSuchMethod, method)
	}
}

// stellarService hosts the SSE worker ("nearly trivial" lookups — no
// device model needed beyond a tiny per-call cost).
type stellarService struct {
	clock   *vtime.Clock
	adapter *bridge.SSEAdapter
}

func (s *stellarService) close() {}

func (s *stellarService) dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a setupStellarArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		pop, err := stellar.NewPopulation(stellar.New(), a.MassesMSun)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		ad, err := bridge.NewSSEAdapter(pop, a.MyrPerTime, a.NBodyPerMSun)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.adapter = ad
		return encode(empty{}), s.clock.Now(), nil
	case "evolve":
		var a evolveArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		events, err := s.adapter.EvolveTo(a.T)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		out := stellarEvolveResult{}
		for _, ev := range events {
			out.Events = append(out.Events, stellarEventPayload{
				Index: ev.Index, MassLoss: ev.MassLoss, SN: ev.SN,
			})
		}
		s.clock.Advance(time.Duration(len(s.adapter.Pop.Stars)) * 200 * time.Nanosecond)
		return encode(out), s.clock.Now(), nil
	case "stats":
		n := 0
		if s.adapter != nil {
			n = len(s.adapter.Pop.Stars)
		}
		return encode(statsResult{N: n}), s.clock.Now(), nil
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: stellar.%s", ErrNoSuchMethod, method)
	}
}

// fieldService hosts the coupling worker (Octgrav on GPUs, Fi on CPUs).
type fieldService struct {
	res    *deploy.Resource
	clock  *vtime.Clock
	kernel *tree.Kernel
	dev    *vtime.Device
	eps    float64
}

func (s *fieldService) close() {}

func (s *fieldService) dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a setupFieldArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		wantGPU := a.Kernel == "octgrav"
		dev, err := pickDevice(s.res, wantGPU)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = effectiveDevice(dev, KindField)
		if wantGPU {
			s.kernel = tree.NewOctgrav(s.dev)
		} else {
			s.kernel = tree.NewFi(s.dev)
		}
		if a.Theta > 0 {
			s.kernel.Theta = a.Theta
		}
		s.eps = a.Eps
		return encode(empty{}), s.clock.Now(), nil
	case "field_at":
		var a fieldAtArgs
		if err := decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		acc, pot, flops := s.kernel.FieldAt(a.SrcMass, a.SrcPos, a.Targets, s.eps)
		s.clock.Advance(s.dev.Time(flops, 0))
		return encode(fieldAtResult{Acc: acc, Pot: pot}), s.clock.Now(), nil
	case "stats":
		return encode(statsResult{}), s.clock.Now(), nil
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: coupling.%s", ErrNoSuchMethod, method)
	}
}
