package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/core/kernel"
	"jungle/internal/smartsockets"
)

// probeFactory attaches a fresh SmartSockets factory to a testbed host,
// registered through the hub the deployment already runs on that host.
func probeFactory(t *testing.T, tb *Testbed, host string, base int) *smartsockets.Factory {
	t.Helper()
	f, err := smartsockets.NewFactory(tb.Net, host, base, host)
	if err != nil {
		t.Fatalf("factory on %s: %v", host, err)
	}
	t.Cleanup(f.Close)
	return f
}

// probeResponder starts a goodput responder on the factory, dispatching
// inbound connections on their first frame the way the peer plane does.
func probeResponder(t *testing.T, f *smartsockets.Factory, port int) smartsockets.Address {
	t.Helper()
	l, err := f.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				msg, err := conn.Recv()
				if err != nil || !smartsockets.IsProbeFrame(msg.Data) {
					conn.Close()
					return
				}
				f.ServeProbeConn(conn, msg.Data, msg.Arrival)
			}()
		}
	}()
	return l.Addr()
}

// assertGoodputEdges probes every listed directed edge and requires the
// measurement within 10% of the configured link bandwidth, and the sample
// recorded in the testbed's link-health view.
func assertGoodputEdges(t *testing.T, tb *Testbed, edges []struct {
	from, to string
	want     float64
}, base int) {
	t.Helper()
	factories := map[string]*smartsockets.Factory{}
	responders := map[string]smartsockets.Address{}
	next := base
	for _, e := range edges {
		for _, host := range []string{e.from, e.to} {
			if factories[host] == nil {
				f := probeFactory(t, tb, host, next)
				factories[host] = f
				responders[host] = probeResponder(t, f, next+50)
				next += 100
			}
		}
	}
	at := time.Second
	for _, e := range edges {
		bw, doneAt, err := factories[e.from].Goodput(responders[e.to], at)
		if err != nil {
			t.Fatalf("goodput %s -> %s: %v", e.from, e.to, err)
		}
		if bw < e.want*0.9 || bw > e.want*1.1 {
			t.Errorf("goodput %s -> %s = %.3g B/s, want within 10%% of %.3g", e.from, e.to, bw, e.want)
		}
		if sample, ok := tb.Recorder.Goodput(e.from, e.to); !ok || sample.BytesPerSec != bw {
			t.Errorf("link-health sample for %s -> %s = (%+v, %v), want recorded %.3g", e.from, e.to, sample, ok, bw)
		}
		at = doneAt + time.Second
	}
	if !strings.Contains(tb.Recorder.RenderGoodput(), "GOODPUT") {
		t.Error("RenderGoodput output missing header")
	}
}

// TestGoodputProbeAccuracyDSL: on the DSL testbed the probe must recover
// the configured bandwidth of both the slow home uplinks and the fast
// inter-site lightpath, in both directions (every host is Open, so these
// ride direct virtual connections).
func TestGoodputProbeAccuracyDSL(t *testing.T) {
	tb, _ := dslSim(t)
	assertGoodputEdges(t, tb, []struct {
		from, to string
		want     float64
	}{
		{"home", "site-a", 1.25e6},
		{"site-a", "home", 1.25e6},
		{"home", "site-b", 1.25e6},
		{"site-b", "home", 1.25e6},
		{"site-a", "site-b", tenG},
		{"site-b", "site-a", tenG},
	}, 40000)
	// Probe traffic rides ordinary virtual connections under its own class
	// (direct connections here, so the class survives end to end).
	if tb.Recorder.TotalByClass()["probe"] == 0 {
		t.Error("probe traffic not recorded under class \"probe\"")
	}
}

// TestGoodputProbeAccuracySC11 covers the asymmetric edge types of the
// SC11 topology: the NAT'd laptop (outbound-only, so probing it crosses a
// reverse/routed setup), SSH-only cluster frontends, and the SSH-only LGM
// host. Every measurement must still land within 10% of the configured
// link, in both directions.
func TestGoodputProbeAccuracySC11(t *testing.T) {
	tb, err := NewSC11Testbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	assertGoodputEdges(t, tb, []struct {
		from, to string
		want     float64
	}{
		{"laptop", "das4-vu.fe", gbE},
		{"das4-vu.fe", "laptop", gbE}, // one-way: the laptop accepts nothing inbound
		{"das4-vu.fe", "das4-uva.fe", tenG},
		{"das4-uva.fe", "das4-vu.fe", tenG},
		{"das4-vu.fe", "lgm", gbE},
		{"lgm", "das4-vu.fe", gbE},
	}, 40000)
}

// TestStripedTransferFasterThanSingle: with a per-stream cap on the
// inter-site lightpath (the long-fat-network regime striping exists for),
// a striped transfer must model at least a 2x virtual-time win over the
// single stream, and be counted as Striped.
func TestStripedTransferFasterThanSingle(t *testing.T) {
	tb, sim := dslSim(t)
	if err := tb.Net.SetLinkStreamCap("site-a", "site-b", 1.25e7); err != nil {
		t.Fatal(err)
	}
	const n = 50000
	src, dst := transferPair(t, sim, ic.Plummer(n, 41))

	start := sim.Elapsed()
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	single := sim.Elapsed() - start

	sim.TransferStripes = 8
	start = sim.Elapsed()
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	striped := sim.Elapsed() - start

	if float64(single) < 2*float64(striped) {
		t.Fatalf("striped transfer %v vs single %v: want >= 2x win", striped, single)
	}
	t.Logf("modelled per-transfer time: striped %v, single %v (%.1fx)",
		striped, single, float64(single)/float64(striped))
	st := sim.TransferStats()
	if st.Direct != 1 || st.Striped != 1 || st.StripeFallback != 0 || st.Fallback != 0 {
		t.Fatalf("transfer stats %+v, want one single-stream direct and one striped", st)
	}
	assertStateMatches(t, src, dst, n)
}

// TestStripedTransferStripeKillFallsBack kills one stripe connection
// mid-transfer: the striped attempt must abort cleanly, the single-stream
// retry must complete the transfer, and the coupler must observe a
// structured transport-class error through OnTransferFallback while
// counting the transfer as a stripe fallback (not a hairpin fallback).
func TestStripedTransferStripeKillFallsBack(t *testing.T) {
	testStripeFault = func(i int) bool { return i == 1 }
	t.Cleanup(func() { testStripeFault = nil })

	_, sim := dslSim(t)
	sim.TransferStripes = 4
	var classified []error
	sim.OnTransferFallback = func(err error) { classified = append(classified, err) }

	const n = 6000
	src, dst := transferPair(t, sim, ic.Plummer(n, 43))
	done := make(chan error, 1)
	go func() { done <- sim.TransferState(context.Background(), src, dst) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("transfer did not complete over the single-stream fallback: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer hung after stripe kill")
	}

	st := sim.TransferStats()
	if st.Direct != 1 || st.Striped != 0 || st.StripeFallback != 1 || st.Fallback != 0 {
		t.Fatalf("transfer stats %+v, want one direct with stripe fallback", st)
	}
	if len(classified) != 1 {
		t.Fatalf("fallback hook fired %d times, want 1", len(classified))
	}
	if !errors.Is(classified[0], ErrTransport) {
		t.Fatalf("stripe-failure error %v not classified as ErrTransport", classified[0])
	}
	if !strings.Contains(classified[0].Error(), "striped") {
		t.Fatalf("stripe-failure error %q does not name the striped path", classified[0])
	}
	assertStateMatches(t, src, dst, n)
}

// TestStripedTransferCorruptionFallsBack corrupts one stripe's bytes after
// the manifest digests were computed: the receiver must reject the
// reassembled payload on the per-stripe digest (never acking it), and the
// sender must complete over the single stream.
func TestStripedTransferCorruptionFallsBack(t *testing.T) {
	testStripeCorrupt = func(i int, b []byte) []byte {
		if i != 2 {
			return b
		}
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0xFF
		return c
	}
	t.Cleanup(func() { testStripeCorrupt = nil })

	_, sim := dslSim(t)
	sim.TransferStripes = 4
	var classified []error
	sim.OnTransferFallback = func(err error) { classified = append(classified, err) }

	const n = 6000
	src, dst := transferPair(t, sim, ic.Plummer(n, 47))
	done := make(chan error, 1)
	go func() { done <- sim.TransferState(context.Background(), src, dst) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("transfer did not complete after stripe corruption: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer hung after stripe corruption")
	}

	st := sim.TransferStats()
	if st.Direct != 1 || st.Striped != 0 || st.StripeFallback != 1 || st.Fallback != 0 {
		t.Fatalf("transfer stats %+v, want one direct with stripe fallback", st)
	}
	if len(classified) != 1 || !errors.Is(classified[0], ErrTransport) {
		t.Fatalf("fallback hook = %v, want one ErrTransport-classified error", classified)
	}
	assertStateMatches(t, src, dst, n)
}

// TestTransferCompressionShrinksWire: with the delta-flate codec on, the
// peer plane must carry measurably fewer bulk bytes for the same transfer,
// and the applied state must stay bitwise identical.
func TestTransferCompressionShrinksWire(t *testing.T) {
	tb, sim := dslSim(t)
	const n = 4000
	src, dst := transferPair(t, sim, ic.Plummer(n, 51))

	before := tb.Recorder.TotalByClass()["peer"]
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	rawWire := tb.Recorder.TotalByClass()["peer"] - before

	sim.TransferCodec = kernel.CodecDeltaFlate
	before = tb.Recorder.TotalByClass()["peer"]
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	zWire := tb.Recorder.TotalByClass()["peer"] - before

	// Fresh Plummer doubles are mantissa-noise; the structural codec still
	// has to win measurably (the big ratios belong to the ref-delta
	// checkpoint path, where a base frame exists).
	if zWire*10 > rawWire*9 {
		t.Fatalf("compressed transfer moved %d peer bytes vs %d raw: want >= 10%% shrink", zWire, rawWire)
	}
	t.Logf("peer-class wire bytes: raw %d, delta-flate %d (%.1fx)", rawWire, zWire, float64(rawWire)/float64(zWire))
	assertStateMatches(t, src, dst, n)
}

// TestCheckpointRefDeltaShrinksWire is the acceptance bar for the
// checkpoint codec: on the SC11 testbed, a slowly-evolving model's second
// checkpoint must cross the wire at least 3x smaller than its raw snapshot
// by ref-delta-encoding against the blob the store already holds.
func TestCheckpointRefDeltaShrinksWire(t *testing.T) {
	tb, err := NewSC11Testbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	sim := NewSimulation(context.Background(), tb.Daemon, nil)
	t.Cleanup(func() { sim.Stop() })
	sim.CheckpointCodec = kernel.CodecRefDelta

	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(256, 29)); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, 1.0/64)

	man1, err := sim.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wire1, ok := tb.Daemon.CheckpointWireBytes(man1.Models[0].Blob)
	if !ok {
		t.Fatal("first checkpoint has no recorded wire size")
	}

	// A slow evolution between periodic checkpoints: a tiny extra leg, so
	// every phase-space word keeps its high mantissa bits.
	evolveLegs(t, g, 1.0/64+1e-11)
	man2, err := sim.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wire2, ok := tb.Daemon.CheckpointWireBytes(man2.Models[0].Blob)
	if !ok {
		t.Fatal("second checkpoint has no recorded wire size")
	}
	raw := len(man2.Models[0].Snapshot)

	if st := sim.TransferStats(); st.Fallback != 0 || st.Hairpin != 0 {
		t.Fatalf("transfer stats %+v: ref-delta checkpoints must stay on the direct path", st)
	}
	if wire2*3 > raw {
		t.Fatalf("second checkpoint crossed the wire in %d bytes (raw %d, first %d): want >= 3x shrink",
			wire2, raw, wire1)
	}
	t.Logf("checkpoint wire bytes: raw snapshot %d, first (delta-flate) %d, second (ref-delta) %d (%.1fx)",
		raw, wire1, wire2, float64(raw)/float64(wire2))

	// The store must hold the decoded raw blob, not the wire form: a
	// resume from the manifest must restore bitwise-correct state.
	if blob, ok := tb.Daemon.CheckpointBlob(man2.Models[0].Blob); !ok || len(blob) != raw {
		t.Fatalf("store blob %d bytes, want raw %d", len(blob), raw)
	}
}
