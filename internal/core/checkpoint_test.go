package core

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
)

// evolveStates drives a gravity model through the same two-leg evolve
// (t1, then t2) every checkpoint test uses, and returns the final
// phase-space state and energies.
func evolveLegs(t *testing.T, g *Gravity, legs ...float64) {
	t.Helper()
	for _, tEnd := range legs {
		if err := g.EvolveTo(context.Background(), tEnd); err != nil {
			t.Fatal(err)
		}
	}
}

func finalState(t *testing.T, g *Gravity) (pos, vel []data.Vec3, kin, pot float64) {
	t.Helper()
	st, err := g.GetState(nil, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	kin, pot, err = g.Energy(nil)
	if err != nil {
		t.Fatal(err)
	}
	return st.Vec(data.AttrPos), st.Vec(data.AttrVel), kin, pot
}

func mustMatchStates(t *testing.T, what string, wantPos, wantVel, gotPos, gotVel []data.Vec3, wantKin, wantPot, gotKin, gotPot float64) {
	t.Helper()
	if len(wantPos) != len(gotPos) {
		t.Fatalf("%s: particle count %d vs %d", what, len(gotPos), len(wantPos))
	}
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("%s: particle %d diverged:\n got (%v, %v)\nwant (%v, %v)",
				what, i, gotPos[i], gotVel[i], wantPos[i], wantVel[i])
		}
	}
	if wantKin != gotKin || wantPot != gotPot {
		t.Fatalf("%s: energies (%v, %v) != baseline (%v, %v)", what, gotKin, gotPot, wantKin, wantPot)
	}
}

// TestCheckpointResumeSimulation: a checkpointed session saved to disk
// and resumed on the same daemon must continue bit-compatibly — the
// resumed trajectory is identical to letting the original session keep
// running, and the resumed coupler clock continues from the manifest's.
func TestCheckpointResumeSimulation(t *testing.T) {
	tb, sim := labSim(t)
	const t1, t2 = 1.0 / 64, 1.0 / 16
	stars := ic.Plummer(64, 17)

	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, t1)

	man, err := sim.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Models) != 1 || man.Models[0].Kind != KindGravity {
		t.Fatalf("manifest models = %+v", man.Models)
	}
	if man.VTime <= 0 {
		t.Fatalf("manifest vtime = %v", man.VTime)
	}
	// The blob traveled the direct path into the daemon store.
	if stats := sim.TransferStats(); stats.Direct != 1 || stats.Fallback != 0 {
		t.Fatalf("checkpoint transfer stats %+v, want 1 direct", stats)
	}

	// A second checkpoint supersedes the first blob in the daemon store
	// (one snapshot per model, not one per checkpoint — long runs must
	// not accumulate).
	man2, err := sim.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Daemon.CheckpointBlob(man.Models[0].Blob); ok {
		t.Fatalf("superseded blob %d still in the store", man.Models[0].Blob)
	}
	if _, ok := tb.Daemon.CheckpointBlob(man2.Models[0].Blob); !ok {
		t.Fatalf("current blob %d missing from the store", man2.Models[0].Blob)
	}
	man = man2

	// Manifest round-trips through disk (the amuse-run -resume path).
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := man.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the original session keeps running to t2.
	evolveLegs(t, g, t2)
	wantPos, wantVel, wantKin, wantPot := finalState(t, g)
	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}

	// Resume from the manifest and run the same leg.
	sim2, models, err := ResumeSimulation(context.Background(), tb.Daemon, nil, loaded)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim2.Stop() })
	if sim2.Elapsed() < loaded.VTime {
		t.Fatalf("resumed clock %v behind manifest %v", sim2.Elapsed(), loaded.VTime)
	}
	if len(models) != 1 || models[0].Kind() != KindGravity {
		t.Fatalf("resumed models = %v", models)
	}
	g2 := models[0].AsGravity()
	if g2.N() != stars.Len() {
		t.Fatalf("resumed N = %d, want %d", g2.N(), stars.Len())
	}
	evolveLegs(t, g2, t2)
	gotPos, gotVel, gotKin, gotPot := finalState(t, g2)
	mustMatchStates(t, "resumed run", wantPos, wantVel, gotPos, gotVel, wantKin, wantPot, gotKin, gotPot)
}

// TestSoloRestoreUnderFault kills a solo worker mid-evolve. With
// replacement enabled and a checkpoint taken, the in-flight evolve must
// transparently replay on a restored substitute, and the final trajectory
// must be bit-identical to an uninterrupted run.
func TestSoloRestoreUnderFault(t *testing.T) {
	tb, sim := labSim(t)
	const t1, t2 = 1.0 / 64, 1.0 / 8
	stars := ic.Plummer(256, 29)

	// Baseline: uninterrupted worker, same two evolve legs.
	base, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, base, t1, t2)
	wantPos, wantVel, wantKin, wantPot := finalState(t, base)

	// Fault run: checkpoint at t1, die midway through the t2 leg.
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, t1)
	if _, err := sim.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	died := make(chan int, 4)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	call := g.GoEvolveTo(t2)
	time.Sleep(20 * time.Millisecond) // let the worker get into the integration
	tb.Daemon.KillWorker(g.worker)
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("worker death not observed")
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := call.Wait(waitCtx); err != nil {
		t.Fatalf("evolve across worker death: %v", err)
	}
	gotPos, gotVel, gotKin, gotPot := finalState(t, g)
	mustMatchStates(t, "restored solo run", wantPos, wantVel, gotPos, gotVel, wantKin, wantPot, gotKin, gotPot)
}

// TestGangRankRestoreUnderFault kills one rank of a K=3 gang midway
// through a sharded evolve (the rank dies inside the step's halo
// exchange, aborting the survivors' collectives). With a checkpoint
// taken, the rank must be transparently replaced — job restarted, links
// re-wired by gang_init, state restored on every rank — and the final
// trajectory must be bit-identical to an uninterrupted run.
func TestGangRankRestoreUnderFault(t *testing.T) {
	tb, sim := labSim(t)
	const t1, t2 = 1.0 / 64, 1.0 / 8
	stars := ic.Plummer(256, 31)

	// Baseline: an uninterrupted solo worker (gangs reproduce solo results
	// bit for bit, so this is also the gang baseline).
	base, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, base, t1, t2)
	wantPos, wantVel, _, _ := finalState(t, base)

	gang, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 3}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	gang.EnableReplacement()
	if err := gang.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, gang, t1)
	if _, err := sim.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := gang.GangWorkers()

	died := make(chan int, 4)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	call := gang.GoEvolveTo(t2)
	time.Sleep(20 * time.Millisecond) // let the ranks get into the halo exchange
	victim := before[1]
	tb.Daemon.KillWorker(victim)
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("rank death not observed by the pool")
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := call.Wait(waitCtx); err != nil {
		t.Fatalf("evolve across rank death: %v", err)
	}
	after := gang.GangWorkers()
	if len(after) != 3 || after[1] == victim {
		t.Fatalf("rank 1 not replaced: workers %v -> %v", before, after)
	}
	if after[0] != before[0] || after[2] != before[2] {
		t.Fatalf("surviving ranks restarted unnecessarily: %v -> %v", before, after)
	}

	gotPos, gotVel, kinG, potG := finalState(t, gang)
	// Positions/velocities bit-identical; energies reduce across ranks in
	// a different summation order than solo, so compare them against a
	// fresh gang baseline instead for the bitwise check.
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("particle %d diverged after rank recovery", i)
		}
	}
	if kinG+potG >= 0 {
		t.Fatalf("recovered gang energies non-bound: kin=%v pot=%v", kinG, potG)
	}

	// The recovered gang keeps working: another leg must still match a
	// solo run of the same leg.
	evolveLegs(t, base, 3.0/16)
	evolveLegs(t, gang, 3.0/16)
	wantPos2, wantVel2, _, _ := finalState(t, base)
	gotPos2, gotVel2, _, _ := finalState(t, gang)
	for i := range wantPos2 {
		if wantPos2[i] != gotPos2[i] || wantVel2[i] != gotVel2[i] {
			t.Fatalf("particle %d diverged on the post-recovery leg", i)
		}
	}
}

// TestCheckpointHairpinAndFallback: workers without a peer plane
// checkpoint over the RPC channel from the start (hairpin), and a direct
// stream that dies mid-flight falls back the same way TransferState does
// — the checkpoint still completes.
func TestCheckpointHairpinAndFallback(t *testing.T) {
	_, sim := labSim(t)
	// An in-process mpi-channel worker has no peer plane.
	local, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "desktop", Channel: ChannelMPI}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetParticles(ic.Plummer(16, 3)); err != nil {
		t.Fatal(err)
	}
	man, err := sim.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats := sim.TransferStats(); stats.Hairpin != 1 || stats.Direct != 0 {
		t.Fatalf("stats %+v, want 1 hairpin", stats)
	}
	if len(man.Models) != 1 || len(man.Models[0].Snapshot) == 0 {
		t.Fatalf("hairpin checkpoint produced no blob: %+v", man.Models)
	}

	// Remote worker with an injected stream fault: direct path fails, the
	// fallback pull completes the checkpoint.
	remote, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.SetParticles(ic.Plummer(16, 4)); err != nil {
		t.Fatal(err)
	}
	var fellBack error
	sim.OnTransferFallback = func(err error) { fellBack = err }
	testPeerStreamFault = func() bool { return true }
	defer func() { testPeerStreamFault = nil }()
	man, err = sim.Checkpoint(context.Background())
	testPeerStreamFault = nil
	if err != nil {
		t.Fatalf("checkpoint with dead stream: %v", err)
	}
	if stats := sim.TransferStats(); stats.Fallback != 1 {
		t.Fatalf("stats %+v, want 1 fallback", stats)
	}
	if fellBack == nil {
		t.Fatal("OnTransferFallback not invoked")
	}
	if len(man.Models) != 2 {
		t.Fatalf("manifest models = %d, want 2", len(man.Models))
	}
	for i, mc := range man.Models {
		if len(mc.Snapshot) == 0 {
			t.Fatalf("model %d has empty snapshot", i)
		}
	}
}
