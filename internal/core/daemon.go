package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/gat"
	"jungle/internal/ipl"
	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// Daemon is the per-user Ibis daemon of Fig. 5: it runs on the user's
// machine, accepts coupler connections over a local loopback socket, starts
// workers on remote resources through IbisDeploy/JavaGAT, and relays RPC to
// each worker's proxy over IPL. "The user must start this daemon on his or
// her machine before running any simulation, but it can be re-used for all
// simulations run."
type Daemon struct {
	env        *Env
	deployment *deploy.Deployment
	registry   *ipl.Registry
	ibis       *ipl.Ibis
	listener   *vnet.Listener

	mu       sync.Mutex
	workers  map[int]*workerHandle
	byMember map[string]*workerHandle // member identifier string -> handle
	nextID   int
	closed   bool
	// Session worker-id blocks: each named session gets a disjoint id
	// range (slot * sessionIDBlock), so everything keyed on the worker id
	// — pool port names, the per-id peer/loopback port block, checkpoint
	// refs — is namespaced per session. The default session ("") keeps the
	// plain nextID sequence, so single-tenant daemons number workers
	// exactly as before.
	sessionSlots map[string]int // session -> block slot (1-based)
	sessionSeq   map[string]int // session -> ids handed out in its block

	// Checkpoint store: snapshot blobs streamed by worker proxies over the
	// daemon's own peer listener (or deposited directly by the coupler's
	// hairpin path) land here, keyed by blob ref. The store is in-memory;
	// persistence is the manifest's job (Manifest.Save inlines the blobs).
	// The listener opens lazily on the first checkpoint: its overlay port
	// registration is real virtual traffic, and sessions that never
	// checkpoint must stay timing-identical to pre-checkpoint builds.
	// ckptClosed is set (under ckptMu) by Close before it waits on wg, so
	// a racing first checkpoint cannot open the listener after teardown
	// already passed it by.
	ckptMu     sync.Mutex
	ckptLis    *smartsockets.Listener
	ckptClosed bool
	ckptBlobs  map[uint64][]byte
	// ckptOwner tags store entries with the session that made them, so an
	// evicted or detached session's blobs can be trimmed in one sweep
	// without touching other tenants' checkpoints.
	ckptOwner map[uint64]string
	// ckptWire records, per blob ref, the encoded size that actually
	// crossed the peer plane (post-compression, pre-decode) — what the
	// compression codecs are measured by. Hairpinned blobs have no entry.
	ckptWire map[uint64]int
	// ckptStripes reassembles striped checkpoint streams arriving on the
	// store's listener.
	ckptStripes *stripeBox

	// ReadyTimeout bounds (in real time) how long StartWorker waits for a
	// worker to announce itself.
	ReadyTimeout time.Duration

	// OnWorkerDied is invoked (if set) when the pool reports a worker
	// death; used for monitoring and by the replacement logic.
	OnWorkerDied func(id int)

	wg sync.WaitGroup
}

// sessionIDBlock is the worker-id range reserved per named session.
const sessionIDBlock = 4096

// workerHandle is the daemon-side state for one worker.
type workerHandle struct {
	id   int
	spec WorkerSpec
	job  *gat.Job

	mu       sync.Mutex
	member   ipl.Identifier
	sendPort *ipl.SendPort
	pending  map[uint64]*vnet.Conn // request id -> coupler conn awaiting reply
	dead     bool
	// Capacity accounting: the nodes this worker committed on its
	// resource, released exactly once (released guards the stop/fail/
	// error-path races) when the worker goes away.
	capNodes int
	released bool

	ready chan ipl.Identifier
	// sockets channel: the worker's direct address instead of IPL state.
	socketHost string
	socketPort int
}

// WorkerSpec describes a worker to start — the per-worker properties the
// paper's users put in their simulation scripts (§5: channel, resource
// name, node count), plus the gang size for domain-decomposed kernels.
type WorkerSpec struct {
	Kind     Kind
	Kernel   string // "phigrape-cpu" | "phigrape-gpu" | "octgrav" | "fi" | "" (hydro/stellar)
	Resource string // deployment resource name; "" = automatic selection
	Nodes    int    // nodes for the worker's job (MPI workers use >1)
	Channel  string // "mpi" | "sockets" | "ibis" (default "ibis")
	// Workers is the gang size: a value K > 1 deploys the kernel as K
	// rank workers running one domain-decomposed instance behind a single
	// model handle. Gangs require the ibis channel (ranks exchange halos
	// over their peer planes) and a kind whose service implements
	// kernel.Shardable; ranks are co-located on one resource so the halo
	// traffic rides the fast intra-site links. 0 and 1 mean a solo worker.
	Workers int
	// Session names the control-plane session the worker belongs to ("" =
	// the daemon's default session). Sessions namespace everything derived
	// from the worker id — pool identities, peer-plane ports, checkpoint
	// refs — and scope capacity accounting, so concurrent sessions on one
	// daemon cannot collide. Simulations stamp it automatically from their
	// own session label; only direct Daemon users set it by hand.
	Session string
}

// NewDaemon starts the daemon for a deployment: an IPL registry and the
// daemon's own pool instance on the local host, plus the loopback RPC
// listener the coupler connects to.
func NewDaemon(dep *deploy.Deployment, pool string) (*Daemon, error) {
	local := dep.LocalHost()
	reg, err := ipl.NewRegistry(dep.Net, local, local)
	if err != nil {
		return nil, fmt.Errorf("core: daemon registry: %w", err)
	}
	env := &Env{Net: dep.Net, Deployment: dep, Pool: pool, Registry: reg.Addr()}
	d := &Daemon{
		env: env, deployment: dep, registry: reg,
		workers:      make(map[int]*workerHandle),
		byMember:     make(map[string]*workerHandle),
		sessionSlots: make(map[string]int),
		sessionSeq:   make(map[string]int),
		ReadyTimeout: 30 * time.Second,
	}

	dep.Catalog.Register("amuse-worker", func(ctx *gat.Context) error {
		return workerMain(env, ctx)
	})
	dep.Catalog.Register("amuse-socket-worker", func(ctx *gat.Context) error {
		return socketWorkerMain(env, ctx)
	})

	ib, err := ipl.Create(dep.Net, ipl.Config{
		Pool: pool, Host: local, BasePort: workerPortBase - 100,
		HubHost: local, Registry: reg.Addr(),
	})
	if err != nil {
		reg.Close()
		return nil, fmt.Errorf("core: daemon pool join: %w", err)
	}
	d.ibis = ib
	if _, err := ib.Elect(electionDaemon); err != nil {
		ib.End()
		reg.Close()
		return nil, err
	}

	l, err := dep.Net.Listen(local, DaemonPort)
	if err != nil {
		ib.End()
		reg.Close()
		return nil, fmt.Errorf("core: daemon listener: %w", err)
	}
	d.listener = l
	d.ckptBlobs = make(map[uint64][]byte)
	d.ckptWire = make(map[uint64]int)
	d.ckptOwner = make(map[uint64]string)
	d.ckptStripes = newStripeBox(func(id uint64, payload []byte, arrival time.Duration, mconn *smartsockets.VirtualConn) {
		if !d.storeCheckpointWire(id, payload) {
			mconn.Close() // no ack: the sender falls back to a single stream
			return
		}
		mconn.Send(kernel.AppendTransferAck(nil, id), arrival)
		mconn.Close()
	})
	d.wg.Add(2)
	go d.acceptLoop()
	go d.eventLoop()
	return d, nil
}

// Env returns the daemon's worker environment.
func (d *Daemon) Env() *Env { return d.env }

// Deployment returns the deployment the daemon manages.
func (d *Daemon) Deployment() *deploy.Deployment { return d.deployment }

// Close shuts the daemon down: workers' ports close, jobs are canceled.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	handles := make([]*workerHandle, 0, len(d.workers))
	for _, wh := range d.workers {
		handles = append(handles, wh)
	}
	d.mu.Unlock()
	for _, wh := range handles {
		wh.mu.Lock()
		sp := wh.sendPort
		job := wh.job
		wh.mu.Unlock()
		if sp != nil {
			sp.Close()
		}
		if job != nil {
			job.Cancel()
		}
	}
	d.listener.Close()
	d.ckptMu.Lock()
	d.ckptClosed = true
	ckptLis := d.ckptLis
	d.ckptMu.Unlock()
	if ckptLis != nil {
		ckptLis.Close()
	}
	d.ckptStripes.close()
	d.ibis.End()
	d.registry.Close()
	d.wg.Wait()
}

// checkpointLoop accepts snapshot streams on the daemon's peer listener:
// a transfer-framed blob is decoded, filed in the store and acknowledged
// at its virtual arrival time; manifest and stripe frames feed the store's
// striped-transfer reassembler; probe frames get the factory's responder
// (the store's listener answers goodput probes like any worker's).
func (d *Daemon) checkpointLoop(lis *smartsockets.Listener) {
	defer d.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			conn.SetClass("peer")
			msg, err := conn.Recv()
			if err != nil {
				conn.Close()
				return
			}
			switch {
			case smartsockets.IsProbeFrame(msg.Data):
				d.ibis.Factory().ServeProbeConn(conn, msg.Data, msg.Arrival)
				return
			case kernel.IsManifest(msg.Data):
				d.ckptStripes.manifest(conn, msg.Data, msg.Arrival)
				return
			case kernel.IsStripe(msg.Data):
				d.ckptStripes.stripe(msg.Data, msg.Arrival)
				conn.Close()
				return
			}
			defer conn.Close()
			id, blob, abort, err := kernel.UnmarshalTransfer(msg.Data)
			if err != nil || abort {
				return
			}
			if !d.storeCheckpointWire(id, blob) {
				return // undecodable: no ack, the sender's offer fails over
			}
			conn.Send(kernel.AppendTransferAck(nil, id), msg.Arrival)
		}()
	}
}

// storeCheckpointWire decodes an arriving checkpoint payload (compressed
// frames resolve their ref-delta base against the blobs the store already
// holds) and files the RAW snapshot under id, recording the wire size.
// Returns false when the payload does not decode — the stream then goes
// unacknowledged and the offering side falls back.
func (d *Daemon) storeCheckpointWire(id uint64, wire []byte) bool {
	raw, err := kernel.MaybeDecompressState(wire, func(ref uint64) ([]byte, bool) {
		return d.CheckpointBlob(ref)
	})
	if err != nil {
		return false
	}
	if !kernel.IsCompressedState(wire) {
		// The raw payload aliases the stream's message buffer; the store
		// outlives the stream. (Decompressed payloads are already fresh.)
		raw = append([]byte(nil), raw...)
	}
	d.ckptMu.Lock()
	d.ckptBlobs[id] = raw
	d.ckptWire[id] = len(wire)
	d.ckptMu.Unlock()
	return true
}

// CheckpointPeerAddr returns the address worker proxies stream checkpoint
// blobs to — the daemon's own peer listener on the overlay — opening the
// listener on first use. ok is false if the daemon is closed or the
// listener cannot open (callers fall back to the RPC-plane pull).
func (d *Daemon) CheckpointPeerAddr() (smartsockets.Address, bool) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// The closed flag and the lazy open are serialized by ckptMu: either
	// Close set the flag first (no listener opens), or the listener and
	// its wg.Add exist before Close reaches them (clean teardown).
	if d.ckptClosed {
		return smartsockets.Address{}, false
	}
	if d.ckptLis == nil {
		lis, err := d.ibis.ListenPeer()
		if err != nil {
			return smartsockets.Address{}, false
		}
		d.ckptLis = lis
		d.wg.Add(1)
		go d.checkpointLoop(lis)
	}
	return ipl.PeerAddr(d.ibis.Identifier()), true
}

// StoreCheckpoint files a snapshot blob under a ref (the coupler's
// hairpin path deposits directly; the peer path arrives via
// checkpointLoop). The blob must not be mutated afterwards.
func (d *Daemon) StoreCheckpoint(id uint64, blob []byte) {
	d.ckptMu.Lock()
	d.ckptBlobs[id] = blob
	d.ckptMu.Unlock()
}

// CheckpointBlob returns a stored snapshot blob.
func (d *Daemon) CheckpointBlob(id uint64) ([]byte, bool) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	b, ok := d.ckptBlobs[id]
	return b, ok
}

// CheckpointWireBytes returns the encoded size a stored blob had on the
// peer plane (post-compression). ok is false for blobs that arrived over
// the RPC hairpin, which never compresses.
func (d *Daemon) CheckpointWireBytes(id uint64) (int, bool) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	n, ok := d.ckptWire[id]
	return n, ok
}

// DropCheckpoint releases a stored blob (manifests inline the bytes, so
// long sessions can trim the store after each checkpoint).
func (d *Daemon) DropCheckpoint(id uint64) {
	d.ckptMu.Lock()
	delete(d.ckptBlobs, id)
	delete(d.ckptWire, id)
	delete(d.ckptOwner, id)
	d.ckptMu.Unlock()
}

// TagCheckpoint records which session owns a stored blob so the control
// plane can trim an evicted session's checkpoints in one sweep.
func (d *Daemon) TagCheckpoint(id uint64, session string) {
	if session == "" {
		return
	}
	d.ckptMu.Lock()
	d.ckptOwner[id] = session
	d.ckptMu.Unlock()
}

// DropSessionCheckpoints releases every blob the session owns.
func (d *Daemon) DropSessionCheckpoints(session string) {
	if session == "" {
		return
	}
	d.ckptMu.Lock()
	for id, owner := range d.ckptOwner {
		if owner == session {
			delete(d.ckptBlobs, id)
			delete(d.ckptWire, id)
			delete(d.ckptOwner, id)
		}
	}
	d.ckptMu.Unlock()
}

// WorkerAlive reports whether a worker id is known and not dead — the
// gang recovery path uses it to find which rank to restart.
func (d *Daemon) WorkerAlive(id int) bool {
	d.mu.Lock()
	wh := d.workers[id]
	d.mu.Unlock()
	if wh == nil {
		return false
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	return !wh.dead
}

// SessionWorkers returns the live worker ids owned by a session, sorted.
func (d *Daemon) SessionWorkers(session string) []int {
	d.mu.Lock()
	handles := make([]*workerHandle, 0, len(d.workers))
	for _, wh := range d.workers {
		handles = append(handles, wh)
	}
	d.mu.Unlock()
	var ids []int
	for _, wh := range handles {
		wh.mu.Lock()
		dead := wh.dead
		wh.mu.Unlock()
		if !dead && wh.spec.Session == session {
			ids = append(ids, wh.id)
		}
	}
	sort.Ints(ids)
	return ids
}

var reqIDs atomic.Uint64

// acceptLoop serves coupler connections on the loopback socket.
func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return
		}
		conn.SetClass("loopback")
		d.wg.Add(1)
		go d.serveCoupler(conn)
	}
}

// serveCoupler relays one coupler channel's requests to worker proxies.
func (d *Daemon) serveCoupler(conn *vnet.Conn) {
	defer d.wg.Done()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		var req request
		if err := kernel.UnmarshalRequest(msg.Data, &req); err != nil {
			continue
		}
		d.mu.Lock()
		wh := d.workers[req.Worker]
		d.mu.Unlock()
		if wh == nil {
			// A routing failure is a transport fault, not a worker death:
			// no worker with that id exists on this daemon.
			d.reply(conn, req.ID, msg.Arrival, kernel.CodeTransport, fmt.Sprintf("core: no worker %d", req.Worker))
			continue
		}
		wh.mu.Lock()
		dead, sp := wh.dead, wh.sendPort
		if !dead && sp != nil {
			wh.pending[req.ID] = conn
		}
		wh.mu.Unlock()
		if dead || sp == nil {
			d.reply(conn, req.ID, msg.Arrival, kernel.CodeWorkerDied, ErrWorkerDied.Error())
			continue
		}
		if err := sp.Write(msg.Data, msg.Arrival); err != nil {
			wh.mu.Lock()
			delete(wh.pending, req.ID)
			wh.mu.Unlock()
			d.reply(conn, req.ID, msg.Arrival, kernel.CodeWorkerDied, ErrWorkerDied.Error())
		}
	}
}

// reply sends a coded error response back to a coupler connection.
func (d *Daemon) reply(conn *vnet.Conn, id uint64, at time.Duration, code kernel.Code, errStr string) {
	resp := &response{ID: id, Code: code, Err: errStr, DoneAt: at}
	buf := kernel.GetBuf()
	frame := kernel.AppendResponse(*buf, resp)
	conn.Send(frame, at)
	*buf = frame[:0]
	kernel.PutBuf(buf)
}

// onResponse handles a proxy's response (or ready announcement).
func (d *Daemon) onResponse(wh *workerHandle, rm ipl.ReadMessage) {
	var resp response
	if err := kernel.UnmarshalResponse(rm.Data, &resp); err != nil {
		return
	}
	if resp.ID == 0 { // ready marker
		select {
		case wh.ready <- rm.From:
		default:
		}
		return
	}
	wh.mu.Lock()
	conn := wh.pending[resp.ID]
	delete(wh.pending, resp.ID)
	wh.mu.Unlock()
	if conn != nil {
		conn.Send(rm.Data, rm.Arrival)
	}
}

// eventLoop watches pool membership: a Died member fails its worker —
// requirement 4's monitoring hook and the paper's fault behaviour.
func (d *Daemon) eventLoop() {
	defer d.wg.Done()
	for ev := range d.ibis.Events() {
		if ev.Kind != ipl.Died {
			continue
		}
		d.mu.Lock()
		wh := d.byMember[ev.Member.String()]
		hook := d.OnWorkerDied
		d.mu.Unlock()
		if wh == nil {
			continue
		}
		if newly := d.failWorker(wh); newly && hook != nil {
			hook(wh.id)
		}
	}
}

// failWorker marks a worker dead and fails all pending calls. It reports
// whether the worker was newly failed (false for expected stops).
func (d *Daemon) failWorker(wh *workerHandle) bool {
	wh.mu.Lock()
	newly := !wh.dead
	wh.dead = true
	pend := wh.pending
	wh.pending = make(map[uint64]*vnet.Conn)
	sp := wh.sendPort
	wh.mu.Unlock()
	if sp != nil {
		sp.Close()
	}
	for id, conn := range pend {
		d.reply(conn, id, 0, kernel.CodeWorkerDied, ErrWorkerDied.Error())
	}
	d.releaseWorkerCapacity(wh)
	return newly
}

// nextWorkerIDLocked allocates a worker id. The default session ("") uses
// the plain counter; a named session draws from its own disjoint id block
// so its pool port names, peer-plane ports and checkpoint refs never
// collide with another tenant's. Caller holds d.mu.
func (d *Daemon) nextWorkerIDLocked(session string) (int, error) {
	if session == "" {
		d.nextID++
		return d.nextID, nil
	}
	slot, ok := d.sessionSlots[session]
	if !ok {
		slot = len(d.sessionSlots) + 1
		d.sessionSlots[session] = slot
	}
	seq := d.sessionSeq[session] + 1
	if seq >= sessionIDBlock {
		return 0, fmt.Errorf("core: session %q exhausted its %d-worker id block", session, sessionIDBlock-1)
	}
	d.sessionSeq[session] = seq
	return slot*sessionIDBlock + seq, nil
}

// releaseWorkerCapacity returns a worker's committed nodes to the ledger,
// exactly once across the stop/fail/start-error races.
func (d *Daemon) releaseWorkerCapacity(wh *workerHandle) {
	wh.mu.Lock()
	done := wh.released || wh.capNodes == 0
	wh.released = true
	nodes := wh.capNodes
	wh.mu.Unlock()
	if done {
		return
	}
	d.deployment.ReleaseNodes(wh.spec.Resource, wh.spec.Session, nodes)
}

// StartWorker launches a worker per spec and returns its id. For the ibis
// channel this is Fig. 5 end to end: submit job via IbisDeploy, wait for
// the proxy to join the pool and announce, then connect the request port.
// ctx bounds the wait for the worker's ready announcement (on top of
// ReadyTimeout); nil means no context deadline. Specs with Workers > 1
// must go through StartGang.
func (d *Daemon) StartWorker(ctx context.Context, spec WorkerSpec) (int, error) {
	if spec.Workers > 1 {
		return 0, fmt.Errorf("core: spec asks for a gang of %d workers; use StartGang", spec.Workers)
	}
	return d.startWorker(ctx, spec, 0, 1)
}

// StartGang launches the spec.Workers rank workers of one gang and
// returns their ids in rank order. All ranks are co-located on one
// resource (selected once if the spec leaves it open) so the gang's halo
// traffic rides the site's internal links; the jobs are submitted
// concurrently. On any failure the already-started ranks are stopped. The
// ranks come back wired to the pool but not yet to each other — the
// coupler's gang_init (sent per rank over the ordinary channel) completes
// the link wiring.
func (d *Daemon) StartGang(ctx context.Context, spec WorkerSpec) ([]int, error) {
	k := spec.Workers
	if k < 2 {
		return nil, fmt.Errorf("core: gang needs at least 2 workers, got %d", k)
	}
	if spec.Channel == "" {
		spec.Channel = ChannelIbis
	}
	if spec.Channel != ChannelIbis {
		return nil, fmt.Errorf("core: gangs require the ibis channel (got %q): ranks exchange halos over their peer planes", spec.Channel)
	}
	if spec.Resource == "" {
		resource, err := SelectResource(d.deployment, spec)
		if err != nil {
			return nil, err
		}
		spec.Resource = resource
	}
	ids := make([]int, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ids[r], errs[r] = d.startWorker(ctx, spec, r, k)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, id := range ids {
			if id != 0 {
				d.StopWorker(id)
			}
		}
		return nil, fmt.Errorf("core: gang start: %w", err)
	}
	return ids, nil
}

// startWorker is the shared launch path; rank/size place the worker in
// its gang (0/1 for solo workers).
func (d *Daemon) startWorker(ctx context.Context, spec WorkerSpec, rank, size int) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Channel == "" {
		spec.Channel = ChannelIbis
	}
	if spec.Nodes < 1 {
		spec.Nodes = 1
	}
	resource := spec.Resource
	if resource == "" {
		var err error
		resource, err = SelectResource(d.deployment, spec)
		if err != nil {
			return 0, err
		}
		spec.Resource = resource
	}
	if _, err := d.deployment.Resource(resource); err != nil {
		return 0, err
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, ErrChannelClosed
	}
	id, err := d.nextWorkerIDLocked(spec.Session)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	wh := &workerHandle{
		id: id, spec: spec,
		pending: make(map[uint64]*vnet.Conn),
		ready:   make(chan ipl.Identifier, 1),
	}
	d.workers[id] = wh
	d.mu.Unlock()

	// The worker's job occupies spec.Nodes nodes on the resource from
	// submission until stop/death; the ledger entry makes that occupancy
	// visible to other sessions' placement decisions. Released exactly
	// once — on any start failure below, on StopWorker, or when the pool
	// observes the death.
	d.deployment.CommitNodes(resource, spec.Session, spec.Nodes)
	wh.capNodes = spec.Nodes
	fail := func(err error) (int, error) {
		d.releaseWorkerCapacity(wh)
		return 0, err
	}

	exe := "amuse-worker"
	if spec.Channel == ChannelSockets {
		exe = "amuse-socket-worker"
	}
	desc := gat.JobDescription{
		Executable: exe,
		Args:       workerJobArgs(spec.Kind, spec.Kernel, id, resource, rank, size),
		Nodes:      spec.Nodes,
	}

	if spec.Channel == ChannelSockets {
		job, err := d.deployment.Submit(resource, desc)
		if err != nil {
			return fail(err)
		}
		wh.mu.Lock()
		wh.job = job
		wh.socketHost = d.deployment.LocalHost()
		wh.socketPort = socketWorkerPort(id)
		wh.mu.Unlock()
		return id, nil
	}

	// Ibis channel: response port first, then the job.
	rp, err := d.ibis.CreateReceivePort(ipl.ManyToOne, respPortName(id), func(rm ipl.ReadMessage) {
		d.onResponse(wh, rm)
	})
	if err != nil {
		return fail(err)
	}
	_ = rp
	job, err := d.deployment.Submit(resource, desc)
	if err != nil {
		return fail(err)
	}
	wh.mu.Lock()
	wh.job = job
	wh.mu.Unlock()

	select {
	case member := <-wh.ready:
		sp := d.ibis.CreateSendPort(ipl.OneToOne, reqPortName(id))
		if err := sp.Connect(member, reqPortName(id), 0); err != nil {
			job.Cancel()
			return fail(fmt.Errorf("core: connect to worker %d: %w", id, err))
		}
		wh.mu.Lock()
		wh.member = member
		wh.sendPort = sp
		wh.mu.Unlock()
		d.mu.Lock()
		d.byMember[member.String()] = wh
		d.mu.Unlock()
		return id, nil
	case <-job.Done():
		err := job.Err()
		if err == nil {
			err = errors.New("core: worker job stopped before announcing")
		}
		return fail(fmt.Errorf("core: worker %d failed to start: %w", id, err))
	case <-ctx.Done():
		job.Cancel()
		return fail(fmt.Errorf("core: worker %d start: %w", id, ctx.Err()))
	case <-time.After(d.ReadyTimeout):
		job.Cancel()
		return fail(fmt.Errorf("core: worker %d did not announce within %v", id, d.ReadyTimeout))
	}
}

// StopWorker shuts one worker down gracefully (its ports close, the job
// finishes).
func (d *Daemon) StopWorker(id int) {
	d.mu.Lock()
	wh := d.workers[id]
	d.mu.Unlock()
	if wh == nil {
		return
	}
	wh.mu.Lock()
	sp := wh.sendPort
	job := wh.job
	wh.dead = true
	wh.mu.Unlock()
	if sp != nil {
		sp.Close()
	}
	if job != nil {
		job.Cancel() // the proxy observes Cancel and tears itself down
	}
	d.releaseWorkerCapacity(wh)
}

// KillWorker abruptly cancels a worker's job (the scheduler-kill fault of
// §5); the pool observes a death.
func (d *Daemon) KillWorker(id int) {
	d.mu.Lock()
	wh := d.workers[id]
	d.mu.Unlock()
	if wh == nil {
		return
	}
	wh.mu.Lock()
	job := wh.job
	wh.mu.Unlock()
	if job != nil {
		job.Cancel()
	}
}

// WorkerJob returns the gat job behind a worker (diagnostics).
func (d *Daemon) WorkerJob(id int) *gat.Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	if wh := d.workers[id]; wh != nil {
		return wh.job
	}
	return nil
}

// WorkerPeerAddr resolves an ibis worker's peer-stream address — where
// other workers dial it for direct worker-to-worker state transfers —
// from its pool identity. It reports false for non-ibis workers, workers
// still starting, and dead workers.
func (d *Daemon) WorkerPeerAddr(id int) (smartsockets.Address, bool) {
	d.mu.Lock()
	wh := d.workers[id]
	d.mu.Unlock()
	if wh == nil {
		return smartsockets.Address{}, false
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	if wh.dead || wh.member.Host == "" {
		return smartsockets.Address{}, false
	}
	return ipl.PeerAddr(wh.member), true
}

// AbortTransfer streams an abort marker for a transfer id to a worker's
// peer listener, so an accept_state whose offering side failed stops
// waiting immediately instead of timing out. Best effort: if the abort
// cannot be delivered the accept still fails via its timeout.
func (d *Daemon) AbortTransfer(addr smartsockets.Address, id uint64) {
	conn, err := d.ibis.DialPeer(addr, 0)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetClass("peer")
	conn.Send(kernel.AppendTransferAbort(nil, id), 0)
}

// workerSocketAddr returns host/port for a sockets-channel worker.
func (d *Daemon) workerSocketAddr(id int) (string, int, error) {
	d.mu.Lock()
	wh := d.workers[id]
	d.mu.Unlock()
	if wh == nil {
		return "", 0, fmt.Errorf("core: no worker %d", id)
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	if wh.socketPort == 0 {
		return "", 0, fmt.Errorf("core: worker %d is not a sockets worker", id)
	}
	return wh.socketHost, wh.socketPort, nil
}
