package core_test

// Runnable godoc examples for the public coupler surface. `go test`
// executes these (the Output comments are asserted), so the documented
// idioms — pipelined async calls, orchestrated state transfer with its
// fallback, and sharded multi-worker kernels — are exercised on every CI
// run against a real testbed, daemon and worker stack.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"

	// Examples start workers of the standard kinds; the adapter packages
	// must be linked in (the database/sql-driver pattern).
	_ "jungle/internal/kernels"
)

// Example_pipelinedCalls shows the asynchronous coupler API: issue calls
// to several remote models back to back (each request is on its
// wide-area link before Go returns), then Gather the futures — K slow
// links cost about one round trip, not K.
func Example_pipelinedCalls() {
	tb, err := core.NewLabTestbed()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tb.Close()
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()

	// Two gravity models on two different sites.
	var models []*core.Gravity
	sets := make([]*data.Particles, 2)
	for i, resource := range []string{tb.LGM, tb.UvA} {
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: resource, Channel: core.ChannelIbis},
			core.GravityOptions{Eps: 0.01})
		if err != nil {
			fmt.Println(err)
			return
		}
		sets[i] = ic.Plummer(16, int64(i+1))
		if err := g.SetParticles(sets[i]); err != nil {
			fmt.Println(err)
			return
		}
		models = append(models, g)
	}

	// Phase 1: both kicks leave for their links before either is waited
	// on. Phase 2: both pulls, the same way. Each phase costs roughly the
	// slowest single link's round trip.
	dv := make([]data.Vec3, 16)
	kicks := []core.Waiter{models[0].GoKick(dv), models[1].GoKick(dv)}
	if err := core.Gather(context.Background(), kicks...); err != nil {
		fmt.Println(err)
		return
	}
	pulls := []core.Waiter{models[0].GoPull(sets[0]), models[1].GoPull(sets[1])}
	if err := core.Gather(context.Background(), pulls...); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pipelined kick+pull against %d sites: %d particles each\n", len(models), sets[0].Len())
	// Output: pipelined kick+pull against 2 sites: 16 particles each
}

// Example_transferState moves state between workers without the columns
// ever visiting the coupler's machine — and shows the automatic hairpin
// fallback when a worker has no peer plane (here: an in-process "mpi"
// channel worker). TransferState is always safe to call; TransferStats
// reports which path each transfer took.
func Example_transferState() {
	tb, err := core.NewDSLTestbed()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tb.Close()
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()

	newWorker := func(resource, channel string) *core.Gravity {
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: resource, Channel: channel},
			core.GravityOptions{Eps: 0.01})
		if err != nil {
			fmt.Println(err)
			return nil
		}
		if err := g.SetParticles(ic.Plummer(100, 7)); err != nil {
			fmt.Println(err)
			return nil
		}
		return g
	}
	siteA := newWorker(tb.SiteA, core.ChannelIbis)
	siteB := newWorker(tb.SiteB, core.ChannelIbis)
	local := newWorker("home", core.ChannelMPI)
	if siteA == nil || siteB == nil || local == nil {
		return
	}

	// Both ends remote with peer planes: the columns stream site-a ->
	// site-b over the fast inter-site link.
	if err := sim.TransferState(nil, siteA, siteB); err != nil {
		fmt.Println(err)
		return
	}
	// The local mpi-channel worker has no peer plane: same call, carried
	// by the coupler hairpin instead.
	if err := sim.TransferState(nil, siteB, local); err != nil {
		fmt.Println(err)
		return
	}
	stats := sim.TransferStats()
	fmt.Printf("direct=%d hairpin=%d fallback=%d\n", stats.Direct, stats.Hairpin, stats.Fallback)
	// Output: direct=1 hairpin=1 fallback=0
}

// Example_shardedGang deploys one gravity kernel as a gang of three rank
// workers (WorkerSpec.Workers): the ranks are co-located on one site,
// split every force evaluation into slabs, and exchange halos over their
// own peer links — behind an unchanged Gravity handle. Energies reduce
// across the ranks.
func Example_shardedGang() {
	tb, err := core.NewDSLTestbed()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tb.Close()
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()

	g, err := sim.NewGravity(context.Background(),
		core.WorkerSpec{Resource: tb.SiteA, Channel: core.ChannelIbis, Workers: 3},
		core.GravityOptions{Eps: 0.01})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := g.SetParticles(ic.Plummer(96, 13)); err != nil {
		fmt.Println(err)
		return
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		fmt.Println(err)
		return
	}
	kin, pot, err := g.Energy(nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ranks=%d bound=%v\n", len(g.GangWorkers()), kin+pot < 0)
	// Output: ranks=3 bound=true
}

// Example_checkpointResume checkpoints a running simulation to a manifest
// file, stops the session, and resumes it — the pattern behind
// amuse-run's -checkpoint/-resume flags and behind stateful worker
// replacement. The snapshot call rides the worker's FIFO (so in-flight
// pipelines drain first) and the blob streams worker-to-daemon over the
// peer plane; the resumed model continues bit-identically from the
// checkpointed state.
func Example_checkpointResume() {
	tb, err := core.NewLabTestbed()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tb.Close()
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()

	g, err := sim.NewGravity(context.Background(),
		core.WorkerSpec{Resource: tb.LGM, Channel: core.ChannelIbis},
		core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := g.SetParticles(ic.Plummer(64, 5)); err != nil {
		fmt.Println(err)
		return
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		fmt.Println(err)
		return
	}

	// Snapshot every model and persist the manifest: kinds, worker specs
	// (gang shapes included), setup payloads and the snapshot blobs.
	man, err := sim.Checkpoint(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	dir, err := os.MkdirTemp("", "ckpt")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "example.ckpt")
	if err := man.Save(path); err != nil {
		fmt.Println(err)
		return
	}
	sim.Stop() // the original session is gone; only the manifest survives

	loaded, err := core.LoadManifest(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	sim2, models, err := core.ResumeSimulation(context.Background(), tb.Daemon, nil, loaded)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sim2.Stop()
	g2 := models[0].AsGravity()
	if err := g2.EvolveTo(context.Background(), 1.0/32); err != nil {
		fmt.Println(err)
		return
	}
	kin, pot, err := g2.Energy(nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("resumed models=%d kind=%s n=%d bound=%v\n",
		len(models), models[0].Kind(), g2.N(), kin+pot < 0)
	// Output: resumed models=1 kind=gravity n=64 bound=true
}
