package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/mpisim"
	"jungle/internal/trace"
)

// Elastic gangs, part 1: skew-driven slab rebalancing. A gang's merged
// evolve completion cannot reveal rank skew — the collectives synchronize
// every rank's clock to the slowest — so the rebalancer queries each rank
// directly (rank_load: current slab width plus the virtual compute time
// accumulated since the previous query, reset on read), derives per-rank
// throughput, and when the max/min compute-time ratio exceeds the policy
// threshold broadcasts new slab boundaries (reshard) on the gang
// channel's ordered fan-out. Every rank holds the full replicated
// particle arrays, so moving a boundary needs no state movement and
// results stay bit-identical; only the virtual-time distribution changes.
//
// Default off: a model without EnableRebalance issues no rank_load
// queries and no reshards, keeping existing sessions byte-identical —
// the same contract as TransferStripes and the codecs.

// ElasticPolicy tunes the rebalancer armed by EnableRebalance.
type ElasticPolicy struct {
	// SkewThreshold is the max/min per-rank compute-time ratio above
	// which the gang is resharded (0 means the default 1.15; a 4× skew
	// trips either way).
	SkewThreshold float64
	// Interval is how many completed evolves separate measurement rounds
	// (0 means every evolve).
	Interval int
	// MigrateOnContention also watches the gang's resource in the
	// deployment capacity ledger: when other sessions occupy more than
	// ContentionFraction of its nodes and a strictly less-loaded
	// resource exists, the whole gang migrates there (migrate.go).
	MigrateOnContention bool
	// ContentionFraction is the occupied-by-others node fraction that
	// counts as contended (0 means the default 0.5).
	ContentionFraction float64
	// MinGoodput, when positive, additionally treats the resource as
	// contended when the monitor's latest goodput probe from the
	// coupler's host to the resource frontend fell below this (bytes/s).
	MinGoodput float64
}

func (p ElasticPolicy) threshold() float64 {
	if p.SkewThreshold > 0 {
		return p.SkewThreshold
	}
	return 1.15
}

func (p ElasticPolicy) interval() int {
	if p.Interval > 0 {
		return p.Interval
	}
	return 1
}

func (p ElasticPolicy) contentionFraction() float64 {
	if p.ContentionFraction > 0 {
		return p.ContentionFraction
	}
	return 0.5
}

// elasticGang is one model's armed rebalancer state.
type elasticGang struct {
	m      *modelProxy
	policy ElasticPolicy
	label  string // telemetry key: kind/resource at arming time

	evolves atomic.Uint64 // completed evolves since arming
	busy    atomic.Bool   // one measurement round at a time
	rounds  atomic.Uint64 // completed measurement rounds (tests)
}

// EnableRebalance arms skew-driven slab rebalancing on a gang model.
// After every policy.Interval completed evolves the rebalancer samples
// per-rank load, records the skew gauge to Simulation.Monitor and the
// session recorder, and reshards (or migrates, per policy) when the
// trigger rule fires. Only gangs can rebalance — a solo worker has no
// slabs to move.
func (m *modelProxy) EnableRebalance(p ElasticPolicy) error {
	if !m.isGang() {
		return fmt.Errorf("core: EnableRebalance: %s is not a gang", m.kind)
	}
	m.mu.Lock()
	m.elastic = &elasticGang{m: m, policy: p,
		label: fmt.Sprintf("%s/%s", m.kind, m.spec.Resource)}
	m.mu.Unlock()
	return nil
}

// DisableRebalance disarms the rebalancer; in-flight rounds finish but
// no new ones start. The current slab boundaries stay as last resharded.
func (m *modelProxy) DisableRebalance() {
	m.mu.Lock()
	m.elastic = nil
	m.mu.Unlock()
}

// RebalanceRounds reports completed measurement rounds (diagnostics).
func (m *modelProxy) RebalanceRounds() uint64 {
	if e := m.elasticState(); e != nil {
		return e.rounds.Load()
	}
	return 0
}

// evolveDone is the evolve success hook: cheap counter bump, and every
// interval-th evolve spawns one asynchronous measurement round.
func (e *elasticGang) evolveDone() {
	n := e.evolves.Add(1)
	if int(n)%e.policy.interval() != 0 {
		return
	}
	if !e.busy.CompareAndSwap(false, true) {
		return // previous round still running
	}
	go func() {
		defer e.busy.Store(false)
		e.rebalanceOnce()
		e.rounds.Add(1)
	}()
}

// rebalanceOnce runs one measure → decide → act round. The measurement
// runs under migMu (TryLock: when a migration or replacement is
// rebuilding the endpoint the round is skipped — the next evolve
// triggers a fresh one against the new endpoint), but the lock is
// released before acting: the reshard broadcast and a voluntary
// migration both ride the normal call machinery, whose failure path
// (the retry drainer) needs migMu itself.
func (e *elasticGang) rebalanceOnce() {
	m := e.m
	if !m.migMu.TryLock() {
		return
	}
	m.mu.Lock()
	stopped := m.stopped
	m.mu.Unlock()
	if stopped || m.elasticState() != e {
		m.migMu.Unlock()
		return
	}
	loads, err := m.measureRankLoads()
	m.migMu.Unlock()
	if err != nil {
		m.sim.trace("rebalance: measurement skipped: %v", err)
		return
	}
	sample := trace.GangSample{At: m.sim.clock.Now(), Skew: skewOf(loads)}
	for _, l := range loads {
		sample.Rows = append(sample.Rows, l.Rows)
		sample.Compute = append(sample.Compute, time.Duration(l.ComputeNs))
	}

	switch {
	case e.policy.MigrateOnContention && m.sim.resourceContended(m.resource(), e.policy):
		sample.Action = "migrate"
		e.record(sample)
		// Migrate re-places the gang via SelectLeastLoaded (excluding the
		// contended resource); failure falls through to the dead-rank
		// machinery or stays put — either way the gang survives.
		if err := m.Migrate(nil, ""); err != nil {
			m.sim.trace("rebalance: migration off contended %s failed: %v", m.resource(), err)
		}
	case sample.Skew >= e.policy.threshold():
		cuts, ok := cutsFromLoads(loads)
		if !ok {
			e.record(sample)
			return
		}
		sample.Action = "reshard"
		e.record(sample)
		// A normal (replaceable) call: if a rank dies mid-reshard the
		// retry machinery replays it after gang recovery, reapplying the
		// cuts on the restored (uniform) gang.
		c := m.Go(kernel.MethodReshard, kernel.ReshardArgs{Cuts: cuts})
		if err := c.Wait(m.sim.ctx); err != nil {
			m.sim.trace("rebalance: reshard failed: %v", err)
			return
		}
		m.sim.trace("gang resharded (skew %.2f): cuts %v", sample.Skew, cuts)
	default:
		e.record(sample)
	}
}

// record publishes a sample to the monitor and the session recorder.
func (e *elasticGang) record(s trace.GangSample) {
	if rec := e.m.sim.Monitor; rec != nil {
		rec.RecordGangSample(e.label, s)
	}
	e.m.sim.sessionAccount(func(rec *trace.Recorder, id string) {
		rec.RecordGangSample(id+"/"+e.label, s)
	})
}

// skewOf is the trigger gauge: max/min per-rank compute time. Zero when
// any rank reported an empty window (nothing to balance on yet).
func skewOf(loads []kernel.RankLoadResult) float64 {
	minC, maxC := int64(-1), int64(0)
	for _, l := range loads {
		if minC < 0 || l.ComputeNs < minC {
			minC = l.ComputeNs
		}
		if l.ComputeNs > maxC {
			maxC = l.ComputeNs
		}
	}
	if minC <= 0 {
		return 0
	}
	return float64(maxC) / float64(minC)
}

// cutsFromLoads turns a measurement into new slab boundaries: each
// rank's throughput estimate is rows/compute, and the new cuts assign
// rows proportional to throughput (mpisim.WeightedCuts keeps every rank
// at least one row).
func cutsFromLoads(loads []kernel.RankLoadResult) ([]int, bool) {
	n := 0
	weights := make([]float64, len(loads))
	for i, l := range loads {
		n += l.Rows
		if l.ComputeNs > 0 {
			weights[i] = float64(l.Rows) / float64(l.ComputeNs)
		}
	}
	if n == 0 {
		return nil, false
	}
	return mpisim.WeightedCuts(n, weights), true
}

// measureRankLoads queries every rank's rank_load accumulator. The
// queries ride each rank's member FIFO individually (a broadcast would
// return rank 0's numbers K times), so they order after any still-queued
// evolves and the window they report is exactly the evolves since the
// previous round.
func (m *modelProxy) measureRankLoads() ([]kernel.RankLoadResult, error) {
	ch, _, _ := m.endpoint()
	gch, ok := ch.(*gangChannel)
	if !ok {
		return nil, fmt.Errorf("core: rank_load needs a gang channel: %w", ErrChannelClosed)
	}
	s := m.sim
	k := gch.size()
	loads := make([]kernel.RankLoadResult, k)
	errs := make([]error, k)
	done := make(chan int, k)
	for rank := 0; rank < k; rank++ {
		rank := rank
		req := request{
			ID: reqIDs.Add(1), Method: kernel.MethodRankLoad,
			Args: encode(kernel.Empty{}), SentAt: s.clock.Now(),
		}
		gch.startRank(rank, req, func(resp response, arrival time.Duration, err error) {
			if err == nil {
				s.clock.AdvanceTo(arrival)
				if werr := kernel.ResponseError(&resp); werr != nil {
					err = werr
				} else {
					err = decode(resp.Result, &loads[rank])
				}
			}
			errs[rank] = err
			done <- rank
		})
	}
	for i := 0; i < k; i++ {
		select {
		case <-done:
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
	return loads, errors.Join(errs...)
}
