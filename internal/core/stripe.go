package core

import (
	"sync"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/smartsockets"
)

// Receiver side of striped bulk transfers. A striped sender opens one
// manifest connection (a kernel.StripeManifest frame) plus one connection
// per stripe; stripes race freely with each other and with the manifest.
// The stripeBox collects both until a transfer's set is complete, verifies
// every per-stripe digest, reassembles the original encoded payload and
// hands it to the owner's complete callback — which acknowledges on the
// manifest connection at the virtual time the last piece landed. A digest
// or length mismatch closes the manifest connection WITHOUT an ack: the
// sender's ack wait fails with a transport error and it retries the same
// transfer id over a classic single stream, so corruption never becomes
// wrong state, only a slower delivery.

// stripePart is one received stripe: its bytes and virtual arrival.
type stripePart struct {
	data    []byte
	arrival time.Duration
}

// stripeEntry is one in-flight striped transfer.
type stripeEntry struct {
	manifest *kernel.StripeManifest
	mconn    *smartsockets.VirtualConn
	mArrival time.Duration
	parts    map[int]stripePart
}

// stripeBox reassembles striped transfers for one listener (a worker's
// peer plane, or the daemon's checkpoint store).
type stripeBox struct {
	mu      sync.Mutex
	entries map[uint64]*stripeEntry
	closed  bool
	// complete receives each fully verified payload, outside the box lock.
	// It must send the ack on mconn (at arrival) and close it.
	complete func(id uint64, payload []byte, arrival time.Duration, mconn *smartsockets.VirtualConn)
}

func newStripeBox(complete func(uint64, []byte, time.Duration, *smartsockets.VirtualConn)) *stripeBox {
	return &stripeBox{entries: make(map[uint64]*stripeEntry), complete: complete}
}

// manifest registers a striped transfer's manifest connection and then
// blocks watching it: the sender never sends a second frame on this
// connection, so a Recv return means the sender tore the attempt down
// (abort, or post-ack cleanup) and any incomplete entry can be dropped.
// Runs in the accepting listener's per-connection goroutine; ownership of
// conn passes to the box.
func (b *stripeBox) manifest(conn *smartsockets.VirtualConn, data []byte, arrival time.Duration) {
	m, err := kernel.UnmarshalManifest(data)
	if err != nil {
		conn.Close()
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	e := b.entry(m.ID)
	if e.manifest != nil { // duplicate manifest: keep the first
		b.mu.Unlock()
		conn.Close()
		return
	}
	e.manifest, e.mconn, e.mArrival = m, conn, arrival
	payload, at, mconn, ready := b.finishLocked(m.ID, e)
	b.mu.Unlock()
	if ready {
		b.complete(m.ID, payload, at, mconn)
	}
	conn.Recv() // blocks until the sender closes (or the ack path did)
	b.mu.Lock()
	if cur, ok := b.entries[m.ID]; ok && cur == e {
		delete(b.entries, m.ID)
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.mu.Unlock()
}

// stripe records one received stripe frame and completes the transfer if
// it was the last piece.
func (b *stripeBox) stripe(data []byte, arrival time.Duration) {
	id, idx, part, err := kernel.UnmarshalStripe(data)
	if err != nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	e := b.entry(id)
	// part aliases data, which is private to the stripe's connection: no
	// copy needed before reassembly.
	e.parts[idx] = stripePart{data: part, arrival: arrival}
	payload, at, mconn, ready := b.finishLocked(id, e)
	b.mu.Unlock()
	if ready {
		b.complete(id, payload, at, mconn)
	}
}

func (b *stripeBox) entry(id uint64) *stripeEntry {
	e, ok := b.entries[id]
	if !ok {
		e = &stripeEntry{parts: make(map[int]stripePart)}
		b.entries[id] = e
	}
	return e
}

// finishLocked checks whether the entry's set is complete and, if so,
// verifies and reassembles it. On a verification failure the manifest
// connection is closed without an ack (the sender falls back to a single
// stream) and the entry is dropped. Called with b.mu held; the returned
// payload is handed to complete outside the lock.
func (b *stripeBox) finishLocked(id uint64, e *stripeEntry) (payload []byte, arrival time.Duration, mconn *smartsockets.VirtualConn, ready bool) {
	m := e.manifest
	if m == nil || len(e.parts) < len(m.Stripes) {
		return nil, 0, nil, false
	}
	delete(b.entries, id)
	arrival = e.mArrival
	payload = make([]byte, m.Total)
	for i, info := range m.Stripes {
		p, ok := e.parts[i]
		if !ok || len(p.data) != int(info.Length) || kernel.Digest64(p.data) != info.Digest {
			e.mconn.Close()
			return nil, 0, nil, false
		}
		copy(payload[info.Offset:], p.data)
		if p.arrival > arrival {
			arrival = p.arrival
		}
	}
	return payload, arrival, e.mconn, true
}

// close drops every in-flight entry and closes its manifest connection
// (listener teardown).
func (b *stripeBox) close() {
	b.mu.Lock()
	b.closed = true
	entries := b.entries
	b.entries = make(map[uint64]*stripeEntry)
	b.mu.Unlock()
	for _, e := range entries {
		if e.mconn != nil {
			e.mconn.Close()
		}
	}
}
