package core

// Kind-conformance suites: every registered worker kind that claims
// Shardable + Checkpointable must satisfy the same contracts — gang
// execution reproduces solo execution bit for bit, checkpoints round-trip
// through the daemon store, and a dead gang rank is replaced without
// perturbing the trajectory. The suites are table-driven over the generic
// Model handle so a new kind (here: the agent-based abm colony) reuses
// the gravity suites instead of copying them.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/abm"
)

// conformKind drives one worker kind through the conformance suites via
// the generic Model handle only — no kind-specific typed wrapper, so the
// suite exercises exactly what an externally-linked kind gets.
type conformKind struct {
	name     string
	kind     Kind
	setup    any
	soloSpec WorkerSpec
	gangSpec WorkerSpec
	// seed installs the deterministic initial state.
	seed func(t *testing.T, m *Model)
	// leg advances the model one work leg (legs are cumulative and
	// resumable: running legs 1..n from a checkpoint after leg k must
	// reproduce an uninterrupted run).
	leg func(t *testing.T, m *Model, i int)
	// goLong starts the long asynchronous leg the fault suites kill a
	// worker inside of.
	goLong func(m *Model) Waiter
	// digest hashes the model's end state (bit patterns).
	digest func(t *testing.T, m *Model) uint64
}

var abmConformParams = abm.Params{W: 48, H: 48, D: 0.2, R: 0.8, B: 0.4, DT: 0.01}

// abmConformBias is the fixed potential the conformance colonies evolve
// in (deterministic, agent-indexed — the coupling demo uses a live field
// kernel instead; see exp.E10).
func abmConformBias(n int) []float64 {
	phi := make([]float64, n)
	for i := range phi {
		phi[i] = 0.05 * float64(i%11)
	}
	return phi
}

func conformKinds() []conformKind {
	grav := conformKind{
		name:  "gravity",
		kind:  KindGravity,
		setup: kernel.SetupGravityArgs{Kernel: "phigrape-cpu", Eps: 0.01},
		soloSpec: WorkerSpec{
			Resource: "das4-uva", Channel: ChannelIbis, Kernel: "phigrape-cpu"},
		gangSpec: WorkerSpec{
			Resource: "das4-vu", Channel: ChannelIbis, Kernel: "phigrape-cpu", Workers: 3},
		seed: func(t *testing.T, m *Model) {
			if err := m.AsGravity().SetParticles(ic.Plummer(96, 21)); err != nil {
				t.Fatal(err)
			}
		},
		leg: func(t *testing.T, m *Model, i int) {
			if err := m.AsGravity().EvolveTo(context.Background(), float64(i)/64); err != nil {
				t.Fatal(err)
			}
		},
		goLong: func(m *Model) Waiter { return m.AsGravity().GoEvolveTo(1.0 / 8) },
		digest: func(t *testing.T, m *Model) uint64 {
			st, err := m.GetState(nil, data.AttrPos, data.AttrVel)
			if err != nil {
				t.Fatal(err)
			}
			return kernel.DigestState(st)
		},
	}

	colony := conformKind{
		name:     "abm",
		kind:     Kind(abm.Kind),
		setup:    abm.SetupArgs{W: abmConformParams.W, H: abmConformParams.H, D: abmConformParams.D, R: abmConformParams.R, B: abmConformParams.B, DT: abmConformParams.DT},
		soloSpec: WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis},
		gangSpec: WorkerSpec{Resource: "das4-vu", Channel: ChannelIbis, Workers: 3},
		seed: func(t *testing.T, m *Model) {
			p := abmConformParams
			st := kernel.NewState(p.W * p.H)
			st.AddFloat(abm.AttrState, abm.InitialU(p, 23))
			st.AddFloat(abm.AttrPotential, abmConformBias(p.W*p.H))
			if err := m.SetState(nil, st); err != nil {
				t.Fatal(err)
			}
		},
		leg: func(t *testing.T, m *Model, i int) {
			if err := m.Call(context.Background(), "step", abm.StepArgs{Steps: 40}, nil); err != nil {
				t.Fatal(err)
			}
		},
		goLong: func(m *Model) Waiter { return m.Go("step", abm.StepArgs{Steps: 1500}) },
		digest: func(t *testing.T, m *Model) uint64 {
			st, err := m.GetState(nil, abm.AttrState, abm.AttrPos)
			if err != nil {
				t.Fatal(err)
			}
			return kernel.DigestState(st)
		},
	}
	return []conformKind{grav, colony}
}

// TestKindConformanceSoloVsGang: for every conformant kind, a K=3 gang
// must reproduce a solo worker's trajectory bit for bit — domain
// decomposition is invisible in the results.
func TestKindConformanceSoloVsGang(t *testing.T) {
	for _, k := range conformKinds() {
		t.Run(k.name, func(t *testing.T) {
			_, sim := labSim(t)
			ctx := context.Background()

			solo, err := sim.NewModel(ctx, k.kind, k.soloSpec, k.setup)
			if err != nil {
				t.Fatal(err)
			}
			k.seed(t, solo)
			k.leg(t, solo, 1)
			k.leg(t, solo, 2)
			want := k.digest(t, solo)

			gang, err := sim.NewModel(ctx, k.kind, k.gangSpec, k.setup)
			if err != nil {
				t.Fatal(err)
			}
			if ids := gang.GangWorkers(); len(ids) != 3 {
				t.Fatalf("gang workers = %v, want 3 ranks", ids)
			}
			k.seed(t, gang)
			k.leg(t, gang, 1)
			k.leg(t, gang, 2)
			if got := k.digest(t, gang); got != want {
				t.Fatalf("gang digest %x != solo digest %x", got, want)
			}
		})
	}
}

// TestKindConformanceCheckpointRoundTrip: checkpoint after leg 1, keep
// the original running through leg 2 as the baseline, then resume the
// manifest from disk and run the same leg — the resumed trajectory must
// be bit-identical for every kind.
func TestKindConformanceCheckpointRoundTrip(t *testing.T) {
	for _, k := range conformKinds() {
		t.Run(k.name, func(t *testing.T) {
			tb, sim := labSim(t)
			ctx := context.Background()

			m, err := sim.NewModel(ctx, k.kind, k.soloSpec, k.setup)
			if err != nil {
				t.Fatal(err)
			}
			k.seed(t, m)
			k.leg(t, m, 1)

			man, err := sim.Checkpoint(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Models) != 1 || man.Models[0].Kind != k.kind {
				t.Fatalf("manifest models = %+v", man.Models)
			}
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := man.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadManifest(path)
			if err != nil {
				t.Fatal(err)
			}

			k.leg(t, m, 2)
			want := k.digest(t, m)
			if err := sim.Stop(); err != nil {
				t.Fatal(err)
			}

			sim2, models, err := ResumeSimulation(ctx, tb.Daemon, nil, loaded)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sim2.Stop() })
			if len(models) != 1 || models[0].Kind() != k.kind {
				t.Fatalf("resumed models = %v", models)
			}
			k.leg(t, models[0], 2)
			if got := k.digest(t, models[0]); got != want {
				t.Fatalf("resumed digest %x != uninterrupted digest %x", got, want)
			}
		})
	}
}

// TestKindConformanceRankDeathRecovery kills rank 1 of a K=3 gang inside
// the long leg. With replacement enabled and a checkpoint taken, the rank
// must be transparently replaced and the end state must match a solo
// baseline bit for bit — then the recovered gang must survive another
// leg.
func TestKindConformanceRankDeathRecovery(t *testing.T) {
	for _, k := range conformKinds() {
		t.Run(k.name, func(t *testing.T) {
			tb, sim := labSim(t)
			ctx := context.Background()

			base, err := sim.NewModel(ctx, k.kind, k.soloSpec, k.setup)
			if err != nil {
				t.Fatal(err)
			}
			k.seed(t, base)
			k.leg(t, base, 1)
			if err := k.goLong(base).Wait(ctx); err != nil {
				t.Fatal(err)
			}
			want := k.digest(t, base)

			gang, err := sim.NewModel(ctx, k.kind, k.gangSpec, k.setup)
			if err != nil {
				t.Fatal(err)
			}
			gang.EnableReplacement()
			k.seed(t, gang)
			k.leg(t, gang, 1)
			if _, err := sim.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
			before := gang.GangWorkers()

			died := make(chan int, 4)
			tb.Daemon.OnWorkerDied = func(id int) { died <- id }
			call := k.goLong(gang)
			time.Sleep(15 * time.Millisecond) // let the ranks get into the collective
			victim := before[1]
			tb.Daemon.KillWorker(victim)
			select {
			case <-died:
			case <-time.After(10 * time.Second):
				t.Fatal("rank death not observed by the pool")
			}
			waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			if err := call.Wait(waitCtx); err != nil {
				t.Fatalf("long leg across rank death: %v", err)
			}
			after := gang.GangWorkers()
			if len(after) != 3 || after[1] == victim {
				t.Fatalf("rank 1 not replaced: workers %v -> %v", before, after)
			}
			if after[0] != before[0] || after[2] != before[2] {
				t.Fatalf("surviving ranks restarted unnecessarily: %v -> %v", before, after)
			}
			if got := k.digest(t, gang); got != want {
				t.Fatalf("post-recovery digest %x != solo baseline %x", got, want)
			}

			// The recovered gang keeps working bit-compatibly. (Leg 12 —
			// past the long leg's end time for monotonic-clock kinds.)
			k.leg(t, base, 12)
			k.leg(t, gang, 12)
			if got, want := k.digest(t, gang), k.digest(t, base); got != want {
				t.Fatalf("post-recovery leg digest %x != baseline %x", got, want)
			}
		})
	}
}
