package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/gat"
	"jungle/internal/ipl"
	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
)

// Env is the execution environment shared by the daemon and every worker
// process — the reproduction's stand-in for "AMUSE is already installed on
// the target resource" (§5): workers find their code, the network and the
// registry through it.
type Env struct {
	Net        *vnet.Network
	Deployment *deploy.Deployment
	Pool       string
	Registry   smartsockets.Address
}

// Port layout. Each worker id gets a private port block on its node.
const (
	// DaemonPort is the local loopback port the coupler's channels dial —
	// §5's "connection ... created using a local loopback socket".
	DaemonPort = 17979

	workerPortBase   = 41000
	workerPortStride = 16
)

func workerBasePort(id int) int   { return workerPortBase + id*workerPortStride }
func workerLoopback(id int) int   { return workerBasePort(id) + 8 }
func socketWorkerPort(id int) int { return workerBasePort(id) + 9 }
func reqPortName(id int) string   { return fmt.Sprintf("req-%d", id) }
func respPortName(id int) string  { return fmt.Sprintf("resp-%d", id) }
func workerJobArgs(kind Kind, kernelName string, id int, resource string, rank, size int) []string {
	return []string{string(kind), kernelName, strconv.Itoa(id), resource,
		strconv.Itoa(rank), strconv.Itoa(size)}
}

func parseWorkerArgs(args []string) (kind Kind, kernelName string, id int, resource string, gang *kernel.GangInfo, err error) {
	if len(args) != 6 {
		return "", "", 0, "", nil, fmt.Errorf("core: worker args %v: want 6", args)
	}
	id, err = strconv.Atoi(args[2])
	if err != nil {
		return "", "", 0, "", nil, fmt.Errorf("core: worker id: %w", err)
	}
	rank, err := strconv.Atoi(args[4])
	if err != nil {
		return "", "", 0, "", nil, fmt.Errorf("core: worker gang rank: %w", err)
	}
	size, err := strconv.Atoi(args[5])
	if err != nil {
		return "", "", 0, "", nil, fmt.Errorf("core: worker gang size: %w", err)
	}
	if size > 1 {
		gang = &kernel.GangInfo{Rank: rank, Size: size, Neighbors: kernel.NeighborsOf(rank, size)}
	}
	return Kind(args[0]), args[1], id, args[3], gang, nil
}

// electionDaemon is the IPL election naming the daemon instance.
const electionDaemon = "amuse-daemon"

// workerMain is the "amuse-worker" executable of Fig. 5: it hosts the model
// service behind a loopback socket (the worker proper) and a proxy that
// joins the IPL pool and relays RPC between the daemon and the worker.
func workerMain(env *Env, ctx *gat.Context) error {
	kind, _, id, resourceName, gang, err := parseWorkerArgs(ctx.Args)
	if err != nil {
		return err
	}
	res, err := env.Deployment.Resource(resourceName)
	if err != nil {
		return err
	}
	svc, err := newService(kind, res, ctx.Hosts, env, gang)
	if err != nil {
		return err
	}
	defer svc.Close()
	if gang != nil {
		// Fail at startup, not at gang_init time: a kind without gang
		// support must not come up as K divergent solo instances.
		if _, ok := svc.(kernel.Shardable); !ok {
			return fmt.Errorf("core: kind %q cannot run as a gang rank (service does not implement kernel.Shardable)", kind)
		}
	}
	host := ctx.Hosts[0]

	// Worker side: model service behind a loopback listener.
	wl, err := env.Net.Listen(host, workerLoopback(id))
	if err != nil {
		return fmt.Errorf("core: worker loopback listen: %w", err)
	}
	defer wl.Close()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		conn, err := wl.Accept()
		if err != nil {
			return
		}
		conn.SetClass("loopback")
		serveConn(conn, svc)
	}()

	// Proxy side: join the pool through the resource's hub.
	ib, err := ipl.Create(env.Net, ipl.Config{
		Pool: env.Pool, Host: host, BasePort: workerBasePort(id),
		HubHost: res.HubHost, Registry: env.Registry,
	})
	if err != nil {
		return fmt.Errorf("core: proxy join: %w", err)
	}

	// Loopback connection proxy -> worker.
	loop, err := env.Net.Dial(host, host, workerLoopback(id))
	if err != nil {
		ib.End()
		return fmt.Errorf("core: proxy loopback dial: %w", err)
	}
	loop.SetClass("loopback")

	// Direct data plane: peer streams from other workers land on this
	// listener and never touch the daemon's machine.
	plane, err := newPeerPlane(ib)
	if err != nil {
		ib.End()
		return err
	}

	// Find the daemon and open the response path.
	daemonID, err := ib.Elect(electionDaemon)
	if err != nil {
		ib.End()
		return err
	}
	respPort := ib.CreateSendPort(ipl.OneToOne, "resp")
	if err := respPort.Connect(daemonID, respPortName(id), 0); err != nil {
		ib.End()
		return fmt.Errorf("core: proxy response port: %w", err)
	}
	// Request path: requests from the daemon arrive here.
	reqPort, err := ib.CreateReceivePort(ipl.OneToOne, reqPortName(id), nil)
	if err != nil {
		ib.End()
		return err
	}

	// Announce readiness (response ID 0 is the ready marker).
	if err := respPort.Write(kernel.AppendResponse(nil, &response{ID: 0, DoneAt: ctx.StartedAt}), ctx.StartedAt); err != nil {
		ib.End()
		return err
	}

	// Watch for cancellation: the paper's "reservation ends, worker killed
	// by the scheduler" — the proxy dies without a registry leave, so the
	// pool sees Died.
	relayDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Cancel:
			ib.Kill()
			loop.Close()
		case <-relayDone:
		}
	}()

	// Relay loop: daemon -> proxy -> worker -> proxy -> daemon. Transfer
	// ops (offer_state/accept_state) and gang wiring (gang_init) are the
	// proxy's own: they move state between the peer plane and the worker
	// without involving the daemon.
	var relayErr error
	for {
		rm, err := reqPort.Receive()
		if err != nil {
			break // port closed: daemon shut us down or we were killed
		}
		var req request
		if err := kernel.UnmarshalRequest(rm.Data, &req); err == nil &&
			(isTransferMethod(req.Method) || isGangMethod(req.Method)) {
			var resp *response
			if isGangMethod(req.Method) {
				resp = plane.handleGangInit(&req, rm.Arrival, svc)
			} else {
				resp = plane.handleTransfer(&req, rm.Arrival, loop)
			}
			if err := respPort.Write(kernel.AppendResponse(nil, resp), resp.DoneAt); err != nil {
				relayErr = err
				break
			}
			continue
		}
		if _, err := loop.Send(rm.Data, rm.Arrival); err != nil {
			relayErr = err
			break
		}
		reply, err := loop.Recv()
		if err != nil {
			relayErr = err
			break
		}
		if err := respPort.Write(reply.Data, reply.Arrival); err != nil {
			relayErr = err
			break
		}
	}
	close(relayDone)
	loop.Close()
	plane.stop()
	ib.End()
	<-serveDone
	if ctx.Canceled() {
		return gat.ErrCanceled
	}
	if relayErr != nil && !errors.Is(relayErr, vnet.ErrClosed) {
		return relayErr
	}
	return nil
}

// socketWorkerMain is the "sockets channel" worker: a separate local
// process serving RPC straight over a loopback connection, no daemon or IPL
// involved (AMUSE's pre-existing sockets channel).
func socketWorkerMain(env *Env, ctx *gat.Context) error {
	kind, _, id, resourceName, _, err := parseWorkerArgs(ctx.Args)
	if err != nil {
		return err
	}
	res, err := env.Deployment.Resource(resourceName)
	if err != nil {
		return err
	}
	// Sockets workers are always solo: gangs need the peer plane.
	svc, err := newService(kind, res, ctx.Hosts, env, nil)
	if err != nil {
		return err
	}
	defer svc.Close()
	host := ctx.Hosts[0]
	l, err := env.Net.Listen(host, socketWorkerPort(id))
	if err != nil {
		return err
	}
	defer l.Close()
	accepted := make(chan *vnet.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	select {
	case conn := <-accepted:
		conn.SetClass("loopback")
		go func() {
			<-ctx.Cancel
			conn.Close()
		}()
		serveConn(conn, svc)
	case <-ctx.Cancel:
	case <-time.After(30 * time.Second):
		return errors.New("core: socket worker: no connection")
	}
	if ctx.Canceled() {
		return gat.ErrCanceled
	}
	return nil
}
