package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"jungle/internal/amuse/data"
)

// Request is one RPC over any channel.
type Request struct {
	ID uint64
	// Worker routes the request at the daemon (ibis channel only).
	Worker int
	Method string
	Args   []byte
	// SentAt is the caller's virtual clock at send time.
	SentAt time.Duration
}

// Response answers one Request.
type Response struct {
	ID     uint64
	Result []byte
	// Code classifies the outcome (CodeOK for success). It is the
	// machine-readable half of the error: the coupler maps it back to a
	// sentinel error with errors.Is semantics via ResponseError.
	Code Code
	// Err is the human-readable half: the originating error's message.
	Err string
	// DoneAt is the worker's virtual clock when the call finished
	// (arrival + compute); the reply's network arrival is added on top by
	// the transport.
	DoneAt time.Duration
}

// Code is the structured wire error class carried by every Response. It
// survives the hand-rolled codec as a single byte, unlike the Go error
// values it stands for.
type Code uint8

// Wire error codes.
const (
	CodeOK          Code = iota // success
	CodeBadMethod               // no such method on the worker kind
	CodeBadKind                 // no service registered for the kind
	CodeWorkerFault             // the model call itself failed (worker alive)
	CodeWorkerDied              // worker process/job/host is gone
	CodeTransport               // channel or daemon failure en route
	CodeBusy                    // admission control: no capacity, retry after backoff
)

// Sentinel returns the taxonomy sentinel a code unwraps to (nil for
// CodeOK; unknown codes map to ErrTransport — a frame we cannot
// interpret is a transport problem by definition).
func (c Code) Sentinel() error {
	switch c {
	case CodeOK:
		return nil
	case CodeBadMethod:
		return ErrBadMethod
	case CodeBadKind:
		return ErrBadKind
	case CodeWorkerFault:
		return ErrWorkerFault
	case CodeWorkerDied:
		return ErrWorkerDied
	case CodeBusy:
		return ErrBusy
	default:
		return ErrTransport
	}
}

// ClassifyErr maps a worker-side dispatch error to its wire code. It is
// the encode half of the taxonomy: serveConn, the local channel and the
// daemon run every error through it before framing a Response.
func ClassifyErr(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrNoSuchMethod):
		return CodeBadMethod
	case errors.Is(err, ErrBadKind):
		return CodeBadKind
	case errors.Is(err, ErrWorkerDied):
		return CodeWorkerDied
	case errors.Is(err, ErrBusy):
		return CodeBusy
	case errors.Is(err, ErrTransport):
		return CodeTransport
	default:
		return CodeWorkerFault
	}
}

// WireError is a decoded wire failure: the code plus the originating
// message. It unwraps to the code's sentinel, so
// errors.Is(err, kernel.ErrBadMethod) (etc.) holds on the coupler side
// of any channel.
type WireError struct {
	Code Code
	Msg  string
}

func (e *WireError) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return e.Code.Sentinel().Error()
}

func (e *WireError) Unwrap() error { return e.Code.Sentinel() }

// ResponseError converts a decoded Response into the coupler-side error
// (nil on CodeOK).
func ResponseError(resp *Response) error {
	if resp.Code == CodeOK {
		return nil
	}
	return &WireError{Code: resp.Code, Msg: resp.Err}
}

// Wire framing: a hand-rolled little-endian binary codec. Every RPC on
// the sockets and ibis channels (and through the daemon proxy) crosses
// this codec twice, so it avoids per-call encoder allocation entirely:
// marshalling appends into a caller-provided buffer (see GetBuf/PutBuf)
// and unmarshalling aliases sub-slices of the received frame.
const (
	tagRequest     = 0x52 // 'R'
	tagResponse    = 0x50 // 'P'
	tagState       = 0x53 // 'S'
	tagStateReq    = 0x51 // 'Q'
	tagTransfer    = 0x54 // 'T' — worker-to-worker state stream (transfer.go)
	tagTransferAck = 0x41 // 'A' — stream receipt acknowledgement
	tagStaged      = 0x47 // 'G' — slot-tagged staged state application
	tagGangHello   = 0x48 // 'H' — gang link handshake (gang.go)
	tagSnapshot    = 0x4B // 'K' — worker checkpoint snapshot (checkpoint.go)
	tagManifest    = 0x4D // 'M' — striped transfer manifest (stripe.go)
	tagStripe      = 0x58 // 'X' — one stripe of a striped transfer
	tagStateZ      = 0x5A // 'Z' — compressed state/snapshot frame (compress.go)
)

func floatBits(x float64) uint64     { return math.Float64bits(x) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// FrameTag returns the leading tag byte of a wire frame (0 for an empty
// frame). Peer listeners use it to route an inbound connection's first
// frame: transfer streams, aborts and gang hellos all arrive on the same
// listener.
func FrameTag(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// IsGangHello reports whether a frame is a gang link handshake.
func IsGangHello(b []byte) bool { return FrameTag(b) == tagGangHello }

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf borrows a reusable marshal buffer (length 0).
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf. The caller must not hold
// on to slices derived from it.
func PutBuf(b *[]byte) { bufPool.Put(b) }

func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func appendBytes32(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString16(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendFloats(dst []byte, xs []float64) []byte {
	for _, x := range xs {
		dst = appendU64(dst, math.Float64bits(x))
	}
	return dst
}

func appendVecs(dst []byte, vs []data.Vec3) []byte {
	for _, v := range vs {
		dst = appendU64(dst, math.Float64bits(v[0]))
		dst = appendU64(dst, math.Float64bits(v[1]))
		dst = appendU64(dst, math.Float64bits(v[2]))
	}
	return dst
}

// reader walks a received frame.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("kernel: truncated frame reading %s at offset %d/%d", what, r.off, len(r.b))
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes32(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *reader) string16(what string) string {
	n := int(r.u16(what))
	if r.err != nil || r.off+n > len(r.b) {
		r.fail(what)
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) floats(n int, what string) []float64 {
	if r.err != nil || r.off+8*n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

func (r *reader) vecs(n int, what string) []data.Vec3 {
	if r.err != nil || r.off+24*n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := make([]data.Vec3, n)
	for i := range out {
		out[i][0] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		out[i][1] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off+8:]))
		out[i][2] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off+16:]))
		r.off += 24
	}
	return out
}

// AppendRequest marshals req into dst and returns the extended slice.
func AppendRequest(dst []byte, req *Request) []byte {
	dst = append(dst, tagRequest)
	dst = appendU64(dst, req.ID)
	dst = appendU64(dst, uint64(req.Worker))
	dst = appendU64(dst, uint64(req.SentAt))
	dst = appendString16(dst, req.Method)
	return appendBytes32(dst, req.Args)
}

// UnmarshalRequest parses a frame produced by AppendRequest. req.Args
// aliases b.
func UnmarshalRequest(b []byte, req *Request) error {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagRequest {
		return fmt.Errorf("kernel: not a request frame (tag 0x%02x)", tag)
	}
	req.ID = r.u64("id")
	req.Worker = int(r.u64("worker"))
	req.SentAt = time.Duration(r.u64("sentAt"))
	req.Method = r.string16("method")
	req.Args = r.bytes32("args")
	return r.err
}

// AppendResponse marshals resp into dst and returns the extended slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, tagResponse)
	dst = appendU64(dst, resp.ID)
	dst = append(dst, byte(resp.Code))
	dst = appendU64(dst, uint64(resp.DoneAt))
	dst = appendString16(dst, resp.Err)
	return appendBytes32(dst, resp.Result)
}

// UnmarshalResponse parses a frame produced by AppendResponse. resp.Result
// aliases b.
func UnmarshalResponse(b []byte, resp *Response) error {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagResponse {
		return fmt.Errorf("kernel: not a response frame (tag 0x%02x)", tag)
	}
	resp.ID = r.u64("id")
	resp.Code = Code(r.u8("code"))
	resp.DoneAt = time.Duration(r.u64("doneAt"))
	resp.Err = r.string16("err")
	resp.Result = r.bytes32("result")
	return r.err
}
