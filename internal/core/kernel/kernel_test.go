package kernel

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/deploy"
	"jungle/internal/vtime"
)

type nopService struct{}

func (nopService) Dispatch(string, []byte, time.Duration) ([]byte, time.Duration, error) {
	return nil, 0, nil
}
func (nopService) Close() {}

func nopFactory(Config) (Service, error) { return nopService{}, nil }

func TestRegisterAndNew(t *testing.T) {
	Register("test-kind", nopFactory)
	if !Registered("test-kind") {
		t.Fatal("test-kind not registered")
	}
	svc, err := New("test-kind", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if svc == nil {
		t.Fatal("nil service")
	}
	found := false
	for _, k := range Kinds() {
		if k == "test-kind" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() = %v, missing test-kind", Kinds())
	}
}

func TestNewUnknownKindReturnsErrBadKind(t *testing.T) {
	_, err := New("no-such-kind", Config{})
	if !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register("dup-kind", nopFactory)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		if !strings.Contains(r.(string), "dup-kind") {
			t.Fatalf("panic message %q does not name the kind", r)
		}
	}()
	Register("dup-kind", nopFactory)
}

func TestPickDevice(t *testing.T) {
	cpu := &vtime.Device{Name: "c", Kind: vtime.CPU, Gflops: 8, Cores: 4}
	gpu := &vtime.Device{Name: "g", Kind: vtime.GPU, Gflops: 100, Cores: 1}
	res := &deploy.Resource{Name: "r", CPU: cpu, GPU: gpu}
	if d, err := PickDevice(res, false); err != nil || d != cpu {
		t.Fatalf("cpu pick: %v %v", d, err)
	}
	if d, err := PickDevice(res, true); err != nil || d != gpu {
		t.Fatalf("gpu pick: %v %v", d, err)
	}
	if _, err := PickDevice(&deploy.Resource{Name: "n", CPU: cpu}, true); err == nil {
		t.Fatal("no-GPU resource accepted for GPU kernel")
	}
}

func TestDerate(t *testing.T) {
	dev := &vtime.Device{Name: "d", Gflops: 100}
	if got := Derate(dev, 0.5).Gflops; got != 50 {
		t.Fatalf("derated Gflops = %v", got)
	}
	if got := Derate(dev, 0).Gflops; got != 100 {
		t.Fatalf("zero efficiency should mean no derating, got %v", got)
	}
	if dev.Gflops != 100 {
		t.Fatal("Derate mutated its input")
	}
}

func TestRequestResponseRoundTrip(t *testing.T) {
	req := Request{ID: 42, Worker: 7, Method: "evolve", Args: []byte{1, 2, 3}, SentAt: 5 * time.Second}
	var got Request
	if err := UnmarshalRequest(AppendRequest(nil, &req), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("request round trip: %+v != %+v", got, req)
	}

	resp := Response{ID: 42, Result: []byte{9, 8}, Code: CodeWorkerFault, Err: "boom", DoneAt: time.Minute}
	var gotR Response
	if err := UnmarshalResponse(AppendResponse(nil, &resp), &gotR); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotR) {
		t.Fatalf("response round trip: %+v != %+v", gotR, resp)
	}

	// Empty args/results survive (aliased sub-slices may be non-nil).
	var gotE Response
	if err := UnmarshalResponse(AppendResponse(nil, &Response{ID: 1}), &gotE); err != nil {
		t.Fatal(err)
	}
	if gotE.ID != 1 || len(gotE.Result) != 0 || gotE.Err != "" {
		t.Fatalf("empty response round trip: %+v", gotE)
	}
}

// TestErrorCodeRoundTrip: each taxonomy code must survive the codec and
// unwrap to its sentinel with errors.Is on the decoded side — the
// structured replacement for the old string-typed resp.Err matching.
func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		code Code
		want error
	}{
		{CodeBadMethod, ErrBadMethod},
		{CodeBadMethod, ErrNoSuchMethod}, // same sentinel, both names
		{CodeBadKind, ErrBadKind},
		{CodeWorkerFault, ErrWorkerFault},
		{CodeWorkerDied, ErrWorkerDied},
		{CodeTransport, ErrTransport},
		{CodeBusy, ErrBusy},
		{Code(250), ErrTransport}, // unknown codes degrade to transport
	}
	for _, c := range cases {
		frame := AppendResponse(nil, &Response{ID: 9, Code: c.code, Err: "detail"})
		var got Response
		if err := UnmarshalResponse(frame, &got); err != nil {
			t.Fatal(err)
		}
		err := ResponseError(&got)
		if !errors.Is(err, c.want) {
			t.Fatalf("code %d: errors.Is(%v, %v) = false", c.code, err, c.want)
		}
		if !strings.Contains(err.Error(), "detail") {
			t.Fatalf("code %d: message lost: %q", c.code, err)
		}
	}
	ok := Response{ID: 9}
	if err := ResponseError(&ok); err != nil {
		t.Fatalf("CodeOK produced error %v", err)
	}
}

// TestClassifyErr: the worker-side encode half must be the inverse of
// Sentinel for the whole taxonomy, and default unknown errors to a
// worker fault (retry elsewhere will not help).
func TestClassifyErr(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeOK},
		{ErrNoSuchMethod, CodeBadMethod},
		{fmt.Errorf("gravity.%s: %w", "nope", ErrBadMethod), CodeBadMethod},
		{ErrBadKind, CodeBadKind},
		{ErrWorkerDied, CodeWorkerDied},
		{ErrBusy, CodeBusy},
		{ErrTransport, CodeTransport},
		{errors.New("physics exploded"), CodeWorkerFault},
	}
	for _, c := range cases {
		if got := ClassifyErr(c.err); got != c.want {
			t.Fatalf("ClassifyErr(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// WireError wraps transparently through fmt.Errorf chains.
	wrapped := fmt.Errorf("core: gravity.evolve: %w", &WireError{Code: CodeWorkerDied, Msg: "gone"})
	if !errors.Is(wrapped, ErrWorkerDied) {
		t.Fatalf("wrapped WireError does not unwrap: %v", wrapped)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var req Request
	if err := UnmarshalRequest([]byte{0xff, 0x01}, &req); err == nil {
		t.Fatal("garbage accepted as request")
	}
	var resp Response
	if err := UnmarshalResponse([]byte{}, &resp); err == nil {
		t.Fatal("empty frame accepted as response")
	}
	frame := AppendRequest(nil, &Request{Method: "m", Args: []byte{1, 2, 3}})
	if err := UnmarshalRequest(frame[:len(frame)-1], &req); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := UnmarshalState([]byte{0x00}); err == nil {
		t.Fatal("garbage accepted as state")
	}
	// A corrupt header claiming a huge key column must error out, not
	// attempt a multi-gigabyte allocation.
	huge := []byte{tagState}
	huge = appendU32(huge, 1<<31-1)
	huge = append(huge, 1) // keyflag
	if _, err := UnmarshalState(huge); err == nil {
		t.Fatal("truncated huge key column accepted")
	}
}

func TestGatherScatterIntColumn(t *testing.T) {
	p := data.NewParticles(3)
	p.StellarType[0], p.StellarType[1], p.StellarType[2] = 1, 4, 14
	st, err := GatherState(p, data.AttrStellarType)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := UnmarshalState(b)
	if err != nil {
		t.Fatal(err)
	}
	q := data.NewParticles(3)
	if err := ScatterState(q, wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.StellarType, q.StellarType) {
		t.Fatalf("stellar_type round trip: %v != %v", q.StellarType, p.StellarType)
	}
}

func TestStateRoundTrip(t *testing.T) {
	st := NewState(3)
	st.Key = []uint64{11, 22, 33}
	st.AddFloat(data.AttrMass, []float64{1, 2, math.Pi})
	st.AddVec(data.AttrPos, []data.Vec3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	st.AddVec(data.AttrVel, []data.Vec3{{-1, 0, 1}, {0, 0, 0}, {1e-300, 1e300, -0.0}})

	b, err := MarshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalState(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("state round trip:\n%+v\n!=\n%+v", got, st)
	}
}

func TestStateRejectsRaggedColumns(t *testing.T) {
	st := NewState(3)
	st.AddFloat(data.AttrMass, []float64{1, 2})
	if _, err := MarshalState(st); err == nil {
		t.Fatal("ragged column accepted")
	}
}

func TestStateRequestRoundTrip(t *testing.T) {
	q := StateRequest{Attrs: []string{data.AttrMass, data.AttrPos}}
	got, err := UnmarshalStateRequest(AppendStateRequest(nil, &q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&q, got) {
		t.Fatalf("state request round trip: %+v != %+v", got, q)
	}
}

func TestGatherScatterState(t *testing.T) {
	p := data.NewParticles(4)
	for i := 0; i < 4; i++ {
		p.Mass[i] = float64(i + 1)
		p.Pos[i] = data.Vec3{float64(i), 0, 1}
		p.Vel[i] = data.Vec3{0, float64(i), 2}
	}
	st, err := GatherState(p) // default mass/pos/vel
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := UnmarshalState(b)
	if err != nil {
		t.Fatal(err)
	}
	q := data.NewParticles(4)
	if err := ScatterState(q, wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Mass, q.Mass) || !reflect.DeepEqual(p.Pos, q.Pos) || !reflect.DeepEqual(p.Vel, q.Vel) {
		t.Fatal("gather→marshal→unmarshal→scatter lost data")
	}
	if err := ScatterState(data.NewParticles(3), wire); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := GatherState(p, "no-such-attr"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}
