package kernel

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// DigestState returns an FNV-1a hash over a state payload's column bit
// patterns. Columns are folded in attribute-name order (keys first), so
// two payloads carrying the same columns digest equally regardless of
// the order the columns were added — the identity ensemble members and
// conformance suites compare is "same bits", not "same payload layout".
func DigestState(s *StatePayload) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	mix := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	mix(uint64(s.N))
	for _, k := range s.Key {
		mix(k)
	}
	names := make([]string, 0, len(s.FloatAttrs)+len(s.VecAttrs))
	names = append(names, s.FloatAttrs...)
	names = append(names, s.VecAttrs...)
	sort.Strings(names)
	for _, a := range names {
		h.Write([]byte(a))
		if col := s.Float(a); col != nil {
			for _, v := range col {
				mix(math.Float64bits(v))
			}
			continue
		}
		for _, v := range s.Vec(a) {
			mix(math.Float64bits(v[0]))
			mix(math.Float64bits(v[1]))
			mix(math.Float64bits(v[2]))
		}
	}
	return h.Sum64()
}
