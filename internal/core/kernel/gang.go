package kernel

import (
	"jungle/internal/mpisim"
)

// Gang support: a kernel may be deployed as a gang of K workers running a
// domain-decomposed instance of the same service. Each rank's service is
// constructed with its GangInfo (rank, size, neighbor table) in Config,
// and — once every rank has joined the pool and the peer links are wired
// by the proxy's gang_init op — receives the live communicator through
// the Shardable interface. Services that do not implement Shardable
// cannot be started with Workers > 1; the worker host fails the job with
// a clear error instead of running K divergent solo instances.

// GangInfo describes one rank's place in a gang. It is available at
// service construction time (the communicator arrives later, via
// Shardable.SetGang, because the peer links cannot exist before all
// ranks have announced).
type GangInfo struct {
	// Rank is this worker's rank in [0, Size).
	Rank int
	// Size is the gang size (K).
	Size int
	// Neighbors are the adjacent ranks of the slab decomposition — the
	// neighbor table kernels with local ghost-region exchange key their
	// halo traffic on. For the contiguous slab decomposition these are
	// Rank-1 and Rank+1 where they exist.
	Neighbors []int
}

// NeighborsOf returns the slab-decomposition neighbor table for a rank.
func NeighborsOf(rank, size int) []int {
	var n []int
	if rank > 0 {
		n = append(n, rank-1)
	}
	if rank < size-1 {
		n = append(n, rank+1)
	}
	return n
}

// Shardable is implemented by services that can run as one rank of a
// gang. SetGang is called exactly once by the worker host, after the
// gang's peer links are wired and before any model call is dispatched;
// the service binds its virtual clock to the communicator and uses the
// mpisim collectives for halo exchange and reductions during evolve.
type Shardable interface {
	SetGang(g *mpisim.Gang) error
}

// GangInitArgs is the proxy-level "gang_init" op: the coupler sends it to
// every rank of a freshly started gang so the ranks can wire their peer
// links (rank i dials every rank j > i; lower ranks are awaited on the
// peer listener, identified by the gang hello frame).
type GangInitArgs struct {
	// ID names the gang; hello frames carry it so one worker could in
	// principle serve several gangs' link handshakes without confusion.
	ID uint64
	// Rank and Size locate the receiving worker in the gang. They repeat
	// the values baked into the worker's job arguments as a consistency
	// check.
	Rank, Size int
	// Peers are the peer-listener addresses of all ranks, indexed by
	// rank ("host:port" in the SmartSockets address space).
	Peers []string
}

// MethodGangInit is the proxy-level gang wiring op.
const MethodGangInit = "gang_init"
