package kernel

import (
	"jungle/internal/mpisim"
)

// Gang support: a kernel may be deployed as a gang of K workers running a
// domain-decomposed instance of the same service. Each rank's service is
// constructed with its GangInfo (rank, size, neighbor table) in Config,
// and — once every rank has joined the pool and the peer links are wired
// by the proxy's gang_init op — receives the live communicator through
// the Shardable interface. Services that do not implement Shardable
// cannot be started with Workers > 1; the worker host fails the job with
// a clear error instead of running K divergent solo instances.

// GangInfo describes one rank's place in a gang. It is available at
// service construction time (the communicator arrives later, via
// Shardable.SetGang, because the peer links cannot exist before all
// ranks have announced).
type GangInfo struct {
	// Rank is this worker's rank in [0, Size).
	Rank int
	// Size is the gang size (K).
	Size int
	// Neighbors are the adjacent ranks of the slab decomposition — the
	// neighbor table kernels with local ghost-region exchange key their
	// halo traffic on. For the contiguous slab decomposition these are
	// Rank-1 and Rank+1 where they exist.
	Neighbors []int
}

// NeighborsOf returns the slab-decomposition neighbor table for a rank.
func NeighborsOf(rank, size int) []int {
	var n []int
	if rank > 0 {
		n = append(n, rank-1)
	}
	if rank < size-1 {
		n = append(n, rank+1)
	}
	return n
}

// Shardable is implemented by services that can run as one rank of a
// gang. SetGang is called exactly once by the worker host, after the
// gang's peer links are wired and before any model call is dispatched;
// the service binds its virtual clock to the communicator and uses the
// mpisim collectives for halo exchange and reductions during evolve.
type Shardable interface {
	SetGang(g *mpisim.Gang) error
}

// GangInitArgs is the proxy-level "gang_init" op: the coupler sends it to
// every rank of a freshly started gang so the ranks can wire their peer
// links (rank i dials every rank j > i; lower ranks are awaited on the
// peer listener, identified by the gang hello frame).
type GangInitArgs struct {
	// ID names the gang; hello frames carry it so one worker could in
	// principle serve several gangs' link handshakes without confusion.
	ID uint64
	// Rank and Size locate the receiving worker in the gang. They repeat
	// the values baked into the worker's job arguments as a consistency
	// check.
	Rank, Size int
	// Peers are the peer-listener addresses of all ranks, indexed by
	// rank ("host:port" in the SmartSockets address space).
	Peers []string
}

// MethodGangInit is the proxy-level gang wiring op.
const MethodGangInit = "gang_init"

// Reshardable is implemented by Shardable services whose slab boundaries
// can be moved between steps. Reshard installs a new cuts vector (size+1
// monotone row boundaries, see mpisim.CutRange); the service applies it
// before its next evolve. Because every rank holds the full replicated
// particle arrays and force assembly copies rows from the allgathered
// peer slabs, moving a boundary requires no state movement and produces
// bit-identical results — only the distribution of virtual compute time
// across ranks changes. The coupler broadcasts the same cuts to every
// rank on the gang channel's ordered fan-out, so all ranks switch
// between the same pair of steps (the gang epoch).
type Reshardable interface {
	Shardable
	Reshard(cuts []int) error
}

// ReshardArgs carries a new cuts vector to every rank of a gang.
type ReshardArgs struct {
	// Cuts are the size+1 slab boundaries: rank r owns rows
	// [Cuts[r], Cuts[r+1]).
	Cuts []int
}

// MethodReshard installs new slab boundaries on a Reshardable service.
const MethodReshard = "reshard"

// RankLoadResult is one rank's answer to a rank_load query: how many
// rows it currently owns and how much virtual compute time its slab
// work has consumed since the previous query (the accumulator resets on
// read). The rebalancer derives per-rank throughput (rows/compute) from
// consecutive samples; merged evolve completions cannot reveal this
// because the collectives synchronize all rank clocks to the slowest.
type RankLoadResult struct {
	// Rank echoes the responding rank.
	Rank int
	// Rows is the current slab width, in particle rows.
	Rows int
	// ComputeNs is the virtual compute time (nanoseconds) spent in slab
	// work since the last rank_load query.
	ComputeNs int64
}

// MethodRankLoad queries one rank's slab width and compute-time
// accumulator. The coupler issues it per-rank (not as a gang
// broadcast), so each rank's own numbers come back rather than rank 0's.
const MethodRankLoad = "rank_load"
