package kernel

import (
	"bytes"
	"math"
	"testing"

	"jungle/internal/amuse/data"
)

func testState(n int) *StatePayload {
	key := make([]uint64, n)
	mass := make([]float64, n)
	pos := make([]data.Vec3, n)
	vel := make([]data.Vec3, n)
	for i := 0; i < n; i++ {
		key[i] = uint64(i + 1)
		mass[i] = 1.0 / float64(n)
		pos[i] = data.Vec3{float64(i) * 0.25, -float64(i) * 0.5, 1}
		vel[i] = data.Vec3{0.125, float64(i%7) * 0.0625, -2}
	}
	s := NewState(n)
	s.Key = key
	return s.AddFloat("mass", mass).AddVec("position", pos).AddVec("velocity", vel)
}

func TestCompressStateRoundTrip(t *testing.T) {
	raw, err := MarshalState(testState(513))
	if err != nil {
		t.Fatal(err)
	}
	z := CompressState(raw)
	if !IsCompressedState(z) {
		t.Fatalf("structured state should compress (raw %d bytes)", len(raw))
	}
	if len(z) >= len(raw) {
		t.Fatalf("compressed %d >= raw %d", len(z), len(raw))
	}
	back, err := MaybeDecompressState(z, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("delta+flate round trip is not bitwise identical")
	}
}

func TestCompressSnapshotRoundTrip(t *testing.T) {
	raw, err := MarshalSnapshot(&Snapshot{
		Kind: "gravity", Model: 0.25, Steps: 17, VTime: 12345,
		State: testState(129), Extra: []byte("integrator=leapfrog"),
	})
	if err != nil {
		t.Fatal(err)
	}
	z := CompressState(raw)
	if !IsCompressedState(z) {
		t.Fatal("snapshot frame should compress")
	}
	back, err := MaybeDecompressState(z, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("snapshot round trip is not bitwise identical")
	}
}

func TestCompressStateRefDelta(t *testing.T) {
	s := testState(513)
	base, err := MarshalState(s)
	if err != nil {
		t.Fatal(err)
	}
	// A slow evolution: nudge one column slightly.
	pos := s.Vec("position")
	for i := range pos {
		pos[i][0] = math.Nextafter(pos[i][0], 1e30)
	}
	cur, err := MarshalState(s)
	if err != nil {
		t.Fatal(err)
	}
	z := CompressStateRef(cur, base, 42)
	if !IsCompressedState(z) {
		t.Fatal("near-identical frame should ref-delta compress")
	}
	if ref, ok := CompressedBaseRef(z); !ok || ref != 42 {
		t.Fatalf("CompressedBaseRef = (%d, %v), want (42, true)", ref, ok)
	}
	if len(z)*3 > len(cur) {
		t.Fatalf("ref-delta blob %d bytes, want <= 1/3 of raw %d", len(z), len(cur))
	}
	lookup := func(ref uint64) ([]byte, bool) { return base, ref == 42 }
	back, err := MaybeDecompressState(z, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, cur) {
		t.Fatal("ref-delta round trip is not bitwise identical")
	}

	// Wrong base content must be detected via the digest guard.
	bad := append([]byte(nil), base...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := MaybeDecompressState(z, func(uint64) ([]byte, bool) { return bad, true }); err == nil {
		t.Fatal("corrupted base must fail the digest guard")
	}
	// Missing base must error, not mis-decode.
	if _, err := MaybeDecompressState(z, func(uint64) ([]byte, bool) { return nil, false }); err == nil {
		t.Fatal("unknown base ref must fail")
	}
}

// TestCompressNegotiationFallback: a peer that never compresses sends raw
// frames; a receiver that always calls MaybeDecompressState must pass them
// through untouched (and aliasing, not copying). Conversely incompressible
// payloads come back raw from CompressState, so a codec-less receiver can
// still parse them.
func TestCompressNegotiationFallback(t *testing.T) {
	raw, err := MarshalState(testState(64))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MaybeDecompressState(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &raw[0] || len(got) != len(raw) {
		t.Fatal("raw frames must pass through MaybeDecompressState unchanged")
	}

	// Incompressible bytes: CompressState must return the raw frame so a
	// receiver without the codec can still decode it.
	s := NewState(257)
	noise := make([]float64, 257)
	x := uint64(0x2545F4914F6CDD1D)
	for i := range noise {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise[i] = math.Float64frombits(x)
	}
	s.AddFloat("noise", noise)
	rawNoise, err := MarshalState(s)
	if err != nil {
		t.Fatal(err)
	}
	if z := CompressState(rawNoise); IsCompressedState(z) && len(z) >= len(rawNoise) {
		t.Fatal("compression that does not pay must fall back to the raw frame")
	}
	if _, err := UnmarshalState(CompressState(rawNoise)); IsCompressedState(CompressState(rawNoise)) {
		_ = err // compressed — fine, it paid after all
	} else if err != nil {
		t.Fatalf("raw fallback frame must stay parseable: %v", err)
	}
}

// FuzzDecompressTruncation feeds truncated and mutated compressed frames to
// the decoder: it must error or return bytes, never panic, and a truncated
// frame must never decode "successfully" to the original.
func FuzzDecompressTruncation(f *testing.F) {
	raw, err := MarshalState(testState(65))
	if err != nil {
		f.Fatal(err)
	}
	z := CompressState(raw)
	f.Add(z, 10)
	f.Add(z, len(z)-1)
	f.Add(raw, 5)
	f.Fuzz(func(t *testing.T, frame []byte, cut int) {
		if cut < 0 || cut > len(frame) {
			cut = len(frame)
		}
		got, err := MaybeDecompressState(frame[:cut], func(uint64) ([]byte, bool) { return raw, true })
		if err == nil && IsCompressedState(frame) && cut < len(frame) && bytes.Equal(got, raw) {
			t.Fatal("truncated compressed frame decoded to the full payload")
		}
	})
}

func TestSplitStripes(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{0, 4}, {7, 4}, {64, 1}, {64, 4}, {1000, 3}, {8 << 20, 8}, {24, 16},
	} {
		off := SplitStripes(tc.total, tc.n)
		if len(off) != tc.n+1 || off[0] != 0 || off[tc.n] != tc.total {
			t.Fatalf("SplitStripes(%d,%d) = %v", tc.total, tc.n, off)
		}
		for i := 1; i <= tc.n; i++ {
			if off[i] < off[i-1] {
				t.Fatalf("non-monotonic offsets %v", off)
			}
			if i < tc.n && off[i]%8 != 0 {
				t.Fatalf("unaligned interior offset %v", off)
			}
		}
	}
}

func TestStripeFramesRoundTrip(t *testing.T) {
	payload, err := MarshalState(testState(100))
	if err != nil {
		t.Fatal(err)
	}
	off := SplitStripes(len(payload), 3)
	m := &StripeManifest{ID: 7, Codec: CodecRaw, Total: uint32(len(payload))}
	for i := 0; i < 3; i++ {
		part := payload[off[i]:off[i+1]]
		m.Stripes = append(m.Stripes, StripeInfo{
			Offset: uint32(off[i]), Length: uint32(len(part)), Digest: Digest64(part),
		})
	}
	mb := AppendManifest(nil, m)
	if !IsManifest(mb) {
		t.Fatal("manifest tag")
	}
	back, err := UnmarshalManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != m.ID || back.Total != m.Total || len(back.Stripes) != 3 {
		t.Fatalf("manifest round trip: %+v", back)
	}
	// Reassemble from out-of-order stripes.
	got := make([]byte, back.Total)
	for _, i := range []int{2, 0, 1} {
		sb := AppendStripe(nil, m.ID, i, payload[off[i]:off[i+1]])
		if !IsStripe(sb) {
			t.Fatal("stripe tag")
		}
		id, idx, data, err := UnmarshalStripe(sb)
		if err != nil || id != m.ID || idx != i {
			t.Fatalf("stripe round trip: id=%d idx=%d err=%v", id, idx, err)
		}
		info := back.Stripes[idx]
		if Digest64(data) != info.Digest || len(data) != int(info.Length) {
			t.Fatal("stripe digest/length mismatch")
		}
		copy(got[info.Offset:], data)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembly mismatch")
	}
	// Truncated manifest and stripe frames must error cleanly.
	for cut := 0; cut < len(mb); cut++ {
		if _, err := UnmarshalManifest(mb[:cut]); err == nil {
			t.Fatalf("truncated manifest at %d decoded", cut)
		}
	}
}
