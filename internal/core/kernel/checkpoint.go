package kernel

import (
	"fmt"
	"time"
)

// Checkpoint/restore: a worker can externalize its complete model state as
// a Snapshot and later be rebuilt from one — the capability underneath
// stateful worker replacement, gang rank recovery and resumable
// simulations. A snapshot is the full phase-space state as a columnar
// StatePayload (the same codec bulk transfers ride) plus model-clock
// metadata and an optional kind-private blob for state that has no
// columnar shape (stellar populations, staged slots).
//
// Two ordinary dispatch methods carry the capability over every channel:
//
//   - "checkpoint" (no args): marshal a Snapshot of the worker's state.
//     The result is the raw snapshot frame, not a gob payload, so the
//     coupler can store and re-send it without ever decoding the columns.
//   - "restore" (args: a snapshot frame): replace the worker's model state
//     with the snapshot's. Restore is only meaningful after "setup" has
//     configured the kernel; the snapshot carries dynamic state, not
//     configuration.
//
// Because both are ordinary calls on the per-worker FIFO, a checkpoint
// issued behind pipelined work naturally waits for that work to finish —
// the FIFO drain point is the snapshot's consistency rule (see DESIGN.md
// "Checkpoint & recovery").

// Checkpoint/restore dispatch methods (served by the model service), and
// the proxy-level op that streams a snapshot over the peer plane.
const (
	MethodCheckpoint = "checkpoint"
	MethodRestore    = "restore"
	// MethodOfferCheckpoint is handled by the worker's proxy, like
	// offer_state: take a snapshot (a loopback "checkpoint" call) and
	// stream the frame to the Peer address — normally the daemon's
	// checkpoint store — without the bytes visiting the coupler.
	MethodOfferCheckpoint = "offer_checkpoint"
)

// Snapshot is one worker's complete model state at a quiescent point.
type Snapshot struct {
	// Kind is the worker kind that produced the snapshot; Restore rejects
	// a snapshot from a different kind.
	Kind string
	// Model is the kernel's model clock (N-body time units).
	Model float64
	// Steps is the kernel's integrator step count.
	Steps int
	// VTime is the service's virtual clock when the snapshot was taken
	// (diagnostics; restore does not rewind a replacement's clock).
	VTime time.Duration
	// State carries the phase-space columns (nil for kinds whose dynamic
	// state is fully in Extra).
	State *StatePayload
	// Extra is a kind-private gob blob for non-columnar state.
	Extra []byte
}

// Checkpointable is the capability interface a service implements to
// support checkpoint/restore. Both methods run on the worker's dispatch
// goroutine, so they see quiescent model state.
type Checkpointable interface {
	// Snapshot externalizes the complete model state.
	Snapshot() (*Snapshot, error)
	// Restore replaces the model state with the snapshot's. The service
	// must already be configured (setup dispatched); restoring a snapshot
	// of a different kind is an error.
	Restore(*Snapshot) error
}

// ServeCheckpoint serves the two checkpoint dispatch methods for a
// service: services route their "checkpoint"/"restore" cases here so the
// frame handling lives in one place.
func ServeCheckpoint(c Checkpointable, method string, args []byte) ([]byte, error) {
	switch method {
	case MethodCheckpoint:
		snap, err := c.Snapshot()
		if err != nil {
			return nil, err
		}
		return MarshalSnapshot(snap)
	case MethodRestore:
		snap, err := UnmarshalSnapshot(args)
		if err != nil {
			return nil, err
		}
		if err := c.Restore(snap); err != nil {
			return nil, err
		}
		return Encode(Empty{}), nil
	default:
		return nil, fmt.Errorf("%w: %s is not a checkpoint method", ErrNoSuchMethod, method)
	}
}

// CheckKind is the shared Restore precondition: the snapshot must come
// from the same worker kind.
func (s *Snapshot) CheckKind(kind string) error {
	if s.Kind != kind {
		return fmt.Errorf("kernel: restore: snapshot of kind %q onto a %q worker", s.Kind, kind)
	}
	return nil
}

// OfferCheckpointArgs asks a worker's proxy to snapshot its service and
// stream the frame to a peer listener (the daemon's checkpoint store).
// Like OfferStateArgs it must keep its legacy shape — gob transmits field
// names — so default-path checkpoints stay wire-identical; tuned offers
// send OfferCheckpointTuned instead.
type OfferCheckpointArgs struct {
	// ID names the stream; the store files the blob under it.
	ID uint64
	// Peer is the destination listener's address ("host:port" in the
	// SmartSockets address space).
	Peer string
}

// OfferCheckpointTuned is OfferCheckpointArgs plus the bandwidth-aware
// data-plane knobs; sent in place of OfferCheckpointArgs when any knob is
// non-zero. The proxy decodes both shapes into this superset.
type OfferCheckpointTuned struct {
	// ID names the stream; the store files the blob under it.
	ID uint64
	// Peer is the destination listener's address ("host:port" in the
	// SmartSockets address space).
	Peer string
	// Stripes is the maximum number of parallel peer streams the sender may
	// split the encoded blob across (0 or 1 disables striping).
	Stripes int
	// Codec selects wire compression for the snapshot blob (CodecRaw,
	// CodecDeltaFlate, or CodecRefDelta when Base names a blob the store
	// still holds).
	Codec byte
	// Base is the blob reference of the previous checkpoint of this model
	// (0 = none); with CodecRefDelta the worker sends only the XOR residue
	// against the snapshot bytes it previously streamed under Base.
	Base uint64
}

// Snapshot wire framing. The frame embeds an unmodified StatePayload
// frame, so the columns cross the codec exactly once.

// AppendSnapshot marshals s into dst and returns the extended slice.
func AppendSnapshot(dst []byte, s *Snapshot) ([]byte, error) {
	dst = append(dst, tagSnapshot)
	dst = appendString16(dst, s.Kind)
	dst = appendU64(dst, floatBits(s.Model))
	dst = appendU64(dst, uint64(s.Steps))
	dst = appendU64(dst, uint64(s.VTime))
	if s.State != nil {
		var err error
		dst = append(dst, 1)
		if dst, err = AppendState(dst, s.State); err != nil {
			return dst, err
		}
	} else {
		dst = append(dst, 0)
	}
	return appendBytes32(dst, s.Extra), nil
}

// MarshalSnapshot marshals s into a fresh slice.
func MarshalSnapshot(s *Snapshot) ([]byte, error) {
	return AppendSnapshot(nil, s)
}

// UnmarshalSnapshot parses a frame produced by AppendSnapshot. The state
// columns and Extra alias b.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagSnapshot {
		return nil, fmt.Errorf("kernel: not a snapshot frame (tag 0x%02x)", tag)
	}
	s := &Snapshot{
		Kind:  r.string16("kind"),
		Model: floatFromBits(r.u64("model clock")),
		Steps: int(r.u64("steps")),
		VTime: time.Duration(r.u64("vtime")),
	}
	if r.u8("stateflag") == 1 {
		if r.err != nil {
			return nil, r.err
		}
		// readState leaves the reader just past the embedded frame, so the
		// snapshot codec never re-derives the state frame's length.
		st, err := readState(&r)
		if err != nil {
			return nil, err
		}
		s.State = st
	}
	s.Extra = r.bytes32("extra")
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}
