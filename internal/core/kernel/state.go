package kernel

import (
	"fmt"

	"jungle/internal/amuse/data"
)

// StatePayload is the batched columnar state transfer: whole attribute
// columns move in one RPC instead of one call per particle (or per
// attribute). It is the argument of "set_state" and the result of
// "get_state", and always travels through the hand-rolled codec below —
// never through gob.
//
// Columns are positional: index i in every column refers to the same
// particle, in the order the worker's set_particles call established.
type StatePayload struct {
	N int
	// Key, when non-empty, carries the particles' stable identifiers.
	Key []uint64
	// Parallel slices: FloatCols[i] holds the column named FloatAttrs[i].
	FloatAttrs []string
	FloatCols  [][]float64
	VecAttrs   []string
	VecCols    [][]data.Vec3
}

// NewState returns an empty payload for n particles.
func NewState(n int) *StatePayload { return &StatePayload{N: n} }

// AddFloat appends a scalar column. The slice is referenced, not copied.
func (s *StatePayload) AddFloat(attr string, col []float64) *StatePayload {
	s.FloatAttrs = append(s.FloatAttrs, attr)
	s.FloatCols = append(s.FloatCols, col)
	return s
}

// AddVec appends a vector column. The slice is referenced, not copied.
func (s *StatePayload) AddVec(attr string, col []data.Vec3) *StatePayload {
	s.VecAttrs = append(s.VecAttrs, attr)
	s.VecCols = append(s.VecCols, col)
	return s
}

// Float returns the named scalar column, or nil.
func (s *StatePayload) Float(attr string) []float64 {
	for i, a := range s.FloatAttrs {
		if a == attr {
			return s.FloatCols[i]
		}
	}
	return nil
}

// Vec returns the named vector column, or nil.
func (s *StatePayload) Vec(attr string) []data.Vec3 {
	for i, a := range s.VecAttrs {
		if a == attr {
			return s.VecCols[i]
		}
	}
	return nil
}

func (s *StatePayload) check() error {
	if len(s.Key) != 0 && len(s.Key) != s.N {
		return fmt.Errorf("kernel: state key column has %d entries, N=%d", len(s.Key), s.N)
	}
	for i, col := range s.FloatCols {
		if len(col) != s.N {
			return fmt.Errorf("kernel: state column %q has %d entries, N=%d", s.FloatAttrs[i], len(col), s.N)
		}
	}
	for i, col := range s.VecCols {
		if len(col) != s.N {
			return fmt.Errorf("kernel: state column %q has %d entries, N=%d", s.VecAttrs[i], len(col), s.N)
		}
	}
	return nil
}

// AppendState marshals s into dst with the fast codec and returns the
// extended slice.
func AppendState(dst []byte, s *StatePayload) ([]byte, error) {
	if err := s.check(); err != nil {
		return dst, err
	}
	dst = append(dst, tagState)
	dst = appendU32(dst, uint32(s.N))
	if len(s.Key) > 0 {
		dst = append(dst, 1)
		for _, k := range s.Key {
			dst = appendU64(dst, k)
		}
	} else {
		dst = append(dst, 0)
	}
	dst = appendU16(dst, uint16(len(s.FloatAttrs)))
	for i, a := range s.FloatAttrs {
		dst = appendString16(dst, a)
		dst = appendFloats(dst, s.FloatCols[i])
	}
	dst = appendU16(dst, uint16(len(s.VecAttrs)))
	for i, a := range s.VecAttrs {
		dst = appendString16(dst, a)
		dst = appendVecs(dst, s.VecCols[i])
	}
	return dst, nil
}

// MarshalState marshals s into a single exactly-sized allocation.
func MarshalState(s *StatePayload) ([]byte, error) {
	size := 1 + 4 + 1 + 8*len(s.Key) + 2 + 2
	for i, a := range s.FloatAttrs {
		size += 2 + len(a) + 8*len(s.FloatCols[i])
	}
	for i, a := range s.VecAttrs {
		size += 2 + len(a) + 24*len(s.VecCols[i])
	}
	return AppendState(make([]byte, 0, size), s)
}

// UnmarshalState parses a frame produced by AppendState.
func UnmarshalState(b []byte) (*StatePayload, error) {
	r := reader{b: b}
	return readState(&r)
}

// readState parses a state frame at the reader's offset, leaving the
// offset just past it — embedding frames (snapshots) parse the state
// and continue without re-deriving its encoded length.
func readState(r *reader) (*StatePayload, error) {
	if tag := r.u8("tag"); r.err == nil && tag != tagState {
		return nil, fmt.Errorf("kernel: not a state frame (tag 0x%02x)", tag)
	}
	s := &StatePayload{N: int(r.u32("n"))}
	if r.u8("keyflag") == 1 {
		if r.err == nil && r.off+8*s.N > len(r.b) {
			r.fail("key column")
			return nil, r.err
		}
		s.Key = make([]uint64, s.N)
		for i := range s.Key {
			s.Key[i] = r.u64("key")
		}
	}
	nf := int(r.u16("nfloat"))
	for i := 0; i < nf && r.err == nil; i++ {
		s.FloatAttrs = append(s.FloatAttrs, r.string16("float attr"))
		s.FloatCols = append(s.FloatCols, r.floats(s.N, "float col"))
	}
	nv := int(r.u16("nvec"))
	for i := 0; i < nv && r.err == nil; i++ {
		s.VecAttrs = append(s.VecAttrs, r.string16("vec attr"))
		s.VecCols = append(s.VecCols, r.vecs(s.N, "vec col"))
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// StateRequest selects the columns a "get_state" call should return.
type StateRequest struct {
	Attrs []string
}

// AppendStateRequest marshals q into dst.
func AppendStateRequest(dst []byte, q *StateRequest) []byte {
	dst = append(dst, tagStateReq)
	dst = appendU16(dst, uint16(len(q.Attrs)))
	for _, a := range q.Attrs {
		dst = appendString16(dst, a)
	}
	return dst
}

// UnmarshalStateRequest parses a frame produced by AppendStateRequest.
func UnmarshalStateRequest(b []byte) (*StateRequest, error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagStateReq {
		return nil, fmt.Errorf("kernel: not a state request frame (tag 0x%02x)", tag)
	}
	q := &StateRequest{}
	n := int(r.u16("nattrs"))
	for i := 0; i < n && r.err == nil; i++ {
		q.Attrs = append(q.Attrs, r.string16("attr"))
	}
	if r.err != nil {
		return nil, r.err
	}
	return q, nil
}

// GatherState extracts the named columns from a particle set into a
// payload (slices are referenced, not copied; marshal before mutating).
// With no attrs it gathers mass, position and velocity.
func GatherState(p *data.Particles, attrs ...string) (*StatePayload, error) {
	if len(attrs) == 0 {
		attrs = []string{data.AttrMass, data.AttrPos, data.AttrVel}
	}
	s := NewState(p.Len())
	s.Key = p.Key
	for _, a := range attrs {
		if col, err := p.VecColumn(a); err == nil {
			s.AddVec(a, col)
			continue
		}
		if col, err := p.FloatColumn(a); err == nil {
			s.AddFloat(a, col)
			continue
		}
		// Integer attributes (stellar_type) travel as float columns.
		icol, err := p.IntColumn(a)
		if err != nil {
			return nil, err
		}
		col := make([]float64, len(icol))
		for i, v := range icol {
			col[i] = float64(v)
		}
		s.AddFloat(a, col)
	}
	return s, nil
}

// ScatterState writes a payload's columns back into a particle set of the
// same length and order.
func ScatterState(p *data.Particles, s *StatePayload) error {
	if p.Len() != s.N {
		return fmt.Errorf("kernel: state has %d particles, set has %d", s.N, p.Len())
	}
	for i, a := range s.VecAttrs {
		col, err := p.VecColumn(a)
		if err != nil {
			return err
		}
		copy(col, s.VecCols[i])
	}
	for i, a := range s.FloatAttrs {
		if col, err := p.FloatColumn(a); err == nil {
			copy(col, s.FloatCols[i])
			continue
		}
		// Integer attributes (stellar_type) travel as float columns.
		icol, err := p.IntColumn(a)
		if err != nil {
			return err
		}
		for j, v := range s.FloatCols[i] {
			icol[j] = int(v)
		}
	}
	return nil
}
