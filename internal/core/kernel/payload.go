package kernel

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"jungle/internal/amuse/data"
)

// Typed argument/result payloads. One struct per method keeps the wire
// format explicit and versionable. These travel gob-encoded inside
// Request.Args / Response.Result; the bulk state path (StatePayload) has
// its own hand-rolled codec because it dominates coupled-step traffic.

// Encode gob-encodes a payload value (panics on unencodable types: all
// protocol types are gob-safe by construction).
func Encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("kernel: encode %T: %v", v, err))
	}
	return buf.Bytes()
}

// Decode gob-decodes a payload produced by Encode.
func Decode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

type SetupGravityArgs struct {
	Kernel string // "phigrape-cpu" | "phigrape-gpu"
	Eps    float64
	Eta    float64
}

type SetupHydroArgs struct {
	SelfGravity bool
	EpsGrav     float64
	NTarget     int
}

type SetupStellarArgs struct {
	MassesMSun   []float64
	MyrPerTime   float64
	NBodyPerMSun float64
}

type SetupFieldArgs struct {
	Kernel string // "octgrav" | "fi"
	Theta  float64
	Eps    float64
}

type ParticlesPayload struct {
	Mass []float64
	Pos  []data.Vec3
	Vel  []data.Vec3
	U    []float64 // internal energy (hydro only)
	H    []float64 // smoothing length (hydro only)
	Key  []uint64
}

func ParticlesToPayload(p *data.Particles) ParticlesPayload {
	return ParticlesPayload{
		Mass: append([]float64(nil), p.Mass...),
		Pos:  append([]data.Vec3(nil), p.Pos...),
		Vel:  append([]data.Vec3(nil), p.Vel...),
		U:    append([]float64(nil), p.InternalEnergy...),
		H:    append([]float64(nil), p.SmoothingLen...),
		Key:  append([]uint64(nil), p.Key...),
	}
}

func PayloadToParticles(pl ParticlesPayload) *data.Particles {
	p := data.NewParticles(len(pl.Mass))
	copy(p.Mass, pl.Mass)
	copy(p.Pos, pl.Pos)
	copy(p.Vel, pl.Vel)
	if len(pl.U) == len(pl.Mass) {
		copy(p.InternalEnergy, pl.U)
	}
	if len(pl.H) == len(pl.Mass) {
		copy(p.SmoothingLen, pl.H)
	}
	if len(pl.Key) == len(pl.Mass) {
		copy(p.Key, pl.Key)
	}
	return p
}

type EvolveArgs struct {
	T float64
}

type KickArgs struct {
	DV []data.Vec3
}

type SetMassArgs struct {
	Index int
	Mass  float64
}

type InjectArgs struct {
	Center data.Vec3
	Radius float64
	E      float64
}

type FieldAtArgs struct {
	SrcMass []float64
	SrcPos  []data.Vec3
	Targets []data.Vec3
}

type FieldAtResult struct {
	Acc []data.Vec3
	Pot []float64
}

// FieldStagedArgs evaluates the field of the sources staged under Slot at
// the targets staged under the same slot (both delivered over the direct
// data plane via stage_sources/stage_targets), then frees the slot.
type FieldStagedArgs struct {
	Slot uint64
}

type VecResult struct {
	V []data.Vec3
}

type FloatsResult struct {
	X []float64
}

type EnergiesResult struct {
	Kinetic   float64
	Potential float64
	Thermal   float64
}

type StellarEvolveResult struct {
	Events []StellarEventPayload
}

type StellarEventPayload struct {
	Index    int
	MassLoss float64
	SN       bool
}

type StatsResult struct {
	N     int
	Time  float64
	Steps int
	Flops float64
}

type Empty struct{}
