package kernel

import (
	"strings"
	"testing"

	"jungle/internal/amuse/data"
)

func sampleStateFrame(t *testing.T) []byte {
	t.Helper()
	st := NewState(3).
		AddFloat(data.AttrMass, []float64{1, 2, 3}).
		AddVec(data.AttrPos, []data.Vec3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	b, err := MarshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTransferFrameRoundTrip(t *testing.T) {
	state := sampleStateFrame(t)
	frame := AppendTransfer(nil, 42, state)
	id, got, abort, err := UnmarshalTransfer(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || abort {
		t.Fatalf("id=%d abort=%v, want 42/false", id, abort)
	}
	st, err := UnmarshalState(got)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || st.Float(data.AttrMass)[2] != 3 {
		t.Fatalf("state did not survive the stream frame: %+v", st)
	}
}

func TestTransferAbortRoundTrip(t *testing.T) {
	frame := AppendTransferAbort(nil, 7)
	id, state, abort, err := UnmarshalTransfer(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !abort || len(state) != 0 {
		t.Fatalf("id=%d abort=%v state=%d bytes, want 7/true/empty", id, abort, len(state))
	}
}

func TestTransferAckRoundTrip(t *testing.T) {
	frame := AppendTransferAck(nil, 99)
	id, err := UnmarshalTransferAck(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 99 {
		t.Fatalf("id = %d, want 99", id)
	}
}

func TestStagedFrameRoundTrip(t *testing.T) {
	state := sampleStateFrame(t)
	frame := AppendStaged(nil, 11, state)
	slot, got, err := UnmarshalStaged(frame)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 11 {
		t.Fatalf("slot = %d, want 11", slot)
	}
	if st, err := UnmarshalState(got); err != nil || st.N != 3 {
		t.Fatalf("staged state: %v / %+v", err, st)
	}
}

func TestTransferFramesRejectGarbage(t *testing.T) {
	if _, _, _, err := UnmarshalTransfer([]byte{tagStaged, 0}); err == nil {
		t.Fatal("transfer accepted a staged tag")
	}
	if _, _, _, err := UnmarshalTransfer(AppendTransfer(nil, 1, []byte("x"))[:4]); err == nil {
		t.Fatal("truncated transfer frame accepted")
	}
	if _, err := UnmarshalTransferAck([]byte{tagTransfer}); err == nil {
		t.Fatal("ack accepted a transfer tag")
	}
	if _, _, err := UnmarshalStaged([]byte{tagStaged, 1, 2}); err == nil {
		t.Fatal("truncated staged frame accepted")
	}
	if _, _, err := UnmarshalStaged(nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("empty staged frame: %v", err)
	}
}
