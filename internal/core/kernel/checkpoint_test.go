package kernel

import (
	"testing"
	"time"

	"jungle/internal/amuse/data"
)

// TestSnapshotRoundTrip: the snapshot frame must survive the codec
// bit-for-bit — restore-after-replacement depends on it.
func TestSnapshotRoundTrip(t *testing.T) {
	st := NewState(3)
	st.Key = []uint64{7, 8, 9}
	st.AddFloat(data.AttrMass, []float64{1, 2.5, 3.25})
	st.AddVec(data.AttrPos, []data.Vec3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	st.AddVec(data.AttrVel, []data.Vec3{{-1, 0, 1}, {0.5, 0, -0.5}, {0, 0, 0}})
	in := &Snapshot{
		Kind:  "gravity",
		Model: 0.015625,
		Steps: 42,
		VTime: 1234 * time.Microsecond,
		State: st,
		Extra: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	frame, err := MarshalSnapshot(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Model != in.Model || out.Steps != in.Steps || out.VTime != in.VTime {
		t.Fatalf("metadata mismatch: %+v vs %+v", out, in)
	}
	if string(out.Extra) != string(in.Extra) {
		t.Fatalf("extra mismatch: %x", out.Extra)
	}
	if out.State == nil || out.State.N != 3 {
		t.Fatalf("state missing: %+v", out.State)
	}
	for i, k := range in.State.Key {
		if out.State.Key[i] != k {
			t.Fatalf("key %d mismatch", i)
		}
	}
	for i := 0; i < 3; i++ {
		if out.State.Float(data.AttrMass)[i] != st.Float(data.AttrMass)[i] ||
			out.State.Vec(data.AttrPos)[i] != st.Vec(data.AttrPos)[i] ||
			out.State.Vec(data.AttrVel)[i] != st.Vec(data.AttrVel)[i] {
			t.Fatalf("column mismatch at %d", i)
		}
	}
}

// TestSnapshotRoundTripNoState: Extra-only snapshots (stellar, analytic)
// and empty snapshots must round-trip too.
func TestSnapshotRoundTripNoState(t *testing.T) {
	for _, in := range []*Snapshot{
		{Kind: "stellar", Model: 3.5, Extra: []byte("population")},
		{Kind: "coupling"},
	} {
		frame, err := MarshalSnapshot(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := UnmarshalSnapshot(frame)
		if err != nil {
			t.Fatalf("%s: %v", in.Kind, err)
		}
		if out.Kind != in.Kind || out.Model != in.Model || out.State != nil {
			t.Fatalf("%s: mismatch %+v", in.Kind, out)
		}
		if string(out.Extra) != string(in.Extra) {
			t.Fatalf("%s: extra mismatch", in.Kind)
		}
	}
}

// TestSnapshotKindCheck: restoring a snapshot onto the wrong kind fails.
func TestSnapshotKindCheck(t *testing.T) {
	s := &Snapshot{Kind: "gravity"}
	if err := s.CheckKind("hydro"); err == nil {
		t.Fatal("cross-kind restore not rejected")
	}
	if err := s.CheckKind("gravity"); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTruncation: a truncated frame must fail cleanly, not panic
// or return garbage.
func TestSnapshotTruncation(t *testing.T) {
	st := NewState(2)
	st.AddFloat(data.AttrMass, []float64{1, 2})
	frame, err := MarshalSnapshot(&Snapshot{Kind: "gravity", State: st})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut += 3 {
		if _, err := UnmarshalSnapshot(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(frame))
		}
	}
}
