package kernel

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Columnar wire compression for state and snapshot frames.
//
// The codecs exploit how coupled-simulation state evolves: keys are nearly
// consecutive integers and float columns change slowly between steps, so a
// structure-aware XOR-delta over the column words turns most of the frame
// into near-zero bytes that an LZ-class compressor (flate) then crushes.
//
// Negotiation is self-describing: a compressed frame starts with the
// tagStateZ byte, every raw frame with its own tag. A receiver that calls
// MaybeDecompressState passes raw frames through untouched, and a sender
// that never compresses interoperates with every receiver — the codec byte
// travels in the frame itself, not in a session handshake. Compression is
// applied only at plane boundaries (peer deposit, daemon checkpoint
// arrival); model services always see raw frames.

// Codec identifiers, carried in the compressed frame and in transfer offer
// arguments.
const (
	// CodecRaw leaves frames untouched.
	CodecRaw byte = 0
	// CodecDeltaFlate XOR-deltas each column word lane against its
	// predecessor within the frame (lag 8 bytes for key/float columns,
	// lag 24 for vec columns, component-wise) and deflates the result.
	CodecDeltaFlate byte = 1
	// CodecRefDelta XORs the frame against a previously transmitted base
	// frame (named by ref and guarded by its digest) and deflates the
	// near-zero residue — the checkpoint codec for slowly-evolving runs.
	CodecRefDelta byte = 2
)

// ErrBadCompressed reports an unusable compressed frame.
var ErrBadCompressed = fmt.Errorf("kernel: bad compressed frame")

type dspan struct{ off, n, stride int }

// walkState returns the XOR-delta spans (column payload byte ranges) of a
// state frame starting at off, and the offset just past the frame.
func walkState(b []byte, off int, spans []dspan) ([]dspan, int, bool) {
	need := func(n int) bool { return off+n <= len(b) }
	if !need(6) || b[off] != tagState {
		return nil, 0, false
	}
	n := int(uint32(b[off+1]) | uint32(b[off+2])<<8 | uint32(b[off+3])<<16 | uint32(b[off+4])<<24)
	keyflag := b[off+5]
	off += 6
	if keyflag == 1 {
		if !need(8 * n) {
			return nil, 0, false
		}
		spans = append(spans, dspan{off, 8 * n, 8})
		off += 8 * n
	}
	readU16 := func() (int, bool) {
		if !need(2) {
			return 0, false
		}
		v := int(uint16(b[off]) | uint16(b[off+1])<<8)
		off += 2
		return v, true
	}
	for _, width := range []int{8, 24} {
		cols, ok := readU16()
		if !ok {
			return nil, 0, false
		}
		for i := 0; i < cols; i++ {
			alen, ok := readU16()
			if !ok || !need(alen+width*n) {
				return nil, 0, false
			}
			off += alen
			spans = append(spans, dspan{off, width * n, width})
			off += width * n
		}
	}
	return spans, off, true
}

// frameSpans returns the delta spans of a raw state or snapshot frame, or
// ok=false when the bytes are not a frame the transform understands.
func frameSpans(b []byte) ([]dspan, bool) {
	switch FrameTag(b) {
	case tagState:
		spans, end, ok := walkState(b, 0, nil)
		return spans, ok && end == len(b)
	case tagSnapshot:
		// tag, string16 kind, u64 model, u64 steps, u64 vtime, state flag,
		// optional embedded state frame, bytes32 extra.
		if len(b) < 3 {
			return nil, false
		}
		off := 3 + int(uint16(b[1])|uint16(b[2])<<8) + 24
		if off >= len(b) {
			return nil, false
		}
		flag := b[off]
		off++
		var spans []dspan
		if flag == 1 {
			var ok bool
			spans, off, ok = walkState(b, off, nil)
			if !ok {
				return nil, false
			}
		}
		if off+4 > len(b) {
			return nil, false
		}
		extra := int(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		return spans, off+4+extra == len(b)
	default:
		return nil, false
	}
}

// deltaEncode applies the in-place XOR-delta over the spans (back to front,
// so decode can run front to back).
func deltaEncode(b []byte, spans []dspan) {
	for _, s := range spans {
		for i := s.off + s.n - 1; i >= s.off+s.stride; i-- {
			b[i] ^= b[i-s.stride]
		}
	}
}

func deltaDecode(b []byte, spans []dspan) {
	for _, s := range spans {
		for i := s.off + s.stride; i < s.off+s.n; i++ {
			b[i] ^= b[i-s.stride]
		}
	}
}

// shuffleLanes transposes b into 8 byte-lanes (the HDF5-style shuffle
// filter): byte k of every 8-byte word is grouped with the other words'
// byte k. Near-identical float64 payloads — XOR-delta residues above all —
// zero their sign/exponent/high-mantissa lanes, and grouping turns those
// scattered zeros into the long runs flate crushes. The tail (len%8 bytes)
// stays in place.
func shuffleLanes(b []byte) []byte {
	n := len(b) / 8
	out := make([]byte, len(b))
	for lane := 0; lane < 8; lane++ {
		base := lane * n
		for i := 0; i < n; i++ {
			out[base+i] = b[i*8+lane]
		}
	}
	copy(out[8*n:], b[8*n:])
	return out
}

// unshuffleLanes inverts shuffleLanes.
func unshuffleLanes(b []byte) []byte {
	n := len(b) / 8
	out := make([]byte, len(b))
	for lane := 0; lane < 8; lane++ {
		base := lane * n
		for i := 0; i < n; i++ {
			out[i*8+lane] = b[base+i]
		}
	}
	copy(out[8*n:], b[8*n:])
	return out
}

func deflateBytes(b []byte) []byte {
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	w.Write(b)
	w.Close()
	return buf.Bytes()
}

func inflateBytes(b []byte, rawLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	out := make([]byte, 0, rawLen)
	buf := bytes.NewBuffer(out)
	if _, err := io.Copy(buf, r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCompressed, err)
	}
	if buf.Len() != rawLen {
		return nil, fmt.Errorf("%w: inflated %d bytes, want %d", ErrBadCompressed, buf.Len(), rawLen)
	}
	return buf.Bytes(), nil
}

// CompressState encodes a raw frame with CodecDeltaFlate. When compression
// does not pay (incompressible columns, tiny frames), the raw frame is
// returned unchanged — the receiver distinguishes the two by the leading
// tag byte.
func CompressState(frame []byte) []byte {
	spans, ok := frameSpans(frame)
	work := append([]byte(nil), frame...)
	// xform is a bit set: bit 0 = column XOR-delta applied, bit 1 = lane
	// shuffle applied. Frames whose structure does not parse skip the
	// delta but still shuffle (lossless, and float-heavy payloads gain).
	xform := byte(2)
	if ok {
		xform |= 1
		deltaEncode(work, spans)
	}
	comp := deflateBytes(shuffleLanes(work))
	// tag + codec + xform + rawLen + bytes32 header = 11 bytes.
	if 11+len(comp) >= len(frame) {
		return frame
	}
	out := make([]byte, 0, 11+len(comp))
	out = append(out, tagStateZ, CodecDeltaFlate, xform)
	out = appendU32(out, uint32(len(frame)))
	return appendBytes32(out, comp)
}

// CompressStateRef encodes a raw frame with CodecRefDelta against a base
// frame previously transmitted to (and retained by) the receiver. Falls
// back to CodecDeltaFlate when the result would not be smaller.
func CompressStateRef(frame, base []byte, baseRef uint64) []byte {
	if len(base) == 0 {
		return CompressState(frame)
	}
	work := append([]byte(nil), frame...)
	n := len(work)
	if len(base) < n {
		n = len(base)
	}
	for i := 0; i < n; i++ {
		work[i] ^= base[i]
	}
	// The residue is always lane-shuffled before deflate: a slow evolution
	// zeroes the high lanes of every float64 word, and grouping them is
	// what makes the 3x-and-better ratios reachable.
	comp := deflateBytes(shuffleLanes(work))
	// tag + codec + ref + digest + rawLen + bytes32 header = 27 bytes.
	if 27+len(comp) >= len(frame) {
		return CompressState(frame)
	}
	out := make([]byte, 0, 27+len(comp))
	out = append(out, tagStateZ, CodecRefDelta)
	out = appendU64(out, baseRef)
	out = appendU64(out, Digest64(base))
	out = appendU32(out, uint32(len(frame)))
	return appendBytes32(out, comp)
}

// IsCompressedState reports whether a frame is a tagStateZ wrapper.
func IsCompressedState(b []byte) bool { return FrameTag(b) == tagStateZ }

// CompressedBaseRef returns the base reference of a CodecRefDelta frame
// (ok=false for every other frame).
func CompressedBaseRef(b []byte) (uint64, bool) {
	if len(b) < 18 || b[0] != tagStateZ || b[1] != CodecRefDelta {
		return 0, false
	}
	r := reader{b: b, off: 2}
	return r.u64("base ref"), r.err == nil
}

// MaybeDecompressState restores the raw frame behind b. Raw frames (any
// leading tag but tagStateZ) pass through unchanged, which is the
// negotiation fallback: a sender without the codec interoperates with this
// receiver, and vice versa. baseLookup resolves CodecRefDelta base frames
// by reference; pass nil when ref-delta frames cannot occur.
func MaybeDecompressState(b []byte, baseLookup func(ref uint64) ([]byte, bool)) ([]byte, error) {
	if !IsCompressedState(b) {
		return b, nil
	}
	r := reader{b: b, off: 1}
	switch codec := r.u8("codec"); codec {
	case CodecDeltaFlate:
		xform := r.u8("xform")
		rawLen := int(r.u32("raw len"))
		comp := r.bytes32("compressed")
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCompressed, r.err)
		}
		raw, err := inflateBytes(comp, rawLen)
		if err != nil {
			return nil, err
		}
		if xform&2 != 0 {
			raw = unshuffleLanes(raw)
		}
		if xform&1 != 0 {
			spans, ok := frameSpans(raw)
			if !ok {
				return nil, fmt.Errorf("%w: transformed frame does not parse", ErrBadCompressed)
			}
			deltaDecode(raw, spans)
		}
		return raw, nil
	case CodecRefDelta:
		ref := r.u64("base ref")
		digest := r.u64("base digest")
		rawLen := int(r.u32("raw len"))
		comp := r.bytes32("compressed")
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCompressed, r.err)
		}
		if baseLookup == nil {
			return nil, fmt.Errorf("%w: ref-delta frame without base lookup", ErrBadCompressed)
		}
		base, ok := baseLookup(ref)
		if !ok {
			return nil, fmt.Errorf("%w: unknown base ref %d", ErrBadCompressed, ref)
		}
		if Digest64(base) != digest {
			return nil, fmt.Errorf("%w: base ref %d digest mismatch", ErrBadCompressed, ref)
		}
		raw, err := inflateBytes(comp, rawLen)
		if err != nil {
			return nil, err
		}
		raw = unshuffleLanes(raw)
		n := len(raw)
		if len(base) < n {
			n = len(base)
		}
		for i := 0; i < n; i++ {
			raw[i] ^= base[i]
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrBadCompressed, codec)
	}
}
