// Package kernel is the pluggable worker-kernel layer of the Distributed
// AMUSE reproduction. It defines the worker-side Service contract, a
// process-wide registry mapping kernel kinds to service factories, the
// wire protocol (request/response framing, typed payloads, the batched
// columnar state codec, and the worker-to-worker transfer, gang-link and
// checkpoint-snapshot frames) shared by the coupler, the daemon proxy
// and every worker, the gang contract (GangInfo, Shardable) under which
// one kernel runs domain-decomposed across K worker processes, and the
// checkpoint capability (Checkpointable, Snapshot) under which a worker
// externalizes and restores its complete model state.
//
// The package is a leaf: it depends only on the data/deploy/vnet/vtime/
// mpisim substrates, never on internal/core or the physics packages.
// Physics packages register their service adapters here from an init
// function, so adding a new scenario kernel is one new package with zero
// core edits — the same linking pattern as database/sql drivers. Programs
// must import the adapter packages they intend to use (internal/kernels
// bundles the four standard ones).
package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"jungle/internal/deploy"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// Errors shared across the protocol stack. These four sentinels are the
// wire error taxonomy: every Response carries a Code that maps back to
// exactly one of them coupler-side (see Code and WireError in wire.go),
// so errors survive the hand-rolled codec and unwrap with errors.Is — no
// string matching anywhere on the path.
var (
	// ErrBadKind is returned when no factory is registered for a kind.
	ErrBadKind = errors.New("core: unknown worker kind")
	// ErrNoSuchMethod is returned by Dispatch for unknown methods.
	ErrNoSuchMethod = errors.New("core: no such method")
	// ErrBadMethod is the wire-taxonomy name for ErrNoSuchMethod.
	ErrBadMethod = ErrNoSuchMethod
	// ErrWorkerFault marks a model-level failure: the worker is alive and
	// the channel healthy, but the dispatched call itself failed (bad
	// arguments, physics error). Retrying on a replacement worker will not
	// help.
	ErrWorkerFault = errors.New("core: worker fault")
	// ErrWorkerDied marks a dead worker process: the job was killed, the
	// host crashed, or the pool observed the member leave. Replacement (if
	// enabled) is the correct recovery.
	ErrWorkerDied = errors.New("core: worker died")
	// ErrTransport marks a channel- or daemon-level failure (unroutable
	// worker id, undecodable frame, send on a closed connection) — the
	// call never reached, or never returned from, a live worker.
	ErrTransport = errors.New("core: transport fault")
	// ErrBusy marks an admission-control rejection: the control plane has
	// no capacity for the request right now and the client should retry
	// after a backoff. The structured retry-after hint travels in the
	// response payload; the sentinel is what errors.Is keys on.
	ErrBusy = errors.New("core: busy, retry later")
)

// Service is the worker-side model host: it owns the kernel, a virtual
// clock, and the dispatch table. One service lives inside each worker
// process.
type Service interface {
	// Dispatch runs one call arriving at virtual time `at` and returns the
	// encoded result plus the worker's clock when the call completed.
	Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error)
	// Close releases resources (MPI worlds).
	Close()
}

// Config describes the environment a service is instantiated in: the
// resource it runs on (device models), the job's allocated hosts, the
// virtual network (multi-node workers open MPI worlds over it), and — for
// kernels deployed as a gang of workers — this rank's place in the gang.
type Config struct {
	Res   *deploy.Resource
	Hosts []string
	Net   *vnet.Network
	// Gang is non-nil when the service is one rank of a domain-decomposed
	// multi-worker kernel; the live communicator arrives later via
	// Shardable.SetGang (see gang.go).
	Gang *GangInfo
}

// Factory builds the service for one worker kind.
type Factory func(cfg Config) (Service, error)

var (
	regMu     sync.RWMutex
	factories = make(map[string]Factory)
)

// Register makes a factory available under a kind name. It is intended to
// be called from adapter package init functions and panics on duplicate
// registration — two packages claiming the same kind is a programming
// error that must not be resolved silently by link order.
func Register(kind string, f Factory) {
	if f == nil {
		panic("kernel: Register with nil factory for kind " + kind)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[kind]; dup {
		panic(fmt.Sprintf("kernel: duplicate registration for kind %q", kind))
	}
	factories[kind] = f
}

// New instantiates the service for a kind, or ErrBadKind if no adapter
// package registered it (did the program import internal/kernels?).
func New(kind string, cfg Config) (Service, error) {
	regMu.RLock()
	f := factories[kind]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("%w: %q", ErrBadKind, kind)
	}
	return f(cfg)
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for k := range factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Registered reports whether a kind has a factory.
func Registered(kind string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := factories[kind]
	return ok
}

// PickDevice resolves a kernel to the device it runs on.
func PickDevice(res *deploy.Resource, wantGPU bool) (*vtime.Device, error) {
	if wantGPU {
		if res.GPU == nil {
			return nil, fmt.Errorf("core: resource %q has no GPU for the requested kernel", res.Name)
		}
		return res.GPU, nil
	}
	if res.CPU == nil {
		return nil, fmt.Errorf("core: resource %q has no CPU device model", res.Name)
	}
	return res.CPU, nil
}

// Derate returns a copy of dev with its peak Gflops scaled to the kernel
// family's sustained efficiency. Device Gflops are honest relative peaks
// for the paper's hardware; the per-family efficiency constants live with
// each adapter and were fitted jointly against §6.2's scenario 1–3
// numbers (see DESIGN.md for the fit).
func Derate(dev *vtime.Device, efficiency float64) *vtime.Device {
	if efficiency <= 0 {
		efficiency = 1
	}
	d := *dev
	d.Gflops = dev.Gflops * efficiency
	return &d
}

// NodeDerate applies the resource's per-node speed factor for host to a
// device model (see deploy.Resource.NodeSpeed). Services call it after
// Derate so a slow cluster node slows exactly the rank placed on it —
// the heterogeneity the elastic-gang rebalancer measures and corrects.
func NodeDerate(dev *vtime.Device, res *deploy.Resource, host string) *vtime.Device {
	f := res.NodeSpeedOf(host)
	if f == 1 {
		return dev
	}
	d := *dev
	d.Gflops = dev.Gflops * f
	return &d
}
