package kernel

import (
	"fmt"
)

// Third-party state transfer: the coupler orchestrates by RPC, the column
// bytes flow worker-to-worker over a SmartSockets virtual connection — the
// Fig. 5 topology minus the hairpin through the user's machine. Two proxy
// ops and two stream frames make up the protocol:
//
//   - "offer_state" (coupler -> source worker): read the named columns and
//     stream them to the peer address as one transfer frame; wait for the
//     peer's ack.
//   - "accept_state" (coupler -> destination worker): wait for the transfer
//     frame with the given id to arrive on the peer listener and apply it
//     with the named method ("set_state", or a staging method).
//
// Both ops are handled by the worker's proxy (which owns the SmartSockets
// factory), not the model service; the service only ever sees its ordinary
// get_state/set_state/stage_* dispatch. The stream payload is the columnar
// StatePayload frame unchanged, so the transfer codec adds a fixed-size
// header, never a re-encode.

// Proxy-level transfer methods.
const (
	MethodOfferState  = "offer_state"
	MethodAcceptState = "accept_state"
)

// MethodApplyState is the default apply method for accepted transfers.
const MethodApplyState = "set_state"

// OfferStateArgs asks a worker to stream state columns to a peer.
// It is the default-path args shape and must not grow fields: gob writes
// every field name of a transmitted struct into the stream (even for zero
// values), so adding a field would change the wire bytes of sessions that
// never touch the bandwidth-aware knobs. Tuned offers send OfferStateTuned
// instead; the proxy decodes both into the superset (gob matches struct
// fields by name, not by type name).
type OfferStateArgs struct {
	// ID names the transfer; the accepting peer matches streams by it.
	ID uint64
	// Attrs selects the columns (get_state semantics).
	Attrs []string
	// Peer is the destination worker's peer-listener address
	// ("host:port" in the SmartSockets address space).
	Peer string
}

// OfferStateTuned is OfferStateArgs plus the bandwidth-aware data-plane
// knobs; the coupler sends it in place of OfferStateArgs when any knob is
// non-zero.
type OfferStateTuned struct {
	// ID names the transfer; the accepting peer matches streams by it.
	ID uint64
	// Attrs selects the columns (get_state semantics).
	Attrs []string
	// Peer is the destination worker's peer-listener address
	// ("host:port" in the SmartSockets address space).
	Peer string
	// Stripes is the maximum number of parallel peer streams the sender
	// may split the payload across (0 or 1 disables striping). The sender
	// clamps the effective count to the payload size.
	Stripes int
	// Codec selects wire compression for the streamed payload (CodecRaw,
	// CodecDeltaFlate). Receivers sniff the frame tag, so any codec
	// interoperates with any receiver.
	Codec byte
}

// TransferReport describes how an offer_state call actually moved the
// payload; it is the offer call's result, decoded by the coupler to keep
// TransferStats honest about striped vs single-stream delivery.
type TransferReport struct {
	// Streams is the number of parallel stripe streams used (1 for a
	// single-stream transfer).
	Streams int
	// StripeFallback is set when a striped attempt failed and the payload
	// was re-sent over a single stream.
	StripeFallback bool
	// StripeErr carries the striped attempt's failure (empty when none),
	// for the coupler's OnTransferFallback observer.
	StripeErr string
	// WireBytes is the encoded payload size that crossed the peer plane
	// (after compression).
	WireBytes int
}

// AcceptStateArgs asks a worker to wait for a transfer stream and apply it.
type AcceptStateArgs struct {
	// ID names the expected transfer.
	ID uint64
	// Apply is the worker method the payload is applied with; empty means
	// MethodApplyState. Staging methods (Slot != 0) receive the payload
	// wrapped by AppendStaged.
	Apply string
	// Slot tags staged applications (stage_sources/stage_targets) so
	// several staged exchanges can be in flight on one worker.
	Slot uint64
}

// Transfer stream framing (worker-to-worker peer connections).

// AppendTransfer frames one state stream message: the transfer id followed
// by an unmodified StatePayload frame.
func AppendTransfer(dst []byte, id uint64, state []byte) []byte {
	dst = append(dst, tagTransfer)
	dst = appendU64(dst, id)
	dst = append(dst, 0) // data, not abort
	return appendBytes32(dst, state)
}

// AppendTransferAbort frames an abort marker for a transfer id: the peer
// stops waiting and fails the matching accept_state with a transport error
// (sent by the coupler's daemon when the offering side failed, so the
// accepting worker does not wait out its timeout).
func AppendTransferAbort(dst []byte, id uint64) []byte {
	dst = append(dst, tagTransfer)
	dst = appendU64(dst, id)
	dst = append(dst, 1) // abort
	return appendU32(dst, 0)
}

// UnmarshalTransfer parses a frame produced by AppendTransfer or
// AppendTransferAbort. state aliases b.
func UnmarshalTransfer(b []byte) (id uint64, state []byte, abort bool, err error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagTransfer {
		return 0, nil, false, fmt.Errorf("kernel: not a transfer frame (tag 0x%02x)", tag)
	}
	id = r.u64("id")
	abort = r.u8("abort") == 1
	state = r.bytes32("state")
	return id, state, abort, r.err
}

// AppendTransferAck frames the receiving peer's acknowledgement.
func AppendTransferAck(dst []byte, id uint64) []byte {
	dst = append(dst, tagTransferAck)
	return appendU64(dst, id)
}

// UnmarshalTransferAck parses a frame produced by AppendTransferAck.
func UnmarshalTransferAck(b []byte) (uint64, error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagTransferAck {
		return 0, fmt.Errorf("kernel: not a transfer ack frame (tag 0x%02x)", tag)
	}
	id := r.u64("id")
	return id, r.err
}

// Gang link handshake (worker-to-worker peer connections). Lower ranks
// dial: rank i opens one peer connection to every rank j > i and sends a
// hello frame naming the gang and its own rank; the accepting side parks
// the connection in its gang mailbox until gang_init claims it. After the handshake the
// connection is a persistent bidirectional rank link carrying halo
// frames (columnar StatePayload blobs) for the whole gang lifetime.

// AppendGangHello frames a gang link handshake.
func AppendGangHello(dst []byte, gangID uint64, fromRank int) []byte {
	dst = append(dst, tagGangHello)
	dst = appendU64(dst, gangID)
	return appendU32(dst, uint32(fromRank))
}

// UnmarshalGangHello parses a frame produced by AppendGangHello.
func UnmarshalGangHello(b []byte) (gangID uint64, fromRank int, err error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagGangHello {
		return 0, 0, fmt.Errorf("kernel: not a gang hello frame (tag 0x%02x)", tag)
	}
	gangID = r.u64("gang id")
	fromRank = int(r.u32("from rank"))
	return gangID, fromRank, r.err
}

// AppendStaged wraps a StatePayload frame with its staging slot for the
// stage_* apply methods (field workers hold several staged inputs at once).
func AppendStaged(dst []byte, slot uint64, state []byte) []byte {
	dst = append(dst, tagStaged)
	dst = appendU64(dst, slot)
	return appendBytes32(dst, state)
}

// UnmarshalStaged parses a frame produced by AppendStaged. state aliases b.
func UnmarshalStaged(b []byte) (slot uint64, state []byte, err error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagStaged {
		return 0, nil, fmt.Errorf("kernel: not a staged frame (tag 0x%02x)", tag)
	}
	slot = r.u64("slot")
	state = r.bytes32("state")
	return slot, state, r.err
}
