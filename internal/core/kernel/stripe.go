package kernel

import "fmt"

// Striped transfers split one encoded payload frame across N parallel peer
// connections, GridFTP-style: a single WAN stream often cannot fill a fat
// link, so bulk state rides several circuits at once. The split operates on
// the encoded bytes at 8-byte-aligned offsets — the state frame is
// column-major, so stripe boundaries fall between whole float64 words of a
// column (column-wise, row-chunked within the boundary column), never
// inside one.
//
// Wire protocol: the sender opens one manifest connection carrying a
// StripeManifest frame (transfer id, codec, total length, per-stripe
// offset/length/digest), plus one connection per stripe, each carrying a
// single stripe frame. The receiver reassembles out-of-order arrivals into
// the original payload, verifies every digest, and acknowledges on the
// manifest connection at the virtual time the last stripe landed.

// StripeInfo describes one stripe of a striped transfer.
type StripeInfo struct {
	Offset, Length uint32
	Digest         uint64 // FNV-1a 64 of the stripe bytes
}

// StripeManifest describes a striped transfer.
type StripeManifest struct {
	ID      uint64
	Codec   byte // codec of the reassembled payload (CodecRaw if none)
	Total   uint32
	Stripes []StripeInfo
}

// Digest64 is the FNV-1a 64 digest used for stripe verification.
func Digest64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, x := range b {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

// SplitStripes returns the offsets cutting a payload of length total into n
// contiguous 8-byte-aligned spans (the i-th span is [off[i], off[i+1])).
// len(off) == n+1; spans can be empty for tiny payloads.
func SplitStripes(total, n int) []int {
	if n < 1 {
		n = 1
	}
	off := make([]int, n+1)
	for i := 1; i < n; i++ {
		off[i] = (total * i / n) &^ 7
		if off[i] < off[i-1] {
			off[i] = off[i-1]
		}
	}
	off[n] = total
	return off
}

// AppendManifest marshals a stripe manifest.
func AppendManifest(dst []byte, m *StripeManifest) []byte {
	dst = append(dst, tagManifest)
	dst = appendU64(dst, m.ID)
	dst = append(dst, m.Codec)
	dst = appendU32(dst, m.Total)
	dst = appendU16(dst, uint16(len(m.Stripes)))
	for _, s := range m.Stripes {
		dst = appendU32(dst, s.Offset)
		dst = appendU32(dst, s.Length)
		dst = appendU64(dst, s.Digest)
	}
	return dst
}

// UnmarshalManifest parses a frame produced by AppendManifest.
func UnmarshalManifest(b []byte) (*StripeManifest, error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagManifest {
		return nil, fmt.Errorf("kernel: not a manifest frame (tag 0x%02x)", tag)
	}
	m := &StripeManifest{ID: r.u64("id"), Codec: r.u8("codec"), Total: r.u32("total")}
	count := int(r.u16("count"))
	for i := 0; i < count && r.err == nil; i++ {
		m.Stripes = append(m.Stripes, StripeInfo{
			Offset: r.u32("offset"), Length: r.u32("length"), Digest: r.u64("digest"),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// IsManifest reports whether a frame opens a striped transfer.
func IsManifest(b []byte) bool { return FrameTag(b) == tagManifest }

// IsStripe reports whether a frame carries one stripe.
func IsStripe(b []byte) bool { return FrameTag(b) == tagStripe }

// AppendStripe marshals one stripe: transfer id, stripe index, bytes.
func AppendStripe(dst []byte, id uint64, index int, data []byte) []byte {
	dst = append(dst, tagStripe)
	dst = appendU64(dst, id)
	dst = appendU16(dst, uint16(index))
	return appendBytes32(dst, data)
}

// UnmarshalStripe parses a frame produced by AppendStripe. data aliases b.
func UnmarshalStripe(b []byte) (id uint64, index int, data []byte, err error) {
	r := reader{b: b}
	if tag := r.u8("tag"); r.err == nil && tag != tagStripe {
		return 0, 0, nil, fmt.Errorf("kernel: not a stripe frame (tag 0x%02x)", tag)
	}
	id = r.u64("id")
	index = int(r.u16("index"))
	data = r.bytes32("data")
	return id, index, data, r.err
}
