package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/deploy"
	"jungle/internal/vnet"
)

// elasticSim builds the elastic testbed (site-mixed with its quarter-speed
// straggler node, uniform site-spare) and a simulation on it.
func elasticSim(t *testing.T) (*Testbed, *Simulation) {
	t.Helper()
	tb, err := NewElasticTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	sim := NewSimulation(context.Background(), tb.Daemon, nil)
	t.Cleanup(func() { sim.Stop() })
	return tb, sim
}

// waitRounds blocks until the rebalancer has completed at least `want`
// measurement rounds (they run asynchronously after evolve completions).
func waitRounds(t *testing.T, g *Gravity, want uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for g.RebalanceRounds() < want {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer stuck at %d rounds, want %d", g.RebalanceRounds(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestElasticTestbedNodeSpeed: the testbed really registers the straggler
// (config plumbing: Resource.NodeSpeed -> kernel.NodeDerate).
func TestElasticTestbedNodeSpeed(t *testing.T) {
	tb, _ := elasticSim(t)
	r, err := tb.Deployment.Resource(tb.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for _, node := range r.Nodes {
		if f := r.NodeSpeedOf(node); f != 1 {
			slow++
			if f != 0.25 {
				t.Fatalf("straggler %s speed = %v, want 0.25", node, f)
			}
		}
	}
	if slow != 1 {
		t.Fatalf("%d derated nodes, want exactly 1", slow)
	}
}

// TestRebalancerConvergence is the elastic-gang smoke: a K=4 gang on
// site-mixed starts with uniform slabs, so the rank on the quarter-speed
// node takes ~4x the compute time per step and the whole gang waits for
// it. The rebalancer must observe that skew through the per-rank
// rank_load samples, reshard toward throughput-proportional slabs, and
// converge below the trigger threshold — while the trajectory stays
// bit-identical to a never-resharded gang (every rank holds the full
// replicated arrays; boundaries move, state does not).
func TestRebalancerConvergence(t *testing.T) {
	stars := ic.Plummer(256, 17)
	legs := make([]float64, 6)
	for i := range legs {
		legs[i] = float64(i+1) / 128
	}

	// Static reference on an identical (separate) testbed.
	tbS, simS := elasticSim(t)
	static, err := simS.NewGravity(context.Background(),
		WorkerSpec{Resource: tbS.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := static.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, static, legs...)
	wantPos, wantVel, _, _ := finalState(t, static)

	tb, sim := elasticSim(t)
	sim.Monitor = tb.Recorder
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableRebalance(ElasticPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	// One leg at a time, waiting out each measurement round, so every
	// rank_load window covers exactly the evolves since the last round.
	for i, tEnd := range legs {
		if err := g.EvolveTo(context.Background(), tEnd); err != nil {
			t.Fatal(err)
		}
		waitRounds(t, g, uint64(i+1))
	}

	label := string(g.kind) + "/" + tb.Mixed
	last, maxSkew, ok := tb.Recorder.GangSkew(label)
	if !ok {
		t.Fatalf("no gang telemetry under %q; table:\n%s", label, tb.Recorder.RenderGangs())
	}
	// Uniform slabs on a 4x-slow node: the first round must see severe
	// skew; after resharding the gauge must sit below the trigger.
	if maxSkew < 2 {
		t.Fatalf("max skew %.2f, want >= 2 (the straggler was never visible)", maxSkew)
	}
	if last >= 1.15 {
		t.Fatalf("final skew %.2f, want < threshold 1.15 (did not converge)", last)
	}
	var stats *GangRowStats
	for _, row := range tb.Recorder.GangTable() {
		if row.Gang == label {
			s := row.Stats
			stats = &GangRowStats{Reshards: s.Reshards, Rows: s.Samples[len(s.Samples)-1].Rows}
		}
	}
	if stats == nil || stats.Reshards < 1 {
		t.Fatalf("no reshard recorded; table:\n%s", tb.Recorder.RenderGangs())
	}
	minRows, maxRows := stats.Rows[0], stats.Rows[0]
	for _, w := range stats.Rows {
		if w < minRows {
			minRows = w
		}
		if w > maxRows {
			maxRows = w
		}
	}
	// Throughput-proportional slabs: the straggler's slab must be roughly
	// a quarter of a fast rank's (ideal 256/3.25 ≈ 79 vs ≈ 20).
	if minRows == maxRows || minRows > maxRows/2 {
		t.Fatalf("slabs not rebalanced: per-rank rows %v", stats.Rows)
	}

	gotPos, gotVel, _, _ := finalState(t, g)
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("particle %d: rebalanced gang diverged from static gang", i)
		}
	}
}

// GangRowStats is a test-local view of the bits of gang telemetry the
// convergence assertions need.
type GangRowStats struct {
	Reshards int
	Rows     []int
}

// TestSelectLeastLoadedTieBreak is the determinism regression: two
// byte-identical idle resources must always resolve to the
// lexicographically smallest name, independent of registration order or
// map iteration — placement is a pure function of the ledger.
func TestSelectLeastLoadedTieBreak(t *testing.T) {
	n := vnet.New()
	if _, err := n.AddHost("client", "hq", vnet.Open); err != nil {
		t.Fatal(err)
	}
	// Registered in reverse lexicographic order on purpose.
	for _, name := range []string{"zebra", "apple"} {
		c, err := n.AddCluster(vnet.ClusterSpec{
			Name: name, Site: name, Nodes: 2,
			FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
			InternalLatency: lanLat, InternalBandwidth: tenG,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AddLink("client", c.Frontend, lanLat, gbE); err != nil {
			t.Fatal(err)
		}
		dep := c // silence unused in the loop below
		_ = dep
	}
	dep, err := deploy.New(n, "client")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zebra", "apple"} {
		if err := dep.AddResource(deploy.Resource{
			Name: name, Middleware: "sge", Frontend: name + ".fe",
			Nodes: []string{name + ".node00", name + ".node01"}, CPU: das4Node(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := SelectLeastLoaded(dep, WorkerSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if got != "apple" {
			t.Fatalf("run %d: SelectLeastLoaded = %q, want apple (tie must break by name)", i, got)
		}
	}
	// The migration variant excludes the resource being fled.
	got, err := selectLeastLoaded(dep, WorkerSpec{}, "apple")
	if err != nil {
		t.Fatal(err)
	}
	if got != "zebra" {
		t.Fatalf("exclude=apple: got %q, want zebra", got)
	}
}

// TestMigrateLiveGang: a running K=4 gang moves from site-mixed to
// site-spare mid-run. The handle survives, all rank jobs land on the
// target, and the post-migration trajectory stays bit-identical to an
// unmigrated run — checkpoint/restore moves the full model state.
func TestMigrateLiveGang(t *testing.T) {
	stars := ic.Plummer(192, 3)
	const t1, t2 = 1.0 / 64, 1.0 / 16

	tbR, simR := elasticSim(t)
	ref, err := simR.NewGravity(context.Background(),
		WorkerSpec{Resource: tbR.Spare, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, ref, t1, t2)
	wantPos, wantVel, _, _ := finalState(t, ref)

	tb, sim := elasticSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, t1)
	oldWorkers := g.GangWorkers()

	if err := g.Migrate(nil, tb.Spare); err != nil {
		t.Fatal(err)
	}
	if r := g.resource(); r != tb.Spare {
		t.Fatalf("after migration resource = %q, want %q", r, tb.Spare)
	}
	newWorkers := g.GangWorkers()
	if len(newWorkers) != 4 {
		t.Fatalf("gang workers after migration: %v", newWorkers)
	}
	spare, err := tb.Deployment.Resource(tb.Spare)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range newWorkers {
		job := tb.Daemon.WorkerJob(id)
		if job == nil || job.Target != spare.Frontend {
			t.Fatalf("rank %d (worker %d) not on %s: job %+v", i, id, tb.Spare, job)
		}
	}
	for _, id := range oldWorkers {
		if tb.Daemon.WorkerAlive(id) {
			t.Fatalf("old worker %d still alive after migration", id)
		}
	}

	evolveLegs(t, g, t2)
	gotPos, gotVel, _, _ := finalState(t, g)
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("particle %d: migrated gang diverged from unmigrated run", i)
		}
	}
}

// TestMigrateWhileCheckpointInFlight races a session checkpoint, a long
// pipelined evolve and a live migration (run under make race). The FIFO
// pull and migMu must serialize them: everything completes, nothing
// deadlocks, and the model still answers afterwards.
func TestMigrateWhileCheckpointInFlight(t *testing.T) {
	tb, sim := elasticSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	if err := g.SetParticles(ic.Plummer(192, 5)); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, 1.0/128)

	// A long evolve in flight, a checkpoint racing it, and a migration
	// racing both.
	call := g.GoEvolveTo(1.0 / 16)
	cpErr := make(chan error, 1)
	go func() {
		_, err := sim.Checkpoint(context.Background())
		cpErr <- err
	}()
	if err := g.Migrate(nil, tb.Spare); err != nil {
		t.Fatalf("migrate during checkpoint: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := call.Wait(waitCtx); err != nil {
		t.Fatalf("pipelined evolve across migration: %v", err)
	}
	select {
	case err := <-cpErr:
		if err != nil {
			t.Fatalf("checkpoint racing migration: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("checkpoint never completed")
	}
	if r := g.resource(); r != tb.Spare {
		t.Fatalf("resource = %q, want %q", r, tb.Spare)
	}
	// The model still works end to end.
	evolveLegs(t, g, 1.0/8)
}

// TestKillRankMidMigration kills one of the NEW rank workers while the
// migration is rebuilding state on the target resource. The migration
// must fail with the structured ErrMigration (never a hang: the
// checkpoint pull and replay run non-replaceable under migMu), and the
// gang must then recover through the ordinary dead-rank path — the
// snapshot is cached and the spec already names the new resource.
func TestKillRankMidMigration(t *testing.T) {
	stars := ic.Plummer(192, 7)
	const t1, t2 = 1.0 / 64, 1.0 / 16

	tbR, simR := elasticSim(t)
	ref, err := simR.NewGravity(context.Background(),
		WorkerSpec{Resource: tbR.Spare, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, ref, t1, t2)
	wantPos, wantVel, _, _ := finalState(t, ref)

	tb, sim := elasticSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, t1)
	oldWorkers := append([]int(nil), g.GangWorkers()...)

	// Watcher: the moment the NEW gang appears (worker ids change), kill
	// one of its ranks — that lands between gang start and the end of the
	// setup/restore replay, or just after; both paths must keep the gang
	// alive.
	stop := make(chan struct{})
	killed := make(chan int, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids := g.GangWorkers()
			if len(ids) == 4 && ids[0] != oldWorkers[0] {
				tb.Daemon.KillWorker(ids[1])
				killed <- ids[1]
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	migErr := g.Migrate(nil, tb.Spare)
	close(stop)
	select {
	case <-killed:
	case <-time.After(time.Second):
		t.Fatal("watcher never saw the new gang (migration did not start?)")
	}
	if migErr != nil && !errors.Is(migErr, ErrMigration) {
		t.Fatalf("migration failure not structured: %v", migErr)
	}

	// Whether the kill landed mid-replay (migErr != nil) or just after
	// (migErr == nil, next call sees the dead rank), the gang must
	// recover and match the reference bit for bit.
	evolveLegs(t, g, t2)
	gotPos, gotVel, _, _ := finalState(t, g)
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("particle %d: gang diverged after kill-mid-migration (migErr=%v)", i, migErr)
		}
	}
}

// TestResizeGrowShrinkBitCompat grows a K=2 gang to K=4 mid-run, then
// shrinks it back to 2, comparing positions and velocities bitwise
// against a static-K run. Rank count is invisible in the results (the
// same property TestGangMatchesSoloWorker pins for static gangs), so an
// elastic K change must be too. Energies are NOT compared bitwise: the
// cross-rank reductions associate differently for different K.
func TestResizeGrowShrinkBitCompat(t *testing.T) {
	stars := ic.Plummer(192, 11)
	const t1, t2, t3 = 1.0 / 64, 1.0 / 32, 1.0 / 16

	tbR, simR := elasticSim(t)
	ref, err := simR.NewGravity(context.Background(),
		WorkerSpec{Resource: tbR.Spare, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, ref, t1, t2, t3)
	wantPos, wantVel, _, _ := finalState(t, ref)

	tb, sim := elasticSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Spare, Channel: ChannelIbis, Workers: 2}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	evolveLegs(t, g, t1)

	if err := g.Resize(nil, 0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	if err := g.Resize(nil, 4); err != nil {
		t.Fatalf("grow 2 -> 4: %v", err)
	}
	if n := len(g.GangWorkers()); n != 4 {
		t.Fatalf("after grow: %d ranks, want 4", n)
	}
	evolveLegs(t, g, t2)

	if err := g.Resize(nil, 2); err != nil {
		t.Fatalf("shrink 4 -> 2: %v", err)
	}
	if n := len(g.GangWorkers()); n != 2 {
		t.Fatalf("after shrink: %d ranks, want 2", n)
	}
	evolveLegs(t, g, t3)

	gotPos, gotVel, _, _ := finalState(t, g)
	for i := range wantPos {
		if wantPos[i] != gotPos[i] || wantVel[i] != gotVel[i] {
			t.Fatalf("particle %d: elastic-K run diverged from static-K run", i)
		}
	}
}

// TestResizeDisarmsRebalancer: a resize under an armed rebalancer must
// disarm it (its cuts vectors are sized to the old K) rather than let a
// stale reshard poison the new gang.
func TestResizeDisarmsRebalancer(t *testing.T) {
	tb, sim := elasticSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Mixed, Channel: ChannelIbis, Workers: 4}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableRebalance(ElasticPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(64, 13)); err != nil {
		t.Fatal(err)
	}
	if err := g.Resize(nil, 2); err != nil {
		t.Fatal(err)
	}
	if g.elasticState() != nil {
		t.Fatal("rebalancer still armed after resize")
	}
	// A solo model cannot arm at all.
	solo, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: tb.Spare, Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.EnableRebalance(ElasticPolicy{}); err == nil {
		t.Fatal("EnableRebalance on a solo worker accepted")
	}
}
