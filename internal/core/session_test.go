package core

import (
	"context"
	"testing"

	"jungle/internal/deploy"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// racingTestbed is a deployment built to make placement races observable:
// cluster "farm" (3 nodes, best CPU score) fits exactly one K=3 gang, and
// cluster "annex" (3 nodes, slightly slower) is the spare a fair placer
// must spill onto.
func racingTestbed(t *testing.T) *Daemon {
	t.Helper()
	n := vnet.New()
	if _, err := n.AddHost("client", "hq", vnet.Open); err != nil {
		t.Fatal(err)
	}
	clusters := make([]*vnet.Cluster, 2)
	for i, name := range []string{"farm", "annex"} {
		c, err := n.AddCluster(vnet.ClusterSpec{
			Name: name, Site: name, Nodes: 3,
			FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
			InternalLatency: lanLat, InternalBandwidth: tenG,
		})
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = c
		if err := n.AddLink("client", c.Frontend, lanLat, gbE); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddLink(clusters[0].Frontend, clusters[1].Frontend, metroLat, tenG); err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.New(n, "client")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.AddResource(deploy.Resource{
		Name: "farm", Middleware: "sge", Frontend: clusters[0].Frontend,
		Nodes: clusters[0].NodeName, CPU: das4Node(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.AddResource(deploy.Resource{
		Name: "annex", Middleware: "sge", Frontend: clusters[1].Frontend,
		Nodes: clusters[1].NodeName,
		CPU:   &vtime.Device{Name: "annex-xeon", Kind: vtime.CPU, Gflops: 8, Cores: 8},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(dep, "amuse")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestSelectResourceRacingGangs is the fairness regression: two sessions'
// K=3 gangs race for a cluster that fits only one of them. The first
// session's gang takes the preferred cluster; the second session's fit
// check must see those committed nodes and spill to the spare — before
// the capacity ledger, both gangs were placed onto "farm" and the loser's
// batch jobs queued behind the winner's forever.
func TestSelectResourceRacingGangs(t *testing.T) {
	d := racingTestbed(t)
	ctx := context.Background()
	gangSpec := WorkerSpec{Channel: ChannelIbis, Workers: 3}

	simA := NewSimulation(ctx, d, nil)
	t.Cleanup(func() { simA.Stop() })
	simA.SetSession("tenant-a", nil)
	gangA, err := simA.NewGravity(ctx, gangSpec, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if r := gangA.resource(); r != "farm" {
		t.Fatalf("first gang placed on %q, want the preferred cluster farm", r)
	}

	// Second tenant, same open spec: farm has zero free nodes for OTHER
	// sessions, so the gang must land on the spare.
	simB := NewSimulation(ctx, d, nil)
	t.Cleanup(func() { simB.Stop() })
	simB.SetSession("tenant-b", nil)
	gangB, err := simB.NewGravity(ctx, gangSpec, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatalf("second gang: %v", err)
	}
	if r := gangB.resource(); r != "annex" {
		t.Fatalf("second gang placed on %q, want the spare cluster annex", r)
	}

	// A session is not fenced off by its OWN holdings: tenant A's next solo
	// worker still scores farm as fitting (free nodes exclude only other
	// sessions), while a third tenant sees both clusters full and has
	// nowhere to put a gang.
	if name, err := SelectResource(d.deployment, WorkerSpec{Channel: ChannelIbis, Session: "tenant-a"}); err != nil || name != "farm" {
		t.Fatalf("same-session solo placement = %q, %v; want farm", name, err)
	}
	if _, err := SelectResource(d.deployment, WorkerSpec{Channel: ChannelIbis, Workers: 3, Session: "tenant-c"}); err == nil {
		t.Fatal("third tenant's gang placed onto a full jungle")
	}
}

// TestSessionWorkerNamespaces: session-labelled simulations draw worker
// ids from disjoint per-session blocks (ports derive from ids, so the
// blocks keep peer planes and pools namespaced), and the daemon can
// enumerate a session's live workers.
func TestSessionWorkerNamespaces(t *testing.T) {
	d := racingTestbed(t)
	ctx := context.Background()

	sims := make(map[string]*Simulation)
	for _, id := range []string{"red", "blue"} {
		sim := NewSimulation(ctx, d, nil)
		t.Cleanup(func() { sim.Stop() })
		sim.SetSession(id, nil)
		sims[id] = sim
		if _, err := sim.NewGravity(ctx, WorkerSpec{Channel: ChannelIbis}, GravityOptions{Eps: 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	red, blue := d.SessionWorkers("red"), d.SessionWorkers("blue")
	if len(red) != 1 || len(blue) != 1 {
		t.Fatalf("session workers: red=%v blue=%v, want one each", red, blue)
	}
	if red[0]/sessionIDBlock == 0 || blue[0]/sessionIDBlock == 0 {
		t.Fatalf("session worker ids %d, %d not in session blocks", red[0], blue[0])
	}
	if red[0]/sessionIDBlock == blue[0]/sessionIDBlock {
		t.Fatalf("sessions share id block: red=%d blue=%d", red[0], blue[0])
	}

	// Stopping a session's simulation empties its worker set but leaves
	// the other session running.
	if err := sims["red"].Stop(); err != nil {
		t.Fatal(err)
	}
	if left := d.SessionWorkers("red"); len(left) != 0 {
		t.Fatalf("red workers after stop: %v", left)
	}
	if left := d.SessionWorkers("blue"); len(left) != 1 {
		t.Fatalf("blue workers after red stopped: %v", left)
	}
}
