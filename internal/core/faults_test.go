package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/deploy"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

// TestHostCrashKillsWorker injects a vnet-level fault: the host running a
// remote worker goes down (not a scheduler cancel — the machine vanishes).
// The registry must observe the death and the next call must fail — the
// paper's §5 fault behaviour, from the hardware side.
func TestHostCrashKillsWorker(t *testing.T) {
	tb, sim := labSim(t)
	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }

	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 1)); err != nil {
		t.Fatal(err)
	}

	// The machine disappears: all its connections break.
	if err := tb.Net.CrashHost("lgm"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("host crash not detected")
	}
	if err := g.EvolveTo(context.Background(), 0.5); !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("err = %v, want ErrWorkerDied", err)
	}
}

// TestReplacementAfterHostCrash combines the fault with the §5 future-work
// replacement: the substitute must land on a different resource because
// the crashed one has no GPU... (LGM is down; TUD has the remaining GPUs).
func TestReplacementAfterHostCrash(t *testing.T) {
	tb, sim := labSim(t)
	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }

	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	stars := ic.Plummer(16, 2)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	if err := tb.Net.CrashHost("lgm"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("crash not detected")
	}
	// Next call triggers replacement. LGM is down, so selection must pick
	// the TUD GPU nodes.
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatalf("replacement failed: %v", err)
	}
	if g.spec.Resource != "das4-tud" {
		t.Fatalf("replacement resource = %q, want das4-tud", g.spec.Resource)
	}
}

// TestMalleabilityAddResourceMidRun exercises IPL's malleability end to
// end: a new resource (cloud burst) joins the running deployment, a hub is
// started on it automatically, and a new worker lands there while existing
// workers keep running.
func TestMalleabilityAddResourceMidRun(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 3)); err != nil {
		t.Fatal(err)
	}
	if err := g.EvolveTo(context.Background(), 1.0/64); err != nil {
		t.Fatal(err)
	}

	// A new cluster appears mid-run (the paper's opportunistic usage).
	cloud, err := tb.Net.AddCluster(vnet.ClusterSpec{
		Name: "cloud", Site: "ec2", Nodes: 4,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Net.AddLink("desktop", cloud.Frontend, 5*time.Millisecond, 1.25e8); err != nil {
		t.Fatal(err)
	}
	if err := tb.Deployment.AddResource(deploy.Resource{
		Name: "cloud", Middleware: "sge", Frontend: cloud.Frontend, Nodes: cloud.NodeName,
		CPU: &vtime.Device{Name: "vcpu", Kind: vtime.CPU, Gflops: 6, Cores: 4},
	}); err != nil {
		t.Fatal(err)
	}

	h, err := sim.NewHydro(context.Background(), WorkerSpec{Resource: "cloud", Nodes: 2, Channel: ChannelIbis},
		HydroOptions{SelfGravity: false})
	if err != nil {
		t.Fatalf("worker on mid-run resource: %v", err)
	}
	_, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1, Gas: 80, GasFrac: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := h.EvolveTo(context.Background(), 0.005); err != nil {
		t.Fatal(err)
	}
	// The original worker is unaffected.
	if err := g.EvolveTo(context.Background(), 2.0/64); err != nil {
		t.Fatal(err)
	}
}

// TestStopWorkerGraceful: a graceful stop must not fire the died hook (it
// is not a fault).
func TestStopWorkerGraceful(t *testing.T) {
	tb, sim := labSim(t)
	fired := make(chan int, 4)
	tb.Daemon.OnWorkerDied = func(id int) { fired <- id }
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(8, 5)); err != nil {
		t.Fatal(err)
	}
	tb.Daemon.StopWorker(g.worker)
	select {
	case id := <-fired:
		t.Fatalf("died hook fired for graceful stop of worker %d", id)
	case <-time.After(300 * time.Millisecond):
	}
}
