package core

import "jungle/internal/vtime"

// Kernel efficiency calibration.
//
// Virtual compute time is flops / (device Gflops × efficiency). Device
// Gflops are honest relative peak figures for the paper's hardware (a
// GeForce 9600GT vs a Tesla C2050 vs Core2/Xeon cores), so *ratios* between
// devices — who wins when a kernel moves — come from the hardware model.
// The per-kernel-family efficiency constants below are the calibration
// knobs fitted once against §6.2's scenario 1–3 numbers (353 / 89 / 84
// seconds per iteration at the E1 workload: 1000 stars, 10000 gas
// particles, one bridge step of 1/64): solving the three scenario equations
// gives per-phase targets t_fi(desktop)=84 s, t_phigrape-cpu(desktop)=212 s,
// t_gadget(desktop)=57.3 s, t_octgrav(9600GT)=9 s, t_octgrav(C2050)=2.7 s.
// Scenario 4 then *follows from the model* (no per-scenario tuning), which
// is the claim the reproduction checks. See EXPERIMENTS.md.
//
// The fitted efficiencies are far below 1 because the real codes spend most
// of an iteration outside the counted flops (Python coupler overhead, I/O,
// tree walks' memory stalls); the constant absorbs all of it uniformly per
// kernel family, which preserves cross-device shape.
// Fitted in two passes: first from standalone per-iteration flop counts at
// the E1 workload (phigrape 1.558e9, sph 1.439e9, coupling 3.62e8
// flops/iter — see TestCalibrationMeasurements), then refined against the
// measured in-bridge phase decomposition (coupled steps take different
// adaptive-step counts than standalone ones). Final fit targets
// t_fi(desktop)=84 s, t_phigrape-cpu(desktop)=212 s, t_gadget(desktop)=57.3 s.
var kernelEfficiency = map[Kind]float64{
	KindGravity: 1.842e-4, // Hermite direct summation (PhiGRAPE)
	KindField:   1.395e-4, // Barnes–Hut tree (Fi / Octgrav)
	KindHydro:   5.313e-4, // SPH + tree (Gadget)
	KindStellar: 1,        // lookups; negligible either way
}

// effectiveDevice returns a copy of dev derated to the kernel family's
// sustained efficiency.
func effectiveDevice(dev *vtime.Device, kind Kind) *vtime.Device {
	eff := kernelEfficiency[kind]
	if eff <= 0 {
		eff = 1
	}
	d := *dev
	d.Gflops = dev.Gflops * eff
	return &d
}
