package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/bridge"
	"jungle/internal/smartsockets"
	"jungle/internal/trace"
)

// Third-party state transfer: the coupler orchestrates ("send your columns
// to peer A" / "expect stream T from peer B"), the column bytes flow
// worker-to-worker over the SmartSockets overlay. Where the coupled step
// used to Pull worker->coupler and Push coupler->worker — two WAN
// crossings with the user's uplink as the bottleneck — the direct plane
// costs one inter-site leg plus small control RPCs. When the peer path is
// unreachable (local workers, sockets channel, a dead stream) the
// transfer falls back to exactly that Pull/Push hairpin, so TransferState
// is always safe to call; the direct-path failure that triggered the
// fallback is classified under ErrTransport/ErrWorkerDied and reported
// through OnTransferFallback.

// transferIDs allocates transfer stream ids and staging slots,
// process-wide so concurrent simulations on one daemon cannot collide.
var transferIDs atomic.Uint64

// NewStoreRef allocates a fresh process-unique id from the transfer-id
// space, for callers (the ensemble layer) that stage their own blobs in
// a daemon's checkpoint store and must not collide with checkpoint or
// transfer ids.
func NewStoreRef() uint64 { return transferIDs.Add(1) }

// StateEndpoint is any coupler-side model handle whose worker holds
// particle state — Gravity, Hydro, FieldModel, StellarModel and the
// generic Model all satisfy it.
type StateEndpoint interface {
	stateProxy() *modelProxy
}

func (m *modelProxy) stateProxy() *modelProxy { return m }

// peerAddr resolves the worker's direct-transfer address; ok is false
// when the worker has no peer plane (mpi and sockets channels, or a
// worker that is gone).
func (m *modelProxy) peerAddr() (smartsockets.Address, bool) {
	m.mu.Lock()
	ch := m.spec.Channel
	worker := m.worker
	m.mu.Unlock()
	if ch != ChannelIbis || worker == 0 {
		return smartsockets.Address{}, false
	}
	return m.sim.daemon.WorkerPeerAddr(worker)
}

// TransferStats counts how transfers were carried.
type TransferStats struct {
	Direct   int // worker-to-worker single-stream transfers
	Striped  int // worker-to-worker striped (parallel-stream) transfers
	Fallback int // direct path failed, hairpin completed the transfer
	Hairpin  int // no peer path existed, hairpin from the start
	// StripeFallback counts striped attempts that completed over a single
	// stream instead (those transfers are counted under Direct). Unlike
	// Fallback, the bytes still flowed worker-to-worker.
	StripeFallback int
}

// TransferStats returns the session's transfer counters.
func (s *Simulation) TransferStats() TransferStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transfers
}

func (s *Simulation) countTransfer(f func(*TransferStats)) {
	s.mu.Lock()
	f(&s.transfers)
	rec, id := s.sessionRec, s.session
	s.mu.Unlock()
	if rec != nil && id != "" {
		rec.SessionTransfer(id)
	}
}

// GoTransferState starts moving the named attribute columns (default
// mass/position/velocity) from src's worker to dst's worker and returns
// the transfer's future. The orchestration RPCs are on the wire before it
// returns; the bytes travel worker-to-worker when both ends have a peer
// plane, through the coupler otherwise.
func (s *Simulation) GoTransferState(src, dst StateEndpoint, attrs ...string) *Call {
	return s.goTransfer(src.stateProxy(), dst.stateProxy(), kernel.MethodApplyState, 0, attrs)
}

// TransferState moves the named attribute columns from src's worker to
// dst's worker and waits for completion — GoTransferState.Wait sugar.
// nil ctx means the session context.
func (s *Simulation) TransferState(ctx context.Context, src, dst StateEndpoint, attrs ...string) error {
	if ctx == nil {
		ctx = s.ctx
	}
	return s.GoTransferState(src, dst, attrs...).Wait(ctx)
}

// isPeerPathErr classifies errors that warrant falling back to the
// hairpin: the transfer machinery failed (stream, dial, abort, timeout)
// or the worker died mid-flight (a replacement may serve the hairpin).
func isPeerPathErr(err error) bool {
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrWorkerDied)
}

// goTransfer is the general transfer: apply names the method the
// destination applies the payload with (set_state, or a staging method
// tagged by slot).
func (s *Simulation) goTransfer(src, dst *modelProxy, apply string, slot uint64, attrs []string) *Call {
	attrs = defaultStateAttrs(attrs)
	c := newCall("transfer", "transfer_state", nil)
	dstPeer, dstOK := dst.peerAddr()
	_, srcOK := src.peerAddr()
	// A gang destination takes the hairpin: its ranks hold replicated
	// state, and the ordinary set_state broadcast is what keeps all K
	// replicas consistent (a peer stream would land on rank 0 alone). A
	// gang source is fine — rank 0 offers the authoritative copy.
	if dst.isGang() {
		dstOK = false
	}
	// A self-transfer cannot use the peer plane either: the worker's
	// relay loop is single-threaded, so its accept_state would block the
	// very offer_state that feeds it until the accept timed out. The
	// hairpin handles all three cases at ordinary RPC cost.
	if !srcOK || !dstOK || src == dst {
		s.countTransfer(func(t *TransferStats) { t.Hairpin++ })
		s.linkTransfer(src.peerHost(), dst.peerHost(), trace.LinkHairpin)
		go s.runHairpin(c, src, dst, apply, slot, attrs)
		return c
	}

	id := transferIDs.Add(1)
	stripes, codec := s.transferTuning()
	// Both control RPCs are pipelined; their big cousin — the column
	// payload — never touches this machine. Transfer ops bypass worker
	// replacement: a replacement worker has a different peer identity, so
	// a failed op falls back to the hairpin instead (which replays on the
	// replacement as usual).
	accept := dst.goNoReplace(kernel.MethodAcceptState, kernel.AcceptStateArgs{ID: id, Apply: apply, Slot: slot})
	// With the knobs off the offer carries the legacy args shape, keeping a
	// default session's RPC bytes identical to a build without the
	// bandwidth-aware plane (gob transmits field names).
	var offerArgs any = kernel.OfferStateArgs{ID: id, Attrs: attrs, Peer: dstPeer.String()}
	if stripes > 1 || codec != kernel.CodecRaw {
		offerArgs = kernel.OfferStateTuned{
			ID: id, Attrs: attrs, Peer: dstPeer.String(), Stripes: stripes, Codec: codec}
	}
	offer := src.goNoReplace(kernel.MethodOfferState, offerArgs)
	go func() {
		err := offer.Wait(s.ctx)
		if err != nil {
			// No stream is coming whatever the failure class (a worker
			// fault like an unknown attribute included): unblock the
			// accept so it does not hold the destination's relay loop —
			// and every RPC queued behind it — for the accept timeout.
			s.daemon.AbortTransfer(dstPeer, id)
		} else if err = accept.Wait(s.ctx); err != nil && isPeerPathErr(err) {
			// The accept may still be parked (its stream died en route).
			s.daemon.AbortTransfer(dstPeer, id)
		}
		if err == nil {
			s.recordTransferReport(offer, id, src.peerHost(), dstPeer.Host)
			c.finish(nil, nil)
			return
		}
		if !isPeerPathErr(err) {
			c.finish(nil, err)
			return
		}
		// Direct path failed: carry the columns over the coupler instead.
		s.countTransfer(func(t *TransferStats) { t.Fallback++ })
		s.linkTransfer(src.peerHost(), dstPeer.Host, trace.LinkFallback)
		s.trace("transfer %d: direct path failed (%v); falling back to coupler hairpin", id, err)
		if hook := s.onTransferFallback(); hook != nil {
			hook(err)
		}
		s.runHairpin(c, src, dst, apply, slot, attrs)
	}()
	return c
}

func (s *Simulation) onTransferFallback() func(error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.OnTransferFallback
}

// transferTuning reads the bulk-transfer knobs under the session lock.
func (s *Simulation) transferTuning() (stripes int, codec byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.TransferStripes, s.TransferCodec
}

// checkpointTuning reads the checkpoint-stream knobs under the session
// lock (striping shares the transfer knob; the codec has its own).
func (s *Simulation) checkpointTuning() (stripes int, codec byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.TransferStripes, s.CheckpointCodec
}

// recordTransferReport folds a successful offer's TransferReport into the
// session counters: striped vs single-stream delivery, and the structured
// stripe-fallback notification (a striped attempt that completed over a
// single stream — still worker-to-worker, but worth surfacing to the same
// observer as hairpin fallbacks).
func (s *Simulation) recordTransferReport(offer *Call, id uint64, from, to string) {
	var rep kernel.TransferReport
	if err := offer.Decode(&rep); err != nil {
		rep = kernel.TransferReport{Streams: 1}
	}
	s.countTransfer(func(t *TransferStats) {
		if rep.Streams > 1 {
			t.Striped++
		} else {
			t.Direct++
		}
		if rep.StripeFallback {
			t.StripeFallback++
		}
	})
	if rep.Streams > 1 {
		s.linkTransfer(from, to, trace.LinkStriped)
	} else {
		s.linkTransfer(from, to, trace.LinkDirect)
	}
	if rep.StripeFallback {
		s.linkTransfer(from, to, trace.LinkStripeFallback)
	}
	if rep.StripeFallback {
		err := fmt.Errorf("%w: transfer %d: striped path failed (%s); completed over a single stream",
			ErrTransport, id, rep.StripeErr)
		s.trace("transfer %d: %v", id, err)
		if hook := s.onTransferFallback(); hook != nil {
			hook(err)
		}
	}
}

// runHairpin carries the columns through the coupler: one batched read
// from src, one batched apply on dst — the pre-direct-plane data path,
// kept as the universal fallback. It finishes c.
func (s *Simulation) runHairpin(c *Call, src, dst *modelProxy, apply string, slot uint64, attrs []string) {
	raw, err := src.getStateRaw(s.ctx, attrs)
	if err != nil {
		c.finish(nil, err)
		return
	}
	args := raw
	if slot != 0 {
		args = kernel.AppendStaged(nil, slot, raw)
	}
	ac := dst.goRaw(apply, args, nil)
	c.finish(nil, ac.Wait(s.ctx))
}

// getStateRaw fetches the named columns as an unparsed StatePayload frame
// (the hairpin forwards it verbatim, so the coupler never decodes the
// columns it relays).
func (m *modelProxy) getStateRaw(ctx context.Context, attrs []string) ([]byte, error) {
	var raw []byte
	buf := kernel.GetBuf()
	args := kernel.AppendStateRequest(*buf, &kernel.StateRequest{Attrs: attrs})
	c := m.goPooled("get_state", args, buf, func(b []byte) error {
		raw = append([]byte(nil), b...)
		return nil
	})
	if err := c.Wait(m.sessionCtx(ctx)); err != nil {
		return nil, err
	}
	return raw, nil
}

// goNoReplace issues one RPC that must not be replayed on a replacement
// worker (transfer ops are bound to a specific peer identity).
func (m *modelProxy) goNoReplace(method string, args any) *Call {
	c := newCall(m.kind, method, nil)
	c.seq = m.seq.Add(1)
	m.startCall(c, method, encode(args), false)
	return c
}

// NewRemoteChannel mirrors data.NewChannel for particle sets that live on
// workers: Copy moves columns from src's worker to dst's worker over the
// direct data plane (or its fallback) without materializing them on the
// coupler. nil ctx means the session context.
func (s *Simulation) NewRemoteChannel(ctx context.Context, src, dst StateEndpoint) *data.RemoteChannel {
	if ctx == nil {
		ctx = s.ctx
	}
	return data.NewRemoteChannel(func(attrs []string) error {
		return s.TransferState(ctx, src, dst, attrs...)
	})
}

// GoFieldDirect evaluates the field of src's particles at tgt's positions
// with both inputs staged on the field worker over the direct data plane:
// the coupler orchestrates three RPCs but never holds the columns
// (bridge.DirectField). Staging pays one extra control round trip (the
// evaluation is issued after both stage applications), so it is used only
// when all three workers have peer planes — exactly the placements where
// the column payloads would otherwise hairpin over the coupler's WAN
// links. Everything else takes the classic sampled GoFieldAt path at its
// pre-direct-plane cost.
func (f *FieldModel) GoFieldDirect(src, tgt bridge.Dynamics) bridge.FieldCall {
	se, sok := src.(StateEndpoint)
	te, tok := tgt.(StateEndpoint)
	if sok && tok {
		_, srcOK := se.stateProxy().peerAddr()
		_, tgtOK := te.stateProxy().peerAddr()
		_, selfOK := f.peerAddr()
		if srcOK && tgtOK && selfOK {
			return f.goFieldStaged(se.stateProxy(), te.stateProxy(), tgt.N())
		}
	}
	return f.goFieldSampled(src, tgt)
}

// goFieldStaged moves both inputs worker-to-worker and issues the staged
// evaluation once their applications are queued on the field worker.
func (f *FieldModel) goFieldStaged(src, tgt *modelProxy, n int) bridge.FieldCall {
	s := f.sim
	slot := transferIDs.Add(1)
	t1 := s.goTransfer(src, f.modelProxy, "stage_sources", slot,
		[]string{data.AttrMass, data.AttrPos})
	t2 := s.goTransfer(tgt, f.modelProxy, "stage_targets", slot,
		[]string{data.AttrPos})
	dc := &directFieldCall{n: n, done: make(chan struct{})}
	go func() {
		defer close(dc.done)
		err1 := t1.Wait(s.ctx)
		err2 := t2.Wait(s.ctx)
		if err1 != nil || err2 != nil {
			// The evaluation that would consume the slot will never be
			// issued; release whatever half was staged so the field
			// worker does not accumulate orphaned columns.
			f.Go("stage_release", kernel.FieldStagedArgs{Slot: slot})
			if err1 != nil {
				dc.err = fmt.Errorf("core: field staging (sources): %w", err1)
			} else {
				dc.err = fmt.Errorf("core: field staging (targets): %w", err2)
			}
			return
		}
		// Both stage applications are queued on the field worker (FIFO),
		// so the evaluation issued now runs against this slot's state.
		dc.call = f.Go("field_staged", kernel.FieldStagedArgs{Slot: slot})
	}()
	return dc
}

// goFieldSampled is the classic data path as a future: sample the two
// models concurrently, then issue the evaluation with the columns in the
// call arguments.
func (f *FieldModel) goFieldSampled(src, tgt bridge.Dynamics) bridge.FieldCall {
	dc := &directFieldCall{n: tgt.N(), done: make(chan struct{})}
	go func() {
		defer close(dc.done)
		var srcMass []float64
		var srcPos, tgtPos []data.Vec3
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			srcMass, srcPos = src.Masses(), src.Positions()
		}()
		go func() {
			defer wg.Done()
			tgtPos = tgt.Positions()
		}()
		wg.Wait()
		dc.call = f.Go("field_at", kernel.FieldAtArgs{SrcMass: srcMass, SrcPos: srcPos, Targets: tgtPos})
	}()
	return dc
}

// directFieldCall is the pending staged field evaluation behind
// GoFieldDirect.
type directFieldCall struct {
	n    int
	done chan struct{}
	err  error
	call *Call
}

// Wait implements bridge.FieldCall.
func (dc *directFieldCall) Wait(ctx context.Context) ([]data.Vec3, []float64, float64, error) {
	zeros := func(err error) ([]data.Vec3, []float64, float64, error) {
		return make([]data.Vec3, dc.n), make([]float64, dc.n), 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-dc.done:
	case <-ctx.Done():
		return zeros(ctx.Err())
	}
	if dc.err != nil {
		return zeros(dc.err)
	}
	var out kernel.FieldAtResult
	if err := dc.call.Wait(ctx); err != nil {
		return zeros(err)
	}
	if err := dc.call.Decode(&out); err != nil {
		return zeros(err)
	}
	return out.Acc, out.Pot, 0, nil
}
