package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/trace"
)

// Channel-layer instrumentation for the observability plane. Every
// channel (mpi, conn, gang) carries an optional *chanObs: issuing a call
// samples the channel's in-flight depth into the per-worker queue-depth
// histogram, and the completion records the call's virtual round-trip
// latency under its session/model/method key. Recording is pure
// observation — it never touches the virtual clock or the wire, so a
// session runs byte-identical with the plane on or off (the regression
// test in observe_identity_test.go holds the headline benchmarks to
// that).

// chanObs instruments one channel endpoint.
type chanObs struct {
	rec     *trace.Recorder
	session string // "" for standalone simulations
	model   string // kind, with /r<rank> suffix for gang members
	worker  string // queue-depth label: kind/<worker-id>@resource
	// floor is the configured vtime round-trip minimum for this channel
	// (2x routed path latency; 2x the mpi message cost in-process) — the
	// constant Calibrate compares observed latencies against.
	floor    time.Duration
	inflight atomic.Int64
}

// observe wraps a completion with latency/queue-depth recording. Safe on
// a nil receiver (plane off): the completion passes through untouched.
func (o *chanObs) observe(method string, sentAt time.Duration, done completion) completion {
	if o == nil {
		return done
	}
	depth := int(o.inflight.Add(1))
	o.rec.RecordQueueDepth(o.worker, depth)
	return func(resp response, arrival time.Duration, err error) {
		o.inflight.Add(-1)
		if err != nil || arrival < sentAt {
			// No response crossed the wire (transport failure, dead
			// channel): there is no honest latency to record.
			o.rec.RecordCallError(o.session, o.model, method)
		} else {
			// Structured failures still rode a real round trip; their
			// latency is as honest as a success's.
			o.rec.RecordCall(o.session, o.model, method, arrival-sentAt, o.floor)
		}
		done(resp, arrival, err)
	}
}

// observer builds the channel observer for one worker endpoint. host is
// the worker's vnet host ("" for an in-process mpi worker); worker is
// the daemon worker id (0 for mpi); rank >= 0 labels a gang member.
// Returns nil when the simulation has no monitor.
func (s *Simulation) observer(kind Kind, resource, host string, worker, rank int) *chanObs {
	rec := s.Monitor
	if rec == nil {
		return nil
	}
	model := string(kind)
	if rank >= 0 {
		model = fmt.Sprintf("%s/r%d", kind, rank)
	}
	o := &chanObs{
		rec:     rec,
		session: s.Session(),
		model:   model,
		worker:  fmt.Sprintf("%s/%d@%s", kind, worker, resource),
	}
	dep := s.daemon.Deployment()
	if host == "" {
		o.floor = 2 * mpiMessageLatency
	} else if p, err := dep.Net.Route(dep.LocalHost(), host); err == nil {
		o.floor = 2 * p.Latency
	}
	return o
}

// gangObserver builds the observer for a gang channel's merged
// completions: model label without a rank suffix, one queue-depth line
// for the whole gang. The floor is rank 0's (all ranks share the
// resource).
func (s *Simulation) gangObserver(kind Kind, resource, host string, worker int) *chanObs {
	o := s.observer(kind, resource, host, worker, -1)
	if o != nil {
		o.worker = fmt.Sprintf("%s/gang@%s", kind, resource)
	}
	return o
}

// workerHost resolves a started worker's vnet host for the observer's
// floor computation: its peer-plane address when it has one, the
// resource's frontend otherwise.
func (s *Simulation) workerHost(id int, resource string) string {
	if addr, ok := s.daemon.WorkerPeerAddr(id); ok {
		return addr.Host
	}
	if res, err := s.daemon.Deployment().Resource(resource); err == nil {
		return res.Frontend
	}
	return ""
}

// linkTransfer counts one bulk-transfer outcome on the from->to link in
// the link-health table. kind is a trace.Link* constant.
func (s *Simulation) linkTransfer(from, to, kind string) {
	if rec := s.Monitor; rec != nil && from != "" && to != "" {
		rec.RecordLinkTransfer(from, to, kind)
	}
}

// replayRestore is replay(restore) plus the store's restore-latency
// gauge: the virtual time the restore round trip cost this model.
func (m *modelProxy) replayRestore(snap []byte) error {
	start := m.sim.clock.Now()
	err := m.replay(kernel.MethodRestore, snap)
	if err == nil {
		if rec := m.sim.Monitor; rec != nil {
			rec.RecordRestore(string(m.kind), m.sim.clock.Now()-start)
		}
	}
	return err
}

// peerHost is the host label a proxy contributes to the link-health
// table: its peer-plane host when it has one, its resource otherwise
// (mpi workers run in-process on the client).
func (m *modelProxy) peerHost() string {
	if addr, ok := m.peerAddr(); ok {
		return addr.Host
	}
	return m.resource()
}
