package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"time"

	"jungle/internal/amuse/units"
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/trace"
)

// Coupler-side checkpoint/restore. Simulation.Checkpoint snapshots every
// model at a consistent point and returns a Manifest — everything needed
// to rebuild the session: per-model kinds, worker specs (including gang
// shapes), encoded setup args, the coupler's virtual clock, and the
// snapshot blobs themselves. ResumeSimulation inverts it: fresh workers,
// setup replayed, snapshots restored, clock advanced — the resumed run
// continues bit-compatibly with the one that checkpointed.
//
// Consistency comes from the per-worker FIFO: the snapshot request is an
// ordinary call, so it executes only after every call issued before it —
// the checkpoint drains each worker's in-flight pipeline and captures the
// state those calls left behind. Checkpoint is therefore safe to issue
// between bridge steps without any global barrier.
//
// The blob bytes travel the same two paths as bulk state: workers with a
// peer plane stream their snapshot directly to the daemon's checkpoint
// store (offer_checkpoint, never crossing the coupler's RPC plane), and
// everything else — or a direct path that fails mid-flight, classified
// exactly like TransferState — falls back to pulling the frame over the
// ordinary channel. Both paths count in TransferStats.

// ModelCheckpoint is one model's entry in a Manifest.
type ModelCheckpoint struct {
	// Kind is the worker kind (a registered kernel registry name).
	Kind Kind
	// Spec is the worker spec the model was started with — resource,
	// channel, node count and gang shape (Workers).
	Spec WorkerSpec
	// Setup is the encoded setup-args payload, replayed verbatim on
	// resume before the snapshot is restored.
	Setup []byte
	// Blob is the daemon-store ref the snapshot was filed under.
	Blob uint64
	// Snapshot is the snapshot frame itself (kernel.Snapshot codec),
	// inlined so a saved manifest is self-contained.
	Snapshot []byte
}

// Manifest is a complete, self-contained simulation checkpoint.
type Manifest struct {
	// VTime is the coupler's virtual clock when the checkpoint completed.
	VTime time.Duration
	// Models lists every live model in creation order.
	Models []ModelCheckpoint
}

// Checkpoint snapshots every model of the simulation and returns the
// manifest. The snapshot calls fan out asynchronously (all on the wire
// before any is waited on, like every other multi-model phase); each
// rides its worker's FIFO, so in-flight pipelines drain first. For a gang
// the snapshot comes from rank 0 — ranks hold bitwise-identical
// replicated state. nil ctx means the session context.
func (s *Simulation) Checkpoint(ctx context.Context) (*Manifest, error) {
	if ctx == nil {
		ctx = s.ctx
	}
	s.mu.Lock()
	models := append([]*modelProxy(nil), s.models...)
	s.mu.Unlock()
	daddr, storeOK := s.daemon.CheckpointPeerAddr()

	type pending struct {
		m      *modelProxy
		c      *Call
		id     uint64
		seq    uint64 // seq of the call that produced the blob
		direct bool
		blob   []byte
		err    error
	}
	stripes, codec := s.checkpointTuning()
	pends := make([]*pending, 0, len(models))
	for _, m := range models {
		p := &pending{m: m, id: transferIDs.Add(1)}
		if _, ok := m.peerAddr(); ok && storeOK {
			// Peer path: the proxy snapshots and streams straight to the
			// daemon's store; the blob never rides the RPC plane. Base names
			// the previous checkpoint's blob for the ref-delta codec.
			m.mu.Lock()
			base := m.lastBlobRef
			m.mu.Unlock()
			p.direct = true
			// Legacy args shape when the knobs are off, so default-path
			// checkpoints stay wire-identical (gob transmits field names).
			var args any = kernel.OfferCheckpointArgs{ID: p.id, Peer: daddr.String()}
			if stripes > 1 || codec != kernel.CodecRaw {
				args = kernel.OfferCheckpointTuned{ID: p.id, Peer: daddr.String(),
					Stripes: stripes, Codec: codec, Base: base}
			}
			p.c = m.goNoReplace(kernel.MethodOfferCheckpoint, args)
		} else {
			s.countTransfer(func(t *TransferStats) { t.Hairpin++ })
			p.c = m.goCheckpointPull(&p.blob)
		}
		p.seq = p.c.seq
		pends = append(pends, p)
	}
	// Wait for EVERY model before acting on any failure: a stream's blob
	// is deposited (and acked) before its offer call completes, so once
	// all calls have finished, all deposits this attempt will ever make
	// are in the store — a failed attempt can then be trimmed completely.
	var firstErr error
	for _, p := range pends {
		err := p.c.Wait(ctx)
		if p.direct {
			if err == nil {
				blob, ok := s.daemon.CheckpointBlob(p.id)
				if !ok {
					err = fmt.Errorf("%w: checkpoint %d acked but blob missing from store", ErrTransport, p.id)
				} else {
					s.recordTransferReport(p.c, p.id, p.m.peerHost(), daddr.Host)
					p.blob = blob
				}
			}
			if err != nil && (isPeerPathErr(err) ||
				errors.Is(err, ErrWorkerDied) || errors.Is(err, ErrChannelClosed)) {
				// Same fallback contract as TransferState: the direct path
				// failed, the RPC plane carries the frame instead. A worker
				// torn down under the offer (death, migration, resize) falls
				// back too — the pull is replaceable, so it rides the retry
				// queue and completes against the rebuilt endpoint.
				s.countTransfer(func(t *TransferStats) { t.Fallback++ })
				s.trace("checkpoint %d: direct path failed (%v); pulling over the channel", p.id, err)
				if hook := s.onTransferFallback(); hook != nil {
					hook(err)
				}
				c := p.m.goCheckpointPull(&p.blob)
				p.seq = c.seq
				err = c.Wait(ctx)
			}
		}
		if err != nil {
			p.err = fmt.Errorf("core: checkpoint %s: %w", p.m.kind, err)
			if firstErr == nil {
				firstErr = p.err
			}
		}
	}
	if firstErr != nil {
		// The attempt failed as a whole: trim whatever it deposited so
		// repeated failing checkpoints cannot grow the store.
		for _, p := range pends {
			s.daemon.DropCheckpoint(p.id)
		}
		return nil, firstErr
	}

	man := &Manifest{VTime: s.clock.Now()}
	for _, p := range pends {
		// The store holds every blob (hairpinned ones included) so a later
		// diagnostic can find it by ref; the blob it supersedes is trimmed
		// so a long checkpointing session holds one snapshot per model,
		// not one per checkpoint.
		s.daemon.StoreCheckpoint(p.id, p.blob)
		s.daemon.TagCheckpoint(p.id, s.Session())
		if rec := s.Monitor; rec != nil {
			wire, ok := s.daemon.CheckpointWireBytes(p.id)
			if !ok {
				wire = len(p.blob)
			}
			rec.RecordCheckpoint(string(p.m.kind), len(p.blob), wire)
		}
		if prev := p.m.cacheSnapshot(p.blob, p.id, p.seq); prev != 0 {
			s.daemon.DropCheckpoint(prev)
		}
		p.m.mu.Lock()
		mc := ModelCheckpoint{
			Kind: p.m.kind, Spec: p.m.spec, Setup: p.m.encodedSetupLocked(),
			Blob: p.id, Snapshot: p.blob,
		}
		p.m.mu.Unlock()
		man.Models = append(man.Models, mc)
	}
	s.trace("checkpoint complete: %d models, vtime=%v", len(man.Models), man.VTime)
	return man, nil
}

// goCheckpointPull issues the snapshot call over the RPC plane and copies
// the raw frame out when the result is observed.
func (m *modelProxy) goCheckpointPull(out *[]byte) *Call {
	return m.goCheckpointPullOpt(out, true)
}

// goCheckpointPullOpt is goCheckpointPull with replacement control.
// mayReplace=false is for callers already holding migMu (migration,
// resize): a worker death during the pull must fail the call directly —
// queuing it for the retry drainer would deadlock, since the drainer's
// replacement path blocks on migMu itself.
func (m *modelProxy) goCheckpointPullOpt(out *[]byte, mayReplace bool) *Call {
	c := newCall(m.kind, kernel.MethodCheckpoint, func(raw []byte) error {
		*out = append([]byte(nil), raw...)
		return nil
	})
	c.seq = m.seq.Add(1)
	m.startCall(c, kernel.MethodCheckpoint, nil, mayReplace)
	return c
}

// ResumeSimulation rebuilds a session from a manifest: for every recorded
// model it starts a fresh worker (or gang) per the saved spec, replays
// the saved setup, restores the snapshot, and advances the coupler's
// clock to the manifest's. The returned models are in manifest order;
// wrap them with AsGravity/AsHydro/AsStellar/AsField to recover typed
// handles. On any failure the partially resumed session is stopped.
func ResumeSimulation(ctx context.Context, d *Daemon, conv *units.Converter, man *Manifest) (*Simulation, []*Model, error) {
	return ResumeSessionSimulation(ctx, d, conv, man, "", nil)
}

// ResumeSessionSimulation is ResumeSimulation for a control-plane
// session: the resumed simulation is bound to the session id (every
// restarted worker is stamped with it, so id blocks, ports and capacity
// accounting stay namespaced) and, when rec is non-nil, to per-session
// accounting. Empty session and nil rec give exactly ResumeSimulation.
func ResumeSessionSimulation(ctx context.Context, d *Daemon, conv *units.Converter, man *Manifest, session string, rec *trace.Recorder) (*Simulation, []*Model, error) {
	sim := NewSimulation(ctx, d, conv)
	sim.SetSession(session, rec)
	sim.clock.AdvanceTo(man.VTime)
	models := make([]*Model, 0, len(man.Models))
	fail := func(err error) (*Simulation, []*Model, error) {
		sim.Stop()
		return nil, nil, err
	}
	for i, mc := range man.Models {
		if !kernel.Registered(string(mc.Kind)) {
			return fail(fmt.Errorf("%w: %q (missing adapter import? see internal/kernels)", ErrBadKind, mc.Kind))
		}
		// Restarted workers belong to the resuming session, whatever session
		// (if any) saved the manifest.
		mc.Spec.Session = session
		m := &modelProxy{sim: sim, kind: mc.Kind, spec: mc.Spec, setupRaw: mc.Setup}
		if err := m.start(ctx); err != nil {
			return fail(fmt.Errorf("core: resume model %d (%s): %w", i, mc.Kind, err))
		}
		if err := m.replay("setup", mc.Setup); err != nil {
			m.shutdown()
			return fail(fmt.Errorf("core: resume %s setup: %w", mc.Kind, err))
		}
		if len(mc.Snapshot) > 0 {
			if err := m.replayRestore(mc.Snapshot); err != nil {
				m.shutdown()
				return fail(fmt.Errorf("core: resume %s restore: %w", mc.Kind, err))
			}
			m.cacheSnapshot(mc.Snapshot, 0, m.seq.Load())
			if snap, err := kernel.UnmarshalSnapshot(mc.Snapshot); err == nil && snap.State != nil {
				m.mu.Lock()
				m.n = snap.State.N
				m.mu.Unlock()
			}
		}
		sim.mu.Lock()
		sim.models = append(sim.models, m)
		sim.mu.Unlock()
		workers := len(m.WorkerIDs())
		if workers == 0 {
			workers = 1
		}
		sim.sessionAccount(func(rec *trace.Recorder, id string) {
			rec.SessionWorkerDelta(id, workers)
		})
		sim.trace("model resumed kind=%s resource=%s gang=%d", mc.Kind, m.resource(), mc.Spec.Workers)
		models = append(models, &Model{modelProxy: m})
	}
	return sim, models, nil
}

// Kind returns the model's worker kind.
func (m *Model) Kind() Kind { return m.kind }

// AsGravity adapts a resumed generic model to the typed Gravity handle.
// Valid only for KindGravity models.
func (m *Model) AsGravity() *Gravity { return &Gravity{modelProxy: m.modelProxy} }

// AsHydro adapts a resumed generic model to the typed Hydro handle.
func (m *Model) AsHydro() *Hydro { return &Hydro{modelProxy: m.modelProxy} }

// AsStellar adapts a resumed generic model to the typed StellarModel
// handle.
func (m *Model) AsStellar() *StellarModel { return &StellarModel{modelProxy: m.modelProxy} }

// AsField adapts a resumed generic model to the typed FieldModel handle
// (the kernel name comes from the saved spec).
func (m *Model) AsField() *FieldModel {
	m.mu.Lock()
	name := m.spec.Kernel
	m.mu.Unlock()
	return &FieldModel{modelProxy: m.modelProxy, kernelName: name}
}

// Save writes the manifest to a file (atomically: temp file + rename), so
// a killed run's last completed checkpoint is always loadable.
func (man *Manifest) Save(path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(man); err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	return deploy.WriteFileAtomic(path, buf.Bytes())
}

// LoadManifest reads a manifest written by Save.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	man := new(Manifest)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(man); err != nil {
		return nil, fmt.Errorf("core: decode manifest %s: %w", path, err)
	}
	return man, nil
}
