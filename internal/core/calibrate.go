package core

import (
	"fmt"
	"sort"
	"time"

	"jungle/internal/smartsockets"
	"jungle/internal/trace"
)

// The testbed side of the calibration loop: probe every configured
// network edge with the SmartSockets goodput prober, then let the
// recorder compare what the probes measured (and what the channel layer
// observed) against the configured vnet/vtime constants. cmd/jungle-bench
// exposes this as the `calibrate` experiment; the E2E honesty tests use
// it to hold the virtual network to its configuration.

// calibratePortBase is where calibration factories claim ports: above the
// worker peer plane and the probe-accuracy test harness, 100 per host.
const calibratePortBase = 52000

// LinkSpecs enumerates every configured network edge, both directions —
// the configuration the calibration pass checks the live overlay against.
func (tb *Testbed) LinkSpecs() []trace.LinkSpec {
	var specs []trace.LinkSpec
	for _, l := range tb.Net.Links() {
		specs = append(specs,
			trace.LinkSpec{From: l.A, To: l.B, Bandwidth: l.Bandwidth},
			trace.LinkSpec{From: l.B, To: l.A, Bandwidth: l.Bandwidth})
	}
	return specs
}

// calibrateHub picks the hub a calibration factory on host registers
// through: the host's own hub when the deployment runs one there (the
// local host and every resource hub host), the resource hub for cluster
// nodes, and for hosts outside every resource (display clusters) the
// nearest hub-running neighbor on a configured link.
func (tb *Testbed) calibrateHub(host string) string {
	dep := tb.Deployment
	hubs := map[string]bool{dep.LocalHost(): true}
	nodeHub := map[string]string{}
	for _, name := range dep.Resources() {
		r, err := dep.Resource(name)
		if err != nil {
			continue
		}
		hub := r.HubHost
		if hub == "" {
			hub = r.Frontend
		}
		hubs[hub] = true
		nodeHub[r.Frontend] = hub
		for _, node := range r.Nodes {
			nodeHub[node] = hub
		}
	}
	if hubs[host] {
		return host
	}
	if hub, ok := nodeHub[host]; ok {
		return hub
	}
	for _, l := range tb.Net.Links() {
		if l.A == host && hubs[l.B] {
			return l.B
		}
		if l.B == host && hubs[l.A] {
			return l.A
		}
	}
	return dep.LocalHost()
}

// Calibrate probes every configured edge in both directions (standing a
// goodput responder up on each host) and returns the drift report: the
// measured goodput of every edge against its configured bandwidth, plus
// every recorded call key's observed latency against its channel floor.
// at is the virtual time probing starts from (a running simulation's
// Elapsed, or 0 on an idle testbed); the returned time is when the last
// probe completed. Probe traffic rides ordinary virtual connections, so
// the pass costs virtual time — run it between iterations, not inside a
// byte-identity comparison.
func (tb *Testbed) Calibrate(at time.Duration) (trace.Calibration, time.Duration, error) {
	specs := tb.LinkSpecs()
	hostSet := map[string]bool{}
	for _, s := range specs {
		hostSet[s.From] = true
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	factories := map[string]*smartsockets.Factory{}
	responders := map[string]smartsockets.Address{}
	defer func() {
		for _, f := range factories {
			f.Close()
		}
	}()
	base := calibratePortBase
	for _, h := range hosts {
		f, err := smartsockets.NewFactory(tb.Net, h, base, tb.calibrateHub(h))
		if err != nil {
			return trace.Calibration{}, at, fmt.Errorf("core: calibrate factory on %s: %w", h, err)
		}
		factories[h] = f
		l, err := f.Listen(base + 50)
		if err != nil {
			return trace.Calibration{}, at, fmt.Errorf("core: calibrate responder on %s: %w", h, err)
		}
		go f.ServeGoodput(l)
		responders[h] = l.Addr()
		base += 100
	}
	if at <= 0 {
		at = time.Second
	}
	for _, s := range specs {
		_, doneAt, err := factories[s.From].Goodput(responders[s.To], at)
		if err != nil {
			return trace.Calibration{}, at, fmt.Errorf("core: calibrate probe %s -> %s: %w", s.From, s.To, err)
		}
		// Space probes out so each measurement sees a quiet link.
		at = doneAt + time.Second
	}
	return tb.Recorder.Calibrate(specs), at, nil
}
