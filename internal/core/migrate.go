package core

import (
	"context"
	"errors"
	"fmt"

	"jungle/internal/trace"
)

// Elastic gangs, parts 2 and 3: live worker migration and mid-run
// resize. Both generalize PR 5's dead-rank machinery from "a rank died"
// to "we chose to move": pull a fresh checkpoint through the call FIFO
// (draining the in-flight pipeline), tear the old endpoint down, bring a
// new one up — on a better resource (Migrate) or with a different rank
// count (Resize) — and rebuild bit-identical state by replaying setup,
// restoring the snapshot on every rank under a fresh gang id, and
// overlaying any newer particle push. migMu serializes these rebuilds
// against the dead-worker drainer; a failure after teardown leaves the
// cached snapshot and the updated spec in place, so the very next call's
// retry flows into replaceGangRanks and the gang survives anyway.

// ErrMigration labels voluntary endpoint-rebuild failures. Callers can
// errors.Is against it (and against the wrapped cause, e.g.
// ErrWorkerDied for a rank killed mid-migration).
var ErrMigration = errors.New("core: migration failed")

// Migrate moves the model — the whole gang for gang models — to another
// resource while it runs. target names the destination; "" re-places via
// the least-loaded policy, excluding the current resource. The model
// keeps its handle, its state (bit-identical, via checkpoint/restore)
// and its session accounting; only the workers and their jobs move. nil
// ctx means the session context.
func (m *modelProxy) Migrate(ctx context.Context, target string) error {
	ctx = m.sessionCtx(ctx)
	m.migMu.Lock()
	defer m.migMu.Unlock()
	return m.rebuildEndpoint(ctx, "migration", target, 0)
}

// Resize changes a gang's rank count mid-run (grow or shrink K; 1 turns
// the model into a solo worker). Rank and size are baked into every
// worker's job and service construction, so a resize restarts the whole
// gang: all ranks stop, workers new-K start on the same resource,
// gang_init re-wires them under a fresh gang id, and every rank restores
// the pre-resize snapshot — which is exactly why the results stay
// bit-identical to a run that used the new K from the start. The
// rebalancer (if armed) is disarmed first: its cuts vectors are sized to
// the old K. nil ctx means the session context.
func (m *modelProxy) Resize(ctx context.Context, workers int) error {
	if workers < 1 {
		return fmt.Errorf("%w: resize to %d workers", ErrMigration, workers)
	}
	ctx = m.sessionCtx(ctx)
	m.migMu.Lock()
	defer m.migMu.Unlock()
	if m.elasticState() != nil {
		m.sim.trace("resize disarms the rebalancer (cuts are sized to the old K)")
		m.DisableRebalance()
	}
	return m.rebuildEndpoint(ctx, "resize", "", workers)
}

// rebuildEndpoint is the shared Migrate/Resize engine. Callers hold
// migMu. target "" keeps the current resource for resizes and re-places
// migrations; newK 0 keeps the current worker count.
func (m *modelProxy) rebuildEndpoint(ctx context.Context, reason, target string, newK int) error {
	// Calls racing the teardown below may fail on the closed old channel
	// instead of seeing the workers die; the rebuilding counter routes
	// them onto the retry queue (see endpointChanging).
	m.rebuilding.Add(1)
	defer m.rebuilding.Add(-1)
	m.mu.Lock()
	spec := m.spec
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		return fmt.Errorf("%w: %s on a stopped model", ErrMigration, reason)
	}
	if spec.Channel == ChannelMPI {
		return fmt.Errorf("%w: %s of an in-process mpi-channel model", ErrMigration, reason)
	}
	origResource := spec.Resource
	if reason == "migration" && target == "" {
		t, err := selectLeastLoaded(m.sim.daemon.Deployment(), spec, origResource)
		if err != nil {
			return fmt.Errorf("%w: no target resource: %w", ErrMigration, err)
		}
		target = t
	}
	if target == "" {
		target = origResource
	}

	// 1. Fresh snapshot, pulled through the call FIFO: it completes only
	// after every in-flight pipelined call ahead of it, so the state it
	// captures is the state the caller observes. The endpoint is still
	// untouched here — a checkpoint failure aborts with the model intact.
	// mayReplace=false: we hold migMu, so a rank death here must fail the
	// pull (and this rebuild) rather than ride the retry drainer, which
	// blocks on migMu. The death itself still recovers through the next
	// call's retry once we return and release the lock.
	var blob []byte
	c := m.goCheckpointPullOpt(&blob, false)
	if err := c.Wait(ctx); err != nil {
		return fmt.Errorf("%w: %s checkpoint: %w", ErrMigration, reason, err)
	}
	m.mu.Lock()
	ref := m.lastBlobRef
	m.mu.Unlock()
	m.cacheSnapshot(blob, ref, c.seq)

	m.mu.Lock()
	oldIDs := append([]int(nil), m.gangWorkers...)
	if len(oldIDs) == 0 && m.worker != 0 {
		oldIDs = []int{m.worker}
	}
	oldCh := m.ch
	oldWorkers := len(oldIDs)
	setup := m.encodedSetupLocked()
	state := m.lastState
	stateSeq := m.stateSeq
	snapSeq := m.snapSeq
	spec.Resource = target
	if newK > 0 {
		spec.Workers = newK
	}
	m.spec = spec
	m.gangWorkers = nil
	m.mu.Unlock()

	// 2. Tear the old endpoint down. Calls racing this see the workers
	// dead (CodeWorkerDied → the retry queue, whose drainer blocks on
	// migMu and finds the generation bumped once we succeed) or a closed
	// channel (ErrTransport) in the narrow close window — the same
	// accepted race as dead-worker replacement.
	for _, id := range oldIDs {
		m.sim.daemon.StopWorker(id)
	}
	if oldCh != nil {
		oldCh.close()
	}

	// 3. Bring the new endpoint up, with a one-shot fallback to the
	// original resource if the target cannot start the workers.
	if err := m.start(ctx); err != nil {
		if target == origResource {
			return fmt.Errorf("%w: %s start on %s: %w", ErrMigration, reason, target, err)
		}
		m.sim.trace("%s: start on %s failed (%v); falling back to %s", reason, target, err, origResource)
		m.mu.Lock()
		m.spec.Resource = origResource
		m.mu.Unlock()
		if err2 := m.start(ctx); err2 != nil {
			return fmt.Errorf("%w: %s start on %s (%v) and fallback %s: %w",
				ErrMigration, reason, target, err, origResource, err2)
		}
		target = origResource
	}

	// 4. Rebuild bit-identical state: setup, restore the snapshot (a
	// broadcast for gangs — every rank loads it), overlay a newer
	// particle push if one landed after the snapshot. A failure here
	// (e.g. a rank killed mid-migration) returns a structured error
	// WITHOUT bumping the generation: the snapshot is cached and the
	// spec already names the new resource, so the next call's retry
	// drains into replaceGangRanks and recovers the gang there.
	if err := m.replay("setup", setup); err != nil {
		return fmt.Errorf("%w: %s setup replay on %s: %w", ErrMigration, reason, target, err)
	}
	if err := m.replayRestore(blob); err != nil {
		return fmt.Errorf("%w: %s restore on %s: %w", ErrMigration, reason, target, err)
	}
	if state != nil && stateSeq > snapSeq {
		if err := m.replay("set_particles", encode(*state)); err != nil {
			return fmt.Errorf("%w: %s state overlay on %s: %w", ErrMigration, reason, target, err)
		}
	}
	if err := m.finishReplacement(); err != nil {
		return err
	}

	newWorkers := len(m.WorkerIDs())
	if newWorkers == 0 {
		newWorkers = 1
	}
	if delta := newWorkers - oldWorkers; delta != 0 {
		m.sim.sessionAccount(func(rec *trace.Recorder, id string) {
			rec.SessionWorkerDelta(id, delta)
		})
	}
	m.sim.trace("%s complete: kind=%s %s → %s workers=%d", reason, m.kind, origResource, target, newWorkers)
	return nil
}

// resourceContended implements the rebalancer's migrate trigger: the
// capacity ledger says other sessions occupy too much of the resource,
// or (optionally) the latest goodput probe from the coupler's host to
// the resource frontend fell below the policy floor.
func (s *Simulation) resourceContended(resource string, p ElasticPolicy) bool {
	d := s.daemon.Deployment()
	r, err := d.Resource(resource)
	if err != nil {
		return false
	}
	others := d.OccupiedNodesByOthers(resource, s.Session())
	if float64(others) >= p.contentionFraction()*float64(r.NodeCount()) {
		return true
	}
	if p.MinGoodput > 0 && s.Monitor != nil {
		if g, ok := s.Monitor.Goodput(d.LocalHost(), r.Frontend); ok && g.BytesPerSec < p.MinGoodput {
			return true
		}
	}
	return false
}
