package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/analytic"
)

// TestSeedKindsRegistered: importing internal/kernels must register the
// four kinds the paper's evaluation uses — the registry replaces the old
// construction switch without losing a kind.
func TestSeedKindsRegistered(t *testing.T) {
	for _, k := range []Kind{KindGravity, KindHydro, KindStellar, KindField} {
		if !kernel.Registered(string(k)) {
			t.Fatalf("seed kind %q not registered (kinds: %v)", k, kernel.Kinds())
		}
	}
}

// TestUnknownKindReturnsErrBadKind: asking for an unregistered kind fails
// fast with ErrBadKind, before any worker job is submitted.
func TestUnknownKindReturnsErrBadKind(t *testing.T) {
	_, sim := labSim(t)
	_, err := sim.NewModel(context.Background(), "no-such-kind", WorkerSpec{Resource: "desktop", Channel: ChannelMPI}, kernel.Empty{})
	if !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

// TestBatchedStateMatchesPerCall: pushing a whole mass column through one
// set_state must leave the worker in exactly the state N per-particle
// set_mass calls produce, and a batched Pull must read back what three
// per-attribute getters read.
func TestBatchedStateMatchesPerCall(t *testing.T) {
	_, sim := labSim(t)
	stars := ic.Plummer(64, 12)

	newWorker := func() *Gravity {
		g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
			GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetParticles(stars); err != nil {
			t.Fatal(err)
		}
		return g
	}

	masses := make([]float64, stars.Len())
	for i := range masses {
		masses[i] = 1.0/float64(stars.Len()) + 1e-4*float64(i)
	}

	perCall := newWorker()
	for i, m := range masses {
		perCall.SetMass(i, m)
	}
	if err := perCall.Err(); err != nil {
		t.Fatal(err)
	}

	batched := newWorker()
	st := kernel.NewState(stars.Len()).AddFloat(data.AttrMass, masses)
	if err := batched.SetState(context.Background(), st); err != nil {
		t.Fatal(err)
	}

	a, b := perCall.Masses(), batched.Masses()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("mass %d: per-call %v != batched %v", i, a[i], b[i])
		}
	}

	// Batched pull == per-attribute getters.
	out := stars.Clone()
	if err := batched.Pull(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	pos := batched.Positions()
	for i := range pos {
		if out.Pos[i] != pos[i] {
			t.Fatalf("position %d: pull %v != getter %v", i, out.Pos[i], pos[i])
		}
		if math.Float64bits(out.Mass[i]) != math.Float64bits(b[i]) {
			t.Fatalf("mass %d: pull %v != getter %v", i, out.Mass[i], b[i])
		}
	}
}

// TestReplacementReplaysPushedState: columns pushed through the batched
// set_state path must survive a transparent worker replacement — the
// replay cache is refreshed on bulk writes, not only on set_particles.
func TestReplacementReplaysPushedState(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-cpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	stars := ic.Plummer(16, 21)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	masses := make([]float64, stars.Len())
	for i := range masses {
		masses[i] = 0.5 + float64(i)
	}
	if err := g.SetState(context.Background(), kernel.NewState(len(masses)).AddFloat(data.AttrMass, masses)); err != nil {
		t.Fatal(err)
	}

	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	tb.Daemon.KillWorker(g.worker)
	<-died

	got := g.Masses() // triggers replacement + state replay
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range masses {
		if got[i] != masses[i] {
			t.Fatalf("mass %d after replacement: %v, want pushed %v", i, got[i], masses[i])
		}
	}
}

// TestExternalKindRunsUnmodifiedCore: the analytic background-field kind
// registers from internal/phys/analytic — a package core does not know —
// and serves calls across the full ibis channel stack through the generic
// Model handle.
func TestExternalKindRunsUnmodifiedCore(t *testing.T) {
	_, sim := labSim(t)
	pot := analytic.Plummer{M: 2, A: 0.5}
	m, err := sim.NewModel(context.Background(), Kind(analytic.Kind), WorkerSpec{Resource: "das4-uva", Channel: ChannelIbis},
		analytic.SetupArgs{M: pot.M, A: pot.A})
	if err != nil {
		t.Fatal(err)
	}
	field := analytic.NewRemote(m)
	targets := []data.Vec3{{1, 0, 0}, {0, 2, 0}, {0.3, -0.4, 0.5}}
	acc, p, _ := field.FieldAt(context.Background(), nil, nil, targets, 0)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}

	wantAcc := make([]data.Vec3, len(targets))
	wantPot := make([]float64, len(targets))
	pot.FieldAt(targets, wantAcc, wantPot)
	for i := range targets {
		if acc[i] != wantAcc[i] || p[i] != wantPot[i] {
			t.Fatalf("target %d: remote (%v, %v) != analytic (%v, %v)", i, acc[i], p[i], wantAcc[i], wantPot[i])
		}
	}
	if sim.Elapsed() <= 0 {
		t.Fatal("virtual clock did not advance for remote analytic worker")
	}
}
