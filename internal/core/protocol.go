// Package core implements the paper's contribution: Distributed AMUSE.
// A Python-style coupler script (here: the Simulation API) talks through a
// local daemon to workers started on remote resources via IbisDeploy and
// JavaGAT; wide-area RPC travels over IPL/SmartSockets to a proxy process
// that forwards requests to the worker over a loopback connection — the
// exact architecture of Fig. 5. Virtual clocks account compute and
// communication time end to end.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
)

// Errors.
var (
	ErrWorkerDied    = errors.New("core: worker died")
	ErrNoSuchMethod  = errors.New("core: no such method")
	ErrBadKind       = errors.New("core: unknown worker kind")
	ErrChannelClosed = errors.New("core: channel closed")
)

// Kind is the model type a worker hosts (Fig. 3's model boxes).
type Kind string

// Worker kinds.
const (
	KindGravity Kind = "gravity"  // PhiGRAPE equivalent
	KindHydro   Kind = "hydro"    // Gadget equivalent
	KindStellar Kind = "stellar"  // SSE equivalent
	KindField   Kind = "coupling" // Octgrav / Fi equivalent
)

// request is one RPC over any channel.
type request struct {
	ID uint64
	// Worker routes the request at the daemon (ibis channel only).
	Worker int
	Method string
	Args   []byte
	// SentAt is the caller's virtual clock at send time.
	SentAt time.Duration
}

// response answers one request.
type response struct {
	ID     uint64
	Result []byte
	Err    string
	// DoneAt is the worker's virtual clock when the call finished
	// (arrival + compute); the reply's network arrival is added on top by
	// the transport.
	DoneAt time.Duration
}

func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: encode %T: %v", v, err)) // all protocol types are gob-safe
	}
	return buf.Bytes()
}

func decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Typed argument/result payloads. One struct per method keeps the wire
// format explicit and versionable.

type setupGravityArgs struct {
	Kernel string // "phigrape-cpu" | "phigrape-gpu"
	Eps    float64
	Eta    float64
}

type setupHydroArgs struct {
	SelfGravity bool
	EpsGrav     float64
	NTarget     int
}

type setupStellarArgs struct {
	MassesMSun   []float64
	MyrPerTime   float64
	NBodyPerMSun float64
}

type setupFieldArgs struct {
	Kernel string // "octgrav" | "fi"
	Theta  float64
	Eps    float64
}

type particlesPayload struct {
	Mass []float64
	Pos  []data.Vec3
	Vel  []data.Vec3
	U    []float64 // internal energy (hydro only)
	H    []float64 // smoothing length (hydro only)
	Key  []uint64
}

func particlesToPayload(p *data.Particles) particlesPayload {
	return particlesPayload{
		Mass: append([]float64(nil), p.Mass...),
		Pos:  append([]data.Vec3(nil), p.Pos...),
		Vel:  append([]data.Vec3(nil), p.Vel...),
		U:    append([]float64(nil), p.InternalEnergy...),
		H:    append([]float64(nil), p.SmoothingLen...),
		Key:  append([]uint64(nil), p.Key...),
	}
}

func payloadToParticles(pl particlesPayload) *data.Particles {
	p := data.NewParticles(len(pl.Mass))
	copy(p.Mass, pl.Mass)
	copy(p.Pos, pl.Pos)
	copy(p.Vel, pl.Vel)
	if len(pl.U) == len(pl.Mass) {
		copy(p.InternalEnergy, pl.U)
	}
	if len(pl.H) == len(pl.Mass) {
		copy(p.SmoothingLen, pl.H)
	}
	if len(pl.Key) == len(pl.Mass) {
		copy(p.Key, pl.Key)
	}
	return p
}

type evolveArgs struct {
	T float64
}

type kickArgs struct {
	DV []data.Vec3
}

type setMassArgs struct {
	Index int
	Mass  float64
}

type injectArgs struct {
	Center data.Vec3
	Radius float64
	E      float64
}

type fieldAtArgs struct {
	SrcMass []float64
	SrcPos  []data.Vec3
	Targets []data.Vec3
}

type fieldAtResult struct {
	Acc []data.Vec3
	Pot []float64
}

type vecResult struct {
	V []data.Vec3
}

type floatsResult struct {
	X []float64
}

type energiesResult struct {
	Kinetic   float64
	Potential float64
	Thermal   float64
}

type stellarEvolveResult struct {
	Events []stellarEventPayload
}

type stellarEventPayload struct {
	Index    int
	MassLoss float64
	SN       bool
}

type statsResult struct {
	N     int
	Time  float64
	Steps int
	Flops float64
}

type empty struct{}
