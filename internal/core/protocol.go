// Package core implements the paper's contribution: Distributed AMUSE.
// A Python-style coupler script (here: the Simulation API) talks through a
// local daemon to workers started on remote resources via IbisDeploy and
// JavaGAT; wide-area RPC travels over IPL/SmartSockets to a proxy process
// that forwards requests to the worker over a loopback connection — the
// exact architecture of Fig. 5. Virtual clocks account compute and
// communication time end to end.
//
// The coupler surface is asynchronous and context-aware: every RPC is a
// *Call future (Model.Go and the Go* methods; Gather fans pipelined
// calls back in), and the session context bounds every wait. Two data
// paths exist beside the RPC plane: bulk columns move worker-to-worker
// over each ibis worker's peer listener (Simulation.TransferState and
// the staged field path, with transparent hairpin fallback), and a
// kernel may be deployed as a gang of K rank workers
// (WorkerSpec.Workers) that domain-decompose one model instance behind a
// single handle, exchanging halos over those same peer links. The bulk
// plane is bandwidth-aware on request (all off by default):
// Simulation.TransferStripes stripes large payloads across parallel peer
// streams, and TransferCodec/CheckpointCodec compress the columnar
// frames (delta+flate for transfers, ref-delta against the previous
// checkpoint for blobs); failed striped attempts retry single-stream,
// then hairpin, each counted in TransferStats.
//
// The session is checkpointable: Simulation.Checkpoint snapshots every
// model at a FIFO-drained consistency point into a self-contained
// Manifest (blobs stream worker-to-daemon over the peer plane), worker
// replacement restores the newest snapshot — making gang ranks
// recoverable — and ResumeSimulation rebuilds a whole session from a
// saved manifest bit-compatibly.
//
// Gangs are elastic (default off): EnableRebalance arms a skew-driven
// rebalancer that samples per-rank compute time (the rank_load dispatch
// method) and reshards slab boundaries (reshard) toward
// throughput-proportional widths with bit-identical results; Migrate
// moves a whole gang to another resource live via checkpoint/restore,
// and Resize grows or shrinks the rank count mid-run. The skew gauge
// and rebalancer actions are visible in trace.Recorder.RenderGangs.
//
// The wire protocol — request/response framing, typed payloads, the
// batched columnar state codec, transfer and gang-link frames, and the
// registry that maps worker kinds to their model services — lives in
// internal/core/kernel. Physics packages register their services there;
// this package never constructs a model directly (import
// internal/kernels, or the adapter packages you need, to link the kinds
// into the binary).
package core

import (
	"errors"

	"jungle/internal/core/kernel"
)

// Errors. The wire taxonomy sentinels are the kernel package's: any error
// a worker, channel or the daemon produces crosses the codec as a
// structured code and unwraps to exactly one of these with errors.Is —
// see kernel.Code and kernel.WireError.
var (
	ErrWorkerDied    = kernel.ErrWorkerDied
	ErrNoSuchMethod  = kernel.ErrNoSuchMethod
	ErrBadMethod     = kernel.ErrBadMethod
	ErrBadKind       = kernel.ErrBadKind
	ErrWorkerFault   = kernel.ErrWorkerFault
	ErrTransport     = kernel.ErrTransport
	ErrBusy          = kernel.ErrBusy
	ErrChannelClosed = errors.New("core: channel closed")
)

// Session control-plane operations. These ride the same Request/Response
// frames as worker RPC but are served by the jungled gateway itself (the
// multi-tenant control plane in internal/sched), not by a worker channel:
// a thin client attaches to a session, keeps its lease alive with
// heartbeats, submits work, and detaches. Admission rejections come back
// as CodeBusy responses whose payload is a SessionBusy with the
// structured retry-after hint.
const (
	MethodSessionAttach    = "session_attach"
	MethodSessionHeartbeat = "session_heartbeat"
	MethodSessionRun       = "session_run"
	MethodSessionStatus    = "session_status"
	MethodSessionDetach    = "session_detach"
)

// SessionAttachArgs asks the control plane to admit (or re-attach to) a
// session. Wait queues the attach until capacity frees instead of
// rejecting with CodeBusy.
type SessionAttachArgs struct {
	Session string
	Wait    bool
}

// SessionAttachReply reports the admitted session's state.
type SessionAttachReply struct {
	Session string
	State   string
	Resumed bool // true when the session was revived from its checkpoint
}

// SessionHeartbeatArgs renews a session's lease.
type SessionHeartbeatArgs struct{ Session string }

// SessionHeartbeatReply acknowledges a lease renewal.
type SessionHeartbeatReply struct{ State string }

// SessionRunArgs submits one unit of work to a session. Payload is opaque
// to the protocol — the control plane's configured run handler interprets
// it (jungled: a gob-encoded experiment workload).
type SessionRunArgs struct {
	Session string
	Payload []byte
}

// SessionRunReply carries the run handler's opaque result.
type SessionRunReply struct{ Payload []byte }

// SessionStatusArgs asks for one session's control-plane view.
type SessionStatusArgs struct{ Session string }

// SessionStatusReply is the control-plane view of a session.
type SessionStatusReply struct {
	State   string
	Workers int
	Live    int // sessions currently running on the plane
	Queued  int // sessions waiting for admission
}

// SessionDetachArgs detaches a client; Close also ends the session and
// releases its capacity.
type SessionDetachArgs struct {
	Session string
	Close   bool
}

// SessionDetachReply reports the state the session was left in.
type SessionDetachReply struct{ State string }

// SessionBusy is the payload of a CodeBusy response: the structured
// retry-after hint admission control returns when the plane is full.
type SessionBusy struct {
	RetryAfterMs int64
	Queued       int
}

// Kind is the model type a worker hosts (Fig. 3's model boxes). The
// constants below name the four kinds the paper's evaluation uses; any
// kind registered with the kernel registry is equally valid.
type Kind string

// Worker kinds.
const (
	KindGravity Kind = "gravity"  // PhiGRAPE equivalent
	KindHydro   Kind = "hydro"    // Gadget equivalent
	KindStellar Kind = "stellar"  // SSE equivalent
	KindField   Kind = "coupling" // Octgrav / Fi equivalent
)

// request/response are the RPC frames moved by every channel; the framing
// codec is hand-rolled in the kernel package (no per-call gob encoders on
// the hot path).
type (
	request  = kernel.Request
	response = kernel.Response
)

func encode(v any) []byte          { return kernel.Encode(v) }
func decode(b []byte, v any) error { return kernel.Decode(b, v) }
