package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core/kernel"
)

// TestPipelinedCallsPreserveOrder: calls issued back to back on one ibis
// channel must reach the worker in issue order, so a batched pull
// pipelined behind a kick observes the kicked velocities — the FIFO
// guarantee the async Pull/Push/Sync idiom depends on.
func TestPipelinedCallsPreserveOrder(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(32, 11)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	dv := make([]data.Vec3, stars.Len())
	for i := range dv {
		dv[i] = data.Vec3{0.5, 0, 0}
	}
	before := append([]data.Vec3(nil), stars.Vel...)

	out := stars.Clone()
	kick := g.GoKick(dv)
	pull := g.GoPull(out)
	if err := Gather(context.Background(), kick, pull); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		want := before[i].Add(dv[i])
		if out.Vel[i] != want {
			t.Fatalf("particle %d: pipelined pull saw %v, want post-kick %v", i, out.Vel[i], want)
		}
	}
}

// TestGatherJoinsErrors: Gather must wait for every call and join the
// failures, each still unwrapping to its taxonomy sentinel.
func TestGatherJoinsErrors(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 12)); err != nil {
		t.Fatal(err)
	}
	good := g.Go("stats", kernel.Empty{})
	bad := g.Go("no_such_method", kernel.Empty{})
	err = Gather(context.Background(), good, bad)
	if err == nil {
		t.Fatal("Gather ignored a failed call")
	}
	if !errors.Is(err, ErrNoSuchMethod) || !errors.Is(err, ErrBadMethod) {
		t.Fatalf("joined error %v does not unwrap to ErrBadMethod", err)
	}
	if good.Err() != nil {
		t.Fatalf("good call failed: %v", good.Err())
	}
}

// TestWireErrorCodesOverIbisChannel: worker-side errors must cross the
// full Fig. 5 path (coupler → daemon → IPL → proxy → worker and back)
// as structured codes that unwrap with errors.Is — no string matching.
func TestWireErrorCodesOverIbisChannel(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(8, 13)); err != nil {
		t.Fatal(err)
	}
	// Unknown method → ErrBadMethod (not a worker fault).
	err = g.Call(nil, "definitely_not_a_method", kernel.Empty{}, nil)
	if !errors.Is(err, ErrBadMethod) {
		t.Fatalf("unknown method: %v, want ErrBadMethod", err)
	}
	if errors.Is(err, ErrWorkerFault) || errors.Is(err, ErrWorkerDied) {
		t.Fatalf("unknown method misclassified: %v", err)
	}
	// Model-level failure (index out of range) → ErrWorkerFault.
	err = g.Call(nil, "set_mass", kernel.SetMassArgs{Index: 999, Mass: 1}, &kernel.Empty{})
	if !errors.Is(err, ErrWorkerFault) {
		t.Fatalf("bad set_mass: %v, want ErrWorkerFault", err)
	}
	// The worker survives both failures.
	if err := g.Call(nil, "stats", kernel.Empty{}, &kernel.StatsResult{}); err != nil {
		t.Fatalf("worker unusable after structured errors: %v", err)
	}
}

// TestCancelAbandonsWaitNotWorker: a context error must abort Call.Wait
// promptly while the RPC stays in flight; the call remains collectable
// and the worker and channel stay fully usable afterwards.
func TestCancelAbandonsWaitNotWorker(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(256, 14)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the wait must not block at all

	c := g.Go("evolve", kernel.EvolveArgs{T: 1.0 / 16})
	waited := time.Now()
	err = c.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Wait = %v, want context.Canceled", err)
	}
	if d := time.Since(waited); d > 2*time.Second {
		t.Fatalf("canceled Wait blocked for %v", d)
	}
	// The call is still in flight (or completing) — collect it for real.
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("abandoned call failed: %v", err)
	}
	// Worker and channel are in a recoverable state: new calls work and
	// observe the evolve that kept running through the cancellation.
	var stats kernel.StatsResult
	if err := g.Call(nil, "stats", kernel.Empty{}, &stats); err != nil {
		t.Fatalf("worker unusable after cancellation: %v", err)
	}
	if stats.Time <= 0 {
		t.Fatalf("evolve did not run to completion after abandoned wait (t=%v)", stats.Time)
	}
}

// TestUndecodableResponseFailsChannel: a response frame the codec cannot
// parse must fail the pending call (and the channel) with a transport
// fault instead of silently dropping the frame and leaking the waiter —
// the regression the old readLoop had.
func TestUndecodableResponseFailsChannel(t *testing.T) {
	tb, _ := labSim(t)
	const port = 29999
	l, err := tb.Net.Listen("desktop", port)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			// Reply with garbage that is not a response frame.
			conn.Send([]byte{0xde, 0xad, 0xbe, 0xef}, msg.Arrival)
		}
	}()
	conn, err := tb.Net.Dial("desktop", "desktop", port)
	if err != nil {
		t.Fatal(err)
	}
	ch := newConnChannel("test", conn, nil)
	defer ch.close()

	done := make(chan error, 1)
	ch.start(request{ID: reqIDs.Add(1), Method: "ping"}, func(_ response, _ time.Duration, err error) {
		done <- err
	})
	select {
	case err := <-done:
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("pending call failed with %v, want ErrTransport", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call leaked: no completion after undecodable frame")
	}
	// The channel is dead, and says so immediately for new calls.
	second := make(chan error, 1)
	ch.start(request{ID: reqIDs.Add(1), Method: "ping"}, func(_ response, _ time.Duration, err error) {
		second <- err
	})
	select {
	case err := <-second:
		if err == nil {
			t.Fatal("dead channel accepted a new call")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead channel did not fail a new call")
	}
}

// TestConcurrentCallsOneChannel hammers a single ibis channel from many
// goroutines — the -race run over this test is the concurrency gate for
// the pending-map, clock and sticky-error paths.
func TestConcurrentCallsOneChannel(t *testing.T) {
	_, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(64, 15)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const callsPer = 16
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				switch i % 3 {
				case 0:
					var out kernel.StatsResult
					if err := g.Call(nil, "stats", kernel.Empty{}, &out); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := g.GetState(nil, data.AttrPos); err != nil {
						errCh <- err
						return
					}
				default:
					if err := Gather(nil, g.Go("stats", kernel.Empty{})); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReplacementPreservesPipelineOrder: when pipelined calls die with
// the worker, the single replacement must re-issue them in original
// issue order — a pull retried ahead of the kick it was queued behind
// would silently observe pre-kick state.
func TestReplacementPreservesPipelineOrder(t *testing.T) {
	tb, sim := labSim(t)
	g, err := sim.NewGravity(context.Background(), WorkerSpec{Channel: ChannelIbis},
		GravityOptions{Kernel: "phigrape-cpu", Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableReplacement()
	stars := ic.Plummer(16, 22)
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	died := make(chan int, 1)
	tb.Daemon.OnWorkerDied = func(id int) { died <- id }
	tb.Daemon.KillWorker(g.worker)
	select {
	case <-died:
	case <-time.After(10 * time.Second):
		t.Fatal("death not detected")
	}
	// Pipeline a kick and a pull against the dead worker: both fail with
	// CodeWorkerDied, both retry on the one replacement, in issue order.
	dv := make([]data.Vec3, stars.Len())
	for i := range dv {
		dv[i] = data.Vec3{0.25, 0, 0}
	}
	out := stars.Clone()
	kick := g.GoKick(dv)
	pull := g.GoPull(out)
	if err := Gather(context.Background(), kick, pull); err != nil {
		t.Fatalf("pipelined retry: %v", err)
	}
	// The replacement replayed the uploaded state, so the pull must see
	// exactly the replayed velocities plus the kick.
	for i := range dv {
		want := stars.Vel[i].Add(dv[i])
		if out.Vel[i] != want {
			t.Fatalf("particle %d: retried pull saw %v, want post-kick %v (pre-kick %v)",
				i, out.Vel[i], want, stars.Vel[i])
		}
	}
}

// TestStopShutsDownConcurrently: Stop must tear all models down in
// parallel and leave the daemon reusable for the next simulation.
func TestStopShutsDownConcurrently(t *testing.T) {
	tb, sim := labSim(t)
	for _, r := range []string{"lgm", "das4-uva", "das4-tud"} {
		g, err := sim.NewGravity(context.Background(), WorkerSpec{Resource: r, Channel: ChannelIbis},
			GravityOptions{Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetParticles(ic.Plummer(8, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Stop(); err != nil {
		t.Fatalf("concurrent stop: %v", err)
	}
	// The daemon survives: a fresh session can start a worker.
	sim2 := NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim2.Stop()
	g, err := sim2.NewGravity(context.Background(), WorkerSpec{Resource: "lgm", Channel: ChannelIbis},
		GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatalf("daemon unusable after Stop: %v", err)
	}
	if err := g.SetParticles(ic.Plummer(8, 17)); err != nil {
		t.Fatal(err)
	}
}
