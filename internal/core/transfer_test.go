package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/phys/bridge"
)

// dslSim builds the DSL testbed (slow coupler uplink, two fast remote
// sites) with a running session.
func dslSim(t *testing.T) (*Testbed, *Simulation) {
	t.Helper()
	tb, err := NewDSLTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	sim := NewSimulation(context.Background(), tb.Daemon, nil)
	t.Cleanup(func() { sim.Stop() })
	return tb, sim
}

// transferPair starts two remote gravity workers on separate sites and
// uploads stars to the source one.
func transferPair(t *testing.T, sim *Simulation, stars *data.Particles) (src, dst *Gravity) {
	t.Helper()
	var err error
	src, err = sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-a", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	dst, err = sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// The destination needs a same-sized set for set_state to land in.
	if err := dst.SetParticles(ic.Plummer(stars.Len(), 99)); err != nil {
		t.Fatal(err)
	}
	return src, dst
}

// assertStateMatches pulls both workers' state and compares columns.
func assertStateMatches(t *testing.T, src, dst *Gravity, n int) {
	t.Helper()
	want, err := src.GetState(nil, data.AttrMass, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.GetState(nil, data.AttrMass, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	if want.N != n || got.N != n {
		t.Fatalf("state sizes: src %d dst %d, want %d", want.N, got.N, n)
	}
	for i := 0; i < n; i++ {
		if want.Float(data.AttrMass)[i] != got.Float(data.AttrMass)[i] {
			t.Fatalf("mass[%d]: src %v dst %v", i, want.Float(data.AttrMass)[i], got.Float(data.AttrMass)[i])
		}
		if want.Vec(data.AttrPos)[i] != got.Vec(data.AttrPos)[i] {
			t.Fatalf("pos[%d]: src %v dst %v", i, want.Vec(data.AttrPos)[i], got.Vec(data.AttrPos)[i])
		}
		if want.Vec(data.AttrVel)[i] != got.Vec(data.AttrVel)[i] {
			t.Fatalf("vel[%d]: src %v dst %v", i, want.Vec(data.AttrVel)[i], got.Vec(data.AttrVel)[i])
		}
	}
}

// TestTransferStateDirect moves columns worker-to-worker and checks the
// bytes never crossed the coupler's uplink.
func TestTransferStateDirect(t *testing.T) {
	tb, sim := dslSim(t)
	const n = 256
	src, dst := transferPair(t, sim, ic.Plummer(n, 7))

	homeBefore := couplerBytes(tb)
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	homeDuring := couplerBytes(tb) - homeBefore

	st := sim.TransferStats()
	if st.Direct != 1 || st.Fallback != 0 || st.Hairpin != 0 {
		t.Fatalf("transfer stats %+v, want exactly one direct", st)
	}
	// The column payload is ~56 bytes/particle; the coupler's links must
	// have carried only control traffic while the peer class carried the
	// bulk.
	payload := n * 56
	if homeDuring > payload/2 {
		t.Fatalf("coupler uplink carried %d bytes during a direct transfer (payload %d)", homeDuring, payload)
	}
	if peer := tb.Recorder.TotalByClass()["peer"]; peer < payload {
		t.Fatalf("peer class carried %d bytes, want >= %d", peer, payload)
	}
	assertStateMatches(t, src, dst, n)
}

// couplerBytes sums recorded traffic with an endpoint on the coupler's
// machine.
func couplerBytes(tb *Testbed) int {
	var total int
	for _, row := range tb.Recorder.TrafficTable() {
		if row.From == tb.Client || row.To == tb.Client {
			total += row.Bytes
		}
	}
	return total
}

// TestTransferStateDirectBeatsHairpin is the acceptance bar: on the DSL
// topology the direct path must model at least 1.5x less virtual time
// per transfer than the Pull/Push hairpin (it models far more).
func TestTransferStateDirectBeatsHairpin(t *testing.T) {
	_, sim := dslSim(t)
	const n = 1000
	src, dst := transferPair(t, sim, ic.Plummer(n, 11))

	start := sim.Elapsed()
	if err := sim.TransferState(context.Background(), src, dst); err != nil {
		t.Fatal(err)
	}
	direct := sim.Elapsed() - start

	// The hairpin the direct path replaces: pull to the coupler, push out.
	start = sim.Elapsed()
	st, err := src.GetState(nil, data.AttrMass, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SetState(nil, st); err != nil {
		t.Fatal(err)
	}
	hairpin := sim.Elapsed() - start

	if float64(hairpin) < 1.5*float64(direct) {
		t.Fatalf("direct transfer %v vs hairpin %v: want >= 1.5x win", direct, hairpin)
	}
	t.Logf("modelled per-transfer time: direct %v, hairpin %v (%.1fx)",
		direct, hairpin, float64(hairpin)/float64(direct))
}

// TestTransferStateHairpinForLocalWorkers: a worker without a peer plane
// (mpi channel) transfers through the coupler transparently.
func TestTransferStateHairpinForLocalWorkers(t *testing.T) {
	_, sim := dslSim(t)
	const n = 64
	local, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "home", Channel: ChannelMPI}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stars := ic.Plummer(n, 3)
	if err := local.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	remote, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.SetParticles(ic.Plummer(n, 4)); err != nil {
		t.Fatal(err)
	}
	if err := sim.TransferState(context.Background(), local, remote); err != nil {
		t.Fatal(err)
	}
	if st := sim.TransferStats(); st.Hairpin != 1 || st.Direct != 0 {
		t.Fatalf("transfer stats %+v, want one hairpin", st)
	}
	got, err := remote.GetState(nil, data.AttrMass)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range got.Float(data.AttrMass) {
		if m != stars.Mass[i] {
			t.Fatalf("mass[%d] = %v, want %v", i, m, stars.Mass[i])
		}
	}
}

// TestTransferFaultFallsBackToHairpin is the fault-injection satellite:
// the peer stream dies mid-transfer, the coupler observes a structured
// transport-class error (no hang), falls back to the hairpin, and the
// transfer still completes with correct state.
func TestTransferFaultFallsBackToHairpin(t *testing.T) {
	oldTimeout := PeerAcceptTimeout
	PeerAcceptTimeout = 500 * time.Millisecond
	testPeerStreamFault = func() bool { return true }
	t.Cleanup(func() {
		PeerAcceptTimeout = oldTimeout
		testPeerStreamFault = nil
	})

	_, sim := dslSim(t)
	var classified []error
	sim.OnTransferFallback = func(err error) { classified = append(classified, err) }

	const n = 128
	src, dst := transferPair(t, sim, ic.Plummer(n, 5))

	done := make(chan error, 1)
	go func() { done <- sim.TransferState(context.Background(), src, dst) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("transfer did not complete over the fallback: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer hung after mid-stream fault")
	}

	if len(classified) != 1 {
		t.Fatalf("fallback hook fired %d times, want 1", len(classified))
	}
	if !errors.Is(classified[0], ErrTransport) && !errors.Is(classified[0], ErrWorkerDied) {
		t.Fatalf("direct-path error %v not classified as ErrTransport/ErrWorkerDied", classified[0])
	}
	if st := sim.TransferStats(); st.Fallback != 1 {
		t.Fatalf("transfer stats %+v, want one fallback", st)
	}
	assertStateMatches(t, src, dst, n)
}

// TestBridgeStepCompletesUnderTransferFault drives a full coupled bridge
// step with the stream fault injected: every staged exchange falls back
// and the step still completes.
func TestBridgeStepCompletesUnderTransferFault(t *testing.T) {
	oldTimeout := PeerAcceptTimeout
	PeerAcceptTimeout = 500 * time.Millisecond
	testPeerStreamFault = func() bool { return true }
	t.Cleanup(func() {
		PeerAcceptTimeout = oldTimeout
		testPeerStreamFault = nil
	})

	_, sim := dslSim(t)
	br := coupledBridge(t, sim)
	done := make(chan error, 1)
	go func() { done <- br.Step(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bridge step under fault: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("bridge step hung under transfer fault")
	}
	if st := sim.TransferStats(); st.Fallback == 0 {
		t.Fatalf("transfer stats %+v: fault injected but nothing fell back", st)
	}
}

// TestBridgeStepUsesDirectPlane: the same coupled step on a healthy
// network moves its field inputs worker-to-worker.
func TestBridgeStepUsesDirectPlane(t *testing.T) {
	_, sim := dslSim(t)
	br := coupledBridge(t, sim)
	if err := br.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sim.TransferStats()
	// Two kick phases x two directions x two staged inputs = 8 transfers.
	if st.Direct == 0 || st.Fallback != 0 || st.Hairpin != 0 {
		t.Fatalf("transfer stats %+v, want all-direct staging", st)
	}
}

// coupledBridge assembles a small stars+gas+field system on the two DSL
// sites (stellar omitted: the transfer plane does not touch it).
func coupledBridge(t *testing.T, sim *Simulation) *bridge.Bridge {
	t.Helper()
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 12, Gas: 40, GasFrac: 0.6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-a", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHydro(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, HydroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	f, err := sim.NewField(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, FieldOptions{Kernel: "octgrav", Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	br, err := bridge.New(bridge.Config{
		Stars: g, Gas: h, Coupler: f, DT: 1.0 / 64, Eps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return br
}

// TestRemoteChannelCopy mirrors the data.Channel contract for
// worker-resident sets, including the attribute-error naming guarantee.
func TestRemoteChannelCopy(t *testing.T) {
	_, sim := dslSim(t)
	const n = 32
	src, dst := transferPair(t, sim, ic.Plummer(n, 21))

	ch := sim.NewRemoteChannel(context.Background(), src, dst)
	if err := ch.Copy(); err != nil {
		t.Fatal(err)
	}
	assertStateMatches(t, src, dst, n)

	// An attribute the destination kind cannot apply: the error must name
	// it (satellite: Channel.Copy attribute-missing diagnosability, remote
	// flavor). "u" is readable from hydro but gravity has no such column —
	// here neither side is a hydro, so the source read already names it.
	err := ch.Copy(data.AttrInternalEnergy)
	if err == nil {
		t.Fatal("copy of unsupported attribute succeeded")
	}
	if !strings.Contains(err.Error(), data.AttrInternalEnergy) {
		t.Fatalf("error %q does not name attribute %q", err, data.AttrInternalEnergy)
	}
}

// TestRemoteChannelDestinationMissingAttr: the source offers the column,
// the destination kind cannot apply it; the failure names the attribute.
func TestRemoteChannelDestinationMissingAttr(t *testing.T) {
	_, sim := dslSim(t)
	const n = 24
	_, gasSet, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1, Gas: n, GasFrac: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHydro(context.Background(),
		WorkerSpec{Resource: "site-a", Channel: ChannelIbis}, HydroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gasSet); err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(gasSet.Len(), 9)); err != nil {
		t.Fatal(err)
	}
	// Internal energy is readable from the hydro worker but the gravity
	// kind has nowhere to put it.
	err = sim.NewRemoteChannel(context.Background(), h, g).Copy(data.AttrInternalEnergy)
	if err == nil {
		t.Fatal("copy of attribute absent from destination succeeded")
	}
	if !strings.Contains(err.Error(), data.AttrInternalEnergy) {
		t.Fatalf("error %q does not name attribute %q", err, data.AttrInternalEnergy)
	}
}

// TestTransferStateSelf: src == dst must not take the peer plane (the
// worker's single-threaded relay loop would deadlock its own accept
// against its offer until the timeout); it completes promptly over the
// hairpin.
func TestTransferStateSelf(t *testing.T) {
	_, sim := dslSim(t)
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-a", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 31)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sim.TransferState(ctx, g, g); err != nil {
		t.Fatalf("self transfer: %v", err)
	}
	if st := sim.TransferStats(); st.Hairpin != 1 || st.Direct != 0 {
		t.Fatalf("transfer stats %+v, want one hairpin", st)
	}
}

// TestFailedOfferUnblocksAccept: when the source cannot serve the
// requested columns (a worker fault, not a transport fault), the daemon
// aborts the pending accept so the destination's relay loop — and every
// RPC queued behind it — is not held for the accept timeout.
func TestFailedOfferUnblocksAccept(t *testing.T) {
	_, sim := dslSim(t)
	const n = 16
	src, dst := transferPair(t, sim, ic.Plummer(n, 33))

	// Gravity workers have no "u" column: the offer's get_state fails.
	err := sim.TransferState(context.Background(), src, dst, data.AttrInternalEnergy)
	if err == nil || !strings.Contains(err.Error(), data.AttrInternalEnergy) {
		t.Fatalf("transfer of unsupported attribute: %v", err)
	}
	// The destination must answer new RPCs well before PeerAcceptTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := dst.GetState(ctx, data.AttrMass); err != nil {
		t.Fatalf("destination relay loop still blocked after failed offer: %v", err)
	}
}

// TestDirectFieldMatchesSampledField: the staged evaluation must be
// bit-identical to the sampled FieldAt path (same kernel, same inputs).
func TestDirectFieldMatchesSampledField(t *testing.T) {
	_, sim := dslSim(t)
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 10, Gas: 30, GasFrac: 0.6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGravity(context.Background(),
		WorkerSpec{Resource: "site-a", Channel: ChannelIbis}, GravityOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParticles(stars); err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHydro(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, HydroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	f, err := sim.NewField(context.Background(),
		WorkerSpec{Resource: "site-b", Channel: ChannelIbis}, FieldOptions{Kernel: "octgrav", Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	accDirect, _, _, err := f.GoFieldDirect(h, g).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	accSampled, _, _, err := f.GoFieldAt(h.Masses(), h.Positions(), g.Positions(), 0).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(accDirect) != len(accSampled) {
		t.Fatalf("lengths %d vs %d", len(accDirect), len(accSampled))
	}
	for i := range accDirect {
		for k := 0; k < 3; k++ {
			if math.Abs(accDirect[i][k]-accSampled[i][k]) > 0 {
				t.Fatalf("acc[%d][%d]: direct %v sampled %v", i, k, accDirect[i][k], accSampled[i][k])
			}
		}
	}
}
