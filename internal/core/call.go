package core

import (
	"context"
	"errors"
	"sync"

	"jungle/internal/phys/bridge"
)

// Waiter is the minimal future interface — an alias of bridge.Waiter, so
// the coupler's calls plug straight into the bridge's pipelined
// integrator and Gather accepts both *Call and any other pending
// operation a model handle returns.
type Waiter = bridge.Waiter

// ErrInFlight is returned by Call.Err and Call.Decode while the call has
// not completed yet.
var ErrInFlight = errors.New("core: call still in flight")

// Call is one in-flight RPC against a worker — the future returned by
// Model.Go and the Go* methods on every model handle. The call is issued
// (put on the channel, and for remote workers on the wide-area link)
// before Go returns; Wait only collects the outcome. Issuing many calls
// before waiting on any is how the coupler overlaps communication with
// communication: N calls over one slow link cost about one round trip,
// not N.
//
// A Call is safe for concurrent use. Abandoning a Call (cancelling every
// Wait, or never waiting) does not disturb the worker or the channel: the
// response is still received, accounted on the virtual clock, and
// discarded.
type Call struct {
	kind   Kind
	method string
	// seq is the issue-order sequence number on the owning proxy; used to
	// restore FIFO order when replacement retries re-issue failed calls.
	seq uint64

	done chan struct{}
	// result and err are written exactly once, before done is closed;
	// closing the channel publishes them.
	result []byte
	err    error

	finishOnce sync.Once
	// after post-processes the raw result (decode, scatter into a
	// particle set) the first time the outcome is observed.
	after     func([]byte) error
	afterOnce sync.Once
	// release frees resources pinned for the call's lifetime (pooled args
	// buffers, which must survive replacement retries); runs at finish.
	release func()
	// success runs at finish on a successful outcome, even if the call is
	// never observed — proxy-side bookkeeping (replacement-cache merges)
	// that must not depend on the caller waiting. It must not block.
	success func([]byte)
}

func newCall(kind Kind, method string, after func([]byte) error) *Call {
	return &Call{kind: kind, method: method, done: make(chan struct{}), after: after}
}

// failedCall returns an already-completed Call carrying err (used when a
// call cannot even be issued).
func failedCall(kind Kind, method string, err error) *Call {
	c := newCall(kind, method, nil)
	c.finish(nil, err)
	return c
}

// finish completes the call exactly once.
func (c *Call) finish(result []byte, err error) {
	c.finishOnce.Do(func() {
		if c.release != nil {
			c.release()
		}
		if err == nil && c.success != nil {
			c.success(result)
		}
		c.result, c.err = result, err
		close(c.done)
	})
}

// outcome runs the post-processing hook (once) and returns the final
// error. Only valid after done is closed.
func (c *Call) outcome() error {
	c.afterOnce.Do(func() {
		if c.err == nil && c.after != nil {
			c.err = c.after(c.result)
		}
	})
	return c.err
}

// Method returns the RPC method this call performs.
func (c *Call) Method() string { return c.method }

// Done returns a channel closed when the call completes. Select on it to
// multiplex calls by hand; Wait and Gather cover the common cases.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks until the call completes or ctx is done, and returns the
// call's error (nil on success). A context error abandons only this wait:
// the RPC stays in flight, a later Wait can still collect it, and the
// worker and channel remain fully usable — cancellation never poisons the
// session.
func (c *Call) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return c.outcome()
	default:
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-c.done:
		return c.outcome()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the completed call's error, or ErrInFlight if the call has
// not finished yet. It never blocks.
func (c *Call) Err() error {
	select {
	case <-c.done:
		return c.outcome()
	default:
		return ErrInFlight
	}
}

// Decode decodes the completed call's result into reply (which must be a
// pointer to a gob-decodable value). It returns ErrInFlight before
// completion and the call's error after a failure.
func (c *Call) Decode(reply any) error {
	select {
	case <-c.done:
	default:
		return ErrInFlight
	}
	if err := c.outcome(); err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return decode(c.result, reply)
}

// Gather waits for every call (fan-in for pipelined fan-out) and joins
// their errors. All calls are already in flight when Gather starts, so
// the total wait is the slowest call, not the sum — the paper's "many
// slow links at once" execution shape. A context error is reported once
// per unfinished call in the joined error.
func Gather(ctx context.Context, calls ...Waiter) error {
	var errs []error
	for _, c := range calls {
		if c == nil {
			continue
		}
		if err := c.Wait(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
