package units

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestDimString(t *testing.T) {
	cases := []struct {
		d    Dim
		want string
	}{
		{Dimensionless, "1"},
		{Dim{Mass: 1}, "kg"},
		{Dim{Mass: 1, Length: 2, Time: -3}, "kg m^2 s^-3"},
		{Dim{Temp: 1}, "K"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.d, got, c.want)
		}
	}
}

func TestConvertLength(t *testing.T) {
	pc := New(1, Parsec)
	inAU, err := pc.In(AU)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(inAU.Value, 206264.8, 1e-4) {
		t.Fatalf("1 pc = %v AU, want ~206265", inAU.Value)
	}
}

func TestConvertRejectsWrongDimension(t *testing.T) {
	v := New(3, KmS)
	if _, err := v.In(Kg); !errors.Is(err, ErrDimension) {
		t.Fatalf("km/s -> kg: err = %v, want ErrDimension", err)
	}
	if _, err := v.In(MS); err != nil {
		t.Fatalf("km/s -> m/s must work: %v", err)
	}
}

func TestAddSub(t *testing.T) {
	a := New(1, Myr)
	b := New(500_000, Yr)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sum.Value, 1.5, 1e-12) || sum.Unit.Symbol != "Myr" {
		t.Fatalf("1 Myr + 0.5 Myr = %v", sum)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(diff.Value, 0.5, 1e-12) {
		t.Fatalf("1 Myr - 0.5 Myr = %v", diff)
	}
	if _, err := a.Add(New(1, Kg)); !errors.Is(err, ErrDimension) {
		t.Fatalf("Myr + kg: err = %v", err)
	}
}

func TestMulDivDimensions(t *testing.T) {
	v := New(2, KmS)
	tt := New(3, S)
	dist := v.Mul(tt)
	if dist.Unit.Dim != (Dim{Length: 1}) {
		t.Fatalf("velocity*time dim = %v", dist.Unit.Dim)
	}
	if got := dist.SI(); !almost(got, 6000, 1e-12) {
		t.Fatalf("2 km/s * 3 s = %v m", got)
	}
	back := dist.Div(tt)
	if back.Unit.Dim != (Dim{Length: 1, Time: -1}) {
		t.Fatalf("dist/time dim = %v", back.Unit.Dim)
	}
}

func TestKineticEnergyDimensions(t *testing.T) {
	// (1/2) m v^2 must land in joules.
	m := New(1, MSun)
	v := New(10, KmS)
	e := m.Mul(v).Mul(v).Scale(0.5)
	inJ, err := e.In(J)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 1.98892e30 * 1e8
	if !almost(inJ.Value, want, 1e-9) {
		t.Fatalf("KE = %v J, want %v", inJ.Value, want)
	}
}

func TestCmp(t *testing.T) {
	a, b := New(1, Parsec), New(1, LY)
	c, err := a.Cmp(b)
	if err != nil || c != 1 {
		t.Fatalf("pc vs ly: %d, %v", c, err)
	}
	c, err = b.Cmp(a)
	if err != nil || c != -1 {
		t.Fatalf("ly vs pc: %d, %v", c, err)
	}
	c, err = a.Cmp(a)
	if err != nil || c != 0 {
		t.Fatalf("pc vs pc: %d, %v", c, err)
	}
	if _, err := a.Cmp(New(1, Kg)); err == nil {
		t.Fatal("pc vs kg compared")
	}
}

func TestQuantityString(t *testing.T) {
	if s := New(2.5, MSun).String(); s != "2.5 MSun" {
		t.Fatalf("got %q", s)
	}
	if s := New(3, None).String(); s != "3" {
		t.Fatalf("dimensionless: %q", s)
	}
}

func TestConverterGIsOne(t *testing.T) {
	c, err := NewConverter(New(1000, MSun), New(1, Parsec))
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.ToNBody(G)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(g, 1, 1e-12) {
		t.Fatalf("G in N-body units = %v, want 1", g)
	}
}

func TestConverterRoundTrip(t *testing.T) {
	c, err := NewConverter(New(1000, MSun), New(1, Parsec))
	if err != nil {
		t.Fatal(err)
	}
	v := New(2.5, KmS)
	nb, err := c.ToNBody(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.ToPhysical(nb, KmS)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(back.Value, 2.5, 1e-12) {
		t.Fatalf("round trip 2.5 km/s -> %v", back)
	}
}

func TestConverterRejectsTemperature(t *testing.T) {
	c, err := NewConverter(New(1, MSun), New(1, AU))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ToNBody(New(5000, K)); !errors.Is(err, ErrDimension) {
		t.Fatalf("temperature to N-body: %v", err)
	}
	if _, err := c.ToPhysical(1, K); !errors.Is(err, ErrDimension) {
		t.Fatalf("N-body to temperature: %v", err)
	}
}

func TestConverterRejectsBadScales(t *testing.T) {
	if _, err := NewConverter(New(-1, MSun), New(1, Parsec)); err == nil {
		t.Fatal("negative mass scale accepted")
	}
	if _, err := NewConverter(New(1, KmS), New(1, Parsec)); err == nil {
		t.Fatal("velocity as mass scale accepted")
	}
}

func TestConverterTimeScale(t *testing.T) {
	// For 1 MSun at 1 AU the N-body time unit is the orbital period / 2π:
	// ~0.159155 yr.
	c, err := NewConverter(New(1, MSun), New(1, AU))
	if err != nil {
		t.Fatal(err)
	}
	yr, err := c.TimeScale().ValueIn(Yr)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(yr, 1/(2*math.Pi), 1e-3) {
		t.Fatalf("time unit = %v yr, want ~%v", yr, 1/(2*math.Pi))
	}
}

// Property: In() preserves the SI value exactly up to float rounding.
func TestConversionPreservesSI(t *testing.T) {
	unitsOfLength := []Unit{M, Km, AU, Parsec, LY, RSun}
	f := func(v float64, pick uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		u := unitsOfLength[int(pick)%len(unitsOfLength)]
		q := New(v, u)
		for _, target := range unitsOfLength {
			out, err := q.In(target)
			if err != nil {
				return false
			}
			if q.SI() == 0 {
				if out.SI() != 0 {
					return false
				}
				continue
			}
			if !almost(out.SI(), q.SI(), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dimension algebra is a group action — Mul then Div returns the
// original dimension; Pow matches repeated Mul.
func TestDimAlgebraProperty(t *testing.T) {
	f := func(m1, l1, t1, m2, l2, t2 int8) bool {
		// Keep exponents small so int8 arithmetic cannot overflow.
		clamp := func(x int8) int8 { return x % 5 }
		a := Dim{clamp(m1), clamp(l1), clamp(t1), 0}
		b := Dim{clamp(m2), clamp(l2), clamp(t2), 0}
		if a.Mul(b).Div(b) != a {
			return false
		}
		if a.Pow(3) != a.Mul(a).Mul(a) {
			return false
		}
		return a.Pow(0) == Dimensionless
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedUnitHelpers(t *testing.T) {
	kmPerHour := Per(Km, Hour)
	q := New(36, kmPerHour)
	ms, err := q.ValueIn(MS)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ms, 10, 1e-12) {
		t.Fatalf("36 km/h = %v m/s", ms)
	}
	area := PowUnit(M, 2)
	if area.Dim != (Dim{Length: 2}) {
		t.Fatalf("m^2 dim = %v", area.Dim)
	}
	if PowUnit(Km, 2).Scale != 1e6 {
		t.Fatalf("km^2 scale = %v", PowUnit(Km, 2).Scale)
	}
}
