// Package units implements AMUSE's checked unit system. The paper stresses
// that "with the large number of units used in astronomy, checked conversion
// of all these units is a requirement for combining different models": every
// quantity carries its dimension, conversions between incompatible
// dimensions fail loudly, and an N-body converter maps between physical and
// dimensionless (G=1) units the way AMUSE's nbody_system module does.
package units

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is wrapped by all dimension-mismatch errors.
var ErrDimension = errors.New("units: dimension mismatch")

// Dim is a dimension vector over the SI base dimensions this domain needs:
// mass, length, time and temperature.
type Dim struct {
	Mass, Length, Time, Temp int8
}

// Dimensionless is the zero dimension.
var Dimensionless = Dim{}

// Mul returns the dimension of a product.
func (d Dim) Mul(o Dim) Dim {
	return Dim{d.Mass + o.Mass, d.Length + o.Length, d.Time + o.Time, d.Temp + o.Temp}
}

// Div returns the dimension of a quotient.
func (d Dim) Div(o Dim) Dim {
	return Dim{d.Mass - o.Mass, d.Length - o.Length, d.Time - o.Time, d.Temp - o.Temp}
}

// Pow returns the dimension of d raised to an integer power.
func (d Dim) Pow(n int8) Dim {
	return Dim{d.Mass * n, d.Length * n, d.Time * n, d.Temp * n}
}

// String renders the dimension as base-unit factors, e.g. "kg m^2 s^-3".
func (d Dim) String() string {
	if d == Dimensionless {
		return "1"
	}
	var parts []string
	add := func(sym string, p int8) {
		switch {
		case p == 1:
			parts = append(parts, sym)
		case p != 0:
			parts = append(parts, fmt.Sprintf("%s^%d", sym, p))
		}
	}
	add("kg", d.Mass)
	add("m", d.Length)
	add("s", d.Time)
	add("K", d.Temp)
	return strings.Join(parts, " ")
}

// Unit is a named scale of a dimension. Scale converts a value in this unit
// to SI base units.
type Unit struct {
	Symbol string
	Dim    Dim
	Scale  float64
}

// String returns the unit symbol.
func (u Unit) String() string { return u.Symbol }

// Derived returns a derived unit: (symbol, factor × base).
func Derived(symbol string, factor float64, base Unit) Unit {
	return Unit{Symbol: symbol, Dim: base.Dim, Scale: factor * base.Scale}
}

// Per builds the quotient unit a/b.
func Per(a, b Unit) Unit {
	return Unit{Symbol: a.Symbol + "/" + b.Symbol, Dim: a.Dim.Div(b.Dim), Scale: a.Scale / b.Scale}
}

// Times builds the product unit a·b.
func Times(a, b Unit) Unit {
	return Unit{Symbol: a.Symbol + "*" + b.Symbol, Dim: a.Dim.Mul(b.Dim), Scale: a.Scale * b.Scale}
}

// PowUnit raises a unit to an integer power.
func PowUnit(u Unit, n int8) Unit {
	return Unit{
		Symbol: fmt.Sprintf("%s^%d", u.Symbol, n),
		Dim:    u.Dim.Pow(n),
		Scale:  math.Pow(u.Scale, float64(n)),
	}
}

// SI base and astronomy units.
var (
	None = Unit{Symbol: "", Dim: Dimensionless, Scale: 1}

	Kg = Unit{Symbol: "kg", Dim: Dim{Mass: 1}, Scale: 1}
	M  = Unit{Symbol: "m", Dim: Dim{Length: 1}, Scale: 1}
	S  = Unit{Symbol: "s", Dim: Dim{Time: 1}, Scale: 1}
	K  = Unit{Symbol: "K", Dim: Dim{Temp: 1}, Scale: 1}

	Km     = Derived("km", 1e3, M)
	AU     = Derived("AU", 1.495978707e11, M)
	Parsec = Derived("pc", 3.0856775814913673e16, M)
	LY     = Derived("ly", 9.4607304725808e15, M)

	MSun = Derived("MSun", 1.98892e30, Kg)
	RSun = Derived("RSun", 6.957e8, M)

	Yr   = Derived("yr", 3.15576e7, S)
	Myr  = Derived("Myr", 1e6*3.15576e7, S)
	Gyr  = Derived("Gyr", 1e9*3.15576e7, S)
	Day  = Derived("day", 86400, S)
	Hour = Derived("hour", 3600, S)

	MS  = Per(M, S)                // m/s
	KmS = Derived("km/s", 1e3, MS) // km/s
	J   = Unit{"J", Dim{Mass: 1, Length: 2, Time: -2}, 1}
	W   = Unit{"W", Dim{Mass: 1, Length: 2, Time: -3}, 1}
	Erg = Derived("erg", 1e-7, J)
	// LSun is the solar luminosity.
	LSun = Derived("LSun", 3.828e26, W)
	// GUnit is the dimension/scale of Newton's constant.
	GUnit = Unit{"m^3/(kg s^2)", Dim{Mass: -1, Length: 3, Time: -2}, 1}
)

// GValue is Newton's gravitational constant in SI.
const GValue = 6.6743e-11

// G is Newton's constant as a checked quantity.
var G = Quantity{Value: GValue, Unit: GUnit}

// Quantity is a value with a unit. The zero value is a dimensionless zero.
type Quantity struct {
	Value float64
	Unit  Unit
}

// New returns value×unit as a quantity.
func New(value float64, unit Unit) Quantity { return Quantity{Value: value, Unit: unit} }

// SI returns the value converted to SI base units.
func (q Quantity) SI() float64 { return q.Value * q.Unit.Scale }

// In converts the quantity to another unit of the same dimension.
func (q Quantity) In(u Unit) (Quantity, error) {
	if q.Unit.Dim != u.Dim {
		return Quantity{}, fmt.Errorf("%w: cannot convert %s [%s] to %s [%s]",
			ErrDimension, q.Unit.Symbol, q.Unit.Dim, u.Symbol, u.Dim)
	}
	return Quantity{Value: q.SI() / u.Scale, Unit: u}, nil
}

// MustIn converts or panics; for package-internal constants known to match.
func (q Quantity) MustIn(u Unit) Quantity {
	out, err := q.In(u)
	if err != nil {
		panic(err)
	}
	return out
}

// ValueIn returns the numeric value of the quantity expressed in u.
func (q Quantity) ValueIn(u Unit) (float64, error) {
	out, err := q.In(u)
	if err != nil {
		return 0, err
	}
	return out.Value, nil
}

// Add returns q+o (converted to q's unit).
func (q Quantity) Add(o Quantity) (Quantity, error) {
	oc, err := o.In(q.Unit)
	if err != nil {
		return Quantity{}, fmt.Errorf("add: %w", err)
	}
	return Quantity{Value: q.Value + oc.Value, Unit: q.Unit}, nil
}

// Sub returns q-o (converted to q's unit).
func (q Quantity) Sub(o Quantity) (Quantity, error) {
	oc, err := o.In(q.Unit)
	if err != nil {
		return Quantity{}, fmt.Errorf("sub: %w", err)
	}
	return Quantity{Value: q.Value - oc.Value, Unit: q.Unit}, nil
}

// Mul returns the product q·o with the combined unit.
func (q Quantity) Mul(o Quantity) Quantity {
	return Quantity{Value: q.Value * o.Value, Unit: Times(q.Unit, o.Unit)}
}

// Div returns the quotient q/o with the combined unit.
func (q Quantity) Div(o Quantity) Quantity {
	return Quantity{Value: q.Value / o.Value, Unit: Per(q.Unit, o.Unit)}
}

// Scale multiplies by a dimensionless factor.
func (q Quantity) Scale(f float64) Quantity {
	return Quantity{Value: q.Value * f, Unit: q.Unit}
}

// Cmp compares two quantities of the same dimension: -1, 0 or +1.
func (q Quantity) Cmp(o Quantity) (int, error) {
	oc, err := o.In(q.Unit)
	if err != nil {
		return 0, err
	}
	switch {
	case q.Value < oc.Value:
		return -1, nil
	case q.Value > oc.Value:
		return 1, nil
	default:
		return 0, nil
	}
}

// String renders "value symbol".
func (q Quantity) String() string {
	if q.Unit.Symbol == "" {
		return fmt.Sprintf("%g", q.Value)
	}
	return fmt.Sprintf("%g %s", q.Value, q.Unit.Symbol)
}

// Converter maps between physical units and dimensionless N-body units with
// G=1, defined by a chosen mass and length scale (AMUSE's
// nbody_system.nbody_to_si). The derived time unit is sqrt(L³/(G·M)).
type Converter struct {
	mass, length, time float64 // SI values of one N-body unit
}

// NewConverter builds a converter from a mass and a length quantity.
func NewConverter(mass, length Quantity) (*Converter, error) {
	m, err := mass.ValueIn(Kg)
	if err != nil {
		return nil, fmt.Errorf("units: converter mass: %w", err)
	}
	l, err := length.ValueIn(M)
	if err != nil {
		return nil, fmt.Errorf("units: converter length: %w", err)
	}
	if m <= 0 || l <= 0 {
		return nil, fmt.Errorf("units: converter scales must be positive (mass %g kg, length %g m)", m, l)
	}
	return &Converter{mass: m, length: l, time: math.Sqrt(l * l * l / (GValue * m))}, nil
}

// scaleFor returns the SI value of one N-body unit of the given dimension.
func (c *Converter) scaleFor(d Dim) float64 {
	return math.Pow(c.mass, float64(d.Mass)) *
		math.Pow(c.length, float64(d.Length)) *
		math.Pow(c.time, float64(d.Time))
}

// ToNBody converts a physical quantity to its dimensionless N-body value.
// Temperature has no N-body scale and is rejected.
func (c *Converter) ToNBody(q Quantity) (float64, error) {
	if q.Unit.Dim.Temp != 0 {
		return 0, fmt.Errorf("%w: temperature has no N-body scale", ErrDimension)
	}
	return q.SI() / c.scaleFor(q.Unit.Dim), nil
}

// ToPhysical converts a dimensionless N-body value of dimension d into the
// requested unit.
func (c *Converter) ToPhysical(value float64, u Unit) (Quantity, error) {
	if u.Dim.Temp != 0 {
		return Quantity{}, fmt.Errorf("%w: temperature has no N-body scale", ErrDimension)
	}
	si := value * c.scaleFor(u.Dim)
	return Quantity{Value: si / u.Scale, Unit: u}, nil
}

// MassScale returns the SI mass of one N-body mass unit.
func (c *Converter) MassScale() Quantity { return Quantity{Value: c.mass, Unit: Kg} }

// LengthScale returns the SI length of one N-body length unit.
func (c *Converter) LengthScale() Quantity { return Quantity{Value: c.length, Unit: M} }

// TimeScale returns the SI duration of one N-body time unit.
func (c *Converter) TimeScale() Quantity { return Quantity{Value: c.time, Unit: S} }
