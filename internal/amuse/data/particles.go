// Package data implements AMUSE-style particle sets: structure-of-arrays
// collections with stable keys, plus attribute channels that copy selected
// attributes between sets sharing keys — the mechanism AMUSE scripts use to
// move state between the coupler's bookkeeping set and each model's internal
// set (Fig. 7's "p-kicks" and state exchanges).
package data

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrKeyMismatch is returned by NewChannel when the target set is missing
// keys present in the source set.
var ErrKeyMismatch = errors.New("data: key not present in target set")

// Particles is a structure-of-arrays particle set. All slices have equal
// length. Keys are stable unique identifiers that survive copies between
// sets; every other attribute is per-particle state.
type Particles struct {
	Key  []uint64
	Mass []float64
	Pos  []Vec3
	Vel  []Vec3

	// SPH / gas attributes.
	InternalEnergy []float64 // specific internal energy u
	Density        []float64
	SmoothingLen   []float64

	// Stellar evolution attributes.
	Radius      []float64
	Luminosity  []float64
	Temperature []float64
	StellarType []int
	Age         []float64

	nextKey uint64
	index   map[uint64]int
}

// NewParticles returns a set with n particles and fresh sequential keys.
func NewParticles(n int) *Particles {
	p := &Particles{}
	p.grow(n)
	for i := 0; i < n; i++ {
		p.Key[i] = uint64(i + 1)
	}
	p.nextKey = uint64(n + 1)
	p.reindex()
	return p
}

// Empty returns a set with zero particles.
func Empty() *Particles { return NewParticles(0) }

func (p *Particles) grow(n int) {
	p.Key = append(p.Key, make([]uint64, n)...)
	p.Mass = append(p.Mass, make([]float64, n)...)
	p.Pos = append(p.Pos, make([]Vec3, n)...)
	p.Vel = append(p.Vel, make([]Vec3, n)...)
	p.InternalEnergy = append(p.InternalEnergy, make([]float64, n)...)
	p.Density = append(p.Density, make([]float64, n)...)
	p.SmoothingLen = append(p.SmoothingLen, make([]float64, n)...)
	p.Radius = append(p.Radius, make([]float64, n)...)
	p.Luminosity = append(p.Luminosity, make([]float64, n)...)
	p.Temperature = append(p.Temperature, make([]float64, n)...)
	p.StellarType = append(p.StellarType, make([]int, n)...)
	p.Age = append(p.Age, make([]float64, n)...)
}

// Len returns the number of particles.
func (p *Particles) Len() int { return len(p.Key) }

// Add appends one particle with a fresh key and returns its index.
func (p *Particles) Add(mass float64, pos, vel Vec3) int {
	i := p.Len()
	p.grow(1)
	if p.nextKey == 0 {
		p.nextKey = 1
	}
	p.Key[i] = p.nextKey
	p.nextKey++
	p.Mass[i] = mass
	p.Pos[i] = pos
	p.Vel[i] = vel
	if p.index != nil {
		p.index[p.Key[i]] = i
	}
	return i
}

// Remove deletes the particle at index i (order is not preserved: the last
// particle moves into slot i, mirroring AMUSE's set semantics where order is
// incidental and keys are identity).
func (p *Particles) Remove(i int) {
	last := p.Len() - 1
	if i < 0 || i > last {
		panic(fmt.Sprintf("data: remove index %d out of range [0,%d]", i, last))
	}
	p.Key[i] = p.Key[last]
	p.Mass[i] = p.Mass[last]
	p.Pos[i] = p.Pos[last]
	p.Vel[i] = p.Vel[last]
	p.InternalEnergy[i] = p.InternalEnergy[last]
	p.Density[i] = p.Density[last]
	p.SmoothingLen[i] = p.SmoothingLen[last]
	p.Radius[i] = p.Radius[last]
	p.Luminosity[i] = p.Luminosity[last]
	p.Temperature[i] = p.Temperature[last]
	p.StellarType[i] = p.StellarType[last]
	p.Age[i] = p.Age[last]

	p.Key = p.Key[:last]
	p.Mass = p.Mass[:last]
	p.Pos = p.Pos[:last]
	p.Vel = p.Vel[:last]
	p.InternalEnergy = p.InternalEnergy[:last]
	p.Density = p.Density[:last]
	p.SmoothingLen = p.SmoothingLen[:last]
	p.Radius = p.Radius[:last]
	p.Luminosity = p.Luminosity[:last]
	p.Temperature = p.Temperature[:last]
	p.StellarType = p.StellarType[:last]
	p.Age = p.Age[:last]
	p.reindex()
}

// Clone returns a deep copy sharing no storage.
func (p *Particles) Clone() *Particles {
	q := &Particles{nextKey: p.nextKey}
	q.Key = append([]uint64(nil), p.Key...)
	q.Mass = append([]float64(nil), p.Mass...)
	q.Pos = append([]Vec3(nil), p.Pos...)
	q.Vel = append([]Vec3(nil), p.Vel...)
	q.InternalEnergy = append([]float64(nil), p.InternalEnergy...)
	q.Density = append([]float64(nil), p.Density...)
	q.SmoothingLen = append([]float64(nil), p.SmoothingLen...)
	q.Radius = append([]float64(nil), p.Radius...)
	q.Luminosity = append([]float64(nil), p.Luminosity...)
	q.Temperature = append([]float64(nil), p.Temperature...)
	q.StellarType = append([]int(nil), p.StellarType...)
	q.Age = append([]float64(nil), p.Age...)
	q.reindex()
	return q
}

func (p *Particles) reindex() {
	p.index = make(map[uint64]int, len(p.Key))
	for i, k := range p.Key {
		p.index[k] = i
	}
}

// IndexOf returns the index of the particle with the given key, or -1.
func (p *Particles) IndexOf(key uint64) int {
	if p.index == nil {
		p.reindex()
	}
	if i, ok := p.index[key]; ok {
		return i
	}
	return -1
}

// TotalMass returns the summed mass.
func (p *Particles) TotalMass() float64 {
	var m float64
	for _, x := range p.Mass {
		m += x
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position.
func (p *Particles) CenterOfMass() Vec3 {
	var com Vec3
	var m float64
	for i := range p.Mass {
		com = com.Add(p.Pos[i].Scale(p.Mass[i]))
		m += p.Mass[i]
	}
	if m == 0 {
		return Vec3{}
	}
	return com.Scale(1 / m)
}

// CenterOfMassVelocity returns the mass-weighted mean velocity.
func (p *Particles) CenterOfMassVelocity() Vec3 {
	var v Vec3
	var m float64
	for i := range p.Mass {
		v = v.Add(p.Vel[i].Scale(p.Mass[i]))
		m += p.Mass[i]
	}
	if m == 0 {
		return Vec3{}
	}
	return v.Scale(1 / m)
}

// KineticEnergy returns Σ ½ m v².
func (p *Particles) KineticEnergy() float64 {
	var e float64
	for i := range p.Mass {
		e += 0.5 * p.Mass[i] * p.Vel[i].Norm2()
	}
	return e
}

// PotentialEnergy returns the direct-sum pairwise potential −G Σ mᵢmⱼ/rᵢⱼ
// with Plummer softening eps. O(N²); intended for diagnostics and tests.
func (p *Particles) PotentialEnergy(g, eps float64) float64 {
	var e float64
	eps2 := eps * eps
	for i := 0; i < p.Len(); i++ {
		for j := i + 1; j < p.Len(); j++ {
			r := math.Sqrt(p.Pos[i].Sub(p.Pos[j]).Norm2() + eps2)
			e -= g * p.Mass[i] * p.Mass[j] / r
		}
	}
	return e
}

// ThermalEnergy returns Σ m·u for gas sets.
func (p *Particles) ThermalEnergy() float64 {
	var e float64
	for i := range p.Mass {
		e += p.Mass[i] * p.InternalEnergy[i]
	}
	return e
}

// MoveToCenter shifts positions and velocities into the center-of-mass
// frame, as AMUSE's move_to_center does before coupling models.
func (p *Particles) MoveToCenter() {
	com := p.CenterOfMass()
	cov := p.CenterOfMassVelocity()
	for i := range p.Pos {
		p.Pos[i] = p.Pos[i].Sub(com)
		p.Vel[i] = p.Vel[i].Sub(cov)
	}
}

// ScaleToStandard rescales the set to Heggie–Mathieu standard N-body units:
// total mass M=1, virial equilibrium 2T=|U|, total energy E=−1/4 (with G=1
// and softening eps in the rescaled length unit).
func (p *Particles) ScaleToStandard(eps float64) {
	m := p.TotalMass()
	if m <= 0 || p.Len() < 2 {
		return
	}
	for i := range p.Mass {
		p.Mass[i] /= m
	}
	p.MoveToCenter()
	// First scale velocities to virial equilibrium: 2T = |U|.
	u := p.PotentialEnergy(1, eps)
	t := p.KineticEnergy()
	if t > 0 && u < 0 {
		f := math.Sqrt(-u / (2 * t))
		for i := range p.Vel {
			p.Vel[i] = p.Vel[i].Scale(f)
		}
	}
	// Then scale lengths (and compensate velocities) to E = -1/4.
	e := p.KineticEnergy() + p.PotentialEnergy(1, eps)
	if e >= 0 {
		return
	}
	r := e / (-0.25) // current E is r times target
	for i := range p.Pos {
		p.Pos[i] = p.Pos[i].Scale(r)
	}
	vf := 1 / math.Sqrt(r)
	for i := range p.Vel {
		p.Vel[i] = p.Vel[i].Scale(vf)
	}
}

// HalfMassRadius returns the radius (from the center of mass) containing
// half the total mass.
func (p *Particles) HalfMassRadius() float64 {
	if p.Len() == 0 {
		return 0
	}
	com := p.CenterOfMass()
	type mr struct {
		r, m float64
	}
	rs := make([]mr, p.Len())
	for i := range p.Pos {
		rs[i] = mr{r: p.Pos[i].Sub(com).Norm(), m: p.Mass[i]}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r < rs[j].r })
	half := p.TotalMass() / 2
	var acc float64
	for _, x := range rs {
		acc += x.m
		if acc >= half {
			return x.r
		}
	}
	return rs[len(rs)-1].r
}

// BoundMassFraction returns the fraction of mass with negative specific
// energy relative to the set's own potential (G=1, softening eps): the
// diagnostic used to track gas expulsion through the Fig. 6 stages.
func (p *Particles) BoundMassFraction(eps float64) float64 {
	n := p.Len()
	if n == 0 {
		return 0
	}
	eps2 := eps * eps
	total, bound := 0.0, 0.0
	cov := p.CenterOfMassVelocity()
	for i := 0; i < n; i++ {
		var phi float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r := math.Sqrt(p.Pos[i].Sub(p.Pos[j]).Norm2() + eps2)
			phi -= p.Mass[j] / r
		}
		ke := 0.5 * p.Vel[i].Sub(cov).Norm2()
		total += p.Mass[i]
		if ke+phi+p.InternalEnergy[i] < 0 {
			bound += p.Mass[i]
		}
	}
	if total == 0 {
		return 0
	}
	return bound / total
}
