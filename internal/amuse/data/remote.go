package data

import "errors"

// ErrNoTransfer is returned by RemoteChannel.Copy when the channel was
// built without a transfer function.
var ErrNoTransfer = errors.New("data: remote channel has no transfer function")

// TransferFunc moves the named attribute columns between two
// worker-resident particle sets. The coupler layer supplies it (core
// wires RemoteChannels to its TransferState orchestration), keeping this
// package free of any transport dependency.
type TransferFunc func(attrs []string) error

// RemoteChannel mirrors Channel for particle sets that live on workers:
// Copy moves the named attribute columns from the source worker's set to
// the destination worker's without materializing them on the caller —
// over a direct worker-to-worker stream when one exists, through the
// coupler otherwise. Like Channel, attribute errors name the offending
// attribute so a miswired script fails diagnosably.
type RemoteChannel struct {
	transfer TransferFunc
}

// NewRemoteChannel builds a remote channel over a transfer function.
func NewRemoteChannel(transfer TransferFunc) *RemoteChannel {
	return &RemoteChannel{transfer: transfer}
}

// Copy transfers the named attributes between the worker-resident sets.
// With no attributes it copies mass, position and velocity — the same
// default exchange as Channel.Copy.
func (c *RemoteChannel) Copy(attrs ...string) error {
	if c.transfer == nil {
		return ErrNoTransfer
	}
	if len(attrs) == 0 {
		attrs = []string{AttrMass, AttrPos, AttrVel}
	}
	return c.transfer(attrs)
}
