package data

import (
	"fmt"
)

// Attribute names understood by channels.
const (
	AttrMass           = "mass"
	AttrPos            = "position"
	AttrVel            = "velocity"
	AttrInternalEnergy = "u"
	AttrDensity        = "density"
	AttrSmoothingLen   = "h_smooth"
	AttrRadius         = "radius"
	AttrLuminosity     = "luminosity"
	AttrTemperature    = "temperature"
	AttrStellarType    = "stellar_type"
	AttrAge            = "age"
)

// Channel copies attributes from one particle set to another, matching
// particles by key. It is AMUSE's new_channel_to: the coupler keeps a master
// set and pushes/pulls state to each model's set around every coupled step.
type Channel struct {
	from, to *Particles
	fromIdx  []int // per from-particle index into to
}

// NewChannel builds a channel from -> to. Every key in from must exist in
// to; extra particles in to are allowed and untouched.
func NewChannel(from, to *Particles) (*Channel, error) {
	c := &Channel{from: from, to: to}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh recomputes the key mapping after either set changed membership.
func (c *Channel) Refresh() error {
	c.fromIdx = make([]int, c.from.Len())
	for i, k := range c.from.Key {
		j := c.to.IndexOf(k)
		if j < 0 {
			return fmt.Errorf("%w: key %d", ErrKeyMismatch, k)
		}
		c.fromIdx[i] = j
	}
	return nil
}

// Copy transfers the named attributes for all mapped particles. With no
// attributes it copies mass, position and velocity (the common dynamics
// exchange).
func (c *Channel) Copy(attrs ...string) error {
	if len(c.fromIdx) != c.from.Len() {
		if err := c.Refresh(); err != nil {
			return err
		}
	}
	if len(attrs) == 0 {
		attrs = []string{AttrMass, AttrPos, AttrVel}
	}
	for _, a := range attrs {
		if err := c.copyOne(a); err != nil {
			return err
		}
	}
	return nil
}

// copyOne transfers one attribute column-wise: the attribute is resolved
// to its backing array once, then a tight index loop moves the values —
// no per-particle attribute dispatch.
func (c *Channel) copyOne(attr string) error {
	f, t := c.from, c.to
	if fv, err := f.VecColumn(attr); err == nil {
		tv, _ := t.VecColumn(attr)
		for i, j := range c.fromIdx {
			tv[j] = fv[i]
		}
		return nil
	}
	if ff, err := f.FloatColumn(attr); err == nil {
		tf, _ := t.FloatColumn(attr)
		for i, j := range c.fromIdx {
			tf[j] = ff[i]
		}
		return nil
	}
	fi, err := f.IntColumn(attr)
	if err != nil {
		return err
	}
	ti, _ := t.IntColumn(attr)
	for i, j := range c.fromIdx {
		ti[j] = fi[i]
	}
	return nil
}
