package data

import "fmt"

// Columnar attribute access. The set is already structure-of-arrays; these
// accessors name the arrays so channels and the batched wire protocol can
// move whole columns generically instead of switching per particle.

// FloatColumn returns the live scalar column for attr (not a copy).
func (p *Particles) FloatColumn(attr string) ([]float64, error) {
	switch attr {
	case AttrMass:
		return p.Mass, nil
	case AttrInternalEnergy:
		return p.InternalEnergy, nil
	case AttrDensity:
		return p.Density, nil
	case AttrSmoothingLen:
		return p.SmoothingLen, nil
	case AttrRadius:
		return p.Radius, nil
	case AttrLuminosity:
		return p.Luminosity, nil
	case AttrTemperature:
		return p.Temperature, nil
	case AttrAge:
		return p.Age, nil
	default:
		return nil, fmt.Errorf("data: unknown attribute %q", attr)
	}
}

// VecColumn returns the live vector column for attr (not a copy).
func (p *Particles) VecColumn(attr string) ([]Vec3, error) {
	switch attr {
	case AttrPos:
		return p.Pos, nil
	case AttrVel:
		return p.Vel, nil
	default:
		return nil, fmt.Errorf("data: unknown attribute %q", attr)
	}
}

// IntColumn returns the live integer column for attr (not a copy).
func (p *Particles) IntColumn(attr string) ([]int, error) {
	switch attr {
	case AttrStellarType:
		return p.StellarType, nil
	default:
		return nil, fmt.Errorf("data: unknown attribute %q", attr)
	}
}
