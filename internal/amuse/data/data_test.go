package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomSet(rng *rand.Rand, n int) *Particles {
	p := NewParticles(n)
	for i := 0; i < n; i++ {
		p.Mass[i] = rng.Float64() + 0.1
		p.Pos[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		p.Vel[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return p
}

func TestVecOps(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("add: %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("sub: %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("dot: %v", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Fatalf("cross: %v", got)
	}
	if got := a.Scale(2).Norm2(); got != 4*14 {
		t.Fatalf("scale/norm2: %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Fatalf("norm: %v", got)
	}
}

func TestAddRemoveKeepsKeysUnique(t *testing.T) {
	p := NewParticles(3)
	i := p.Add(1, Vec3{1, 0, 0}, Vec3{})
	if p.Key[i] != 4 {
		t.Fatalf("new key = %d, want 4", p.Key[i])
	}
	p.Remove(0)
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	seen := map[uint64]bool{}
	for _, k := range p.Key {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if p.IndexOf(1) != -1 {
		t.Fatal("removed key still indexed")
	}
	j := p.Add(2, Vec3{}, Vec3{})
	if p.Key[j] == 0 || seen[p.Key[j]] {
		t.Fatalf("reused key %d", p.Key[j])
	}
}

func TestCenterOfMass(t *testing.T) {
	p := NewParticles(2)
	p.Mass[0], p.Mass[1] = 1, 3
	p.Pos[0], p.Pos[1] = Vec3{0, 0, 0}, Vec3{4, 0, 0}
	if com := p.CenterOfMass(); com != (Vec3{3, 0, 0}) {
		t.Fatalf("com = %v", com)
	}
	p.Vel[0], p.Vel[1] = Vec3{4, 0, 0}, Vec3{0, 0, 0}
	if cov := p.CenterOfMassVelocity(); cov != (Vec3{1, 0, 0}) {
		t.Fatalf("cov = %v", cov)
	}
	p.MoveToCenter()
	if com := p.CenterOfMass(); com.Norm() > 1e-14 {
		t.Fatalf("after MoveToCenter com = %v", com)
	}
}

func TestEnergies(t *testing.T) {
	// Two unit masses at distance 2, at rest: U = -G/2, T = 0.
	p := NewParticles(2)
	p.Mass[0], p.Mass[1] = 1, 1
	p.Pos[1] = Vec3{2, 0, 0}
	if u := p.PotentialEnergy(1, 0); math.Abs(u+0.5) > 1e-14 {
		t.Fatalf("U = %v, want -0.5", u)
	}
	p.Vel[0] = Vec3{0, 1, 0}
	if ke := p.KineticEnergy(); ke != 0.5 {
		t.Fatalf("T = %v, want 0.5", ke)
	}
	p.InternalEnergy[0] = 2
	if te := p.ThermalEnergy(); te != 2 {
		t.Fatalf("thermal = %v, want 2", te)
	}
}

func TestScaleToStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomSet(rng, 64)
	p.ScaleToStandard(0)
	if m := p.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("total mass = %v", m)
	}
	e := p.KineticEnergy() + p.PotentialEnergy(1, 0)
	if math.Abs(e+0.25) > 1e-10 {
		t.Fatalf("E = %v, want -0.25", e)
	}
	// Virial ratio: T/|U| should be close to 0.5 after scaling (exact at
	// the scaling moment).
	q := p.KineticEnergy() / -p.PotentialEnergy(1, 0)
	if math.Abs(q-0.5) > 1e-10 {
		t.Fatalf("virial ratio = %v", q)
	}
}

func TestHalfMassRadius(t *testing.T) {
	// Shell of 4 at r=1, shell of 4 at r=3 → half-mass radius is 1.
	p := NewParticles(8)
	dirs := []Vec3{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}}
	for i := 0; i < 4; i++ {
		p.Mass[i] = 1
		p.Pos[i] = dirs[i]
	}
	for i := 4; i < 8; i++ {
		p.Mass[i] = 1
		p.Pos[i] = dirs[i-4].Scale(3)
	}
	if r := p.HalfMassRadius(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("half-mass radius = %v", r)
	}
}

func TestBoundMassFraction(t *testing.T) {
	// A tight binary is bound; a distant fast escaper is not.
	p := NewParticles(3)
	p.Mass[0], p.Mass[1], p.Mass[2] = 1, 1, 1e-4
	p.Pos[0], p.Pos[1] = Vec3{-0.05, 0, 0}, Vec3{0.05, 0, 0}
	p.Pos[2] = Vec3{100, 0, 0}
	p.Vel[2] = Vec3{100, 0, 0}
	f := p.BoundMassFraction(0)
	want := 2.0 / (2 + 1e-4)
	if math.Abs(f-want) > 1e-6 {
		t.Fatalf("bound fraction = %v, want %v", f, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewParticles(2)
	p.Mass[0] = 5
	q := p.Clone()
	q.Mass[0] = 7
	q.Pos[0] = Vec3{1, 1, 1}
	if p.Mass[0] != 5 || p.Pos[0] != (Vec3{}) {
		t.Fatal("clone shares storage")
	}
	if q.IndexOf(p.Key[1]) != 1 {
		t.Fatal("clone index broken")
	}
}

func TestChannelCopiesByKey(t *testing.T) {
	p := NewParticles(3)
	for i := range p.Mass {
		p.Mass[i] = float64(i + 1)
		p.Pos[i] = Vec3{float64(i), 0, 0}
	}
	q := p.Clone()
	// Shuffle q's storage order by removing and re-adding behaviors:
	// simulate with a manual swap of entries 0 and 2.
	q.Key[0], q.Key[2] = q.Key[2], q.Key[0]
	q.Mass[0], q.Mass[2] = q.Mass[2], q.Mass[0]
	q.Pos[0], q.Pos[2] = q.Pos[2], q.Pos[0]
	q.reindex()

	p.Mass[0] = 100 // update master
	ch, err := NewChannel(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Copy(AttrMass); err != nil {
		t.Fatal(err)
	}
	j := q.IndexOf(p.Key[0])
	if q.Mass[j] != 100 {
		t.Fatalf("channel copy by key failed: %v", q.Mass)
	}
	// Positions were not copied: key 1 sits at index 2 of q after the swap,
	// still holding its original position {0,0,0}.
	if q.Pos[j] != (Vec3{0, 0, 0}) {
		t.Fatalf("channel touched position: %v", q.Pos[j])
	}
}

func TestChannelDefaultAttrs(t *testing.T) {
	p := NewParticles(2)
	q := p.Clone()
	p.Mass[1] = 9
	p.Pos[1] = Vec3{1, 2, 3}
	p.Vel[1] = Vec3{4, 5, 6}
	p.InternalEnergy[1] = 7
	ch, err := NewChannel(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Copy(); err != nil {
		t.Fatal(err)
	}
	if q.Mass[1] != 9 || q.Pos[1] != (Vec3{1, 2, 3}) || q.Vel[1] != (Vec3{4, 5, 6}) {
		t.Fatal("default copy missed dynamics attributes")
	}
	if q.InternalEnergy[1] != 0 {
		t.Fatal("default copy included u")
	}
}

func TestChannelMissingKey(t *testing.T) {
	p := NewParticles(2)
	q := NewParticles(1) // keys {1}, missing 2
	if _, err := NewChannel(p, q); err == nil {
		t.Fatal("channel built despite missing key")
	}
}

func TestChannelUnknownAttr(t *testing.T) {
	p := NewParticles(1)
	q := p.Clone()
	ch, err := NewChannel(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Copy("spin"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

// TestChannelMissingAttrNamesAttribute: an attribute the destination set
// cannot hold must fail with an error that names it — the diagnosability
// contract both channel flavors (local and remote) share.
func TestChannelMissingAttrNamesAttribute(t *testing.T) {
	p := NewParticles(2)
	q := p.Clone()
	ch, err := NewChannel(p, q)
	if err != nil {
		t.Fatal(err)
	}
	err = ch.Copy(AttrMass, "vorticity")
	if err == nil {
		t.Fatal("copy of absent attribute succeeded")
	}
	if !strings.Contains(err.Error(), "vorticity") {
		t.Fatalf("error %q does not name the attribute", err)
	}
}

// TestRemoteChannelDefaultsAndErrors: the remote mirror of Channel
// defaults to the dynamics exchange and surfaces the transfer's
// attribute-naming errors unchanged. The real worker-to-worker flavor is
// exercised in internal/core's transfer tests.
func TestRemoteChannelDefaultsAndErrors(t *testing.T) {
	var got [][]string
	ch := NewRemoteChannel(func(attrs []string) error {
		got = append(got, attrs)
		for _, a := range attrs {
			if a != AttrMass && a != AttrPos && a != AttrVel {
				return fmt.Errorf("worker: unknown attribute %q", a)
			}
		}
		return nil
	})
	if err := ch.Copy(); err != nil {
		t.Fatal(err)
	}
	want := []string{AttrMass, AttrPos, AttrVel}
	if len(got) != 1 || len(got[0]) != len(want) {
		t.Fatalf("transfer saw %v, want %v", got, want)
	}
	for i, a := range want {
		if got[0][i] != a {
			t.Fatalf("default attrs %v, want %v", got[0], want)
		}
	}
	err := ch.Copy("vorticity")
	if err == nil || !strings.Contains(err.Error(), "vorticity") {
		t.Fatalf("error %v does not name the attribute", err)
	}
	if err := NewRemoteChannel(nil).Copy(); !errors.Is(err, ErrNoTransfer) {
		t.Fatalf("nil transfer: err = %v, want ErrNoTransfer", err)
	}
}

func TestChannelRefreshAfterGrowth(t *testing.T) {
	p := NewParticles(2)
	q := p.Clone()
	ch, err := NewChannel(p, q)
	if err != nil {
		t.Fatal(err)
	}
	i := p.Add(3, Vec3{}, Vec3{})
	q.Add(0, Vec3{}, Vec3{})
	q.Key[q.Len()-1] = p.Key[i] // mirror the key
	q.reindex()
	if err := ch.Copy(AttrMass); err != nil {
		t.Fatal(err)
	}
	if q.Mass[q.IndexOf(p.Key[i])] != 3 {
		t.Fatal("refresh after growth failed")
	}
}

// Property: for any random set, MoveToCenter zeroes the COM and COM-velocity
// and preserves kinetic energy in the COM frame relationship T' <= T.
func TestMoveToCenterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSet(rng, 2+rng.Intn(30))
		t0 := p.KineticEnergy()
		p.MoveToCenter()
		return p.CenterOfMass().Norm() < 1e-10 &&
			p.CenterOfMassVelocity().Norm() < 1e-10 &&
			p.KineticEnergy() <= t0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: potential energy is negative, monotone in softening (more
// softening, shallower potential).
func TestPotentialSofteningProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSet(rng, 2+rng.Intn(20))
		u0 := p.PotentialEnergy(1, 0)
		u1 := p.PotentialEnergy(1, 0.5)
		return u0 < 0 && u1 > u0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
