package data

import "math"

// Vec3 is a 3-component Cartesian vector. Physics kernels operate on slices
// of Vec3 in structure-of-arrays style particle sets.
type Vec3 [3]float64

// Add returns v+o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v[0] + o[0], v[1] + o[1], v[2] + o[2]} }

// Sub returns v-o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the inner product.
func (v Vec3) Dot(o Vec3) float64 { return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] }

// Cross returns the cross product v×o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v[1]*o[2] - v[2]*o[1],
		v[2]*o[0] - v[0]*o[2],
		v[0]*o[1] - v[1]*o[0],
	}
}

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }
