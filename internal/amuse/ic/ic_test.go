package ic

import (
	"math"
	"testing"
)

func TestPlummerBasicProperties(t *testing.T) {
	p := Plummer(500, 42)
	if p.Len() != 500 {
		t.Fatalf("len = %d", p.Len())
	}
	if m := p.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("total mass = %v", m)
	}
	if com := p.CenterOfMass().Norm(); com > 1e-10 {
		t.Fatalf("|com| = %v", com)
	}
	// Near virial equilibrium: Q = T/|U| in [0.35, 0.65] for finite N.
	q := p.KineticEnergy() / -p.PotentialEnergy(1, 0)
	if q < 0.35 || q > 0.65 {
		t.Fatalf("virial ratio = %v", q)
	}
	// Half-mass radius of the standard Plummer model is ~0.77.
	if r := p.HalfMassRadius(); r < 0.4 || r > 1.3 {
		t.Fatalf("half-mass radius = %v", r)
	}
}

func TestPlummerDeterministic(t *testing.T) {
	a, b := Plummer(100, 7), Plummer(100, 7)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("same seed produced different sets")
		}
	}
	c := Plummer(100, 8)
	same := true
	for i := range a.Pos {
		if a.Pos[i] != c.Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestPlummerAllBound(t *testing.T) {
	p := Plummer(300, 3)
	// No sampled star exceeds local escape speed: per-particle energy < 0
	// against the analytic potential is guaranteed by construction (v<vesc);
	// check the N-body realization is overwhelmingly bound.
	if f := p.BoundMassFraction(0); f < 0.9 {
		t.Fatalf("bound fraction = %v", f)
	}
}

func TestSalpeterIMF(t *testing.T) {
	masses := SalpeterIMF(20000, 0.3, 25, 1)
	var lo, hi int
	var mean float64
	for _, m := range masses {
		if m < 0.3 || m > 25 {
			t.Fatalf("mass %v outside bounds", m)
		}
		if m < 1 {
			lo++
		}
		if m > 8 {
			hi++
		}
		mean += m
	}
	mean /= float64(len(masses))
	// Salpeter with these bounds: mean ~0.87 MSun, heavily bottom-weighted.
	if mean < 0.6 || mean > 1.2 {
		t.Fatalf("mean mass = %v", mean)
	}
	if lo < hi {
		t.Fatalf("IMF not bottom-heavy: %d below 1 MSun, %d above 8", lo, hi)
	}
}

func TestEmbeddedCluster(t *testing.T) {
	stars, gas, err := EmbeddedCluster(ClusterSpec{
		Stars: 200, Gas: 1000, GasFrac: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, gm := stars.TotalMass(), gas.TotalMass()
	if math.Abs(sm-0.1) > 1e-9 {
		t.Fatalf("star mass = %v, want 0.1", sm)
	}
	if math.Abs(gm-0.9) > 1e-9 {
		t.Fatalf("gas mass = %v, want 0.9", gm)
	}
	for i := range gas.Mass {
		if gas.InternalEnergy[i] <= 0 || gas.SmoothingLen[i] <= 0 {
			t.Fatal("gas particle missing u or h")
		}
	}
	// Star masses vary (IMF), gas masses equal.
	if stars.Mass[0] == stars.Mass[1] && stars.Mass[1] == stars.Mass[2] {
		t.Fatal("star masses look equal; IMF not applied")
	}
	if gas.Mass[0] != gas.Mass[1] {
		t.Fatal("gas masses unequal")
	}
}

func TestEmbeddedClusterValidation(t *testing.T) {
	if _, _, err := EmbeddedCluster(ClusterSpec{Stars: 0, Gas: 10}); err == nil {
		t.Fatal("zero stars accepted")
	}
	if _, _, err := EmbeddedCluster(ClusterSpec{Stars: 10, Gas: 10, GasFrac: 1.5}); err == nil {
		t.Fatal("gas fraction 1.5 accepted")
	}
	if _, _, err := EmbeddedCluster(ClusterSpec{Stars: 10, Gas: -1}); err == nil {
		t.Fatal("negative gas accepted")
	}
}

func TestEmbeddedClusterNoGas(t *testing.T) {
	stars, gas, err := EmbeddedCluster(ClusterSpec{Stars: 50, Gas: 0, GasFrac: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gas.Len() != 0 {
		t.Fatalf("gas len = %d", gas.Len())
	}
	if math.Abs(stars.TotalMass()-1) > 1e-9 {
		t.Fatalf("star mass = %v", stars.TotalMass())
	}
}

func TestUniformSphere(t *testing.T) {
	p := UniformSphere(2000, 5, 2, 9)
	if math.Abs(p.TotalMass()-5) > 1e-9 {
		t.Fatalf("mass = %v", p.TotalMass())
	}
	var maxR float64
	for i := range p.Pos {
		if r := p.Pos[i].Norm(); r > maxR {
			maxR = r
		}
		if p.Vel[i].Norm() != 0 {
			t.Fatal("uniform sphere not cold")
		}
	}
	if maxR > 2.1 {
		t.Fatalf("particle outside radius: %v", maxR)
	}
	// Mean radius of a uniform sphere is 3/4 R.
	var mean float64
	for i := range p.Pos {
		mean += p.Pos[i].Norm()
	}
	mean /= float64(p.Len())
	if mean < 1.3 || mean > 1.7 {
		t.Fatalf("mean radius = %v, want ~1.5", mean)
	}
}
