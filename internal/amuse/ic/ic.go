// Package ic generates initial conditions for the paper's evaluation
// workload: Plummer-sphere star clusters with an IMF, and embedded gas
// spheres — the "young stars embedded in a sphere of gas" initial state of
// Fig. 6a. All generators are deterministic given a seed.
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"jungle/internal/amuse/data"
)

// Plummer samples n equal-mass particles from a Plummer sphere in standard
// N-body units (total mass 1, virial radius ~1, G=1), using Aarseth's
// rejection method for the velocities. The set is shifted to its center of
// mass.
func Plummer(n int, seed int64) *data.Particles {
	rng := rand.New(rand.NewSource(seed))
	p := data.NewParticles(n)
	for i := 0; i < n; i++ {
		p.Mass[i] = 1.0 / float64(n)
		p.Pos[i] = plummerPosition(rng)
		p.Vel[i] = plummerVelocity(rng, p.Pos[i])
	}
	p.MoveToCenter()
	return p
}

// plummerPosition samples a radius from the Plummer cumulative mass profile
// M(r) = r³/(1+r²)^(3/2) and a uniform direction. The scale radius here is
// the structural a = 3π/16 of the standard-units model.
func plummerPosition(rng *rand.Rand) data.Vec3 {
	const a = 3 * math.Pi / 16
	// Invert the cumulative mass function: r = a / sqrt(X^(-2/3) - 1).
	x := rng.Float64()
	for x == 0 {
		x = rng.Float64()
	}
	r := a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
	return randomDirection(rng).Scale(r)
}

// plummerVelocity rejection-samples the speed from the isotropic
// distribution f(q) ∝ q²(1−q²)^(7/2), q = v/v_esc.
func plummerVelocity(rng *rand.Rand, pos data.Vec3) data.Vec3 {
	const a = 3 * math.Pi / 16
	r := pos.Norm()
	// Escape velocity in these units: v_esc² = 2/(r²+a²)^(1/2).
	vesc := math.Sqrt(2) * math.Pow(r*r+a*a, -0.25)
	var q float64
	for {
		x := rng.Float64()
		y := rng.Float64() * 0.1 // max of q²(1-q²)^(7/2) is < 0.1
		if y < x*x*math.Pow(1-x*x, 3.5) {
			q = x
			break
		}
	}
	return randomDirection(rng).Scale(q * vesc)
}

func randomDirection(rng *rand.Rand) data.Vec3 {
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	return data.Vec3{s * math.Cos(phi), s * math.Sin(phi), z}
}

// SalpeterIMF samples n stellar masses (in solar masses) from the Salpeter
// power law dN/dm ∝ m^(-2.35) between lo and hi.
func SalpeterIMF(n int, lo, hi float64, seed int64) []float64 {
	const alpha = 2.35
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	// Inverse-CDF sampling of a truncated power law.
	a1 := 1 - alpha
	loA, hiA := math.Pow(lo, a1), math.Pow(hi, a1)
	for i := range out {
		x := rng.Float64()
		out[i] = math.Pow(loA+x*(hiA-loA), 1/a1)
	}
	return out
}

// ClusterSpec configures an embedded star cluster.
type ClusterSpec struct {
	Stars   int     // number of stars
	Gas     int     // number of SPH gas particles
	GasFrac float64 // gas mass fraction of the total (0..1)
	IMFLow  float64 // IMF bounds in solar masses (used for stellar typing)
	IMFHigh float64
	Seed    int64
}

// EmbeddedCluster builds the paper's evaluation workload in N-body units:
// a Plummer star cluster whose masses follow a Salpeter IMF (rescaled so the
// stars' total is 1−GasFrac) embedded in a Plummer gas sphere of total mass
// GasFrac with thermal energy set to half virial. It returns the star set
// and the gas set; together their mass is 1.
func EmbeddedCluster(spec ClusterSpec) (stars, gas *data.Particles, err error) {
	if spec.Stars < 1 || spec.Gas < 0 {
		return nil, nil, fmt.Errorf("ic: invalid cluster spec: %d stars, %d gas", spec.Stars, spec.Gas)
	}
	if spec.GasFrac < 0 || spec.GasFrac >= 1 {
		return nil, nil, fmt.Errorf("ic: gas fraction %v outside [0,1)", spec.GasFrac)
	}
	if spec.IMFLow <= 0 {
		spec.IMFLow = 0.3
	}
	if spec.IMFHigh <= spec.IMFLow {
		spec.IMFHigh = 25
	}

	stars = Plummer(spec.Stars, spec.Seed)
	imf := SalpeterIMF(spec.Stars, spec.IMFLow, spec.IMFHigh, spec.Seed+1)
	var imfTotal float64
	for _, m := range imf {
		imfTotal += m
	}
	starMass := 1 - spec.GasFrac
	for i := range stars.Mass {
		stars.Mass[i] = imf[i] / imfTotal * starMass
		// Age starts at zero; the solar-mass value is what stellar
		// evolution keys on, stored by the coupler via unit conversion.
	}
	stars.MoveToCenter()

	gas = data.NewParticles(0)
	if spec.Gas > 0 {
		gas = Plummer(spec.Gas, spec.Seed+2)
		for i := range gas.Mass {
			gas.Mass[i] = spec.GasFrac / float64(spec.Gas)
			// Thermal support at half the local virial level, spread
			// uniformly: u = 0.05 (N-body specific energy), a warm but
			// bound initial cloud, matching the "sphere of gas" start.
			gas.InternalEnergy[i] = 0.05
			gas.SmoothingLen[i] = 0.1
		}
	}
	return stars, gas, nil
}

// UniformSphere places n equal-mass particles uniformly inside radius r,
// at rest; useful as a cold-collapse test workload.
func UniformSphere(n int, totalMass, r float64, seed int64) *data.Particles {
	rng := rand.New(rand.NewSource(seed))
	p := data.NewParticles(n)
	for i := 0; i < n; i++ {
		p.Mass[i] = totalMass / float64(n)
		rr := r * math.Cbrt(rng.Float64())
		p.Pos[i] = randomDirection(rng).Scale(rr)
	}
	p.MoveToCenter()
	return p
}
