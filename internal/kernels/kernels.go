// Package kernels links the standard worker-kernel adapters into the
// binary. The core layer instantiates workers through the
// internal/core/kernel registry and registers nothing itself, so any
// program (or test) that starts workers must import, for its side
// effects, every adapter package it wants available — this package
// bundles the kinds the paper's evaluation uses:
//
//	import _ "jungle/internal/kernels"
//
// Additional kinds (e.g. internal/phys/analytic) are imported
// individually by the programs that use them. This is the database/sql
// driver pattern: adding a kernel kind never requires a core edit.
package kernels

import (
	_ "jungle/internal/phys/abm"    // agent-based colony (BioDynaMo-style)
	_ "jungle/internal/phys/bridge" // stellar (SSE)
	_ "jungle/internal/phys/nbody"  // gravity (PhiGRAPE)
	_ "jungle/internal/phys/sph"    // hydro (Gadget)
	_ "jungle/internal/phys/tree"   // coupling (Octgrav / Fi)
)
