package smartsockets

import (
	"sync"
	"time"

	"jungle/internal/vnet"
)

// VirtualConn is a bidirectional message connection established by a
// Factory. Depending on how connectivity worked out it is backed either by
// a plain vnet connection (direct and reverse types) or by a routed circuit
// through the hub overlay.
type VirtualConn struct {
	typ         ConnType
	raw         *vnet.Conn
	end         *routedEnd
	remote      Address
	established time.Duration
	route       []string
}

// Type reports how the connection was established.
func (c *VirtualConn) Type() ConnType { return c.typ }

// Remote returns the peer's address (zero port for inbound direct conns).
func (c *VirtualConn) Remote() Address { return c.remote }

// EstablishedAt returns the virtual time at which the connection became
// usable at this endpoint (connection setup through the overlay costs
// virtual time).
func (c *VirtualConn) EstablishedAt() time.Duration { return c.established }

// Route returns the hub hosts relaying a routed connection, in order from
// the dialer's hub to the acceptor's. Direct and reverse connections
// return nil: no hub touches their payload bytes.
func (c *VirtualConn) Route() []string { return c.route }

// SetClass tags the underlying traffic for the recorder. Routed circuits
// ride hub connections, whose class is "hub".
func (c *VirtualConn) SetClass(class string) {
	if c.raw != nil {
		c.raw.SetClass(class)
	}
}

// Send transmits data at the sender's virtual time sentAt.
func (c *VirtualConn) Send(data []byte, sentAt time.Duration) error {
	if c.raw != nil {
		_, err := c.raw.Send(data, sentAt)
		return err
	}
	return c.end.send(data, sentAt)
}

// Recv blocks for the next message; its Arrival field carries the virtual
// delivery time (including hub relay hops for routed connections).
func (c *VirtualConn) Recv() (vnet.Message, error) {
	if c.raw != nil {
		return c.raw.Recv()
	}
	return c.end.recv()
}

// Close tears the connection down on both sides.
func (c *VirtualConn) Close() error {
	if c.raw != nil {
		return c.raw.Close()
	}
	return c.end.closeBoth()
}

// routedEnd is a factory-local endpoint of a routed circuit.
type routedEnd struct {
	factory *Factory
	key     string

	mu     sync.Mutex
	cond   *sync.Cond
	q      []vnet.Message
	closed bool
}

func newRoutedEnd(f *Factory, key string) *routedEnd {
	e := &routedEnd{factory: f, key: key}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *routedEnd) push(m vnet.Message) {
	e.mu.Lock()
	if !e.closed {
		e.q = append(e.q, m)
		e.cond.Signal()
	}
	e.mu.Unlock()
}

func (e *routedEnd) recv() (vnet.Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.q) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.q) == 0 {
		return vnet.Message{}, vnet.ErrClosed
	}
	m := e.q[0]
	e.q = e.q[1:]
	return m, nil
}

func (e *routedEnd) send(data []byte, sentAt time.Duration) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return vnet.ErrClosed
	}
	e.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	return sendFrame(e.factory.hubConn, &frame{
		Kind: kCircuitData, Circuit: e.key, Payload: cp, SentAt: sentAt,
	})
}

func (e *routedEnd) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// closeBoth closes the local end and asks the circuit to dismantle.
func (e *routedEnd) closeBoth() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	f := e.factory
	f.mu.Lock()
	delete(f.circuits, e.key)
	f.mu.Unlock()
	return sendFrame(f.hubConn, &frame{Kind: kCircuitClose, Circuit: e.key})
}
