package smartsockets

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"jungle/internal/vnet"
)

// jungleNet builds a two-site network: site A with an open hub host and a
// client host with the given policy; site B likewise. Sites are linked
// hub-to-hub; clients connect via their site hubs.
type testNet struct {
	net            *vnet.Network
	hubA, hubB     string
	clientA, clntB string
	overlay        *Overlay
}

func newTestNet(t *testing.T, polA, polB vnet.Policy) *testNet {
	t.Helper()
	n := vnet.New()
	mustAdd := func(name, site string, p vnet.Policy) {
		t.Helper()
		if _, err := n.AddHost(name, site, p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("hub-a", "siteA", vnet.Open)
	mustAdd("client-a", "siteA", polA)
	mustAdd("hub-b", "siteB", vnet.Open)
	mustAdd("client-b", "siteB", polB)
	mustLink := func(a, b string, lat time.Duration, bw float64) {
		t.Helper()
		if err := n.AddLink(a, b, lat, bw); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("hub-a", "client-a", 100*time.Microsecond, 1.25e9)
	mustLink("hub-b", "client-b", 100*time.Microsecond, 1.25e9)
	mustLink("hub-a", "hub-b", 5*time.Millisecond, 1.25e8)
	ov, err := StartHubs(n, []string{"hub-a", "hub-b"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ov.Stop)
	return &testNet{net: n, hubA: "hub-a", hubB: "hub-b", clientA: "client-a", clntB: "client-b", overlay: ov}
}

func newFactory(t *testing.T, n *vnet.Network, host string, base int, hub string) *Factory {
	t.Helper()
	f, err := NewFactory(n, host, base, hub)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// exchange verifies a round trip over the virtual connection.
func exchange(t *testing.T, client *VirtualConn, l *Listener) {
	t.Helper()
	if err := client.Send([]byte("ping"), time.Second); err != nil {
		t.Fatalf("send: %v", err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatalf("server recv: %v", err)
	}
	if string(msg.Data) != "ping" {
		t.Fatalf("server got %q", msg.Data)
	}
	if msg.Arrival <= time.Second {
		t.Fatalf("arrival %v not after virtual send time 1s", msg.Arrival)
	}
	if err := server.Send([]byte("pong"), msg.Arrival); err != nil {
		t.Fatalf("server send: %v", err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatalf("client recv: %v", err)
	}
	if string(reply.Data) != "pong" {
		t.Fatalf("client got %q", reply.Data)
	}
	if reply.Arrival <= msg.Arrival {
		t.Fatalf("reply arrival %v not after %v", reply.Arrival, msg.Arrival)
	}
}

func TestAddressRoundTrip(t *testing.T) {
	a := Address{Host: "das4-vu.fe", Port: 17878}
	got, err := ParseAddress(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip %v != %v", got, a)
	}
	if _, err := ParseAddress("no-port"); err == nil {
		t.Fatal("parsed address without port")
	}
	if _, err := ParseAddress("host:abc"); err == nil {
		t.Fatal("parsed address with non-numeric port")
	}
}

func TestDirectConnection(t *testing.T) {
	tn := newTestNet(t, vnet.Open, vnet.Open)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	l, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Type() != Direct {
		t.Fatalf("conn type %v, want direct", conn.Type())
	}
	if conn.EstablishedAt() <= time.Second {
		t.Fatalf("established %v, want after 1s", conn.EstablishedAt())
	}
	exchange(t, conn, l)
	if s := fa.Stats(); s.Direct != 1 || s.Reverse != 0 || s.Routed != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReverseConnection(t *testing.T) {
	// Target B is firewalled (outbound only): direct dial fails, the
	// reverse request travels A-hub -> B-hub -> B, and B dials back.
	tn := newTestNet(t, vnet.Open, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	l, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Type() != Reverse {
		t.Fatalf("conn type %v, want reverse", conn.Type())
	}
	exchange(t, conn, l)
	if s := fa.Stats(); s.Reverse != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The overlay round trip plus dial-back must cost virtual time beyond
	// the WAN latency.
	if conn.EstablishedAt() < time.Second+10*time.Millisecond {
		t.Fatalf("reverse established %v, want >= 1s + overlay round trip", conn.EstablishedAt())
	}
}

func TestRoutedConnection(t *testing.T) {
	// Both ends firewalled: only hub relaying works.
	tn := newTestNet(t, vnet.OutboundOnly, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	l, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Type() != Routed {
		t.Fatalf("conn type %v, want routed", conn.Type())
	}
	exchange(t, conn, l)
	if s := fa.Stats(); s.Routed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRoutedBothDirections(t *testing.T) {
	tn := newTestNet(t, vnet.OutboundOnly, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	l, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	// Many messages in both directions stay ordered and intact.
	for i := 0; i < 20; i++ {
		if err := conn.Send([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Data[0] != byte(i) {
			t.Fatalf("routed message %d out of order: got %d", i, m.Data[0])
		}
	}
	if err := server.Send([]byte("back"), 0); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "back" {
		t.Fatalf("reverse payload %q", m.Data)
	}
}

func TestRoutedClose(t *testing.T) {
	tn := newTestNet(t, vnet.OutboundOnly, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	l, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, vnet.ErrClosed) {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server recv did not unblock after close")
	}
}

func TestConnectNoListener(t *testing.T) {
	tn := newTestNet(t, vnet.Open, vnet.Open)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	_, err := fa.Connect(Address{tn.clntB, 29999}, 0)
	if !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestConnectFirewalledNoListener(t *testing.T) {
	// Firewalled host without the port registered: the overlay NAKs fast
	// because the host is known to hub B.
	tn := newTestNet(t, vnet.Open, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	fa.Timeout = 5 * time.Second // NAK must beat this comfortably
	start := time.Now()
	_, err := fa.Connect(Address{tn.clntB, 29999}, 0)
	if err == nil {
		t.Fatal("connect to unregistered port succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("NAK path too slow: %v", time.Since(start))
	}
}

func TestConnectUnknownHostTimesOut(t *testing.T) {
	tn := newTestNet(t, vnet.Open, vnet.Open)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fa.Timeout = 50 * time.Millisecond
	if _, err := fa.Connect(Address{"ghost-host", 1}, 0); err == nil {
		t.Fatal("connect to unknown host succeeded")
	}
}

func TestListenerMergesConnTypes(t *testing.T) {
	// One listener must accept a direct conn from an open peer and a routed
	// conn from a firewalled peer.
	n := vnet.New()
	hosts := []struct {
		name string
		pol  vnet.Policy
	}{
		{"hub-a", vnet.Open}, {"open-client", vnet.Open},
		{"hub-b", vnet.Open}, {"fw-client", vnet.OutboundOnly},
		{"hub-c", vnet.Open}, {"server", vnet.OutboundOnly},
	}
	site := map[string]string{
		"hub-a": "sa", "open-client": "sa",
		"hub-b": "sb", "fw-client": "sb",
		"hub-c": "sc", "server": "sc",
	}
	for _, h := range hosts {
		if _, err := n.AddHost(h.name, site[h.name], h.pol); err != nil {
			t.Fatal(err)
		}
	}
	links := [][2]string{
		{"hub-a", "open-client"}, {"hub-b", "fw-client"}, {"hub-c", "server"},
		{"hub-a", "hub-b"}, {"hub-b", "hub-c"}, {"hub-a", "hub-c"},
	}
	for _, l := range links {
		if err := n.AddLink(l[0], l[1], time.Millisecond, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	ov, err := StartHubs(n, []string{"hub-a", "hub-b", "hub-c"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()

	server := newFactory(t, n, "server", 20000, "hub-c")
	l, err := server.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	openC := newFactory(t, n, "open-client", 20000, "hub-a")
	fwC := newFactory(t, n, "fw-client", 20000, "hub-b")

	// The server is firewalled: open-client gets a reverse conn (server can
	// dial back to the open client), fw-client must be routed.
	c1, err := openC.Connect(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Type() != Reverse {
		t.Fatalf("open client conn type %v, want reverse", c1.Type())
	}
	c2, err := fwC.Connect(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Type() != Routed {
		t.Fatalf("fw client conn type %v, want routed", c2.Type())
	}
}

func TestOverlayEdgesDirect(t *testing.T) {
	tn := newTestNet(t, vnet.Open, vnet.Open)
	edges := tn.overlay.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want 1", edges)
	}
	if edges[0].Type != EdgeDirect {
		t.Fatalf("edge type %v, want direct", edges[0].Type)
	}
	if !tn.overlay.Connected() {
		t.Fatal("overlay not connected")
	}
}

func TestOverlaySSHTunnel(t *testing.T) {
	// Hub B runs on an SSH-only front-end: hub A must tunnel.
	n := vnet.New()
	if _, err := n.AddHost("hub-a", "sa", vnet.Open); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("hub-b", "sb", vnet.SSHOnly); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("hub-a", "hub-b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	ov, err := StartHubs(n, []string{"hub-a", "hub-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()
	edges := ov.Edges()
	if len(edges) != 1 || edges[0].Type != EdgeSSH {
		t.Fatalf("edges %+v, want one ssh tunnel", edges)
	}
	m := ov.RenderMap()
	if !strings.Contains(m, "ssh-tunnel") {
		t.Fatalf("render map missing ssh tunnel:\n%s", m)
	}
}

func TestOverlayOneWay(t *testing.T) {
	// Hub B is fully firewalled: only B->A links can form (the Fig. 10
	// arrows). B can still participate via its outbound link.
	n := vnet.New()
	if _, err := n.AddHost("hub-a", "sa", vnet.Open); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("hub-b", "sb", vnet.OutboundOnly); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("hub-a", "hub-b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	ov, err := StartHubs(n, []string{"hub-a", "hub-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()
	edges := ov.Edges()
	if len(edges) != 1 || edges[0].Type != EdgeOneWay {
		t.Fatalf("edges %+v, want one one-way link", edges)
	}
	if !ov.Connected() {
		t.Fatal("one-way overlay should still count as connected")
	}
}

func TestOverlayGossipDiscovery(t *testing.T) {
	// A knows B, B knows C; gossip must let A discover C.
	n := vnet.New()
	for _, h := range []string{"ha", "hb", "hc"} {
		if _, err := n.AddHost(h, h, vnet.Open); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddLink("ha", "hb", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("hb", "hc", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	ha, err := NewHub(n, "ha")
	if err != nil {
		t.Fatal(err)
	}
	defer ha.Stop()
	hb, err := NewHub(n, "hb")
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Stop()
	hc, err := NewHub(n, "hc")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Stop()
	if err := hb.ConnectTo("hc"); err != nil {
		t.Fatal(err)
	}
	if err := ha.ConnectTo("hb"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		known := ha.KnownHubs()
		if len(known) == 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gossip did not spread: ha knows %v", ha.KnownHubs())
}

// TestRandomJungleConnectivity is the package's core property test: in any
// random topology where every site hub is mutually reachable at the network
// level and every client can reach its site hub, any client connects to any
// listening client — whatever the firewall policies — exactly the paper's
// requirement 2 ("the application should be able to communicate between all
// resources").
func TestRandomJungleConnectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	policies := []vnet.Policy{vnet.Open, vnet.OutboundOnly}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := vnet.New()
		sites := 2 + rng.Intn(3) // 2..4 sites
		var hubs, clients []string
		for s := 0; s < sites; s++ {
			hub := fmt.Sprintf("hub-%d", s)
			client := fmt.Sprintf("client-%d", s)
			if _, err := n.AddHost(hub, fmt.Sprintf("site-%d", s), vnet.Open); err != nil {
				t.Fatal(err)
			}
			pol := policies[rng.Intn(len(policies))]
			if _, err := n.AddHost(client, fmt.Sprintf("site-%d", s), pol); err != nil {
				t.Fatal(err)
			}
			if err := n.AddLink(hub, client, 100*time.Microsecond, 1e9); err != nil {
				t.Fatal(err)
			}
			hubs = append(hubs, hub)
			clients = append(clients, client)
		}
		// Random spanning tree over hubs plus extra random edges.
		for s := 1; s < sites; s++ {
			if err := n.AddLink(hubs[s], hubs[rng.Intn(s)], time.Millisecond, 1e9); err != nil {
				t.Fatal(err)
			}
		}
		ov, err := StartHubs(n, hubs)
		if err != nil {
			t.Fatal(err)
		}
		var fs []*Factory
		var ls []*Listener
		ok := true
		for i, c := range clients {
			f, err := NewFactory(n, c, 20000, hubs[i])
			if err != nil {
				t.Errorf("trial %d: factory on %s: %v", trial, c, err)
				ok = false
				break
			}
			fs = append(fs, f)
			l, err := f.Listen(21000)
			if err != nil {
				t.Errorf("trial %d: listen on %s: %v", trial, c, err)
				ok = false
				break
			}
			ls = append(ls, l)
		}
		if ok {
			for i := range fs {
				for j := range ls {
					if i == j {
						continue
					}
					conn, err := fs[i].Connect(ls[j].Addr(), 0)
					if err != nil {
						t.Errorf("trial %d: %s -> %s failed: %v", trial, clients[i], clients[j], err)
						continue
					}
					if err := conn.Send([]byte("x"), 0); err != nil {
						t.Errorf("trial %d: send %s -> %s: %v", trial, clients[i], clients[j], err)
					}
					conn.Close()
				}
			}
		}
		for _, f := range fs {
			f.Close()
		}
		ov.Stop()
	}
}
