package smartsockets

import (
	"sync"
	"testing"
	"time"

	"jungle/internal/vnet"
)

// goodputSink records goodput reports for assertions.
type goodputSink struct {
	mu      sync.Mutex
	samples map[[2]string]float64
}

func (s *goodputSink) RecordTraffic(from, to, class string, bytes int) {}

func (s *goodputSink) RecordGoodput(from, to string, bw float64, at time.Duration) {
	s.mu.Lock()
	if s.samples == nil {
		s.samples = make(map[[2]string]float64)
	}
	s.samples[[2]string{from, to}] = bw
	s.mu.Unlock()
}

// serveProbes accepts connections on l and runs the probe responder for
// each, dispatching on the first frame's tag the way the peer data plane
// does.
func serveProbes(t *testing.T, f *Factory, l *Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				msg, err := conn.Recv()
				if err != nil {
					conn.Close()
					return
				}
				if !IsProbeFrame(msg.Data) {
					conn.Close()
					return
				}
				f.ServeProbeConn(conn, msg.Data, msg.Arrival)
			}()
		}
	}()
}

// TestProbeGoodputOneWayLink: the responder is firewalled (outbound-only in
// another site), so the factory falls back to reverse connection setup —
// the dial-back still crosses the same physical link, and the measured
// goodput must match that link's configured bandwidth.
func TestProbeGoodputOneWayLink(t *testing.T) {
	n := vnet.New()
	sink := &goodputSink{}
	n.SetRecorder(sink)
	hosts := []struct {
		name, site string
		pol        vnet.Policy
	}{
		{"prober", "sa", vnet.Open},
		{"resp", "sb", vnet.OutboundOnly},
		{"hub", "sa", vnet.Open},
	}
	for _, h := range hosts {
		if _, err := n.AddHost(h.name, h.site, h.pol); err != nil {
			t.Fatal(err)
		}
	}
	const linkBW = 5e7
	// The prober<->responder link is the lowest-latency path; hub links are
	// slower so the dial-back is never routed around it.
	if err := n.AddLink("prober", "resp", time.Millisecond, linkBW); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"prober", "resp"} {
		if err := n.AddLink(h, "hub", 5*time.Millisecond, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	ov, err := StartHubs(n, []string{"hub"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()

	fp := newFactory(t, n, "prober", 20000, "hub")
	fr := newFactory(t, n, "resp", 20000, "hub")
	l, err := fr.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	serveProbes(t, fr, l)

	bw, doneAt, err := fp.Goodput(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if doneAt <= time.Second {
		t.Fatalf("doneAt = %v, want > sentAt: probing must cost virtual time", doneAt)
	}
	if bw < linkBW*0.9 || bw > linkBW*1.1 {
		t.Fatalf("measured goodput %.3g, want within 10%% of %.3g", bw, linkBW)
	}

	// The measurement must be reported for the link-health view.
	sink.mu.Lock()
	got := sink.samples[[2]string{"prober", "resp"}]
	sink.mu.Unlock()
	if got != bw {
		t.Fatalf("recorded goodput %.3g, want %.3g", got, bw)
	}

	// Cache: a fresh sample is served without re-probing (zero virtual
	// cost), a stale one re-probes.
	bw2, doneAt2, err := fp.Goodput(l.Addr(), doneAt+time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bw2 != bw || doneAt2 != doneAt+time.Second {
		t.Fatalf("cached Goodput = (%.3g, %v), want (%.3g, %v)", bw2, doneAt2, bw, doneAt+time.Second)
	}
	stale := doneAt + fp.ProbeTTL + time.Second
	_, doneAt3, err := fp.Goodput(l.Addr(), stale)
	if err != nil {
		t.Fatal(err)
	}
	if doneAt3 <= stale {
		t.Fatalf("stale Goodput doneAt = %v, want > %v (re-probe)", doneAt3, stale)
	}
}

// TestBulkClassRoutesAroundDecoy builds the 3-hub topology of the
// acceptance criteria: a direct h1-h3 link that is low-latency but
// low-bandwidth (the decoy) and a two-hop h1-h2-h3 path of fat links.
// Default-class circuits must keep preferring the decoy (lowest virtual
// latency); bulk-class circuits must route around it via h2.
func TestBulkClassRoutesAroundDecoy(t *testing.T) {
	n := vnet.New()
	hosts := []struct {
		name, site string
		pol        vnet.Policy
	}{
		{"h1", "s1", vnet.Open},
		{"h2", "s2", vnet.Open},
		{"h3", "s3", vnet.Open},
		// Both clients are firewalled so neither direct nor reverse setup
		// works and every connection is hub-routed.
		{"c1", "s1", vnet.OutboundOnly},
		{"c3", "s3", vnet.OutboundOnly},
	}
	for _, h := range hosts {
		if _, err := n.AddHost(h.name, h.site, h.pol); err != nil {
			t.Fatal(err)
		}
	}
	links := []struct {
		a, b string
		lat  time.Duration
		bw   float64
	}{
		{"c1", "h1", 100 * time.Microsecond, 1e9},
		{"c3", "h3", 100 * time.Microsecond, 1e9},
		{"h1", "h3", time.Millisecond, 1e6}, // decoy: fast to open, slow to use
		{"h1", "h2", 2 * time.Millisecond, 1.25e9},
		{"h2", "h3", 2 * time.Millisecond, 1.25e9},
	}
	for _, l := range links {
		if err := n.AddLink(l.a, l.b, l.lat, l.bw); err != nil {
			t.Fatal(err)
		}
	}
	ov, err := StartHubs(n, []string{"h1", "h2", "h3"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()

	f1 := newFactory(t, n, "c1", 20000, "h1")
	f3 := newFactory(t, n, "c3", 20000, "h3")
	l, err := f3.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}

	assertRoute := func(conn *VirtualConn, want ...string) {
		t.Helper()
		if conn.Type() != Routed {
			t.Fatalf("conn type %v, want routed", conn.Type())
		}
		route := conn.Route()
		if len(route) != len(want) {
			t.Fatalf("route = %v, want %v", route, want)
		}
		for i := range want {
			if route[i] != want[i] {
				t.Fatalf("route = %v, want %v", route, want)
			}
		}
	}

	rpc, err := f1.Connect(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rpc.Close()
	assertRoute(rpc, "h1", "h3")

	bulk, err := f1.ConnectClass(l.Addr(), time.Second, "bulk")
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	assertRoute(bulk, "h1", "h2", "h3")
}
