package smartsockets

import (
	"errors"
	"testing"
	"time"

	"jungle/internal/vnet"
)

// lineNet builds a three-site chain where the end hubs cannot link
// directly: ha and hc are outbound-only, so the only edges are the
// one-way links ha->hb and hc->hb, and any ha-site to hc-site circuit
// must be relayed multi-hop through hb.
func lineNet(t *testing.T) (*vnet.Network, *Overlay) {
	t.Helper()
	n := vnet.New()
	add := func(name, site string, p vnet.Policy) {
		t.Helper()
		if _, err := n.AddHost(name, site, p); err != nil {
			t.Fatal(err)
		}
	}
	add("ha", "sa", vnet.OutboundOnly)
	add("hb", "sb", vnet.Open)
	add("hc", "sc", vnet.OutboundOnly)
	add("ca", "sa", vnet.OutboundOnly)
	add("cc", "sc", vnet.OutboundOnly)
	links := [][2]string{{"ha", "hb"}, {"hb", "hc"}, {"ha", "ca"}, {"hc", "cc"}}
	for _, l := range links {
		if err := n.AddLink(l[0], l[1], time.Millisecond, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	ov, err := StartHubs(n, []string{"ha", "hb", "hc"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ov.Stop)
	return n, ov
}

// TestRoutedMultiHopMatchesOverlayEdges: with both clients firewalled and
// the end hubs mutually unreachable, a connection must be routed across
// every hub of the chain — and the hub pairs it traverses must be exactly
// overlay links, with the link types Edges() reports (one-way here, since
// the outbound-only end hubs can dial but never accept).
func TestRoutedMultiHopMatchesOverlayEdges(t *testing.T) {
	n, ov := lineNet(t)

	// The overlay must have formed only the two chain links, both one-way.
	edges := ov.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %+v, want the two chain links", edges)
	}
	for _, e := range edges {
		if e.Type != EdgeOneWay {
			t.Fatalf("edge %s-%s type %v, want one-way", e.A, e.B, e.Type)
		}
	}
	if !ov.Connected() {
		t.Fatal("chain overlay should be connected")
	}

	fa := newFactory(t, n, "ca", 20000, "ha")
	fc := newFactory(t, n, "cc", 20000, "hc")
	l, err := fc.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fa.Connect(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Type() != Routed {
		t.Fatalf("conn type %v, want routed", conn.Type())
	}
	route := conn.Route()
	want := []string{"ha", "hb", "hc"}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	edgeType := func(a, b string) (EdgeType, bool) {
		if a > b {
			a, b = b, a
		}
		for _, e := range ov.Edges() {
			if e.A == a && e.B == b {
				return e.Type, true
			}
		}
		return 0, false
	}
	for i := range route {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
		if i == 0 {
			continue
		}
		// Every consecutive hub pair on the circuit is an overlay link of
		// the advertised type.
		typ, ok := edgeType(route[i-1], route[i])
		if !ok {
			t.Fatalf("route hop %s-%s is not an overlay edge (%+v)", route[i-1], route[i], ov.Edges())
		}
		if typ != EdgeOneWay {
			t.Fatalf("route hop %s-%s type %v, want one-way", route[i-1], route[i], typ)
		}
	}
	// The relayed circuit must carry data with per-hop virtual cost: two
	// WAN hops plus hub processing on each of the three hubs.
	if err := conn.Send([]byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if minArrival := time.Second + 2*time.Millisecond + 3*hubProcessing; msg.Arrival < minArrival {
		t.Fatalf("multi-hop arrival %v, want >= %v", msg.Arrival, minArrival)
	}
}

// TestDisconnectedOverlayCleanDialError: two islands whose hubs cannot
// reach each other in either direction. Connected() must report false and
// a cross-island dial must fail with the structured connect error rather
// than hanging.
func TestDisconnectedOverlayCleanDialError(t *testing.T) {
	n := vnet.New()
	add := func(name, site string, p vnet.Policy) {
		t.Helper()
		if _, err := n.AddHost(name, site, p); err != nil {
			t.Fatal(err)
		}
	}
	// Both hubs firewalled: neither can accept the other's hub link.
	add("ha", "sa", vnet.OutboundOnly)
	add("hc", "sc", vnet.OutboundOnly)
	add("ca", "sa", vnet.OutboundOnly)
	add("cc", "sc", vnet.OutboundOnly)
	for _, l := range [][2]string{{"ha", "hc"}, {"ha", "ca"}, {"hc", "cc"}} {
		if err := n.AddLink(l[0], l[1], time.Millisecond, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	ov, err := StartHubs(n, []string{"ha", "hc"})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Stop()
	if ov.Connected() {
		t.Fatalf("overlay claims connectivity with no edges: %+v", ov.Edges())
	}

	fa := newFactory(t, n, "ca", 20000, "ha")
	fc := newFactory(t, n, "cc", 20000, "hc")
	l, err := fc.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	fa.Timeout = 100 * time.Millisecond
	_, err = fa.Connect(l.Addr(), 0)
	if err == nil {
		t.Fatal("dial across a disconnected overlay succeeded")
	}
	if !errors.Is(err, ErrConnectFailed) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrConnectFailed or ErrTimeout", err)
	}
}

// TestRouteEmptyForDirectAndReverse: only routed connections expose a hub
// route; direct and reverse payloads never touch a hub.
func TestRouteEmptyForDirectAndReverse(t *testing.T) {
	tn := newTestNet(t, vnet.Open, vnet.OutboundOnly)
	fa := newFactory(t, tn.net, tn.clientA, 20000, tn.hubA)
	fb := newFactory(t, tn.net, tn.clntB, 20000, tn.hubB)
	lb, err := fb.Listen(21000)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := fa.Connect(lb.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Type() != Reverse || rev.Route() != nil {
		t.Fatalf("reverse conn type %v route %v, want reverse/nil", rev.Type(), rev.Route())
	}
	la, err := fa.Listen(21001)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := fb.Connect(la.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Type() != Direct || dir.Route() != nil {
		t.Fatalf("direct conn type %v route %v, want direct/nil", dir.Type(), dir.Route())
	}
}
