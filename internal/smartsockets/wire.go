package smartsockets

import (
	"bytes"
	"encoding/gob"
	"time"

	"jungle/internal/vnet"
)

// frame is the single wire format used on hub-hub and client-hub
// connections. Kind selects which fields are meaningful.
type frame struct {
	Kind byte

	// Hub protocol.
	Hub  string   // sender hub (hello/gossip)
	Hubs []string // known hubs (gossip)

	// Client registration.
	Host string
	Port int

	// Overlay routing (flooded frames carry the path of hubs visited; acks
	// and closes follow the recorded path backwards).
	Src, Dst Address
	Circuit  string
	Path     []string
	Payload  []byte
	// Route is the full hub path of an established circuit, copied into
	// the kCircuitAck by the accepting factory. Unlike Path it is not
	// consumed by the backtrack, so the dialer learns which hubs relay
	// its traffic (Fig. 10's routed lines).
	Route []string

	// Reverse connection setup.
	ReqID     uint64
	ReplyPort int

	// Connection class of a circuit open ("" = default RPC class, routed
	// by lowest virtual latency). Bulk-class opens are routed by bottleneck
	// bandwidth instead: each hub folds the bandwidth of the hop the frame
	// just crossed into MinBW, and the destination hub picks the copy with
	// the widest bottleneck. Both fields are zero on default-class frames,
	// so gob's zero-field omission keeps the wire bytes unchanged.
	Class string
	MinBW float64

	// Virtual clock of the sender when the frame was emitted; relays
	// re-stamp with their arrival time plus processing delay.
	SentAt time.Duration
}

const (
	kHello        byte = iota // hub -> hub: identify + known hubs
	kGossip                   // hub -> hub: known hub list update
	kRegister                 // client -> hub: claim (host, port)
	kUnregister               // client -> hub: release (host, port)
	kReverseReq               // flooded: ask Dst to dial back Src:ReplyPort
	kCircuitOpen              // flooded: open a routed circuit to Dst
	kCircuitAck               // backtracks Path: circuit established
	kCircuitNak               // backtracks Path: circuit refused
	kCircuitData              // follows circuit table
	kCircuitClose             // follows circuit table, dismantling it
	kDialbackOK               // first frame on a reverse dial-back conn
	kRegisterAck              // hub -> client: (host, port) registration stored
)

// hubProcessing is the virtual per-hop processing delay a hub adds when
// relaying a frame.
const hubProcessing = 200 * time.Microsecond

func encodeFrame(f *frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFrame(data []byte) (*frame, error) {
	f := new(frame)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(f); err != nil {
		return nil, err
	}
	return f, nil
}

// sendFrame encodes and transmits f over c.
func sendFrame(c *vnet.Conn, f *frame) error {
	data, err := encodeFrame(f)
	if err != nil {
		return err
	}
	_, err = c.Send(data, f.SentAt)
	return err
}

// recvFrame receives and decodes one frame; the frame's SentAt is replaced
// by its virtual arrival time so handlers can re-stamp relayed copies.
func recvFrame(c *vnet.Conn) (*frame, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	f, err := decodeFrame(msg.Data)
	if err != nil {
		return nil, err
	}
	f.SentAt = msg.Arrival
	return f, nil
}
