package smartsockets

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"jungle/internal/vnet"
)

// Goodput probing, after the netio benchmark the paper's deployment notes
// rely on: the client streams sized payloads to a responder, the responder
// acknowledges each with a digest, and the client derives the achievable
// bandwidth from the timing difference of two differently sized payloads —
// cancelling path latency and per-hop processing, which are identical for
// both. Probe traffic rides ordinary virtual connections, so it consumes
// modeled bandwidth and shows up in the traffic recorder under class
// "probe".

// ProbeFrameTag is the first byte of every probe frame. It is disjoint from
// the kernel wire tags, so a listener serving mixed traffic (e.g. the peer
// data plane) can dispatch inbound connections on their first byte.
const ProbeFrameTag byte = 0x42 // 'B'

const (
	probeData byte = 0x01 // client -> responder: digest + sized payload
	probeAck  byte = 0x02 // responder -> client: digest echo
)

// Probe payload sizes. The measurement uses the wire-byte difference of the
// two, so absolute sizes only set the virtual cost of a probe.
const (
	probeSmall = 4 << 10
	probeLarge = 64 << 10
)

// ErrProbeFailed reports an unusable probe exchange (bad frame, digest
// mismatch, or non-positive timing delta).
var ErrProbeFailed = errors.New("smartsockets: goodput probe failed")

type goodputEntry struct {
	bw float64
	at time.Duration // virtual time of the measurement
}

// fnv1a64 is the digest used to verify probe payload integrity.
func fnv1a64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, x := range b {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

// probePayload fills a deterministic pseudo-random payload of n bytes
// (xorshift64), so digests are stable across runs.
func probePayload(n int) []byte {
	b := make([]byte, n)
	s := uint64(0x9E3779B97F4A7C15)
	for i := 0; i+8 <= n; i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		binary.LittleEndian.PutUint64(b[i:], s)
	}
	return b
}

// appendProbeData builds a probe data frame: tag, kind, digest, length,
// payload.
func appendProbeData(payload []byte) []byte {
	b := make([]byte, 0, 14+len(payload))
	b = append(b, ProbeFrameTag, probeData)
	b = binary.BigEndian.AppendUint64(b, fnv1a64(payload))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

func appendProbeAck(digest uint64) []byte {
	b := make([]byte, 0, 10)
	b = append(b, ProbeFrameTag, probeAck)
	return binary.BigEndian.AppendUint64(b, digest)
}

// IsProbeFrame reports whether a message opens the probe protocol.
func IsProbeFrame(data []byte) bool {
	return len(data) >= 2 && data[0] == ProbeFrameTag
}

// parseProbeData validates a probe data frame and returns its digest.
func parseProbeData(b []byte) (uint64, error) {
	if len(b) < 14 || b[0] != ProbeFrameTag || b[1] != probeData {
		return 0, fmt.Errorf("%w: bad data frame", ErrProbeFailed)
	}
	digest := binary.BigEndian.Uint64(b[2:])
	n := binary.BigEndian.Uint32(b[10:])
	if len(b) != 14+int(n) {
		return 0, fmt.Errorf("%w: truncated data frame", ErrProbeFailed)
	}
	if fnv1a64(b[14:]) != digest {
		return 0, fmt.Errorf("%w: payload digest mismatch", ErrProbeFailed)
	}
	return digest, nil
}

// ServeProbeConn runs the responder side of the probe protocol on an
// accepted connection whose first message is first (already read by the
// caller's dispatcher). It acknowledges each verified payload at its
// virtual arrival time and returns when the client closes the connection
// or a frame fails verification. The caller usually runs it in its own
// goroutine.
func (f *Factory) ServeProbeConn(conn *VirtualConn, first []byte, arrival time.Duration) {
	defer conn.Close()
	data, at := first, arrival
	for {
		digest, err := parseProbeData(data)
		if err != nil {
			return
		}
		if err := conn.Send(appendProbeAck(digest), at); err != nil {
			return
		}
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		data, at = msg.Data, msg.Arrival
	}
}

// ServeGoodput runs a stand-alone goodput responder on a listener: it
// accepts connections, dispatches those opening the probe protocol to
// ServeProbeConn and drops anything else, until the listener closes.
// The peer data plane embeds the same dispatch in its own accept loop;
// this helper serves hosts that run no peer plane — the calibration
// pass stands one up per probed host.
func (f *Factory) ServeGoodput(l *Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func(conn *VirtualConn) {
			msg, err := conn.Recv()
			if err != nil || !IsProbeFrame(msg.Data) {
				conn.Close()
				return
			}
			f.ServeProbeConn(conn, msg.Data, msg.Arrival)
		}(conn)
	}
}

// Goodput returns the measured goodput (bytes/second) from this factory's
// host to the peer's probe responder at target. Measurements are cached:
// a sample younger than ProbeTTL (in virtual time) is returned without
// network traffic and doneAt == sentAt; otherwise a probe exchange runs
// over the overlay, costing virtual time and modeled bandwidth, and doneAt
// reports its virtual completion. Successful measurements are reported to
// the network's goodput recorder for the per-link health view.
func (f *Factory) Goodput(target Address, sentAt time.Duration) (bw float64, doneAt time.Duration, err error) {
	f.mu.Lock()
	e, ok := f.goodput[target]
	f.mu.Unlock()
	if ok && sentAt-e.at <= f.ProbeTTL {
		return e.bw, sentAt, nil
	}
	bw, doneAt, err = f.probe(target, sentAt)
	if err != nil {
		return 0, sentAt, err
	}
	f.mu.Lock()
	f.goodput[target] = goodputEntry{bw: bw, at: doneAt}
	f.mu.Unlock()
	f.net.RecordGoodput(f.host, target.Host, bw, doneAt)
	return bw, doneAt, nil
}

// probe runs one two-payload measurement against target's responder.
func (f *Factory) probe(target Address, sentAt time.Duration) (float64, time.Duration, error) {
	conn, err := f.Connect(target, sentAt)
	if err != nil {
		return 0, sentAt, err
	}
	defer conn.Close()
	conn.SetClass("probe")

	small, large := appendProbeData(probePayload(probeSmall)), appendProbeData(probePayload(probeLarge))
	t0 := conn.EstablishedAt()
	t1, err := f.probeRound(conn, small, t0)
	if err != nil {
		return 0, sentAt, err
	}
	t2, err := f.probeRound(conn, large, t1)
	if err != nil {
		return 0, sentAt, err
	}
	// Both rounds pay the same latency, per-hop processing and ack cost;
	// the timing difference is pure serialization of the extra bytes. Over a
	// multi-hop path that is the sum of per-link serialization times, so the
	// per-byte cost composes harmonically across the crossed links.
	delta := (t2 - t1) - (t1 - t0)
	if delta <= 0 {
		return 0, sentAt, fmt.Errorf("%w: non-positive timing delta", ErrProbeFailed)
	}
	perByte := delta.Seconds() / float64(len(large)-len(small))
	// A routed circuit whose endpoint is colocated with its hub attaches
	// over a loopback leg; its store-and-forward cost is modeled IPC, not
	// network. Discount the legs the factory can identify from the route, so
	// the reported goodput is the network path's — the figure bulk-class
	// routing decides on.
	if conn.Type() == Routed {
		if route := conn.Route(); len(route) > 0 {
			loop := 0.0
			if f.host == route[0] {
				loop++
			}
			if target.Host == route[len(route)-1] {
				loop++
			}
			if corrected := perByte - loop/vnet.LoopbackBandwidth; corrected > 0 {
				perByte = corrected
			}
		}
	}
	return 1 / perByte, t2, nil
}

// probeRound sends one data frame at the given virtual time and returns the
// virtual arrival of its verified ack.
func (f *Factory) probeRound(conn *VirtualConn, data []byte, at time.Duration) (time.Duration, error) {
	if err := conn.Send(data, at); err != nil {
		return 0, err
	}
	msg, err := conn.Recv()
	if err != nil {
		return 0, err
	}
	if len(msg.Data) != 10 || msg.Data[0] != ProbeFrameTag || msg.Data[1] != probeAck ||
		binary.BigEndian.Uint64(msg.Data[2:]) != binary.BigEndian.Uint64(data[2:]) {
		return 0, fmt.Errorf("%w: bad ack", ErrProbeFailed)
	}
	return msg.Arrival, nil
}
