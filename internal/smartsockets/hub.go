package smartsockets

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"jungle/internal/vnet"
)

// Hub is one node of the SmartSockets overlay network. Hubs run on
// well-connected machines (cluster front-ends in the paper) and relay
// control and, if necessary, application traffic between sites whose
// machines cannot connect directly.
type Hub struct {
	host string
	net  *vnet.Network

	mu         sync.Mutex
	conns      map[string]*vnet.Conn // identity -> primary conn ("h:<host>" or "c#<n>")
	allConns   []*vnet.Conn          // every conn with a readLoop, incl. non-primary duplicates
	edges      map[string]EdgeType   // peer hub host -> edge type
	known      map[string]bool       // gossiped hub hosts
	clients    map[Address]string    // registered service address -> client identity
	hosts      map[string]bool       // hosts with at least one registered client
	circuits   map[string]*circuit
	seen       map[string]bool         // flood dedup
	opens      map[string]*pendingOpen // circuit opens settling at this (destination) hub
	nextClient int
	closed     bool

	listeners []*vnet.Listener
	wg        sync.WaitGroup
}

type circuit struct {
	aID, bID string // identities of the two neighbors of this hub on the circuit
}

// pendingOpen collects the flooded copies of one circuit open at the
// destination hub. Copies arrive in real time, but the path that matters
// is the lowest *virtual* latency one — real goroutine scheduling is
// uncorrelated with modelled link latency, so first-arrival selection
// could relay bulk data over a transatlantic detour two sites never
// needed. The hub lets the copies settle briefly and delivers the
// earliest-SentAt one.
type pendingOpen struct {
	dstID string
	best  frame
	// delivered tombstones the entry once the settle timer fired: a copy
	// straggling in on a long path must not open the circuit a second
	// time (a duplicate open would replace the factory's circuit end and
	// orphan frames already in flight on the first).
	delivered bool
}

// openSettle is the real-time window the destination hub waits for
// flooded circuit-open copies before picking the lowest-virtual-latency
// path.
const openSettle = 2 * time.Millisecond

// HubEdge describes one overlay link as seen from a hub.
type HubEdge struct {
	Local, Peer string
	Type        EdgeType
}

// NewHub creates a hub on the given host and starts its listeners (the hub
// port and, to emulate tunnelling via sshd, the SSH port).
func NewHub(network *vnet.Network, host string) (*Hub, error) {
	h := &Hub{
		host:     host,
		net:      network,
		conns:    make(map[string]*vnet.Conn),
		edges:    make(map[string]EdgeType),
		known:    map[string]bool{host: true},
		clients:  make(map[Address]string),
		hosts:    make(map[string]bool),
		circuits: make(map[string]*circuit),
		seen:     make(map[string]bool),
		opens:    make(map[string]*pendingOpen),
	}
	for _, port := range []int{HubPort, vnet.SSHPort} {
		l, err := network.Listen(host, port)
		if err != nil {
			h.Stop()
			return nil, fmt.Errorf("smartsockets: hub %s: %w", host, err)
		}
		h.listeners = append(h.listeners, l)
		h.wg.Add(1)
		go h.acceptLoop(l, port)
	}
	return h, nil
}

// Host returns the host this hub runs on.
func (h *Hub) Host() string { return h.host }

// Stop shuts the hub down.
func (h *Hub) Stop() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := append([]*vnet.Conn(nil), h.allConns...)
	h.mu.Unlock()
	for _, l := range h.listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	h.wg.Wait()
}

// ConnectTo attempts to establish an overlay link to a peer hub: first a
// direct dial to the hub port, then an SSH tunnel via the peer's front-end
// sshd. If neither works the peer may still connect to us (a one-way link).
func (h *Hub) ConnectTo(peerHost string) error {
	h.mu.Lock()
	if _, ok := h.conns["h:"+peerHost]; ok || peerHost == h.host {
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()

	conn, err := h.net.Dial(h.host, peerHost, HubPort)
	edge := EdgeDirect
	if err != nil {
		conn, err = h.net.Dial(h.host, peerHost, vnet.SSHPort)
		edge = EdgeSSH
	}
	if err != nil {
		return fmt.Errorf("smartsockets: hub %s cannot reach hub %s: %w", h.host, peerHost, err)
	}
	conn.SetClass("hub")
	if edge == EdgeDirect {
		// If the peer could not have dialed us, the link is one-way.
		if ok, _ := h.net.AllowsInboundFrom(h.host, peerHost, HubPort); !ok {
			edge = EdgeOneWay
		}
	}
	hello := &frame{Kind: kHello, Hub: h.host, Hubs: h.knownHubs()}
	if err := sendFrame(conn, hello); err != nil {
		conn.Close()
		return err
	}
	h.addPeer(peerHost, conn, edge)
	return nil
}

func (h *Hub) knownHubs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.known))
	for k := range h.known {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// addPeer records a hub-hub connection and starts its reader. The first
// connection per peer becomes the primary used for sending.
func (h *Hub) addPeer(peerHost string, conn *vnet.Conn, edge EdgeType) {
	id := "h:" + peerHost
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	primary := false
	if _, ok := h.conns[id]; !ok {
		h.conns[id] = conn
		primary = true
	}
	h.allConns = append(h.allConns, conn)
	// Parallel connection attempts in both directions race; keep the
	// strongest edge classification (direct > ssh > one-way) rather than
	// letting the last arrival downgrade an established tunnel.
	if cur, ok := h.edges[peerHost]; !ok || edgeRank(edge) > edgeRank(cur) {
		h.edges[peerHost] = edge
	}
	h.known[peerHost] = true
	h.mu.Unlock()
	h.wg.Add(1)
	go h.readLoop(id, conn, primary)
}

// edgeRank orders edge types by connectivity strength.
func edgeRank(t EdgeType) int {
	switch t {
	case EdgeDirect:
		return 2
	case EdgeSSH:
		return 1
	default:
		return 0
	}
}

// Edges returns this hub's overlay links, sorted by peer.
func (h *Hub) Edges() []HubEdge {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HubEdge, 0, len(h.edges))
	for peer, t := range h.edges {
		out = append(out, HubEdge{Local: h.host, Peer: peer, Type: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// KnownHubs returns the gossiped set of hub hosts (including this one).
func (h *Hub) KnownHubs() []string { return h.knownHubs() }

func (h *Hub) acceptLoop(l *vnet.Listener, port int) {
	defer h.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.SetClass("hub")
		h.wg.Add(1)
		go h.handleInbound(conn, port)
	}
}

// handleInbound classifies a new connection by its first frame: a hub hello
// or a client registration.
func (h *Hub) handleInbound(conn *vnet.Conn, port int) {
	defer h.wg.Done()
	f, err := recvFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	switch f.Kind {
	case kHello:
		edge := EdgeDirect
		if port == vnet.SSHPort {
			edge = EdgeSSH
		} else if ok, _ := h.net.AllowsInboundFrom(f.Hub, h.host, HubPort); !ok {
			edge = EdgeOneWay
		}
		h.addPeer(f.Hub, conn, edge) // reader started inside
		h.mergeHubs(f.Hubs)
		// Share our own view with the newcomer so gossip flows both ways.
		h.sendTo("h:"+f.Hub, &frame{Kind: kGossip, Hub: h.host, Hubs: h.knownHubs()})
	case kRegister:
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.nextClient++
		id := fmt.Sprintf("c#%d", h.nextClient)
		h.conns[id] = conn
		h.allConns = append(h.allConns, conn)
		h.clients[Address{f.Host, f.Port}] = id
		h.hosts[f.Host] = true
		h.mu.Unlock()
		sendFrame(conn, &frame{Kind: kRegisterAck, Host: f.Host, Port: f.Port, SentAt: f.SentAt + hubProcessing})
		h.wg.Add(1)
		go h.readLoop(id, conn, true)
	default:
		conn.Close()
	}
}

// mergeHubs learns new hub hosts from gossip, tries to link to them, and —
// when the view grew — pushes the enlarged view to all hub neighbors. The
// push only happens on growth, so gossip converges and then goes quiet.
func (h *Hub) mergeHubs(hubs []string) {
	var fresh []string
	h.mu.Lock()
	for _, x := range hubs {
		if !h.known[x] {
			h.known[x] = true
			fresh = append(fresh, x)
		}
	}
	h.mu.Unlock()
	if len(fresh) == 0 {
		return
	}
	for _, x := range fresh {
		h.ConnectTo(x) // best effort; one-way peers will dial us instead
	}
	g := &frame{Kind: kGossip, Hub: h.host, Hubs: h.knownHubs()}
	h.mu.Lock()
	targets := make([]string, 0, len(h.conns))
	for cid := range h.conns {
		if strings.HasPrefix(cid, "h:") {
			targets = append(targets, cid)
		}
	}
	h.mu.Unlock()
	for _, cid := range targets {
		h.sendTo(cid, g)
	}
}

// readLoop processes frames arriving from one neighbor (hub or client).
func (h *Hub) readLoop(id string, conn *vnet.Conn, primary bool) {
	defer h.wg.Done()
	for {
		f, err := recvFrame(conn)
		if err != nil {
			h.dropConn(id, conn, primary)
			return
		}
		h.handleFrame(id, f)
	}
}

func (h *Hub) dropConn(id string, conn *vnet.Conn, primary bool) {
	conn.Close()
	h.mu.Lock()
	if primary && h.conns[id] == conn {
		delete(h.conns, id)
		if strings.HasPrefix(id, "c#") {
			for addr, cid := range h.clients {
				if cid == id {
					delete(h.clients, addr)
				}
			}
		}
	}
	h.mu.Unlock()
}

func (h *Hub) handleFrame(origin string, f *frame) {
	switch f.Kind {
	case kHello, kGossip:
		h.mergeHubs(f.Hubs)
	case kRegister:
		h.mu.Lock()
		h.clients[Address{f.Host, f.Port}] = origin
		h.hosts[f.Host] = true
		h.mu.Unlock()
		h.sendTo(origin, &frame{Kind: kRegisterAck, Host: f.Host, Port: f.Port, SentAt: f.SentAt + hubProcessing})
	case kUnregister:
		h.mu.Lock()
		if h.clients[Address{f.Host, f.Port}] == origin {
			delete(h.clients, Address{f.Host, f.Port})
		}
		h.mu.Unlock()
	case kReverseReq, kCircuitOpen:
		h.handleFlood(origin, f)
	case kCircuitAck, kCircuitNak:
		h.handleBacktrack(origin, f)
	case kCircuitData, kCircuitClose:
		h.relayCircuit(origin, f)
	}
}

// floodKey dedups flooded frames.
func floodKey(f *frame) string {
	if f.Kind == kReverseReq {
		return fmt.Sprintf("rev:%s:%d", f.Src, f.ReqID)
	}
	return "open:" + f.Circuit
}

// handleFlood forwards reverse requests and circuit opens across the
// overlay until they reach the hub serving the destination client.
func (h *Hub) handleFlood(origin string, f *frame) {
	key := floodKey(f)
	h.mu.Lock()
	dstID, local := h.clients[f.Dst]
	knownHost := h.hosts[f.Dst.Host]
	seen := h.seen[key]
	h.seen[key] = true
	h.mu.Unlock()

	path := append(append([]string(nil), f.Path...), h.host)
	fwd := *f
	fwd.Path = path
	fwd.SentAt = f.SentAt + hubProcessing
	if f.Class != "" {
		// Class-tagged opens are routed by bandwidth: fold the bandwidth
		// of the hop this frame just crossed into the bottleneck estimate.
		prev := f.Src.Host
		if strings.HasPrefix(origin, "h:") {
			prev = strings.TrimPrefix(origin, "h:")
		}
		if p, err := h.net.Route(prev, h.host); err == nil {
			if fwd.MinBW == 0 || p.Bandwidth < fwd.MinBW {
				fwd.MinBW = p.Bandwidth
			}
		}
	}

	if local {
		if f.Kind == kCircuitOpen {
			// The destination hub sees every flooded copy (the seen map
			// gates forwarding, not delivery) and picks the best path.
			h.collectOpen(dstID, &fwd)
			return
		}
		if seen {
			return
		}
		h.sendTo(dstID, &fwd)
		return
	}
	if seen {
		return
	}
	if knownHost {
		// The destination host is one of ours but the port is not
		// registered: refuse so the caller can fail fast.
		h.handleBacktrack(origin, &frame{
			Kind: kCircuitNak, Src: f.Src, Dst: f.Dst, Circuit: f.Circuit,
			ReqID: f.ReqID, Path: path, SentAt: fwd.SentAt,
		})
		return
	}
	// Forward to all hub neighbors except where it came from — nearest
	// first. The first open to reach the destination installs the
	// circuit, so forwarding in ascending link latency biases the race
	// toward the lowest-latency hub path: a transatlantic detour through
	// the user's machine must not relay bulk transfers between two sites
	// that share a fast link.
	h.mu.Lock()
	targets := make([]string, 0, len(h.conns))
	for cid := range h.conns {
		if strings.HasPrefix(cid, "h:") && cid != origin {
			targets = append(targets, cid)
		}
	}
	h.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool {
		return h.linkLatency(targets[i]) < h.linkLatency(targets[j])
	})
	for _, cid := range targets {
		h.sendTo(cid, &fwd)
	}
}

// linkLatency estimates the virtual latency to a hub neighbor (by conn
// id); unknown routes sort last.
func (h *Hub) linkLatency(cid string) time.Duration {
	peer := strings.TrimPrefix(cid, "h:")
	p, err := h.net.Route(h.host, peer)
	if err != nil {
		return time.Duration(1<<62 - 1)
	}
	return p.Latency
}

// collectOpen records one flooded copy of a circuit open addressed to a
// local client, keeping the copy with the earliest virtual SentAt. The
// first copy arms a short real-time settle timer; when it fires the best
// copy — the lowest-virtual-latency hub path — is delivered.
func (h *Hub) collectOpen(dstID string, fwd *frame) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	po, ok := h.opens[fwd.Circuit]
	if ok {
		if !po.delivered && betterOpen(&po.best, fwd) {
			po.best = *fwd
		}
		h.mu.Unlock()
		return
	}
	po = &pendingOpen{dstID: dstID, best: *fwd}
	h.opens[fwd.Circuit] = po
	h.mu.Unlock()
	circuit := fwd.Circuit
	time.AfterFunc(openSettle, func() {
		h.mu.Lock()
		po.delivered = true
		best := po.best
		closed := h.closed
		h.mu.Unlock()
		if !closed {
			h.sendTo(po.dstID, &best)
		}
		// Keep the tombstone long enough to absorb any straggler copy
		// still in flight, then drop it — the map must not grow with
		// every circuit ever opened.
		time.AfterFunc(100*openSettle, func() {
			h.mu.Lock()
			delete(h.opens, circuit)
			h.mu.Unlock()
		})
	})
}

// betterOpen decides whether a newly arrived circuit-open copy beats the
// current best. Bulk-class opens prefer the widest bottleneck bandwidth
// (ties broken by earliest virtual arrival); every other class keeps the
// lowest-virtual-latency path.
func betterOpen(cur, cand *frame) bool {
	if cand.Class == "bulk" && cand.MinBW != cur.MinBW {
		return cand.MinBW > cur.MinBW
	}
	return cand.SentAt < cur.SentAt
}

// handleBacktrack walks an ack or nak backwards along the recorded path,
// installing circuit relay state for acks.
func (h *Hub) handleBacktrack(origin string, f *frame) {
	if len(f.Path) == 0 || f.Path[len(f.Path)-1] != h.host {
		return // not addressed to us; drop
	}
	back := *f
	back.Path = f.Path[:len(f.Path)-1]
	back.SentAt = f.SentAt + hubProcessing

	var nextID string
	if len(back.Path) == 0 {
		h.mu.Lock()
		nextID = h.clients[Address{f.Src.Host, f.Src.Port}]
		h.mu.Unlock()
		if nextID == "" {
			return // requester vanished
		}
	} else {
		nextID = "h:" + back.Path[len(back.Path)-1]
	}
	if f.Kind == kCircuitAck {
		h.mu.Lock()
		h.circuits[f.Circuit] = &circuit{aID: nextID, bID: origin}
		h.mu.Unlock()
	}
	h.sendTo(nextID, &back)
}

// relayCircuit forwards data/close frames along an established circuit.
func (h *Hub) relayCircuit(origin string, f *frame) {
	h.mu.Lock()
	c := h.circuits[f.Circuit]
	if c != nil && f.Kind == kCircuitClose {
		delete(h.circuits, f.Circuit)
	}
	h.mu.Unlock()
	if c == nil {
		return
	}
	next := c.aID
	if origin == c.aID {
		next = c.bID
	}
	fwd := *f
	fwd.SentAt = f.SentAt + hubProcessing
	h.sendTo(next, &fwd)
}

func (h *Hub) sendTo(id string, f *frame) {
	h.mu.Lock()
	conn := h.conns[id]
	h.mu.Unlock()
	if conn == nil {
		return
	}
	sendFrame(conn, f) // best effort: broken neighbors are dropped by their reader
}
