package smartsockets

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/vnet"
)

// Errors returned by Connect.
var (
	ErrConnectFailed = errors.New("smartsockets: all connection strategies failed")
	ErrNoListener    = errors.New("smartsockets: destination port not listening")
	ErrTimeout       = errors.New("smartsockets: connection attempt timed out")
	ErrFactoryClosed = errors.New("smartsockets: factory closed")
)

// Stats counts established outbound connections by type.
type Stats struct {
	Direct, Reverse, Routed int
}

// Factory creates virtual sockets for one process. It mirrors SmartSockets'
// VirtualSocketFactory: it registers with a hub and transparently picks the
// best connection strategy per Connect call.
type Factory struct {
	net     *vnet.Network
	host    string
	base    int // identity port; Address{host, base} names this factory
	hubHost string
	hubConn *vnet.Conn

	mu          sync.Mutex
	listeners   map[int]*Listener
	pendingRev  map[uint64]chan revResult
	pendingOpen map[string]chan openResult
	pendingReg  map[Address]chan struct{}
	circuits    map[string]*routedEnd
	nextPort    int
	nextReq     uint64
	nextCircuit uint64
	stats       Stats
	goodput     map[Address]goodputEntry
	closed      bool

	// Timeout is the real-time budget for overlay round trips during
	// Connect (reverse and routed attempts). Virtual time is unaffected.
	Timeout time.Duration

	// ProbeTTL is the virtual-time staleness bound for cached goodput
	// measurements: Goodput re-probes a peer only when the cached sample
	// is older than this. Default one virtual minute.
	ProbeTTL time.Duration

	wg sync.WaitGroup
}

type revResult struct {
	conn        *vnet.Conn
	established time.Duration
	err         error
}

// openResult completes a routed circuit open: the error, and on success
// the hub route the circuit was installed along.
type openResult struct {
	err   error
	route []string
}

// NewFactory connects a factory on host to the hub at hubHost. base is this
// process's identity port; listeners and ephemeral ports are allocated above
// it.
func NewFactory(network *vnet.Network, host string, base int, hubHost string) (*Factory, error) {
	conn, err := network.Dial(host, hubHost, HubPort)
	if err != nil {
		// Hubs also listen on the SSH port: a client outside the hub's
		// site can still register through the front-end's sshd, the same
		// tunnel trick hubs use among themselves.
		conn, err = network.Dial(host, hubHost, vnet.SSHPort)
	}
	if err != nil {
		return nil, fmt.Errorf("smartsockets: factory %s cannot reach hub %s: %w", host, hubHost, err)
	}
	conn.SetClass("hub")
	f := &Factory{
		net: network, host: host, base: base, hubHost: hubHost, hubConn: conn,
		listeners:   make(map[int]*Listener),
		pendingRev:  make(map[uint64]chan revResult),
		pendingOpen: make(map[string]chan openResult),
		pendingReg:  make(map[Address]chan struct{}),
		circuits:    make(map[string]*routedEnd),
		goodput:     make(map[Address]goodputEntry),
		nextPort:    base + 1,
		Timeout:     2 * time.Second,
		ProbeTTL:    time.Minute,
	}
	f.wg.Add(1)
	go f.hubReadLoop()
	if err := f.register(Address{Host: host, Port: base}); err != nil {
		f.Close()
		return nil, fmt.Errorf("smartsockets: factory %s register with hub %s: %w", host, hubHost, err)
	}
	return f, nil
}

// register claims (host, port) at the hub and waits for the hub's ack, so
// that once register returns, reverse requests and routed opens flooded to
// the hub will find the registration (no lost-registration race).
func (f *Factory) register(a Address) error {
	ch := make(chan struct{}, 1)
	f.mu.Lock()
	f.pendingReg[a] = ch
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.pendingReg, a)
		f.mu.Unlock()
	}()
	if err := sendFrame(f.hubConn, &frame{Kind: kRegister, Host: a.Host, Port: a.Port}); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(f.Timeout):
		return ErrTimeout
	}
}

// Addr returns the factory's identity address.
func (f *Factory) Addr() Address { return Address{Host: f.host, Port: f.base} }

// Host returns the host the factory runs on.
func (f *Factory) Host() string { return f.host }

// Stats returns outbound connection counts by type.
func (f *Factory) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close shuts down the factory, its listeners and routed circuits.
func (f *Factory) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	ls := make([]*Listener, 0, len(f.listeners))
	for _, l := range f.listeners {
		ls = append(ls, l)
	}
	ends := make([]*routedEnd, 0, len(f.circuits))
	for _, e := range f.circuits {
		ends = append(ends, e)
	}
	f.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, e := range ends {
		e.close()
	}
	f.hubConn.Close()
	f.wg.Wait()
}

func (f *Factory) allocPort() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.nextPort
	f.nextPort++
	return p
}

// hubReadLoop dispatches frames arriving from the hub.
func (f *Factory) hubReadLoop() {
	defer f.wg.Done()
	for {
		fr, err := recvFrame(f.hubConn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case kReverseReq:
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.handleReverseReq(fr)
			}()
		case kCircuitOpen:
			f.handleCircuitOpen(fr)
		case kCircuitAck:
			f.completeOpen(fr.Circuit, openResult{route: fr.Route})
		case kCircuitNak:
			if fr.Circuit != "" {
				f.completeOpen(fr.Circuit, openResult{err: ErrNoListener})
			}
			if fr.ReqID != 0 {
				f.completeRev(fr.ReqID, revResult{err: ErrNoListener})
			}
		case kCircuitData:
			f.mu.Lock()
			end := f.circuits[fr.Circuit]
			f.mu.Unlock()
			if end != nil {
				end.push(vnet.Message{Data: fr.Payload, Arrival: fr.SentAt})
			}
		case kCircuitClose:
			f.mu.Lock()
			end := f.circuits[fr.Circuit]
			delete(f.circuits, fr.Circuit)
			f.mu.Unlock()
			if end != nil {
				end.close()
			}
		case kRegisterAck:
			f.mu.Lock()
			ch := f.pendingReg[Address{fr.Host, fr.Port}]
			f.mu.Unlock()
			if ch != nil {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		}
	}
}

func (f *Factory) completeOpen(circuit string, r openResult) {
	f.mu.Lock()
	ch := f.pendingOpen[circuit]
	delete(f.pendingOpen, circuit)
	f.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

func (f *Factory) completeRev(id uint64, r revResult) {
	f.mu.Lock()
	ch := f.pendingRev[id]
	delete(f.pendingRev, id)
	f.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// handleReverseReq performs the dial-back on behalf of a remote requester.
func (f *Factory) handleReverseReq(fr *frame) {
	f.mu.Lock()
	l := f.listeners[fr.Dst.Port]
	f.mu.Unlock()
	nak := &frame{
		Kind: kCircuitNak, Src: fr.Src, Dst: fr.Dst, ReqID: fr.ReqID,
		Path: fr.Path, SentAt: fr.SentAt + hubProcessing,
	}
	if l == nil {
		sendFrame(f.hubConn, nak)
		return
	}
	conn, err := f.net.Dial(f.host, fr.Src.Host, fr.ReplyPort)
	if err != nil {
		// The requester is firewalled too; tell it to fall back to routing.
		sendFrame(f.hubConn, nak)
		return
	}
	conn.SetClass("hub") // control plane until the application re-tags it
	ok := &frame{Kind: kDialbackOK, ReqID: fr.ReqID, SentAt: fr.SentAt + hubProcessing}
	if err := sendFrame(conn, ok); err != nil {
		conn.Close()
		return
	}
	vc := &VirtualConn{typ: Reverse, raw: conn, remote: fr.Src, established: ok.SentAt}
	if !l.push(vc) {
		conn.Close()
	}
}

// handleCircuitOpen accepts (or refuses) an inbound routed circuit.
func (f *Factory) handleCircuitOpen(fr *frame) {
	f.mu.Lock()
	l := f.listeners[fr.Dst.Port]
	var end *routedEnd
	if l != nil && !f.closed {
		end = newRoutedEnd(f, fr.Circuit)
		f.circuits[fr.Circuit] = end
	}
	f.mu.Unlock()
	kind := byte(kCircuitAck)
	if end == nil {
		kind = kCircuitNak
	}
	reply := &frame{
		Kind: kind, Src: fr.Src, Dst: fr.Dst, Circuit: fr.Circuit,
		Path: fr.Path, Route: fr.Path, SentAt: fr.SentAt + hubProcessing,
	}
	sendFrame(f.hubConn, reply)
	if end != nil {
		vc := &VirtualConn{typ: Routed, end: end, remote: fr.Src, established: fr.SentAt, route: fr.Path}
		if !l.push(vc) {
			end.close()
		}
	}
}

// Connect opens a virtual connection to target, trying direct, reverse and
// routed strategies in order. sentAt is the caller's virtual clock; the
// returned connection's EstablishedAt reports the virtual completion time.
func (f *Factory) Connect(target Address, sentAt time.Duration) (*VirtualConn, error) {
	return f.connect(target, sentAt, "")
}

// ConnectClass is Connect with a connection class. Class "bulk" makes
// hub-routed circuits follow the widest-bottleneck-bandwidth hub path
// instead of the lowest-latency one; direct and reverse connections are
// unaffected (they already use the single best physical path).
func (f *Factory) ConnectClass(target Address, sentAt time.Duration, class string) (*VirtualConn, error) {
	return f.connect(target, sentAt, class)
}

func (f *Factory) connect(target Address, sentAt time.Duration, class string) (*VirtualConn, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFactoryClosed
	}
	f.mu.Unlock()

	// 1: direct.
	conn, err := f.net.Dial(f.host, target.Host, target.Port)
	if err == nil {
		f.mu.Lock()
		f.stats.Direct++
		f.mu.Unlock()
		return &VirtualConn{
			typ: Direct, raw: conn, remote: target,
			established: sentAt + conn.Path().Latency,
		}, nil
	}
	if errors.Is(err, vnet.ErrRefused) {
		// The host is reachable but nothing listens there: no point in
		// reverse or routed attempts.
		return nil, fmt.Errorf("%w: %s", ErrNoListener, target)
	}

	// 2: reverse connection setup through the overlay.
	if vc, err := f.connectReverse(target, sentAt); err == nil {
		f.mu.Lock()
		f.stats.Reverse++
		f.mu.Unlock()
		return vc, nil
	}

	// 3: routed through the hubs.
	vc, err := f.connectRouted(target, sentAt, class)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrConnectFailed, target, err)
	}
	f.mu.Lock()
	f.stats.Routed++
	f.mu.Unlock()
	return vc, nil
}

func (f *Factory) connectReverse(target Address, sentAt time.Duration) (*VirtualConn, error) {
	replyPort := f.allocPort()
	vl, err := f.net.Listen(f.host, replyPort)
	if err != nil {
		return nil, err
	}
	defer vl.Close()

	f.mu.Lock()
	f.nextReq++
	id := f.nextReq
	ch := make(chan revResult, 1)
	f.pendingRev[id] = ch
	f.mu.Unlock()
	defer f.completeRev(id, revResult{}) // drop registration if still pending

	req := &frame{
		Kind: kReverseReq, Src: f.Addr(), Dst: target,
		ReqID: id, ReplyPort: replyPort, SentAt: sentAt,
	}
	if err := sendFrame(f.hubConn, req); err != nil {
		return nil, err
	}

	// The dial-back arrives on our ephemeral listener.
	accepted := make(chan revResult, 1)
	go func() {
		conn, err := vl.Accept()
		if err != nil {
			return
		}
		fr, err := recvFrame(conn)
		if err != nil || fr.Kind != kDialbackOK {
			conn.Close()
			return
		}
		accepted <- revResult{conn: conn, established: fr.SentAt}
	}()

	select {
	case r := <-accepted:
		return &VirtualConn{typ: Reverse, raw: r.conn, remote: target, established: r.established}, nil
	case r := <-ch:
		if r.err == nil {
			r.err = ErrConnectFailed
		}
		return nil, r.err
	case <-time.After(f.Timeout):
		return nil, ErrTimeout
	}
}

func (f *Factory) connectRouted(target Address, sentAt time.Duration, class string) (*VirtualConn, error) {
	f.mu.Lock()
	f.nextCircuit++
	key := fmt.Sprintf("%s/%d", f.Addr(), f.nextCircuit)
	ch := make(chan openResult, 1)
	f.pendingOpen[key] = ch
	end := newRoutedEnd(f, key)
	f.circuits[key] = end
	f.mu.Unlock()

	open := &frame{Kind: kCircuitOpen, Src: f.Addr(), Dst: target, Circuit: key, SentAt: sentAt, Class: class}
	if err := sendFrame(f.hubConn, open); err != nil {
		f.dropCircuit(key)
		return nil, err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			f.dropCircuit(key)
			return nil, r.err
		}
		return &VirtualConn{typ: Routed, end: end, remote: target, established: sentAt, route: r.route}, nil
	case <-time.After(f.Timeout):
		f.dropCircuit(key)
		return nil, ErrTimeout
	}
}

func (f *Factory) dropCircuit(key string) {
	f.mu.Lock()
	delete(f.pendingOpen, key)
	delete(f.circuits, key)
	f.mu.Unlock()
}

// Listen opens a virtual listener on the given port: it accepts direct
// dials, reverse dial-backs and routed circuits alike.
func (f *Factory) Listen(port int) (*Listener, error) {
	raw, err := f.net.Listen(f.host, port)
	if err != nil {
		return nil, err
	}
	l := &Listener{factory: f, port: port, raw: raw}
	l.cond = sync.NewCond(&l.mu)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		raw.Close()
		return nil, ErrFactoryClosed
	}
	f.listeners[port] = l
	f.mu.Unlock()
	if err := f.register(Address{Host: f.host, Port: port}); err != nil {
		l.Close()
		return nil, err
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			conn, err := raw.Accept()
			if err != nil {
				return
			}
			vc := &VirtualConn{typ: Direct, raw: conn, remote: Address{conn.RemoteHost(), 0}}
			if !l.push(vc) {
				conn.Close()
			}
		}
	}()
	return l, nil
}

// Listener accepts inbound virtual connections of any type.
type Listener struct {
	factory *Factory
	port    int
	raw     *vnet.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*VirtualConn
	closed  bool
}

// Addr returns the listener's virtual address.
func (l *Listener) Addr() Address { return Address{Host: l.factory.host, Port: l.port} }

func (l *Listener) push(vc *VirtualConn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.backlog = append(l.backlog, vc)
	l.cond.Signal()
	return true
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*VirtualConn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.backlog) == 0 {
		return nil, ErrFactoryClosed
	}
	vc := l.backlog[0]
	l.backlog = l.backlog[1:]
	return vc, nil
}

// Close stops the listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.raw.Close()
	f := l.factory
	f.mu.Lock()
	delete(f.listeners, l.port)
	closed := f.closed
	f.mu.Unlock()
	if !closed {
		sendFrame(f.hubConn, &frame{Kind: kUnregister, Host: f.host, Port: l.port})
	}
	return nil
}
