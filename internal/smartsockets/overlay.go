package smartsockets

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jungle/internal/vnet"
)

// Overlay manages a set of hubs started together, the way IbisDeploy starts
// one hub per resource before launching jobs.
type Overlay struct {
	hubs []*Hub
}

// StartHubs creates a hub on each listed host and links them pairwise. Hub
// connection attempts are made in both directions so one-way links form
// whenever at least one direction is dialable.
func StartHubs(network *vnet.Network, hosts []string) (*Overlay, error) {
	o := &Overlay{}
	for _, h := range hosts {
		hub, err := NewHub(network, h)
		if err != nil {
			o.Stop()
			return nil, err
		}
		o.hubs = append(o.hubs, hub)
	}
	for _, a := range o.hubs {
		for _, b := range o.hubs {
			if a.Host() != b.Host() {
				a.ConnectTo(b.Host()) // best effort; peer may connect back
			}
		}
	}
	o.settle()
	return o, nil
}

// settle waits (in real time) until the overlay's edge view stops changing,
// so callers observe a converged hub graph. Hellos and gossip are processed
// asynchronously by hub reader goroutines.
func (o *Overlay) settle() {
	snapshot := func() string {
		var b strings.Builder
		for _, e := range o.Edges() {
			fmt.Fprintf(&b, "%s|%s|%d;", e.A, e.B, e.Type)
		}
		return b.String()
	}
	prev := snapshot()
	stable := 0
	for i := 0; i < 2000 && stable < 5; i++ {
		time.Sleep(time.Millisecond)
		cur := snapshot()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
}

// AddHub starts a hub on host and links it with every existing hub (both
// directions are attempted so one-way links can form), then waits for the
// edge view to settle. IbisDeploy uses this to start hubs incrementally as
// resources are added.
func (o *Overlay) AddHub(network *vnet.Network, host string) (*Hub, error) {
	for _, h := range o.hubs {
		if h.Host() == host {
			return h, nil
		}
	}
	hub, err := NewHub(network, host)
	if err != nil {
		return nil, err
	}
	for _, h := range o.hubs {
		hub.ConnectTo(h.Host())
		h.ConnectTo(host)
	}
	o.hubs = append(o.hubs, hub)
	o.settle()
	return hub, nil
}

// Hubs returns the managed hubs.
func (o *Overlay) Hubs() []*Hub { return o.hubs }

// Hub returns the hub running on the given host, or nil.
func (o *Overlay) Hub(host string) *Hub {
	for _, h := range o.hubs {
		if h.Host() == host {
			return h
		}
	}
	return nil
}

// Stop shuts all hubs down.
func (o *Overlay) Stop() {
	for _, h := range o.hubs {
		h.Stop()
	}
}

// OverlayEdge is a deduplicated hub-pair link for reporting.
type OverlayEdge struct {
	A, B string
	Type EdgeType
}

// Edges merges the per-hub edge views into one undirected edge list:
// if either side used SSH the edge is an SSH tunnel; if both sides hold a
// link it is direct; if only one side could initiate it is one-way — the
// arrows of Fig. 10.
func (o *Overlay) Edges() []OverlayEdge {
	type pair struct{ a, b string }
	views := make(map[pair][]EdgeType)
	for _, h := range o.hubs {
		for _, e := range h.Edges() {
			p := pair{e.Local, e.Peer}
			if p.a > p.b {
				p.a, p.b = p.b, p.a
			}
			views[p] = append(views[p], e.Type)
		}
	}
	out := make([]OverlayEdge, 0, len(views))
	for p, ts := range views {
		ssh, direct := false, true
		for _, x := range ts {
			if x == EdgeSSH {
				ssh = true
			}
			if x != EdgeDirect {
				direct = false
			}
		}
		t := EdgeOneWay
		switch {
		case ssh:
			t = EdgeSSH
		case direct && len(ts) >= 2:
			t = EdgeDirect
		}
		out = append(out, OverlayEdge{A: p.a, B: p.b, Type: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Connected reports whether the undirected overlay graph spans all hubs.
func (o *Overlay) Connected() bool {
	if len(o.hubs) == 0 {
		return true
	}
	adj := make(map[string][]string)
	for _, e := range o.Edges() {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := map[string]bool{o.hubs[0].Host(): true}
	stack := []string{o.hubs[0].Host()}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(o.hubs)
}

// RenderMap renders the Fig. 10-equivalent overlay view: every hub and the
// deduplicated links with their types (direct, ssh-tunnel — the red lines —
// and one-way — the arrows).
func (o *Overlay) RenderMap() string {
	var b strings.Builder
	b.WriteString("SmartSockets overlay\n")
	b.WriteString("hubs:\n")
	hosts := make([]string, 0, len(o.hubs))
	for _, h := range o.hubs {
		hosts = append(hosts, h.Host())
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		fmt.Fprintf(&b, "  %s\n", h)
	}
	b.WriteString("links:\n")
	for _, e := range o.Edges() {
		arrow := "<->"
		if e.Type == EdgeOneWay {
			arrow = "-->"
		}
		fmt.Fprintf(&b, "  %-26s %s %-26s [%s]\n", e.A, arrow, e.B, e.Type)
	}
	return b.String()
}
