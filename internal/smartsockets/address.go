// Package smartsockets reimplements the SmartSockets connectivity layer of
// the Ibis framework (Maassen & Bal, HPDC'07) on the virtual network: an
// overlay of hubs, plus a socket-like factory that transparently works
// around firewalls and NATs using three strategies, in order:
//
//  1. direct connection,
//  2. reverse connection setup — a request travels through the hub overlay
//     and the (firewalled) target dials back, exploiting that firewalls
//     usually permit outbound traffic,
//  3. routed connection — application data is relayed hub-to-hub over the
//     overlay as a last resort.
//
// Hubs that cannot reach each other directly fall back to SSH tunnels
// (cluster front-ends usually accept SSH), and links that could only be
// established in one direction are tracked as such — these are exactly the
// red lines and arrows of Fig. 10 in the paper.
//
// The overlay is bandwidth-aware: Factory.Goodput measures achievable
// bandwidth to a peer with netio-style sized-payload probes (cached per
// peer, reported to the network's link-health recorder), and routed
// circuits opened with ConnectClass(..., "bulk") follow the
// widest-bottleneck-bandwidth hub path instead of the lowest-latency one —
// the path bulk state transfers want. See DESIGN.md §"Bandwidth-aware
// data plane".
package smartsockets

import (
	"fmt"
	"strconv"
	"strings"
)

// Address identifies a virtual socket endpoint: a host plus a port in the
// factory's port space.
type Address struct {
	Host string
	Port int
}

// String renders "host:port".
func (a Address) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// ParseAddress parses "host:port".
func ParseAddress(s string) (Address, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Address{}, fmt.Errorf("smartsockets: address %q missing port", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Address{}, fmt.Errorf("smartsockets: bad port in %q: %v", s, err)
	}
	return Address{Host: s[:i], Port: port}, nil
}

// ConnType classifies how a virtual connection was established.
type ConnType int

const (
	// Direct: a plain connection succeeded.
	Direct ConnType = iota
	// Reverse: the target dialed back through its firewall after a
	// reverse-connection request was delivered over the hub overlay.
	Reverse
	// Routed: application data is relayed through the hub overlay.
	Routed
)

func (t ConnType) String() string {
	switch t {
	case Direct:
		return "direct"
	case Reverse:
		return "reverse"
	case Routed:
		return "routed"
	default:
		return fmt.Sprintf("ConnType(%d)", int(t))
	}
}

// EdgeType classifies a hub-to-hub overlay link.
type EdgeType int

const (
	// EdgeDirect: both hubs can dial each other.
	EdgeDirect EdgeType = iota
	// EdgeSSH: the link runs over an SSH tunnel to a front-end.
	EdgeSSH
	// EdgeOneWay: only one side could initiate (arrow in Fig. 10).
	EdgeOneWay
)

func (t EdgeType) String() string {
	switch t {
	case EdgeDirect:
		return "direct"
	case EdgeSSH:
		return "ssh-tunnel"
	case EdgeOneWay:
		return "one-way"
	default:
		return fmt.Sprintf("EdgeType(%d)", int(t))
	}
}

// HubPort is the well-known port hubs listen on.
const HubPort = 17878
