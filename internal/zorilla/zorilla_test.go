package zorilla

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jungle/internal/gat"
	"jungle/internal/vnet"
)

// flatNet builds n open hosts on one switch.
func flatNet(t *testing.T, n int) (*vnet.Network, []string) {
	t.Helper()
	net := vnet.New()
	var hosts []string
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("pc%02d", i)
		if _, err := net.AddHost(h, "office", vnet.Open); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	for i := 1; i < n; i++ {
		if err := net.AddLink(hosts[0], hosts[i], time.Millisecond, 1.25e8); err != nil {
			t.Fatal(err)
		}
	}
	return net, hosts
}

func chainOverlay(t *testing.T, net *vnet.Network, hosts []string) *Overlay {
	t.Helper()
	o := New(net, 1)
	for i, h := range hosts {
		boot := ""
		if i > 0 {
			boot = hosts[i-1]
		}
		if _, err := o.AddPeer(h, boot); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddPeerValidation(t *testing.T) {
	net, hosts := flatNet(t, 3)
	o := New(net, 1)
	if _, err := o.AddPeer("ghost", ""); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := o.AddPeer(hosts[0], ""); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddPeer(hosts[0], ""); !errors.Is(err, ErrAlreadyJoined) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.AddPeer(hosts[1], "ghost"); !errors.Is(err, ErrNoBootstrap) {
		t.Fatalf("err = %v", err)
	}
}

func TestBootstrapSharesViews(t *testing.T) {
	net, hosts := flatNet(t, 3)
	o := chainOverlay(t, net, hosts)
	// pc02 bootstrapped via pc01, which knew pc00.
	known := o.Peer(hosts[2]).Known()
	if len(known) != 2 {
		t.Fatalf("pc02 view = %v", known)
	}
}

func TestGossipConvergesMembership(t *testing.T) {
	net, hosts := flatNet(t, 6)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(8)
	// Every peer should know (close to) everyone: views are capped at
	// viewSize=8, 5 others fit.
	for _, h := range hosts {
		if got := len(o.Peer(h).Known()); got != 5 {
			t.Fatalf("%s knows %d peers, want 5", h, got)
		}
	}
}

func TestAllocateFloodsThroughViews(t *testing.T) {
	net, hosts := flatNet(t, 5)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(5)
	got, err := o.Allocate(hosts[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("allocated %v", got)
	}
	if o.IdleCount() != 1 {
		t.Fatalf("idle = %d", o.IdleCount())
	}
	o.Release(got)
	if o.IdleCount() != 5 {
		t.Fatalf("idle after release = %d", o.IdleCount())
	}
}

func TestAllocateRefusesWhenBusy(t *testing.T) {
	net, hosts := flatNet(t, 3)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(5)
	first, err := o.Allocate(hosts[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Allocate(hosts[0], 2); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v", err)
	}
	// The failed allocation must not leak claims.
	o.Release(first)
	if o.IdleCount() != 3 {
		t.Fatalf("idle = %d", o.IdleCount())
	}
}

func TestAllocateUnknownVia(t *testing.T) {
	net, hosts := flatNet(t, 2)
	o := chainOverlay(t, net, hosts)
	if _, err := o.Allocate("ghost", 1); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestViewTruncation(t *testing.T) {
	net, hosts := flatNet(t, 12)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(12)
	for _, h := range hosts {
		if got := len(o.Peer(h).Known()); got > viewSize {
			t.Fatalf("%s view size %d exceeds cap %d", h, got, viewSize)
		}
	}
}

func TestGATAdapterRunsJob(t *testing.T) {
	net, hosts := flatNet(t, 4)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(5)

	fs := gat.NewFS(net)
	cat := gat.NewCatalog()
	broker := gat.NewBroker(net, fs, cat, hosts[0])
	broker.AddAdapter(&Adapter{Overlay: o})

	ran := make(chan []string, 1)
	cat.Register("p2pjob", func(ctx *gat.Context) error {
		ran <- ctx.Hosts
		return nil
	})
	j, err := broker.Submit(gat.JobDescription{Executable: "p2pjob", Nodes: 3}, "zorilla://"+hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	allocated := <-ran
	if len(allocated) != 3 {
		t.Fatalf("job ran on %v", allocated)
	}
	if o.IdleCount() != 4 {
		t.Fatalf("peers not released: %d idle", o.IdleCount())
	}
}

func TestGATAdapterNoPeer(t *testing.T) {
	net, hosts := flatNet(t, 2)
	o := New(net, 1)
	fs := gat.NewFS(net)
	cat := gat.NewCatalog()
	cat.Register("x", func(*gat.Context) error { return nil })
	broker := gat.NewBroker(net, fs, cat, hosts[0])
	broker.AddAdapter(&Adapter{Overlay: o})
	if _, err := broker.Submit(gat.JobDescription{Executable: "x"}, "zorilla://"+hosts[0]); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

// TestZorillaTurnsMachinesIntoCluster is the paper's pitch: a pile of
// stand-alone machines + Zorilla = cluster-like system usable through the
// standard GAT multi-node path that ssh/local cannot serve.
func TestZorillaTurnsMachinesIntoCluster(t *testing.T) {
	net, hosts := flatNet(t, 6)
	o := chainOverlay(t, net, hosts)
	o.GossipRounds(6)
	fs := gat.NewFS(net)
	cat := gat.NewCatalog()
	cat.Register("mpi", func(ctx *gat.Context) error {
		if len(ctx.Hosts) != 5 {
			return fmt.Errorf("got %d nodes", len(ctx.Hosts))
		}
		return nil
	})
	broker := gat.NewBroker(net, fs, cat, hosts[0])
	broker.AddAdapter(&Adapter{Overlay: o})
	// Bare URI: ssh and local refuse multi-node, zorilla accepts.
	j, err := broker.Submit(gat.JobDescription{Executable: "mpi", Nodes: 5}, hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Adapter != "zorilla" {
		t.Fatalf("adapter = %s", j.Adapter)
	}
}
