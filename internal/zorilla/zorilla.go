// Package zorilla reimplements the Zorilla peer-to-peer middleware (Drost
// et al., CCPE 2011): it "can turn any collection of machines into a
// cluster-like system in minutes" and is "ideal in cases where no
// middleware is available". Peers hold partial membership views spread by
// gossip; job submissions flood outward from the submitting peer through
// the views it knows, claiming idle peers — Zorilla's flood scheduling.
//
// The package also provides the JavaGAT adapter the paper uses, so the
// broker can target "zorilla://host" like any other middleware.
package zorilla

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"jungle/internal/gat"
	"jungle/internal/vnet"
)

// Errors.
var (
	ErrUnknownPeer   = errors.New("zorilla: unknown peer")
	ErrNotEnough     = errors.New("zorilla: not enough idle peers reachable by flooding")
	ErrNoBootstrap   = errors.New("zorilla: bootstrap peer unknown")
	ErrAlreadyJoined = errors.New("zorilla: host already runs a peer")
)

// viewSize caps each peer's gossip view (partial views are the point of
// P2P membership).
const viewSize = 8

// Overlay is a Zorilla deployment: a set of peers over the virtual network.
type Overlay struct {
	net *vnet.Network
	rng *rand.Rand

	mu    sync.Mutex
	peers map[string]*Peer
}

// Peer is one Zorilla daemon.
type Peer struct {
	host string

	mu   sync.Mutex
	view map[string]bool // known peer hosts (excluding self)
	busy bool
}

// Host returns the host this peer runs on.
func (p *Peer) Host() string { return p.host }

// Known returns the sorted membership view.
func (p *Peer) Known() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.view))
	for h := range p.view {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Busy reports whether the peer is running a job slot.
func (p *Peer) Busy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy
}

// New returns an empty overlay. The seed makes gossip shuffles
// deterministic for tests.
func New(network *vnet.Network, seed int64) *Overlay {
	return &Overlay{net: network, rng: rand.New(rand.NewSource(seed)), peers: make(map[string]*Peer)}
}

// AddPeer starts a peer on host. bootstrap is an existing peer used for the
// initial view exchange ("" for the first peer). The new peer and the
// bootstrap merge views immediately, as joining Zorilla nodes do.
func (o *Overlay) AddPeer(host, bootstrap string) (*Peer, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.peers[host]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyJoined, host)
	}
	if o.net.Host(host) == nil {
		return nil, fmt.Errorf("zorilla: %w: %q", vnet.ErrUnknownHost, host)
	}
	p := &Peer{host: host, view: make(map[string]bool)}
	if bootstrap != "" {
		bp, ok := o.peers[bootstrap]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoBootstrap, bootstrap)
		}
		if !o.net.Reachable(host, bootstrap) {
			return nil, fmt.Errorf("zorilla: bootstrap %s unreachable from %s", bootstrap, host)
		}
		p.view[bootstrap] = true
		bp.mu.Lock()
		for h := range bp.view {
			if h != host {
				p.view[h] = true
			}
		}
		bp.view[host] = true
		bp.mu.Unlock()
	}
	o.peers[host] = p
	return p, nil
}

// Peer returns the peer on host, or nil.
func (o *Overlay) Peer(host string) *Peer {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.peers[host]
}

// Peers returns all peer hosts, sorted.
func (o *Overlay) Peers() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.peers))
	for h := range o.peers {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// GossipRounds performs n rounds: in each round every peer exchanges views
// with one random known peer (views are truncated to viewSize with a bias
// for keeping fresh entries). A few rounds suffice to connect any
// bootstrap-chained membership.
func (o *Overlay) GossipRounds(n int) {
	for round := 0; round < n; round++ {
		o.mu.Lock()
		hosts := make([]string, 0, len(o.peers))
		for h := range o.peers {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		o.mu.Unlock()
		for _, h := range hosts {
			o.gossipOnce(h)
		}
	}
}

func (o *Overlay) gossipOnce(host string) {
	o.mu.Lock()
	p := o.peers[host]
	o.mu.Unlock()
	if p == nil {
		return
	}
	known := p.Known()
	if len(known) == 0 {
		return
	}
	partner := known[o.rng.Intn(len(known))]
	o.mu.Lock()
	q := o.peers[partner]
	o.mu.Unlock()
	if q == nil || !o.net.Reachable(host, partner) {
		return
	}
	// Exchange views (two-way merge).
	p.mu.Lock()
	pv := make([]string, 0, len(p.view))
	for h := range p.view {
		pv = append(pv, h)
	}
	p.mu.Unlock()
	q.mu.Lock()
	qv := make([]string, 0, len(q.view))
	for h := range q.view {
		qv = append(qv, h)
	}
	for _, h := range pv {
		if h != q.host {
			q.view[h] = true
		}
	}
	q.view[p.host] = true
	q.truncateLocked(o.rng)
	q.mu.Unlock()
	p.mu.Lock()
	for _, h := range qv {
		if h != p.host {
			p.view[h] = true
		}
	}
	p.view[q.host] = true
	p.truncateLocked(o.rng)
	p.mu.Unlock()
}

// truncateLocked keeps the view at most viewSize entries (random eviction).
func (p *Peer) truncateLocked(rng *rand.Rand) {
	if len(p.view) <= viewSize {
		return
	}
	hosts := make([]string, 0, len(p.view))
	for h := range p.view {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	for _, h := range hosts[viewSize:] {
		delete(p.view, h)
	}
}

// Allocate claims n idle peers by flooding outward from the via peer
// (breadth-first through views). The via peer itself is a candidate. It
// does not block: Zorilla either finds capacity or refuses.
func (o *Overlay) Allocate(via string, n int) ([]string, error) {
	o.mu.Lock()
	start, ok := o.peers[via]
	o.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, via)
	}
	if n < 1 {
		n = 1
	}

	var claimed []string
	visited := map[string]bool{}
	queue := []*Peer{start}
	visited[via] = true
	for len(queue) > 0 && len(claimed) < n {
		p := queue[0]
		queue = queue[1:]
		p.mu.Lock()
		if !p.busy {
			p.busy = true
			claimed = append(claimed, p.host)
		}
		neighbors := make([]string, 0, len(p.view))
		for h := range p.view {
			neighbors = append(neighbors, h)
		}
		p.mu.Unlock()
		sort.Strings(neighbors) // deterministic flood order
		for _, h := range neighbors {
			if visited[h] {
				continue
			}
			visited[h] = true
			o.mu.Lock()
			q := o.peers[h]
			o.mu.Unlock()
			if q != nil && o.net.Reachable(p.host, h) {
				queue = append(queue, q)
			}
		}
	}
	if len(claimed) < n {
		o.Release(claimed)
		return nil, fmt.Errorf("%w: wanted %d, found %d", ErrNotEnough, n, len(claimed))
	}
	return claimed, nil
}

// Release frees previously claimed peers.
func (o *Overlay) Release(hosts []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, h := range hosts {
		if p, ok := o.peers[h]; ok {
			p.mu.Lock()
			p.busy = false
			p.mu.Unlock()
		}
	}
}

// IdleCount returns the number of idle peers (diagnostics).
func (o *Overlay) IdleCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, p := range o.peers {
		p.mu.Lock()
		if !p.busy {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Adapter is the JavaGAT adapter for Zorilla.
type Adapter struct {
	Overlay *Overlay
}

// Scheme implements gat.Adapter.
func (a *Adapter) Scheme() string { return "zorilla" }

// Submit implements gat.Adapter: allocate peers by flooding from the target
// (or the submit host), then execute.
func (a *Adapter) Submit(b *gat.Broker, j *gat.Job, target string) error {
	via := target
	if via == "" {
		via = b.SubmitHost
	}
	if a.Overlay.Peer(via) == nil {
		return fmt.Errorf("%w: no peer on %q", ErrUnknownPeer, via)
	}
	hosts, err := a.Overlay.Allocate(via, j.Desc.Nodes)
	if err != nil {
		return err
	}
	go b.Execute(j, hosts, func() { a.Overlay.Release(hosts) }, 500*time.Millisecond)
	return nil
}
