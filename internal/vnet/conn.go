package vnet

import (
	"fmt"
	"sync"
	"time"
)

// Message is a datagram delivered over a Conn, stamped with the virtual time
// at which it arrives at the receiver.
type Message struct {
	Data    []byte
	Arrival time.Duration
}

// Conn is one endpoint of a bidirectional, message-based virtual connection.
// Delivery is reliable and ordered. Virtual timing: a message sent at sender
// time t arrives at t + path latency + size/bandwidth; receivers advance
// their own clocks to max(local, arrival).
type Conn struct {
	local, remote string // host names
	port          int
	path          Path // from local to remote
	class         string
	net           *Network

	out  *msgQueue
	in   *msgQueue
	peer *Conn

	mu     sync.Mutex
	closed bool
}

// msgQueue is an unbounded ordered message queue usable by one producer and
// many consumers.
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Message
	closed bool
}

func newMsgQueue() *msgQueue {
	m := &msgQueue{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *msgQueue) push(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.q = append(m.q, msg)
	m.cond.Signal()
	return nil
}

func (m *msgQueue) pop() (Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return Message{}, ErrClosed
	}
	msg := m.q[0]
	m.q = m.q[1:]
	return msg, nil
}

func (m *msgQueue) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// LocalHost returns the host name of this endpoint.
func (c *Conn) LocalHost() string { return c.local }

// RemoteHost returns the host name of the peer endpoint.
func (c *Conn) RemoteHost() string { return c.remote }

// Port returns the listener port this connection was made to.
func (c *Conn) Port() int { return c.port }

// Path returns the routed path from this endpoint to the peer.
func (c *Conn) Path() Path { return c.path }

// SetClass tags the connection's traffic (e.g. "ipl", "mpi") for the
// recorder on both endpoints.
func (c *Conn) SetClass(class string) {
	c.mu.Lock()
	c.class = class
	c.mu.Unlock()
	if c.peer != nil {
		c.peer.mu.Lock()
		c.peer.class = class
		c.peer.mu.Unlock()
	}
}

// Send transmits data; sentAt is the sender's virtual time. It returns the
// virtual arrival time at the receiver.
func (c *Conn) Send(data []byte, sentAt time.Duration) (time.Duration, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	class := c.class
	c.mu.Unlock()
	arrival := sentAt + c.path.TransferTime(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	if err := c.out.push(Message{Data: cp, Arrival: arrival}); err != nil {
		return 0, err
	}
	c.net.record(c.local, c.remote, class, len(data))
	return arrival, nil
}

// Recv blocks until a message is available (or the connection is closed) and
// returns it. The caller is responsible for advancing its clock to
// msg.Arrival.
func (c *Conn) Recv() (Message, error) {
	return c.in.pop()
}

// Close tears down both endpoints.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.in.close()
	c.out.close()
	if c.peer != nil {
		c.peer.mu.Lock()
		c.peer.closed = true
		c.peer.mu.Unlock()
	}
	return nil
}

func (c *Conn) String() string {
	return fmt.Sprintf("%s->%s:%d", c.local, c.remote, c.port)
}

// Listener accepts inbound virtual connections on a host port.
type Listener struct {
	host *Host
	port int
	net  *Network

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Conn
	closed  bool
}

// Listen opens a listener on host:port.
func (n *Network) Listen(host string, port int) (*Listener, error) {
	h := n.Host(host)
	if h == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return nil, ErrHostDown
	}
	if _, ok := h.listeners[port]; ok {
		return nil, fmt.Errorf("%w: %s:%d", ErrPortInUse, host, port)
	}
	l := &Listener{host: h, port: port, net: n}
	l.cond = sync.NewCond(&l.mu)
	h.listeners[port] = l
	return l, nil
}

// Accept blocks until an inbound connection arrives.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.backlog) == 0 {
		return nil, errListenerDone
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close stops the listener and releases the port.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.host.mu.Lock()
	delete(l.host.listeners, l.port)
	l.host.mu.Unlock()
	return nil
}

// Addr returns "host:port".
func (l *Listener) Addr() string { return fmt.Sprintf("%s:%d", l.host.Name, l.port) }

// Dial opens a connection from host `from` to `to:port`. The destination's
// firewall policy is enforced: a firewalled destination refuses inbound
// dials from other sites, which is exactly the situation SmartSockets'
// reverse connection setup works around.
func (n *Network) Dial(from, to string, port int) (*Conn, error) {
	fh, th := n.Host(from), n.Host(to)
	if fh == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, from)
	}
	if th == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, to)
	}
	if !fh.Up() || !th.Up() {
		return nil, ErrHostDown
	}
	if !allowsInbound(th, fh.Site, port) {
		return nil, fmt.Errorf("%w: %s -> %s:%d (%s)", ErrFirewalled, from, to, port, th.Policy)
	}
	fwd, err := n.Route(from, to)
	if err != nil {
		return nil, err
	}
	rev, err := n.Route(to, from)
	if err != nil {
		return nil, err
	}
	th.mu.Lock()
	l, ok := th.listeners[port]
	th.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s:%d", ErrRefused, to, port)
	}

	aToB, bToA := newMsgQueue(), newMsgQueue()
	local := &Conn{local: from, remote: to, port: port, path: fwd, net: n, out: aToB, in: bToA}
	remote := &Conn{local: to, remote: from, port: port, path: rev, net: n, out: bToA, in: aToB}
	local.peer, remote.peer = remote, local
	n.trackConn(local)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %s:%d", ErrRefused, to, port)
	}
	l.backlog = append(l.backlog, remote)
	l.cond.Signal()
	l.mu.Unlock()
	return local, nil
}
