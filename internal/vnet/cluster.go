package vnet

import (
	"fmt"
	"time"
)

// ClusterSpec describes a cluster to instantiate in the virtual network:
// a front-end host reachable from outside (typically SSHOnly, as on DAS-4)
// and a set of compute nodes on an internal switch that refuse inbound
// connections from other sites.
type ClusterSpec struct {
	Name           string
	Site           string
	Nodes          int
	FrontendPolicy Policy
	NodePolicy     Policy
	// Internal switch properties (node <-> frontend).
	InternalLatency   time.Duration
	InternalBandwidth float64
}

// Cluster is the result of AddCluster: the generated host names.
type Cluster struct {
	Name     string
	Site     string
	Frontend string
	NodeName []string
}

// Node returns the i-th node host name.
func (c *Cluster) Node(i int) string { return c.NodeName[i] }

// Size returns the number of compute nodes.
func (c *Cluster) Size() int { return len(c.NodeName) }

// AddCluster creates a frontend plus spec.Nodes compute nodes, wiring every
// node to the frontend over the internal switch. The frontend is the
// cluster's gateway: connect it to the outside world with AddLink.
func (n *Network) AddCluster(spec ClusterSpec) (*Cluster, error) {
	if spec.Nodes < 0 {
		return nil, fmt.Errorf("vnet: cluster %q has negative node count", spec.Name)
	}
	if spec.InternalLatency == 0 {
		spec.InternalLatency = 50 * time.Microsecond
	}
	if spec.InternalBandwidth == 0 {
		spec.InternalBandwidth = 1.25e9 // 10 Gbit/s QDR-ish
	}
	fe := spec.Name + ".fe"
	if _, err := n.AddHost(fe, spec.Site, spec.FrontendPolicy); err != nil {
		return nil, err
	}
	c := &Cluster{Name: spec.Name, Site: spec.Site, Frontend: fe}
	for i := 0; i < spec.Nodes; i++ {
		name := fmt.Sprintf("%s.node%02d", spec.Name, i)
		if _, err := n.AddHost(name, spec.Site, spec.NodePolicy); err != nil {
			return nil, err
		}
		if err := n.AddLink(fe, name, spec.InternalLatency, spec.InternalBandwidth); err != nil {
			return nil, err
		}
		c.NodeName = append(c.NodeName, name)
	}
	return c, nil
}
