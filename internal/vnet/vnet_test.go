package vnet

import (
	"errors"
	"testing"
	"time"
)

// twoHosts builds a minimal network a--b with the given policy on b.
func twoHosts(t *testing.T, bPolicy Policy) *Network {
	t.Helper()
	n := New()
	mustHost(t, n, "a", "siteA", Open)
	if _, err := n.AddHost("b", "siteB", bPolicy); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("a", "b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	return n
}

func mustHost(t *testing.T, n *Network, name, site string, p Policy) *Host {
	t.Helper()
	h, err := n.AddHost(name, site, p)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAddHostDuplicate(t *testing.T) {
	n := New()
	mustHost(t, n, "a", "s", Open)
	if _, err := n.AddHost("a", "s", Open); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestAddLinkUnknownHost(t *testing.T) {
	n := New()
	mustHost(t, n, "a", "s", Open)
	if err := n.AddLink("a", "ghost", time.Millisecond, 1e9); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestRouteDirect(t *testing.T) {
	n := twoHosts(t, Open)
	p, err := n.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != time.Millisecond {
		t.Fatalf("latency %v, want 1ms", p.Latency)
	}
	if p.Bandwidth != 1e9 {
		t.Fatalf("bandwidth %v, want 1e9", p.Bandwidth)
	}
	if len(p.Hops) != 2 || p.Hops[0] != "a" || p.Hops[1] != "b" {
		t.Fatalf("hops %v", p.Hops)
	}
}

func TestRoutePicksLowestLatency(t *testing.T) {
	n := New()
	for _, h := range []string{"a", "m", "b"} {
		mustHost(t, n, h, "s", Open)
	}
	// Slow direct link, fast two-hop path.
	if err := n.AddLink("a", "b", 100*time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("a", "m", time.Millisecond, 5e8); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("m", "b", time.Millisecond, 2e9); err != nil {
		t.Fatal(err)
	}
	p, err := n.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != 2*time.Millisecond {
		t.Fatalf("latency %v, want 2ms (via m)", p.Latency)
	}
	if p.Bandwidth != 5e8 {
		t.Fatalf("bottleneck bandwidth %v, want 5e8", p.Bandwidth)
	}
	if len(p.Hops) != 3 || p.Hops[1] != "m" {
		t.Fatalf("hops %v, want via m", p.Hops)
	}
}

func TestRouteLoopback(t *testing.T) {
	n := twoHosts(t, Open)
	p, err := n.Route("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	// Loopback: > 8 Gbit/s and tiny latency per the paper's measurement.
	if p.Bandwidth < 1e9 {
		t.Fatalf("loopback bandwidth %v too small", p.Bandwidth)
	}
	if p.Latency > time.Millisecond {
		t.Fatalf("loopback latency %v too large", p.Latency)
	}
}

func TestRouteNoPath(t *testing.T) {
	n := New()
	mustHost(t, n, "a", "s", Open)
	mustHost(t, n, "b", "s", Open)
	if _, err := n.Route("a", "b"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteThroughDownHost(t *testing.T) {
	n := New()
	for _, h := range []string{"a", "m", "b"} {
		mustHost(t, n, h, "s", Open)
	}
	if err := n.AddLink("a", "m", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("m", "b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.SetHostUp("m", false); err != nil {
		t.Fatal(err)
	}
	// Route caching must not mask the down router.
	if _, err := n.Route("a", "b"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute through down router", err)
	}
}

func TestPathTransferTime(t *testing.T) {
	p := Path{Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	got := p.TransferTime(1e6)
	want := time.Millisecond + time.Second
	if got != want {
		t.Fatalf("transfer time %v, want %v", got, want)
	}
	if got := p.TransferTime(0); got != time.Millisecond {
		t.Fatalf("zero-byte transfer %v, want latency only", got)
	}
}

func TestDialAndMessage(t *testing.T) {
	n := twoHosts(t, Open)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	sentAt := 5 * time.Second
	arrival, err := conn.Send([]byte("hello"), sentAt)
	if err != nil {
		t.Fatal(err)
	}
	if arrival <= sentAt {
		t.Fatalf("arrival %v not after send %v", arrival, sentAt)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "hello" {
		t.Fatalf("payload %q", msg.Data)
	}
	if msg.Arrival != arrival {
		t.Fatalf("arrival %v != %v", msg.Arrival, arrival)
	}
	// And the reverse direction.
	if _, err := server.Send([]byte("world"), msg.Arrival); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "world" {
		t.Fatalf("reply %q", reply.Data)
	}
}

func TestDialVirtualTiming(t *testing.T) {
	n := twoHosts(t, Open)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 bytes at 1e9 B/s = 1 ms serialization + 1 ms latency.
	arrival, err := conn.Send(make([]byte, 1e6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if arrival != 2*time.Millisecond {
		t.Fatalf("arrival %v, want 2ms", arrival)
	}
}

func TestDialFirewalled(t *testing.T) {
	n := twoHosts(t, OutboundOnly)
	if _, err := n.Listen("b", 80); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a", "b", 80); !errors.Is(err, ErrFirewalled) {
		t.Fatalf("err = %v, want ErrFirewalled", err)
	}
	// But b can dial out to a.
	if _, err := n.Listen("a", 81); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("b", "a", 81); err != nil {
		t.Fatalf("outbound dial from firewalled host failed: %v", err)
	}
}

func TestDialSSHOnly(t *testing.T) {
	n := twoHosts(t, SSHOnly)
	if _, err := n.Listen("b", 80); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b", SSHPort); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a", "b", 80); !errors.Is(err, ErrFirewalled) {
		t.Fatalf("dial to 80: %v, want ErrFirewalled", err)
	}
	if _, err := n.Dial("a", "b", SSHPort); err != nil {
		t.Fatalf("dial to ssh port: %v", err)
	}
}

func TestDialSameSiteBypassesFirewall(t *testing.T) {
	n := New()
	mustHost(t, n, "n1", "cluster", OutboundOnly)
	mustHost(t, n, "n2", "cluster", OutboundOnly)
	if err := n.AddLink("n1", "n2", time.Microsecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("n2", 80); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("n1", "n2", 80); err != nil {
		t.Fatalf("intra-site dial failed: %v", err)
	}
}

func TestDialNoListener(t *testing.T) {
	n := twoHosts(t, Open)
	if _, err := n.Dial("a", "b", 9999); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestDialDownHost(t *testing.T) {
	n := twoHosts(t, Open)
	if _, err := n.Listen("b", 80); err != nil {
		t.Fatal(err)
	}
	if err := n.SetHostUp("b", false); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("a", "b", 80); !errors.Is(err, ErrHostDown) {
		t.Fatalf("err = %v, want ErrHostDown", err)
	}
}

func TestListenPortInUse(t *testing.T) {
	n := twoHosts(t, Open)
	if _, err := n.Listen("b", 80); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b", 80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	n := twoHosts(t, Open)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b", 80); err != nil {
		t.Fatalf("port not released: %v", err)
	}
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	n := twoHosts(t, Open)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	conn.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if _, err := conn.Send([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed conn: %v", err)
	}
}

func TestMessageOrdering(t *testing.T) {
	n := twoHosts(t, Open)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 100; i++ {
		if _, err := conn.Send([]byte{i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 100; i++ {
		msg, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != i {
			t.Fatalf("message %d arrived out of order (got %d)", i, msg.Data[0])
		}
	}
}

type countingRecorder struct {
	mu    chan struct{}
	bytes map[string]int
}

func (r *countingRecorder) RecordTraffic(from, to, class string, n int) {
	<-r.mu
	r.bytes[from+"->"+to+"/"+class] += n
	r.mu <- struct{}{}
}

func TestTrafficRecording(t *testing.T) {
	n := twoHosts(t, Open)
	rec := &countingRecorder{mu: make(chan struct{}, 1), bytes: make(map[string]int)}
	rec.mu <- struct{}{}
	n.SetRecorder(rec)
	l, err := n.Listen("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetClass("ipl")
	if _, err := conn.Send(make([]byte, 42), 0); err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Send(make([]byte, 7), 0); err != nil {
		t.Fatal(err)
	}
	<-rec.mu
	defer func() { rec.mu <- struct{}{} }()
	if rec.bytes["a->b/ipl"] != 42 {
		t.Fatalf("a->b bytes = %d, want 42", rec.bytes["a->b/ipl"])
	}
	if rec.bytes["b->a/ipl"] != 7 {
		t.Fatalf("b->a bytes = %d, want 7 (class should propagate to peer)", rec.bytes["b->a/ipl"])
	}
}

func TestAddCluster(t *testing.T) {
	n := New()
	c, err := n.AddCluster(ClusterSpec{
		Name: "das4-vu", Site: "amsterdam", Nodes: 4,
		FrontendPolicy: SSHOnly, NodePolicy: OutboundOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size %d, want 4", c.Size())
	}
	// Nodes reach the frontend and each other (via frontend switch).
	if !n.Reachable(c.Node(0), c.Frontend) {
		t.Fatal("node cannot reach frontend")
	}
	if !n.Reachable(c.Node(0), c.Node(3)) {
		t.Fatal("node cannot reach sibling node")
	}
	// Intra-site dialing works despite OutboundOnly nodes.
	if _, err := n.Listen(c.Node(3), 80); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial(c.Node(0), c.Node(3), 80); err != nil {
		t.Fatalf("intra-cluster dial: %v", err)
	}
}

func TestAllowsInboundFrom(t *testing.T) {
	n := twoHosts(t, OutboundOnly)
	ok, err := n.AllowsInboundFrom("b", "a", 80)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("firewalled host reported as accepting inbound")
	}
	ok, err = n.AllowsInboundFrom("a", "b", 80)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("open host reported as refusing inbound")
	}
}

func TestReachable(t *testing.T) {
	n := twoHosts(t, Open)
	if !n.Reachable("a", "b") {
		t.Fatal("a should reach b")
	}
	if err := n.SetHostUp("b", false); err != nil {
		t.Fatal(err)
	}
	if n.Reachable("a", "b") {
		t.Fatal("down host reported reachable")
	}
	if n.Reachable("a", "ghost") {
		t.Fatal("unknown host reported reachable")
	}
}

func TestCrashHostBreaksConnections(t *testing.T) {
	n := New()
	if _, err := n.AddHost("a", "s1", Open); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("b", "s2", Open); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("a", "b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	l, err := n.Listen("b", 100)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a", "b", 100)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	recvErr := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		recvErr <- err
	}()
	if err := n.CrashHost("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after crash: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer recv did not unblock after crash")
	}
	if _, err := conn.Send([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after crash: %v", err)
	}
	if _, err := n.Dial("b", "a", 1); err == nil {
		t.Fatal("dial to crashed host succeeded")
	}
	if err := n.CrashHost("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("crash unknown host: %v", err)
	}
}
