// Package vnet simulates the network fabric of a Jungle Computing System:
// hosts grouped into sites, links with latency and bandwidth, firewalls and
// NATs that break inbound connectivity, and message-based connections whose
// delivery times are accounted in virtual time.
//
// It substitutes for the paper's physical testbed (DAS-4 clusters in four
// cities, the LGM GPU cluster, a desktop on 1 GbE, a laptop in Seattle behind
// a transatlantic 1G lightpath). Connectivity pathologies — the reason
// SmartSockets exists — are reproduced via per-host firewall policies.
package vnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Common errors returned by dialing.
var (
	ErrUnknownHost  = errors.New("vnet: unknown host")
	ErrNoRoute      = errors.New("vnet: no route to host")
	ErrRefused      = errors.New("vnet: connection refused (no listener)")
	ErrFirewalled   = errors.New("vnet: connection blocked by firewall")
	ErrClosed       = errors.New("vnet: connection closed")
	ErrHostDown     = errors.New("vnet: host is down")
	ErrPortInUse    = errors.New("vnet: port already in use")
	ErrPartitioned  = errors.New("vnet: network partitioned")
	errListenerDone = errors.New("vnet: listener closed")
)

// Policy is a host firewall policy.
type Policy int

const (
	// Open accepts inbound connections from anywhere.
	Open Policy = iota
	// OutboundOnly rejects all inbound connection attempts that originate
	// outside the host's own site (a firewall or NAT). Outbound traffic and
	// intra-site traffic are unaffected, matching cluster-internal networks.
	OutboundOnly
	// SSHOnly rejects inbound connections except on the SSH port (22),
	// modelling the cluster front-ends of the paper through which tunnels
	// are built.
	SSHOnly
)

func (p Policy) String() string {
	switch p {
	case Open:
		return "open"
	case OutboundOnly:
		return "outbound-only"
	case SSHOnly:
		return "ssh-only"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SSHPort is the well-known port that SSHOnly hosts still accept.
const SSHPort = 22

// LoopbackBandwidth is the modeled bandwidth of a same-host connection
// (bytes/second); see Route. Exported so overlay-aware consumers (the
// goodput prober) can discount loopback legs from path measurements.
const LoopbackBandwidth = 2e9

// Host is a machine in the virtual network.
type Host struct {
	Name   string
	Site   string
	Policy Policy

	mu        sync.Mutex
	up        bool
	listeners map[int]*Listener
}

// Link connects two hosts (bidirectionally) with a latency and a bandwidth
// in bytes/second. StreamCap, when non-zero, limits the bandwidth a single
// connection (stream) can extract from the link — the classic WAN situation
// where one TCP stream saturates far below the link capacity and tools like
// GridFTP open parallel streams to fill the pipe. Zero means a single
// stream may use the full Bandwidth.
type Link struct {
	A, B      string
	Latency   time.Duration
	Bandwidth float64
	StreamCap float64
}

// Path is the routed property set between two hosts: total latency, the
// minimum bandwidth along the way, and the hop sequence. StreamBandwidth is
// the bottleneck per-stream bandwidth (see Link.StreamCap); it equals
// Bandwidth when no link on the path caps single streams.
type Path struct {
	Latency         time.Duration
	Bandwidth       float64
	StreamBandwidth float64
	Hops            []string
}

// TransferTime returns the virtual time needed to move n bytes across the
// path: latency plus serialization at the bottleneck per-stream bandwidth.
func (p Path) TransferTime(n int) time.Duration {
	d := p.Latency
	bw := p.Bandwidth
	if p.StreamBandwidth > 0 && p.StreamBandwidth < bw {
		bw = p.StreamBandwidth
	}
	if n > 0 && bw > 0 {
		d += time.Duration(float64(n) / bw * float64(time.Second))
	}
	return d
}

// TrafficRecorder observes bytes moved between hosts, used by the trace
// package to regenerate the Fig. 11 traffic visualization.
type TrafficRecorder interface {
	RecordTraffic(from, to, class string, bytes int)
}

// GoodputRecorder is optionally implemented by a TrafficRecorder to receive
// measured per-link goodput samples (bytes/second) from the SmartSockets
// prober, feeding the per-link health view.
type GoodputRecorder interface {
	RecordGoodput(from, to string, bytesPerSec float64, at time.Duration)
}

// Network is the virtual fabric: hosts, links and routes.
type Network struct {
	mu       sync.RWMutex
	hosts    map[string]*Host
	adj      map[string][]Link
	routes   map[[2]string]Path // cache, invalidated on topology change
	conns    map[string][]*Conn // live conns by endpoint host (for CrashHost)
	recorder TrafficRecorder
}

// New returns an empty network.
func New() *Network {
	return &Network{
		hosts:  make(map[string]*Host),
		adj:    make(map[string][]Link),
		routes: make(map[[2]string]Path),
		conns:  make(map[string][]*Conn),
	}
}

// SetRecorder installs a traffic recorder; nil disables recording.
func (n *Network) SetRecorder(r TrafficRecorder) {
	n.mu.Lock()
	n.recorder = r
	n.mu.Unlock()
}

// AddHost creates a host at the given site with the given firewall policy.
func (n *Network) AddHost(name, site string, p Policy) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[name]; ok {
		return nil, fmt.Errorf("vnet: host %q already exists", name)
	}
	h := &Host{Name: name, Site: site, Policy: p, up: true, listeners: make(map[int]*Listener)}
	n.hosts[name] = h
	n.routes = make(map[[2]string]Path)
	return h, nil
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hosts[name]
}

// Hosts returns all host names, sorted.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AddLink connects hosts a and b bidirectionally.
func (n *Network) AddLink(a, b string, latency time.Duration, bandwidth float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[a]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, a)
	}
	if _, ok := n.hosts[b]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, b)
	}
	l := Link{A: a, B: b, Latency: latency, Bandwidth: bandwidth}
	n.adj[a] = append(n.adj[a], l)
	n.adj[b] = append(n.adj[b], Link{A: b, B: a, Latency: latency, Bandwidth: bandwidth})
	n.routes = make(map[[2]string]Path)
	return nil
}

// Recorder returns the installed traffic recorder (nil when none). The
// observability plane uses it to find the testbed's trace recorder from
// layers that only see the network.
func (n *Network) Recorder() TrafficRecorder {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.recorder
}

// Links returns every configured link once (undirected, in insertion
// order per host, deduplicated), sorted by (A, B) with A < B. The
// calibration pass enumerates them to compare configured bandwidth
// against measured goodput edge by edge.
func (n *Network) Links() []Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := make(map[[2]string]bool)
	var links []Link
	for _, adj := range n.adj {
		for _, l := range adj {
			a, b := l.A, l.B
			if a > b {
				a, b = b, a
			}
			if seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			links = append(links, Link{A: a, B: b, Latency: l.Latency, Bandwidth: l.Bandwidth, StreamCap: l.StreamCap})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return links
}

// SetLinkStreamCap sets the per-stream bandwidth cap on the a<->b link (both
// directions). cap 0 removes the cap. Routes are recomputed on next use.
func (n *Network) SetLinkStreamCap(a, b string, cap float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	found := false
	for _, host := range [2]string{a, b} {
		for i := range n.adj[host] {
			l := &n.adj[host][i]
			if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
				l.StreamCap = cap
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("%w: no link %s<->%s", ErrNoRoute, a, b)
	}
	n.routes = make(map[[2]string]Path)
	return nil
}

// SetHostUp marks a host up or down; dialing a down host (or through it)
// fails, and its listeners are unreachable. Used for fault injection.
func (n *Network) SetHostUp(name string, up bool) error {
	h := n.Host(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	h.mu.Lock()
	h.up = up
	h.mu.Unlock()
	return nil
}

// CrashHost simulates a machine vanishing: the host goes down, its
// listeners close and every live connection with an endpoint on it breaks.
// This is the paper's hard fault ("a machine crashes"), as opposed to a
// scheduler cancel.
func (n *Network) CrashHost(name string) error {
	h := n.Host(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	h.mu.Lock()
	h.up = false
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	h.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	n.mu.Lock()
	conns := n.conns[name]
	delete(n.conns, name)
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// trackConn registers a live connection for CrashHost; closed conns are
// pruned lazily on the next crash of either endpoint.
func (n *Network) trackConn(c *Conn) {
	n.mu.Lock()
	n.conns[c.local] = append(n.conns[c.local], c)
	if c.remote != c.local {
		n.conns[c.remote] = append(n.conns[c.remote], c)
	}
	n.mu.Unlock()
}

// Up reports whether the host is up.
func (h *Host) Up() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up
}

// Route computes (and caches) the lowest-latency path between two hosts
// using Dijkstra over link latencies. Down hosts do not forward traffic.
func (n *Network) Route(from, to string) (Path, error) {
	if from == to {
		// Loopback: the paper measures >8 Gbit/s and "extremely small
		// latency" for the daemon's local socket; model 10 µs / 16 Gbit/s.
		return Path{Latency: 10 * time.Microsecond, Bandwidth: LoopbackBandwidth,
			StreamBandwidth: LoopbackBandwidth, Hops: []string{from}}, nil
	}
	n.mu.RLock()
	if p, ok := n.routes[[2]string{from, to}]; ok {
		n.mu.RUnlock()
		return p, nil
	}
	n.mu.RUnlock()

	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.routes[[2]string{from, to}]; ok {
		return p, nil
	}
	if _, ok := n.hosts[from]; !ok {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownHost, from)
	}
	if _, ok := n.hosts[to]; !ok {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownHost, to)
	}
	p, err := n.dijkstraLocked(from, to)
	if err != nil {
		return Path{}, err
	}
	n.routes[[2]string{from, to}] = p
	return p, nil
}

func (n *Network) dijkstraLocked(from, to string) (Path, error) {
	type state struct {
		lat  time.Duration
		bw   float64
		sbw  float64
		prev string
		done bool
	}
	st := map[string]*state{from: {bw: 1e30, sbw: 1e30}}
	for {
		// Extract the unfinished node with minimal latency (n is small;
		// linear scan keeps the code simple).
		var cur string
		var curSt *state
		for name, s := range st {
			if s.done {
				continue
			}
			if curSt == nil || s.lat < curSt.lat {
				cur, curSt = name, s
			}
		}
		if curSt == nil {
			return Path{}, ErrNoRoute
		}
		if cur == to {
			// Reconstruct hops.
			hops := []string{to}
			for at := to; at != from; {
				at = st[at].prev
				hops = append(hops, at)
			}
			for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
				hops[i], hops[j] = hops[j], hops[i]
			}
			return Path{Latency: curSt.lat, Bandwidth: curSt.bw, StreamBandwidth: curSt.sbw, Hops: hops}, nil
		}
		curSt.done = true
		// Down hosts (other than the endpoints' own status, checked at
		// dial time) do not forward.
		if h := n.hosts[cur]; h != nil && cur != from && !h.Up() {
			continue
		}
		for _, l := range n.adj[cur] {
			lat := curSt.lat + l.Latency
			bw := curSt.bw
			if l.Bandwidth < bw {
				bw = l.Bandwidth
			}
			linkSBW := l.Bandwidth
			if l.StreamCap > 0 && l.StreamCap < linkSBW {
				linkSBW = l.StreamCap
			}
			sbw := curSt.sbw
			if linkSBW < sbw {
				sbw = linkSBW
			}
			s, ok := st[l.B]
			if !ok {
				st[l.B] = &state{lat: lat, bw: bw, sbw: sbw, prev: cur}
			} else if !s.done && lat < s.lat {
				s.lat, s.bw, s.sbw, s.prev = lat, bw, sbw, cur
			}
		}
	}
}

// Reachable reports whether a route exists between two (up) hosts.
func (n *Network) Reachable(from, to string) bool {
	hf, ht := n.Host(from), n.Host(to)
	if hf == nil || ht == nil || !hf.Up() || !ht.Up() {
		return false
	}
	_, err := n.Route(from, to)
	return err == nil
}

// allowsInbound applies the destination host's firewall policy.
func allowsInbound(dst *Host, fromSite string, port int) bool {
	switch dst.Policy {
	case Open:
		return true
	case OutboundOnly:
		return fromSite == dst.Site
	case SSHOnly:
		return fromSite == dst.Site || port == SSHPort
	default:
		return false
	}
}

// AllowsInboundFrom reports whether the destination host would accept a
// connection on port from a host at fromSite. Exposed for SmartSockets'
// connection planning.
func (n *Network) AllowsInboundFrom(dst, from string, port int) (bool, error) {
	d, f := n.Host(dst), n.Host(from)
	if d == nil {
		return false, fmt.Errorf("%w: %q", ErrUnknownHost, dst)
	}
	if f == nil {
		return false, fmt.Errorf("%w: %q", ErrUnknownHost, from)
	}
	return allowsInbound(d, f.Site, port), nil
}

// RecordTransfer reports an out-of-band transfer (e.g. file staging, which
// bypasses Conn) to the installed traffic recorder.
func (n *Network) RecordTransfer(from, to, class string, bytes int) {
	n.record(from, to, class, bytes)
}

// RecordGoodput reports a measured goodput sample to the installed recorder,
// if it implements GoodputRecorder.
func (n *Network) RecordGoodput(from, to string, bytesPerSec float64, at time.Duration) {
	n.mu.RLock()
	r := n.recorder
	n.mu.RUnlock()
	if g, ok := r.(GoodputRecorder); ok {
		g.RecordGoodput(from, to, bytesPerSec, at)
	}
}

func (n *Network) record(from, to, class string, bytes int) {
	n.mu.RLock()
	r := n.recorder
	n.mu.RUnlock()
	if r != nil {
		r.RecordTraffic(from, to, class, bytes)
	}
}
