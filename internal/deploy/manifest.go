package deploy

import (
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint-manifest persistence. The coupler serializes a manifest
// itself (internal/core); this package owns the durability contract: a
// manifest file on disk is either the previous complete checkpoint or the
// new complete checkpoint, never a torn write — a run killed mid-save
// must still be resumable from its last good manifest.

// WriteFileAtomic writes data to path through a temp file in the same
// directory followed by a rename, so readers never observe a partial
// file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("deploy: manifest temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("deploy: manifest write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("deploy: manifest close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("deploy: manifest rename: %w", err)
	}
	return nil
}
