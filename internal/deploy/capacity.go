package deploy

import "sync"

// Capacity accounting. The control plane needs one truthful answer to
// "how many nodes of this resource are spoken for, and by whom?" — across
// every live session sharing the deployment. Two books feed that answer:
//
//   - commitments: nodes occupied by actually-running worker jobs. The
//     core daemon commits when it starts a worker and releases exactly
//     once when the worker stops or dies.
//   - reservations: nodes promised to an admitted session whose workers
//     have not all started yet. The session scheduler reserves a whole
//     session's demand at admission and releases it at eviction/close.
//
// A session's workers start against its own reservation, so the two books
// overlap for the same owner. The per-resource total therefore merges
// them per owner with max(reserved, committed) — never the sum — while
// anonymous commitments (owner "", sessionless simulations) simply add
// up. That keeps admission, placement and SelectResource fairness all
// reading one consistent occupancy figure with no double counting.

// CapacityMonitor receives a capacity gauge update whenever a resource's
// occupancy changes (trace.Recorder satisfies it; see RenderHealth).
type CapacityMonitor interface {
	RecordCapacity(resource string, occupied, total int)
}

// capLedger tracks reserved/committed nodes per resource per owner.
type capLedger struct {
	mu        sync.Mutex
	reserved  map[string]map[string]int // resource -> owner -> nodes
	committed map[string]map[string]int
	mon       CapacityMonitor
}

// SetMonitor installs the capacity gauge observer. Every ledger mutation
// afterwards reports the resource's fresh occupancy to it.
func (d *Deployment) SetMonitor(m CapacityMonitor) {
	d.cap.mu.Lock()
	d.cap.mon = m
	d.cap.mu.Unlock()
}

// recordCapacity pushes one resource's current occupancy to the monitor.
// Called after the ledger mutation's unlock — OccupiedNodes retakes the
// ledger lock.
func (d *Deployment) recordCapacity(m CapacityMonitor, resource string) {
	if m == nil {
		return
	}
	total := 0
	if r, err := d.Resource(resource); err == nil {
		total = r.NodeCount()
	}
	m.RecordCapacity(resource, d.OccupiedNodes(resource), total)
}

func (l *capLedger) add(book map[string]map[string]int, resource, owner string, nodes int) map[string]map[string]int {
	if book == nil {
		book = make(map[string]map[string]int)
	}
	m := book[resource]
	if m == nil {
		m = make(map[string]int)
		book[resource] = m
	}
	m[owner] += nodes
	if m[owner] <= 0 {
		delete(m, owner)
	}
	return book
}

// ReserveNodes records a capacity reservation for owner on a resource
// (the scheduler's admission-time claim on a session's whole demand).
func (d *Deployment) ReserveNodes(resource, owner string, nodes int) {
	if nodes <= 0 {
		return
	}
	d.cap.mu.Lock()
	d.cap.reserved = d.cap.add(d.cap.reserved, resource, owner, nodes)
	m := d.cap.mon
	d.cap.mu.Unlock()
	d.recordCapacity(m, resource)
}

// ReleaseReserved returns previously reserved nodes.
func (d *Deployment) ReleaseReserved(resource, owner string, nodes int) {
	if nodes <= 0 {
		return
	}
	d.cap.mu.Lock()
	d.cap.reserved = d.cap.add(d.cap.reserved, resource, owner, -nodes)
	m := d.cap.mon
	d.cap.mu.Unlock()
	d.recordCapacity(m, resource)
}

// CommitNodes records nodes occupied by a running worker job. owner is
// the session the worker belongs to ("" for sessionless simulations).
func (d *Deployment) CommitNodes(resource, owner string, nodes int) {
	if nodes <= 0 {
		return
	}
	d.cap.mu.Lock()
	d.cap.committed = d.cap.add(d.cap.committed, resource, owner, nodes)
	m := d.cap.mon
	d.cap.mu.Unlock()
	d.recordCapacity(m, resource)
}

// ReleaseNodes returns previously committed nodes (worker stopped/died).
func (d *Deployment) ReleaseNodes(resource, owner string, nodes int) {
	if nodes <= 0 {
		return
	}
	d.cap.mu.Lock()
	d.cap.committed = d.cap.add(d.cap.committed, resource, owner, -nodes)
	m := d.cap.mon
	d.cap.mu.Unlock()
	d.recordCapacity(m, resource)
}

// mergedLocked returns one owner's occupancy contribution on a resource.
func (l *capLedger) ownerLocked(resource, owner string) int {
	res := l.reserved[resource][owner]
	com := l.committed[resource][owner]
	if owner == "" {
		// Anonymous entries have no session identity to merge under: a
		// reservation without an owner (which the scheduler never makes)
		// and sessionless worker commitments are distinct claims.
		return res + com
	}
	if com > res {
		return com
	}
	return res
}

// occupied sums every owner's merged contribution on a resource,
// optionally excluding one owner (a caller fitting its OWN work must not
// count capacity it already holds against itself).
func (l *capLedger) occupied(resource, except string, useExcept bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	owners := make(map[string]bool)
	for o := range l.reserved[resource] {
		owners[o] = true
	}
	for o := range l.committed[resource] {
		owners[o] = true
	}
	total := 0
	for o := range owners {
		if useExcept && o == except {
			continue
		}
		total += l.ownerLocked(resource, o)
	}
	return total
}

// OccupiedNodes returns the total nodes spoken for on a resource across
// all owners: running workers plus admission reservations, max-merged per
// session so a session starting against its own reservation is counted
// once.
func (d *Deployment) OccupiedNodes(resource string) int {
	return d.cap.occupied(resource, "", false)
}

// OccupiedNodesByOthers returns the nodes spoken for on a resource by
// every owner except the given one — what a placement decision for that
// owner's work must subtract from the resource's capacity.
func (d *Deployment) OccupiedNodesByOthers(resource, owner string) int {
	return d.cap.occupied(resource, owner, true)
}

// OwnerNodes returns one owner's merged occupancy on a resource.
func (d *Deployment) OwnerNodes(resource, owner string) int {
	d.cap.mu.Lock()
	defer d.cap.mu.Unlock()
	return d.cap.ownerLocked(resource, owner)
}
