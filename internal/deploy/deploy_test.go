package deploy

import (
	"errors"
	"strings"
	"testing"
	"time"

	"jungle/internal/gat"
	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
	"jungle/internal/zorilla"
)

// labNet builds a miniature of the paper's Fig. 12 network: a desktop at
// the VU plus two DAS-4-style clusters and a stand-alone GPU machine.
func labNet(t *testing.T) (*vnet.Network, *vnet.Cluster, *vnet.Cluster) {
	t.Helper()
	n := vnet.New()
	if _, err := n.AddHost("desktop", "vu", vnet.Open); err != nil {
		t.Fatal(err)
	}
	vu, err := n.AddCluster(vnet.ClusterSpec{Name: "das4-vu", Site: "vu", Nodes: 8,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly})
	if err != nil {
		t.Fatal(err)
	}
	tud, err := n.AddCluster(vnet.ClusterSpec{Name: "das4-tud", Site: "tud", Nodes: 2,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("lgm", "leiden", vnet.SSHOnly); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{
		{"desktop", vu.Frontend}, {"desktop", tud.Frontend}, {"desktop", "lgm"},
		{vu.Frontend, tud.Frontend}, {vu.Frontend, "lgm"},
	} {
		if err := n.AddLink(pair[0], pair[1], time.Millisecond, 1.25e8); err != nil {
			t.Fatal(err)
		}
	}
	return n, vu, tud
}

func newDeployment(t *testing.T) (*Deployment, *vnet.Cluster, *vnet.Cluster) {
	t.Helper()
	n, vu, tud := labNet(t)
	d, err := New(n, "desktop")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, vu, tud
}

func TestAddResourceStartsHubs(t *testing.T) {
	d, vu, tud := newDeployment(t)
	if err := d.AddResource(Resource{
		Name: "das4-vu", Middleware: "sge", Frontend: vu.Frontend, Nodes: vu.NodeName,
		CPU: &vtime.Device{Name: "xeon", Kind: vtime.CPU, Gflops: 5, Cores: 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddResource(Resource{
		Name: "das4-tud", Middleware: "sge", Frontend: tud.Frontend, Nodes: tud.NodeName,
	}); err != nil {
		t.Fatal(err)
	}
	// Local hub + one hub per resource, all linked.
	hubs := d.Overlay().Hubs()
	if len(hubs) != 3 {
		t.Fatalf("hubs = %d", len(hubs))
	}
	if !d.Overlay().Connected() {
		t.Fatal("overlay not connected")
	}
	// The VU frontend shares the desktop's site: its SSHOnly policy admits
	// intra-site dials, so that hub link is direct. The TUD frontend is at
	// another site: its link must be an SSH tunnel — a red line of Fig. 10.
	types := map[string]smartsockets.EdgeType{}
	for _, e := range d.Overlay().Edges() {
		types[e.A+"|"+e.B] = e.Type
	}
	if got := types[vu.Frontend+"|desktop"]; got != smartsockets.EdgeDirect {
		t.Fatalf("vu edge = %v, want direct (same site)", got)
	}
	if got := types[tud.Frontend+"|desktop"]; got != smartsockets.EdgeSSH {
		t.Fatalf("tud edge = %v, want ssh-tunnel", got)
	}
}

func TestResourceValidation(t *testing.T) {
	d, vu, _ := newDeployment(t)
	if err := d.AddResource(Resource{Name: "x", Middleware: "condor", Frontend: vu.Frontend}); !errors.Is(err, ErrBadMiddleware) {
		t.Fatalf("err = %v", err)
	}
	if err := d.AddResource(Resource{Name: "x", Middleware: "ssh", Frontend: "ghost"}); !errors.Is(err, vnet.ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
	ok := Resource{Name: "vu", Middleware: "sge", Frontend: vu.Frontend, Nodes: vu.NodeName}
	if err := d.AddResource(ok); err != nil {
		t.Fatal(err)
	}
	if err := d.AddResource(ok); !errors.Is(err, ErrDupResource) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Resource("nope"); !errors.Is(err, ErrUnknownResource) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitToClusterResource(t *testing.T) {
	d, vu, _ := newDeployment(t)
	if err := d.AddResource(Resource{
		Name: "das4-vu", Middleware: "sge", Frontend: vu.Frontend, Nodes: vu.NodeName,
	}); err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	d.Catalog.Register("worker", func(ctx *gat.Context) error {
		got <- len(ctx.Hosts)
		return nil
	})
	j, err := d.Submit("das4-vu", gat.JobDescription{Executable: "worker", Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := <-got; n != 8 {
		t.Fatalf("allocated %d nodes", n)
	}
	if err := d.WaitAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitToSSHResource(t *testing.T) {
	d, _, _ := newDeployment(t)
	if err := d.AddResource(Resource{
		Name: "lgm", Middleware: "ssh", Frontend: "lgm",
		GPU: &vtime.Device{Name: "c2050", Kind: vtime.GPU, Gflops: 300, Cores: 1},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Resource("lgm")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasGPU() || r.NodeCount() != 1 {
		t.Fatalf("resource = %+v", r)
	}
	d.Catalog.Register("gpu-worker", func(ctx *gat.Context) error { return nil })
	j, err := d.Submit("lgm", gat.JobDescription{Executable: "gpu-worker"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitToZorillaResource(t *testing.T) {
	n := vnet.New()
	for _, h := range []string{"a", "b", "c"} {
		if _, err := n.AddHost(h, "office", vnet.Open); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddLink("a", "b", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("b", "c", time.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	d, err := New(n, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	zo := zorilla.New(n, 3)
	for i, h := range []string{"a", "b", "c"} {
		boot := ""
		if i > 0 {
			boot = "a"
		}
		if _, err := zo.AddPeer(h, boot); err != nil {
			t.Fatal(err)
		}
	}
	zo.GossipRounds(4)
	d.UseZorilla(zo)
	if err := d.AddResource(Resource{Name: "office", Middleware: "zorilla", Frontend: "a"}); err != nil {
		t.Fatal(err)
	}
	d.Catalog.Register("p2p", func(ctx *gat.Context) error { return nil })
	j, err := d.Submit("office", gat.JobDescription{Executable: "p2p", Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderStatus(t *testing.T) {
	d, vu, _ := newDeployment(t)
	if err := d.AddResource(Resource{
		Name: "das4-vu", Middleware: "sge", Frontend: vu.Frontend, Nodes: vu.NodeName,
		GPU: &vtime.Device{Name: "gtx480", Kind: vtime.GPU, Gflops: 350, Cores: 1},
	}); err != nil {
		t.Fatal(err)
	}
	d.Catalog.Register("w", func(*gat.Context) error { return nil })
	j, err := d.Submit("das4-vu", gat.JobDescription{Executable: "w"})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	s := d.RenderStatus()
	for _, want := range []string{"das4-vu", "sge", "+gpu:gtx480", "stopped", "SmartSockets overlay"} {
		if !strings.Contains(s, want) {
			t.Fatalf("status missing %q:\n%s", want, s)
		}
	}
}

func TestParseConfig(t *testing.T) {
	text := `
# lab resources
[resource das4-vu]
middleware = sge
frontend   = das4-vu.fe
nodes      = das4-vu.node00, das4-vu.node01
cpu        = xeon 5.0 8
gpu        = gtx480 350 40

[resource desktop]
middleware = local
frontend   = desktop
cpu        = core2 1.0 4
`
	rs, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("resources = %d", len(rs))
	}
	vu := rs[0]
	if vu.Name != "das4-vu" || vu.Middleware != "sge" || len(vu.Nodes) != 2 {
		t.Fatalf("vu = %+v", vu)
	}
	if vu.CPU == nil || vu.CPU.Cores != 8 || vu.CPU.Gflops != 5 {
		t.Fatalf("cpu = %+v", vu.CPU)
	}
	if vu.GPU == nil || vu.GPU.Kind != vtime.GPU || vu.GPU.LaunchLatency != 40*time.Microsecond {
		t.Fatalf("gpu = %+v", vu.GPU)
	}
	if rs[1].CPU.Cores != 4 {
		t.Fatalf("desktop cpu = %+v", rs[1].CPU)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"middleware = sge",                        // key outside section
		"[cluster x]\nmiddleware=sge",             // wrong section kind
		"[resource x]\nmiddleware sge",            // missing =
		"[resource x]\nbogus = 1",                 // unknown key
		"[resource x]\ncpu = xeon",                // missing gflops
		"[resource x]\ncpu = xeon abc",            // bad gflops
		"[resource x]\nfrontend = y",              // missing middleware
		"[resource x]\nmiddleware = sge",          // missing frontend
		"[resource x\nmiddleware=sge\nfrontend=y", // unterminated section
	}
	for _, c := range cases {
		if _, err := ParseConfig(c); err == nil {
			t.Fatalf("config accepted: %q", c)
		}
	}
}

func TestConfigRoundTripIntoDeployment(t *testing.T) {
	d, vu, tud := newDeployment(t)
	text := `
[resource das4-vu]
middleware = sge
frontend   = ` + vu.Frontend + `
nodes      = ` + strings.Join(vu.NodeName, ", ") + `
cpu        = xeon 5.0 8

[resource das4-tud]
middleware = sge
frontend   = ` + tud.Frontend + `
nodes      = ` + strings.Join(tud.NodeName, ", ") + `
cpu        = xeon 5.0 8
gpu        = gtx480 350
`
	rs, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if err := d.AddResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Resources(); len(got) != 2 {
		t.Fatalf("resources = %v", got)
	}
	if !d.Overlay().Connected() {
		t.Fatal("overlay not connected after config load")
	}
}
