package deploy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"jungle/internal/vtime"
)

// ParseConfig reads IbisDeploy-style resource descriptions: an INI-like
// format with one [resource <name>] section per resource — the "small
// number of simple configuration files" of §3.
//
//	# comment
//	[resource das4-vu]
//	middleware = sge
//	frontend   = das4-vu.fe
//	nodes      = das4-vu.node00, das4-vu.node01
//	cpu        = xeon 5.0 8          # name gflops cores [launch-us]
//	gpu        = gtx480 350          # name gflops [launch-us]
//	hub        = das4-vu.fe
//	speed      = das4-vu.node01 0.25 # per-node derating factor
func ParseConfig(text string) ([]Resource, error) {
	var out []Resource
	var cur *Resource
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("deploy: config line %d: unterminated section %q", lineNo+1, raw)
			}
			parts := strings.Fields(line[1 : len(line)-1])
			if len(parts) != 2 || parts[0] != "resource" {
				return nil, fmt.Errorf("deploy: config line %d: expected [resource <name>], got %q", lineNo+1, raw)
			}
			flush()
			cur = &Resource{Name: parts[1]}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("deploy: config line %d: key outside a section: %q", lineNo+1, raw)
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("deploy: config line %d: expected key = value, got %q", lineNo+1, raw)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "middleware":
			cur.Middleware = value
		case "frontend":
			cur.Frontend = value
		case "hub":
			cur.HubHost = value
		case "nodes":
			for _, n := range strings.Split(value, ",") {
				if n = strings.TrimSpace(n); n != "" {
					cur.Nodes = append(cur.Nodes, n)
				}
			}
		case "cpu":
			dev, err := parseDevice(value, vtime.CPU)
			if err != nil {
				return nil, fmt.Errorf("deploy: config line %d: %w", lineNo+1, err)
			}
			cur.CPU = dev
		case "gpu":
			dev, err := parseDevice(value, vtime.GPU)
			if err != nil {
				return nil, fmt.Errorf("deploy: config line %d: %w", lineNo+1, err)
			}
			cur.GPU = dev
		case "speed":
			f := strings.Fields(value)
			if len(f) != 2 {
				return nil, fmt.Errorf("deploy: config line %d: speed wants <node> <factor>, got %q", lineNo+1, value)
			}
			factor, err := strconv.ParseFloat(f[1], 64)
			if err != nil || factor <= 0 {
				return nil, fmt.Errorf("deploy: config line %d: bad speed factor %q", lineNo+1, f[1])
			}
			if cur.NodeSpeed == nil {
				cur.NodeSpeed = make(map[string]float64)
			}
			cur.NodeSpeed[f[0]] = factor
		default:
			return nil, fmt.Errorf("deploy: config line %d: unknown key %q", lineNo+1, key)
		}
	}
	flush()
	for i := range out {
		if out[i].Middleware == "" || out[i].Frontend == "" {
			return nil, fmt.Errorf("deploy: resource %q missing middleware or frontend", out[i].Name)
		}
	}
	return out, nil
}

// parseDevice parses "name gflops [cores] [launch-us]". GPUs default to one
// logical core; CPUs default to one core.
func parseDevice(s string, kind vtime.DeviceKind) (*vtime.Device, error) {
	f := strings.Fields(s)
	if len(f) < 2 {
		return nil, fmt.Errorf("device %q: want name gflops [cores] [launch-us]", s)
	}
	gflops, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return nil, fmt.Errorf("device %q: bad gflops: %v", s, err)
	}
	dev := &vtime.Device{Name: f[0], Kind: kind, Gflops: gflops, Cores: 1}
	idx := 2
	if kind == vtime.CPU && len(f) > idx {
		cores, err := strconv.Atoi(f[idx])
		if err != nil {
			return nil, fmt.Errorf("device %q: bad cores: %v", s, err)
		}
		dev.Cores = cores
		idx++
	}
	if len(f) > idx {
		us, err := strconv.ParseFloat(f[idx], 64)
		if err != nil {
			return nil, fmt.Errorf("device %q: bad launch latency: %v", s, err)
		}
		dev.LaunchLatency = time.Duration(us * float64(time.Microsecond))
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return dev, nil
}
