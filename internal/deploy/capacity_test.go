package deploy

import (
	"testing"

	"jungle/internal/vnet"
)

func capTestDeployment(t *testing.T) *Deployment {
	t.Helper()
	n := vnet.New()
	if _, err := n.AddHost("client", "site", vnet.Open); err != nil {
		t.Fatal(err)
	}
	d, err := New(n, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestCapacityLedgerMaxMerge: a session starting workers against its own
// admission reservation must be counted once (max-merge), anonymous
// commitments add up, and releases drain both books back to zero.
func TestCapacityLedgerMaxMerge(t *testing.T) {
	d := capTestDeployment(t)

	// Session s1 reserved 4 nodes at admission; 3 of its workers started.
	d.ReserveNodes("cluster", "s1", 4)
	d.CommitNodes("cluster", "s1", 3)
	if got := d.OwnerNodes("cluster", "s1"); got != 4 {
		t.Fatalf("s1 merged occupancy = %d, want max(4,3)=4", got)
	}
	// Its workers overshoot the reservation: commitments dominate.
	d.CommitNodes("cluster", "s1", 2)
	if got := d.OwnerNodes("cluster", "s1"); got != 5 {
		t.Fatalf("s1 merged occupancy = %d, want max(4,5)=5", got)
	}

	// A second session and two anonymous workers share the cluster.
	d.ReserveNodes("cluster", "s2", 2)
	d.CommitNodes("cluster", "", 1)
	d.CommitNodes("cluster", "", 1)
	if got := d.OccupiedNodes("cluster"); got != 5+2+2 {
		t.Fatalf("occupied = %d, want 9", got)
	}
	// Fitting s1's next worker must not count s1's own holdings.
	if got := d.OccupiedNodesByOthers("cluster", "s1"); got != 4 {
		t.Fatalf("occupied by others = %d, want 4", got)
	}

	// Releases drain to zero; negative balances never persist.
	d.ReleaseReserved("cluster", "s1", 4)
	d.ReleaseNodes("cluster", "s1", 5)
	d.ReleaseReserved("cluster", "s2", 2)
	d.ReleaseNodes("cluster", "", 2)
	if got := d.OccupiedNodes("cluster"); got != 0 {
		t.Fatalf("occupied after release = %d, want 0", got)
	}
	// Other resources are untouched.
	if got := d.OccupiedNodes("elsewhere"); got != 0 {
		t.Fatalf("untouched resource occupied = %d", got)
	}
}
