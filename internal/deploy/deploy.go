// Package deploy reimplements IbisDeploy: the deployment layer that lets a
// user describe resources in "a small number of simple configuration
// files", starts the SmartSockets hub each resource needs automatically,
// and submits jobs through JavaGAT — §3 and §5 of the paper. The rendered
// resource/job/overlay views regenerate the data behind the IbisDeploy GUI
// of Fig. 10.
//
// A Resource couples three things the rest of the stack keys on: the
// middleware adapter jobs are submitted through (local, ssh, pbs, sge,
// zorilla), the hub host that anchors the resource in the SmartSockets
// overlay, and per-node device models (CPU, optional GPU) that drive
// virtual-time accounting and the core layer's device-aware worker
// placement — including co-locating the rank workers of a gang on one
// resource so their halo exchange stays on the site's internal links.
package deploy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"jungle/internal/gat"
	"jungle/internal/smartsockets"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
	"jungle/internal/zorilla"
)

// Errors.
var (
	ErrUnknownResource = errors.New("deploy: unknown resource")
	ErrDupResource     = errors.New("deploy: resource already defined")
	ErrBadMiddleware   = errors.New("deploy: unsupported middleware")
)

// Middleware names accepted in resource descriptions.
var middlewares = map[string]bool{
	"local": true, "ssh": true, "pbs": true, "sge": true, "zorilla": true,
}

// Resource describes one compute resource, the information the paper's
// user supplies per resource: "hostname and type of middleware".
type Resource struct {
	Name       string
	Middleware string   // local | ssh | pbs | sge | zorilla
	Frontend   string   // submission host (and default hub host)
	Nodes      []string // compute nodes for batch clusters
	HubHost    string   // SmartSockets hub host (defaults to Frontend)

	// Device models per node: CPU always, GPU when the resource has
	// accelerators (the Multi-Kernel selector keys on this).
	CPU *vtime.Device
	GPU *vtime.Device

	// NodeSpeed optionally derates (or boosts) individual nodes of a
	// batch cluster relative to the resource's device model: a factor of
	// 0.25 means the node computes at a quarter of CPU/GPU Gflops. Nodes
	// absent from the map run at factor 1. This is the jungle
	// heterogeneity input the elastic-gang rebalancer reacts to.
	NodeSpeed map[string]float64
}

// NodeSpeedOf returns the speed factor for a node (1 when unset).
func (r *Resource) NodeSpeedOf(node string) float64 {
	if r.NodeSpeed == nil {
		return 1
	}
	if f, ok := r.NodeSpeed[node]; ok && f > 0 {
		return f
	}
	return 1
}

// NodeCount returns the schedulable node count (1 for non-batch resources).
func (r *Resource) NodeCount() int {
	if len(r.Nodes) > 0 {
		return len(r.Nodes)
	}
	return 1
}

// HasGPU reports whether the resource offers an accelerator.
func (r *Resource) HasGPU() bool { return r.GPU != nil }

// Deployment owns the broker, hub overlay and resource set for one user
// session (the paper's per-user Ibis daemon holds exactly one).
type Deployment struct {
	Net     *vnet.Network
	FS      *gat.FS
	Catalog *gat.Catalog
	Broker  *gat.Broker

	mu        sync.Mutex
	resources map[string]*Resource
	overlay   *smartsockets.Overlay
	localHost string
	jobs      []*gat.Job

	// cap is the multi-tenant capacity ledger (capacity.go): per-resource
	// reserved/committed nodes per owning session.
	cap capLedger
}

// New creates a deployment submitting from localHost. A hub is started on
// the local machine immediately (the coupler's side of the overlay).
func New(network *vnet.Network, localHost string) (*Deployment, error) {
	fs := gat.NewFS(network)
	cat := gat.NewCatalog()
	d := &Deployment{
		Net: network, FS: fs, Catalog: cat,
		Broker:    gat.NewBroker(network, fs, cat, localHost),
		resources: make(map[string]*Resource),
		overlay:   &smartsockets.Overlay{},
		localHost: localHost,
	}
	if _, err := d.overlay.AddHub(network, localHost); err != nil {
		return nil, fmt.Errorf("deploy: local hub: %w", err)
	}
	return d, nil
}

// LocalHost returns the submitting host.
func (d *Deployment) LocalHost() string { return d.localHost }

// Overlay returns the hub overlay (Fig. 10's top-right view).
func (d *Deployment) Overlay() *smartsockets.Overlay { return d.overlay }

// UseZorilla installs the Zorilla adapter so "zorilla" resources work.
func (d *Deployment) UseZorilla(o *zorilla.Overlay) {
	d.Broker.AddAdapter(&zorilla.Adapter{Overlay: o})
}

// AddResource registers a resource: the cluster scheduler is created for
// batch middleware and — as IbisDeploy does automatically — a SmartSockets
// hub is started on the resource and linked into the overlay.
func (d *Deployment) AddResource(r Resource) error {
	if r.Name == "" || r.Frontend == "" {
		return fmt.Errorf("deploy: resource needs name and frontend (%+v)", r)
	}
	if !middlewares[r.Middleware] {
		return fmt.Errorf("%w: %q", ErrBadMiddleware, r.Middleware)
	}
	if d.Net.Host(r.Frontend) == nil {
		return fmt.Errorf("deploy: %w: %q", vnet.ErrUnknownHost, r.Frontend)
	}
	if r.HubHost == "" {
		r.HubHost = r.Frontend
	}
	d.mu.Lock()
	if _, dup := d.resources[r.Name]; dup {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDupResource, r.Name)
	}
	d.resources[r.Name] = &r
	d.mu.Unlock()

	if r.Middleware == "pbs" || r.Middleware == "sge" {
		d.Broker.RegisterCluster(r.Frontend, r.Nodes)
	}
	if _, err := d.overlay.AddHub(d.Net, r.HubHost); err != nil {
		return fmt.Errorf("deploy: hub on %s: %w", r.HubHost, err)
	}
	return nil
}

// SetNodeSpeed records a per-node speed factor on a registered resource
// (see Resource.NodeSpeed). Testbeds use it to induce rank skew.
func (d *Deployment) SetNodeSpeed(resource, node string, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("deploy: node speed factor must be positive, got %v", factor)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.resources[resource]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownResource, resource)
	}
	if r.NodeSpeed == nil {
		r.NodeSpeed = make(map[string]float64)
	}
	r.NodeSpeed[node] = factor
	return nil
}

// Resource returns a registered resource.
func (d *Deployment) Resource(name string) (*Resource, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.resources[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownResource, name)
	}
	return r, nil
}

// Resources returns all resource names, sorted.
func (d *Deployment) Resources() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.resources))
	for n := range d.resources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// uri maps a resource to its JavaGAT submission URI.
func (r *Resource) uri() string {
	switch r.Middleware {
	case "local":
		return "local://"
	default:
		return r.Middleware + "://" + r.Frontend
	}
}

// Submit starts a job on the named resource and tracks it.
func (d *Deployment) Submit(resource string, desc gat.JobDescription) (*gat.Job, error) {
	r, err := d.Resource(resource)
	if err != nil {
		return nil, err
	}
	j, err := d.Broker.Submit(desc, r.uri())
	if err != nil {
		return nil, fmt.Errorf("deploy: submit to %s: %w", resource, err)
	}
	d.mu.Lock()
	d.jobs = append(d.jobs, j)
	d.mu.Unlock()
	return j, nil
}

// Jobs returns all submitted jobs.
func (d *Deployment) Jobs() []*gat.Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*gat.Job(nil), d.jobs...)
}

// WaitAll blocks until every job stopped; it returns the first error.
func (d *Deployment) WaitAll() error {
	var first error
	for _, j := range d.Jobs() {
		if err := j.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CancelAll cancels all tracked jobs.
func (d *Deployment) CancelAll() {
	for _, j := range d.Jobs() {
		j.Cancel()
	}
}

// Stop cancels jobs and shuts the hub overlay down.
func (d *Deployment) Stop() {
	d.CancelAll()
	d.overlay.Stop()
}

// RenderStatus renders the IbisDeploy GUI's data: resources (top-left of
// Fig. 10), jobs (bottom half) and the overlay map (top-right).
func (d *Deployment) RenderStatus() string {
	var b strings.Builder
	b.WriteString("resources:\n")
	for _, name := range d.Resources() {
		r, _ := d.Resource(name)
		gpu := ""
		if r.HasGPU() {
			gpu = " +gpu:" + r.GPU.Name
		}
		fmt.Fprintf(&b, "  %-12s %-8s %-22s nodes=%d%s\n",
			name, r.Middleware, r.Frontend, r.NodeCount(), gpu)
	}
	b.WriteString("jobs:\n")
	for _, j := range d.Jobs() {
		fmt.Fprintf(&b, "  #%d %-24s %-8s on %-20s nodes=%d\n",
			j.ID, j.Desc.Executable, j.State(), j.Target, j.Desc.Nodes)
	}
	b.WriteString(d.overlay.RenderMap())
	return b.String()
}

// hubSettleBudget bounds how long deployment setup may take in real time;
// exposed for tests that assert setup stays fast.
const hubSettleBudget = 30 * time.Second
