package deploy

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomic: the write replaces the previous content in one
// step and leaves no temp files behind — a killed run's manifest is
// always either the old or the new complete checkpoint.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteFileAtomic(path, []byte("checkpoint-1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("checkpoint-2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "checkpoint-2" {
		t.Fatalf("content = %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}

	// A missing parent directory fails cleanly.
	if err := WriteFileAtomic(filepath.Join(dir, "nope", "x"), nil); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
