package exp

import (
	"strings"
	"testing"

	"jungle/internal/core"
)

// Experiments run at tiny scale in tests: correctness of the machinery,
// not the calibrated numbers (those are exercised by jungle-bench and the
// benchmarks at scale 1).

func TestE1ShapeAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	table, results, err := E1(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("scenarios = %d", len(results))
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Scenario] = r.PerIteration.Seconds()
	}
	// The paper's ordering: cpu-only slowest by far; local GPU much
	// faster; remote Tesla faster than local GeForce; jungle fastest.
	if !(byName["cpu-only"] > byName["local-gpu"]) {
		t.Fatalf("cpu-only (%v) not slower than local-gpu (%v)\n%s",
			byName["cpu-only"], byName["local-gpu"], table)
	}
	if !(byName["local-gpu"] > byName["remote-gpu"]) {
		t.Fatalf("local-gpu (%v) not slower than remote-gpu (%v)\n%s",
			byName["local-gpu"], byName["remote-gpu"], table)
	}
	if !(byName["remote-gpu"] > byName["jungle"]) {
		t.Fatalf("remote-gpu (%v) not slower than jungle (%v)\n%s",
			byName["remote-gpu"], byName["jungle"], table)
	}
	// Magnitude ratios (353:89:84:62.4) only hold at scale 1 — the phases
	// scale with different complexity laws — so small-scale runs assert
	// ordering only. BenchmarkE1 and TestE1FullScale check the ratios.
}

// TestE1FullScale verifies the calibrated headline numbers: the paper's
// 353 / 89 / 84 within tolerance, and the jungle scenario fastest (the
// reproduction wins by more than the paper's 62.4 — see EXPERIMENTS.md).
func TestE1FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibrated run")
	}
	_, results, err := E1(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Scenario] = r.PerIteration.Seconds()
	}
	within := func(name string, paper, tol float64) {
		got := byName[name]
		if got < paper*(1-tol) || got > paper*(1+tol) {
			t.Errorf("%s = %.1f s/iter, paper %.1f (±%.0f%%)", name, got, paper, tol*100)
		}
	}
	within("cpu-only", 353, 0.30)
	within("local-gpu", 89, 0.30)
	within("remote-gpu", 84, 0.30)
	if byName["jungle"] >= byName["remote-gpu"] {
		t.Errorf("jungle (%.1f) not fastest (remote-gpu %.1f)", byName["jungle"], byName["remote-gpu"])
	}
}

func TestE2TransatlanticPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	table, err := E2(0.04, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "transatlantic penalty: +") {
		t.Fatalf("no positive transatlantic penalty:\n%s", table)
	}
	if !strings.Contains(table, "SmartSockets overlay") {
		t.Fatalf("missing overlay map:\n%s", table)
	}
	// The SC11-style runs must move state on the direct worker-to-worker
	// plane by default, with the hairpin reachable only as fallback. The
	// leading space keeps "40 direct" from matching the zero check.
	if strings.Contains(table, " 0 direct") {
		t.Fatalf("a run moved no state over the direct plane:\n%s", table)
	}
	if !strings.Contains(table, "/ 0 fallback") {
		t.Fatalf("a healthy run fell back to the hairpin:\n%s", table)
	}
	// The mix line must distinguish the striped path (off by default, so
	// zero) from single-stream direct transfers.
	if !strings.Contains(table, "/ 0 striped") {
		t.Fatalf("transfer mix does not report the striped path:\n%s", table)
	}
}

func TestE3OverlayConnectivity(t *testing.T) {
	table, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "overlay connected: true") {
		t.Fatalf("overlay not connected:\n%s", table)
	}
	// The SC11 network must need non-direct links (SSH tunnels to the
	// cluster front-ends) — the red lines of Fig. 10.
	if strings.Contains(table, "ssh-tunnel  0") {
		t.Fatalf("expected ssh tunnels:\n%s", table)
	}
}

func TestE4TrafficClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	table, err := E4(0.04)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"ipl", "mpi", "loopback", "hub"} {
		if !strings.Contains(table, class) {
			t.Fatalf("traffic table missing class %q:\n%s", class, table)
		}
	}
}

func TestE5GasExpulsion(t *testing.T) {
	if testing.Short() {
		t.Skip("physics experiment")
	}
	table, stages, err := E5(40, 400, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	first, last := stages[0], stages[3]
	if last.SupernovaeSoFar == 0 {
		t.Fatalf("no supernovae:\n%s", table)
	}
	if !(last.BoundGasFrac < first.BoundGasFrac) {
		t.Fatalf("gas not unbound: %v -> %v\n%s", first.BoundGasFrac, last.BoundGasFrac, table)
	}
	if !(last.GasHalfMass > 1.5*first.GasHalfMass) {
		t.Fatalf("gas not expanding: Rh %v -> %v\n%s", first.GasHalfMass, last.GasHalfMass, table)
	}
	if !(last.StarHalfMass > first.StarHalfMass) {
		t.Fatalf("cluster did not expand: Rh %v -> %v\n%s", first.StarHalfMass, last.StarHalfMass, table)
	}
}

func TestE6CallSequence(t *testing.T) {
	out, calls, err := E6()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{
		"bridge.step", "coupler.field", "stars.kick", "gas.kick",
		"stars.evolve", "coupler.field", "stars.kick", "gas.kick", "stellar.evolve",
	}
	idx := 0
	for _, c := range calls {
		if idx < len(wantOrder) && strings.HasPrefix(c, wantOrder[idx]) {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Fatalf("sequence incomplete (%d/%d):\n%s", idx, len(wantOrder), out)
	}
}

func TestE7LoopbackReal(t *testing.T) {
	res, err := RunE7(64<<20, 1<<20, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims >8 Gbit/s on a modest 2011 laptop; any modern
	// machine's loopback far exceeds it, but CI boxes vary — require a
	// sane floor and a sub-millisecond RTT.
	if res.ThroughputGbit < 1 {
		t.Fatalf("loopback throughput %.2f Gbit/s", res.ThroughputGbit)
	}
	if res.RTT <= 0 || res.RTT.Milliseconds() > 5 {
		t.Fatalf("loopback RTT %v", res.RTT)
	}
	if !strings.Contains(E7Report(res), "Gbit/s") {
		t.Fatal("report missing throughput")
	}
}

func TestWorkloadScaling(t *testing.T) {
	w := DefaultWorkload().Scaled(0.1)
	if w.Stars != 100 || w.Gas != 1000 {
		t.Fatalf("scaled workload: %+v", w)
	}
	tiny := DefaultWorkload().Scaled(0.0001)
	if tiny.Stars < 10 || tiny.Gas < 20 {
		t.Fatalf("floor not applied: %+v", tiny)
	}
	stars, gas, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if stars.Len() != 100 || gas.Len() != 1000 {
		t.Fatal("build mismatch")
	}
}

func TestScenarioPlacements(t *testing.T) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ps := LabScenarios(tb)
	if len(ps) != 4 {
		t.Fatalf("scenarios = %d", len(ps))
	}
	if ps[0].FieldKernel != "fi" || ps[1].FieldKernel != "octgrav" {
		t.Fatal("kernel selection wrong")
	}
	if ps[2].Field.Resource != tb.LGM {
		t.Fatalf("remote-gpu field resource = %s", ps[2].Field.Resource)
	}
	if ps[3].Hydro.Nodes != 8 {
		t.Fatalf("jungle hydro nodes = %d", ps[3].Hydro.Nodes)
	}
}
