package exp

import (
	"strings"
	"testing"
)

// TestE10 runs the ensemble evaluation at a small scale: the sweep table
// (bit-equal arms enforced inside E10), the shared-setup dedup count and
// the coupled-demo divergence check all have to hold.
func TestE10(t *testing.T) {
	out, err := E10(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"E10 ensemble sweep", "digests bit-equal", "staged setups 4",
		"E10 coupled demo", "field effect",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E10 report missing %q:\n%s", want, out)
		}
	}
}

// TestE10RejectsBadMembers: the campaign shape is 4 IC streams crossed
// with members/4 couplings, so a non-multiple is a configuration error.
func TestE10RejectsBadMembers(t *testing.T) {
	if _, err := E10(6, 12); err == nil {
		t.Fatal("E10 accepted members not divisible by the IC streams")
	}
}
