package exp

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"jungle/internal/core"
	"jungle/internal/deploy"
	"jungle/internal/phys/bridge"
)

// Resumable scenario runs. RunScenarioCheckpointed behaves like
// RunScenario but checkpoints the whole session after every completed
// bridge iteration: the coupler snapshots all four workers
// (Simulation.Checkpoint) and writes a self-contained run file — the
// core manifest plus the bridge's own clock and the run plan. A killed
// run restarts with ResumeScenario, which rebuilds the workers from the
// manifest, restores their snapshots, rewinds the bridge bookkeeping and
// completes the remaining iterations bit-compatibly — the resumed
// trajectory (supernovae included) is the one the uninterrupted run
// would have produced.

// RunCheckpoint is the on-disk record of a checkpointed scenario run.
type RunCheckpoint struct {
	// Scenario is the placement name (for reporting; the worker specs
	// live in the core manifest).
	Scenario string
	// W is the workload (kept so a resume can rebuild the bridge's
	// coupling parameters; initial conditions are NOT regenerated — state
	// comes from the snapshots).
	W Workload
	// Iterations is the total the run was asked for; Done counts the
	// completed ones.
	Iterations int
	Done       int
	// Bridge bookkeeping at the checkpoint.
	BridgeTime  float64
	BridgeSteps int
	Supernovae  int
	// Core is the coupler-level manifest: specs, setup payloads and
	// snapshot blobs for all four workers.
	Core *core.Manifest
}

// SaveRunCheckpoint writes the run file atomically.
func SaveRunCheckpoint(path string, rc *RunCheckpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rc); err != nil {
		return fmt.Errorf("exp: encode run checkpoint: %w", err)
	}
	return deploy.WriteFileAtomic(path, buf.Bytes())
}

// LoadRunCheckpoint reads a run file written by SaveRunCheckpoint.
func LoadRunCheckpoint(path string) (*RunCheckpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rc := new(RunCheckpoint)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(rc); err != nil {
		return nil, fmt.Errorf("exp: decode run checkpoint %s: %w", path, err)
	}
	return rc, nil
}

// RunScenarioCheckpointed runs the workload like RunScenario and writes a
// run checkpoint to path after every completed iteration, so the run can
// be killed at any point and resumed with ResumeScenario.
func RunScenarioCheckpointed(ctx context.Context, tb *core.Testbed, w Workload, p Placement, iterations int, path string) (RunResult, error) {
	sb, err := startScenario(ctx, tb, w, p)
	if err != nil {
		return RunResult{}, err
	}
	defer sb.sim.Stop()
	setup := sb.sim.Elapsed()
	if err := runCheckpointedLoop(ctx, sb, p.Name, w, iterations, 0, path); err != nil {
		return RunResult{}, err
	}
	total := sb.sim.Elapsed() - setup
	digest, err := sb.stateDigest()
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Scenario:     p.Name,
		Iterations:   iterations,
		PerIteration: total / time.Duration(iterations),
		Setup:        setup,
		Supernovae:   sb.bridge.Supernovae(),
		Transfers:    sb.sim.TransferStats(),
		StateDigest:  digest,
	}, nil
}

// runCheckpointedLoop executes bridge iterations done..iterations,
// checkpointing after each.
func runCheckpointedLoop(ctx context.Context, sb *scenarioBridge, scenario string, w Workload, iterations, done int, path string) error {
	for i := done; i < iterations; i++ {
		if err := sb.bridge.Step(ctx); err != nil {
			return fmt.Errorf("scenario %s iteration %d: %w", scenario, i, err)
		}
		man, err := sb.sim.Checkpoint(ctx)
		if err != nil {
			return fmt.Errorf("scenario %s checkpoint after iteration %d: %w", scenario, i, err)
		}
		rc := &RunCheckpoint{
			Scenario: scenario, W: w, Iterations: iterations, Done: i + 1,
			BridgeTime: sb.bridge.Time(), BridgeSteps: sb.bridge.Steps(),
			Supernovae: sb.bridge.Supernovae(), Core: man,
		}
		if err := SaveRunCheckpoint(path, rc); err != nil {
			return err
		}
	}
	return nil
}

// rebindScenario rebuilds the bridge over models resumed from a run
// checkpoint's manifest: typed handles are recovered by kind, the bridge
// is reassembled with the saved workload's coupling parameters, and its
// clock is rewound to the checkpoint.
func rebindScenario(rc *RunCheckpoint, sim *core.Simulation, models []*core.Model) (*scenarioBridge, error) {
	var g *core.Gravity
	var h *core.Hydro
	var f *core.FieldModel
	var st *core.StellarModel
	for _, m := range models {
		switch m.Kind() {
		case core.KindGravity:
			g = m.AsGravity()
		case core.KindHydro:
			h = m.AsHydro()
		case core.KindField:
			f = m.AsField()
		case core.KindStellar:
			st = m.AsStellar()
		}
	}
	if g == nil || h == nil || f == nil || st == nil {
		return nil, fmt.Errorf("exp: manifest for %s is missing models (got %d)", rc.Scenario, len(models))
	}
	br, err := bridge.New(bridgeConfig(rc.W, g, h, f, st))
	if err != nil {
		return nil, err
	}
	br.RestoreClock(rc.BridgeTime, rc.BridgeSteps, rc.Supernovae)
	return &scenarioBridge{sim: sim, bridge: br, grav: g}, nil
}

// ResumeScenario continues a killed checkpointed run from its run file:
// workers are rebuilt from the manifest (setup replayed, snapshots
// restored), the bridge bookkeeping is rewound, and the remaining
// iterations execute — still checkpointing to the same path. The daemon
// must serve the same deployment the run was checkpointed on (resource
// names resolve against it).
func ResumeScenario(ctx context.Context, tb *core.Testbed, path string) (RunResult, error) {
	rc, err := LoadRunCheckpoint(path)
	if err != nil {
		return RunResult{}, err
	}
	if rc.Done >= rc.Iterations {
		return RunResult{}, fmt.Errorf("exp: run %s already complete (%d/%d iterations)", rc.Scenario, rc.Done, rc.Iterations)
	}
	sim, models, err := core.ResumeSimulation(ctx, tb.Daemon, nil, rc.Core)
	if err != nil {
		return RunResult{}, fmt.Errorf("exp: resume %s: %w", rc.Scenario, err)
	}
	defer sim.Stop()
	sb, err := rebindScenario(rc, sim, models)
	if err != nil {
		return RunResult{}, err
	}

	setup := sim.Elapsed()
	remaining := rc.Iterations - rc.Done
	if err := runCheckpointedLoop(ctx, sb, rc.Scenario, rc.W, rc.Iterations, rc.Done, path); err != nil {
		return RunResult{}, err
	}
	total := sim.Elapsed() - setup
	digest, err := sb.stateDigest()
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Scenario:     rc.Scenario + " (resumed)",
		Iterations:   remaining,
		PerIteration: total / time.Duration(remaining),
		Setup:        setup,
		Supernovae:   sb.bridge.Supernovae(),
		Transfers:    sim.TransferStats(),
		StateDigest:  digest,
	}, nil
}
