package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"jungle/internal/core"
	"jungle/internal/ensemble"
	"jungle/internal/phys/abm"
	"jungle/internal/phys/analytic"
	"jungle/internal/sched"
)

// E10 is the ensemble evaluation: a parameter sweep of agent-based
// colonies fanned through the multi-tenant control plane (§6-style
// many-small-jobs use of a jungle, where one scientist's campaign is N
// independent simulations rather than one big one), followed by the
// coupled reaction–diffusion-in-a-potential demo — an abm colony whose
// potential column is sampled each round from a live analytic field
// worker, the agent-based analogue of the paper's coupled-kernel bridge.
func E10(members, steps int) (string, error) {
	sweep, err := e10Sweep(members, steps)
	if err != nil {
		return "", err
	}
	demo, err := e10Coupled(steps)
	if err != nil {
		return "", err
	}
	return sweep + demo, nil
}

// e10Plan builds the members-sized campaign: 4 initial-condition streams
// crossed with members/4 couplings (members must divide by 4).
func e10Plan(members int) (*ensemble.ABMSweep, error) {
	const nIC = 4
	if members < nIC || members%nIC != 0 {
		return nil, fmt.Errorf("E10: members %d must be a positive multiple of %d", members, nIC)
	}
	ics := make([]float64, nIC)
	for i := range ics {
		ics[i] = float64(i)
	}
	bs := make([]float64, members/nIC)
	for i := range bs {
		bs[i] = 0.05 + 0.02*float64(i)
	}
	return &ensemble.ABMSweep{
		Plan: &ensemble.Plan{
			Name:     "e10",
			BaseSeed: 1012,
			Axes: []ensemble.Axis{
				{Name: ensemble.AxisIC, Values: ics},
				{Name: ensemble.AxisB, Values: bs},
			},
			SetupAxes: []string{ensemble.AxisIC},
		},
		Base:  abm.Params{W: 24, H: 24, D: 0.15, R: 0.6, B: 0.2, DT: 0.01},
		Steps: 24,
		Spec:  core.WorkerSpec{Channel: core.ChannelIbis},
	}, nil
}

// e10Sweep runs the campaign twice — strictly sequential, then fanned
// through scheduler admission — and holds the two arms to bit-equal
// per-member digests while comparing their virtual makespans.
func e10Sweep(members, steps int) (string, error) {
	type arm struct {
		name       string
		sequential bool
		maxLive    int
		rep        *ensemble.Report
	}
	arms := []arm{
		{name: "sequential", sequential: true, maxLive: 1},
		{name: "scheduler fan-out", maxLive: 8},
	}
	for i := range arms {
		sweep, err := e10Plan(members)
		if err != nil {
			return "", err
		}
		if steps > 0 {
			sweep.Steps = steps
		}
		sweep.Sequential = arms[i].sequential
		tb, err := core.NewLabTestbed()
		if err != nil {
			return "", err
		}
		s := sched.New(tb.Daemon, sched.Config{
			MaxLive: arms[i].maxLive, QueueCap: members,
			RetryAfter: 2 * time.Millisecond, Recorder: tb.Recorder,
		})
		rep, err := sweep.Run(context.Background(), s)
		s.Shutdown()
		tb.Close()
		if err != nil {
			return "", fmt.Errorf("E10 %s: %w", arms[i].name, err)
		}
		if rep.Failures != 0 {
			return "", fmt.Errorf("E10 %s: %d members failed", arms[i].name, rep.Failures)
		}
		arms[i].rep = rep
	}
	seq, fan := arms[0].rep, arms[1].rep
	for i, d := range seq.Digests() {
		if fan.Digests()[i] != d {
			return "", fmt.Errorf("E10: member %d digest differs between arms (%016x vs %016x)",
				i, d, fan.Digests()[i])
		}
	}
	var rows [][]string
	for _, a := range arms {
		r := a.rep
		rows = append(rows, []string{
			a.name, fmt.Sprintf("%d", r.Slots),
			fmt.Sprintf("%.1f", float64(r.Makespan.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.SumVirtual.Microseconds())/1000),
			fmt.Sprintf("%d", r.StagedSetups),
			fmt.Sprintf("%d", r.Retries),
		})
	}
	table := Table(fmt.Sprintf("E10 ensemble sweep: %d abm members through the control plane", members),
		[]string{"arm", "slots", "virtual makespan ms", "sequential bound ms", "staged setups", "retries"}, rows)
	table += fmt.Sprintf("fan-out speedup %.2fx, per-member digests bit-equal across arms\n%s",
		float64(seq.Makespan)/float64(fan.Makespan), fan.Render())
	return table, nil
}

// e10Coupled runs two colonies from the same initial condition — one
// coupled each round to a live analytic Plummer field worker, one left
// uncoupled — and tabulates how the external potential reshapes the
// colony's total population.
func e10Coupled(steps int) (string, error) {
	if steps <= 0 {
		steps = 24
	}
	tb, err := core.NewLabTestbed()
	if err != nil {
		return "", err
	}
	defer tb.Close()
	ctx := context.Background()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()
	sim.Monitor = tb.Recorder

	p := abm.Params{W: 24, H: 24, D: 0.15, R: 0.6, B: 0.35, DT: 0.01}
	spec := core.WorkerSpec{Channel: core.ChannelIbis}
	newColony := func() (*abm.Remote, error) {
		m, err := sim.NewModel(ctx, core.Kind(abm.Kind), spec,
			abm.SetupArgs{W: p.W, H: p.H, D: p.D, R: p.R, B: p.B, DT: p.DT})
		if err != nil {
			return nil, err
		}
		r := abm.NewRemote(m, p)
		return r, r.SeedState(ctx, 1012)
	}
	coupled, err := newColony()
	if err != nil {
		return "", fmt.Errorf("E10 coupled colony: %w", err)
	}
	control, err := newColony()
	if err != nil {
		return "", fmt.Errorf("E10 control colony: %w", err)
	}
	fieldModel, err := sim.NewModel(ctx, core.Kind(analytic.Kind), spec,
		analytic.SetupArgs{M: 1.5, A: 0.4})
	if err != nil {
		return "", fmt.Errorf("E10 field worker: %w", err)
	}
	field := analytic.NewRemote(fieldModel)

	const rounds = 4
	per := steps / rounds
	if per < 1 {
		per = 1
	}
	rows := [][]string{}
	var lastCoupled, lastControl float64
	for r := 0; r < rounds; r++ {
		// One coupling round: resample the potential at every agent from
		// the live field worker, then advance both colonies in lockstep.
		if err := coupled.CouplePotential(ctx, field); err != nil {
			return "", fmt.Errorf("E10 couple round %d: %w", r, err)
		}
		if err := coupled.Step(ctx, per); err != nil {
			return "", err
		}
		if err := control.Step(ctx, per); err != nil {
			return "", err
		}
		cs, err := coupled.Stats(ctx)
		if err != nil {
			return "", err
		}
		us, err := control.Stats(ctx)
		if err != nil {
			return "", err
		}
		lastCoupled, lastControl = cs.Flops, us.Flops
		rows = append(rows, []string{
			fmt.Sprintf("%d", r+1), fmt.Sprintf("%.2f", cs.Time),
			fmt.Sprintf("%.1f", cs.Flops), fmt.Sprintf("%.1f", us.Flops),
			fmt.Sprintf("%+.1f", cs.Flops-us.Flops),
		})
	}
	table := Table("E10 coupled demo: colony in a live Plummer potential vs uncoupled control",
		[]string{"round", "t", "coupled mass", "control mass", "field effect"}, rows)

	// The coupling is the only difference between the twins, so the final
	// populations must genuinely diverge — a limp coupling is a bug.
	if math.Abs(lastCoupled-lastControl) < 1e-6 {
		return "", fmt.Errorf("E10: coupled and control colonies did not diverge (%v vs %v)",
			lastCoupled, lastControl)
	}
	table += fmt.Sprintf("virtual time for the coupled run: %v\n", sim.Elapsed().Round(time.Millisecond))
	return table, nil
}
