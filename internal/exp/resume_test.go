package exp

import (
	"context"
	"path/filepath"
	"testing"

	"jungle/internal/core"
)

// TestResumeScenarioBitCompatible is the end-to-end resume guarantee on
// the full coupled stack (the SC11 placement: every model remote): a run
// that checkpoints, is killed after half its iterations, and resumes from
// the run file must end in exactly the state — bit for bit, supernovae
// included — of a run that was never interrupted.
func TestResumeScenarioBitCompatible(t *testing.T) {
	const iters = 4
	w := DefaultWorkload().Scaled(0.02)

	straight := func(t *testing.T) RunResult {
		tb, err := core.NewSC11Testbed()
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		res, err := RunScenario(context.Background(), tb, w, SC11Placement(tb), iters)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := straight(t)
	if base.StateDigest == 0 {
		t.Fatal("baseline digest unavailable")
	}

	// The "killed" run: checkpoint every iteration, stop after half. The
	// run file then records Done=iters/2 of a larger plan — exactly what a
	// kill between iterations leaves on disk.
	tb, err := core.NewSC11Testbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	path := filepath.Join(t.TempDir(), "sc11.run")
	if _, err := RunScenarioCheckpointed(context.Background(), tb, w, SC11Placement(tb), iters/2, path); err != nil {
		t.Fatal(err)
	}
	rc, err := LoadRunCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Done != iters/2 {
		t.Fatalf("run file Done = %d, want %d", rc.Done, iters/2)
	}
	rc.Iterations = iters // the plan the killed run was pursuing
	if err := SaveRunCheckpoint(path, rc); err != nil {
		t.Fatal(err)
	}

	// Resume on a fresh daemon (the first one is still serving; a second
	// resume-from-cold is exercised by reusing the same testbed — the
	// original session was stopped by RunScenarioCheckpointed's defer).
	res, err := ResumeScenario(context.Background(), tb, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters/2 {
		t.Fatalf("resumed iterations = %d, want %d", res.Iterations, iters/2)
	}
	if res.StateDigest != base.StateDigest {
		t.Fatalf("resumed end state digest %x != uninterrupted %x", res.StateDigest, base.StateDigest)
	}
	if res.Supernovae != base.Supernovae {
		t.Fatalf("resumed supernovae %d != uninterrupted %d", res.Supernovae, base.Supernovae)
	}

	// The finished run file refuses a second resume.
	if _, err := ResumeScenario(context.Background(), tb, path); err == nil {
		t.Fatal("resume of a completed run did not fail")
	}
}
