package exp

import (
	"fmt"
	"math"
	"strings"

	"jungle/internal/amuse/data"
)

// RenderProjection draws an ASCII x–y projection of gas (density shading)
// with stars overlaid — the reproduction of the Fig. 6 visualization frames
// (the paper rendered these on a 16-node GPU cluster; a terminal has to
// do here). halfSize sets the plotted half-width in N-body lengths.
func RenderProjection(stars, gas *data.Particles, halfSize float64, cols, rows int) string {
	if cols < 8 {
		cols = 8
	}
	if rows < 4 {
		rows = 4
	}
	grid := make([]float64, cols*rows)
	plot := func(p data.Vec3) (int, int, bool) {
		x := (p[0] + halfSize) / (2 * halfSize)
		y := (p[1] + halfSize) / (2 * halfSize)
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			return 0, 0, false
		}
		return int(x * float64(cols)), int(y * float64(rows)), true
	}
	for i := range gas.Pos {
		if cx, cy, ok := plot(gas.Pos[i]); ok {
			grid[cy*cols+cx] += gas.Mass[i]
		}
	}
	var maxD float64
	for _, d := range grid {
		if d > maxD {
			maxD = d
		}
	}
	shades := []byte(" .:-=+*#%@")
	canvas := make([][]byte, rows)
	for y := range canvas {
		canvas[y] = make([]byte, cols)
		for x := range canvas[y] {
			c := byte(' ')
			if maxD > 0 {
				d := grid[y*cols+x] / maxD
				// Log-ish scaling keeps the faint outskirts visible.
				idx := int(math.Sqrt(d) * float64(len(shades)-1))
				c = shades[idx]
			}
			canvas[y][x] = c
		}
	}
	for i := range stars.Pos {
		if cx, cy, ok := plot(stars.Pos[i]); ok {
			canvas[cy][cx] = 'o'
		}
	}
	var b strings.Builder
	border := "+" + strings.Repeat("-", cols) + "+\n"
	b.WriteString(border)
	for y := rows - 1; y >= 0; y-- { // y up
		b.WriteString("|")
		b.Write(canvas[y])
		b.WriteString("|\n")
	}
	b.WriteString(border)
	fmt.Fprintf(&b, "(%.1fx%.1f N-body lengths; shading = gas column density, o = stars)\n",
		2*halfSize, 2*halfSize)
	return b.String()
}
