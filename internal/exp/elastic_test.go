package exp

import (
	"strings"
	"testing"
)

// TestE9 runs the elastic-gang comparison at a small scale: the report
// must show both arms, a converged rebalanced skew, and a real speedup
// (the full >=2x bar is BenchmarkElasticGang's; the tiny workload here
// still must not be slower than static).
func TestE9(t *testing.T) {
	out, err := E9(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static slabs", "rebalanced", "rebalancing speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E9 report missing %q:\n%s", want, out)
		}
	}
	t.Log("\n" + out)
}
