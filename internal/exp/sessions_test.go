package exp

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"jungle/internal/core"
	"jungle/internal/sched"
)

func sessionPlane(t *testing.T, cfg sched.Config) (*core.Testbed, *sched.Scheduler) {
	t.Helper()
	tb, err := core.NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	cfg.Recorder = tb.Recorder
	s := sched.New(tb.Daemon, cfg)
	t.Cleanup(s.Shutdown)
	return tb, s
}

// testClock is a hand-advanced lease clock.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestSessionLifecycleBitCompatible is the multi-tenant resume guarantee:
// a session that is admitted, runs half its iterations, idles past its
// lease, is reaped (evicted into a snapshot, workers stopped, slot
// freed), and re-attaches must finish in exactly the end state — digest
// and supernovae — of a session that ran straight through.
func TestSessionLifecycleBitCompatible(t *testing.T) {
	if testing.Short() {
		t.Skip("full session lifecycle")
	}
	const iters = 4
	w := DefaultWorkload().Scaled(0.02)
	ctx := context.Background()

	_, straight := sessionPlane(t, sched.Config{})
	base, err := RunSessionWorkload(ctx, straight, "tenant", w, AutoPlacement(), iters)
	if err != nil {
		t.Fatal(err)
	}
	if base.StateDigest == 0 {
		t.Fatal("baseline digest unavailable")
	}

	// Interrupted plane: run half, idle past the lease, get reaped.
	clk := &testClock{now: time.Unix(4000, 0)}
	tb, s := sessionPlane(t, sched.Config{LeaseTTL: time.Minute, Now: clk.Now})
	sess, resumed, err := s.Attach(ctx, "tenant", false)
	if err != nil || resumed {
		t.Fatalf("attach: resumed=%v err=%v", resumed, err)
	}
	sr, err := StartSessionScenario(ctx, sess, w, AutoPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Step(ctx, iters/2); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	reaped, err := s.ReapIdle(ctx)
	if err != nil || len(reaped) != 1 || reaped[0] != "tenant" {
		t.Fatalf("reap = %v, %v; want [tenant]", reaped, err)
	}
	if n := tb.Daemon.SessionWorkers("tenant"); len(n) != 0 {
		t.Fatalf("reaped session still holds workers %v", n)
	}

	// Re-attach and finish: RunSessionWorkload resumes from the snapshot
	// and runs the remaining iterations.
	res, err := RunSessionWorkload(ctx, s, "tenant", w, AutoPlacement(), iters-iters/2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("resumed run reports %d iterations, want %d across the eviction", res.Iterations, iters)
	}
	if res.StateDigest != base.StateDigest {
		t.Fatalf("resumed session digest %x != straight-through %x", res.StateDigest, base.StateDigest)
	}
	if res.Supernovae != base.Supernovae {
		t.Fatalf("resumed supernovae %d != straight-through %d", res.Supernovae, base.Supernovae)
	}

	// The trace recorder kept the session's story.
	st, ok := tb.Recorder.Session("tenant")
	if !ok || st.Evictions != 1 || st.Resumes != 1 {
		t.Fatalf("session accounting = %+v, ok=%v; want 1 eviction, 1 resume", st, ok)
	}
	if view := tb.Recorder.RenderSessions(); !strings.Contains(view, "tenant") {
		t.Fatalf("RenderSessions lost the session:\n%s", view)
	}
}

// TestSchedulerSmoke is the short-mode control-plane smoke test (make
// ci): two tenants run tiny workloads concurrently through one scheduler
// and must produce identical end states — session namespacing keeps the
// runs from contaminating each other.
func TestSchedulerSmoke(t *testing.T) {
	_, s := sessionPlane(t, sched.Config{MaxLive: 2})
	results, err := RunConcurrentSessions(context.Background(), s,
		DefaultWorkload().Scaled(0.01), AutoPlacement(), 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].StateDigest == 0 || results[0].StateDigest != results[1].StateDigest {
		t.Fatalf("concurrent tenants diverged: %x vs %x",
			results[0].StateDigest, results[1].StateDigest)
	}
}
