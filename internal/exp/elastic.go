package exp

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/core"
)

// E9 measures the elastic-gang layer on the heterogeneous testbed: a K=4
// gravity gang on site-mixed (one node derated to quarter speed) run once
// with static uniform slabs and once with the skew-driven rebalancer
// armed. Reported per arm: virtual time per step over `steps` post-warmup
// steps, plus the telemetry skew gauge. The static arm is gated by the
// straggler every step; the rebalanced arm converges to throughput-
// proportional slabs, so the per-step ratio approaches the ideal 3.25x
// for a 0.25-speed node in a gang of four. nStars scales the workload
// (tests pass small counts).
func E9(nStars, steps int) (string, error) {
	type arm struct {
		name      string
		rebalance bool
		perStep   time.Duration
		skew      float64
	}
	arms := []arm{{name: "static slabs"}, {name: "rebalanced", rebalance: true}}
	for i := range arms {
		perStep, skew, err := elasticArm(nStars, steps, arms[i].rebalance)
		if err != nil {
			return "", fmt.Errorf("E9 %s: %w", arms[i].name, err)
		}
		arms[i].perStep, arms[i].skew = perStep, skew
	}
	rows := make([][]string, len(arms))
	for i, a := range arms {
		rows[i] = []string{a.name,
			fmt.Sprintf("%.1f", float64(a.perStep.Microseconds())/1000),
			fmt.Sprintf("%.2f", a.skew)}
	}
	table := Table("E9 elastic gang on site-mixed (one node at 0.25x speed, K=4)",
		[]string{"arm", "virtual ms/step", "final skew"}, rows)
	table += fmt.Sprintf("rebalancing speedup: %.2fx\n",
		float64(arms[0].perStep)/float64(arms[1].perStep))
	return table, nil
}

// elasticArm runs one E9 arm and returns the post-warmup virtual time per
// step and the gang's final observed skew (1.0 for the static arm, which
// records no samples).
func elasticArm(nStars, steps int, rebalance bool) (time.Duration, float64, error) {
	tb, err := core.NewElasticTestbed()
	if err != nil {
		return 0, 0, err
	}
	defer tb.Close()
	ctx := context.Background()
	sim := core.NewSimulation(ctx, tb.Daemon, nil)
	defer sim.Stop()
	sim.Monitor = tb.Recorder

	g, err := sim.NewGravity(ctx,
		core.WorkerSpec{Resource: tb.Mixed, Channel: core.ChannelIbis, Workers: 4},
		core.GravityOptions{Eps: 0.01})
	if err != nil {
		return 0, 0, err
	}
	if rebalance {
		if err := g.EnableRebalance(core.ElasticPolicy{}); err != nil {
			return 0, 0, err
		}
	}
	if err := g.SetParticles(ic.Plummer(nStars, 27)); err != nil {
		return 0, 0, err
	}

	// Warm-up legs give the rebalancer measurement rounds to converge.
	const warmup = 4
	target := 0.0
	for i := 0; i < warmup; i++ {
		target += 1e-4
		if err := g.EvolveTo(ctx, target); err != nil {
			return 0, 0, err
		}
		if rebalance {
			deadline := time.Now().Add(20 * time.Second)
			for g.RebalanceRounds() < uint64(i+1) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}

	start := sim.Elapsed()
	for i := 0; i < steps; i++ {
		target += 1e-6
		if err := g.EvolveTo(ctx, target); err != nil {
			return 0, 0, err
		}
	}
	perStep := (sim.Elapsed() - start) / time.Duration(steps)

	skew := 1.0
	if last, _, ok := tb.Recorder.GangSkew("gravity/" + tb.Mixed); ok {
		skew = last
	}
	return perStep, skew, nil
}
