// Package exp implements the paper's evaluation (§6): one runner per table
// or figure, each returning a report with the same rows/series the paper
// shows. The experiment index and measured-vs-paper notes live in
// DESIGN.md. cmd/jungle-bench executes these runners from the command
// line and bench_test.go wraps them as Go benchmarks.
package exp

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/phys/bridge"
	"jungle/internal/trace"

	// The experiment runners start workers of all four standard kinds.
	_ "jungle/internal/kernels"
)

// Workload is the embedded-star-cluster evaluation simulation (§6: "For
// all our experiments, we use the same simulation").
type Workload struct {
	Stars   int
	Gas     int
	GasFrac float64
	Seed    int64
	DT      float64
	Eps     float64
}

// DefaultWorkload is the calibrated E1 scale: 1000 stars + 10000 SPH gas
// particles, bridge step 1/64.
func DefaultWorkload() Workload {
	return Workload{Stars: 1000, Gas: 10000, GasFrac: 0.9, Seed: 42, DT: 1.0 / 64, Eps: 0.05}
}

// Scaled returns the workload with particle counts scaled by f (tests use
// small fractions; E8 uses >1).
func (w Workload) Scaled(f float64) Workload {
	w.Stars = max(int(float64(w.Stars)*f), 10)
	w.Gas = max(int(float64(w.Gas)*f), 20)
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Build generates the initial conditions.
func (w Workload) Build() (stars, gas *data.Particles, err error) {
	return ic.EmbeddedCluster(ic.ClusterSpec{
		Stars: w.Stars, Gas: w.Gas, GasFrac: w.GasFrac, Seed: w.Seed,
	})
}

// Placement assigns each model to a resource + channel — one §6.2 scenario.
type Placement struct {
	Name          string
	Gravity       core.WorkerSpec
	GravityKernel string
	Hydro         core.WorkerSpec
	Field         core.WorkerSpec
	FieldKernel   string
	Stellar       core.WorkerSpec
}

// scenario helpers build the four §6.2 placements against a testbed.
func local(resource string) core.WorkerSpec {
	return core.WorkerSpec{Resource: resource, Channel: core.ChannelMPI}
}
func remote(resource string, nodes int) core.WorkerSpec {
	return core.WorkerSpec{Resource: resource, Nodes: nodes, Channel: core.ChannelIbis}
}

// LabScenarios returns the §6.2 scenarios in paper order for a lab testbed.
func LabScenarios(tb *core.Testbed) []Placement {
	desktop := tb.Client
	return []Placement{
		{
			Name:    "cpu-only",
			Gravity: local(desktop), GravityKernel: "phigrape-cpu",
			Hydro: local(desktop),
			Field: local(desktop), FieldKernel: "fi",
			Stellar: local(desktop),
		},
		{
			Name:    "local-gpu",
			Gravity: local(desktop), GravityKernel: "phigrape-gpu",
			Hydro: local(desktop),
			Field: local(desktop), FieldKernel: "octgrav",
			Stellar: local(desktop),
		},
		{
			Name:    "remote-gpu",
			Gravity: local(desktop), GravityKernel: "phigrape-gpu",
			Hydro: local(desktop),
			Field: remote(tb.LGM, 1), FieldKernel: "octgrav",
			Stellar: local(desktop),
		},
		{
			Name:    "jungle",
			Gravity: remote(tb.LGM, 1), GravityKernel: "phigrape-gpu",
			Hydro: remote(tb.VU, 8),
			Field: remote(tb.TUD, 2), FieldKernel: "octgrav",
			Stellar: remote(tb.UvA, 1),
		},
	}
}

// SC11Placement is the Fig. 9 worst case: coupler in Seattle, every model
// in The Netherlands.
func SC11Placement(tb *core.Testbed) Placement {
	p := LabScenarios(tb)[3]
	p.Name = "sc11-worst-case"
	return p
}

// AutoPlacement leaves every model's resource open for the control
// plane's capacity-aware placer to resolve (CPU kernels, ibis channel
// throughout, so any resource fits). Multi-tenant runs use it: pinned
// placements would pile every session onto the same resources, while
// open specs spread by load.
func AutoPlacement() Placement {
	open := core.WorkerSpec{Channel: core.ChannelIbis}
	return Placement{
		Name:    "scheduler-placed",
		Gravity: open, GravityKernel: "phigrape-cpu",
		Hydro: open,
		Field: open, FieldKernel: "fi",
		Stellar: open,
	}
}

// RunResult is one measured scenario.
type RunResult struct {
	Scenario     string
	Iterations   int
	PerIteration time.Duration // virtual seconds per bridge iteration
	Setup        time.Duration // virtual time to start all workers
	Supernovae   int
	// Transfers counts how the coupled steps moved bulk state: Direct is
	// the worker-to-worker data plane, Hairpin the coupler path (local
	// workers), Fallback a direct attempt that failed over.
	Transfers core.TransferStats
	// StateDigest is an FNV-1a hash of the star model's final positions
	// and velocities (bit patterns, in particle order): two runs ended in
	// the same state iff their digests match — the observable the
	// checkpoint/resume bit-compatibility guarantee is checked against.
	StateDigest uint64
	// Calls summarizes the channel-layer telemetry this run added to the
	// testbed's observability plane: RPC count, error count and latency
	// quantiles (zero when the testbed records nothing).
	Calls trace.CallSummary
}

// scenarioBridge bundles one placement's running models and their bridge.
type scenarioBridge struct {
	sim    *core.Simulation
	bridge *bridge.Bridge
	grav   *core.Gravity // the star model, for end-of-run state digests
}

// stateDigest hashes the gravity model's phase-space state (FNV-1a over
// the position and velocity bit patterns). A read failure is an error,
// not a zero digest — callers must not mistake "could not read the final
// state" for a comparable value.
func (sb *scenarioBridge) stateDigest() (uint64, error) {
	st, err := sb.grav.GetState(nil, data.AttrPos, data.AttrVel)
	if err != nil {
		return 0, fmt.Errorf("exp: end-of-run state digest: %w", err)
	}
	h := fnv.New64a()
	var buf [8]byte
	mix := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	for _, col := range [][]data.Vec3{st.Vec(data.AttrPos), st.Vec(data.AttrVel)} {
		for _, v := range col {
			mix(v[0])
			mix(v[1])
			mix(v[2])
		}
	}
	return h.Sum64(), nil
}

// bridgeConfig is the evaluation simulation's fixed coupling parameters.
func bridgeConfig(w Workload, g *core.Gravity, h *core.Hydro, f *core.FieldModel, st *core.StellarModel) bridge.Config {
	return bridge.Config{
		Stars: g, Gas: h, Coupler: f, Stellar: st,
		DT: w.DT, Eps: w.Eps, StellarEvery: 4,
		SNEnergy: 0.1, SNRadius: 0.3,
	}
}

// startScenario builds the four models under a placement and assembles
// the bridge (fresh initial conditions, no restored state).
func startScenario(ctx context.Context, tb *core.Testbed, w Workload, p Placement) (*scenarioBridge, error) {
	return startScenarioOn(ctx, core.NewSimulation(ctx, tb.Daemon, nil), w, p)
}

// startScenarioOn is startScenario on a caller-provided simulation — the
// session path, where the control plane binds the simulation to a tenant
// (namespace, accounting, placement policy) before the models start. On
// failure the simulation is stopped.
func startScenarioOn(ctx context.Context, sim *core.Simulation, w Workload, p Placement) (*scenarioBridge, error) {
	stars, gas, err := w.Build()
	if err != nil {
		sim.Stop()
		return nil, err
	}
	fail := func(err error) (*scenarioBridge, error) {
		sim.Stop()
		return nil, err
	}
	g, err := sim.NewGravity(ctx, p.Gravity, core.GravityOptions{Kernel: p.GravityKernel, Eps: 0.01})
	if err != nil {
		return fail(fmt.Errorf("gravity: %w", err))
	}
	if err := g.SetParticles(stars); err != nil {
		return fail(err)
	}
	h, err := sim.NewHydro(ctx, p.Hydro, core.HydroOptions{SelfGravity: true, EpsGrav: 0.01})
	if err != nil {
		return fail(fmt.Errorf("hydro: %w", err))
	}
	if err := h.SetParticles(gas); err != nil {
		return fail(err)
	}
	f, err := sim.NewField(ctx, p.Field, core.FieldOptions{Kernel: p.FieldKernel, Eps: w.Eps})
	if err != nil {
		return fail(fmt.Errorf("field: %w", err))
	}
	// The workload's IMF masses are in N-body units; recover MSun values by
	// anchoring the smallest sampled star at the IMF's 0.3 MSun lower bound
	// (EmbeddedCluster normalizes total mass away, so the anchor restores
	// the physical scale).
	minMass := stars.Mass[0]
	for _, m := range stars.Mass {
		if m < minMass {
			minMass = m
		}
	}
	msunPerNBody := 0.3 / minMass
	masses := make([]float64, stars.Len())
	for i := range masses {
		masses[i] = stars.Mass[i] * msunPerNBody
	}
	st, err := sim.NewStellar(ctx, p.Stellar, masses, 2.0 /* Myr per unit */, 1/msunPerNBody)
	if err != nil {
		return fail(fmt.Errorf("stellar: %w", err))
	}
	br, err := bridge.New(bridgeConfig(w, g, h, f, st))
	if err != nil {
		return fail(err)
	}
	return &scenarioBridge{sim: sim, bridge: br, grav: g}, nil
}

// RunScenario executes the workload under a placement on the testbed and
// measures virtual per-iteration time, mirroring §6.2's methodology ("we
// ran a single iteration (time step) of the simulation"). ctx bounds the
// whole run — worker startup, state uploads and every bridge iteration
// (nil means no deadline).
func RunScenario(ctx context.Context, tb *core.Testbed, w Workload, p Placement, iterations int) (RunResult, error) {
	before := tb.Recorder.CallsSnapshot()
	sb, err := startScenario(ctx, tb, w, p)
	if err != nil {
		return RunResult{}, err
	}
	defer sb.sim.Stop()
	setup := sb.sim.Elapsed()
	for i := 0; i < iterations; i++ {
		if err := sb.bridge.Step(ctx); err != nil {
			return RunResult{}, fmt.Errorf("scenario %s iteration %d: %w", p.Name, i, err)
		}
	}
	total := sb.sim.Elapsed() - setup
	digest, err := sb.stateDigest()
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Scenario:     p.Name,
		Iterations:   iterations,
		PerIteration: total / time.Duration(iterations),
		Setup:        setup,
		Supernovae:   sb.bridge.Supernovae(),
		Transfers:    sb.sim.TransferStats(),
		StateDigest:  digest,
		// A shared testbed serves many runs; the snapshot diff isolates
		// this one's calls from whatever the recorder held before.
		Calls: trace.DiffCalls(before, tb.Recorder.CallsSnapshot()),
	}, nil
}

// Table renders rows of (scenario, paper, measured) with a ratio column.
func Table(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(headers)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
