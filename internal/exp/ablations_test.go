package exp

import (
	"strings"
	"testing"
)

func TestAblateTheta(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation")
	}
	table, rows, err := AblateTheta(2000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone trade-off: growing theta must cut flops and raise error.
	for i := 1; i < len(rows); i++ {
		if rows[i].Flops >= rows[i-1].Flops {
			t.Fatalf("flops not decreasing at theta=%v:\n%s", rows[i].Theta, table)
		}
		if rows[i].MaxError < rows[i-1].MaxError*0.5 {
			t.Fatalf("error collapsed at theta=%v:\n%s", rows[i].Theta, table)
		}
	}
	// theta=0.2 stays accurate.
	if rows[0].MaxError > 0.01 {
		t.Fatalf("theta=0.2 error %v too big", rows[0].MaxError)
	}
}

func TestAblateBridgeDT(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation")
	}
	table, rows, err := AblateBridgeDT(30, 150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer coupling calls at larger DT.
	for i := 1; i < len(rows); i++ {
		if rows[i].FieldCalls >= rows[i-1].FieldCalls {
			t.Fatalf("field calls not decreasing:\n%s", table)
		}
	}
	// The coarsest coupling must be measurably worse than the finest.
	if rows[len(rows)-1].EnergyError <= rows[0].EnergyError {
		t.Fatalf("energy error did not grow with DT:\n%s", table)
	}
}

func TestAblateChannels(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation")
	}
	table, rows, err := AblateChannels()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Channel] = float64(r.PerCall)
	}
	// The Fig. 5 hop hierarchy: in-process < local loopback < same-site
	// WAN < remote site.
	mpi := byName["mpi (in-process)"]
	sock := byName["sockets (local process)"]
	near := byName["ibis -> das4-vu (same site)"]
	far := byName["ibis -> lgm (remote site)"]
	if !(mpi < sock && sock < near && near < far) {
		t.Fatalf("channel cost hierarchy violated:\n%s", table)
	}
}

func TestRenderProjection(t *testing.T) {
	_, stages, err := E5(20, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatal("stages missing")
	}
}

func TestRenderProjectionDirect(t *testing.T) {
	stars, gas, err := DefaultWorkload().Scaled(0.02).Build()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderProjection(stars, gas, 2, 40, 12)
	if !strings.Contains(out, "o") {
		t.Fatalf("no stars rendered:\n%s", out)
	}
	if !strings.Contains(out, "+----") {
		t.Fatalf("no frame:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}
