package exp

import (
	"context"
	"fmt"
	"testing"

	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

// TestCalibrationMeasurements re-measures the per-phase flop counts that
// core's kernelEfficiency constants were fitted from (see
// internal/core/calib.go). If kernels change their accounting, this test
// catches the drift so the calibration can be re-fitted.
func TestCalibrationMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration run")
	}
	w := DefaultWorkload()
	stars, gas, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}

	g := nbody.NewSystem(nbody.NewCPUKernel(cpu), 0.01)
	g.SetParticles(stars)
	if err := g.EvolveTo(context.Background(), w.DT); err != nil {
		t.Fatal(err)
	}
	pg := g.Flops()

	h := sph.New()
	h.EpsGrav = 0.01
	if err := h.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := h.EvolveTo(context.Background(), w.DT); err != nil {
		t.Fatal(err)
	}
	sphF := h.Flops()

	k := tree.NewFi(cpu)
	_, _, f1 := k.FieldAt(context.Background(), gas.Mass, gas.Pos, stars.Pos, w.Eps)
	_, _, f2 := k.FieldAt(context.Background(), stars.Mass, stars.Pos, gas.Pos, w.Eps)
	coupling := 2 * (f1 + f2)

	fmt.Printf("calibration: phigrape=%.3e sph=%.3e coupling=%.3e flops/iter\n",
		pg, sphF, coupling)

	within := func(name string, got, fitted, tol float64) {
		if got < fitted*(1-tol) || got > fitted*(1+tol) {
			t.Errorf("%s flops/iter = %.3e, fitted against %.3e (±%.0f%%): re-fit core/calib.go",
				name, got, fitted, tol*100)
		}
	}
	within("phigrape", pg, 1.558e9, 0.3)
	within("sph", sphF, 1.439e9, 0.5) // adaptive stepping varies more
	within("coupling", coupling, 3.62e8, 0.3)
}
