package exp

import (
	"context"
	"testing"

	"jungle/internal/core"
)

// TestSupercomputerScaleUp is the §7 direction made concrete: adding the
// supercomputer to the jungle and moving the SPH worker onto 32 of its
// nodes must beat the 8-node DAS-4 VU placement at the same workload, and
// the PBS middleware path must work end to end.
func TestSupercomputerScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	w := DefaultWorkload().Scaled(0.1)

	run := func(usesSC bool) float64 {
		tb, err := core.NewLabTestbed()
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		p := LabScenarios(tb)[3] // jungle
		if usesSC {
			name, err := tb.AddSupercomputer()
			if err != nil {
				t.Fatal(err)
			}
			p.Hydro = core.WorkerSpec{Resource: name, Nodes: 32, Channel: core.ChannelIbis}
			p.Name = "jungle+supercomputer"
		}
		res, err := RunScenario(context.Background(), tb, w, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// PBS queue delay shows up in worker startup, not per-iteration.
		if usesSC && res.Setup <= 0 {
			t.Fatal("no setup cost recorded for PBS submission")
		}
		return res.PerIteration.Seconds()
	}

	das4 := run(false)
	sc := run(true)
	if sc >= das4 {
		t.Fatalf("supercomputer hydro (%.3f s/iter) not faster than 8-node DAS-4 (%.3f s/iter)", sc, das4)
	}
}

// TestSelectPrefersSupercomputerForWideJobs: once registered, automatic
// selection must route a 32-node worker to the only resource that can host
// it.
func TestSelectPrefersSupercomputerForWideJobs(t *testing.T) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := tb.AddSupercomputer(); err != nil {
		t.Fatal(err)
	}
	r, err := core.SelectResource(tb.Deployment, core.WorkerSpec{Kind: core.KindHydro, Nodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r != "huygens" {
		t.Fatalf("selected %q, want huygens", r)
	}
}
