package exp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// E7 validates §5's loopback claim with a real kernel socket: "Benchmarks
// show that this connection is over 8 Gbit/second even on a modest laptop,
// has an extremely small latency". It measures the daemon-channel framing
// (length-prefixed messages, as the coupler/daemon socket uses) over
// 127.0.0.1 TCP and reports throughput and round-trip latency. This is the
// one experiment that runs on the real network stack rather than vnet.
type E7Result struct {
	ThroughputGbit float64
	RTT            time.Duration
}

// RunE7 transfers total bytes in chunked frames for throughput and does
// pingPongs 1-byte round trips for latency.
func RunE7(total int, chunk int, pingPongs int) (E7Result, error) {
	if chunk <= 0 {
		chunk = 1 << 20
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return E7Result{}, err
	}
	defer l.Close()

	type srvResult struct {
		n   int64
		err error
	}
	done := make(chan srvResult, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- srvResult{0, err}
			return
		}
		defer conn.Close()
		r := bufio.NewReaderSize(conn, 1<<20)
		var got int64
		var hdr [4]byte
		for {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				done <- srvResult{got, nil} // EOF ends the stream phase
				return
			}
			n := int(binary.LittleEndian.Uint32(hdr[:]))
			if n == 1 { // ping: echo a pong
				var b [1]byte
				if _, err := io.ReadFull(r, b[:]); err != nil {
					done <- srvResult{got, err}
					return
				}
				if _, err := conn.Write(b[:]); err != nil {
					done <- srvResult{got, err}
					return
				}
				continue
			}
			if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
				done <- srvResult{got, err}
				return
			}
			got += int64(n)
		}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return E7Result{}, err
	}

	// Latency phase first (unloaded link).
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1)
	hdr[4] = 0x42
	var pong [1]byte
	t0 := time.Now()
	for i := 0; i < pingPongs; i++ {
		if _, err := conn.Write(hdr[:]); err != nil {
			conn.Close()
			return E7Result{}, err
		}
		if _, err := io.ReadFull(conn, pong[:]); err != nil {
			conn.Close()
			return E7Result{}, err
		}
	}
	rtt := time.Since(t0) / time.Duration(pingPongs)

	// Throughput phase.
	buf := make([]byte, 4+chunk)
	binary.LittleEndian.PutUint32(buf[:4], uint32(chunk))
	w := bufio.NewWriterSize(conn, 1<<20)
	start := time.Now()
	sent := 0
	for sent < total {
		if _, err := w.Write(buf); err != nil {
			conn.Close()
			return E7Result{}, err
		}
		sent += chunk
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return E7Result{}, err
	}
	conn.Close()
	res := <-done
	if res.err != nil {
		return E7Result{}, res.err
	}
	elapsed := time.Since(start)
	gbit := float64(res.n) * 8 / elapsed.Seconds() / 1e9
	return E7Result{ThroughputGbit: gbit, RTT: rtt}, nil
}

// E7Report renders the result against the paper's claim.
func E7Report(r E7Result) string {
	verdict := "BELOW the paper's 8 Gbit/s claim"
	if r.ThroughputGbit > 8 {
		verdict = "matches the paper's >8 Gbit/s claim"
	}
	return fmt.Sprintf(
		"== E7 daemon loopback socket (§5) ==\nthroughput: %.1f Gbit/s (%s)\nround-trip latency: %v\n",
		r.ThroughputGbit, verdict, r.RTT)
}
