package exp

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"jungle/internal/sched"
)

// Multi-tenant evaluation: scenario runs living inside jungled
// control-plane sessions. A SessionRun keeps the bridge alive across
// client calls (unlike RunScenario, which owns its simulation start to
// finish), installs an evictor so the scheduler can idle-reap the
// session into a resumable snapshot, and resumes bit-identically from
// one — the multi-tenant extension of the checkpoint/resume guarantee.

// SessionRun is one scenario run bound to a control-plane session.
type SessionRun struct {
	sess *sched.Session

	mu       sync.Mutex
	sb       *scenarioBridge
	scenario string
	w        Workload
	done     int
	setup    time.Duration
}

// StartSessionScenario starts the workload's models inside the session
// (scheduler-placed when the placement leaves resources open) and
// installs the eviction hook.
func StartSessionScenario(ctx context.Context, sess *sched.Session, w Workload, p Placement) (*SessionRun, error) {
	sim := sess.NewSim(ctx, nil)
	sb, err := startScenarioOn(ctx, sim, w, p)
	if err != nil {
		return nil, err
	}
	sr := &SessionRun{sess: sess, sb: sb, scenario: p.Name, w: w, setup: sim.Elapsed()}
	sess.SetEvictor(sr.evict)
	return sr, nil
}

// ResumeSessionScenario revives an evicted session run from its snapshot
// (Session.Snapshot after a resumed attach): workers rebuild from the
// manifest under the session's namespace, the bridge rewinds, and
// stepping continues exactly where the evicted run left off.
func ResumeSessionScenario(ctx context.Context, sess *sched.Session, snapshot []byte) (*SessionRun, error) {
	rc := new(RunCheckpoint)
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(rc); err != nil {
		return nil, fmt.Errorf("exp: decode session snapshot: %w", err)
	}
	sim, models, err := sess.ResumeSim(ctx, nil, rc.Core)
	if err != nil {
		return nil, fmt.Errorf("exp: resume session %s: %w", sess.ID(), err)
	}
	sb, err := rebindScenario(rc, sim, models)
	if err != nil {
		sim.Stop()
		return nil, err
	}
	sr := &SessionRun{
		sess: sess, sb: sb, scenario: rc.Scenario, w: rc.W,
		done: rc.Done, setup: sim.Elapsed(),
	}
	sess.SetEvictor(sr.evict)
	return sr, nil
}

// evict checkpoints the live run into a self-contained snapshot: the
// core manifest plus the bridge bookkeeping a resume must rewind.
func (sr *SessionRun) evict(ctx context.Context) ([]byte, error) {
	sr.mu.Lock()
	sb, done := sr.sb, sr.done
	sr.mu.Unlock()
	man, err := sb.sim.Checkpoint(ctx)
	if err != nil {
		return nil, fmt.Errorf("exp: evict %s: %w", sr.scenario, err)
	}
	rc := &RunCheckpoint{
		Scenario: sr.scenario, W: sr.w, Iterations: done, Done: done,
		BridgeTime: sb.bridge.Time(), BridgeSteps: sb.bridge.Steps(),
		Supernovae: sb.bridge.Supernovae(), Core: man,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rc); err != nil {
		return nil, fmt.Errorf("exp: encode session snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Step runs n bridge iterations.
func (sr *SessionRun) Step(ctx context.Context, n int) error {
	sr.mu.Lock()
	sb := sr.sb
	sr.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := sb.bridge.Step(ctx); err != nil {
			return fmt.Errorf("exp: session scenario %s iteration %d: %w", sr.scenario, sr.Done()+i, err)
		}
		sr.mu.Lock()
		sr.done++
		sr.mu.Unlock()
	}
	return nil
}

// Done returns the completed iteration count (across evictions).
func (sr *SessionRun) Done() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.done
}

// Result measures the run so far, including the end-of-run state digest
// the bit-compatibility guarantee is checked against.
func (sr *SessionRun) Result() (RunResult, error) {
	sr.mu.Lock()
	sb, done, setup := sr.sb, sr.done, sr.setup
	sr.mu.Unlock()
	digest, err := sb.stateDigest()
	if err != nil {
		return RunResult{}, err
	}
	per := time.Duration(0)
	if done > 0 {
		per = (sb.sim.Elapsed() - setup) / time.Duration(done)
	}
	return RunResult{
		Scenario:     sr.scenario,
		Iterations:   done,
		PerIteration: per,
		Setup:        setup,
		Supernovae:   sb.bridge.Supernovae(),
		Transfers:    sb.sim.TransferStats(),
		StateDigest:  digest,
	}, nil
}

// SessionWork is the gob payload a thin client (amuse-run -attach) sends
// through a session_run op: the workload for this session and how many
// bridge iterations to advance it. Repeated calls keep stepping the same
// live run; only the first call's workload matters (a resumed session's
// workload comes from its snapshot).
type SessionWork struct {
	W          Workload
	Iterations int
}

// SessionReport is the gob reply to a SessionWork: the run's cumulative
// measurement, including the state digest clients compare across
// evictions.
type SessionReport struct {
	Result  RunResult
	Resumed bool
}

// SessionRunner builds the sched.RunFunc jungled serves session_run with.
// Each session's first call starts its scenario (or resumes it from the
// eviction snapshot of a preempted life); later calls step the same
// bridge. The handler notices eviction by the session's live simulation
// changing underneath the cached run.
func SessionRunner() sched.RunFunc {
	var mu sync.Mutex
	runs := make(map[string]*SessionRun)
	return func(ctx context.Context, sess *sched.Session, payload []byte) ([]byte, error) {
		var work SessionWork
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&work); err != nil {
			return nil, fmt.Errorf("exp: decode session work: %w", err)
		}
		mu.Lock()
		sr := runs[sess.ID()]
		mu.Unlock()
		resumed := false
		if sr == nil || sess.Sim() == nil || sr.sb.sim != sess.Sim() {
			var err error
			if snap := sess.Snapshot(); len(snap) > 0 {
				sr, err = ResumeSessionScenario(ctx, sess, snap)
				resumed = true
			} else {
				sr, err = StartSessionScenario(ctx, sess, work.W, AutoPlacement())
			}
			if err != nil {
				return nil, err
			}
			mu.Lock()
			runs[sess.ID()] = sr
			mu.Unlock()
		}
		if work.Iterations > 0 {
			if err := sr.Step(ctx, work.Iterations); err != nil {
				return nil, err
			}
		}
		res, err := sr.Result()
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(SessionReport{Result: res, Resumed: resumed}); err != nil {
			return nil, fmt.Errorf("exp: encode session report: %w", err)
		}
		return buf.Bytes(), nil
	}
}

// RunSessionWorkload is the whole client story in one call: attach a
// session (waiting in the admission queue if the plane is full), start or
// resume the scenario, run iterations, measure, and close the session.
func RunSessionWorkload(ctx context.Context, s *sched.Scheduler, id string, w Workload, p Placement, iterations int) (RunResult, error) {
	sess, resumed, err := s.Attach(ctx, id, true)
	if err != nil {
		return RunResult{}, err
	}
	var sr *SessionRun
	if resumed {
		sr, err = ResumeSessionScenario(ctx, sess, sess.Snapshot())
	} else {
		sr, err = StartSessionScenario(ctx, sess, w, p)
	}
	if err != nil {
		s.Close(id)
		return RunResult{}, err
	}
	if err := sr.Step(ctx, iterations); err != nil {
		s.Close(id)
		return RunResult{}, err
	}
	res, err := sr.Result()
	if cerr := s.Close(id); err == nil && cerr != nil {
		err = cerr
	}
	return res, err
}

// RunConcurrentSessions runs n single-tenant workloads through the
// control plane — concurrently (one goroutine per session) or
// sequentially — and returns the per-session results in session order.
// The aggregate wall-clock comparison between the two modes is the
// multi-tenancy throughput measurement (BenchmarkConcurrentSessions).
func RunConcurrentSessions(ctx context.Context, s *sched.Scheduler, w Workload, p Placement, iterations, n int, concurrent bool) ([]RunResult, error) {
	results := make([]RunResult, n)
	errs := make([]error, n)
	runOne := func(i int) {
		id := fmt.Sprintf("session-%02d", i)
		results[i], errs[i] = RunSessionWorkload(ctx, s, id, w, p, iterations)
	}
	if concurrent {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			runOne(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
