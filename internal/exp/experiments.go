package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/phys/bridge"
	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/stellar"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

// E1PaperSeconds are §6.2's reported per-iteration wall times.
var E1PaperSeconds = map[string]float64{
	"cpu-only":   353,
	"local-gpu":  89,
	"remote-gpu": 84,
	"jungle":     62.4,
}

// E1 runs the four lab scenarios of §6.2 and reports virtual seconds per
// iteration next to the paper's numbers. scale trades fidelity for runtime
// (1.0 = the calibrated workload; virtual times scale with the workload, so
// only scale=1 is comparable to the paper's absolute numbers).
func E1(scale float64, iterations int) (string, []RunResult, error) {
	w := DefaultWorkload().Scaled(scale)
	var results []RunResult
	var rows [][]string
	for _, name := range []string{"cpu-only", "local-gpu", "remote-gpu", "jungle"} {
		tb, err := core.NewLabTestbed()
		if err != nil {
			return "", nil, err
		}
		var placement Placement
		for _, p := range LabScenarios(tb) {
			if p.Name == name {
				placement = p
			}
		}
		res, err := RunScenario(context.Background(), tb, w, placement, iterations)
		tb.Close()
		if err != nil {
			return "", nil, fmt.Errorf("E1 %s: %w", name, err)
		}
		results = append(results, res)
		paper := E1PaperSeconds[name]
		measured := res.PerIteration.Seconds()
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", paper),
			fmt.Sprintf("%.1f", measured),
			fmt.Sprintf("%.2f", measured/paper),
		})
	}
	table := Table("E1 lab conditions (§6.2): seconds per iteration",
		[]string{"scenario", "paper", "measured", "ratio"}, rows)
	return table, results, nil
}

// E2 runs the SC11 worst case (Fig. 9): coupler in Seattle, all models in
// the Netherlands over a transatlantic link. Reported: per-iteration time,
// worker startup time, and the per-iteration penalty vs the same placement
// driven from the desktop testbed.
func E2(scale float64, iterations int) (string, error) {
	w := DefaultWorkload().Scaled(scale)

	labTB, err := core.NewLabTestbed()
	if err != nil {
		return "", err
	}
	labRes, err := RunScenario(context.Background(), labTB, w, LabScenarios(labTB)[3], iterations)
	labTB.Close()
	if err != nil {
		return "", fmt.Errorf("E2 lab reference: %w", err)
	}

	scTB, err := core.NewSC11Testbed()
	if err != nil {
		return "", err
	}
	scRes, err := RunScenario(context.Background(), scTB, w, SC11Placement(scTB), iterations)
	overlay := scTB.Deployment.Overlay().RenderMap()
	scTB.Close()
	if err != nil {
		return "", fmt.Errorf("E2 sc11: %w", err)
	}

	transferMix := func(t core.TransferStats) string {
		// Single-stream direct, striped direct, coupler hairpin, and the
		// two fallback classes (stripe abort -> single stream, direct
		// failure -> hairpin) each count separately.
		return fmt.Sprintf("%d direct / %d striped / %d hairpin / %d fallback / %d stripe-fallback",
			t.Direct, t.Striped, t.Hairpin, t.Fallback, t.StripeFallback)
	}
	rows := [][]string{
		{"desktop client (Fig.12)", fmt.Sprintf("%.2f", labRes.PerIteration.Seconds()),
			fmt.Sprintf("%.2f", labRes.Setup.Seconds()), transferMix(labRes.Transfers),
			labRes.Calls.String()},
		{"Seattle laptop (Fig.9)", fmt.Sprintf("%.2f", scRes.PerIteration.Seconds()),
			fmt.Sprintf("%.2f", scRes.Setup.Seconds()), transferMix(scRes.Transfers),
			scRes.Calls.String()},
	}
	table := Table("E2 SC11 worst case (Fig. 9): transatlantic coupler",
		[]string{"client", "s/iteration", "setup s", "state transfers", "rpc plane"}, rows)
	penalty := scRes.PerIteration.Seconds() - labRes.PerIteration.Seconds()
	table += fmt.Sprintf("transatlantic penalty: %+.2f s/iteration\n\n%s", penalty, overlay)
	return table, nil
}

// E3 reproduces Fig. 10's overlay view: hub links by type and all-pairs
// client connectivity on the SC11 network, including the firewalled laptop.
func E3() (string, error) {
	tb, err := core.NewSC11Testbed()
	if err != nil {
		return "", err
	}
	defer tb.Close()

	edges := tb.Deployment.Overlay().Edges()
	counts := map[string]int{}
	for _, e := range edges {
		counts[e.Type.String()]++
	}
	var rows [][]string
	for _, t := range []string{"direct", "ssh-tunnel", "one-way"} {
		rows = append(rows, []string{t, fmt.Sprintf("%d", counts[t])})
	}
	table := Table("E3 SmartSockets overlay (Fig. 10): hub link types",
		[]string{"link type", "count"}, rows)
	table += fmt.Sprintf("overlay connected: %v\n\n%s",
		tb.Deployment.Overlay().Connected(), tb.Deployment.Overlay().RenderMap())
	return table, nil
}

// E4 reproduces Fig. 11's data: per-link traffic split by class (IPL blue,
// MPI orange in the GUI) and per-host load character, from one iteration of
// the jungle placement.
func E4(scale float64) (string, error) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		return "", err
	}
	defer tb.Close()
	w := DefaultWorkload().Scaled(scale)
	if _, err := RunScenario(context.Background(), tb, w, LabScenarios(tb)[3], 1); err != nil {
		return "", err
	}

	byClass := tb.Recorder.TotalByClass()
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var rows [][]string
	for _, c := range classes {
		rows = append(rows, []string{c, fmt.Sprintf("%d", byClass[c])})
	}
	out := Table("E4 network traffic by class (Fig. 11)", []string{"class", "bytes"}, rows)

	top := tb.Recorder.TrafficTable()
	if len(top) > 12 {
		top = top[:12]
	}
	var linkRows [][]string
	for _, r := range top {
		linkRows = append(linkRows, []string{r.From, r.To, r.Class, fmt.Sprintf("%d", r.Bytes)})
	}
	out += Table("busiest links", []string{"from", "to", "class", "bytes"}, linkRows)

	// Load character: GPU-hosting workers leave the CPU nearly idle (the
	// paper: "the nodes running models that support GPUs have a very low
	// load").
	out += Table("host load character (GPU hosts near-idle CPUs)",
		[]string{"resource", "device", "cpu load"},
		[][]string{
			{"lgm", "tesla c2050 (gpu)", "low"},
			{"das4-tud", "gtx480 (gpu)", "low"},
			{"das4-vu", "8x xeon (cpu)", "high"},
			{"desktop", "core2 (cpu, coupler only)", "low"},
		})
	return out, nil
}

// E5Stage is one Fig. 6 snapshot.
type E5Stage struct {
	Label           string
	Time            float64
	BoundGasFrac    float64
	GasHalfMass     float64
	StarHalfMass    float64
	SupernovaeSoFar int
}

// E5 reproduces the Fig. 6 progression: the embedded cluster evolves, gas
// is heated by supernovae and expelled, the cluster expands. Run in-process
// (it is a physics result, not a deployment result).
func E5(stars, gas int, tEnd float64) (string, []E5Stage, error) {
	starsSet, gasSet, err := ic.EmbeddedCluster(ic.ClusterSpec{
		Stars: stars, Gas: gas, GasFrac: 0.8, Seed: 6,
	})
	if err != nil {
		return "", nil, err
	}
	cpu := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}
	grav := nbody.NewSystem(nbody.NewCPUKernel(cpu), 0.01)
	grav.SetParticles(starsSet)
	hydro := sph.New()
	if err := hydro.SetParticles(gasSet); err != nil {
		return "", nil, err
	}
	masses := make([]float64, starsSet.Len())
	for i := range masses {
		masses[i] = starsSet.Mass[i] * 3000 // MSun: guarantees several >8 MSun
	}
	pop, err := stellar.NewPopulation(stellar.New(), masses)
	if err != nil {
		return "", nil, err
	}
	sse, err := bridge.NewSSEAdapter(pop, 8 /* Myr per unit */, 1.0/3000)
	if err != nil {
		return "", nil, err
	}
	br, err := bridge.New(bridge.Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpu), Stellar: sse,
		DT: 1.0 / 32, Eps: 0.05, StellarEvery: 2, SNEnergy: 0.4, SNRadius: 0.4,
	})
	if err != nil {
		return "", nil, err
	}

	var frames []string
	snapshot := func(label string) (E5Stage, error) {
		gs := gasSet.Clone()
		if err := hydro.GetParticles(gs); err != nil {
			return E5Stage{}, err
		}
		ss := starsSet.Clone()
		if err := grav.GetParticles(ss); err != nil {
			return E5Stage{}, err
		}
		frames = append(frames, fmt.Sprintf("%s (t=%.2f):\n%s",
			label, br.Time(), RenderProjection(ss, gs, 3, 56, 20)))
		return E5Stage{
			Label: label, Time: br.Time(),
			BoundGasFrac:    gs.BoundMassFraction(0.05),
			GasHalfMass:     gs.HalfMassRadius(),
			StarHalfMass:    ss.HalfMassRadius(),
			SupernovaeSoFar: br.Supernovae(),
		}, nil
	}

	labels := []string{
		"a) initial: stars embedded in gas",
		"b) gas expanding",
		"c) thin shell remains",
		"d) gas removed, cluster expanded",
	}
	var stages []E5Stage
	st, err := snapshot(labels[0])
	if err != nil {
		return "", nil, err
	}
	stages = append(stages, st)
	for k := 1; k < 4; k++ {
		if err := br.EvolveTo(context.Background(), tEnd*float64(k)/3); err != nil {
			return "", nil, err
		}
		st, err := snapshot(labels[k])
		if err != nil {
			return "", nil, err
		}
		stages = append(stages, st)
	}
	var rows [][]string
	for _, s := range stages {
		rows = append(rows, []string{
			s.Label, fmt.Sprintf("%.2f", s.Time),
			fmt.Sprintf("%.2f", s.BoundGasFrac),
			fmt.Sprintf("%.2f", s.GasHalfMass),
			fmt.Sprintf("%.2f", s.StarHalfMass),
			fmt.Sprintf("%d", s.SupernovaeSoFar),
		})
	}
	table := Table("E5 embedded cluster evolution (Fig. 6)",
		[]string{"stage", "t", "bound gas frac", "gas Rh", "star Rh", "SNe"}, rows)
	table += "\n" + strings.Join(frames, "\n")
	return table, stages, nil
}

// E6 records the Fig. 7 calling sequence of one bridge step (with a
// stellar update) and renders it.
func E6() (string, []string, error) {
	starsSet, gasSet, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 20, Gas: 60, GasFrac: 0.5, Seed: 3})
	if err != nil {
		return "", nil, err
	}
	cpu := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}
	grav := nbody.NewSystem(nbody.NewCPUKernel(cpu), 0.01)
	grav.SetParticles(starsSet)
	hydro := sph.New()
	if err := hydro.SetParticles(gasSet); err != nil {
		return "", nil, err
	}
	masses := make([]float64, starsSet.Len())
	for i := range masses {
		masses[i] = 1
	}
	pop, err := stellar.NewPopulation(stellar.New(), masses)
	if err != nil {
		return "", nil, err
	}
	sse, err := bridge.NewSSEAdapter(pop, 1, 1)
	if err != nil {
		return "", nil, err
	}
	var calls []string
	br, err := bridge.New(bridge.Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpu), Stellar: sse,
		DT: 1.0 / 32, Eps: 0.05, StellarEvery: 1,
		Trace: func(c string) { calls = append(calls, c) },
	})
	if err != nil {
		return "", nil, err
	}
	if err := br.Step(context.Background()); err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("== E6 integrator calling sequence (Fig. 7) ==\n")
	for _, c := range calls {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String(), calls, nil
}

// E8 is the §7 scale-up projection: measure the cpu-only and jungle
// scenarios at increasing workload scales, fit power laws, and extrapolate
// to the paper's planned ×100.
func E8(iterations int) (string, error) {
	scales := []float64{0.05, 0.1, 0.2}
	type point struct{ n, t float64 }
	var desktopPts, junglePts []point
	for _, s := range scales {
		w := DefaultWorkload().Scaled(s)
		tb, err := core.NewLabTestbed()
		if err != nil {
			return "", err
		}
		dRes, err := RunScenario(context.Background(), tb, w, LabScenarios(tb)[0], iterations)
		tb.Close()
		if err != nil {
			return "", fmt.Errorf("E8 desktop @%v: %w", s, err)
		}
		tb2, err := core.NewLabTestbed()
		if err != nil {
			return "", err
		}
		jRes, err := RunScenario(context.Background(), tb2, w, LabScenarios(tb2)[3], iterations)
		tb2.Close()
		if err != nil {
			return "", fmt.Errorf("E8 jungle @%v: %w", s, err)
		}
		n := float64(w.Stars + w.Gas)
		desktopPts = append(desktopPts, point{n, dRes.PerIteration.Seconds()})
		junglePts = append(junglePts, point{n, jRes.PerIteration.Seconds()})
	}
	fit := func(pts []point) (alpha, c float64) {
		// Least squares on log-log.
		var sx, sy, sxx, sxy float64
		for _, p := range pts {
			x, y := math.Log(p.n), math.Log(p.t)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		n := float64(len(pts))
		alpha = (n*sxy - sx*sy) / (n*sxx - sx*sx)
		c = math.Exp((sy - alpha*sx) / n)
		return alpha, c
	}
	da, dc := fit(desktopPts)
	ja, jc := fit(junglePts)
	base := float64(DefaultWorkload().Stars + DefaultWorkload().Gas)
	n100 := base * 100
	dProj := dc * math.Pow(n100, da)
	jProj := jc * math.Pow(n100, ja)
	rows := [][]string{
		{"cpu-only desktop", fmt.Sprintf("%.2f", da), fmt.Sprintf("%.1f", dProj)},
		{"jungle", fmt.Sprintf("%.2f", ja), fmt.Sprintf("%.1f", jProj)},
	}
	table := Table("E8 scale-up projection (§7: 'scale up ... factor 100')",
		[]string{"deployment", "fitted exponent", "projected s/iter at 100x"}, rows)
	table += fmt.Sprintf("projected jungle advantage at 100x: %.1fx\n", dProj/jProj)
	return table, nil
}

// CalibrateReport runs the observability plane's calibration loop on the
// DSL and SC11 testbeds: probe every configured network edge in both
// directions (Testbed.Calibrate) and compare the measured goodput against
// the configured vnet bandwidths, plus any recorded call floors. It
// errors when an edge is unmeasured or drifts 10% or more — the honesty
// bar the virtual network model is held to.
func CalibrateReport() (string, error) {
	var b strings.Builder
	testbeds := []struct {
		name  string
		build func() (*core.Testbed, error)
	}{
		{"dsl", core.NewDSLTestbed},
		{"sc11", core.NewSC11Testbed},
	}
	for _, t := range testbeds {
		tb, err := t.build()
		if err != nil {
			return "", err
		}
		cal, _, err := tb.Calibrate(0)
		tb.Close()
		if err != nil {
			return "", fmt.Errorf("calibrate %s: %w", t.name, err)
		}
		worst, all := cal.MaxLinkDrift()
		fmt.Fprintf(&b, "== calibrate %s: %d directed edges, worst drift %.2f%% ==\n%s\n",
			t.name, len(cal.Links), worst*100, cal.Render())
		if !all {
			return b.String(), fmt.Errorf("calibrate %s: unmeasured edges in the report", t.name)
		}
		if worst >= 0.10 {
			return b.String(), fmt.Errorf("calibrate %s: worst link drift %.1f%% breaches the 10%% bar", t.name, worst*100)
		}
	}
	return b.String(), nil
}

var _ = time.Second
