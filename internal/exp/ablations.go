package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/phys/bridge"
	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

// Ablation studies for the design choices DESIGN.md calls out: the tree
// opening angle (accuracy vs cost of the coupling kernel), the bridge
// coupling interval (energy error vs coupling overhead), and the channel
// stack (what each Fig. 5 hop costs).

// ThetaRow is one opening-angle measurement.
type ThetaRow struct {
	Theta    float64
	MaxError float64 // max relative acceleration error vs direct summation
	Flops    float64
}

// AblateTheta sweeps the Barnes–Hut opening angle on the coupling
// workload: gas sources, star targets.
func AblateTheta(nSrc, nTargets int) (string, []ThetaRow, error) {
	src := ic.Plummer(nSrc, 17)
	targets := ic.Plummer(nTargets, 18).Pos
	cpu := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}

	// Direct-summation reference.
	ref := tree.NewFi(cpu)
	ref.Theta = 0
	refAcc, _, _ := ref.FieldAt(context.Background(), src.Mass, src.Pos, targets, 0.05)

	var rows []ThetaRow
	var tableRows [][]string
	for _, theta := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		k := tree.NewFi(cpu)
		k.Theta = theta
		acc, _, flops := k.FieldAt(context.Background(), src.Mass, src.Pos, targets, 0.05)
		var maxErr float64
		for i := range acc {
			if n := refAcc[i].Norm(); n > 0 {
				if e := acc[i].Sub(refAcc[i]).Norm() / n; e > maxErr {
					maxErr = e
				}
			}
		}
		rows = append(rows, ThetaRow{Theta: theta, MaxError: maxErr, Flops: flops})
		tableRows = append(tableRows, []string{
			fmt.Sprintf("%.1f", theta),
			fmt.Sprintf("%.2e", maxErr),
			fmt.Sprintf("%.2e", flops),
		})
	}
	table := Table("ablation: tree opening angle (coupling accuracy vs cost)",
		[]string{"theta", "max rel err", "flops"}, tableRows)
	return table, rows, nil
}

// DTRow is one coupling-interval measurement.
type DTRow struct {
	DT          float64
	EnergyError float64
	FieldCalls  int
}

// AblateBridgeDT sweeps the bridge step: larger coupling intervals mean
// fewer (expensive, possibly remote) coupling calls but worse energy
// conservation — the central trade-off of operator-split coupling.
func AblateBridgeDT(nStars, nGas int, tEnd float64) (string, []DTRow, error) {
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{
		Stars: nStars, Gas: nGas, GasFrac: 0.5, Seed: 19,
	})
	if err != nil {
		return "", nil, err
	}
	cpu := &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}

	var rows []DTRow
	var tableRows [][]string
	for _, dt := range []float64{1.0 / 128, 1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8} {
		grav := nbody.NewSystem(nbody.NewCPUKernel(cpu), 0.01)
		grav.SetParticles(stars.Clone())
		hydro := sph.New()
		if err := hydro.SetParticles(gas.Clone()); err != nil {
			return "", nil, err
		}
		calls := 0
		br, err := bridge.New(bridge.Config{
			Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpu),
			DT: dt, Eps: 0.05,
			Trace: func(c string) {
				if len(c) > 7 && c[:7] == "coupler" {
					calls++
				}
			},
		})
		if err != nil {
			return "", nil, err
		}
		total := func() float64 {
			ks, us := grav.Energy()
			kg, tg, ug := hydro.Energy()
			return ks + us + kg + tg + ug + br.CrossPotential(context.Background())
		}
		e0 := total()
		if err := br.EvolveTo(context.Background(), tEnd); err != nil {
			return "", nil, err
		}
		e1 := total()
		rel := math.Abs((e1 - e0) / e0)
		rows = append(rows, DTRow{DT: dt, EnergyError: rel, FieldCalls: calls})
		tableRows = append(tableRows, []string{
			fmt.Sprintf("1/%d", int(1/dt)),
			fmt.Sprintf("%.2e", rel),
			fmt.Sprintf("%d", calls),
		})
	}
	table := Table("ablation: bridge coupling interval (energy error vs coupling calls)",
		[]string{"DT", "|dE/E|", "field calls"}, tableRows)
	return table, rows, nil
}

// ChannelRow is one channel-stack measurement.
type ChannelRow struct {
	Channel string
	PerCall time.Duration
}

// AblateChannels measures one small RPC (get_masses on a 64-star worker)
// through each channel — what each hop of Fig. 5 costs in virtual time:
// mpi (in-process), sockets (local process, loopback), ibis to a same-site
// cluster, ibis to the remote LGM.
func AblateChannels() (string, []ChannelRow, error) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		return "", nil, err
	}
	defer tb.Close()
	stars := ic.Plummer(64, 23)

	cases := []struct {
		name string
		spec core.WorkerSpec
	}{
		{"mpi (in-process)", core.WorkerSpec{Resource: "desktop", Channel: core.ChannelMPI}},
		{"sockets (local process)", core.WorkerSpec{Resource: "desktop", Channel: core.ChannelSockets}},
		{"ibis -> das4-vu (same site)", core.WorkerSpec{Resource: "das4-vu", Channel: core.ChannelIbis}},
		{"ibis -> lgm (remote site)", core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis}},
	}
	var rows []ChannelRow
	var tableRows [][]string
	for _, c := range cases {
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		g, err := sim.NewGravity(context.Background(), c.spec, core.GravityOptions{Eps: 0.01})
		if err != nil {
			sim.Stop()
			return "", nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if err := g.SetParticles(stars); err != nil {
			sim.Stop()
			return "", nil, err
		}
		const calls = 32
		start := sim.Elapsed()
		for i := 0; i < calls; i++ {
			if g.Masses() == nil {
				sim.Stop()
				return "", nil, fmt.Errorf("%s: %v", c.name, g.Err())
			}
		}
		per := (sim.Elapsed() - start) / calls
		sim.Stop()
		rows = append(rows, ChannelRow{Channel: c.name, PerCall: per})
		tableRows = append(tableRows, []string{c.name, per.String()})
	}
	table := Table("ablation: channel stack (virtual time per small RPC)",
		[]string{"channel", "per call"}, tableRows)
	return table, rows, nil
}
