// Package vtime provides the virtual-time substrate used by the jungle
// simulator: per-actor virtual clocks, compute-device performance models, and
// resource descriptions.
//
// The paper's experiments ran on real hardware (DAS-4 clusters, the LGM GPU
// cluster, desktops, transatlantic lightpaths). This repository reproduces
// the experiments on a single machine by accounting time virtually: physics
// kernels run for real (bit-exact results across kernel variants), while the
// time each call *would* have taken on a given device is computed from a
// flop-count/throughput model and advances a virtual clock.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonic virtual clock. Each simulated actor (coupler, worker,
// daemon, hub) owns one. Clocks only move forward.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored.
func (c *Clock) Advance(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time; otherwise the clock is unchanged. It returns the resulting time.
// This is the synchronization rule for message receipt: a receiver's clock
// becomes max(local, arrival).
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// DeviceKind distinguishes compute device classes.
type DeviceKind int

const (
	// CPU is a general-purpose multi-core processor.
	CPU DeviceKind = iota
	// GPU is an accelerator with high throughput and per-call launch latency.
	GPU
)

func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// Device models the performance of one compute device. Throughput is
// expressed in useful (not peak) Gflop/s for the irregular kernels used in
// the paper (tree walks, SPH, Hermite); LaunchLatency models per-call fixed
// overhead (GPU kernel launch + host/device transfer setup).
type Device struct {
	Name          string
	Kind          DeviceKind
	Gflops        float64 // sustained Gflop/s for one core (CPU) or the whole device (GPU)
	Cores         int     // CPU: cores on the device; GPU: 1
	LaunchLatency time.Duration
}

// Validate reports whether the device description is usable.
func (d *Device) Validate() error {
	if d.Gflops <= 0 {
		return fmt.Errorf("vtime: device %q has non-positive Gflops %v", d.Name, d.Gflops)
	}
	if d.Cores < 1 {
		return fmt.Errorf("vtime: device %q has %d cores", d.Name, d.Cores)
	}
	return nil
}

// Time returns the virtual duration of a computation of the given flop count
// using n parallel workers on the device (n is clamped to the core count;
// n<=0 means all cores). Parallel efficiency is assumed perfect within a
// device; cross-device efficiency is modeled by callers (e.g. mpisim).
func (d *Device) Time(flops float64, n int) time.Duration {
	if flops <= 0 {
		return d.LaunchLatency
	}
	cores := d.Cores
	if n > 0 && n < cores {
		cores = n
	}
	sec := flops / (d.Gflops * 1e9 * float64(cores))
	return d.LaunchLatency + time.Duration(sec*float64(time.Second))
}

// Seconds is a convenience converter from float seconds to time.Duration.
func Seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// CoreSet tracks allocation of CPU cores on a shared machine, so that
// co-located workers contend for cores the way the paper's desktop scenarios
// do (Gadget and PhiGRAPE sharing a quad-core during the evolve phase).
type CoreSet struct {
	mu    sync.Mutex
	total int
	used  int
}

// NewCoreSet returns a core allocator over total cores.
func NewCoreSet(total int) *CoreSet {
	if total < 1 {
		total = 1
	}
	return &CoreSet{total: total}
}

// Total returns the number of cores managed by the set.
func (s *CoreSet) Total() int { return s.total }

// InUse returns the number of currently allocated cores.
func (s *CoreSet) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Acquire allocates up to want cores (at least one) and returns the number
// granted. It never blocks: contention is expressed by granting fewer cores.
func (s *CoreSet) Acquire(want int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if want < 1 {
		want = 1
	}
	free := s.total - s.used
	if free < 1 {
		free = 1 // oversubscription: grant a share of one core
	}
	if want > free {
		want = free
	}
	s.used += want
	if s.used > s.total {
		s.used = s.total
	}
	return want
}

// Release returns n cores to the set.
func (s *CoreSet) Release(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used -= n
	if s.used < 0 {
		s.used = 0
	}
}
