package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock at %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if got := c.Now(); got != time.Second {
		t.Fatalf("clock at %v, want 1s", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(4 * time.Second)
	if got := c.Now(); got != 4*time.Second {
		t.Fatalf("clock at %v, want 4s", got)
	}
	// Moving backwards is a no-op.
	c.AdvanceTo(time.Second)
	if got := c.Now(); got != 4*time.Second {
		t.Fatalf("clock moved backwards to %v", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: for any sequence of Advance/AdvanceTo operations the clock
	// never decreases.
	f := func(steps []int16) bool {
		c := NewClock()
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(time.Duration(s) * time.Millisecond)
			} else {
				c.AdvanceTo(time.Duration(s) * time.Millisecond)
			}
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8*1000*time.Microsecond {
		t.Fatalf("clock at %v, want 8ms", got)
	}
}

func TestDeviceTime(t *testing.T) {
	cpu := &Device{Name: "core2", Kind: CPU, Gflops: 2, Cores: 4}
	// 8 Gflop on 4 cores at 2 Gflop/s/core = 1 s.
	if got := cpu.Time(8e9, 0); got != time.Second {
		t.Fatalf("cpu time %v, want 1s", got)
	}
	// Restricting to 2 cores doubles the time.
	if got := cpu.Time(8e9, 2); got != 2*time.Second {
		t.Fatalf("cpu time on 2 cores %v, want 2s", got)
	}
	// Asking for more cores than present clamps.
	if got := cpu.Time(8e9, 64); got != time.Second {
		t.Fatalf("cpu time on 64 cores %v, want 1s", got)
	}
}

func TestDeviceLaunchLatency(t *testing.T) {
	gpu := &Device{Name: "c2050", Kind: GPU, Gflops: 500, Cores: 1, LaunchLatency: time.Millisecond}
	if got := gpu.Time(0, 0); got != time.Millisecond {
		t.Fatalf("zero-flop call cost %v, want launch latency 1ms", got)
	}
	got := gpu.Time(500e9, 0)
	want := time.Second + time.Millisecond
	if got != want {
		t.Fatalf("gpu time %v, want %v", got, want)
	}
}

func TestDeviceValidate(t *testing.T) {
	bad := &Device{Name: "x", Gflops: 0, Cores: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-Gflops device validated")
	}
	bad = &Device{Name: "x", Gflops: 1, Cores: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-core device validated")
	}
	good := &Device{Name: "x", Gflops: 1, Cores: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good device rejected: %v", err)
	}
}

func TestDeviceKindString(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Fatalf("kind strings: %q %q", CPU.String(), GPU.String())
	}
}

func TestCoreSetContention(t *testing.T) {
	s := NewCoreSet(4)
	if got := s.Acquire(2); got != 2 {
		t.Fatalf("first acquire got %d, want 2", got)
	}
	if got := s.Acquire(4); got != 2 {
		t.Fatalf("second acquire got %d cores, want 2 (only 2 free)", got)
	}
	// Set exhausted: a third worker still makes progress on a core share.
	if got := s.Acquire(1); got != 1 {
		t.Fatalf("oversubscribed acquire got %d, want 1", got)
	}
	s.Release(2)
	s.Release(2)
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("in use after release: %d", got)
	}
}

func TestCoreSetNeverNegative(t *testing.T) {
	s := NewCoreSet(2)
	s.Release(10)
	if got := s.InUse(); got != 0 {
		t.Fatalf("in use %d after spurious release", got)
	}
	if got := s.Acquire(0); got != 1 {
		t.Fatalf("acquire(0) granted %d, want 1", got)
	}
}

func TestAccount(t *testing.T) {
	a := NewAccount()
	a.Add("compute", 2*time.Second)
	a.Add("comm", time.Second)
	a.Add("compute", time.Second)
	a.Add("noop", 0)
	if got := a.Get("compute"); got != 3*time.Second {
		t.Fatalf("compute = %v, want 3s", got)
	}
	if got := a.Total(); got != 4*time.Second {
		t.Fatalf("total = %v, want 4s", got)
	}
	if s := a.String(); s != "comm=1s compute=3s" {
		t.Fatalf("string = %q", s)
	}
	a.Reset()
	if got := a.Total(); got != 0 {
		t.Fatalf("total after reset = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1.5); got != 1500*time.Millisecond {
		t.Fatalf("Seconds(1.5) = %v", got)
	}
}
