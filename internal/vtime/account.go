package vtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Account accumulates virtual time by category, used to break an experiment's
// per-iteration time into compute / communication / coupler components the
// way EXPERIMENTS.md reports them.
type Account struct {
	mu    sync.Mutex
	spent map[string]time.Duration
}

// NewAccount returns an empty account.
func NewAccount() *Account { return &Account{spent: make(map[string]time.Duration)} }

// Add charges d to the named category.
func (a *Account) Add(category string, d time.Duration) {
	if d <= 0 {
		return
	}
	a.mu.Lock()
	a.spent[category] += d
	a.mu.Unlock()
}

// Get returns the time charged to category.
func (a *Account) Get(category string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[category]
}

// Total returns the sum over all categories.
func (a *Account) Total() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t time.Duration
	for _, d := range a.spent {
		t += d
	}
	return t
}

// Reset clears all categories.
func (a *Account) Reset() {
	a.mu.Lock()
	a.spent = make(map[string]time.Duration)
	a.mu.Unlock()
}

// String renders the account as "cat=dur" pairs sorted by category.
func (a *Account) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.spent))
	for k := range a.spent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", k, a.spent[k])
	}
	return b.String()
}
