// Package ensemble is the sweep layer over the multi-tenant control
// plane: real AMUSE campaigns rarely run one simulation — they fan
// hundreds of parameter-varied members over one shared jungle. A Plan
// expands cartesian parameter axes into deterministic members; Run fans
// the members through sched.Scheduler admission (MaxLive and queue
// backpressure absorbed with AttachRetry), deduplicates shared setup
// state through the daemon checkpoint store, and folds the per-member
// outcomes into a Report (digests, virtual makespan, failure/retry
// accounting, percentile summaries over trace histograms).
package ensemble

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Axis is one swept parameter: a name and the list of values the sweep
// takes it through. Values are a list, so non-uniform spacings (and
// integer-coded choices like an initial-condition index) express
// directly.
type Axis struct {
	Name   string
	Values []float64
}

// Plan is a sweep specification: the cartesian product of the axes,
// each combination a member. Member identity — its seed, its shared-
// setup signature — is derived from the parameter VALUES, never from
// axis order or member index, so reordering axes or interleaving
// members cannot change what any member computes.
type Plan struct {
	// Name labels the sweep; member session ids derive from it.
	Name string
	// BaseSeed folds into every member seed: two plans with different
	// base seeds share no member seeds.
	BaseSeed int64
	// Axes are the swept parameters; the expansion is their cartesian
	// product with the LAST axis varying fastest.
	Axes []Axis
	// SetupAxes names the axes that select a member's initial conditions.
	// Members agreeing on all of them share one staged setup blob (the
	// dedup key SetupSig); an empty list means every member shares one.
	SetupAxes []string
}

// Member is one expanded sweep point.
type Member struct {
	// Index is the member's position in expansion order (and its FIFO
	// admission order when run sequentially).
	Index int
	// Seed is the member's deterministic seed: a hash of the plan's base
	// seed and the member's name=value parameter set, independent of axis
	// order and member index.
	Seed int64
	// Params maps axis name to this member's value.
	Params map[string]float64
	// SetupSig is the shared-setup dedup key: members with equal sigs
	// receive the same staged setup blob.
	SetupSig uint64
}

// Size returns the expansion count without expanding.
func (p *Plan) Size() int {
	if len(p.Axes) == 0 {
		return 0
	}
	n := 1
	for _, a := range p.Axes {
		n *= len(a.Values)
	}
	return n
}

// check rejects degenerate plans: unnamed plans, empty or unnamed axes,
// duplicate axis names, duplicate values within an axis (two members
// would be indistinguishable), NaN values (no stable identity), and
// setup axes that name no axis.
func (p *Plan) check() error {
	if p.Name == "" {
		return fmt.Errorf("ensemble: plan has no name")
	}
	if len(p.Axes) == 0 {
		return fmt.Errorf("ensemble: plan %q has no axes", p.Name)
	}
	names := make(map[string]bool, len(p.Axes))
	for _, a := range p.Axes {
		if a.Name == "" {
			return fmt.Errorf("ensemble: plan %q has an unnamed axis", p.Name)
		}
		if names[a.Name] {
			return fmt.Errorf("ensemble: plan %q repeats axis %q", p.Name, a.Name)
		}
		names[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("ensemble: axis %q has no values", a.Name)
		}
		seen := make(map[float64]bool, len(a.Values))
		for _, v := range a.Values {
			if math.IsNaN(v) {
				return fmt.Errorf("ensemble: axis %q has a NaN value", a.Name)
			}
			if seen[v] {
				return fmt.Errorf("ensemble: axis %q repeats value %v", a.Name, v)
			}
			seen[v] = true
		}
	}
	for _, s := range p.SetupAxes {
		if !names[s] {
			return fmt.Errorf("ensemble: setup axis %q is not an axis", s)
		}
	}
	return nil
}

// Expand validates the plan and returns its members in cartesian order
// (last axis fastest). The expansion is deterministic: same plan, same
// members, bit for bit.
func (p *Plan) Expand() ([]Member, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	setupAxes := make(map[string]bool, len(p.SetupAxes))
	for _, s := range p.SetupAxes {
		setupAxes[s] = true
	}
	members := make([]Member, 0, p.Size())
	idx := make([]int, len(p.Axes))
	for {
		m := Member{Index: len(members), Params: make(map[string]float64, len(p.Axes))}
		for i, a := range p.Axes {
			m.Params[a.Name] = a.Values[idx[i]]
		}
		m.Seed = int64(p.hashParams(m.Params, nil))
		m.SetupSig = p.hashParams(m.Params, setupAxes)
		members = append(members, m)
		// Odometer: increment the last axis, carrying left.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(p.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return members, nil
		}
	}
}

// hashParams derives a member identity hash: FNV-1a over the base seed
// and the name=value pairs in sorted name order (axis order must not
// matter). A non-nil only restricts participation to those axes — the
// SetupSig restriction (an empty restriction hashes the base seed alone,
// so every member shares one sig).
func (p *Plan) hashParams(params map[string]float64, only map[string]bool) uint64 {
	names := make([]string, 0, len(params))
	for n := range params {
		if only != nil && !only[n] {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.BaseSeed))
	h.Write(buf[:])
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{'='})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(params[n]))
		h.Write(buf[:])
	}
	return h.Sum64()
}
