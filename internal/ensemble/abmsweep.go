package ensemble

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/core"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/abm"
	"jungle/internal/sched"
)

// Axis names the ABM sweep understands: "D", "R" and "B" override the
// colony's dynamics parameters per member; "ic" selects the initial-
// condition stream (and is the natural SetupAxes entry — members sharing
// an ic value share one staged colony).
const (
	AxisD  = "D"
	AxisR  = "R"
	AxisB  = "B"
	AxisIC = "ic"
)

// ABMSweep is the standard agent-based campaign: one abm colony per
// member, parameters taken from the member's axes, initial state staged
// per distinct ic. Tests, the E10 experiment and BenchmarkEnsemble all
// run sweeps through this one adapter.
type ABMSweep struct {
	Plan *Plan
	// Base is the colony every member starts from; D/R/B axes override
	// its fields per member.
	Base abm.Params
	// Steps is each member's generation count.
	Steps int
	// Spec is the per-member worker spec. Leave Resource empty for
	// scheduler placement.
	Spec core.WorkerSpec
	// Attempts and Sequential pass through to the run Config.
	Attempts   int
	Sequential bool
	// OnModel, when set, observes each member's live model right after
	// setup — the fault-injection hook the isolation tests use.
	OnModel func(m Member, model *core.Model)
}

// params is the member's effective colony configuration.
func (s *ABMSweep) params(m Member) abm.Params {
	p := s.Base
	if v, ok := m.Params[AxisD]; ok {
		p.D = v
	}
	if v, ok := m.Params[AxisR]; ok {
		p.R = v
	}
	if v, ok := m.Params[AxisB]; ok {
		p.B = v
	}
	return p
}

// icSeed is the member's initial-condition stream seed.
func (s *ABMSweep) icSeed(m Member) int64 {
	return s.Plan.BaseSeed + int64(m.Params[AxisIC])
}

// SetupBlob builds the staged initial colony for a member's setup
// signature: the deterministic InitialU stream for the member's ic,
// marshaled as a state payload every member sharing the sig applies.
func (s *ABMSweep) SetupBlob(m Member) ([]byte, error) {
	if err := s.Base.Check(); err != nil {
		return nil, err
	}
	n := s.Base.W * s.Base.H
	st := kernel.NewState(n)
	st.AddFloat(abm.AttrState, abm.InitialU(s.Base, s.icSeed(m)))
	// A standalone sweep biases the colony with a fixed parabolic bowl
	// over the grid's [-1,1]² frame, so the B axis has a potential to
	// couple to. Coupled campaigns (exp.E10) overwrite this column from a
	// live field kernel instead.
	pot := make([]float64, n)
	for i := range pot {
		v := abm.CellPos(s.Base, i)
		pot[i] = v[0]*v[0] + v[1]*v[1]
	}
	st.AddFloat(abm.AttrPotential, pot)
	return kernel.MarshalState(st)
}

// RunMember executes one member: session-bound sim, colony worker,
// staged initial state, Steps generations, digest of the end state.
func (s *ABMSweep) RunMember(ctx context.Context, sess *sched.Session, m Member, setup []byte) (uint64, time.Duration, error) {
	sim := sess.NewSim(ctx, nil)
	p := s.params(m)
	model, err := sim.NewModel(ctx, core.Kind(abm.Kind), s.Spec,
		abm.SetupArgs{W: p.W, H: p.H, D: p.D, R: p.R, B: p.B, DT: p.DT})
	if err != nil {
		return 0, 0, fmt.Errorf("member %d: %w", m.Index, err)
	}
	if s.OnModel != nil {
		s.OnModel(m, model)
	}
	if setup != nil {
		st, err := kernel.UnmarshalState(setup)
		if err != nil {
			return 0, 0, fmt.Errorf("member %d: staged setup: %w", m.Index, err)
		}
		if err := model.SetState(ctx, st); err != nil {
			return 0, 0, fmt.Errorf("member %d: %w", m.Index, err)
		}
	}
	if err := model.Call(ctx, "step", abm.StepArgs{Steps: s.Steps}, nil); err != nil {
		return 0, 0, fmt.Errorf("member %d: %w", m.Index, err)
	}
	st, err := model.GetState(ctx, abm.AttrState)
	if err != nil {
		return 0, 0, fmt.Errorf("member %d: %w", m.Index, err)
	}
	return kernel.DigestState(st), sim.Elapsed(), nil
}

// Run executes the sweep through the scheduler.
func (s *ABMSweep) Run(ctx context.Context, sc *sched.Scheduler) (*Report, error) {
	if s.Steps <= 0 {
		return nil, fmt.Errorf("ensemble: abm sweep needs Steps > 0")
	}
	return Run(ctx, Config{
		Scheduler:  sc,
		Plan:       s.Plan,
		Setup:      s.SetupBlob,
		Run:        s.RunMember,
		Attempts:   s.Attempts,
		Sequential: s.Sequential,
	})
}
