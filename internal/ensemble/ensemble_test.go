package ensemble

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"jungle/internal/core"
	"jungle/internal/phys/abm"
	"jungle/internal/sched"

	_ "jungle/internal/kernels"
)

// testPlane builds a scheduler over a fresh lab testbed, tuned for fast
// retry loops.
func testPlane(t *testing.T, cfg sched.Config) *sched.Scheduler {
	t.Helper()
	tb, err := core.NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 2 * time.Millisecond
	}
	cfg.Recorder = tb.Recorder
	s := sched.New(tb.Daemon, cfg)
	t.Cleanup(s.Shutdown)
	return s
}

// smokeSweep is the N=8 campaign the short-mode smoke (and the
// reproducibility pass) runs: 2 ics x 4 couplings, 16x16 colonies.
func smokeSweep() *ABMSweep {
	return &ABMSweep{
		Plan: &Plan{
			Name:     "smoke",
			BaseSeed: 7,
			Axes: []Axis{
				{Name: AxisIC, Values: []float64{0, 1}},
				{Name: AxisB, Values: []float64{0.1, 0.2, 0.3, 0.4}},
			},
			SetupAxes: []string{AxisIC},
		},
		Base:  abm.Params{W: 16, H: 16, D: 0.15, R: 0.6, B: 0.2, DT: 0.01},
		Steps: 24,
		Spec:  core.WorkerSpec{Channel: core.ChannelIbis},
	}
}

// TestEnsembleBitReproducible: the same plan and seed must produce the
// identical per-member digest set whether the members run concurrently
// through scheduler admission, concurrently again, or strictly
// sequentially — completion order and slot contention must be invisible
// in the results. This doubles as the short-mode N=8 smoke in make ci.
func TestEnsembleBitReproducible(t *testing.T) {
	run := func(sequential bool) *Report {
		s := testPlane(t, sched.Config{MaxLive: 3, QueueCap: 8})
		sweep := smokeSweep()
		sweep.Sequential = sequential
		rep, err := sweep.Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failures != 0 {
			t.Fatalf("sweep had %d failures: %+v", rep.Failures, rep.Members)
		}
		return rep
	}

	conc := run(false)
	again := run(false)
	seq := run(true)

	if len(conc.Members) != 8 {
		t.Fatalf("expanded %d members, want 8", len(conc.Members))
	}
	for i, d := range conc.Digests() {
		if d == 0 {
			t.Fatalf("member %d has zero digest", i)
		}
		if again.Digests()[i] != d {
			t.Fatalf("member %d digest differs across concurrent runs: %x vs %x", i, d, again.Digests()[i])
		}
		if seq.Digests()[i] != d {
			t.Fatalf("member %d digest differs between concurrent and sequential: %x vs %x", i, d, seq.Digests()[i])
		}
	}
	// Members with different couplings genuinely diverge (the digest is
	// not a constant).
	if conc.Digests()[0] == conc.Digests()[1] {
		t.Fatal("members with different B produced identical digests")
	}
	// Shared-setup dedup: 8 members, 2 initial conditions, 2 staged blobs.
	if conc.StagedSetups != 2 {
		t.Fatalf("staged %d setups, want 2", conc.StagedSetups)
	}
	// Makespan model: concurrent packs over MaxLive slots, sequential
	// pays the sum.
	if conc.Slots != 3 || seq.Slots != 1 {
		t.Fatalf("slots = %d/%d, want 3/1", conc.Slots, seq.Slots)
	}
	if conc.Makespan >= conc.SumVirtual {
		t.Fatalf("concurrent makespan %v not below sequential bound %v", conc.Makespan, conc.SumVirtual)
	}
	if seq.Makespan != seq.SumVirtual {
		t.Fatalf("sequential makespan %v != virtual sum %v", seq.Makespan, seq.SumVirtual)
	}
	// Quantiles are histogram bucket upper bounds: monotone in q and within
	// 2x of the exact member maximum.
	if conc.P50 == 0 || conc.P90 < conc.P50 || conc.MaxMember == 0 || conc.P90 > 2*conc.MaxMember {
		t.Fatalf("percentiles inconsistent: p50=%v p90=%v max=%v", conc.P50, conc.P90, conc.MaxMember)
	}
	out := conc.Render()
	for _, want := range []string{"smoke", "8 members", "staged setups 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestEnsembleMemberFaultIsolation kills one member's worker mid-run:
// that member must report a structured error in the report, and every
// other member's digest must be unaffected (this test runs under make
// race).
func TestEnsembleMemberFaultIsolation(t *testing.T) {
	baseline := func() *Report {
		s := testPlane(t, sched.Config{MaxLive: 3, QueueCap: 8})
		rep, err := smokeSweep().Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()

	s := testPlane(t, sched.Config{MaxLive: 3, QueueCap: 8})
	const victim = 5
	died := make(chan int, 8)
	s.Daemon().OnWorkerDied = func(id int) { died <- id }
	sweep := smokeSweep()
	sweep.OnModel = func(m Member, model *core.Model) {
		if m.Index != victim {
			return
		}
		// The member's worker is up and its session mid-run; kill the
		// worker out from under the remaining member calls, and hold the
		// member until the pool has observed the death (KillWorker is
		// asynchronous) so its next call deterministically fails.
		for _, id := range model.WorkerIDs() {
			s.Daemon().KillWorker(id)
		}
		select {
		case <-died:
		case <-time.After(10 * time.Second):
			t.Error("victim worker death never observed")
		}
	}
	rep, err := sweep.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("report counts %d failures, want exactly the victim", rep.Failures)
	}
	for i, m := range rep.Members {
		if i == victim {
			if m.Err == "" || m.Digest != 0 {
				t.Fatalf("victim member lacks a structured error: %+v", m)
			}
			if !strings.Contains(m.Err, fmt.Sprintf("member %d", victim)) {
				t.Fatalf("victim error %q does not identify the member", m.Err)
			}
			continue
		}
		if m.Err != "" {
			t.Fatalf("member %d failed alongside the victim: %s", i, m.Err)
		}
		if m.Digest != baseline.Members[i].Digest {
			t.Fatalf("member %d digest perturbed by the victim's death: %x vs %x",
				i, m.Digest, baseline.Members[i].Digest)
		}
	}
}

// TestEnsembleRetryAccounting: with one slot and a one-deep queue, the
// fan-out must absorb busy rejections through AttachRetry and report how
// many — and still complete every member.
func TestEnsembleRetryAccounting(t *testing.T) {
	s := testPlane(t, sched.Config{MaxLive: 1, QueueCap: 1})
	sweep := smokeSweep()
	sweep.Attempts = 2000
	rep, err := sweep.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d members failed under backpressure: %+v", rep.Failures, rep.Members)
	}
	if rep.Retries == 0 {
		t.Fatal("8 members through a 1-slot/1-queue plane absorbed no busy rejections")
	}
}

// TestRunValidation covers the engine's error paths.
func TestRunValidation(t *testing.T) {
	s := testPlane(t, sched.Config{})
	ctx := context.Background()

	if _, err := Run(ctx, Config{}); err == nil {
		t.Fatal("Run accepted an empty config")
	}
	bad := smokeSweep()
	bad.Plan.Axes = nil
	if _, err := bad.Run(ctx, s); err == nil {
		t.Fatal("Run accepted a degenerate plan")
	}
	noSteps := smokeSweep()
	noSteps.Steps = 0
	if _, err := noSteps.Run(ctx, s); err == nil {
		t.Fatal("sweep accepted Steps=0")
	}
	badSetup := smokeSweep()
	badSetup.Base.W = 0
	if _, err := badSetup.Run(ctx, s); err == nil {
		t.Fatal("sweep staged a setup blob for a degenerate colony")
	}
}
