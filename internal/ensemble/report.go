package ensemble

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jungle/internal/trace"
)

// MemberResult is one member's outcome.
type MemberResult struct {
	Member
	// Digest is the member's end-state digest (0 when the member failed).
	Digest uint64
	// Virtual is the member's virtual-time makespan.
	Virtual time.Duration
	// Retries counts the busy rejections the member's attach absorbed.
	Retries int
	// Err is the member's structured failure ("" on success). A failed
	// member never poisons the others: it is accounted here and the sweep
	// carries on.
	Err string
}

// Report aggregates a sweep: per-member results in member order plus the
// campaign-level accounting the paper-style tables report.
type Report struct {
	Plan    string
	Slots   int // admission slots the makespan model schedules over
	Members []MemberResult

	Failures int
	Retries  int
	// StagedSetups counts the distinct setup blobs staged for the sweep —
	// the shared-setup dedup observable (== number of distinct SetupSigs,
	// not the member count).
	StagedSetups int

	// SumVirtual is the total virtual compute across members (the
	// sequential-makespan bound); Makespan is the list-scheduled virtual
	// makespan over Slots admission slots in member order.
	SumVirtual time.Duration
	Makespan   time.Duration

	// Hist is the per-member virtual-makespan distribution (nanosecond
	// samples); P50/P90/MaxMember are its trace-histogram summaries.
	Hist      trace.Histogram
	P50, P90  time.Duration
	MaxMember time.Duration
}

// buildReport folds member results (any order) into a Report.
func buildReport(plan string, slots int, results []MemberResult) *Report {
	if slots < 1 {
		slots = 1
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	r := &Report{Plan: plan, Slots: slots, Members: results}
	sigs := make(map[uint64]bool)
	// List-schedule the members over the admission slots in member order
	// (the FIFO order the scheduler admits them in): each member lands on
	// the least-loaded slot; the makespan is the fullest slot.
	load := make([]time.Duration, slots)
	for _, m := range results {
		r.Retries += m.Retries
		sigs[m.SetupSig] = true
		if m.Err != "" {
			r.Failures++
			continue
		}
		r.SumVirtual += m.Virtual
		r.Hist.Record(int64(m.Virtual))
		min := 0
		for i := range load {
			if load[i] < load[min] {
				min = i
			}
		}
		load[min] += m.Virtual
	}
	for _, l := range load {
		if l > r.Makespan {
			r.Makespan = l
		}
	}
	r.StagedSetups = len(sigs)
	r.P50 = time.Duration(r.Hist.Quantile(0.5))
	r.P90 = time.Duration(r.Hist.Quantile(0.9))
	r.MaxMember = time.Duration(r.Hist.Max)
	return r
}

// Digests returns the per-member digest set in member order (failed
// members contribute 0). Two runs of the same plan are compared by this.
func (r *Report) Digests() []uint64 {
	out := make([]uint64, len(r.Members))
	for i, m := range r.Members {
		out[i] = m.Digest
	}
	return out
}

// Render formats the campaign summary (the jungle-bench table style).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ensemble %q: %d members over %d slots\n", r.Plan, len(r.Members), r.Slots)
	fmt.Fprintf(&b, "  virtual makespan %v (sequential bound %v, %.1fx)\n",
		r.Makespan.Round(time.Millisecond), r.SumVirtual.Round(time.Millisecond), r.speedup())
	fmt.Fprintf(&b, "  member virtual p50/p90/max %v/%v/%v\n",
		r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond), r.MaxMember.Round(time.Millisecond))
	fmt.Fprintf(&b, "  staged setups %d, retries %d, failures %d\n", r.StagedSetups, r.Retries, r.Failures)
	return b.String()
}

func (r *Report) speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.SumVirtual) / float64(r.Makespan)
}
