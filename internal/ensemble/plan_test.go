package ensemble

import (
	"fmt"
	"math"
	"testing"
)

func sweepPlan() *Plan {
	return &Plan{
		Name:     "sweep",
		BaseSeed: 99,
		Axes: []Axis{
			{Name: "ic", Values: []float64{0, 1}},
			{Name: "B", Values: []float64{0.1, 0.2, 0.3}},
			{Name: "D", Values: []float64{0.05, 0.15}},
		},
		SetupAxes: []string{"ic"},
	}
}

// paramSig is an order-free identity for a member's parameter set.
func paramSig(m Member) string {
	return fmt.Sprintf("ic=%v;B=%v;D=%v", m.Params["ic"], m.Params["B"], m.Params["D"])
}

func TestPlanExpandCartesian(t *testing.T) {
	p := sweepPlan()
	members, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2; len(members) != want || p.Size() != want {
		t.Fatalf("expanded %d members (Size %d), want %d", len(members), p.Size(), want)
	}
	// Indexes are positional; the last axis varies fastest.
	for i, m := range members {
		if m.Index != i {
			t.Fatalf("member %d has Index %d", i, m.Index)
		}
		if len(m.Params) != 3 {
			t.Fatalf("member %d params = %v", i, m.Params)
		}
	}
	if members[0].Params["D"] == members[1].Params["D"] {
		t.Fatalf("last axis not fastest: members 0/1 share D=%v", members[0].Params["D"])
	}
	if members[0].Params["ic"] != members[5].Params["ic"] {
		t.Fatal("first axis varied within its block")
	}
	// Distinct parameter combinations on every member.
	sigs := make(map[string]bool)
	for _, m := range members {
		sigs[paramSig(m)] = true
	}
	if len(sigs) != len(members) {
		t.Fatalf("only %d distinct parameter sets for %d members", len(sigs), len(members))
	}
}

func TestPlanSeedsUniqueAndDeterministic(t *testing.T) {
	p := sweepPlan()
	a, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[int64]bool)
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].SetupSig != b[i].SetupSig {
			t.Fatalf("member %d not deterministic across expansions", i)
		}
		if seeds[a[i].Seed] {
			t.Fatalf("member %d repeats seed %d", i, a[i].Seed)
		}
		seeds[a[i].Seed] = true
	}
	// A different base seed shifts every member seed.
	p2 := sweepPlan()
	p2.BaseSeed = 100
	c, err := p2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seed == c[i].Seed {
			t.Fatalf("member %d seed survived a base-seed change", i)
		}
	}
}

// TestPlanSeedStableUnderAxisReorder: member identity is the parameter
// VALUES — permuting the axes permutes the member order but must not
// change any member's seed or setup signature.
func TestPlanSeedStableUnderAxisReorder(t *testing.T) {
	p := sweepPlan()
	members, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := sweepPlan()
	r.Axes = []Axis{p.Axes[2], p.Axes[0], p.Axes[1]}
	reordered, err := r.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bySig := make(map[string]Member, len(members))
	for _, m := range members {
		bySig[paramSig(m)] = m
	}
	for _, m := range reordered {
		orig, ok := bySig[paramSig(m)]
		if !ok {
			t.Fatalf("reordered member %v has no original counterpart", m.Params)
		}
		if m.Seed != orig.Seed {
			t.Fatalf("params %v: seed %d != %d under axis reorder", m.Params, m.Seed, orig.Seed)
		}
		if m.SetupSig != orig.SetupSig {
			t.Fatalf("params %v: setup sig changed under axis reorder", m.Params)
		}
	}
}

func TestPlanSetupSigSharing(t *testing.T) {
	p := sweepPlan()
	members, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(map[uint64]map[float64]bool)
	for _, m := range members {
		if sigs[m.SetupSig] == nil {
			sigs[m.SetupSig] = make(map[float64]bool)
		}
		sigs[m.SetupSig][m.Params["ic"]] = true
	}
	if len(sigs) != 2 {
		t.Fatalf("%d distinct setup sigs, want 2 (one per ic)", len(sigs))
	}
	for sig, ics := range sigs {
		if len(ics) != 1 {
			t.Fatalf("setup sig %x spans ic values %v", sig, ics)
		}
	}

	// No setup axes: the whole sweep shares one sig.
	p2 := sweepPlan()
	p2.SetupAxes = nil
	members2, err := p2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members2 {
		if m.SetupSig != members2[0].SetupSig {
			t.Fatal("members do not share the setup sig with no setup axes")
		}
	}
}

func TestPlanRejectsDegenerate(t *testing.T) {
	ok := sweepPlan()
	cases := map[string]func(*Plan){
		"no name":        func(p *Plan) { p.Name = "" },
		"no axes":        func(p *Plan) { p.Axes = nil },
		"unnamed axis":   func(p *Plan) { p.Axes[1].Name = "" },
		"duplicate axis": func(p *Plan) { p.Axes[1].Name = p.Axes[0].Name },
		"empty axis":     func(p *Plan) { p.Axes[2].Values = nil },
		"repeated value": func(p *Plan) { p.Axes[2].Values = []float64{0.5, 0.5} },
		"nan value":      func(p *Plan) { p.Axes[2].Values = []float64{math.NaN()} },
		"bad setup axis": func(p *Plan) { p.SetupAxes = []string{"nope"} },
	}
	for name, mutate := range cases {
		p := sweepPlan()
		mutate(p)
		if _, err := p.Expand(); err == nil {
			t.Errorf("%s: Expand accepted the degenerate plan", name)
		}
	}
	if _, err := ok.Expand(); err != nil {
		t.Fatalf("baseline plan rejected: %v", err)
	}
}

// FuzzPlanExpand drives Expand with generated axis shapes: whenever a
// plan is accepted, its expansion must satisfy the planner invariants —
// cartesian count, unique seeds, determinism, axis-order independence.
func FuzzPlanExpand(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), []byte("abcdef"))
	f.Add(int64(-7), uint8(3), uint8(2), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(0), uint8(1), uint8(1), []byte{255})
	f.Fuzz(func(t *testing.T, baseSeed int64, nAxes, nVals uint8, raw []byte) {
		na := int(nAxes%3) + 1
		nv := int(nVals%4) + 1
		p := &Plan{Name: "fuzz", BaseSeed: baseSeed}
		k := 0
		for i := 0; i < na; i++ {
			ax := Axis{Name: fmt.Sprintf("a%d", i)}
			for j := 0; j < nv; j++ {
				var v float64
				if k < len(raw) {
					v = float64(int(raw[k])*(i+1)) / 7
					k++
				} else {
					v = float64(i*31 + j)
				}
				ax.Values = append(ax.Values, v)
			}
			p.Axes = append(p.Axes, ax)
		}
		p.SetupAxes = []string{"a0"}

		members, err := p.Expand()
		if err != nil {
			// Generated duplicates within an axis are legitimately
			// rejected; rejection must be deterministic.
			if _, err2 := p.Expand(); err2 == nil {
				t.Fatal("rejection not deterministic")
			}
			return
		}
		if len(members) != p.Size() {
			t.Fatalf("expanded %d members, Size says %d", len(members), p.Size())
		}
		seeds := make(map[int64]bool)
		for i, m := range members {
			if m.Index != i {
				t.Fatalf("member %d has index %d", i, m.Index)
			}
			if len(m.Params) != na {
				t.Fatalf("member %d has %d params, want %d", i, len(m.Params), na)
			}
			if seeds[m.Seed] {
				t.Fatalf("seed collision at member %d", i)
			}
			seeds[m.Seed] = true
		}
		// Reversing the axes preserves every member's identity.
		r := &Plan{Name: p.Name, BaseSeed: p.BaseSeed, SetupAxes: p.SetupAxes}
		for i := len(p.Axes) - 1; i >= 0; i-- {
			r.Axes = append(r.Axes, p.Axes[i])
		}
		reordered, err := r.Expand()
		if err != nil {
			t.Fatalf("reordered plan rejected: %v", err)
		}
		want := make(map[int64]uint64, len(members))
		for _, m := range members {
			want[m.Seed] = m.SetupSig
		}
		for _, m := range reordered {
			sig, ok := want[m.Seed]
			if !ok || sig != m.SetupSig {
				t.Fatalf("member identity changed under axis reorder: %v", m.Params)
			}
		}
	})
}
