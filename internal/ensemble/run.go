package ensemble

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/core"
	"jungle/internal/sched"
)

// SetupFunc builds the shared setup blob for a member's SetupSig. It is
// called once per distinct sig — not once per member — and the blob is
// staged in the daemon checkpoint store for every member sharing the sig.
type SetupFunc func(m Member) ([]byte, error)

// RunnerFunc executes one member inside its admitted session: create the
// session-bound simulation, apply the staged setup blob (nil when the
// sweep stages none), run the member's work, and return the end-state
// digest plus the member's virtual makespan. The runner owns the member's
// simulation; the engine closes the session (stopping the sim) afterward.
type RunnerFunc func(ctx context.Context, sess *sched.Session, m Member, setup []byte) (digest uint64, virtual time.Duration, err error)

// Config wires one sweep run.
type Config struct {
	Scheduler *sched.Scheduler
	Plan      *Plan
	// Setup stages shared setup blobs (optional).
	Setup SetupFunc
	// Run executes one member (required).
	Run RunnerFunc
	// Attempts bounds each member's AttachRetry loop (default 64).
	Attempts int
	// Sequential runs the members one at a time in member order instead
	// of fanning them out — the baseline arm benchmarks compare against.
	Sequential bool
}

func (c Config) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return 64
}

// Run expands the plan, stages the deduplicated setup blobs, fans the
// members through scheduler admission, and aggregates their outcomes.
// A member failure is accounted in the report, not returned: one broken
// member must not sink a 256-member campaign. Run itself errors only on
// a degenerate plan, staging failure, or missing configuration.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Scheduler == nil || cfg.Plan == nil || cfg.Run == nil {
		return nil, errors.New("ensemble: Config needs Scheduler, Plan and Run")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	members, err := cfg.Plan.Expand()
	if err != nil {
		return nil, err
	}

	// Stage one blob per distinct setup signature in the daemon store.
	// Members sharing initial conditions share the staged bytes — the
	// sweep builds (and ships) each IC once, not once per member.
	daemon := cfg.Scheduler.Daemon()
	refs := make(map[uint64]uint64)
	if cfg.Setup != nil {
		defer func() {
			for _, ref := range refs {
				daemon.DropCheckpoint(ref)
			}
		}()
		for _, m := range members {
			if _, ok := refs[m.SetupSig]; ok {
				continue
			}
			blob, err := cfg.Setup(m)
			if err != nil {
				return nil, fmt.Errorf("ensemble: stage setup for member %d: %w", m.Index, err)
			}
			ref := core.NewStoreRef()
			daemon.StoreCheckpoint(ref, blob)
			refs[m.SetupSig] = ref
		}
	}

	results := make([]MemberResult, len(members))
	runOne := func(m Member) MemberResult {
		res := MemberResult{Member: m}
		id := fmt.Sprintf("%s/m%04d", cfg.Plan.Name, m.Index)
		sess, _, retries, err := cfg.Scheduler.AttachRetry(ctx, id, true, cfg.attempts())
		res.Retries = retries
		if err != nil {
			res.Err = fmt.Sprintf("attach: %v", err)
			return res
		}
		defer cfg.Scheduler.Close(id)
		var setup []byte
		if ref, ok := refs[m.SetupSig]; ok {
			setup, _ = daemon.CheckpointBlob(ref)
		}
		digest, virtual, err := cfg.Run(ctx, sess, m, setup)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Digest, res.Virtual = digest, virtual
		return res
	}

	slots := 1
	if cfg.Sequential {
		for i, m := range members {
			results[i] = runOne(m)
		}
	} else {
		if slots = cfg.Scheduler.MaxLive(); slots > len(members) {
			slots = len(members)
		}
		var wg sync.WaitGroup
		for i, m := range members {
			wg.Add(1)
			go func(i int, m Member) {
				defer wg.Done()
				results[i] = runOne(m)
			}(i, m)
		}
		wg.Wait()
	}
	return buildReport(cfg.Plan.Name, slots, results), nil
}
