package sched

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"jungle/internal/core"
	"jungle/internal/core/kernel"
)

// testPlane builds a scheduler over the lab testbed's daemon.
func testPlane(t *testing.T, cfg Config) (*core.Testbed, *Scheduler) {
	t.Helper()
	tb, err := core.NewLabTestbed()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Daemon.Close)
	if cfg.Recorder == nil {
		cfg.Recorder = tb.Recorder
	}
	s := New(tb.Daemon, cfg)
	t.Cleanup(s.Shutdown)
	return tb, s
}

// fakeClock is a settable lease clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestAdmissionBackpressure: a full plane rejects non-waiting attaches
// with the structured busy error (errors.Is kernel.ErrBusy, retry-after
// hint set), bounds its admission queue, and admits a queued session the
// moment a slot frees.
func TestAdmissionBackpressure(t *testing.T) {
	_, s := testPlane(t, Config{MaxLive: 1, QueueCap: 1, RetryAfter: 250 * time.Millisecond})
	ctx := context.Background()

	if _, _, err := s.Attach(ctx, "s1", false); err != nil {
		t.Fatalf("first attach: %v", err)
	}
	// Plane full: immediate rejection with the taxonomy sentinel.
	_, _, err := s.Attach(ctx, "s2", false)
	if err == nil {
		t.Fatal("second attach admitted past MaxLive=1")
	}
	if !errors.Is(err, kernel.ErrBusy) {
		t.Fatalf("busy rejection does not unwrap to kernel.ErrBusy: %v", err)
	}
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 250*time.Millisecond {
		t.Fatalf("busy rejection lacks the retry-after hint: %v", err)
	}

	// One waiter fits the queue; it must be admitted when s1 closes.
	admitted := make(chan error, 1)
	go func() {
		_, _, err := s.Attach(ctx, "s2", true)
		admitted <- err
	}()
	// Wait until the waiter is parked, then verify the queue is bounded.
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		queued := len(s.queue)
		s.mu.Unlock()
		if queued == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		case <-time.After(time.Millisecond):
		}
	}
	if _, _, err := s.Attach(ctx, "s3", true); !errors.Is(err, kernel.ErrBusy) {
		t.Fatalf("attach past the queue bound: got %v, want busy", err)
	}

	if err := s.Close("s1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued attach failed after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued attach never admitted after slot freed")
	}
	if st, err := s.Heartbeat("s2"); err != nil || st != StateRunning {
		t.Fatalf("admitted session state = %v, %v; want running", st, err)
	}
}

// TestLeaseReapAndResume: a session idle past its lease is evicted
// through its evictor, parks as preempted with the snapshot, frees its
// live slot, and a re-attach resumes it (resumed=true, snapshot intact).
func TestLeaseReapAndResume(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	_, s := testPlane(t, Config{MaxLive: 1, LeaseTTL: time.Minute, Now: clk.Now})
	ctx := context.Background()

	sess, resumed, err := s.Attach(ctx, "tenant", false)
	if err != nil || resumed {
		t.Fatalf("attach: resumed=%v err=%v", resumed, err)
	}
	snapshot := []byte("run-state-at-eviction")
	sess.SetEvictor(func(context.Context) ([]byte, error) { return snapshot, nil })

	// Lease still fresh: nothing reaps.
	if reaped, err := s.ReapIdle(ctx); err != nil || len(reaped) != 0 {
		t.Fatalf("fresh lease reaped: %v, %v", reaped, err)
	}
	clk.Advance(2 * time.Minute)
	reaped, err := s.ReapIdle(ctx)
	if err != nil || len(reaped) != 1 || reaped[0] != "tenant" {
		t.Fatalf("reap = %v, %v; want [tenant]", reaped, err)
	}
	if st := sess.State(); st != StatePreempted {
		t.Fatalf("state after reap = %v, want preempted", st)
	}

	// The freed slot admits another tenant immediately.
	if _, _, err := s.Attach(ctx, "other", false); err != nil {
		t.Fatalf("attach after reap: %v", err)
	}
	if err := s.Close("other"); err != nil {
		t.Fatal(err)
	}

	// Re-attach resumes from the eviction snapshot.
	sess2, resumed, err := s.Attach(ctx, "tenant", false)
	if err != nil || !resumed {
		t.Fatalf("re-attach: resumed=%v err=%v", resumed, err)
	}
	if string(sess2.Snapshot()) != string(snapshot) {
		t.Fatalf("snapshot = %q, want %q", sess2.Snapshot(), snapshot)
	}
	if rec := s.Recorder(); rec != nil {
		st, ok := rec.Session("tenant")
		if !ok || st.Evictions != 1 || st.Resumes != 1 {
			t.Fatalf("session accounting = %+v, ok=%v; want 1 eviction, 1 resume", st, ok)
		}
	}
}

// TestGatewaySessions: many concurrent client connections, each bound to
// the session it attached; busy rejections travel the wire as CodeBusy
// with the structured retry-after payload.
func TestGatewaySessions(t *testing.T) {
	_, s := testPlane(t, Config{
		MaxLive: 2, RetryAfter: 125 * time.Millisecond,
		Run: func(ctx context.Context, sess *Session, payload []byte) ([]byte, error) {
			return append([]byte(sess.ID()+":"), payload...), nil
		},
	})
	g := &Gateway{Sched: s}
	dial := func() *Client {
		client, server := net.Pipe()
		go g.ServeConn(server)
		c := NewClient(client)
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Two concurrent connections, two sessions.
	c1, c2 := dial(), dial()
	if _, err := c1.Attach("alpha", false); err != nil {
		t.Fatalf("attach alpha: %v", err)
	}
	if _, err := c2.Attach("beta", false); err != nil {
		t.Fatalf("attach beta: %v", err)
	}

	// Each connection runs in its own namespace.
	out, err := c1.Run([]byte("work"))
	if err != nil || string(out) != "alpha:work" {
		t.Fatalf("run on alpha = %q, %v", out, err)
	}
	out, err = c2.Run([]byte("work"))
	if err != nil || string(out) != "beta:work" {
		t.Fatalf("run on beta = %q, %v", out, err)
	}

	// A third tenant hits admission control through the wire.
	c3 := dial()
	_, err = c3.Attach("gamma", false)
	if !errors.Is(err, kernel.ErrBusy) {
		t.Fatalf("wire busy rejection: got %v, want kernel.ErrBusy", err)
	}
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 125*time.Millisecond {
		t.Fatalf("wire busy rejection lost the retry-after hint: %v", err)
	}

	// A connection cannot address another connection's session.
	if err := c1.do(core.MethodSessionRun, core.SessionRunArgs{Session: "beta"}, &core.SessionRunReply{}); err == nil {
		t.Fatal("cross-session op through a bound connection succeeded")
	}

	// Close through the wire frees the slot for gamma.
	if _, err := c1.Detach(true); err != nil {
		t.Fatalf("detach alpha: %v", err)
	}
	if _, err := c3.Attach("gamma", false); err != nil {
		t.Fatalf("attach gamma after slot freed: %v", err)
	}
	st, err := c3.Status()
	if err != nil || st.State != string(StateRunning) || st.Live != 2 {
		t.Fatalf("gamma status = %+v, %v", st, err)
	}
	if _, err := c3.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
}

// TestGatewayEcho: frames that are not control-plane envelopes echo back
// verbatim — the §5 loopback benchmark keeps working against a gateway.
func TestGatewayEcho(t *testing.T) {
	_, s := testPlane(t, Config{})
	g := &Gateway{Sched: s}
	client, server := net.Pipe()
	defer client.Close()
	go g.ServeConn(server)

	payload := []byte{0x42, 0x00, 0x13, 0x37}
	hdr := []byte{4, 0, 0, 0}
	if _, err := client.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := readFull(client, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range append(hdr, payload...) {
		if got[i] != b {
			t.Fatalf("echo mismatch at byte %d: frame %v, got %v", i, append(hdr, payload...), got)
		}
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := c.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
