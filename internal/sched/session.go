package sched

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"jungle/internal/amuse/units"
	"jungle/internal/core"
)

// State is a session's control-plane lifecycle state.
type State string

// Session lifecycle states.
const (
	StateQueued    State = "queued"    // waiting for admission
	StateRunning   State = "running"   // admitted, lease live
	StatePreempted State = "preempted" // evicted; snapshot held for resume
	StateClosed    State = "closed"    // ended; id retired
)

// Session is one tenant's handle on the control plane. Run handlers use
// it to create or resume the session-bound simulation; the scheduler uses
// it to track the lease and to evict.
type Session struct {
	id string
	s  *Scheduler

	mu       sync.Mutex
	state    State
	lastBeat time.Time
	// sim is the live session-bound coupler (nil when preempted/closed).
	sim *core.Simulation
	// snapshot is the opaque eviction record a resume starts from.
	snapshot []byte
	// evictor, installed by the run handler while work is live, produces
	// the snapshot at eviction (nil falls back to the generic
	// whole-simulation manifest).
	evictor func(ctx context.Context) ([]byte, error)
}

func newSession(s *Scheduler, id string) *Session {
	return &Session{id: id, s: s, state: StateQueued}
}

// ID returns the session id.
func (ss *Session) ID() string { return ss.id }

// State returns the lifecycle state.
func (ss *Session) State() State { return ss.getState() }

func (ss *Session) getState() State {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state
}

func (ss *Session) setState(st State) {
	ss.mu.Lock()
	ss.state = st
	ss.mu.Unlock()
	if rec := ss.s.cfg.Recorder; rec != nil {
		rec.SessionState(ss.id, string(st))
	}
}

func (ss *Session) touch(now time.Time) {
	ss.mu.Lock()
	ss.lastBeat = now
	ss.mu.Unlock()
}

func (ss *Session) beat() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastBeat
}

func (ss *Session) hasSnapshot() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.snapshot) > 0
}

// Snapshot returns the eviction record a preempted session should resume
// from (nil when the session starts fresh).
func (ss *Session) Snapshot() []byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.snapshot
}

// SetEvictor installs the function the scheduler calls to checkpoint the
// session's live work at eviction. Run handlers with state beyond the
// core manifest (e.g. a bridge clock) install one; nil restores the
// generic whole-simulation manifest.
func (ss *Session) SetEvictor(f func(ctx context.Context) ([]byte, error)) {
	ss.mu.Lock()
	ss.evictor = f
	ss.mu.Unlock()
}

// NewSim creates a fresh simulation bound to this session: workers are
// namespaced by the session id, accounted per session, and placed by the
// scheduler's capacity-aware fair-share policy. The scheduler remembers
// it for eviction; any previous sim for the session is replaced (callers
// stop it themselves).
func (ss *Session) NewSim(ctx context.Context, conv *units.Converter) *core.Simulation {
	sim := core.NewSimulation(ctx, ss.s.daemon, conv)
	ss.bind(sim)
	return sim
}

// ResumeSim rebuilds a session-bound simulation from a core manifest
// (setup replayed, snapshots restored, clock advanced) under this
// session's namespace and placement policy.
func (ss *Session) ResumeSim(ctx context.Context, conv *units.Converter, man *core.Manifest) (*core.Simulation, []*core.Model, error) {
	sim, models, err := core.ResumeSessionSimulation(ctx, ss.s.daemon, conv, man, ss.id, ss.s.cfg.Recorder)
	if err != nil {
		return nil, nil, err
	}
	ss.bind(sim)
	return sim, models, nil
}

// Sim returns the session's live simulation (nil when none).
func (ss *Session) Sim() *core.Simulation {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.sim
}

// bind registers a simulation as the session's live coupler and installs
// the session namespace and the fair-share placer.
func (ss *Session) bind(sim *core.Simulation) {
	sim.SetSession(ss.id, ss.s.cfg.Recorder)
	d := ss.s.daemon.Deployment()
	sim.SetPlacer(func(spec core.WorkerSpec) (string, error) {
		return core.SelectLeastLoaded(d, spec)
	})
	ss.mu.Lock()
	ss.sim = sim
	// A freshly bound sim supersedes any previous eviction record.
	ss.snapshot = nil
	ss.mu.Unlock()
}

// genericSnapshot is the default evictor: checkpoint the whole simulation
// into a self-contained manifest and gob-encode it. Simulations with no
// models produce no snapshot (nothing to resume).
func genericSnapshot(ctx context.Context, sim *core.Simulation) ([]byte, error) {
	man, err := sim.Checkpoint(ctx)
	if err != nil {
		return nil, err
	}
	if len(man.Models) == 0 {
		return nil, nil
	}
	return EncodeManifest(man)
}

// EncodeManifest gob-encodes a core manifest for use as a session
// snapshot; DecodeManifest inverts it.
func EncodeManifest(man *core.Manifest) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(man); err != nil {
		return nil, fmt.Errorf("sched: encode manifest: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeManifest decodes a snapshot produced by EncodeManifest.
func DecodeManifest(b []byte) (*core.Manifest, error) {
	man := new(core.Manifest)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(man); err != nil {
		return nil, fmt.Errorf("sched: decode manifest: %w", err)
	}
	return man, nil
}
